#!/usr/bin/env bash
# check-doc-refs.sh — fail when DESIGN.md or README.md references a
# repository path that does not exist, or when godoc references a
# DESIGN.md section that is missing (the class of rot this repo had when
# runner.go cited a DESIGN.md §4 that was never written).
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# 1. Path-shaped references in the docs must exist. Only paths under the
#    tracked top-level trees are checked, so generated artifacts
#    (out.csv, headline.json, ...) never false-positive.
for doc in DESIGN.md README.md docs/API.md; do
  for ref in $(grep -oE '(internal|cmd|examples|\.github)/[A-Za-z0-9_./-]*[A-Za-z0-9_]' "$doc" | sort -u); do
    if [ ! -e "$ref" ]; then
      echo "$doc references nonexistent path: $ref" >&2
      fail=1
    fi
  done
done

# 2. Every "DESIGN.md §N" reference in Go sources must resolve to a
#    "## §N" heading in DESIGN.md.
for sec in $(grep -rhoE 'DESIGN\.md §[0-9]+' --include='*.go' . | grep -oE '[0-9]+' | sort -u); do
  if ! grep -qE "^## §$sec " DESIGN.md; then
    echo "Go sources reference DESIGN.md §$sec but DESIGN.md has no such section" >&2
    fail=1
  fi
done

# 3. docs/API.md and the muxes (service + fleet coordinator) must agree on
#    the route set, in both directions: an undocumented registration and a
#    documented-but-gone route both fail. The code side is the literal
#    mux.HandleFunc patterns; the doc side is every backticked
#    `METHOD /path` span.
routes_code="$(grep -ohE 'mux\.HandleFunc\("[A-Z]+ [^"]+"' \
    internal/campaign/service/http.go internal/campaign/fleet/http.go \
  | sed -E 's/.*\("//; s/"$//' | sort -u)"
routes_doc="$(grep -oE '`(GET|HEAD|POST|PUT|PATCH|DELETE) /[^`]*`' docs/API.md \
  | tr -d '\`' | sort -u)"
if [ -z "$routes_code" ] || [ -z "$routes_doc" ]; then
  echo "route extraction produced an empty list (check-doc-refs.sh pattern rot?)" >&2
  fail=1
elif [ "$routes_code" != "$routes_doc" ]; then
  echo "docs/API.md and the service/fleet mux route sets drifted:" >&2
  diff <(echo "$routes_doc") <(echo "$routes_code") >&2 || true
  echo "(left: documented in docs/API.md; right: registered on a mux)" >&2
  fail=1
fi

# 4. Every analyzer the smtlint driver registers must be documented: a
#    backticked name in the README analyzer table and a mention in
#    DESIGN.md §9. The list is derived from `smtlint -list`, so adding
#    an analyzer without documenting it fails here.
analyzer_names="$(go run ./cmd/smtlint -list | awk '{print $1}')"
if [ -z "$analyzer_names" ]; then
  echo "smtlint -list produced no analyzers (check-doc-refs.sh pattern rot?)" >&2
  fail=1
fi
for a in $analyzer_names; do
  if ! grep -q "\`$a\`" README.md; then
    echo "analyzer $a is registered in cmd/smtlint but missing from the README analyzer table" >&2
    fail=1
  fi
  if ! grep -q "$a" DESIGN.md; then
    echo "analyzer $a is registered in cmd/smtlint but never mentioned in DESIGN.md" >&2
    fail=1
  fi
done

if [ "$fail" -eq 0 ]; then
  echo "doc references OK"
fi
exit "$fail"
