#!/usr/bin/env bash
# check-doc-refs.sh — fail when DESIGN.md or README.md references a
# repository path that does not exist, or when godoc references a
# DESIGN.md section that is missing (the class of rot this repo had when
# runner.go cited a DESIGN.md §4 that was never written).
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# 1. Path-shaped references in the docs must exist. Only paths under the
#    tracked top-level trees are checked, so generated artifacts
#    (out.csv, headline.json, ...) never false-positive.
for doc in DESIGN.md README.md; do
  for ref in $(grep -oE '(internal|cmd|examples|\.github)/[A-Za-z0-9_./-]*[A-Za-z0-9_]' "$doc" | sort -u); do
    if [ ! -e "$ref" ]; then
      echo "$doc references nonexistent path: $ref" >&2
      fail=1
    fi
  done
done

# 2. Every "DESIGN.md §N" reference in Go sources must resolve to a
#    "## §N" heading in DESIGN.md.
for sec in $(grep -rhoE 'DESIGN\.md §[0-9]+' --include='*.go' . | grep -oE '[0-9]+' | sort -u); do
  if ! grep -qE "^## §$sec " DESIGN.md; then
    echo "Go sources reference DESIGN.md §$sec but DESIGN.md has no such section" >&2
    fail=1
  fi
done

if [ "$fail" -eq 0 ]; then
  echo "doc references OK"
fi
exit "$fail"
