// Quickstart: simulate one mixed 2-thread workload on the Table 1 machine
// under the paper's proposed CDPRF scheme and print a scorecard.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"clustersmt/internal/core"
	"clustersmt/internal/trace"
	"clustersmt/internal/workload"
)

func main() {
	// Pick a workload from the paper's Table 2 pool: an integer SPEC-like
	// thread paired with a memory-bounded one.
	w, err := workload.Find("ispec00.mix.2.1")
	if err != nil {
		log.Fatal(err)
	}

	// Materialize each thread's synthetic trace deterministically.
	var progs []core.ThreadProgram
	for i, prof := range w.Threads {
		g := trace.NewGenerator(prof, w.Seeds[i])
		progs = append(progs, core.ThreadProgram{
			Trace:   g.Generate(80000),
			Profile: prof,
			Seed:    w.Seeds[i] ^ 0xabcdef,
		})
	}

	// The Table 1 baseline: 2 clusters, 32-entry issue queues, 64+64
	// physical registers per cluster, 128-entry per-thread ROBs.
	cfg := core.DefaultConfig(2)
	cfg.WarmupUops = 16000

	p, err := core.NewScheme(cfg, "cdprf", progs)
	if err != nil {
		log.Fatal(err)
	}
	st := p.Run()

	fmt.Printf("workload:     %s\n", w.Name)
	fmt.Printf("cycles:       %d\n", st.Cycles)
	fmt.Printf("throughput:   %.3f uops/cycle\n", st.IPC())
	for t := range progs {
		fmt.Printf("  thread %d:   %.3f IPC (%s)\n", t, st.ThreadIPC(t), w.Threads[t].Name)
	}
	fmt.Printf("copies/ret:   %.3f\n", st.CopiesPerRetired())
	fmt.Printf("iq stalls/ret:%.3f\n", st.IQStallsPerRetired())
	fmt.Printf("L2 misses:    %d   mispredicts: %d\n", st.L2Misses, st.Mispredicts)
}
