// Dynamicrf: watch CDPRF's per-thread register thresholds adapt on an
// ISPEC-FSPEC workload, whose two threads have nearly disjoint register
// demands (integer-heavy vs FP-heavy) — the §5.2 scenario where static
// partitioning underutilizes the files and the dynamic scheme recovers.
//
//	go run ./examples/dynamicrf
package main

import (
	"fmt"
	"log"

	"clustersmt/internal/core"
	"clustersmt/internal/isa"
	"clustersmt/internal/policy"
	"clustersmt/internal/trace"
	"clustersmt/internal/workload"
)

func main() {
	w, err := workload.Find("isfs.mix.2.1")
	if err != nil {
		log.Fatal(err)
	}
	var progs []core.ThreadProgram
	for i, prof := range w.Threads {
		g := trace.NewGenerator(prof, w.Seeds[i])
		progs = append(progs, core.ThreadProgram{
			Trace: g.Generate(120000), Profile: prof, Seed: w.Seeds[i] ^ 0xabcdef,
		})
	}

	// Assemble the scheme manually so we can watch the CDPRF instance.
	cfg := core.DefaultConfig(2)
	rfCfg := policy.DefaultRFConfig(2)
	rfCfg.Interval = 8 * 1024
	cdprf := policy.NewCDPRF(rfCfg).(*policy.CDPRF)
	p, err := core.New(cfg, policy.NewIcount(2), policy.NewCSSP(), cdprf, nil, progs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("threads: 0=%s (int-heavy)  1=%s (fp-heavy)\n", w.Threads[0].Name, w.Threads[1].Name)
	fmt.Printf("%10s %22s %22s\n", "", "int thresholds", "fp thresholds")
	fmt.Printf("%10s %10s %10s %10s %10s\n", "cycle", "t0", "t1", "t0", "t1")
	interval := int64(rfCfg.Interval)
	next := interval
	for !p.Done() {
		p.Step()
		if p.Now() >= next {
			next += interval
			fmt.Printf("%10d %10d %10d %10d %10d\n", p.Now(),
				cdprf.Threshold(0, isa.IntReg), cdprf.Threshold(1, isa.IntReg),
				cdprf.Threshold(0, isa.FpReg), cdprf.Threshold(1, isa.FpReg))
		}
		if p.Now() > 200_000 {
			break
		}
	}
	st := p.Stats()
	fmt.Printf("\nfinal: ipc=%.3f t0=%.3f t1=%.3f rf-stalls=%d\n",
		st.IPC(), st.ThreadIPC(0), st.ThreadIPC(1), st.RFStalls)
	fmt.Println("The int-heavy thread should earn a high integer threshold and a")
	fmt.Println("near-zero FP one, and vice versa — a partition no static split finds.")
}
