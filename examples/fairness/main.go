// Fairness: reproduce the §4 metric on one workload — run each thread
// alone, then together under several schemes, and report the
// throughput/fairness frontier the paper's Figure 10 aggregates.
//
//	go run ./examples/fairness [workload]
package main

import (
	"fmt"
	"log"
	"os"

	"clustersmt/internal/core"
	"clustersmt/internal/metrics"
	"clustersmt/internal/trace"
	"clustersmt/internal/workload"
)

const traceLen = 60000

func programs(w workload.Workload, single int) []core.ThreadProgram {
	var progs []core.ThreadProgram
	for i, prof := range w.Threads {
		if single >= 0 && i != single {
			continue
		}
		g := trace.NewGenerator(prof, w.Seeds[i])
		progs = append(progs, core.ThreadProgram{
			Trace: g.Generate(traceLen), Profile: prof, Seed: w.Seeds[i] ^ 0xabcdef,
		})
	}
	return progs
}

func run(w workload.Workload, scheme string, single int) *metrics.Stats {
	cfg := core.DefaultConfig(1)
	if single < 0 {
		cfg = core.DefaultConfig(len(w.Threads))
	}
	cfg.WarmupUops = traceLen / 5
	p, err := core.NewScheme(cfg, scheme, programs(w, single))
	if err != nil {
		log.Fatal(err)
	}
	return p.Run()
}

func main() {
	name := "server.mix.2.1"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	w, err := workload.Find(name)
	if err != nil {
		log.Fatal(err)
	}

	single := make([]float64, len(w.Threads))
	for t := range w.Threads {
		single[t] = run(w, "icount", t).ThreadIPC(0)
		fmt.Printf("thread %d alone: %.3f IPC (%s)\n", t, single[t], w.Threads[t].Name)
	}
	fmt.Printf("\n%-8s %10s %10s %10s %10s %10s\n",
		"scheme", "IPC", "t0 IPC", "t1 IPC", "fairness", "wspeedup")
	for _, scheme := range []string{"icount", "stall", "flush+", "cssp", "cdprf"} {
		st := run(w, scheme, -1)
		smt := []float64{st.ThreadIPC(0), st.ThreadIPC(1)}
		fmt.Printf("%-8s %10.3f %10.3f %10.3f %10.3f %10.3f\n",
			scheme, st.IPC(), smt[0], smt[1],
			metrics.Fairness(single, smt), metrics.WeightedSpeedup(single, smt))
	}
	fmt.Println("\nFairness = min ratio of the threads' relative slowdowns (refs [17],[33]).")
}
