// Policysweep: a miniature Figure 2 — compare all seven issue-queue
// resource assignment schemes on one category at both studied IQ sizes.
//
//	go run ./examples/policysweep [category]
package main

import (
	"fmt"
	"log"
	"os"

	"clustersmt/internal/experiments"
	"clustersmt/internal/policy"
)

func main() {
	cat := "server"
	if len(os.Args) > 1 {
		cat = os.Args[1]
	}
	r := experiments.NewRunner(40000)
	o := experiments.Options{Categories: []string{cat}, MaxPerCategory: 4}
	cs, err := experiments.Fig2(r, o, policy.PaperIQSchemes(), []int{32, 64})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Issue-queue schemes on %q (speedup vs Icount@32):\n\n", cat)
	fmt.Printf("%-8s %8s %8s\n", "scheme", "iq=32", "iq=64")
	for _, s := range policy.PaperIQSchemes() {
		fmt.Printf("%-8s %8.3f %8.3f\n", s,
			cs.Values[s+"/32"]["AVG"], cs.Values[s+"/64"]["AVG"])
	}
	fmt.Println("\nExpected shape (paper §5.1): CSSP best; cluster-sensitive")
	fmt.Println("beats cluster-insensitive beats private clusters.")
}
