// Package metrics defines the statistics the paper reports and the derived
// metrics used in its evaluation (§4): throughput (committed uops per
// cycle), the fairness metric of Luo/Gabor (minimum ratio between the
// relative slowdowns of any two co-running threads), copies per retired
// instruction (Fig. 3), issue-queue stalls per retired instruction (Fig. 4)
// and the workload-imbalance breakdown (Fig. 5).
package metrics

import "fmt"

// ImbClass indexes the three instruction groups of the Fig. 5 breakdown.
type ImbClass int

const (
	// ImbInt groups integer-port uops (int, imul, branch).
	ImbInt ImbClass = iota
	// ImbFp groups FP/SIMD uops.
	ImbFp
	// ImbMem groups memory uops.
	ImbMem
	// NumImbClasses is the number of imbalance groups.
	NumImbClasses = int(ImbMem) + 1
)

// String names the imbalance class as in Fig. 5.
func (c ImbClass) String() string {
	switch c {
	case ImbInt:
		return "Integer"
	case ImbFp:
		return "Fp/Simd"
	default:
		return "Mem"
	}
}

// Stats aggregates one simulation run.
type Stats struct {
	// Cycles is the simulated cycle count.
	Cycles int64
	// Committed is the number of architecturally committed uops per
	// thread (copies excluded).
	Committed []uint64
	// CommittedCopies counts committed inter-cluster copy uops.
	CommittedCopies uint64
	// CopyTransfers counts values sent over the inter-cluster links
	// (the Fig. 3 numerator).
	CopyTransfers uint64
	// CopiesGenerated counts copy uops inserted at rename (including
	// later-squashed ones).
	CopiesGenerated uint64
	// IQStalls counts rename attempts in which a uop could not go to its
	// preferred cluster because the issue queue was full or over the
	// scheme's limit (the Fig. 4 numerator; retries in later cycles count
	// again, as in the paper where the ratio exceeds 1).
	IQStalls uint64
	// IQBlocked counts cycles in which rename made no progress because of
	// issue-queue space.
	IQBlocked uint64
	// RFStalls counts rename attempts blocked for lack of physical
	// registers (scheme cap or physical exhaustion).
	RFStalls uint64
	// MOBStalls counts rename attempts blocked on MOB space.
	MOBStalls uint64
	// ROBStalls counts rename attempts blocked on ROB space.
	ROBStalls uint64
	// Fetched counts fetched uops per thread (wrong path included).
	Fetched []uint64
	// Renamed counts renamed uops (copies excluded, wrong path included).
	Renamed uint64
	// Squashed counts squashed uops (wrong path + flushes).
	Squashed uint64
	// Flushes counts Flush+/misprediction squash events.
	Flushes, Mispredicts uint64
	// BranchLookups counts conditional-branch predictions made.
	BranchLookups uint64
	// L2Misses counts load L2 misses observed at execute.
	L2Misses uint64
	// Imbalance is the Fig. 5 histogram: [class][kind] cycle counts where
	// kind 0 = a ready uop of that class could not issue in either
	// cluster, kind 1 = it could not issue in its own cluster but the
	// other cluster had a free compatible port.
	Imbalance [NumImbClasses][2]int64
	// IssueCycles counts cycles in which at least one uop issued
	// (the Fig. 5 denominator).
	IssueCycles int64
	// IssuedUops counts issued uops (copies excluded).
	IssuedUops uint64
	// StoreForwards counts loads served by store-to-load forwarding.
	StoreForwards uint64
	// IQOccSum[c][t] accumulates thread t's issue-queue occupancy in
	// cluster c each cycle; divide by Cycles for the average.
	IQOccSum [][]int64
	// ThreadWindowCycles/ThreadWindowCommitted give each thread a private
	// measurement window starting at its own warm-up point (its first
	// WarmupUops commits), so per-thread IPCs — and therefore the
	// fairness metric — compare identical trace regions whether the
	// thread runs alone or shares the machine. Zero cycles = window never
	// opened (thread too slow); ThreadIPC falls back to the global window.
	ThreadWindowCycles    []int64
	ThreadWindowCommitted []uint64
}

// AvgIQOcc returns thread t's average issue-queue occupancy in cluster c.
func (s *Stats) AvgIQOcc(c, t int) float64 {
	if s.Cycles == 0 || c >= len(s.IQOccSum) || t >= len(s.IQOccSum[c]) {
		return 0
	}
	return float64(s.IQOccSum[c][t]) / float64(s.Cycles)
}

// NewStats returns a Stats sized for n threads on a clusters-cluster
// back-end (one IQOccSum row per actual cluster, not a hardcoded maximum).
func NewStats(n, clusters int) *Stats {
	st := &Stats{
		Committed:             make([]uint64, n),
		Fetched:               make([]uint64, n),
		ThreadWindowCycles:    make([]int64, n),
		ThreadWindowCommitted: make([]uint64, n),
	}
	for c := 0; c < clusters; c++ {
		st.IQOccSum = append(st.IQOccSum, make([]int64, n))
	}
	return st
}

// TotalCommitted returns committed uops summed over threads.
func (s *Stats) TotalCommitted() uint64 {
	var total uint64
	for _, c := range s.Committed {
		total += c
	}
	return total
}

// IPC returns total committed uops per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.TotalCommitted()) / float64(s.Cycles)
}

// ThreadIPC returns thread t's committed uops per cycle, preferring the
// thread's private post-warm-up window when one was recorded.
func (s *Stats) ThreadIPC(t int) float64 {
	if t < len(s.ThreadWindowCycles) && s.ThreadWindowCycles[t] > 0 {
		return float64(s.ThreadWindowCommitted[t]) / float64(s.ThreadWindowCycles[t])
	}
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed[t]) / float64(s.Cycles)
}

// CopiesPerRetired returns link transfers per committed uop (Fig. 3).
func (s *Stats) CopiesPerRetired() float64 {
	if c := s.TotalCommitted(); c > 0 {
		return float64(s.CopyTransfers) / float64(c)
	}
	return 0
}

// IQStallsPerRetired returns issue-queue stalls per committed uop (Fig. 4).
func (s *Stats) IQStallsPerRetired() float64 {
	if c := s.TotalCommitted(); c > 0 {
		return float64(s.IQStalls) / float64(c)
	}
	return 0
}

// ImbalanceFrac returns the Fig. 5 fraction for (class, kind): the share of
// issuing cycles in which the condition was observed.
func (s *Stats) ImbalanceFrac(c ImbClass, kind int) float64 {
	if s.IssueCycles == 0 {
		return 0
	}
	return float64(s.Imbalance[c][kind]) / float64(s.IssueCycles)
}

// String summarizes the run.
func (s *Stats) String() string {
	return fmt.Sprintf("cycles=%d committed=%d ipc=%.3f copies/ret=%.3f iqstalls/ret=%.3f mispredicts=%d l2miss=%d",
		s.Cycles, s.TotalCommitted(), s.IPC(), s.CopiesPerRetired(), s.IQStallsPerRetired(), s.Mispredicts, s.L2Misses)
}

// Fairness implements the metric of §4 (refs [17], [33]): the minimum over
// all thread pairs of the ratio between relative slowdowns, where thread
// i's slowdown is singleIPC[i]/smtIPC[i]. A value of 1 means perfectly
// equal slowdowns; lower is less fair. Threads with zero SMT IPC yield 0.
func Fairness(singleIPC, smtIPC []float64) float64 {
	if len(singleIPC) != len(smtIPC) || len(singleIPC) < 2 {
		return 0
	}
	slow := make([]float64, len(singleIPC))
	for i := range slow {
		if smtIPC[i] <= 0 || singleIPC[i] <= 0 {
			return 0
		}
		slow[i] = singleIPC[i] / smtIPC[i]
	}
	min := 1.0
	for i := 0; i < len(slow); i++ {
		for j := i + 1; j < len(slow); j++ {
			r := slow[i] / slow[j]
			if r > 1 {
				r = 1 / r
			}
			if r < min {
				min = r
			}
		}
	}
	return min
}

// WeightedSpeedup returns the sum over threads of smtIPC/singleIPC, the
// complementary throughput-quality metric of Snavely & Tullsen; reported by
// the harness alongside fairness for context.
func WeightedSpeedup(singleIPC, smtIPC []float64) float64 {
	if len(singleIPC) != len(smtIPC) {
		return 0
	}
	total := 0.0
	for i := range smtIPC {
		if singleIPC[i] > 0 {
			total += smtIPC[i] / singleIPC[i]
		}
	}
	return total
}
