package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestIPCAndThreadIPC(t *testing.T) {
	s := NewStats(2, 2)
	s.Cycles = 1000
	s.Committed[0] = 1500
	s.Committed[1] = 500
	if s.IPC() != 2.0 || s.ThreadIPC(0) != 1.5 || s.ThreadIPC(1) != 0.5 {
		t.Errorf("IPC math wrong: %v %v %v", s.IPC(), s.ThreadIPC(0), s.ThreadIPC(1))
	}
	if s.TotalCommitted() != 2000 {
		t.Error("TotalCommitted wrong")
	}
}

// TestIQOccSumSizedFromClusters pins the bugfix for the hardcoded 4-row
// occupancy matrix: the stats shape must follow the machine's actual
// cluster count, and out-of-range queries must stay safe.
func TestIQOccSumSizedFromClusters(t *testing.T) {
	for _, clusters := range []int{1, 2, 3, 4} {
		s := NewStats(2, clusters)
		if len(s.IQOccSum) != clusters {
			t.Errorf("NewStats(2, %d): %d IQOccSum rows", clusters, len(s.IQOccSum))
		}
		for c, row := range s.IQOccSum {
			if len(row) != 2 {
				t.Errorf("clusters=%d: row %d has %d thread slots", clusters, c, len(row))
			}
		}
		s.Cycles = 10
		if got := s.AvgIQOcc(clusters, 0); got != 0 {
			t.Errorf("AvgIQOcc past the last cluster = %v, want 0", got)
		}
	}
}

func TestZeroCycleSafety(t *testing.T) {
	s := NewStats(1, 2)
	if s.IPC() != 0 || s.ThreadIPC(0) != 0 || s.CopiesPerRetired() != 0 ||
		s.IQStallsPerRetired() != 0 || s.ImbalanceFrac(ImbInt, 0) != 0 {
		t.Error("zero-state metrics must be 0, not NaN")
	}
}

func TestRatios(t *testing.T) {
	s := NewStats(1, 2)
	s.Cycles = 100
	s.Committed[0] = 200
	s.CopyTransfers = 50
	s.IQStalls = 400
	if s.CopiesPerRetired() != 0.25 {
		t.Errorf("copies/ret %v", s.CopiesPerRetired())
	}
	if s.IQStallsPerRetired() != 2.0 {
		t.Errorf("stalls/ret %v (the paper's Fig. 4 exceeds 1: retries count)", s.IQStallsPerRetired())
	}
}

func TestImbalanceFrac(t *testing.T) {
	s := NewStats(1, 2)
	s.IssueCycles = 200
	s.Imbalance[ImbFp][1] = 50
	if s.ImbalanceFrac(ImbFp, 1) != 0.25 {
		t.Errorf("imbalance frac %v", s.ImbalanceFrac(ImbFp, 1))
	}
}

func TestImbClassNames(t *testing.T) {
	if ImbInt.String() != "Integer" || ImbFp.String() != "Fp/Simd" || ImbMem.String() != "Mem" {
		t.Error("Fig. 5 class names wrong")
	}
}

func TestAvgIQOcc(t *testing.T) {
	s := NewStats(2, 2)
	s.Cycles = 10
	s.IQOccSum[1][0] = 55
	if s.AvgIQOcc(1, 0) != 5.5 {
		t.Errorf("AvgIQOcc %v", s.AvgIQOcc(1, 0))
	}
	if s.AvgIQOcc(9, 0) != 0 {
		t.Error("out-of-range cluster must return 0")
	}
}

func TestFairnessEqualSlowdowns(t *testing.T) {
	// Both threads slowed down 2x: perfectly fair.
	f := Fairness([]float64{2, 1}, []float64{1, 0.5})
	if f != 1 {
		t.Errorf("equal slowdowns fairness %v, want 1", f)
	}
}

func TestFairnessAsymmetric(t *testing.T) {
	// Thread 0 slowed 2x, thread 1 slowed 4x: fairness = 0.5.
	f := Fairness([]float64{2, 2}, []float64{1, 0.5})
	if math.Abs(f-0.5) > 1e-12 {
		t.Errorf("fairness %v, want 0.5", f)
	}
}

func TestFairnessDegenerate(t *testing.T) {
	if Fairness([]float64{1}, []float64{1}) != 0 {
		t.Error("single thread has no pairwise fairness")
	}
	if Fairness([]float64{1, 1}, []float64{0, 1}) != 0 {
		t.Error("zero SMT IPC must yield 0")
	}
	if Fairness([]float64{1, 1}, []float64{1}) != 0 {
		t.Error("mismatched lengths must yield 0")
	}
}

func TestWeightedSpeedup(t *testing.T) {
	ws := WeightedSpeedup([]float64{2, 1}, []float64{1, 0.5})
	if ws != 1.0 {
		t.Errorf("weighted speedup %v, want 1.0", ws)
	}
}

func TestStringMentionsKeyNumbers(t *testing.T) {
	s := NewStats(1, 2)
	s.Cycles = 100
	s.Committed[0] = 321
	out := s.String()
	if !strings.Contains(out, "321") || !strings.Contains(out, "cycles=100") {
		t.Errorf("String() = %q", out)
	}
}

// Properties of the fairness metric: symmetric in thread order, within
// [0,1], and equal to 1 iff slowdowns match.
func TestFairnessProperties(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		s0, s1 := float64(a%50)+1, float64(b%50)+1
		m0, m1 := float64(c%50)+1, float64(d%50)+1
		x := Fairness([]float64{s0, s1}, []float64{m0, m1})
		y := Fairness([]float64{s1, s0}, []float64{m1, m0})
		if math.Abs(x-y) > 1e-12 {
			return false
		}
		return x >= 0 && x <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
