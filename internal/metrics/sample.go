package metrics

// Sample is one observation window of a running simulation: the deltas of
// the headline counters over the window, plus the cycle at which the window
// closed. Samples are produced by core.Processor at a configurable cycle
// interval (see core.Processor.SetSampler) and flow through the experiment
// runner's Progress callbacks into campaign results and the service
// daemon's SSE event stream — they are the live time-series view of a
// simulation that Stats only summarizes at the end.
//
// All counter fields are per-window deltas, not running totals, so
// consumers can plot them directly and sum them to reconstruct totals.
// Rates (IPC, IQOcc) are already normalized by Window.
type Sample struct {
	// Cycle is the machine cycle at which the window closed (absolute,
	// including warm-up cycles; windows never span the warm-up stats
	// reset — sampling re-bases there).
	Cycle int64 `json:"cycle"`
	// Window is the number of cycles the sample covers. The final partial
	// window of a run is not reported.
	Window int64 `json:"window"`
	// Committed is the number of uops committed in the window (all
	// threads, copies excluded).
	Committed uint64 `json:"committed"`
	// IPC is Committed/Window.
	IPC float64 `json:"ipc"`
	// IQOcc is the mean number of occupied issue-queue entries over the
	// window, summed across clusters and threads.
	IQOcc float64 `json:"iq_occ"`
	// Copies counts inter-cluster link transfers in the window.
	Copies uint64 `json:"copies"`
	// L1Misses and L2Misses count data-cache misses in the window.
	L1Misses uint64 `json:"l1_misses"`
	L2Misses uint64 `json:"l2_misses"`
}
