// Package isa defines the micro-operation (uop) vocabulary shared by the
// trace generator and the processor model: instruction classes, logical
// register identifiers, register kinds and default execution latencies.
//
// The machine is an x86-like design whose front-end cracks macro-instructions
// into uops (paper §3); everything past the trace cache operates on uops, so
// the simulator's ISA is the uop ISA defined here.
package isa

import "fmt"

// Class identifies the execution class of a uop. The class determines which
// issue ports can execute it (see package cluster) and which register file
// kind its destination lives in.
type Class uint8

const (
	// Int is a single-cycle integer ALU operation.
	Int Class = iota
	// IntMul is a multi-cycle integer operation (multiply/divide).
	IntMul
	// Fp is a floating-point or SIMD arithmetic operation.
	Fp
	// Load reads memory.
	Load
	// Store writes memory.
	Store
	// Branch is a conditional or indirect control transfer.
	Branch
	// Copy is an inter-cluster register copy generated on demand by the
	// rename logic; it never appears in traces.
	Copy
	// Nop allocates a ROB slot but no back-end resources (used for
	// padding and testing).
	Nop

	// NumClasses is the number of distinct uop classes.
	NumClasses = int(Nop) + 1
)

// String returns the mnemonic for the class.
func (c Class) String() string {
	switch c {
	case Int:
		return "int"
	case IntMul:
		return "imul"
	case Fp:
		return "fp"
	case Load:
		return "load"
	case Store:
		return "store"
	case Branch:
		return "branch"
	case Copy:
		return "copy"
	case Nop:
		return "nop"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Valid reports whether c is a defined class.
func (c Class) Valid() bool { return int(c) < NumClasses }

// RegKind distinguishes the two physical register files implemented per
// cluster (paper §3: one integer file and one FP/SIMD file).
type RegKind uint8

const (
	// IntReg is the integer register kind.
	IntReg RegKind = iota
	// FpReg is the FP/SIMD register kind.
	FpReg
	// NumRegKinds is the number of register kinds.
	NumRegKinds = int(FpReg) + 1
)

// String returns the name of the register kind.
func (k RegKind) String() string {
	if k == IntReg {
		return "int"
	}
	return "fp"
}

// Logical register space. The generator uses an x86-64-like namespace:
// 16 integer registers and 16 FP/SIMD registers. Register numbers are
// encoded in a single int16 space: [0,NumIntRegs) are integer,
// [NumIntRegs, NumIntRegs+NumFpRegs) are FP/SIMD. RegNone marks an absent
// operand.
const (
	// NumIntRegs is the number of logical integer registers.
	NumIntRegs = 16
	// NumFpRegs is the number of logical FP/SIMD registers.
	NumFpRegs = 16
	// NumLogicalRegs is the total logical register count.
	NumLogicalRegs = NumIntRegs + NumFpRegs
	// RegNone marks an absent source or destination operand.
	RegNone int16 = -1
)

// KindOf returns the register kind of logical register r.
// It panics if r is RegNone or out of range.
//
//smtlint:noalloc
func KindOf(r int16) RegKind {
	if r < 0 || int(r) >= NumLogicalRegs {
		panic(fmt.Sprintf("isa: KindOf(%d) out of range", r))
	}
	if r < NumIntRegs {
		return IntReg
	}
	return FpReg
}

// FirstReg returns the first logical register number of kind k.
//
//smtlint:noalloc
func FirstReg(k RegKind) int16 {
	if k == IntReg {
		return 0
	}
	return NumIntRegs
}

// RegCount returns the number of logical registers of kind k.
//
//smtlint:noalloc
func RegCount(k RegKind) int {
	if k == IntReg {
		return NumIntRegs
	}
	return NumFpRegs
}

// DestKind returns the register-file kind a uop of class c writes.
// Loads may write either kind; the trace records the actual destination, so
// DestKind is derived from the destination register when one exists. For
// classes with a fixed kind this returns that kind.
//
//smtlint:noalloc
func DestKind(c Class) RegKind {
	switch c {
	case Fp:
		return FpReg
	default:
		return IntReg
	}
}

// Latency returns the default execution latency, in cycles, of class c.
// Loads return the address-generation latency only; memory access time is
// added by the cache model. These follow the Table 1 machine (1-cycle L1).
//
//smtlint:noalloc
func Latency(c Class) int {
	switch c {
	case Int:
		return 1
	case IntMul:
		return 3
	case Fp:
		return 4
	case Load:
		return 1 // AGU; cache latency added at execute
	case Store:
		return 1 // address + data capture
	case Branch:
		return 1
	case Copy:
		return 1 // link transfer latency modelled by interconnect
	case Nop:
		return 1
	default:
		return 1
	}
}

// Uop is one micro-operation as it appears in a trace or in flight.
// The zero value is a Nop with no operands.
type Uop struct {
	// PC is the synthetic program counter of the parent instruction.
	PC uint64
	// Class is the execution class.
	Class Class
	// Src1, Src2 are logical source registers, RegNone if absent.
	Src1, Src2 int16
	// Dst is the logical destination register, RegNone if absent.
	Dst int16
	// Addr is the effective address for Load/Store uops.
	Addr uint64
	// Taken is the architectural outcome for Branch uops.
	Taken bool
	// Target is the branch target PC for taken branches.
	Target uint64
}

// HasDest reports whether the uop writes a logical register.
//
//smtlint:noalloc
func (u *Uop) HasDest() bool { return u.Dst != RegNone }

// IsMem reports whether the uop accesses memory.
//
//smtlint:noalloc
func (u *Uop) IsMem() bool { return u.Class == Load || u.Class == Store }

// NumSources returns the number of present source operands (0..2).
//
//smtlint:noalloc
func (u *Uop) NumSources() int {
	n := 0
	if u.Src1 != RegNone {
		n++
	}
	if u.Src2 != RegNone {
		n++
	}
	return n
}

// String formats the uop for debugging output.
func (u *Uop) String() string {
	s := fmt.Sprintf("%s pc=%#x", u.Class, u.PC)
	if u.Src1 != RegNone {
		s += fmt.Sprintf(" s1=r%d", u.Src1)
	}
	if u.Src2 != RegNone {
		s += fmt.Sprintf(" s2=r%d", u.Src2)
	}
	if u.Dst != RegNone {
		s += fmt.Sprintf(" d=r%d", u.Dst)
	}
	if u.IsMem() {
		s += fmt.Sprintf(" addr=%#x", u.Addr)
	}
	if u.Class == Branch {
		s += fmt.Sprintf(" taken=%v", u.Taken)
	}
	return s
}
