package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestClassString(t *testing.T) {
	cases := map[Class]string{
		Int: "int", IntMul: "imul", Fp: "fp", Load: "load",
		Store: "store", Branch: "branch", Copy: "copy", Nop: "nop",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("Class(%d).String() = %q, want %q", c, got, want)
		}
	}
	if got := Class(200).String(); !strings.Contains(got, "200") {
		t.Errorf("unknown class string %q should mention the value", got)
	}
}

func TestClassValid(t *testing.T) {
	for c := Class(0); int(c) < NumClasses; c++ {
		if !c.Valid() {
			t.Errorf("class %v should be valid", c)
		}
	}
	if Class(NumClasses).Valid() {
		t.Error("class beyond NumClasses should be invalid")
	}
}

func TestRegKindString(t *testing.T) {
	if IntReg.String() != "int" || FpReg.String() != "fp" {
		t.Errorf("unexpected kind names %q %q", IntReg, FpReg)
	}
}

func TestKindOf(t *testing.T) {
	for r := int16(0); r < NumIntRegs; r++ {
		if KindOf(r) != IntReg {
			t.Errorf("KindOf(%d) = %v, want IntReg", r, KindOf(r))
		}
	}
	for r := int16(NumIntRegs); r < NumLogicalRegs; r++ {
		if KindOf(r) != FpReg {
			t.Errorf("KindOf(%d) = %v, want FpReg", r, KindOf(r))
		}
	}
}

func TestKindOfPanics(t *testing.T) {
	for _, r := range []int16{RegNone, -5, NumLogicalRegs, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("KindOf(%d) should panic", r)
				}
			}()
			KindOf(r)
		}()
	}
}

func TestFirstRegAndCount(t *testing.T) {
	if FirstReg(IntReg) != 0 || FirstReg(FpReg) != NumIntRegs {
		t.Error("FirstReg inconsistent with register layout")
	}
	if RegCount(IntReg) != NumIntRegs || RegCount(FpReg) != NumFpRegs {
		t.Error("RegCount inconsistent with register layout")
	}
	// Property: every register of a kind maps back to that kind.
	for _, k := range []RegKind{IntReg, FpReg} {
		for i := 0; i < RegCount(k); i++ {
			if KindOf(FirstReg(k)+int16(i)) != k {
				t.Fatalf("register %d of kind %v maps to %v", i, k, KindOf(FirstReg(k)+int16(i)))
			}
		}
	}
}

func TestLatencyPositive(t *testing.T) {
	for c := Class(0); int(c) < NumClasses; c++ {
		if Latency(c) < 1 {
			t.Errorf("Latency(%v) = %d, want >= 1", c, Latency(c))
		}
	}
	if Latency(IntMul) <= Latency(Int) {
		t.Error("integer multiply should be slower than simple int")
	}
	if Latency(Fp) <= Latency(Int) {
		t.Error("fp should be slower than simple int")
	}
}

func TestDestKind(t *testing.T) {
	if DestKind(Fp) != FpReg {
		t.Error("Fp writes the FP file")
	}
	if DestKind(Int) != IntReg || DestKind(IntMul) != IntReg {
		t.Error("integer classes write the integer file")
	}
}

func TestUopHelpers(t *testing.T) {
	u := Uop{Class: Load, Src1: 3, Src2: RegNone, Dst: 17, Addr: 0x40}
	if !u.HasDest() || !u.IsMem() || u.NumSources() != 1 {
		t.Errorf("load helpers wrong: %+v", u)
	}
	b := Uop{Class: Branch, Src1: 1, Src2: RegNone, Dst: RegNone, Taken: true}
	if b.HasDest() || b.IsMem() || b.NumSources() != 1 {
		t.Errorf("branch helpers wrong: %+v", b)
	}
	n := Uop{Class: Nop, Src1: RegNone, Src2: RegNone, Dst: RegNone}
	if n.NumSources() != 0 || n.HasDest() {
		t.Errorf("nop helpers wrong: %+v", n)
	}
}

func TestUopStringMentionsFields(t *testing.T) {
	u := Uop{Class: Store, Src1: 2, Src2: 19, Dst: RegNone, Addr: 0xbeef}
	s := u.String()
	for _, want := range []string{"store", "s1=r2", "s2=r19", "addr=0xbeef"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

// Property: NumSources is always consistent with the operand fields.
func TestNumSourcesProperty(t *testing.T) {
	f := func(s1, s2 int16) bool {
		u := Uop{Src1: s1, Src2: s2}
		want := 0
		if s1 != RegNone {
			want++
		}
		if s2 != RegNone {
			want++
		}
		return u.NumSources() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
