// Package cachesim models the paper's shared memory hierarchy (Table 1):
// a 32 KB 2-way L1 with 2 read + 2 write ports and 1-cycle hit latency, a
// 4 MB 8-way L2 with 12-cycle hit latency, main memory at 60 cycles (the
// Table 1 default; MemLatency is a sweepable machine-shape axis, and the
// core sizes its completion wheel from the configured worst case), and a
// 1024-entry 8-way DTLB. Misses are tracked in MSHRs so that requests to a
// line already in flight coalesce with the outstanding fill.
//
// The hierarchy reports, for every access, the level that served it and the
// completion cycle. L2 misses are what the Stall/Flush+ policies key on.
package cachesim

// Level identifies which level of the hierarchy served an access.
type Level uint8

const (
	// L1Hit means the access hit in the L1.
	L1Hit Level = iota
	// L2Hit means the access missed L1 and hit L2.
	L2Hit
	// MemHit means the access missed the L2 and went to memory.
	MemHit
)

// String names the level.
func (l Level) String() string {
	switch l {
	case L1Hit:
		return "L1"
	case L2Hit:
		return "L2"
	default:
		return "mem"
	}
}

// Config sizes the hierarchy. Zero values are replaced by Table 1 defaults
// in New.
type Config struct {
	LineSize int

	L1Size       int
	L1Assoc      int
	L1Latency    int
	L1ReadPorts  int
	L1WritePorts int

	L2Size    int
	L2Assoc   int
	L2Latency int

	MemLatency int

	DTLBEntries    int
	DTLBAssoc      int
	DTLBPageSize   int
	DTLBMissCycles int

	MSHRs int
}

// DefaultConfig returns the Table 1 memory configuration.
func DefaultConfig() Config {
	return Config{
		LineSize:       64,
		L1Size:         32 << 10,
		L1Assoc:        2,
		L1Latency:      1,
		L1ReadPorts:    2,
		L1WritePorts:   2,
		L2Size:         4 << 20,
		L2Assoc:        8,
		L2Latency:      12,
		MemLatency:     60,
		DTLBEntries:    1024,
		DTLBAssoc:      8,
		DTLBPageSize:   4096,
		DTLBMissCycles: 20,
		MSHRs:          16,
	}
}

// WithDefaults returns the configuration with zero fields replaced by the
// Table 1 defaults — the exact values New would run with. Validation code
// (core.Config.Validate sizing the completion wheel) needs the effective
// latencies without building a hierarchy.
func (c Config) WithDefaults() Config {
	c.fillDefaults()
	return c
}

func (c *Config) fillDefaults() {
	d := DefaultConfig()
	if c.LineSize <= 0 {
		c.LineSize = d.LineSize
	}
	if c.L1Size <= 0 {
		c.L1Size = d.L1Size
	}
	if c.L1Assoc <= 0 {
		c.L1Assoc = d.L1Assoc
	}
	if c.L1Latency <= 0 {
		c.L1Latency = d.L1Latency
	}
	if c.L1ReadPorts <= 0 {
		c.L1ReadPorts = d.L1ReadPorts
	}
	if c.L1WritePorts <= 0 {
		c.L1WritePorts = d.L1WritePorts
	}
	if c.L2Size <= 0 {
		c.L2Size = d.L2Size
	}
	if c.L2Assoc <= 0 {
		c.L2Assoc = d.L2Assoc
	}
	if c.L2Latency <= 0 {
		c.L2Latency = d.L2Latency
	}
	if c.MemLatency <= 0 {
		c.MemLatency = d.MemLatency
	}
	if c.DTLBEntries <= 0 {
		c.DTLBEntries = d.DTLBEntries
	}
	if c.DTLBAssoc <= 0 {
		c.DTLBAssoc = d.DTLBAssoc
	}
	if c.DTLBPageSize <= 0 {
		c.DTLBPageSize = d.DTLBPageSize
	}
	if c.DTLBMissCycles <= 0 {
		c.DTLBMissCycles = d.DTLBMissCycles
	}
	if c.MSHRs <= 0 {
		c.MSHRs = d.MSHRs
	}
}

// setAssocCache is an LRU set-associative tag array.
type setAssocCache struct {
	sets      int
	assoc     int
	shift     uint // log2(line or page size)
	tags      []uint64
	valid     []bool
	lastUse   []int64
	accesses  uint64
	misses    uint64
	setMask   uint64
	wayStride int
}

func newSetAssoc(totalEntries, assoc int, shift uint) *setAssocCache {
	if assoc <= 0 {
		assoc = 1
	}
	sets := totalEntries / assoc
	if sets <= 0 {
		sets = 1
	}
	// Round sets down to a power of two for cheap indexing.
	p := 1
	for p*2 <= sets {
		p *= 2
	}
	sets = p
	n := sets * assoc
	return &setAssocCache{
		sets:      sets,
		assoc:     assoc,
		shift:     shift,
		tags:      make([]uint64, n),
		valid:     make([]bool, n),
		lastUse:   make([]int64, n),
		setMask:   uint64(sets - 1),
		wayStride: assoc,
	}
}

// access looks up addr at time now, filling on miss; it reports hit/miss.
//
//smtlint:noalloc
func (c *setAssocCache) access(addr uint64, now int64) bool {
	c.accesses++
	block := addr >> c.shift
	set := int(block & c.setMask)
	base := set * c.wayStride
	victim := base
	oldest := int64(1<<62 - 1)
	for w := 0; w < c.assoc; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == block {
			c.lastUse[i] = now
			return true
		}
		if !c.valid[i] {
			victim = i
			oldest = -1 << 62
		} else if c.lastUse[i] < oldest {
			victim = i
			oldest = c.lastUse[i]
		}
	}
	c.misses++
	c.tags[victim] = block
	c.valid[victim] = true
	c.lastUse[victim] = now
	return false
}

// probe reports whether addr is present without updating any state.
//
//smtlint:noalloc
func (c *setAssocCache) probe(addr uint64) bool {
	block := addr >> c.shift
	set := int(block & c.setMask)
	base := set * c.wayStride
	for w := 0; w < c.assoc; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == block {
			return true
		}
	}
	return false
}

// Result describes one access through the hierarchy.
type Result struct {
	// Level is the level that served the access.
	Level Level
	// DoneAt is the cycle the data is available.
	DoneAt int64
	// TLBMiss reports whether the access also took a DTLB miss.
	TLBMiss bool
}

// Stats aggregates hierarchy counters.
type Stats struct {
	L1Accesses, L1Misses   uint64
	L2Accesses, L2Misses   uint64
	TLBAccesses, TLBMisses uint64
	Coalesced              uint64
}

// Hierarchy is the shared L1+L2+memory model. It is not safe for concurrent
// use; each simulated processor owns one.
type Hierarchy struct {
	cfg  Config
	l1   *setAssocCache
	l2   *setAssocCache
	dtlb *setAssocCache

	lineShift uint

	// mshr tracks in-flight line fills in a fixed-slot table.
	mshr mshrTable

	// port accounting for the current cycle
	portCycle  int64
	readsUsed  int
	writesUsed int

	stats Stats
}

// New builds a hierarchy from cfg (zero fields take Table 1 defaults).
func New(cfg Config) *Hierarchy {
	cfg.fillDefaults()
	lineShift := log2(cfg.LineSize)
	pageShift := log2(cfg.DTLBPageSize)
	h := &Hierarchy{
		cfg:       cfg,
		lineShift: lineShift,
		l1:        newSetAssoc(cfg.L1Size/cfg.LineSize, cfg.L1Assoc, lineShift),
		l2:        newSetAssoc(cfg.L2Size/cfg.LineSize, cfg.L2Assoc, lineShift),
		dtlb:      newSetAssoc(cfg.DTLBEntries, cfg.DTLBAssoc, pageShift),
	}
	h.mshr.init(cfg.MSHRs)
	return h
}

// mshrTable tracks in-flight line fills: (line block, completion cycle)
// pairs in a flat slot array scanned linearly. A slot whose done cycle has
// passed is dead and reusable — there is no explicit delete. With Table 1's
// 16 MSHRs the whole table is two cache lines, so the scan beats the
// map[uint64]int64 it replaced (hash + bucket walk per memory access, plus
// map iteration garbage on every occupancy check) by a wide margin.
//
// The table starts at the configured MSHR count but can exceed it: loads
// arbitrate through Available before inserting, but stores access the cache
// at retirement without an MSHR gate (Table 1 retires stores through the L1
// write ports), so insert grows the slot array on overflow rather than
// dropping a fill. Growth is amortized and stops at the workload's
// high-water mark; steady-state operation never allocates.
type mshrTable struct {
	lines []uint64
	done  []int64
	mshrs int // configured MSHR count (Available's threshold)
}

func (m *mshrTable) init(mshrs int) {
	m.mshrs = mshrs
	m.lines = make([]uint64, 0, mshrs)
	m.done = make([]int64, 0, mshrs)
}

// available reports whether a new outstanding miss can be tracked at now:
// fewer than the configured MSHR count of fills are still in flight.
//
//smtlint:noalloc
func (m *mshrTable) available(now int64) bool {
	live := 0
	for _, d := range m.done {
		if d > now {
			live++
		}
	}
	return live < m.mshrs
}

// lookup returns the completion cycle of an in-flight fill of line, or
// (0, false) when none is pending.
//
//smtlint:noalloc
func (m *mshrTable) lookup(line uint64, now int64) (int64, bool) {
	for i, l := range m.lines {
		if l == line && m.done[i] > now {
			return m.done[i], true
		}
	}
	return 0, false
}

// insert records a fill of line completing at done, reusing the line's own
// slot or any expired slot before growing the table.
//
//smtlint:noalloc
func (m *mshrTable) insert(line uint64, doneAt, now int64) {
	free := -1
	for i, l := range m.lines {
		if l == line {
			m.done[i] = doneAt
			return
		}
		if free < 0 && m.done[i] <= now {
			free = i
		}
	}
	if free >= 0 {
		m.lines[free] = line
		m.done[free] = doneAt
		return
	}
	//smtlint:allow tracker grows to peak outstanding-line population, then reuses slots
	m.lines = append(m.lines, line)
	//smtlint:allow grows in lockstep with lines above
	m.done = append(m.done, doneAt)
}

func log2(n int) uint {
	var s uint
	for 1<<s < n {
		s++
	}
	return s
}

// Config returns the (default-filled) configuration in use.
func (h *Hierarchy) Config() Config { return h.cfg }

//smtlint:noalloc
func (h *Hierarchy) rollPorts(now int64) {
	if now != h.portCycle {
		h.portCycle = now
		h.readsUsed = 0
		h.writesUsed = 0
	}
}

// TryReadPort claims an L1 read port for cycle now; it reports success.
//
//smtlint:noalloc
func (h *Hierarchy) TryReadPort(now int64) bool {
	h.rollPorts(now)
	if h.readsUsed >= h.cfg.L1ReadPorts {
		return false
	}
	h.readsUsed++
	return true
}

// TryWritePort claims an L1 write port for cycle now; it reports success.
//
//smtlint:noalloc
func (h *Hierarchy) TryWritePort(now int64) bool {
	h.rollPorts(now)
	if h.writesUsed >= h.cfg.L1WritePorts {
		return false
	}
	h.writesUsed++
	return true
}

// MSHRAvailable reports whether a new outstanding miss can be tracked at
// cycle now (expired slots count as free; they are reused in place).
//
//smtlint:noalloc
func (h *Hierarchy) MSHRAvailable(now int64) bool {
	return h.mshr.available(now)
}

// Access performs a data access at cycle now and returns where it was
// served and when it completes. The caller is responsible for port and MSHR
// arbitration via TryReadPort/TryWritePort/MSHRAvailable.
//
//smtlint:noalloc
func (h *Hierarchy) Access(addr uint64, now int64) Result {
	lat := int64(0)
	var res Result

	h.stats.TLBAccesses++
	if !h.dtlb.access(addr, now) {
		h.stats.TLBMisses++
		res.TLBMiss = true
		lat += int64(h.cfg.DTLBMissCycles)
	}

	line := addr >> h.lineShift

	// Coalesce with an in-flight fill of the same line.
	if done, ok := h.mshr.lookup(line, now); ok {
		h.stats.Coalesced++
		res.Level = MemHit
		res.DoneAt = done + lat
		return res
	}

	h.stats.L1Accesses++
	if h.l1.access(addr, now) {
		res.Level = L1Hit
		res.DoneAt = now + lat + int64(h.cfg.L1Latency)
		return res
	}
	h.stats.L1Misses++

	h.stats.L2Accesses++
	if h.l2.access(addr, now) {
		res.Level = L2Hit
		res.DoneAt = now + lat + int64(h.cfg.L1Latency+h.cfg.L2Latency)
		return res
	}
	h.stats.L2Misses++

	res.Level = MemHit
	res.DoneAt = now + lat + int64(h.cfg.L1Latency+h.cfg.L2Latency+h.cfg.MemLatency)
	h.mshr.insert(line, res.DoneAt, now)
	return res
}

// ProbeL2 reports whether addr currently resides in the L2 (no state change).
//
//smtlint:noalloc
func (h *Hierarchy) ProbeL2(addr uint64) bool { return h.l2.probe(addr) }

// ProbeL1 reports whether addr currently resides in the L1 (no state change).
//
//smtlint:noalloc
func (h *Hierarchy) ProbeL1(addr uint64) bool { return h.l1.probe(addr) }

// Stats returns a copy of the counters.
//
//smtlint:noalloc
func (h *Hierarchy) Stats() Stats { return h.stats }

// Reset clears all cache contents and counters but keeps the configuration.
func (h *Hierarchy) Reset() {
	cfg := h.cfg
	*h = *New(cfg)
}
