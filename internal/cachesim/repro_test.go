package cachesim

import "testing"

func TestStrideStaysWarm(t *testing.T) {
	h := New(DefaultConfig())
	now := int64(0)
	misses := 0
	// Warm: stride over 20KB twice.
	for pass := 0; pass < 6; pass++ {
		for a := uint64(0); a < 20222; a += 8 {
			res := h.Access(a, now)
			if pass >= 2 && res.Level == MemHit {
				misses++
			}
			now += 2
		}
	}
	if misses > 0 {
		t.Errorf("%d memory misses on a warm 20KB stride", misses)
	}
	t.Logf("stats: %+v", h.Stats())
}
