package cachesim

import (
	"testing"
	"testing/quick"
)

func small() *Hierarchy {
	cfg := DefaultConfig()
	return New(cfg)
}

func TestFirstAccessMissesToMemory(t *testing.T) {
	h := small()
	res := h.Access(0x1000, 0)
	if res.Level != MemHit {
		t.Fatalf("cold access level %v", res.Level)
	}
	want := int64(0) + int64(h.cfg.DTLBMissCycles+h.cfg.L1Latency+h.cfg.L2Latency+h.cfg.MemLatency)
	if res.DoneAt != want {
		t.Errorf("DoneAt %d, want %d (includes cold TLB miss)", res.DoneAt, want)
	}
	if !res.TLBMiss {
		t.Error("first touch should miss the DTLB")
	}
}

func TestRereferenceHitsL1(t *testing.T) {
	h := small()
	done := h.Access(0x1000, 0).DoneAt
	res := h.Access(0x1008, done) // same line, after the fill completed
	if res.Level != L1Hit {
		t.Fatalf("re-reference level %v", res.Level)
	}
	if res.DoneAt != done+int64(h.cfg.L1Latency) {
		t.Errorf("L1 hit latency wrong: %d", res.DoneAt)
	}
}

func TestCoalescingWithInflightLine(t *testing.T) {
	h := small()
	first := h.Access(0x2000, 0)
	second := h.Access(0x2010, 1) // same 64B line while fill in flight
	if second.DoneAt != first.DoneAt {
		t.Errorf("coalesced access completes at %d, want %d", second.DoneAt, first.DoneAt)
	}
	if h.Stats().Coalesced != 1 {
		t.Errorf("coalesced count %d", h.Stats().Coalesced)
	}
}

func TestL2HitAfterL1Eviction(t *testing.T) {
	cfg := DefaultConfig()
	h := New(cfg)
	now := int64(0)
	// Fill one L1 set beyond its associativity. L1: 32KB/64B/2-way = 256
	// sets; addresses with identical set index differ by 256*64 = 16384.
	stride := uint64(cfg.L1Size / cfg.L1Assoc)
	addrs := []uint64{0, stride, 2 * stride}
	for _, a := range addrs {
		res := h.Access(a, now)
		now = res.DoneAt + 1
	}
	// addrs[0] was evicted from L1 (LRU) but must still be in L2.
	res := h.Access(addrs[0], now)
	if res.Level != L2Hit {
		t.Fatalf("expected L2 hit after L1 eviction, got %v", res.Level)
	}
}

func TestLRUReplacement(t *testing.T) {
	c := newSetAssoc(4, 2, 6) // 2 sets, 2 ways
	// Two lines in set 0: blocks 0 and 2 (set = block & 1).
	c.access(0<<6, 0)
	c.access(2<<6, 1)
	c.access(0<<6, 2) // touch block 0: block 2 becomes LRU
	c.access(4<<6, 3) // evicts block 2
	if !c.probe(0 << 6) {
		t.Error("block 0 should have survived (MRU)")
	}
	if c.probe(2 << 6) {
		t.Error("block 2 should have been evicted (LRU)")
	}
	if !c.probe(4 << 6) {
		t.Error("block 4 should be resident")
	}
}

func TestProbeDoesNotMutate(t *testing.T) {
	h := small()
	if h.ProbeL1(0x3000) || h.ProbeL2(0x3000) {
		t.Fatal("probe of untouched address reports presence")
	}
	if h.Stats().L1Accesses != 0 {
		t.Error("probe counted as access")
	}
}

func TestPortsPerCycle(t *testing.T) {
	h := small()
	if !h.TryReadPort(5) || !h.TryReadPort(5) {
		t.Fatal("two read ports should be grantable")
	}
	if h.TryReadPort(5) {
		t.Fatal("third read port granted")
	}
	if !h.TryWritePort(5) || !h.TryWritePort(5) || h.TryWritePort(5) {
		t.Fatal("write port accounting wrong")
	}
	// New cycle resets.
	if !h.TryReadPort(6) {
		t.Fatal("ports did not reset on new cycle")
	}
}

func TestMSHRLimit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MSHRs = 2
	h := New(cfg)
	h.Access(0x10000, 0)
	h.Access(0x20000, 0)
	if h.MSHRAvailable(0) {
		t.Fatal("MSHRs should be exhausted")
	}
	// After the fills complete, entries are reclaimed lazily.
	if !h.MSHRAvailable(1000) {
		t.Fatal("MSHRs not reclaimed after completion")
	}
}

func TestTLBMissOnlyOncePerPage(t *testing.T) {
	h := small()
	done := h.Access(0x4000, 0).DoneAt
	res := h.Access(0x4008, done+1)
	if res.TLBMiss {
		t.Error("second access to the same page missed the TLB")
	}
}

func TestStatsAccumulate(t *testing.T) {
	h := small()
	now := int64(0)
	for i := 0; i < 10; i++ {
		res := h.Access(uint64(i)*64*1024, now)
		now = res.DoneAt + 1
	}
	st := h.Stats()
	if st.L1Accesses != 10 || st.L1Misses != 10 || st.L2Misses != 10 {
		t.Errorf("stats %+v", st)
	}
}

func TestReset(t *testing.T) {
	h := small()
	h.Access(0x1000, 0)
	h.Reset()
	if h.Stats().L1Accesses != 0 {
		t.Error("stats survive Reset")
	}
	if h.ProbeL1(0x1000) {
		t.Error("contents survive Reset")
	}
}

func TestDefaultsFilled(t *testing.T) {
	h := New(Config{})
	if h.Config().L1Size != 32<<10 || h.Config().L2Size != 4<<20 {
		t.Errorf("Table 1 defaults not applied: %+v", h.Config())
	}
}

// Property: every access completes strictly after it starts and never
// earlier than the L1 latency.
func TestCompletionMonotoneProperty(t *testing.T) {
	h := small()
	now := int64(0)
	f := func(addr uint64) bool {
		res := h.Access(addr%(1<<30), now)
		ok := res.DoneAt >= now+int64(h.cfg.L1Latency)
		now++
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: hit level ordering is consistent — an address that just hit L1
// hits L1 again immediately.
func TestL1HitStableProperty(t *testing.T) {
	h := small()
	f := func(addr uint64) bool {
		a := addr % (1 << 24)
		r1 := h.Access(a, 1000)
		r2 := h.Access(a, r1.DoneAt+1)
		return r2.Level == L1Hit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLevelString(t *testing.T) {
	if L1Hit.String() != "L1" || L2Hit.String() != "L2" || MemHit.String() != "mem" {
		t.Error("level names wrong")
	}
}
