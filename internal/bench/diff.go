package bench

import (
	"fmt"
	"math"
)

// Delta is one metric's comparison between two reports.
type Delta struct {
	Bench  string
	Metric string
	Old    float64
	New    float64
	// Rel is (new-old)/old; ±Inf when old is zero and new is not.
	Rel float64
	// Better is the metric's improvement direction ("" = informational).
	Better        string
	HostDependent bool
	// Tol is the tolerance this delta was gated with (0 when not gated).
	Tol float64
	// Gated reports whether the delta participated in pass/fail.
	Gated bool
	// Regression reports whether the delta fails its gate.
	Regression bool
}

// DiffResult is the full comparison outcome.
type DiffResult struct {
	Deltas []Delta
	// Notes are human-readable caveats (host mismatch, go version skew,
	// benchmarks present on only one side).
	Notes []string
}

// Regressions returns the failing deltas.
func (d *DiffResult) Regressions() []Delta {
	var out []Delta
	for _, x := range d.Deltas {
		if x.Regression {
			out = append(out, x)
		}
	}
	return out
}

// OK reports whether no gated metric regressed.
func (d *DiffResult) OK() bool { return len(d.Regressions()) == 0 }

// Diff compares two reports metric by metric. tol gates deterministic
// metrics; timeTol gates host-dependent (wall-clock-derived) ones, and
// timeTol <= 0 skips them entirely — the right setting when old and new come
// from different machines. Regressions are one-sided for directional metrics
// (improvements never fail) and two-sided for BetterEqual metrics. A
// benchmark present in old but missing from new is itself a regression (the
// suite shrank); extra benchmarks in new are noted but never fail.
func Diff(old, new *Report, tol, timeTol float64) (*DiffResult, error) {
	if err := old.Validate(); err != nil {
		return nil, err
	}
	if err := new.Validate(); err != nil {
		return nil, err
	}
	if old.Quick != new.Quick {
		return nil, fmt.Errorf("bench: quick-mode mismatch (old quick=%v, new quick=%v); reports from different modes are not comparable", old.Quick, new.Quick)
	}
	res := &DiffResult{}
	if old.Host != new.Host {
		if timeTol > 0 {
			res.Notes = append(res.Notes, fmt.Sprintf(
				"host fingerprints differ (%s vs %s): wall-clock metrics compare across machines; gated only by the loose -time-tol %.0f%%",
				old.Host, new.Host, timeTol*100))
		} else {
			res.Notes = append(res.Notes, fmt.Sprintf(
				"host fingerprints differ (%s vs %s): wall-clock metrics skipped", old.Host, new.Host))
		}
	}
	if old.GoVersion != new.GoVersion {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"go versions differ (%s vs %s): small allocs/op shifts may be runtime-internal", old.GoVersion, new.GoVersion))
	}
	for _, ob := range old.Benchmarks {
		nb := new.Find(ob.Name)
		if nb == nil {
			res.Deltas = append(res.Deltas, Delta{
				Bench: ob.Name, Metric: "(missing)", Gated: true, Regression: true,
			})
			continue
		}
		res.Deltas = append(res.Deltas, diffBench(&ob, nb, tol, timeTol)...)
	}
	for _, nb := range new.Benchmarks {
		if old.Find(nb.Name) == nil {
			res.Notes = append(res.Notes, fmt.Sprintf("benchmark %s is new (no baseline)", nb.Name))
		}
	}
	return res, nil
}

// builtinMetrics exposes the fixed per-benchmark columns as gateable
// metrics. ns/op is host-dependent; the allocation columns are
// deterministic (the simulator is single-goroutine and seeded) and are the
// tightly gated heart of the zero-alloc guarantee.
func builtinMetrics(b *Benchmark) map[string]Metric {
	m := map[string]Metric{
		"ns/op":     {Value: b.NsPerOp, Better: BetterLower, HostDependent: true},
		"allocs/op": {Value: b.AllocsPerOp, Better: BetterLower},
		"B/op":      {Value: b.BytesPerOp, Better: BetterLower},
	}
	for k, v := range b.Metrics {
		m[k] = v
	}
	return m
}

func diffBench(ob, nb *Benchmark, tol, timeTol float64) []Delta {
	om, nm := builtinMetrics(ob), builtinMetrics(nb)
	var out []Delta
	for _, name := range sortedMetricNames(om) {
		o := om[name]
		n, ok := nm[name]
		if !ok {
			out = append(out, Delta{
				Bench: ob.Name, Metric: name, Old: o.Value,
				Better: o.Better, Gated: o.Better != "", Regression: o.Better != "",
			})
			continue
		}
		d := Delta{
			Bench: ob.Name, Metric: name, Old: o.Value, New: n.Value,
			Better: o.Better, HostDependent: o.HostDependent,
			Rel: relChange(o.Value, n.Value),
		}
		d.Tol = tol
		if o.HostDependent {
			d.Tol = timeTol
		}
		if o.Better != "" && d.Tol > 0 {
			d.Gated = true
			switch o.Better {
			case BetterHigher:
				d.Regression = d.Rel < -d.Tol
			case BetterLower:
				d.Regression = d.Rel > d.Tol
			case BetterEqual:
				d.Regression = math.Abs(d.Rel) > d.Tol
			}
		}
		out = append(out, d)
	}
	return out
}

// relChange returns (new-old)/old, with zero baselines mapped to ±Inf so a
// metric that was exactly 0 (steady-state allocations) fails any finite
// tolerance the moment it becomes nonzero.
func relChange(old, new float64) float64 {
	if old == 0 {
		switch {
		case new > 0:
			return math.Inf(1)
		case new < 0:
			return math.Inf(-1)
		}
		return 0
	}
	return (new - old) / old
}
