// Package bench is the continuous-benchmark harness behind `expdriver
// bench`: a fixed suite of simulator benchmarks (Table 1 machine throughput,
// the wakeup ablation, the headline experiment, a cache-hierarchy
// microbenchmark, and the steady-state allocation gate) measured with a
// self-contained timing loop and emitted as a schema'd JSON report
// (BENCH_<n>.json). Reports from two builds are compared with Diff, which
// knows each metric's improvement direction and which metrics are
// host-dependent, so CI can gate deterministic metrics tightly while
// tolerating shared-runner timing noise.
package bench

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strings"
	"time"
)

// Schema identifies the report format; Diff refuses mismatched schemas.
const Schema = "clustersmt/bench/v1"

// PRNumber is the repository growth step that produced this harness; the
// driver convention names the checked-in report BENCH_<PRNumber>.json.
const PRNumber = 6

// Improvement direction of a metric. Deterministic simulator outputs
// (simulated cycles per run, headline speedup) use BetterEqual: a change in
// either direction means simulated behavior changed, which the benchmark
// gate should flag even though the equivalence tests are the primary line of
// defense.
const (
	BetterHigher = "higher"
	BetterLower  = "lower"
	BetterEqual  = "equal"
)

// Metric is one named measurement of a benchmark.
type Metric struct {
	Value float64 `json:"value"`
	Unit  string  `json:"unit,omitempty"`
	// Better is the improvement direction (BetterHigher/BetterLower/
	// BetterEqual); empty marks an informational metric Diff never gates.
	Better string `json:"better,omitempty"`
	// HostDependent marks wall-clock-derived metrics (ns/op, cycles/s)
	// that are not comparable across machines; Diff gates them with the
	// looser time tolerance, or skips them when it is zero.
	HostDependent bool `json:"host_dependent,omitempty"`
}

// Benchmark is one suite entry's result. NsPerOp/AllocsPerOp/BytesPerOp are
// always present for timed benchmarks; Metrics carries the per-benchmark
// custom measurements (cycles/s, simulated cycles per op, ...).
type Benchmark struct {
	Name string `json:"name"`
	// N is the iteration count of the recorded (best) repetition.
	N           int               `json:"n"`
	NsPerOp     float64           `json:"ns_per_op"`
	AllocsPerOp float64           `json:"allocs_per_op"`
	BytesPerOp  float64           `json:"bytes_per_op"`
	Metrics     map[string]Metric `json:"metrics,omitempty"`
}

// Report is the full output of one suite run.
type Report struct {
	Schema    string `json:"schema"`
	PR        int    `json:"pr"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	CPUModel  string `json:"cpu_model,omitempty"`
	// Host is a short fingerprint of hostname+CPU+arch. Diff notes a
	// mismatch so readers know wall-clock comparisons cross machines.
	Host string `json:"host_fingerprint"`
	// Quick marks the reduced suite (shorter targets, smaller headline
	// run); quick and full reports are not comparable and Diff rejects
	// the pair.
	Quick bool `json:"quick"`
	// Reps is the repetition count; each benchmark records its best rep.
	Reps       int         `json:"reps"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Validate checks the schema tag and basic shape.
func (r *Report) Validate() error {
	if r.Schema != Schema {
		return fmt.Errorf("bench: schema %q, want %q", r.Schema, Schema)
	}
	if len(r.Benchmarks) == 0 {
		return fmt.Errorf("bench: report has no benchmarks")
	}
	return nil
}

// Find returns the named benchmark, or nil.
func (r *Report) Find(name string) *Benchmark {
	for i := range r.Benchmarks {
		if r.Benchmarks[i].Name == name {
			return &r.Benchmarks[i]
		}
	}
	return nil
}

// LoadReport reads and validates a report JSON file.
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &r, nil
}

// Options configures a suite run.
type Options struct {
	// Quick selects the reduced suite for CI smoke runs.
	Quick bool
	// Target is the per-repetition wall-clock target (0 = 3s, or 400ms
	// with Quick).
	Target time.Duration
	// Reps is the repetition count per benchmark; the best (fastest)
	// repetition is recorded, which is the standard defense against
	// one-off scheduler noise (0 = 3, or 1 with Quick).
	Reps int
	// Filter, when non-nil, restricts the suite to matching benchmark
	// names.
	Filter *regexp.Regexp
	// Logf, when non-nil, receives one progress line per benchmark.
	Logf func(format string, args ...any)
}

func (o *Options) fill() {
	if o.Target == 0 {
		if o.Quick {
			o.Target = 400 * time.Millisecond
		} else {
			o.Target = 3 * time.Second
		}
	}
	if o.Reps == 0 {
		if o.Quick {
			o.Reps = 1
		} else {
			o.Reps = 3
		}
	}
}

// Run executes the suite and returns the report.
func Run(o Options) (*Report, error) {
	return RunCtx(context.Background(), o)
}

// RunCtx is Run with cancellation: the context is polled between
// benchmarks, so a canceled gate run stops after the benchmark in flight
// instead of grinding through the rest of the suite.
func RunCtx(ctx context.Context, o Options) (*Report, error) {
	o.fill()
	r := &Report{
		Schema:    Schema,
		PR:        PRNumber,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		CPUModel:  cpuModel(),
		Quick:     o.Quick,
		Reps:      o.Reps,
	}
	r.Host = fingerprint(r)
	for _, d := range suite() {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("bench: canceled: %w", err)
		}
		if o.Filter != nil && !o.Filter.MatchString(d.name) {
			continue
		}
		b, err := d.run(o)
		if err != nil {
			return nil, fmt.Errorf("bench %s: %w", d.name, err)
		}
		if o.Logf != nil {
			o.Logf("%s", benchLine(b))
		}
		r.Benchmarks = append(r.Benchmarks, b)
	}
	if len(r.Benchmarks) == 0 {
		return nil, fmt.Errorf("bench: filter matched no benchmarks")
	}
	return r, nil
}

// cpuModel returns the CPU model string on Linux (best effort elsewhere).
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, val, ok := strings.Cut(line, ":"); ok &&
			strings.TrimSpace(name) == "model name" {
			return strings.TrimSpace(val)
		}
	}
	return ""
}

// fingerprint hashes the host identity fields into a short tag so reports
// can be recognized as same-host comparable without recording the hostname
// in the clear.
func fingerprint(r *Report) string {
	host, _ := os.Hostname()
	sum := sha256.Sum256([]byte(strings.Join([]string{
		host, r.GOOS, r.GOARCH, fmt.Sprint(r.NumCPU), r.CPUModel,
	}, "|")))
	return hex.EncodeToString(sum[:6])
}

// measurement harness --------------------------------------------------------

// timedRun is one repetition's raw measurement.
type timedRun struct {
	n        int
	elapsed  time.Duration
	allocsOp float64
	bytesOp  float64
	counters map[string]float64
}

// runOnce measures n iterations of iter with the heap settled first, so the
// allocation columns reflect the benchmark body rather than leftover garbage.
func runOnce(n int, iter func(n int) map[string]float64) timedRun {
	runtime.GC()
	var m1, m2 runtime.MemStats
	runtime.ReadMemStats(&m1)
	t0 := time.Now()
	counters := iter(n)
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&m2)
	return timedRun{
		n:        n,
		elapsed:  elapsed,
		allocsOp: float64(m2.Mallocs-m1.Mallocs) / float64(n),
		bytesOp:  float64(m2.TotalAlloc-m1.TotalAlloc) / float64(n),
		counters: counters,
	}
}

// measure calibrates the iteration count to the wall-clock target (the same
// geometric ramp `go test -bench` uses), then repeats at that count and
// keeps the fastest repetition.
func measure(target time.Duration, reps int, iter func(n int) map[string]float64) timedRun {
	n := 1
	var best timedRun
	for {
		best = runOnce(n, iter)
		if best.elapsed >= target || n >= 1<<30 {
			break
		}
		el := best.elapsed
		if el < time.Microsecond {
			el = time.Microsecond
		}
		next := int(float64(n) * float64(target) / float64(el) * 1.2)
		if next > n*100 {
			next = n * 100
		}
		if next <= n {
			next = n + 1
		}
		n = next
	}
	for i := 1; i < reps; i++ {
		if r := runOnce(n, iter); r.elapsed < best.elapsed {
			best = r
		}
	}
	return best
}

// text rendering -------------------------------------------------------------

// benchLine renders one benchmark as a standard Go benchmark output line
// (`Benchmark<Name>-P  N  ns/op ...`), the format benchstat consumes.
func benchLine(b Benchmark) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Benchmark%s-%d\t%8d\t%12.0f ns/op", b.Name, runtime.GOMAXPROCS(0), b.N, b.NsPerOp)
	for _, name := range sortedMetricNames(b.Metrics) {
		m := b.Metrics[name]
		fmt.Fprintf(&sb, "\t%12.4g %s", m.Value, name)
	}
	fmt.Fprintf(&sb, "\t%12.0f B/op\t%8.0f allocs/op", b.BytesPerOp, b.AllocsPerOp)
	return sb.String()
}

// FormatText renders the report in benchstat-friendly form: the same
// goos/goarch/cpu header and Benchmark lines `go test -bench` prints, so
// two saved reports can be compared with
// `benchstat old.txt new.txt` (or any line-oriented diff).
func (r *Report) FormatText() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "goos: %s\ngoarch: %s\npkg: clustersmt/bench\n", r.GOOS, r.GOARCH)
	if r.CPUModel != "" {
		fmt.Fprintf(&sb, "cpu: %s\n", r.CPUModel)
	}
	for _, b := range r.Benchmarks {
		sb.WriteString(benchLine(b))
		sb.WriteByte('\n')
	}
	return sb.String()
}

func sortedMetricNames(m map[string]Metric) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	for i := 1; i < len(names); i++ { // insertion sort; tiny n
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}
