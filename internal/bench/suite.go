package bench

import (
	"fmt"
	"testing"
	"time"

	"clustersmt/internal/cachesim"
	"clustersmt/internal/core"
	"clustersmt/internal/experiments"
	"clustersmt/internal/trace"
	"clustersmt/internal/workload"
)

// benchDef is one suite entry: run executes it under the given options and
// returns the filled Benchmark.
type benchDef struct {
	name string
	run  func(o Options) (Benchmark, error)
}

// benchTraceLen matches the top-level `go test -bench` harness so the
// Table1Machine numbers line up between the two.
const benchTraceLen = 20000

// suite returns the fixed benchmark list. Order is the report order.
func suite() []benchDef {
	return []benchDef{
		{"Table1Machine", benchTable1},
		{"AblationWakeup/event", benchWakeup(false)},
		{"AblationWakeup/polling", benchWakeup(true)},
		{"Headline", benchHeadline},
		{"Cachesim", benchCachesim},
		{"SteadyAlloc", benchSteadyAlloc},
	}
}

// table1Progs builds the shared Table 1 benchmark programs.
func table1Progs() ([]core.ThreadProgram, error) {
	w, err := workload.Find("ispec00.mix.2.1")
	if err != nil {
		return nil, err
	}
	var progs []core.ThreadProgram
	for i, prof := range w.Threads {
		g := trace.NewGenerator(prof, w.Seeds[i])
		progs = append(progs, core.ThreadProgram{
			Trace: g.Generate(benchTraceLen), Profile: prof, Seed: w.Seeds[i],
		})
	}
	return progs, nil
}

// simBench runs full simulations of the Table 1 machine and reports both
// the host-dependent throughput (cycles/s) and the deterministic simulated
// cycle count per run, which doubles as a coarse behavioral-equivalence
// check in `bench diff`.
func simBench(polling bool) func(o Options) (Benchmark, error) {
	return func(o Options) (Benchmark, error) {
		progs, err := table1Progs()
		if err != nil {
			return Benchmark{}, err
		}
		var firstErr error
		r := measure(o.Target, o.Reps, func(n int) map[string]float64 {
			var cycles int64
			for i := 0; i < n; i++ {
				cfg := core.DefaultConfig(2)
				cfg.PollingWakeup = polling
				p, err := core.NewScheme(cfg, "cdprf", progs)
				if err != nil {
					firstErr = err
					return nil
				}
				cycles += p.Run().Cycles
			}
			return map[string]float64{"cycles": float64(cycles)}
		})
		if firstErr != nil {
			return Benchmark{}, firstErr
		}
		return Benchmark{
			N:           r.n,
			NsPerOp:     float64(r.elapsed.Nanoseconds()) / float64(r.n),
			AllocsPerOp: r.allocsOp,
			BytesPerOp:  r.bytesOp,
			Metrics: map[string]Metric{
				"cycles/s": {
					Value: r.counters["cycles"] / r.elapsed.Seconds(),
					Unit:  "cycles/s", Better: BetterHigher, HostDependent: true,
				},
				"sim-cycles/op": {
					Value: r.counters["cycles"] / float64(r.n),
					Unit:  "cycles", Better: BetterEqual,
				},
			},
		}, nil
	}
}

func benchTable1(o Options) (Benchmark, error) {
	b, err := simBench(false)(o)
	b.Name = "Table1Machine"
	return b, err
}

// benchWakeup is the event-driven vs polling-scan wakeup ablation
// (DESIGN.md §5); both modes are bit-identical in results, so the pair
// isolates the scheduler-implementation cost.
func benchWakeup(polling bool) func(o Options) (Benchmark, error) {
	name := "AblationWakeup/event"
	if polling {
		name = "AblationWakeup/polling"
	}
	return func(o Options) (Benchmark, error) {
		b, err := simBench(polling)(o)
		b.Name = name
		return b, err
	}
}

// benchHeadline runs the §1/§6 headline experiment end to end (trace
// synthesis, the scheme set, speedup aggregation) on a reduced pool. The
// speedup itself is deterministic for a given mode, so it is gated as an
// equality metric.
func benchHeadline(o Options) (Benchmark, error) {
	traceLen := 12000
	if o.Quick {
		traceLen = 4000
	}
	var firstErr error
	var last *experiments.HeadlineResult
	r := measure(o.Target, o.Reps, func(n int) map[string]float64 {
		for i := 0; i < n; i++ {
			runner := experiments.NewRunner(traceLen)
			h, err := experiments.Headline(runner, experiments.Options{MaxPerCategory: 1})
			if err != nil {
				firstErr = err
				return nil
			}
			last = h
		}
		return nil
	})
	if firstErr != nil {
		return Benchmark{}, firstErr
	}
	return Benchmark{
		Name:        "Headline",
		N:           r.n,
		NsPerOp:     float64(r.elapsed.Nanoseconds()) / float64(r.n),
		AllocsPerOp: r.allocsOp,
		BytesPerOp:  r.bytesOp,
		Metrics: map[string]Metric{
			"cdprf-speedup": {Value: last.CDPRFSpeedup, Better: BetterEqual},
			"fairness":      {Value: last.FairnessRatio, Better: BetterEqual},
		},
	}, nil
}

// benchCachesim stresses the memory hierarchy in isolation: a deterministic
// address stream mixing a hot set (L1 hits), a walked array (L2/TLB
// traffic) and scattered misses (MSHR pressure), one Access per op.
func benchCachesim(o Options) (Benchmark, error) {
	const streamLen = 1 << 16
	addrs := make([]uint64, streamLen)
	state := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 { // splitmix64: deterministic, dependency-free
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range addrs {
		r := next()
		switch {
		case i%4 != 0: // hot set: 8 KiB, L1-resident
			addrs[i] = (r % 128) * 64
		case i%8 == 0: // streaming walk through 4 MiB
			addrs[i] = 0x100000 + uint64(i)*64%(4<<20)
		default: // scattered: forces misses and MSHR churn
			addrs[i] = 0x10000000 + (r % (1 << 28))
		}
	}
	cfg := core.DefaultConfig(2).Cache
	r := measure(o.Target, o.Reps, func(n int) map[string]float64 {
		h := cachesim.New(cfg)
		now := int64(0)
		for i := 0; i < n; i++ {
			h.Access(addrs[i%streamLen], now)
			now++
		}
		return nil
	})
	return Benchmark{
		Name:        "Cachesim",
		N:           r.n,
		NsPerOp:     float64(r.elapsed.Nanoseconds()) / float64(r.n),
		AllocsPerOp: r.allocsOp,
		BytesPerOp:  r.bytesOp,
		Metrics: map[string]Metric{
			"accesses/s": {
				Value: float64(r.n) / r.elapsed.Seconds(),
				Unit:  "accesses/s", Better: BetterHigher, HostDependent: true,
			},
		},
	}, nil
}

// benchSteadyAlloc is the allocation gate in benchmark form: the same
// warm-then-count measurement as core.TestSteadyStateZeroAlloc, reported as
// allocations per 2000 steady-state cycles. The expected value is exactly 0
// and the metric is deterministic, so `bench diff` gates it tightly.
func benchSteadyAlloc(o Options) (Benchmark, error) {
	// No quick-mode reduction: a shorter warm-up stops before the pooled
	// structures reach their high-water marks and reports phantom
	// allocations, and the full measurement costs only about a second.
	traceLen, warm, runs := 400000, 30000, 5
	w, err := workload.Find("ispec00.mix.2.1")
	if err != nil {
		return Benchmark{}, err
	}
	var progs []core.ThreadProgram
	for i, prof := range w.Threads {
		g := trace.NewGenerator(prof, w.Seeds[i])
		progs = append(progs, core.ThreadProgram{
			Trace: g.Generate(traceLen), Profile: prof, Seed: w.Seeds[i],
		})
	}
	p, err := core.NewScheme(core.DefaultConfig(2), "cdprf", progs)
	if err != nil {
		return Benchmark{}, err
	}
	t0 := time.Now()
	for i := 0; i < warm; i++ {
		p.Step()
	}
	const window = 2000
	avg := testing.AllocsPerRun(runs, func() {
		for i := 0; i < window; i++ {
			p.Step()
		}
	})
	if p.Done() {
		return Benchmark{}, fmt.Errorf("machine drained during measurement; lengthen the traces")
	}
	elapsed := time.Since(t0)
	cycles := warm + (runs+1)*window
	return Benchmark{
		Name:    "SteadyAlloc",
		N:       cycles,
		NsPerOp: float64(elapsed.Nanoseconds()) / float64(cycles),
		Metrics: map[string]Metric{
			"allocs/2kcyc": {Value: avg, Better: BetterLower},
		},
	}, nil
}
