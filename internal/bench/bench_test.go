package bench

import (
	"encoding/json"
	"math"
	"regexp"
	"testing"
	"time"
)

func mkReport(quick bool, host string, benches ...Benchmark) *Report {
	return &Report{
		Schema: Schema, PR: PRNumber, GoVersion: "go1.x",
		GOOS: "linux", GOARCH: "amd64", NumCPU: 1,
		Host: host, Quick: quick, Reps: 1, Benchmarks: benches,
	}
}

func delta(t *testing.T, res *DiffResult, bench, metric string) Delta {
	t.Helper()
	for _, d := range res.Deltas {
		if d.Bench == bench && d.Metric == metric {
			return d
		}
	}
	t.Fatalf("no delta for %s/%s", bench, metric)
	return Delta{}
}

func TestDiffDirections(t *testing.T) {
	old := mkReport(false, "h1", Benchmark{
		Name: "Sim", NsPerOp: 1000, AllocsPerOp: 100, BytesPerOp: 4000,
		Metrics: map[string]Metric{
			"cycles/s":      {Value: 1e6, Better: BetterHigher, HostDependent: true},
			"sim-cycles/op": {Value: 5000, Better: BetterEqual},
			"note":          {Value: 1.0}, // informational, never gated
		},
	})
	cur := mkReport(false, "h1", Benchmark{
		// ns/op regressed 40% (within time-tol 0.5); allocs doubled
		// (fails tol 0.05); throughput dropped 60% (fails time-tol).
		Name: "Sim", NsPerOp: 1400, AllocsPerOp: 200, BytesPerOp: 4000,
		Metrics: map[string]Metric{
			"cycles/s":      {Value: 0.4e6, Better: BetterHigher, HostDependent: true},
			"sim-cycles/op": {Value: 5000, Better: BetterEqual},
			"note":          {Value: 9.0},
		},
	})
	res, err := Diff(old, cur, 0.05, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if d := delta(t, res, "Sim", "ns/op"); d.Regression || !d.Gated {
		t.Errorf("ns/op +40%% under time-tol 50%%: gated=%v regression=%v", d.Gated, d.Regression)
	}
	if d := delta(t, res, "Sim", "allocs/op"); !d.Regression {
		t.Error("allocs/op doubling must regress at tol 5%")
	}
	if d := delta(t, res, "Sim", "cycles/s"); !d.Regression {
		t.Error("throughput -60% must regress at time-tol 50%")
	}
	if d := delta(t, res, "Sim", "sim-cycles/op"); d.Regression || !d.Gated {
		t.Errorf("unchanged equal-metric: gated=%v regression=%v", d.Gated, d.Regression)
	}
	if d := delta(t, res, "Sim", "note"); d.Gated {
		t.Error("informational metric must not be gated")
	}
	if res.OK() {
		t.Error("diff with regressions reports OK")
	}
}

func TestDiffEqualMetricTwoSided(t *testing.T) {
	old := mkReport(false, "h1", Benchmark{Name: "B", NsPerOp: 1,
		Metrics: map[string]Metric{"speedup": {Value: 1.20, Better: BetterEqual}}})
	// An *improvement* in an equality-gated deterministic metric still
	// fails: simulated behavior changed.
	cur := mkReport(false, "h1", Benchmark{Name: "B", NsPerOp: 1,
		Metrics: map[string]Metric{"speedup": {Value: 1.35, Better: BetterEqual}}})
	res, err := Diff(old, cur, 0.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d := delta(t, res, "B", "speedup"); !d.Regression {
		t.Error("equal-metric drift beyond tol must fail in both directions")
	}
}

func TestDiffZeroBaseline(t *testing.T) {
	old := mkReport(false, "h1", Benchmark{Name: "Alloc", NsPerOp: 1,
		Metrics: map[string]Metric{"allocs/2kcyc": {Value: 0, Better: BetterLower}}})
	cur := mkReport(false, "h1", Benchmark{Name: "Alloc", NsPerOp: 1,
		Metrics: map[string]Metric{"allocs/2kcyc": {Value: 3, Better: BetterLower}}})
	res, err := Diff(old, cur, 0.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	d := delta(t, res, "Alloc", "allocs/2kcyc")
	if !math.IsInf(d.Rel, 1) || !d.Regression {
		t.Errorf("0 -> 3 allocs: rel=%v regression=%v, want +inf and fail", d.Rel, d.Regression)
	}
}

func TestDiffHostMismatchSkipsTime(t *testing.T) {
	old := mkReport(false, "h1", Benchmark{Name: "B", NsPerOp: 1000})
	cur := mkReport(false, "h2", Benchmark{Name: "B", NsPerOp: 9000})
	res, err := Diff(old, cur, 0.05, 0) // time-tol 0: wall-clock skipped
	if err != nil {
		t.Fatal(err)
	}
	if d := delta(t, res, "B", "ns/op"); d.Gated {
		t.Error("time-tol 0 must skip wall-clock metrics")
	}
	if len(res.Notes) == 0 {
		t.Error("host mismatch must be noted")
	}
}

func TestDiffMissingBenchmark(t *testing.T) {
	old := mkReport(false, "h1",
		Benchmark{Name: "A", NsPerOp: 1}, Benchmark{Name: "Gone", NsPerOp: 1})
	cur := mkReport(false, "h1",
		Benchmark{Name: "A", NsPerOp: 1}, Benchmark{Name: "New", NsPerOp: 1})
	res, err := Diff(old, cur, 0.05, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if d := delta(t, res, "Gone", "(missing)"); !d.Regression {
		t.Error("a benchmark dropped from the suite must regress")
	}
	found := false
	for _, n := range res.Notes {
		if regexp.MustCompile(`New`).MatchString(n) {
			found = true
		}
	}
	if !found {
		t.Error("a new benchmark must be noted")
	}
}

func TestDiffQuickMismatch(t *testing.T) {
	old := mkReport(true, "h1", Benchmark{Name: "A", NsPerOp: 1})
	cur := mkReport(false, "h1", Benchmark{Name: "A", NsPerOp: 1})
	if _, err := Diff(old, cur, 0.05, 0.5); err == nil {
		t.Error("quick vs full reports must not be comparable")
	}
}

func TestReportRoundTrip(t *testing.T) {
	r := mkReport(true, "h1", Benchmark{
		Name: "B", N: 10, NsPerOp: 123, AllocsPerOp: 4, BytesPerOp: 512,
		Metrics: map[string]Metric{
			"cycles/s": {Value: 1e6, Unit: "cycles/s", Better: BetterHigher, HostDependent: true},
		},
	})
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	m := back.Find("B").Metrics["cycles/s"]
	if !m.HostDependent || m.Better != BetterHigher || m.Value != 1e6 {
		t.Errorf("metric lost in round trip: %+v", m)
	}
}

// TestRunSmoke executes one real (cheap) suite entry end to end through the
// calibration harness and checks the report shape.
func TestRunSmoke(t *testing.T) {
	r, err := Run(Options{
		Quick:  true,
		Target: 20 * time.Millisecond,
		Reps:   1,
		Filter: regexp.MustCompile(`^Cachesim$`),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	b := r.Find("Cachesim")
	if b == nil {
		t.Fatal("Cachesim missing from report")
	}
	if b.N <= 0 || b.NsPerOp <= 0 {
		t.Errorf("implausible measurement: N=%d ns/op=%f", b.N, b.NsPerOp)
	}
	if m, ok := b.Metrics["accesses/s"]; !ok || m.Value <= 0 || !m.HostDependent {
		t.Errorf("accesses/s metric malformed: %+v", m)
	}
	if r.Host == "" || r.GoVersion == "" {
		t.Error("environment fields not populated")
	}
	// Self-diff must be clean at any tolerance.
	res, err := Diff(r, r, 0.001, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Errorf("self-diff regressed: %+v", res.Regressions())
	}
}
