package lint

import (
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// A Package is one type-checked package: syntax plus type information.
type Package struct {
	Path  string // import path ("clustersmt/internal/core", or the dir base name in fixture mode)
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Module is the unit the analyzers run over: the target packages named by
// the load patterns plus every in-module dependency they pull in, all
// type-checked against one shared FileSet so object identities agree across
// packages.
type Module struct {
	Root string // module root directory (contains go.mod); "" in fixture mode
	Path string // module path from go.mod; "" in fixture mode
	Fset *token.FileSet

	// Pkgs maps import path to every loaded package; Targets is the subset
	// the patterns matched, in deterministic order.
	Pkgs    map[string]*Package
	Targets []*Package

	// Noalloc records every function and interface method annotated
	// //smtlint:noalloc, across all loaded packages.
	Noalloc map[*types.Func]bool

	allowMu   sync.Mutex
	allows    map[allowKey]*allowDirective
	badAllows []token.Position

	goVersion  string
	fixtureDir string // parent of the fixture package dir in LoadDir mode
	std        types.Importer
	loading    map[string]bool
	typeErrs   []error
}

// Load type-checks the module rooted at (or above) dir and returns it with
// the packages matching patterns as targets. Patterns are directory paths
// relative to dir: "./..." or "sub/..." for trees, plain paths for single
// packages — the same shapes the go tool accepts for local packages.
// Standard-library imports are resolved through the toolchain's export data
// (no network, no module cache needed); in-module imports are type-checked
// from source so directive facts exist for every dependency.
func Load(dir string, patterns []string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found at or above %s", abs)
		}
		root = parent
	}
	modPath, goVersion, err := readModFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := newModule()
	m.Root, m.Path, m.goVersion = root, modPath, goVersion

	var dirs []string
	for _, pat := range patterns {
		d, err := expandPattern(abs, pat)
		if err != nil {
			return nil, err
		}
		dirs = append(dirs, d...)
	}
	sort.Strings(dirs)
	for _, d := range dirs {
		rel, err := filepath.Rel(root, d)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("lint: %s is outside module %s", d, root)
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := m.loadPackage(path, d)
		if err != nil {
			return nil, err
		}
		m.Targets = append(m.Targets, pkg)
	}
	return m, nil
}

// LoadDir type-checks a single directory as a standalone package — the
// fixture mode used by the analyzer test suites. The package's import path
// is its directory base name, and an import of a bare name resolves to a
// sibling directory of dir if one exists (mirroring analysistest's
// testdata/src layout); everything else is treated as standard library.
func LoadDir(dir string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	m := newModule()
	m.goVersion = "go1.24"
	m.fixtureDir = filepath.Dir(abs)
	pkg, err := m.loadPackage(filepath.Base(abs), abs)
	if err != nil {
		return nil, err
	}
	m.Targets = append(m.Targets, pkg)
	return m, nil
}

func newModule() *Module {
	return &Module{
		Fset:    token.NewFileSet(),
		Pkgs:    map[string]*Package{},
		Noalloc: map[*types.Func]bool{},
		allows:  map[allowKey]*allowDirective{},
		loading: map[string]bool{},
	}
}

func readModFile(path string) (modPath, goVersion string, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", "", err
	}
	goVersion = "go1.24"
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
		}
		if rest, ok := strings.CutPrefix(line, "go "); ok {
			goVersion = "go" + strings.TrimSpace(rest)
		}
	}
	if modPath == "" {
		return "", "", fmt.Errorf("lint: no module line in %s", path)
	}
	return modPath, goVersion, nil
}

// expandPattern resolves one pattern relative to base into package dirs.
func expandPattern(base, pat string) ([]string, error) {
	recursive := false
	if pat == "..." || strings.HasSuffix(pat, "/...") {
		recursive = true
		pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
	}
	if pat == "" {
		pat = "."
	}
	start := filepath.Join(base, pat)
	if !recursive {
		if !hasGoFiles(start) {
			return nil, fmt.Errorf("lint: no Go files in %s", start)
		}
		return []string{start}, nil
	}
	var dirs []string
	err := filepath.WalkDir(start, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != start && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(p) {
			dirs = append(dirs, p)
		}
		return nil
	})
	return dirs, err
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if n := e.Name(); !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}

// Import implements types.Importer: in-module paths load from source,
// fixture siblings load from disk, anything else defers to the compiler's
// export data.
func (m *Module) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if m.Path != "" && (path == m.Path || strings.HasPrefix(path, m.Path+"/")) {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, m.Path), "/")
		pkg, err := m.loadPackage(path, filepath.Join(m.Root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if m.fixtureDir != "" && !strings.Contains(path, "/") {
		// Fixture mode: a bare import resolves to a sibling fixture
		// directory when one exists.
		sibling := filepath.Join(m.fixtureDir, path)
		if hasGoFiles(sibling) {
			pkg, err := m.loadPackage(path, sibling)
			if err != nil {
				return nil, err
			}
			return pkg.Types, nil
		}
	}
	if m.std == nil {
		m.std = importer.Default()
	}
	return m.std.Import(path)
}

func (m *Module) loadPackage(path, dir string) (*Package, error) {
	if pkg, ok := m.Pkgs[path]; ok {
		return pkg, nil
	}
	if m.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	m.loading[path] = true
	defer delete(m.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", path, err)
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f, err := parser.ParseFile(m.Fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	var tcErrs []error
	conf := types.Config{
		Importer:  m,
		GoVersion: m.goVersion,
		Error:     func(err error) { tcErrs = append(tcErrs, err) },
	}
	tpkg, _ := conf.Check(path, m.Fset, files, info)
	if len(tcErrs) > 0 {
		limit := min(len(tcErrs), 5)
		return nil, fmt.Errorf("lint: type errors in %s: %w", path, errors.Join(tcErrs[:limit]...))
	}

	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	m.Pkgs[path] = pkg
	for _, f := range files {
		m.collectDirectives(pkg, f)
	}
	return pkg, nil
}
