// Package lint is a small, dependency-free static-analysis framework for
// this repository: a stripped-down analogue of golang.org/x/tools/go/analysis
// built on the standard library's go/ast and go/types.
//
// The upstream analysis framework is the natural home for checks like these,
// but this module deliberately carries zero external dependencies (go.sum is
// empty and must stay that way), so the three pieces an analyzer needs —
// a package loader, a pass abstraction, and a fixture test harness — are
// implemented here directly. Analyzers keep the upstream shape (Name, Doc,
// Run(*Pass)) so they could be ported to x/tools/go/analysis mechanically if
// the dependency policy ever changes.
//
// Directives recognized in source comments:
//
//	//smtlint:noalloc
//	    On a function, method, or interface-method declaration: the body
//	    (or every implementation reached through the interface) must be
//	    free of allocation-prone constructs. Enforced by the noalloc
//	    analyzer; see its Doc for the exact rules.
//
//	//smtlint:allow <reason>
//	    On (or immediately above) an offending line: suppress smtlint
//	    diagnostics reported for that line. The reason is mandatory; an
//	    allow without one is itself reported. Used for constructs that are
//	    allocation-shaped but provably bounded (append into a pre-sized
//	    ring, pool refill on a cold path) — the reason documents the proof.
package lint

import (
	"context"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the command line.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Diagnostic is one finding, positioned in the loaded file set.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// A Pass carries one analyzer's view of one package plus the module-wide
// facts every analyzer may consult (annotations, sibling packages).
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *Package
	TypesInfo *types.Info

	// Module holds every package loaded to analyze this one (the target
	// set plus all in-module dependencies) and the module-wide facts.
	Module *Module

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos unless the line (or the line above)
// carries an //smtlint:allow directive with a reason.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.Module.allowed(position.Filename, position.Line) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Noalloc reports whether fn (a function, method, or interface method) is
// annotated //smtlint:noalloc anywhere in the module. Generic instantiations
// are resolved to their origin before lookup.
func (p *Pass) Noalloc(fn *types.Func) bool {
	return p.Module.Noalloc[fn.Origin()]
}

// Run applies each analyzer to each target package of m and returns all
// diagnostics sorted by position. Analyzers see every loaded package via
// pass.Module but report only on the targets.
func Run(m *Module, analyzers []*Analyzer) []Diagnostic {
	return RunConcurrent(context.Background(), m, analyzers, 1)
}

// RunConcurrent is Run with target packages analyzed by up to workers
// goroutines. Type-checking happened once at load time and the module is
// read-only during analysis (directive bookkeeping is mutex-guarded;
// the dataflow package's module-level indexes are built once behind
// sync.Once), so packages are embarrassingly parallel. Diagnostics
// collect per-package and merge into one deterministically sorted slice,
// so output order never depends on scheduling. A context cancellation
// stops dispatching new packages; diagnostics already produced are
// returned (partial output is marked by the caller's ctx.Err()).
func RunConcurrent(ctx context.Context, m *Module, analyzers []*Analyzer, workers int) []Diagnostic {
	if workers < 1 {
		workers = 1
	}
	perPkg := make([][]Diagnostic, len(m.Targets))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, pkg := range m.Targets {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		go func(i int, pkg *Package) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var diags []Diagnostic
			for _, a := range analyzers {
				pass := &Pass{
					Analyzer:  a,
					Fset:      m.Fset,
					Files:     pkg.Files,
					Pkg:       pkg,
					TypesInfo: pkg.Info,
					Module:    m,
					diags:     &diags,
				}
				if err := a.Run(pass); err != nil {
					diags = append(diags, Diagnostic{
						Analyzer: a.Name,
						Pos:      token.Position{Filename: pkg.Path},
						Message:  fmt.Sprintf("analyzer failed: %v", err),
					})
				}
			}
			perPkg[i] = diags
		}(i, pkg)
	}
	wg.Wait()
	var diags []Diagnostic
	for _, d := range perPkg {
		diags = append(diags, d...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return diags
}

// allowDirective is an //smtlint:allow occurrence.
type allowDirective struct {
	reason string
	used   bool
}

// allowed reports whether diagnostics on file:line are suppressed. A
// directive suppresses its own line and the line directly below (so it can
// sit either trailing the offending code or on its own line above it).
// Safe for concurrent use: RunConcurrent analyzes packages in parallel and
// every Reportf lands here.
func (m *Module) allowed(file string, line int) bool {
	m.allowMu.Lock()
	defer m.allowMu.Unlock()
	for _, l := range []int{line, line - 1} {
		if d, ok := m.allows[allowKey{file, l}]; ok && d.reason != "" {
			d.used = true
			return true
		}
	}
	return false
}

type allowKey struct {
	file string
	line int
}

// collectDirectives scans a parsed file for smtlint directives: noalloc
// annotations on function and interface-method declarations, and allow
// suppressions anywhere.
func (m *Module) collectDirectives(pkg *Package, f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			if !strings.HasPrefix(text, "smtlint:allow") {
				continue
			}
			reason := strings.TrimSpace(strings.TrimPrefix(text, "smtlint:allow"))
			pos := m.Fset.Position(c.Pos())
			m.allows[allowKey{pos.Filename, pos.Line}] = &allowDirective{reason: reason}
			if reason == "" {
				m.badAllows = append(m.badAllows, pos)
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if hasNoallocDirective(n.Doc) {
				if obj, ok := pkg.Info.Defs[n.Name].(*types.Func); ok {
					m.Noalloc[obj] = true
				}
			}
			return false // directives never nest inside bodies
		case *ast.InterfaceType:
			for _, field := range n.Methods.List {
				if len(field.Names) == 0 {
					continue // embedded interface
				}
				if hasNoallocDirective(field.Doc) || hasNoallocDirective(field.Comment) {
					if obj, ok := pkg.Info.Defs[field.Names[0]].(*types.Func); ok {
						m.Noalloc[obj] = true
					}
				}
			}
		}
		return true
	})
}

func hasNoallocDirective(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == "smtlint:noalloc" {
			return true
		}
	}
	return false
}

// BadAllows returns the positions of //smtlint:allow directives written
// without a reason. The driver reports them: a suppression with no recorded
// justification is exactly the kind of drift the suite exists to prevent.
func (m *Module) BadAllows() []token.Position {
	return m.badAllows
}
