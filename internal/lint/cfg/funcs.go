package cfg

import (
	"fmt"
	"go/ast"
	"go/types"
)

// FuncGraph pairs a function (declaration or literal) with its graph.
type FuncGraph struct {
	// Decl is the *ast.FuncDecl, or the *ast.FuncLit for literals.
	Decl ast.Node
	// Type is the function's signature node (shared field so analyzers
	// need not switch on Decl's concrete type).
	Type *ast.FuncType
	// Body is the function body (nil for bodyless declarations).
	Body *ast.BlockStmt
	// Parent is the enclosing FuncGraph for literals, nil for top-level
	// declarations.
	Parent *FuncGraph
	Graph  *Graph
}

// BuildAll builds one graph per function declaration and function literal
// across the files, in source order. Literals are separate graphs — the
// enclosing graph sees the FuncLit as an opaque value — and are named
// after their host ("Submit$1" for the first literal inside Submit).
func BuildAll(files []*ast.File) []*FuncGraph {
	var out []*FuncGraph
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fg := &FuncGraph{
				Decl: fd,
				Type: fd.Type,
				Body: fd.Body,
			}
			fg.Graph = New(declName(fd), fd.Body)
			out = append(out, fg)
			out = appendLits(out, fg)
		}
	}
	return out
}

// appendLits builds graphs for every function literal nested (at any
// depth) inside host's body. Literals inside literals chain Parent links.
func appendLits(out []*FuncGraph, host *FuncGraph) []*FuncGraph {
	if host.Body == nil {
		return out
	}
	// Collect direct literals of one function body, then recurse into each
	// so numbering matches nesting ("f$1", "f$1$1", "f$2").
	var direct func(body *ast.BlockStmt, parent *FuncGraph)
	direct = func(body *ast.BlockStmt, parent *FuncGraph) {
		n := 0
		ast.Inspect(body, func(node ast.Node) bool {
			lit, ok := node.(*ast.FuncLit)
			if !ok {
				return true
			}
			n++
			fg := &FuncGraph{
				Decl:   lit,
				Type:   lit.Type,
				Body:   lit.Body,
				Parent: parent,
			}
			fg.Graph = New(fmt.Sprintf("%s$%d", parent.Graph.Name, n), lit.Body)
			out = append(out, fg)
			direct(lit.Body, fg)
			return false // direct recursed; don't double-visit
		})
	}
	direct(host.Body, host)
	return out
}

// declName renders a FuncDecl's display name, "(recv).Name" for methods.
func declName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	return "(" + types.ExprString(fd.Recv.List[0].Type) + ")." + fd.Name.Name
}
