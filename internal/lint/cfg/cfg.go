// Package cfg builds intraprocedural control-flow graphs over go/ast for
// the smtlint dataflow analyzers. It is the foundation PR 8's AST walkers
// lacked: where those analyzers threaded ad-hoc state through recursive
// statement visits (and papered over joins with heuristics like lockcheck's
// branch intersection), a Graph gives every analyzer the same explicit
// basic-block structure — branch edges from if/switch/select, loop
// back-edges from for/range, and defer edges routing every function exit
// through the deferred-call chain — so flow-sensitive facts can be solved
// to a fixpoint by internal/lint/dataflow and path questions become
// dominator queries.
//
// The builder is deliberately modest: one graph per function body (function
// literals get their own graphs; a FuncLit in an expression is an opaque
// node of the enclosing graph), no expression-level decomposition (a
// block's Nodes are statements plus the control expressions that guard its
// successors), and no interprocedural edges (the module-local call graph
// lives in internal/lint/dataflow). Statically unreachable blocks — code
// after an unconditional return; constant conditions are NOT folded — are
// pruned after construction, so every retained block is reachable from
// Entry.
//
// Structural invariants, asserted module-wide by TestModuleCFGInvariants:
//
//   - exactly one Entry block, with no predecessors
//   - exactly one Exit block, with no successors
//   - every block is reachable from Entry
//   - every defer block's successor chain terminates at Exit without
//     branching (defers run unconditionally once registered)
//   - successor/predecessor lists mirror each other
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
)

// Kind classifies a block for diagnostics and for the defer-chain
// invariant.
type Kind uint8

const (
	// KindBody is an ordinary straight-line block.
	KindBody Kind = iota
	// KindEntry is the function entry block (parameters live here).
	KindEntry
	// KindExit is the synthetic exit block every return reaches.
	KindExit
	// KindCond holds a branch scrutinee (if/for condition, switch tag,
	// range operand); it has one successor per outcome.
	KindCond
	// KindDefer holds one deferred call, executed on the way to Exit.
	KindDefer
)

func (k Kind) String() string {
	switch k {
	case KindBody:
		return "body"
	case KindEntry:
		return "entry"
	case KindExit:
		return "exit"
	case KindCond:
		return "cond"
	case KindDefer:
		return "defer"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// A Block is one basic block: a maximal straight-line node sequence.
type Block struct {
	Index int
	Kind  Kind
	// Nodes are the block's statements in execution order. Control
	// statements contribute their scrutinee (if/for conditions, switch
	// tags, range statements) to the block that branches on them.
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
	// Loop marks the head block of a for/range loop (the target of the
	// back-edge); ctxflow uses it to enumerate loops.
	Loop bool
	// Stmt is the branch/loop statement a Cond block was built from.
	Stmt ast.Stmt
}

// addEdge links a -> b, keeping Succs/Preds mirrored.
func addEdge(a, b *Block) {
	a.Succs = append(a.Succs, b)
	b.Preds = append(b.Preds, a)
}

// A Graph is one function body's control-flow graph.
type Graph struct {
	// Name labels the graph in diagnostics ("(*Processor).Step",
	// "Submit$1" for the first literal inside Submit).
	Name   string
	Entry  *Block
	Exit   *Block
	Blocks []*Block

	idom []int // immediate dominators by block index; built lazily
}

// New builds the graph for one function body. name is used only in
// diagnostics. body may be nil (external/assembly declarations), in which
// case the graph is Entry -> Exit with no other blocks.
func New(name string, body *ast.BlockStmt) *Graph {
	g := &Graph{Name: name}
	b := &builder{g: g}
	g.Entry = b.newBlock(KindEntry)
	g.Exit = b.newBlock(KindExit)
	b.cur = g.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	// Falling off the end of the body returns (valid when the function has
	// no results; otherwise the tail is unreachable and gets pruned).
	b.ret()
	g.prune()
	return g
}

// builder threads construction state through the statement walk.
type builder struct {
	g   *Graph
	cur *Block // nil while the walk is in statically unreachable code

	// deferHead is the entry of the defer chain built so far (defers run
	// LIFO, so the most recent registration is the chain head); exits
	// route through it. Nil until the first defer statement.
	deferHead *Block

	labels map[string]*labelTarget
	// pendingLabel is set while building the statement a label names, so
	// the loop/switch builders can wire labeled break/continue targets.
	pendingLabel *labelTarget
	// breakTo/continueTo are the innermost enclosing targets.
	breakTo    []*Block
	continueTo []*Block
}

// labelTarget resolves a labeled statement's break/continue/goto blocks.
type labelTarget struct {
	gotoB     *Block // the labeled statement itself
	breakB    *Block // after-block of the labeled loop/switch/select
	continueB *Block // post/head block of the labeled loop
}

func (b *builder) newBlock(k Kind) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: k}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// start begins a new block and links the current one to it (if reachable).
func (b *builder) start(k Kind) *Block {
	blk := b.newBlock(k)
	if b.cur != nil {
		addEdge(b.cur, blk)
	}
	b.cur = blk
	return blk
}

// exitTarget is where a return/panic edge goes: through the defer chain
// when one exists, straight to Exit otherwise.
func (b *builder) exitTarget() *Block {
	if b.deferHead != nil {
		return b.deferHead
	}
	return b.g.Exit
}

// ret ends the current block with an edge to the function exit.
func (b *builder) ret() {
	if b.cur != nil {
		addEdge(b.cur, b.exitTarget())
	}
	b.cur = nil
}

func (b *builder) add(n ast.Node) {
	if b.cur == nil {
		// Unreachable code still gets blocks so its nodes exist somewhere;
		// prune removes them afterwards.
		b.cur = b.newBlock(KindBody)
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// label looks up (or pre-creates) the record for a label name.
func (b *builder) label(name string) *labelTarget {
	if b.labels == nil {
		b.labels = map[string]*labelTarget{}
	}
	t := b.labels[name]
	if t == nil {
		t = &labelTarget{}
		b.labels[name] = t
	}
	return t
}

func (b *builder) stmt(s ast.Stmt) {
	// A label names exactly the statement that follows it; consume the
	// pending record here so nested constructs cannot claim it.
	lbl := b.pendingLabel
	b.pendingLabel = nil

	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.ReturnStmt:
		b.add(s)
		b.ret()

	case *ast.ExprStmt:
		b.add(s)
		if isPanic(s.X) {
			// A panic runs the defers and leaves the function; modeling it
			// as an exit edge keeps "all paths" arguments honest.
			b.ret()
		}

	case *ast.DeferStmt:
		b.add(s) // registration point, in flow order
		// Prepend to the chain: defers run LIFO, so every later exit must
		// pass through this call before the previously registered ones.
		d := b.newBlock(KindDefer)
		d.Nodes = append(d.Nodes, s.Call)
		addEdge(d, b.exitTarget())
		b.deferHead = d

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		cond := b.start(KindCond)
		cond.Stmt = s
		cond.Nodes = append(cond.Nodes, s.Cond)
		after := b.newBlock(KindBody)

		thenB := b.newBlock(KindBody)
		addEdge(cond, thenB)
		b.cur = thenB
		b.stmtList(s.Body.List)
		if b.cur != nil {
			addEdge(b.cur, after)
		}

		if s.Else != nil {
			elseB := b.newBlock(KindBody)
			addEdge(cond, elseB)
			b.cur = elseB
			b.stmt(s.Else)
			if b.cur != nil {
				addEdge(b.cur, after)
			}
		} else {
			addEdge(cond, after)
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.start(KindCond)
		head.Loop = true
		head.Stmt = s
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		after := b.newBlock(KindBody)
		var post *Block
		if s.Post != nil {
			post = b.newBlock(KindBody)
			post.Nodes = append(post.Nodes, s.Post)
			addEdge(post, head)
		}
		contTo := head
		if post != nil {
			contTo = post
		}
		if lbl != nil {
			lbl.breakB, lbl.continueB = after, contTo
		}

		body := b.newBlock(KindBody)
		addEdge(head, body)
		if s.Cond != nil {
			addEdge(head, after) // condition may be false
		}
		b.breakTo = append(b.breakTo, after)
		b.continueTo = append(b.continueTo, contTo)
		b.cur = body
		b.stmtList(s.Body.List)
		if b.cur != nil {
			addEdge(b.cur, contTo)
		}
		b.breakTo = b.breakTo[:len(b.breakTo)-1]
		b.continueTo = b.continueTo[:len(b.continueTo)-1]
		// `for {}` with no break never reaches after; prune drops it.
		b.cur = after

	case *ast.RangeStmt:
		head := b.start(KindCond)
		head.Loop = true
		head.Stmt = s
		head.Nodes = append(head.Nodes, s) // the range op guards the loop
		after := b.newBlock(KindBody)
		addEdge(head, after) // the range may be empty / exhausted
		if lbl != nil {
			lbl.breakB, lbl.continueB = after, head
		}

		body := b.newBlock(KindBody)
		addEdge(head, body)
		b.breakTo = append(b.breakTo, after)
		b.continueTo = append(b.continueTo, head)
		b.cur = body
		b.stmtList(s.Body.List)
		if b.cur != nil {
			addEdge(b.cur, head)
		}
		b.breakTo = b.breakTo[:len(b.breakTo)-1]
		b.continueTo = b.continueTo[:len(b.continueTo)-1]
		b.cur = after

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		b.multiway(s, lbl)

	case *ast.LabeledStmt:
		t := b.label(s.Label.Name)
		// The labeled statement begins a fresh block: goto jumps here.
		if t.gotoB == nil {
			t.gotoB = b.newBlock(KindBody)
		}
		if b.cur != nil {
			addEdge(b.cur, t.gotoB)
		}
		b.cur = t.gotoB
		b.pendingLabel = t
		b.stmt(s.Stmt)
		b.pendingLabel = nil

	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			if s.Label != nil {
				if t := b.label(s.Label.Name); t.breakB != nil && b.cur != nil {
					addEdge(b.cur, t.breakB)
				}
			} else if len(b.breakTo) > 0 && b.cur != nil {
				addEdge(b.cur, b.breakTo[len(b.breakTo)-1])
			}
			b.cur = nil
		case token.CONTINUE:
			if s.Label != nil {
				if t := b.label(s.Label.Name); t.continueB != nil && b.cur != nil {
					addEdge(b.cur, t.continueB)
				}
			} else if len(b.continueTo) > 0 && b.cur != nil {
				addEdge(b.cur, b.continueTo[len(b.continueTo)-1])
			}
			b.cur = nil
		case token.GOTO:
			if s.Label != nil && b.cur != nil {
				t := b.label(s.Label.Name)
				if t.gotoB == nil {
					t.gotoB = b.newBlock(KindBody) // forward goto
				}
				addEdge(b.cur, t.gotoB)
			}
			b.cur = nil
		case token.FALLTHROUGH:
			// Handled by multiway (the clause walk links to the next case).
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// Go/send/incdec/assign/decl and anything new: straight-line.
		b.add(s)
	}
}

// multiway builds switch/type-switch/select: one Cond block fanning out to
// per-clause blocks that rejoin after.
func (b *builder) multiway(s ast.Stmt, lbl *labelTarget) {
	var clauses []ast.Stmt
	var bodyOf func(ast.Stmt) []ast.Stmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		cond := b.start(KindCond)
		cond.Stmt = s
		if s.Tag != nil {
			cond.Nodes = append(cond.Nodes, s.Tag)
		}
		clauses = s.Body.List
		bodyOf = func(c ast.Stmt) []ast.Stmt { return c.(*ast.CaseClause).Body }
		for _, c := range clauses {
			if c.(*ast.CaseClause).List == nil {
				hasDefault = true
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		cond := b.start(KindCond)
		cond.Stmt = s
		cond.Nodes = append(cond.Nodes, s.Assign)
		clauses = s.Body.List
		bodyOf = func(c ast.Stmt) []ast.Stmt { return c.(*ast.CaseClause).Body }
		for _, c := range clauses {
			if c.(*ast.CaseClause).List == nil {
				hasDefault = true
			}
		}
	case *ast.SelectStmt:
		cond := b.start(KindCond)
		cond.Stmt = s
		clauses = s.Body.List
		bodyOf = func(c ast.Stmt) []ast.Stmt { return c.(*ast.CommClause).Body }
		for _, c := range clauses {
			if c.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
	}
	cond := b.cur
	after := b.newBlock(KindBody)
	b.breakTo = append(b.breakTo, after)
	if lbl != nil {
		lbl.breakB = after
	}

	// An expression switch with no default may match no case and fall
	// through to after. (A select without default blocks until a clause is
	// ready, but the conservative may-skip edge is harmless for forward
	// may-analyses and keeps "no clause ran" paths representable.)
	if !hasDefault {
		addEdge(cond, after)
	}

	clauseBlocks := make([]*Block, len(clauses))
	for i, c := range clauses {
		cb := b.newBlock(KindBody)
		cb.Nodes = append(cb.Nodes, c) // the clause (case exprs / comm op)
		addEdge(cond, cb)
		clauseBlocks[i] = cb
	}
	for i, c := range clauses {
		b.cur = clauseBlocks[i]
		body := bodyOf(c)
		b.stmtList(body)
		if b.cur != nil {
			// fallthrough links to the next clause body; otherwise rejoin.
			if n := len(body); n > 0 {
				if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && i+1 < len(clauseBlocks) {
					addEdge(b.cur, clauseBlocks[i+1])
					continue
				}
			}
			addEdge(b.cur, after)
		}
	}
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	b.cur = after
}

// isPanic recognizes a direct call to the panic builtin (by name — the
// builder is untyped; shadowed panic identifiers are rare enough to accept
// the imprecision, and the typed analyzers can re-check).
func isPanic(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// prune removes blocks unreachable from Entry (code after returns, loop
// after-blocks of `for {}`), keeping Succs/Preds mirrored, and renumbers.
func (g *Graph) prune() {
	reach := make([]bool, len(g.Blocks))
	stack := []*Block{g.Entry}
	reach[g.Entry.Index] = true
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range blk.Succs {
			if !reach[s.Index] {
				reach[s.Index] = true
				stack = append(stack, s)
			}
		}
	}
	// The exit block is structural: keep it even when nothing reaches it
	// (`for {}` bodies), so Exit-based queries stay total.
	reach[g.Exit.Index] = true

	keep := g.Blocks[:0]
	for _, blk := range g.Blocks {
		if reach[blk.Index] {
			keep = append(keep, blk)
		}
	}
	for _, blk := range keep {
		preds := blk.Preds[:0]
		for _, p := range blk.Preds {
			if reach[p.Index] {
				preds = append(preds, p)
			}
		}
		blk.Preds = preds
		succs := blk.Succs[:0]
		for _, s := range blk.Succs {
			if reach[s.Index] {
				succs = append(succs, s)
			}
		}
		blk.Succs = succs
	}
	g.Blocks = keep
	for i, blk := range g.Blocks {
		blk.Index = i
	}
	g.idom = nil
}
