package cfg

// Dominator computation: the Cooper–Harvey–Kennedy iterative algorithm
// over a reverse-postorder numbering. Graphs here are function bodies — a
// few dozen blocks — so the simple O(n²)-worst-case iteration beats
// Lengauer–Tarjan on both code size and actual speed.
//
// lockcheck is the motivating client: PR 8 decided "is this unlock
// conditional?" by cloning held-lock maps into each if-branch and
// intersecting them afterwards, a heuristic that understood exactly one
// statement shape. On the CFG the same question is principled: an unlock
// balances a lock iff the unlock's block post-dominates it (equivalently,
// the lock's Acquire dominates every path reaching the unlock), and the
// must-hold dataflow meet makes conditional releases fall out for free.

// buildDom computes immediate dominators for all blocks reachable from
// Entry. Blocks kept for structural reasons but unreachable (the Exit of a
// `for {}` body) get idom -1.
func (g *Graph) buildDom() {
	n := len(g.Blocks)
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}

	// Reverse postorder from Entry over Succs.
	post := make([]int, 0, n)
	seen := make([]bool, n)
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b.Index] = true
		for _, s := range b.Succs {
			if !seen[s.Index] {
				dfs(s)
			}
		}
		post = append(post, b.Index)
	}
	dfs(g.Entry)
	rpo := make([]int, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		rpo = append(rpo, post[i])
	}
	rpoNum := make([]int, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for num, idx := range rpo {
		rpoNum[idx] = num
	}

	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = idom[b]
			}
		}
		return a
	}

	idom[g.Entry.Index] = g.Entry.Index
	for changed := true; changed; {
		changed = false
		for _, idx := range rpo {
			if idx == g.Entry.Index {
				continue
			}
			b := g.Blocks[idx]
			newIdom := -1
			for _, p := range b.Preds {
				if idom[p.Index] == -1 {
					continue // predecessor not yet processed / unreachable
				}
				if newIdom == -1 {
					newIdom = p.Index
				} else {
					newIdom = intersect(newIdom, p.Index)
				}
			}
			if newIdom != -1 && idom[idx] != newIdom {
				idom[idx] = newIdom
				changed = true
			}
		}
	}
	g.idom = idom
}

// Dominates reports whether block a dominates block b: every path from
// Entry to b passes through a. A block dominates itself. Returns false if
// either block is unreachable from Entry.
func (g *Graph) Dominates(a, b *Block) bool {
	if g.idom == nil {
		g.buildDom()
	}
	if g.idom[a.Index] == -1 || g.idom[b.Index] == -1 {
		return false
	}
	for {
		if b == a {
			return true
		}
		next := g.idom[b.Index]
		if next == b.Index { // reached Entry
			return false
		}
		b = g.Blocks[next]
	}
}

// Idom returns the immediate dominator of b, or nil for Entry and for
// blocks unreachable from Entry.
func (g *Graph) Idom(b *Block) *Block {
	if g.idom == nil {
		g.buildDom()
	}
	i := g.idom[b.Index]
	if i == -1 || i == b.Index {
		return nil
	}
	return g.Blocks[i]
}
