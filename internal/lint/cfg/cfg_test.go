package cfg

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// parseFunc parses one function body and builds its graph.
func parseFunc(t *testing.T, body string) *Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	return New("f", fd.Body)
}

// checkInvariants asserts the structural invariants the package godoc
// promises; shared with the module-wide smoke test.
func checkInvariants(t *testing.T, g *Graph) {
	t.Helper()
	if g.Entry == nil || g.Exit == nil {
		t.Fatalf("%s: nil entry/exit", g.Name)
	}
	if len(g.Entry.Preds) != 0 {
		t.Errorf("%s: entry has %d preds", g.Name, len(g.Entry.Preds))
	}
	if len(g.Exit.Succs) != 0 {
		t.Errorf("%s: exit has %d succs", g.Name, len(g.Exit.Succs))
	}
	entries, exits := 0, 0
	for _, b := range g.Blocks {
		switch b.Kind {
		case KindEntry:
			entries++
		case KindExit:
			exits++
		}
	}
	if entries != 1 || exits != 1 {
		t.Errorf("%s: %d entry blocks, %d exit blocks", g.Name, entries, exits)
	}

	// Succs/Preds mirror each other.
	count := func(list []*Block, b *Block) int {
		n := 0
		for _, x := range list {
			if x == b {
				n++
			}
		}
		return n
	}
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if count(s.Preds, b) != count(b.Succs, s) {
				t.Errorf("%s: edge b%d->b%d not mirrored", g.Name, b.Index, s.Index)
			}
		}
	}

	// Everything except (possibly) Exit is reachable from Entry.
	reach := map[*Block]bool{g.Entry: true}
	stack := []*Block{g.Entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if !reach[s] {
				reach[s] = true
				stack = append(stack, s)
			}
		}
	}
	for _, b := range g.Blocks {
		if !reach[b] && b != g.Exit {
			t.Errorf("%s: block b%d (%s) unreachable from entry", g.Name, b.Index, b.Kind)
		}
	}

	// Defer blocks form straight chains that terminate at Exit: once
	// registered, a deferred call runs unconditionally on the way out.
	for _, b := range g.Blocks {
		if b.Kind != KindDefer {
			continue
		}
		if len(b.Succs) != 1 {
			t.Errorf("%s: defer block b%d has %d succs, want 1", g.Name, b.Index, len(b.Succs))
			continue
		}
		seen := map[*Block]bool{}
		cur := b
		for cur != g.Exit {
			if seen[cur] {
				t.Errorf("%s: defer chain from b%d cycles", g.Name, b.Index)
				break
			}
			seen[cur] = true
			if cur.Kind != KindDefer {
				t.Errorf("%s: defer chain from b%d passes through non-defer b%d (%s)",
					g.Name, b.Index, cur.Index, cur.Kind)
				break
			}
			cur = cur.Succs[0]
		}
	}
}

func TestStraightLine(t *testing.T) {
	g := parseFunc(t, "x := 1\n_ = x")
	checkInvariants(t, g)
	// entry(+stmts) -> exit
	if len(g.Blocks) != 2 {
		t.Fatalf("blocks = %d, want 2", len(g.Blocks))
	}
	if len(g.Entry.Nodes) != 2 {
		t.Errorf("entry nodes = %d, want 2", len(g.Entry.Nodes))
	}
}

func TestIfElseJoin(t *testing.T) {
	g := parseFunc(t, `
x := 0
if x > 0 {
	x = 1
} else {
	x = 2
}
_ = x`)
	checkInvariants(t, g)
	var cond *Block
	for _, b := range g.Blocks {
		if b.Kind == KindCond {
			cond = b
		}
	}
	if cond == nil {
		t.Fatal("no cond block")
	}
	if len(cond.Succs) != 2 {
		t.Fatalf("cond succs = %d, want 2 (then/else)", len(cond.Succs))
	}
	// Both branches rejoin: the join block has 2 preds.
	join := cond.Succs[0].Succs[0]
	if len(join.Preds) != 2 {
		t.Errorf("join preds = %d, want 2", len(join.Preds))
	}
}

func TestIfWithoutElse(t *testing.T) {
	g := parseFunc(t, `
x := 0
if x > 0 {
	x = 1
}
_ = x`)
	checkInvariants(t, g)
	for _, b := range g.Blocks {
		if b.Kind == KindCond && len(b.Succs) != 2 {
			t.Errorf("cond succs = %d, want 2 (then + skip)", len(b.Succs))
		}
	}
}

func TestForLoopBackEdge(t *testing.T) {
	g := parseFunc(t, `
for i := 0; i < 10; i++ {
	_ = i
}`)
	checkInvariants(t, g)
	var head *Block
	for _, b := range g.Blocks {
		if b.Loop {
			head = b
		}
	}
	if head == nil {
		t.Fatal("no loop head")
	}
	// Post block loops back to head: head must have >= 2 preds
	// (entry-side edge + back edge).
	if len(head.Preds) < 2 {
		t.Errorf("loop head preds = %d, want >= 2 (incl. back edge)", len(head.Preds))
	}
	if _, ok := head.Stmt.(*ast.ForStmt); !ok {
		t.Errorf("loop head Stmt = %T, want *ast.ForStmt", head.Stmt)
	}
}

func TestRangeLoop(t *testing.T) {
	g := parseFunc(t, `
m := map[int]int{}
for k := range m {
	_ = k
}`)
	checkInvariants(t, g)
	found := false
	for _, b := range g.Blocks {
		if b.Loop {
			found = true
			if _, ok := b.Stmt.(*ast.RangeStmt); !ok {
				t.Errorf("loop head Stmt = %T, want *ast.RangeStmt", b.Stmt)
			}
			if len(b.Succs) != 2 {
				t.Errorf("range head succs = %d, want 2 (body + after)", len(b.Succs))
			}
		}
	}
	if !found {
		t.Fatal("no loop head")
	}
}

func TestInfiniteLoopPrunesAfter(t *testing.T) {
	g := parseFunc(t, `
for {
	_ = 1
}`)
	checkInvariants(t, g)
	// The after-block is unreachable and pruned; Exit remains (structural)
	// but nothing reaches it.
	if len(g.Exit.Preds) != 0 {
		t.Errorf("exit preds = %d, want 0 for for{}", len(g.Exit.Preds))
	}
}

func TestBreakReachesAfter(t *testing.T) {
	g := parseFunc(t, `
for {
	break
}`)
	checkInvariants(t, g)
	if len(g.Exit.Preds) == 0 {
		t.Error("break out of for{} should reach exit")
	}
}

func TestDeferChain(t *testing.T) {
	g := parseFunc(t, `
defer println("a")
defer println("b")
x := 1
_ = x`)
	checkInvariants(t, g)
	defers := 0
	for _, b := range g.Blocks {
		if b.Kind == KindDefer {
			defers++
		}
	}
	if defers != 2 {
		t.Fatalf("defer blocks = %d, want 2", defers)
	}
	// Exit's only predecessor path is through the defer chain: the last
	// registered defer runs first, so the chain is b->a->exit and the
	// direct exit pred must be the FIRST registered defer ("a").
	if len(g.Exit.Preds) != 1 || g.Exit.Preds[0].Kind != KindDefer {
		t.Fatalf("exit preds = %v, want single defer block", g.Exit.Preds)
	}
}

func TestConditionalReturnRoutesThroughDefer(t *testing.T) {
	g := parseFunc(t, `
defer println("cleanup")
x := 0
if x > 0 {
	return
}
x = 2
_ = x`)
	checkInvariants(t, g)
	// Both the early return and the fallthrough exit must pass the defer:
	// the defer block has 2 preds.
	for _, b := range g.Blocks {
		if b.Kind == KindDefer && len(b.Preds) != 2 {
			t.Errorf("defer preds = %d, want 2 (early return + fallthrough)", len(b.Preds))
		}
	}
}

func TestPanicExits(t *testing.T) {
	g := parseFunc(t, `
x := 0
if x > 0 {
	panic("boom")
}
_ = x`)
	checkInvariants(t, g)
	// The panic block's successor is exit (no defers).
	found := false
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok && isPanic(es.X) {
				found = true
				if len(b.Succs) != 1 || b.Succs[0] != g.Exit {
					t.Errorf("panic block succs = %v, want [exit]", b.Succs)
				}
			}
		}
	}
	if !found {
		t.Fatal("panic statement not found in any block")
	}
}

func TestSwitchNoDefaultMaySkip(t *testing.T) {
	g := parseFunc(t, `
x := 0
switch x {
case 1:
	x = 10
case 2:
	x = 20
}
_ = x`)
	checkInvariants(t, g)
	var cond *Block
	for _, b := range g.Blocks {
		if b.Kind == KindCond {
			cond = b
		}
	}
	if cond == nil {
		t.Fatal("no cond block")
	}
	// 2 clauses + skip edge.
	if len(cond.Succs) != 3 {
		t.Errorf("switch cond succs = %d, want 3 (2 cases + skip)", len(cond.Succs))
	}
}

func TestSelectDefault(t *testing.T) {
	g := parseFunc(t, `
ch := make(chan int)
select {
case v := <-ch:
	_ = v
default:
}`)
	checkInvariants(t, g)
	var cond *Block
	for _, b := range g.Blocks {
		if b.Kind == KindCond {
			cond = b
		}
	}
	if cond == nil {
		t.Fatal("no cond block")
	}
	if len(cond.Succs) != 2 {
		t.Errorf("select cond succs = %d, want 2 (comm + default)", len(cond.Succs))
	}
}

func TestGotoForwardAndBack(t *testing.T) {
	g := parseFunc(t, `
	i := 0
loop:
	i++
	if i < 10 {
		goto loop
	}
	_ = i`)
	checkInvariants(t, g)
}

func TestLabeledBreakContinue(t *testing.T) {
	g := parseFunc(t, `
outer:
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if j == 1 {
				continue outer
			}
			if i == 2 {
				break outer
			}
		}
	}`)
	checkInvariants(t, g)
}

func TestFallthrough(t *testing.T) {
	g := parseFunc(t, `
x := 0
switch x {
case 0:
	x = 1
	fallthrough
case 1:
	x = 2
default:
	x = 3
}
_ = x`)
	checkInvariants(t, g)
}

func TestDominates(t *testing.T) {
	g := parseFunc(t, `
x := 0
if x > 0 {
	x = 1
} else {
	x = 2
}
_ = x`)
	var cond, join *Block
	for _, b := range g.Blocks {
		if b.Kind == KindCond {
			cond = b
		}
	}
	join = cond.Succs[0].Succs[0]
	thenB, elseB := cond.Succs[0], cond.Succs[1]

	if !g.Dominates(g.Entry, cond) {
		t.Error("entry should dominate cond")
	}
	if !g.Dominates(cond, join) {
		t.Error("cond should dominate join")
	}
	if g.Dominates(thenB, join) {
		t.Error("then branch must not dominate join (else path bypasses it)")
	}
	if g.Dominates(elseB, join) {
		t.Error("else branch must not dominate join")
	}
	if !g.Dominates(join, join) {
		t.Error("a block dominates itself")
	}
	if id := g.Idom(join); id != cond {
		t.Errorf("idom(join) = %v, want cond", id)
	}
	if g.Idom(g.Entry) != nil {
		t.Error("idom(entry) should be nil")
	}
}

func TestDominatesLoop(t *testing.T) {
	g := parseFunc(t, `
for i := 0; i < 10; i++ {
	if i == 5 {
		break
	}
}`)
	var head *Block
	for _, b := range g.Blocks {
		if b.Loop {
			head = b
		}
	}
	if head == nil {
		t.Fatal("no loop head")
	}
	// The head dominates every block in the loop and the after-block.
	for _, b := range g.Blocks {
		if b == g.Entry || b.Kind == KindEntry {
			continue
		}
		if !g.Dominates(head, b) && b != head {
			// The only blocks not dominated by head are entry-side ones;
			// here the init statement lives in entry, so everything else
			// is downstream of head.
			t.Errorf("loop head should dominate b%d (%s)", b.Index, b.Kind)
		}
	}
}

func TestBuildAllNamesAndLiterals(t *testing.T) {
	src := `package p

type T struct{}

func (t *T) M() {
	f := func() {
		g := func() {}
		g()
	}
	f()
}

func Plain() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	fgs := BuildAll([]*ast.File{f})
	var names []string
	for _, fg := range fgs {
		names = append(names, fg.Graph.Name)
		checkInvariants(t, fg.Graph)
	}
	want := []string{"(*T).M", "(*T).M$1", "(*T).M$1$1", "Plain"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Errorf("names = %v, want %v", names, want)
	}
	// Parent links chain literals to their hosts.
	if fgs[1].Parent != fgs[0] || fgs[2].Parent != fgs[1] {
		t.Error("literal Parent links wrong")
	}
}

// TestModuleCFGInvariants is the module-wide smoke test: build a CFG for
// every function in every package of this module and assert the structural
// invariants hold. It parses with go/parser directly (no type checking
// needed), so _test.go files AND testdata fixtures are covered — fixtures
// intentionally contain bug-shaped code, which is exactly the code the
// builder must not choke on.
func TestModuleCFGInvariants(t *testing.T) {
	root := moduleRoot(t)
	fset := token.NewFileSet()
	funcs := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || (strings.HasPrefix(name, ".") && path != root) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("%s: %v", path, err)
		}
		for _, fg := range BuildAll([]*ast.File{f}) {
			funcs++
			checkInvariants(t, fg.Graph)
			// Dominator computation must not panic or cycle on any
			// real-world shape; exercise it for every block pair root.
			for _, b := range fg.Graph.Blocks {
				fg.Graph.Dominates(fg.Graph.Entry, b)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if funcs < 100 {
		t.Fatalf("smoke test built only %d function graphs — module walk looks broken", funcs)
	}
	t.Logf("checked %d function graphs", funcs)
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test dir")
		}
		dir = parent
	}
}
