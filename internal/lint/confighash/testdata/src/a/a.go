// Fixture for the confighash analyzer: structs with a Canonical method must
// serialize every field into the store key.
package a

// Config is hashed; every field must survive json.Marshal.
type Config struct {
	Threads  int                        `json:"threads"`
	Clusters int                        `json:"clusters"`
	seed     uint64                     // want `field Config\.seed is unexported: json\.Marshal skips it`
	Debug    bool                       `json:"-"`       // want `field Config\.Debug is tagged json:"-": it is omitted from Canonical\(\)`
	Rate     float64                    `json:"threads"` // want `field Config\.Rate serializes as "threads", colliding with Config\.Threads`
	Hook     func()                     `json:"hook"`    // want `field Config\.Hook has type func\(\), which json\.Marshal cannot encode`
	Notify   chan int                   `json:"notify"`  // want `field Config\.Notify has type chan int, which json\.Marshal cannot encode`
	Policy   interface{ Name() string } `json:"policy"`  // want `field Config\.Policy is interface-typed`
	Sub      Nested                     `json:"sub"`
	Embedded
}

// Nested rides along inside Config's hash; its fields are checked too.
type Nested struct {
	Depth int    `json:"depth"`
	label string // want `field Config\.Sub\(Nested\)\.label is unexported: json\.Marshal skips it`
}

// Embedded flattens into Config's namespace.
type Embedded struct {
	Width  int `json:"width"`
	hidden int // want `field Config\.Embedded\.hidden is unexported: json\.Marshal skips it`
}

func (c Config) Canonical() []byte { return nil }

// Plain has no Canonical method: nothing here is part of a store key, so
// unexported fields and json:"-" are fine.
type Plain struct {
	state int
	Skip  int `json:"-"`
}
