// Package confighash guards the content-addressed result store's identity
// function. Store keys are SHA-256 over core.Config.Canonical(), which is a
// whole-struct JSON serialization: any field that json.Marshal skips —
// unexported, tagged `json:"-"`, or shadowed by a duplicate tag name — is a
// sweep axis that silently aliases two distinct configurations onto one
// store key. The analyzer finds every struct that defines a Canonical()
// method and verifies, recursively through module-local nested structs,
// that every field actually reaches the serialized form.
package confighash

import (
	"fmt"
	"go/types"
	"reflect"
	"strings"

	"clustersmt/internal/lint"
)

// Analyzer is the confighash check.
var Analyzer = &lint.Analyzer{
	Name: "confighash",
	Doc: "check that every field of a Canonical()-hashed config struct " +
		"survives JSON serialization (no unexported fields, no json:\"-\", " +
		"no duplicate tag names, no unmarshalable types)",
	Run: run,
}

func run(pass *lint.Pass) error {
	scope := pass.Pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || !hasMethod(named, "Canonical") {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		seen := map[*types.Struct]bool{}
		checkStruct(pass, st, named.Obj().Name(), seen)
	}
	return nil
}

func hasMethod(named *types.Named, name string) bool {
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == name {
			return true
		}
	}
	return false
}

// checkStruct verifies one struct level and recurses into module-local
// struct-typed fields (the nested sub-configs that ride along in the hash).
func checkStruct(pass *lint.Pass, st *types.Struct, path string, seen map[*types.Struct]bool) {
	if seen[st] {
		return
	}
	seen[st] = true
	names := map[string]string{} // effective JSON name -> field path
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		fpath := path + "." + f.Name()
		if !f.Exported() {
			pass.Reportf(f.Pos(),
				"field %s is unexported: json.Marshal skips it, so it never reaches Canonical() and the store key", fpath)
			continue
		}
		tag := reflect.StructTag(st.Tag(i)).Get("json")
		jsonName, opts, _ := strings.Cut(tag, ",")
		_ = opts
		if jsonName == "-" && tag == "-" {
			pass.Reportf(f.Pos(),
				"field %s is tagged json:\"-\": it is omitted from Canonical(), so two configs differing only in %s share a store key", fpath, f.Name())
			continue
		}
		effective := f.Name()
		if jsonName != "" && jsonName != "-" {
			effective = jsonName
		}
		if f.Embedded() {
			// An untagged embedded struct flattens into the parent's name
			// space; recurse into it under the same path.
			if inner, ok := derefStruct(f.Type()); ok && tag == "" {
				checkStruct(pass, inner, fpath, seen)
				continue
			}
		}
		if prev, dup := names[effective]; dup {
			pass.Reportf(f.Pos(),
				"field %s serializes as %q, colliding with %s: one of them is dropped from Canonical()", fpath, effective, prev)
		}
		names[effective] = fpath
		checkFieldType(pass, f, fpath, f.Type(), seen)
	}
}

// checkFieldType rejects types json.Marshal cannot encode and recurses into
// module-local named structs reachable through pointers, slices, arrays,
// and map values.
func checkFieldType(pass *lint.Pass, f *types.Var, path string, t types.Type, seen map[*types.Struct]bool) {
	switch u := t.Underlying().(type) {
	case *types.Signature, *types.Chan:
		pass.Reportf(f.Pos(),
			"field %s has type %s, which json.Marshal cannot encode: Canonical() would fail at runtime", path, t)
	case *types.Interface:
		if u.NumMethods() > 0 || !u.IsComparable() {
			pass.Reportf(f.Pos(),
				"field %s is interface-typed: its serialized form depends on the dynamic type, which the store key cannot pin statically", path)
		}
	case *types.Pointer:
		checkFieldType(pass, f, path, u.Elem(), seen)
	case *types.Slice:
		checkFieldType(pass, f, path, u.Elem(), seen)
	case *types.Array:
		checkFieldType(pass, f, path, u.Elem(), seen)
	case *types.Map:
		checkFieldType(pass, f, path, u.Elem(), seen)
	case *types.Struct:
		named, ok := t.(*types.Named)
		if !ok {
			checkStruct(pass, u, path, seen)
			return
		}
		if !moduleLocal(pass, named) {
			return // stdlib types own their marshaling contract
		}
		if hasMarshaler(named) {
			return // a custom MarshalJSON takes over; runtime tests cover it
		}
		checkStruct(pass, u, fmt.Sprintf("%s(%s)", path, named.Obj().Name()), seen)
	}
}

func derefStruct(t types.Type) (*types.Struct, bool) {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	return st, ok
}

// moduleLocal reports whether named is defined in one of the loaded
// packages (i.e. inside this module) rather than the standard library.
func moduleLocal(pass *lint.Pass, named *types.Named) bool {
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return false
	}
	_, ok := pass.Module.Pkgs[pkg.Path()]
	return ok
}

func hasMarshaler(named *types.Named) bool {
	for _, recv := range []types.Type{named, types.NewPointer(named)} {
		ms := types.NewMethodSet(recv)
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == "MarshalJSON" {
				return true
			}
		}
	}
	return false
}
