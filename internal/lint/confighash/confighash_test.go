package confighash_test

import (
	"testing"

	"clustersmt/internal/lint/confighash"
	"clustersmt/internal/lint/linttest"
)

func TestConfighash(t *testing.T) {
	linttest.Run(t, confighash.Analyzer, "testdata/src/a")
}
