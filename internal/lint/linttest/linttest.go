// Package linttest is the golden-fixture harness for the smtlint analyzers,
// mirroring x/tools' analysistest: a fixture package under testdata/src is
// loaded and analyzed, and every expected diagnostic is declared in the
// fixture itself with a trailing comment of the form
//
//	code // want "regexp" "another regexp"
//
// Each pattern must match one diagnostic reported on that line, every
// diagnostic must be claimed by a pattern, and mismatches in either
// direction fail the test.
package linttest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"clustersmt/internal/lint"
)

// Run loads the fixture package at dir, applies the analyzer, and compares
// diagnostics against the fixture's want comments.
func Run(t *testing.T, a *lint.Analyzer, dir string) {
	t.Helper()
	m, err := lint.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags := lint.Run(m, []*lint.Analyzer{a})

	wants, err := parseWants(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("%s: unexpected diagnostic: %s", d.Pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)`)

func parseWants(m *lint.Module) ([]*want, error) {
	var wants []*want
	for _, pkg := range m.Targets {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					match := wantRe.FindStringSubmatch(c.Text)
					if match == nil {
						continue
					}
					pos := m.Fset.Position(c.Pos())
					for _, pat := range splitQuoted(match[1]) {
						str, err := strconv.Unquote(pat)
						if err != nil {
							return nil, fmt.Errorf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, pat, err)
						}
						re, err := regexp.Compile(str)
						if err != nil {
							return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, str, err)
						}
						wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	return wants, nil
}

// splitQuoted extracts the quoted segments of a want comment tail. Both
// double-quoted (with backslash escapes) and backquoted segments are
// accepted; backquotes keep regexp metacharacters readable.
func splitQuoted(s string) []string {
	var out []string
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			j := i + 1
			for j < len(s) && s[j] != '"' {
				if s[j] == '\\' {
					j++
				}
				j++
			}
			if j >= len(s) {
				return out
			}
			out = append(out, s[i:j+1])
			i = j
		case '`':
			j := strings.IndexByte(s[i+1:], '`')
			if j < 0 {
				return out
			}
			out = append(out, s[i:i+j+2])
			i += j + 1
		}
	}
	return out
}

func claim(wants []*want, d lint.Diagnostic) bool {
	for _, w := range wants {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}
