package lint_test

import (
	"testing"

	"clustersmt/internal/lint"
	"clustersmt/internal/lint/confighash"
	"clustersmt/internal/lint/ctxflow"
	"clustersmt/internal/lint/detcheck"
	"clustersmt/internal/lint/errflow"
	"clustersmt/internal/lint/lockcheck"
	"clustersmt/internal/lint/noalloc"
	"clustersmt/internal/lint/registryref"
)

// all mirrors cmd/smtlint's analyzer list (the command package cannot be
// imported from a test).
var all = []*lint.Analyzer{
	noalloc.Analyzer,
	confighash.Analyzer,
	lockcheck.Analyzer,
	registryref.Analyzer,
	detcheck.Analyzer,
	ctxflow.Analyzer,
	errflow.Analyzer,
}

// TestRepoIsLintClean runs the full smtlint suite over the repository,
// pinning the CI gate in the test suite itself: the module stays free of
// smtlint findings and of reason-less allow directives.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	m, err := lint.Load("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	for _, pos := range m.BadAllows() {
		t.Errorf("%s: //smtlint:allow requires a reason", pos)
	}
	for _, d := range lint.Run(m, all) {
		t.Errorf("%s", d)
	}
}
