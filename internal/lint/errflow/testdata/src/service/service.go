// Fixture for the errflow analyzer, shaped like the campaign daemon's
// HTTP surface: dropped error results and overwritten-unchecked error
// variables, with the two sanctioned exemptions (response writes,
// cleanup on an error path).
package service

import (
	"fmt"
	"net/http"
	"os"
)

func post() error       { return nil }
func cleanup() error    { return nil }
func two() (int, error) { return 0, nil }
func consume(err error) { _ = err }

// --- rule 1: dropped error results ---

func dropped() {
	post() // want `error result of post is dropped`
}

func handled() error {
	if err := post(); err != nil {
		return err
	}
	return nil
}

func deliberatelyIgnored() {
	_ = post() // clean: explicit discard
}

func handleStatus(w http.ResponseWriter, r *http.Request) {
	w.Write([]byte("ok\n"))  // clean: response already in flight
	fmt.Fprintf(w, "done\n") // clean: writer argument
}

func cleanupOnErrorPath(f *os.File) error {
	if err := post(); err != nil {
		f.Close() // clean: best-effort cleanup, the block returns err
		return err
	}
	return nil
}

func cleanupOnHappyPath(f *os.File) error {
	f.Close() // want `error result of f\.Close is dropped`
	return nil
}

// --- rule 2: overwritten before checked (must-analysis) ---

func overwritten() error {
	err := post()
	err = cleanup() // want `err overwritten before the error assigned on line \d+ is checked`
	return err
}

func checkedBetween() error {
	err := post()
	if err != nil {
		return err
	}
	err = cleanup()
	return err
}

func checkedOnSomePath(b bool) error {
	err := post()
	if b {
		consume(err)
	}
	err = cleanup() // clean: one path read it, so this is not a must-drop
	return err
}

func uncheckedOnAllPaths(b bool) error {
	err := post()
	if b {
		err = cleanup() // want `err overwritten before the error assigned on line \d+ is checked`
	} else {
		err = post() // want `err overwritten before the error assigned on line \d+ is checked`
	}
	return err
}

func redeclared() error {
	n, err := two()
	_ = n
	m, err := two() // want `err overwritten before the error assigned on line \d+ is checked`
	_ = m
	return err
}
