// Package errflow implements the error-handling analyzer for the
// module's service surface: the campaign daemon's HTTP handlers, the
// fleet coordinator/worker plumbing, and the result-store codec. Those
// are the places a silently dropped error turns into a wedged campaign
// or a corrupt cache entry, so the rules are strict there and not
// enforced elsewhere (packages named service, fleet, or store).
//
// Two rules:
//
//  1. Dropped errors: a call whose last result is an error, used as a
//     bare statement, is a bug. Writes to an http.ResponseWriter are
//     exempt (the response is already in flight; there is nothing left
//     to do with the error), as is best-effort cleanup inside a block
//     that already returns an error.
//
//  2. Overwritten errors: assigning to an error variable whose previous
//     value has not been read on ANY path to the assignment loses that
//     error. This is a must-analysis over the function's CFG — if some
//     path checked the value, the assignment is fine — solved with the
//     dataflow package's forward solver under an intersection join.
package errflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"clustersmt/internal/lint"
	"clustersmt/internal/lint/cfg"
	"clustersmt/internal/lint/dataflow"
)

// Analyzer is the errflow analyzer.
var Analyzer = &lint.Analyzer{
	Name: "errflow",
	Doc: "in service, fleet, and store packages: no dropped error results, " +
		"no error variables overwritten while still unchecked",
	Run: run,
}

func run(pass *lint.Pass) error {
	switch pass.Pkg.Types.Name() {
	case "service", "fleet", "store":
	default:
		return nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkDropped(pass, fd)
			checkOverwritten(pass, fd)
		}
	}
	return nil
}

// --- rule 1: dropped error results ---

func checkDropped(pass *lint.Pass, fd *ast.FuncDecl) {
	// Walk statement lists so a drop can see its block's later statements
	// (the cleanup-on-error-path exemption).
	var walkList func(list []ast.Stmt)
	var walk func(s ast.Stmt)
	walkList = func(list []ast.Stmt) {
		for i, s := range list {
			if es, ok := s.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok && returnsError(pass, call) {
					if !droppedExempt(pass, call, list[i+1:]) {
						pass.Reportf(es.Pos(), "error result of %s is dropped; check it or assign it to _ deliberately", types.ExprString(call.Fun))
					}
				}
				continue
			}
			walk(s)
		}
	}
	walk = func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.BlockStmt:
			walkList(s.List)
		case *ast.IfStmt:
			walkList(s.Body.List)
			if s.Else != nil {
				walk(s.Else)
			}
		case *ast.ForStmt:
			walkList(s.Body.List)
		case *ast.RangeStmt:
			walkList(s.Body.List)
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkList(cc.Body)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkList(cc.Body)
				}
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					walkList(cc.Body)
				}
			}
		case *ast.LabeledStmt:
			walk(s.Stmt)
		}
	}
	walkList(fd.Body.List)
}

// returnsError reports whether the call's last result is the error type.
func returnsError(pass *lint.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		return t.Len() > 0 && isErrorType(t.At(t.Len()-1).Type())
	default:
		return isErrorType(t)
	}
}

// droppedExempt: response writes (nothing left to do once the wire has the
// bytes) and best-effort cleanup in a block already returning an error.
func droppedExempt(pass *lint.Pass, call *ast.CallExpr, rest []ast.Stmt) bool {
	if touchesResponseWriter(pass, call) {
		return true
	}
	for _, s := range rest {
		ret, ok := s.(*ast.ReturnStmt)
		if !ok {
			continue
		}
		for _, r := range ret.Results {
			if tv, ok := pass.TypesInfo.Types[r]; ok && isErrorType(tv.Type) {
				if id, ok := ast.Unparen(r).(*ast.Ident); !ok || id.Name != "nil" {
					return true // cleanup on a path that reports some error
				}
			}
		}
	}
	return false
}

func touchesResponseWriter(pass *lint.Pass, call *ast.CallExpr) bool {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if tv, ok := pass.TypesInfo.Types[sel.X]; ok && isResponseWriter(tv.Type) {
			return true
		}
	}
	for _, a := range call.Args {
		if tv, ok := pass.TypesInfo.Types[a]; ok && isResponseWriter(tv.Type) {
			return true
		}
	}
	return false
}

// --- rule 2: overwritten-before-checked, a must-analysis over the CFG ---

// errState maps error-typed objects to the position of their latest
// still-unread assignment. nil is bottom ("no path seen").
type errState map[types.Object]token.Pos

func (s errState) clone() errState {
	c := make(errState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

type errProblem struct {
	pass   *lint.Pass
	report bool
}

func (p *errProblem) Boundary() errState { return errState{} }

func (p *errProblem) Transfer(b *cfg.Block, in errState) errState {
	st := in.clone()
	for _, n := range b.Nodes {
		p.node(n, st)
	}
	return st
}

func (p *errProblem) node(n ast.Node, st errState) {
	as, ok := n.(*ast.AssignStmt)
	if !ok {
		// Every other node only reads: any mention of a tracked variable
		// (a check, a return, passing it or its address along) clears it.
		clearReads(p.pass, n, st)
		return
	}
	// Reads on the right-hand side (and in index/selector positions on the
	// left) clear first; then the write itself lands.
	for _, r := range as.Rhs {
		clearReads(p.pass, r, st)
	}
	for _, l := range as.Lhs {
		if _, isIdent := ast.Unparen(l).(*ast.Ident); !isIdent {
			clearReads(p.pass, l, st)
		}
	}
	for _, l := range as.Lhs {
		id, ok := ast.Unparen(l).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := p.pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = p.pass.TypesInfo.Uses[id]
		}
		if obj == nil || !isErrorType(obj.Type()) {
			continue
		}
		if prev, unread := st[obj]; unread && p.report {
			prevLine := p.pass.Fset.Position(prev).Line
			p.pass.Reportf(id.Pos(), "%s overwritten before the error assigned on line %d is checked", id.Name, prevLine)
		}
		st[obj] = id.Pos()
	}
}

func (p *errProblem) Join(acc, src errState) (errState, bool) {
	if acc == nil {
		return src.clone(), len(src) > 0
	}
	changed := false
	for o := range acc {
		if _, ok := src[o]; !ok {
			delete(acc, o) // read on some path: no longer must-unread
			changed = true
		}
	}
	return acc, changed
}

func (p *errProblem) Equal(a, b errState) bool {
	if len(a) != len(b) {
		return false
	}
	for o, v := range a {
		if w, ok := b[o]; !ok || w != v {
			return false
		}
	}
	return true
}

// clearReads removes every tracked variable mentioned under n.
func clearReads(pass *lint.Pass, n ast.Node, st errState) {
	if n == nil || len(st) == 0 {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil {
				delete(st, obj)
			}
		}
		return true
	})
}

func checkOverwritten(pass *lint.Pass, fd *ast.FuncDecl) {
	g := cfg.New(fd.Name.Name, fd.Body)
	p := &errProblem{pass: pass}
	facts := dataflow.Forward[errState](g, p)
	// Replay with reporting on, from the solved facts.
	p.report = true
	for _, b := range g.Blocks {
		st := facts.In[b.Index]
		if st == nil {
			st = errState{}
		}
		p.Transfer(b, st)
	}
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

func isResponseWriter(t types.Type) bool {
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	o := n.Obj()
	return o.Name() == "ResponseWriter" && o.Pkg() != nil && o.Pkg().Path() == "net/http"
}
