package errflow_test

import (
	"testing"

	"clustersmt/internal/lint/errflow"
	"clustersmt/internal/lint/linttest"
)

func TestErrflow(t *testing.T) {
	linttest.Run(t, errflow.Analyzer, "testdata/src/service")
}
