package dataflow

import (
	"go/ast"
	"go/types"
	"sort"
	"sync"

	"clustersmt/internal/lint"
	"clustersmt/internal/lint/cfg"
)

// An Fn is one module-local function: its object, syntax, owning package,
// and control-flow graph.
type Fn struct {
	Obj  *types.Func
	Pkg  *lint.Package
	Decl *ast.FuncDecl
	G    *cfg.Graph
}

// Funcs indexes every function declared in a loaded module (targets AND
// in-module dependencies), giving analyzers a module-local call graph: a
// call site resolved through StaticCallee to an Fn here is an intra-module
// edge; anything else is stdlib or dynamic.
type Funcs struct {
	ByObj map[*types.Func]*Fn
	// All lists the functions in deterministic order (package path, then
	// file position) so fixpoints over summaries iterate reproducibly.
	All []*Fn
}

// funcsCache maps *lint.Module to a once-guarded *Funcs so concurrent
// analyzers share one index and only one goroutine pays for building it.
var funcsCache sync.Map

type funcsEntry struct {
	once sync.Once
	fs   *Funcs
}

// ModuleFuncs builds (or returns the cached) function index for m. The
// index is immutable once built, so concurrent analyzers share one copy.
func ModuleFuncs(m *lint.Module) *Funcs {
	v, _ := funcsCache.LoadOrStore(m, &funcsEntry{})
	e := v.(*funcsEntry)
	e.once.Do(func() { e.fs = buildFuncs(m) })
	return e.fs
}

func buildFuncs(m *lint.Module) *Funcs {
	fs := &Funcs{ByObj: map[*types.Func]*Fn{}}
	paths := make([]string, 0, len(m.Pkgs))
	for p := range m.Pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, path := range paths {
		pkg := m.Pkgs[path]
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fn := &Fn{Obj: obj, Pkg: pkg, Decl: fd}
				fn.G = cfg.New(obj.FullName(), fd.Body)
				fs.ByObj[obj] = fn
				fs.All = append(fs.All, fn)
			}
		}
	}
	return fs
}

// StaticCallee resolves a call expression to the *types.Func it statically
// invokes: package functions, methods (through selectors), and generic
// instantiations. Returns nil for builtins, conversions, and calls through
// function-typed values.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	// Generic instantiation: f[T](...) parses as IndexExpr/IndexListExpr.
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(ix.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(ix.X)
	}
	var obj types.Object
	switch fun := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}
