// Package dataflow layers flow-sensitive analysis on top of the CFGs from
// internal/lint/cfg: a generic forward fixpoint solver, a module-local
// function index / call-graph, and the determinism taint engine behind the
// detcheck analyzer (sources: map-iteration order, wall clock, unseeded
// math/rand, goroutine-send order; sinks: metrics.Stats and campaign
// Result fields, report emitters, store cache keys, HTTP response writes).
//
// Everything is standard library only — the module's go.sum stays empty —
// so the solver is deliberately plain: a worklist over basic blocks in
// reverse postorder, re-running transfer functions until the facts stop
// changing. Function bodies are small (the module-wide CFG smoke test
// counts a median of well under 20 blocks), so simplicity wins over
// anything asymptotically clever.
package dataflow

import "clustersmt/internal/lint/cfg"

// A Problem defines one forward dataflow problem over a function graph.
// F is the per-block fact type (typically a map, with the zero value as
// bottom).
type Problem[F any] interface {
	// Boundary is the fact entering the function's entry block.
	Boundary() F

	// Transfer computes the fact leaving block b given the fact entering
	// it. It must not mutate in.
	Transfer(b *cfg.Block, in F) F

	// Join merges src into acc, returning the merged fact and whether it
	// differs from acc. acc is F's zero value for the first predecessor —
	// implementations initialize from src there (this makes intersection
	// joins for must-analyses expressible: the zero value means "no path
	// seen yet", not "empty set").
	Join(acc F, src F) (F, bool)

	// Equal reports whether two facts are equal; it bounds the fixpoint.
	Equal(a, b F) bool
}

// Facts holds the solved fixpoint, indexed by cfg Block index.
type Facts[F any] struct {
	In  []F
	Out []F
}

// Forward solves p over g to a fixpoint and returns the per-block facts.
func Forward[F any](g *cfg.Graph, p Problem[F]) Facts[F] {
	n := len(g.Blocks)
	facts := Facts[F]{In: make([]F, n), Out: make([]F, n)}
	done := make([]bool, n)

	// Reverse postorder: processing dominators-first means most blocks
	// settle in one or two rounds.
	order := rpo(g)
	inWork := make([]bool, n)
	work := make([]*cfg.Block, 0, n)
	for _, b := range order {
		work = append(work, b)
		inWork[b.Index] = true
	}

	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b.Index] = false

		var in F
		if b == g.Entry {
			in = p.Boundary()
		} else {
			for _, pred := range b.Preds {
				if !done[pred.Index] {
					continue
				}
				in, _ = p.Join(in, facts.Out[pred.Index])
			}
		}
		facts.In[b.Index] = in
		out := p.Transfer(b, in)
		if done[b.Index] && p.Equal(facts.Out[b.Index], out) {
			continue
		}
		facts.Out[b.Index] = out
		done[b.Index] = true
		for _, s := range b.Succs {
			if !inWork[s.Index] {
				work = append(work, s)
				inWork[s.Index] = true
			}
		}
	}
	return facts
}

// rpo returns g's blocks in reverse postorder from Entry. Blocks kept for
// structural reasons but unreachable (a `for {}` body's Exit) are appended
// at the end so every index has a fact slot.
func rpo(g *cfg.Graph) []*cfg.Block {
	seen := make([]bool, len(g.Blocks))
	post := make([]*cfg.Block, 0, len(g.Blocks))
	var dfs func(b *cfg.Block)
	dfs = func(b *cfg.Block) {
		seen[b.Index] = true
		for _, s := range b.Succs {
			if !seen[s.Index] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(g.Entry)
	out := make([]*cfg.Block, 0, len(g.Blocks))
	for i := len(post) - 1; i >= 0; i-- {
		out = append(out, post[i])
	}
	for _, b := range g.Blocks {
		if !seen[b.Index] {
			out = append(out, b)
		}
	}
	return out
}
