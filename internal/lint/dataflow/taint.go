package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"sync"

	"clustersmt/internal/lint"
	"clustersmt/internal/lint/cfg"
)

// Kind is a bitmask of nondeterminism sources tracked by the determinism
// taint analysis (the engine behind detcheck).
type Kind uint8

const (
	// MapOrder marks values that depend on map iteration order.
	MapOrder Kind = 1 << iota
	// ChanOrder marks values that depend on goroutine send ordering (the
	// order in which concurrent senders' values arrive at a receive).
	ChanOrder
	// WallClock marks values derived from time.Now/Since/Until.
	WallClock
	// MathRand marks values from package-level math/rand calls, which are
	// seeded nondeterministically. (Methods on an explicitly constructed
	// *rand.Rand are considered seeded and deterministic.)
	MathRand
)

// OrderKinds are the kinds describing ORDER nondeterminism: re-keying a
// value into a map or slice slot (m[k] = v) launders them — the resulting
// contents are a function of which pairs exist, not of visit order — while
// VALUE kinds (WallClock, MathRand) survive any data movement.
const OrderKinds = MapOrder | ChanOrder

// AllKinds is every tracked kind.
const AllKinds = MapOrder | ChanOrder | WallClock | MathRand

func (k Kind) String() string {
	var parts []string
	for _, e := range [...]struct {
		k Kind
		s string
	}{
		{MapOrder, "map iteration order"},
		{ChanOrder, "goroutine send order"},
		{WallClock, "wall-clock time"},
		{MathRand, "math/rand value"},
	} {
		if k&e.k != 0 {
			parts = append(parts, e.s)
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	s := parts[0]
	for _, p := range parts[1:] {
		s += "+" + p
	}
	return s
}

// Taint is one value's taint: concrete kinds, plus symbolic parameter
// origins (bit i set = tainted iff the enclosing function's parameter i
// is). The parameter bits are how call-graph summaries are computed: a
// sink reached by a Params bit becomes a ParamSink in the function's
// summary rather than a finding.
type Taint struct {
	Kinds  Kind
	Params uint32
}

func (t Taint) union(u Taint) Taint {
	return Taint{Kinds: t.Kinds | u.Kinds, Params: t.Params | u.Params}
}

func (t Taint) zero() bool { return t.Kinds == 0 && t.Params == 0 }

// A ParamSink records that a function forwards parameter Param into a sink
// (directly or through further calls): callers must check their argument.
type ParamSink struct {
	Param int
	Sink  string // sink description, with the via-chain appended
	Mask  Kind   // kinds that matter at the sink
}

// A Summary is one function's interprocedural taint contract.
type Summary struct {
	// Returns holds one Taint per result value, in signature order: Kinds
	// a result may carry from sources inside the function, and Params
	// bits for parameters whose taint may flow to that result. Tracking
	// results individually matters: a validation function whose error
	// MESSAGE embeds map-ordered text must not smear MapOrder onto the
	// values returned beside the error.
	Returns []Taint
	// ParamSinks lists parameters that reach sinks inside the function.
	ParamSinks []ParamSink
}

// ret is the i'th result's taint (zero past the known results).
func (s *Summary) ret(i int) Taint {
	if s != nil && i < len(s.Returns) {
		return s.Returns[i]
	}
	return Taint{}
}

func (s *Summary) equal(o *Summary) bool {
	if o == nil {
		o = &Summary{}
	}
	if len(s.Returns) != len(o.Returns) || len(s.ParamSinks) != len(o.ParamSinks) {
		return false
	}
	for i := range s.Returns {
		if s.Returns[i] != o.Returns[i] {
			return false
		}
	}
	for i := range s.ParamSinks {
		if s.ParamSinks[i] != o.ParamSinks[i] {
			return false
		}
	}
	return true
}

func (s *Summary) addParamSink(p ParamSink) {
	for _, e := range s.ParamSinks {
		if e == p {
			return
		}
	}
	s.ParamSinks = append(s.ParamSinks, p)
}

// A Finding is one nondeterminism flow: a tainted value reaching an
// observable-output sink.
type Finding struct {
	Pos   token.Pos
	Kinds Kind   // kinds that actually hit the sink (already mask-filtered)
	Sink  string // sink description ("metrics.Stats field Cycles", ...)
}

// summariesCache maps *lint.Module to a once-guarded summary table so the
// module-wide fixpoint runs exactly once even under RunConcurrent.
var summariesCache sync.Map

type summariesEntry struct {
	once sync.Once
	sums map[*types.Func]*Summary
}

// ModuleSummaries computes (or returns cached) taint summaries for every
// function in the module, iterating to a fixpoint so taint propagates
// through call chains of any depth. The result is immutable and shared.
func ModuleSummaries(m *lint.Module) map[*types.Func]*Summary {
	v, _ := summariesCache.LoadOrStore(m, &summariesEntry{})
	e := v.(*summariesEntry)
	e.once.Do(func() { e.sums = computeSummaries(m) })
	return e.sums
}

func computeSummaries(m *lint.Module) map[*types.Func]*Summary {
	funcs := ModuleFuncs(m)
	sums := map[*types.Func]*Summary{}
	// Summaries grow monotonically, so iterating in a fixed order until
	// nothing changes converges; the bound only guards pathological
	// recursion.
	for round := 0; round < 20; round++ {
		changed := false
		for _, fn := range funcs.All {
			s := analyzeFunc(fn, funcs, sums, nil)
			if !s.equal(sums[fn.Obj]) {
				sums[fn.Obj] = s
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return sums
}

// DetFindings runs the determinism taint analysis over one package's
// functions (declarations and function literals) and returns the flows
// from nondeterminism sources to observable-output sinks, using the
// module's summaries for cross-function propagation.
func DetFindings(m *lint.Module, pkg *lint.Package) []Finding {
	sums := ModuleSummaries(m)
	funcs := ModuleFuncs(m)
	var out []Finding
	report := func(f Finding) { out = append(out, f) }
	for _, file := range pkg.Files {
		for _, fg := range cfg.BuildAll([]*ast.File{file}) {
			fn := &Fn{Pkg: pkg, G: fg.Graph}
			if fd, ok := fg.Decl.(*ast.FuncDecl); ok {
				fn.Decl = fd
				fn.Obj, _ = pkg.Info.Defs[fd.Name].(*types.Func)
			}
			analyzeFuncGraph(fn, fg.Type, fg.Body, funcs, sums, report)
		}
	}
	return out
}

// analyzeFunc analyzes one declared function and returns its summary;
// report (optional) receives concrete findings.
func analyzeFunc(fn *Fn, funcs *Funcs, sums map[*types.Func]*Summary, report func(Finding)) *Summary {
	return analyzeFuncGraph(fn, fn.Decl.Type, fn.Decl.Body, funcs, sums, report)
}

func analyzeFuncGraph(fn *Fn, ftype *ast.FuncType, body *ast.BlockStmt, funcs *Funcs, sums map[*types.Func]*Summary, report func(Finding)) *Summary {
	sum := &Summary{}
	if body == nil {
		return sum
	}
	w := &walker{
		info:  fn.Pkg.Info,
		funcs: funcs,
		sums:  sums,
	}
	// Boundary: each parameter (receiver first, for methods) carries its
	// symbolic origin bit, so sinks and returns inside the body build the
	// summary. Function literals get no bits — they have no summary — so
	// only concrete kinds report there.
	boundary := state{}
	if fn.Decl != nil {
		i := 0
		addParam := func(names []*ast.Ident) {
			for _, name := range names {
				if obj := fn.Pkg.Info.Defs[name]; obj != nil && name.Name != "_" && i < 32 {
					boundary[obj] = Taint{Params: 1 << i}
				}
				i++
			}
		}
		if fn.Decl.Recv != nil && len(fn.Decl.Recv.List) > 0 {
			addParam(fn.Decl.Recv.List[0].Names)
			if len(fn.Decl.Recv.List[0].Names) == 0 {
				i++ // unnamed receiver still occupies slot 0
			}
		}
		for _, f := range ftype.Params.List {
			if len(f.Names) == 0 {
				i++
				continue
			}
			addParam(f.Names)
		}
	}
	// Named results, for naked returns; result count sizes the summary.
	nresults := 0
	if ftype.Results != nil {
		for _, f := range ftype.Results.List {
			if len(f.Names) == 0 {
				nresults++
				continue
			}
			nresults += len(f.Names)
			for _, name := range f.Names {
				if obj := fn.Pkg.Info.Defs[name]; obj != nil {
					w.resultObjs = append(w.resultObjs, obj)
				}
			}
		}
	}
	sum.Returns = make([]Taint, nresults)

	p := &taintProblem{w: w, boundary: boundary}
	facts := Forward(fn.G, p)

	// Post pass with the solved facts: replay each block's effects with
	// the sink and return hooks attached.
	w.onSink = func(pos token.Pos, t Taint, desc string, mask Kind) {
		if k := t.Kinds & mask; k != 0 && report != nil {
			report(Finding{Pos: pos, Kinds: k, Sink: desc})
		}
		if t.Params != 0 {
			for i := 0; i < 32; i++ {
				if t.Params&(1<<i) != 0 {
					sum.addParamSink(ParamSink{Param: i, Sink: desc, Mask: mask})
				}
			}
		}
	}
	w.onReturn = func(ts []Taint) {
		for i, t := range ts {
			if i < len(sum.Returns) {
				sum.Returns[i] = sum.Returns[i].union(t)
			}
		}
	}
	for _, b := range fn.G.Blocks {
		st := facts.In[b.Index].clone()
		w.block(b, st)
	}
	w.onSink, w.onReturn = nil, nil
	return sum
}

// state maps in-scope objects to their taint. The zero value (nil map) is
// bottom: "no path reaches here yet".
type state map[types.Object]Taint

func (s state) clone() state {
	c := make(state, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func (s state) get(o types.Object) Taint { return s[o] }

func (s state) or(o types.Object, t Taint) {
	if o == nil || t.zero() {
		return
	}
	s[o] = s[o].union(t)
}

func (s state) set(o types.Object, t Taint) {
	if o == nil {
		return
	}
	if t.zero() {
		delete(s, o)
		return
	}
	s[o] = t
}

// taintProblem adapts the walker to the generic forward solver.
type taintProblem struct {
	w        *walker
	boundary state
}

func (p *taintProblem) Boundary() state { return p.boundary.clone() }

func (p *taintProblem) Transfer(b *cfg.Block, in state) state {
	st := in.clone()
	p.w.block(b, st)
	return st
}

func (p *taintProblem) Join(acc, src state) (state, bool) {
	if acc == nil {
		return src.clone(), len(src) > 0
	}
	changed := false
	for o, t := range src {
		if merged := acc[o].union(t); merged != acc[o] {
			acc[o] = merged
			changed = true
		}
	}
	return acc, changed
}

func (p *taintProblem) Equal(a, b state) bool {
	if len(a) != len(b) {
		return false
	}
	for o, t := range a {
		if b[o] != t {
			return false
		}
	}
	return true
}

// walker applies the taint effects of one block's nodes to a state. Hooks
// are nil during the fixpoint (effects only) and set during the post pass.
type walker struct {
	info  *types.Info
	funcs *Funcs
	sums  map[*types.Func]*Summary

	resultObjs []types.Object // named results, for naked returns

	onSink   func(pos token.Pos, t Taint, desc string, mask Kind)
	onReturn func(ts []Taint)
}

func (w *walker) block(b *cfg.Block, st state) {
	for _, n := range b.Nodes {
		w.node(n, st)
	}
}

func (w *walker) node(n ast.Node, st state) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		w.assign(n, st)
	case *ast.IncDecStmt:
		// x++ keeps x's taint; m[k]++ is a read-modify-write keyed by k.
		// Integer elements launder ORDER taint — a complete iteration's
		// final counts are the same whatever order the slots were bumped
		// in (histogramming a map range is deterministic) — while value
		// kinds on the key (a wall-clock-derived key names the slot) stay.
		if ix, ok := ast.Unparen(n.X).(*ast.IndexExpr); ok {
			t := w.eval(ix.Index, st)
			if tv, ok := w.info.Types[ix]; ok && isIntegerScalar(tv.Type) {
				t.Kinds &^= OrderKinds
			}
			st.or(rootObj(w.info, ix.X), t)
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				var ts []Taint
				if len(vs.Values) == 1 && len(vs.Names) > 1 {
					ts = w.spread(w.resultsOf(vs.Values[0], st), len(vs.Names))
				}
				for i, name := range vs.Names {
					var t Taint
					if ts != nil {
						t = ts[i]
					} else if i < len(vs.Values) {
						t = w.eval(vs.Values[i], st)
					}
					if obj := w.info.Defs[name]; obj != nil {
						st.set(obj, t)
					}
				}
			}
		}
	case *ast.ExprStmt:
		w.eval(n.X, st)
	case *ast.GoStmt:
		w.eval(n.Call, st)
	case *ast.SendStmt:
		// The channel's contents inherit the sent value's taint; receives
		// read it back (plus ChanOrder). Sends from function literals are
		// not linked to the enclosing scope's channel object — a known
		// intraprocedural limit, covered by the receive-side ChanOrder.
		st.or(rootObj(w.info, n.Chan), w.eval(n.Value, st))
	case *ast.ReturnStmt:
		var ts []Taint
		switch {
		case len(n.Results) == 0: // naked return: named results carry
			for _, o := range w.resultObjs {
				ts = append(ts, st.get(o))
			}
		case len(n.Results) == 1: // may be a tuple passthrough: return f()
			ts = w.resultsOf(n.Results[0], st)
		default:
			for _, r := range n.Results {
				ts = append(ts, w.eval(r, st))
			}
		}
		if w.onReturn != nil {
			w.onReturn(ts)
		}
	case *ast.RangeStmt:
		w.rangeStmt(n, st)
	case *ast.CallExpr: // a defer block's deferred call
		w.eval(n, st)
	case *ast.CaseClause:
		for _, e := range n.List {
			w.eval(e, st)
		}
	case *ast.CommClause:
		if n.Comm != nil {
			w.node(n.Comm, st)
		}
	case *ast.DeferStmt:
		// The call's effects run in its KindDefer block on the exit path;
		// the registration point contributes nothing.
	case ast.Expr: // cond-block scrutinees: if/for conditions, switch tags
		w.eval(n, st)
	}
}

func (w *walker) assign(as *ast.AssignStmt, st state) {
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		ts := w.spread(w.resultsOf(as.Rhs[0], st), len(as.Lhs))
		for i, l := range as.Lhs {
			w.assignOne(l, ts[i], as.Tok, st)
		}
		return
	}
	for i, l := range as.Lhs {
		if i < len(as.Rhs) {
			w.assignOne(l, w.eval(as.Rhs[i], st), as.Tok, st)
		}
	}
}

// spread adapts a per-result taint slice to n targets: an exact match maps
// result i to target i; anything else (comma-ok forms, unknown tuple
// widths) smears the union over every target.
func (w *walker) spread(ts []Taint, n int) []Taint {
	if len(ts) == n {
		return ts
	}
	var u Taint
	for _, t := range ts {
		u = u.union(t)
	}
	out := make([]Taint, n)
	for i := range out {
		out[i] = u
	}
	return out
}

// resultsOf is eval generalized to multi-value expressions: a call with a
// tuple type yields one taint per result, anything else a single taint.
func (w *walker) resultsOf(e ast.Expr, st state) []Taint {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		if tv, ok := w.info.Types[call]; ok {
			if tup, ok := tv.Type.(*types.Tuple); ok && tup.Len() > 1 {
				return w.callResults(call, tup.Len(), st)
			}
		}
	}
	return []Taint{w.eval(e, st)}
}

func (w *walker) assignOne(lhs ast.Expr, t Taint, tok token.Token, st state) {
	opAssign := tok != token.ASSIGN && tok != token.DEFINE
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		obj := w.info.Defs[l]
		if obj == nil {
			obj = w.info.Uses[l]
		}
		if obj == nil {
			return
		}
		if opAssign {
			// x op= v folds v into x. For integer scalars the fold is
			// order-independent (commutative ring ops over a full
			// iteration yield the same total), so order taint is dropped;
			// floats keep it — FP addition is not associative, so a
			// map-ordered float sum is genuinely nondeterministic.
			if isIntegerScalar(obj.Type()) {
				t.Kinds &^= OrderKinds
			}
			st.or(obj, t)
			return
		}
		st.set(obj, t)
	case *ast.IndexExpr:
		root := rootObj(w.info, l.X)
		kt := w.eval(l.Index, st)
		add := t.union(kt)
		if !opAssign {
			// Plain keyed write m[k] = v: the final contents map keys to
			// values regardless of the order writes happened in, so ORDER
			// taint is laundered; value kinds (wall clock, rand) survive.
			add.Kinds &^= OrderKinds
		} else if tv, ok := w.info.Types[l]; ok && isIntegerScalar(tv.Type) {
			// m[k] op= v over integers is a commutative per-slot fold: the
			// final contents are visit-order independent. Float folds keep
			// order taint — FP addition is not associative.
			add.Kinds &^= OrderKinds
		}
		st.or(root, add)
	case *ast.SelectorExpr:
		w.fieldWriteSink(l, t, st)
		st.or(rootObj(w.info, l), t)
	case *ast.StarExpr:
		st.or(rootObj(w.info, l.X), t)
	}
}

func (w *walker) rangeStmt(rs *ast.RangeStmt, st state) {
	t := w.eval(rs.X, st)
	keyT := Taint{}
	valT := t
	if tv, ok := w.info.Types[rs.X]; ok {
		switch types.Unalias(tv.Type).Underlying().(type) {
		case *types.Map:
			t.Kinds |= MapOrder
			keyT, valT = t, t
		case *types.Chan:
			t.Kinds |= ChanOrder
			keyT = t // `for v := range ch`: the element binds to Key
		case *types.Signature:
			// range-over-func: iteration order is the iterator's (a
			// maps.Keys source already carries MapOrder in t).
			keyT, valT = t, t
		default:
			// Slices/arrays/strings/ints: positions are deterministic, so
			// the index stays clean; elements inherit the container.
			keyT = Taint{}
		}
	}
	if rs.Key != nil {
		w.assignOne(rs.Key, keyT, token.DEFINE, st)
	}
	if rs.Value != nil {
		w.assignOne(rs.Value, valT, token.DEFINE, st)
	}
}

// eval computes an expression's taint, applying call effects (sources,
// sanitizers, summaries) and sink checks along the way.
func (w *walker) eval(e ast.Expr, st state) Taint {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := w.info.Uses[e]; obj != nil {
			return st.get(obj)
		}
		if obj := w.info.Defs[e]; obj != nil {
			return st.get(obj)
		}
		return Taint{}
	case *ast.ParenExpr:
		return w.eval(e.X, st)
	case *ast.SelectorExpr:
		if _, ok := w.info.Selections[e]; ok {
			return w.eval(e.X, st) // field/method of X: inherits X's taint
		}
		// Qualified identifier (pkg.Name).
		if obj := w.info.Uses[e.Sel]; obj != nil {
			return st.get(obj)
		}
		return Taint{}
	case *ast.IndexExpr:
		if _, ok := w.info.Instances[identOf(e.X)]; ok {
			return Taint{} // generic instantiation, not an index
		}
		return w.eval(e.X, st).union(w.eval(e.Index, st))
	case *ast.IndexListExpr:
		return Taint{}
	case *ast.SliceExpr:
		return w.eval(e.X, st)
	case *ast.StarExpr:
		return w.eval(e.X, st)
	case *ast.UnaryExpr:
		t := w.eval(e.X, st)
		if e.Op == token.ARROW {
			// Receiving from a channel: arrival order across concurrent
			// senders is scheduler-dependent.
			t.Kinds |= ChanOrder
		}
		return t
	case *ast.BinaryExpr:
		return w.eval(e.X, st).union(w.eval(e.Y, st))
	case *ast.CallExpr:
		return w.call(e, st)
	case *ast.TypeAssertExpr:
		return w.eval(e.X, st)
	case *ast.CompositeLit:
		return w.composite(e, st)
	case *ast.KeyValueExpr:
		return w.eval(e.Value, st)
	case *ast.FuncLit:
		return Taint{} // analyzed as its own graph
	default:
		return Taint{}
	}
}

func (w *walker) composite(cl *ast.CompositeLit, st state) Taint {
	var all Taint
	sink, mask := fieldSinkFor(w.info.Types[cl].Type)
	for _, elt := range cl.Elts {
		field := ""
		val := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			val = kv.Value
			if id, ok := kv.Key.(*ast.Ident); ok {
				field = id.Name
			}
		}
		t := w.eval(val, st)
		all = all.union(t)
		if sink != "" && w.onSink != nil {
			m := mask
			if tv, ok := w.info.Types[val]; ok {
				m = adjustForTimeTyped(m, tv.Type)
			}
			w.onSink(val.Pos(), t, sink+" field "+field, m)
		}
	}
	return all
}

// call evaluates a call expression in single-value context.
func (w *walker) call(call *ast.CallExpr, st state) Taint {
	var u Taint
	for _, t := range w.callResults(call, 1, st) {
		u = u.union(t)
	}
	return u
}

// callResults evaluates a call expression — conversions, builtins, taint
// sources, sanitizers, sink functions, and module-local summaries — and
// returns the taint of each of its n results. Module-local callees get
// per-result precision from their summary; everything else is uniform.
func (w *walker) callResults(call *ast.CallExpr, n int, st state) []Taint {
	uniform := func(t Taint) []Taint {
		ts := make([]Taint, n)
		for i := range ts {
			ts[i] = t
		}
		return ts
	}

	// Conversion T(x): the value's taint passes through.
	if tv, ok := w.info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return uniform(w.eval(call.Args[0], st))
		}
		return uniform(Taint{})
	}

	fn := StaticCallee(w.info, call)

	// Argument taints, receiver first for method calls. A method
	// EXPRESSION T.M(recv, ...) passes the receiver as Args[0], which the
	// plain loop already aligns; only a bound call x.M(...) contributes
	// x separately here.
	var argTaints []Taint
	if fn != nil && fn.Signature().Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if tv, ok := w.info.Types[sel.X]; !ok || !tv.IsType() {
				argTaints = append(argTaints, w.eval(sel.X, st))
			}
		}
	}
	for _, a := range call.Args {
		argTaints = append(argTaints, w.eval(a, st))
	}
	var union Taint
	for _, t := range argTaints {
		union = union.union(t)
	}

	// Builtins.
	if id := identOf(call.Fun); id != nil {
		if _, ok := w.info.Uses[id].(*types.Builtin); ok {
			switch id.Name {
			case "append", "min", "max", "copy":
				return uniform(union)
			case "len", "cap":
				// Counts are order-independent; wall/rand-derived sizes
				// would be odd enough that dropping them is acceptable.
				return uniform(Taint{})
			default:
				return uniform(Taint{})
			}
		}
	}

	if fn != nil {
		if k := sourceKind(fn); k != 0 {
			u := union
			u.Kinds |= k
			return uniform(u)
		}
		if sanitizesFirstArg(fn) {
			// sort.X(s) orders s in place: order taint on s dies here.
			if len(call.Args) > 0 {
				root := rootObj(w.info, call.Args[0])
				if t, ok := st[root]; ok {
					t.Kinds &^= OrderKinds
					st.set(root, t)
				}
			}
			return uniform(Taint{})
		}
		if sortedReturn(fn) {
			u := union
			u.Kinds &^= OrderKinds
			return uniform(u)
		}

		w.callSinks(fn, call, argTaints, st)

		if local := w.funcs.ByObj[fn]; local != nil {
			// Module-local callee: apply its summary per result, so a
			// tainted error message does not contaminate co-returned values.
			s := w.sums[fn]
			ts := make([]Taint, n)
			for ri := range ts {
				rt := s.ret(ri)
				res := Taint{Kinds: rt.Kinds}
				for pi, at := range argTaints {
					if pi < 32 && rt.Params&(1<<pi) != 0 {
						res = res.union(at)
					}
				}
				ts[ri] = res
			}
			if s != nil {
				for _, ps := range s.ParamSinks {
					if ps.Param >= len(argTaints) {
						continue
					}
					at := argTaints[ps.Param]
					if w.onSink != nil {
						w.onSink(call.Pos(), at, ps.Sink+" via call to "+fn.Name(), ps.Mask)
					}
				}
			}
			return ts
		}
		// Unknown (stdlib) callee: taint flows through (fmt.Sprintf of a
		// tainted value is tainted).
		return uniform(union)
	}
	// Dynamic call through a function value.
	return uniform(union)
}

// callSinks checks sink positions at a call site: HTTP response writes,
// report emitters, and store cache keys.
func (w *walker) callSinks(fn *types.Func, call *ast.CallExpr, argTaints []Taint, st state) {
	if w.onSink == nil {
		return
	}
	local := w.funcs.ByObj[fn] != nil

	// 1. A call with an http.ResponseWriter argument or receiver is a
	// response write: order-dependent bytes reach the client (Prometheus
	// scrape bodies, SSE frames). Wall-clock values are legitimate in
	// responses (timestamps, rate gauges), so only order kinds gate.
	// Module-local callees are skipped — their summaries model the flow
	// precisely (and fleetJSON(w, code, v) should blame report.WriteJSON's
	// v, not every argument next to a writer).
	if !local && (receiverIsResponseWriter(w.info, call) || callHasResponseWriterArg(w.info, call)) {
		off := argOffset(call, argTaints)
		for i, a := range call.Args {
			if isResponseWriter(w.info.Types[a].Type) {
				continue
			}
			w.onSink(a.Pos(), argTaints[i+off], "HTTP response write ("+fn.Name()+")", OrderKinds)
		}
	}

	// 2. Report emitters: everything the report package renders lands in
	// golden-compared artifacts, so argument ORDER nondeterminism is a
	// bug. (Wall-clock values — submission timestamps in status JSON —
	// are legitimate report payload.)
	if fn.Pkg() != nil && fn.Pkg().Name() == "report" && !isStd(fn.Pkg().Path()) {
		off := argOffset(call, argTaints)
		for i := range call.Args {
			if i+off < len(argTaints) {
				w.onSink(call.Args[i].Pos(), argTaints[i+off], "report emitter "+fn.Name(), OrderKinds)
			}
		}
	}

	// 3. Store cache keys: a nondeterministic key silently forks the
	// content-addressed result cache, so EVERY kind gates.
	if fn.Pkg() != nil && (fn.Pkg().Name() == "store" || fn.Pkg().Name() == "experiments") && !isStd(fn.Pkg().Path()) {
		sig := fn.Signature()
		off := argOffset(call, argTaints)
		for pi := 0; pi < sig.Params().Len(); pi++ {
			if sig.Params().At(pi).Name() != "key" {
				continue
			}
			if pi < len(call.Args) && pi+off < len(argTaints) {
				w.onSink(call.Args[pi].Pos(), argTaints[pi+off], "store key argument of "+fn.Name(), AllKinds)
			}
		}
	}
}

// argOffset is how many leading entries of argTaints belong to the
// receiver rather than call.Args.
func argOffset(call *ast.CallExpr, argTaints []Taint) int {
	return len(argTaints) - len(call.Args)
}

// fieldWriteSink flags writes into metrics.Stats / campaign Result fields.
func (w *walker) fieldWriteSink(sel *ast.SelectorExpr, t Taint, st state) {
	if w.onSink == nil {
		return
	}
	tv, ok := w.info.Types[sel.X]
	if !ok {
		return
	}
	sink, mask := fieldSinkFor(tv.Type)
	if sink == "" {
		return
	}
	if ft, ok := w.info.Types[sel]; ok {
		mask = adjustForTimeTyped(mask, ft.Type)
	}
	w.onSink(sel.Pos(), t, sink+" field "+sel.Sel.Name, mask)
}

// fieldSinkFor classifies t as a simulation-result type whose fields are
// observable output: metrics.Stats (every simulated statistic the golden
// fingerprints pin) and the campaign Result row.
func fieldSinkFor(t types.Type) (string, Kind) {
	if namedIs(t, "metrics", "Stats") {
		return "metrics.Stats", AllKinds
	}
	if namedIs(t, "campaign", "Result") {
		return "campaign.Result", AllKinds
	}
	return "", 0
}

// adjustForTimeTyped drops WallClock for time.Time / time.Duration typed
// slots: a field DECLARED to hold wall time is wall time by design.
func adjustForTimeTyped(mask Kind, t types.Type) Kind {
	t = types.Unalias(t)
	if n, ok := t.(*types.Named); ok {
		o := n.Obj()
		if o.Pkg() != nil && o.Pkg().Path() == "time" && (o.Name() == "Time" || o.Name() == "Duration") {
			return mask &^ WallClock
		}
	}
	return mask
}

func sourceKind(fn *types.Func) Kind {
	pkg := fn.Pkg()
	if pkg == nil {
		return 0
	}
	switch pkg.Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return WallClock
		}
	case "math/rand", "math/rand/v2":
		// Package-level draws use the runtime-seeded global source.
		// Constructors (New, NewSource, NewPCG, ...) and methods on an
		// explicitly constructed generator are assumed deterministically
		// seeded and stay clean.
		if fn.Signature().Recv() == nil && !strings.HasPrefix(fn.Name(), "New") && fn.Name() != "Seed" {
			return MathRand
		}
	case "maps":
		switch fn.Name() {
		case "Keys", "Values":
			return MapOrder
		}
	}
	return 0
}

func sanitizesFirstArg(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "sort":
		switch fn.Name() {
		case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Stable", "Sort":
			return true
		}
	case "slices":
		switch fn.Name() {
		case "Sort", "SortFunc", "SortStableFunc":
			return true
		}
	}
	return false
}

func sortedReturn(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	if pkg.Path() != "slices" {
		return false
	}
	switch fn.Name() {
	case "Sorted", "SortedFunc", "SortedStableFunc":
		return true
	}
	return false
}

func receiverIsResponseWriter(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if tv, ok := info.Types[sel.X]; ok {
		return isResponseWriter(tv.Type)
	}
	return false
}

func callHasResponseWriterArg(info *types.Info, call *ast.CallExpr) bool {
	for _, a := range call.Args {
		if tv, ok := info.Types[a]; ok && isResponseWriter(tv.Type) {
			return true
		}
	}
	return false
}

func isResponseWriter(t types.Type) bool {
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	o := n.Obj()
	return o.Name() == "ResponseWriter" && o.Pkg() != nil && o.Pkg().Path() == "net/http"
}

func namedIs(t types.Type, pkgName, typeName string) bool {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	o := n.Obj()
	return o.Name() == typeName && o.Pkg() != nil && o.Pkg().Name() == pkgName
}

// isStd reports whether an import path is standard library (no dot in the
// first segment and not this module's fixture-sibling bare name — stdlib
// "report"/"store" packages do not exist, so matching by name is safe, but
// guard anyway against future collisions like net/http/httputil).
func isStd(path string) bool {
	switch path {
	case "report", "store", "experiments":
		return false // fixture-mode sibling packages keep their bare name
	}
	for i := 0; i < len(path); i++ {
		if path[i] == '/' {
			return pathSegHasDot(path[:i])
		}
		if path[i] == '.' {
			return false
		}
	}
	return true
}

func pathSegHasDot(seg string) bool {
	for i := 0; i < len(seg); i++ {
		if seg[i] == '.' {
			return false
		}
	}
	return true
}

func isIntegerScalar(t types.Type) bool {
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func identOf(e ast.Expr) *ast.Ident {
	id, _ := ast.Unparen(e).(*ast.Ident)
	return id
}

// rootObj unwraps an lvalue-ish expression to its base identifier's
// object: s.jobs[id].state -> s. Returns nil when the base is not a plain
// identifier (a call result, say).
func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if o := info.Uses[x]; o != nil {
				return o
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			if _, ok := info.Selections[x]; !ok {
				// Qualified identifier: pkg.Var is its own root.
				return info.Uses[x.Sel]
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return nil
		}
	}
}
