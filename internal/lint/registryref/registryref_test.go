package registryref_test

import (
	"testing"

	"clustersmt/internal/lint/linttest"
	"clustersmt/internal/lint/registryref"
)

func TestRegistryref(t *testing.T) {
	linttest.Run(t, registryref.Analyzer, "testdata/src/policy")
}
