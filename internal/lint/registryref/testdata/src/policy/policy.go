// Fixture for the registryref analyzer. The package is named policy because
// the registration contract is scoped to the policy package.
package policy

type Param struct {
	Name, Desc        string
	Default, Min, Max float64
	Integer           bool
}

type Component struct {
	Name, Ref, Desc string
	Params          []Param
}

type SchemeSpec struct{ Selector string }

type Scheme struct {
	Name, Ref, Desc string
	Spec            SchemeSpec
}

var components = []Component{
	{
		Name: "good",
		Ref:  "ref [1]",
		Desc: "a fully documented component",
		Params: []Param{
			{Name: "alpha", Desc: "smoothing factor", Default: 0.5, Min: 0, Max: 1},
		},
	},
	{ // want `Component registration has empty Ref`
		Name: "noref",
		Desc: "missing its paper citation",
	},
	{ // want `Component registration has empty Desc`
		Name: "nodesc",
		Ref:  "ref [2]",
	},
	{
		Name: "badparams",
		Ref:  "ref [3]",
		Desc: "parameter problems below",
		Params: []Param{
			{Name: "beta", Desc: "out of bounds", Default: 5, Min: 0, Max: 2}, // want `parameter bounds violate Min <= Default <= Max \(min=0 default=5 max=2\)`
			{Name: "", Desc: "anonymous"},                                     // want `parameter declaration has empty Name`
			{Name: "nodesc", Default: 1, Min: 0, Max: 2},                      // want `parameter declaration has empty Desc`
		},
	},
}

var schemes = map[string]Scheme{
	"ok": {Name: "ok", Ref: "ref [4]", Desc: "fine", Spec: SchemeSpec{Selector: "icount"}},
	"anon": { // want `Scheme registration has empty Ref` `Scheme registration has empty Desc`
		Name: "anon",
	},
}

// Lookup-style zero values are not registrations and stay silent.
func lookup(name string) (Scheme, bool) {
	s, ok := schemes[name]
	if !ok {
		return Scheme{}, false
	}
	return s, ok
}
