// Package registryref enforces the registration hygiene of the policy
// component and scheme registries at the AST level: every registered
// Component or Scheme literal must carry a non-empty Name, Ref (paper
// citation), and Desc, and every declared Param must have a non-empty
// Name and Desc with bounds satisfying Min ≤ Default ≤ Max. The schemekey
// and registry tests check some of this at runtime; this analyzer moves the
// contract to compile time so an undocumented or mis-bounded registration
// never reaches a test run.
package registryref

import (
	"go/ast"
	"go/constant"
	"go/types"

	"clustersmt/internal/lint"
)

// Analyzer is the registryref check.
var Analyzer = &lint.Analyzer{
	Name: "registryref",
	Doc: "check that policy registry literals carry Name/Ref/Desc and " +
		"parameter bounds with Min <= Default <= Max",
	Run: run,
}

func run(pass *lint.Pass) error {
	// The contract applies to the policy package (and fixtures that mimic
	// it); other packages construct these structs transiently (JSON
	// listings, test expectations) where the invariants do not apply.
	if pass.Pkg.Types.Name() != "policy" {
		return nil
	}
	// nested marks literals that are elements of an enclosing composite
	// literal — the registry containers. A bare `Scheme{}` elsewhere is a
	// zero value (error-path return, test scratch), not a registration.
	nested := map[*ast.CompositeLit]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			for _, elt := range lit.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				if inner, ok := elt.(*ast.CompositeLit); ok {
					nested[inner] = true
				}
			}
			if len(lit.Elts) == 0 && !nested[lit] {
				return true
			}
			tv, ok := pass.TypesInfo.Types[lit]
			if !ok {
				return true
			}
			st, ok := tv.Type.Underlying().(*types.Struct)
			if !ok {
				return true
			}
			fields := literalFields(lit, st)
			switch {
			case hasStringFields(st, "Name", "Ref", "Desc"):
				name := typeName(tv.Type)
				for _, key := range []string{"Name", "Ref", "Desc"} {
					if s, known := constString(pass, fields[key]); known && s == "" {
						pass.Reportf(lit.Pos(), "%s registration has empty %s", name, key)
					}
				}
			case hasStringFields(st, "Name", "Desc") && hasFloatFields(st, "Default", "Min", "Max"):
				for _, key := range []string{"Name", "Desc"} {
					if s, known := constString(pass, fields[key]); known && s == "" {
						pass.Reportf(lit.Pos(), "parameter declaration has empty %s", key)
					}
				}
				minV, okMin := constFloat(pass, fields["Min"])
				defV, okDef := constFloat(pass, fields["Default"])
				maxV, okMax := constFloat(pass, fields["Max"])
				if okMin && okDef && okMax && !(minV <= defV && defV <= maxV) {
					pass.Reportf(lit.Pos(),
						"parameter bounds violate Min <= Default <= Max (min=%v default=%v max=%v)",
						minV, defV, maxV)
				}
			}
			return true
		})
	}
	return nil
}

// literalFields maps struct field names to the expressions the literal
// assigns them, handling both keyed and positional forms. Absent fields are
// left out: their zero value is modeled by the const* helpers.
func literalFields(lit *ast.CompositeLit, st *types.Struct) map[string]ast.Expr {
	out := make(map[string]ast.Expr, len(lit.Elts))
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok {
				out[id.Name] = kv.Value
			}
			continue
		}
		if i < st.NumFields() {
			out[st.Field(i).Name()] = elt
		}
	}
	return out
}

func hasStringFields(st *types.Struct, names ...string) bool {
	return hasBasicFields(st, types.IsString, names)
}

func hasFloatFields(st *types.Struct, names ...string) bool {
	return hasBasicFields(st, types.IsFloat, names)
}

func hasBasicFields(st *types.Struct, info types.BasicInfo, names []string) bool {
	for _, want := range names {
		found := false
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if f.Name() != want {
				continue
			}
			if b, ok := f.Type().Underlying().(*types.Basic); ok && b.Info()&info != 0 {
				found = true
			}
			break
		}
		if !found {
			return false
		}
	}
	return true
}

// constString evaluates expr as a constant string. A nil expr (field absent
// from the literal) is the zero string. known is false when the value
// cannot be determined statically.
func constString(pass *lint.Pass, expr ast.Expr) (val string, known bool) {
	if expr == nil {
		return "", true
	}
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

func constFloat(pass *lint.Pass, expr ast.Expr) (val float64, known bool) {
	if expr == nil {
		return 0, true
	}
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Value == nil {
		return 0, false
	}
	f, ok := constant.Float64Val(constant.ToFloat(tv.Value))
	_ = ok // representable-with-rounding is fine for a bounds check
	return f, true
}

func typeName(t types.Type) string {
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}
