package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clustersmt/internal/lint"
)

// These tests demonstrate that the analyzers guard the invariants they were
// built for: a copy of the module source receives a realistic regression —
// a config field dropped from the store key, an allocation introduced into
// the simulated cycle's call graph — and the corresponding analyzer must
// catch it.

// copyModule copies the module's go.mod and non-test Go sources into a
// temporary directory, preserving layout, and returns the new root.
func copyModule(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	dst := t.TempDir()
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "testdata":
				return filepath.SkipDir
			}
			return nil
		}
		if rel != "go.mod" && (!strings.HasSuffix(rel, ".go") || strings.HasSuffix(rel, "_test.go")) {
			return nil
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		out := filepath.Join(dst, rel)
		if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
			return err
		}
		return os.WriteFile(out, b, 0o644)
	})
	if err != nil {
		t.Fatalf("copying module: %v", err)
	}
	return dst
}

// mutate rewrites one file under root, replacing old with new exactly once.
func mutate(t *testing.T, root, rel, old, new string) {
	t.Helper()
	path := filepath.Join(root, rel)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(b), old); n != 1 {
		t.Fatalf("mutation anchor %q occurs %d times in %s, want 1", old, n, rel)
	}
	if err := os.WriteFile(path, []byte(strings.Replace(string(b), old, new, 1)), 0o644); err != nil {
		t.Fatal(err)
	}
}

// findings runs the full analyzer suite over the mutated module and returns
// the diagnostics as strings.
func findings(t *testing.T, root string) []string {
	t.Helper()
	m, err := lint.Load(root, []string{"./..."})
	if err != nil {
		t.Fatalf("loading mutated module: %v", err)
	}
	var out []string
	for _, d := range lint.Run(m, all) {
		out = append(out, d.String())
	}
	return out
}

func requireFinding(t *testing.T, got []string, wantSub string) {
	t.Helper()
	for _, g := range got {
		if strings.Contains(g, wantSub) {
			return
		}
	}
	t.Errorf("no finding contains %q; got %d findings:\n%s",
		wantSub, len(got), strings.Join(got, "\n"))
}

// TestMutationConfigFieldOmitted drops an exported core.Config field from
// Canonical() serialization via a json:"-" tag; confighash must flag it,
// because two configs differing only in that field would share a store key.
func TestMutationConfigFieldOmitted(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks a module copy; skipped in -short")
	}
	root := copyModule(t)
	mutate(t, root, filepath.Join("internal", "core", "config.go"),
		"type Config struct {",
		"type Config struct {\n\tSecretKnob int `json:\"-\"`")
	requireFinding(t, findings(t, root),
		`field Config.SecretKnob is tagged json:"-"`)
}

// TestMutationStepAllocates introduces a heap allocation into
// Processor.Step's call graph; noalloc must flag it, because the
// steady-state cycle loop is required to be allocation-free.
func TestMutationStepAllocates(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks a module copy; skipped in -short")
	}
	root := copyModule(t)
	mutate(t, root, filepath.Join("internal", "core", "run.go"),
		"func (p *Processor) Step() {",
		"func (p *Processor) Step() {\n\tscratch := make([]int, 1)\n\t_ = scratch")
	requireFinding(t, findings(t, root), "make allocates")
}

// TestMutationStepWallClock injects a wall-clock-derived value into a
// Processor.Step statistics write; detcheck must flag it, because golden
// fingerprints pin every simulated statistic and a time.Now()-derived
// stat would differ on every run.
func TestMutationStepWallClock(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks a module copy; skipped in -short")
	}
	root := copyModule(t)
	mutate(t, root, filepath.Join("internal", "core", "run.go"),
		"\"context\"\n",
		"\"context\"\n\t\"time\"\n")
	mutate(t, root, filepath.Join("internal", "core", "run.go"),
		"func (p *Processor) Step() {",
		"func (p *Processor) Step() {\n\tp.stats.Cycles += int64(time.Now().Nanosecond())")
	requireFinding(t, findings(t, root),
		"wall-clock time) reaches metrics.Stats field Cycles")
}

// TestMutationCodecDropsError deletes the store codec's Unmarshal error
// check; errflow must flag the dropped error, because a silently corrupt
// entry would decode as zero stats instead of a cache miss.
func TestMutationCodecDropsError(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks a module copy; skipped in -short")
	}
	root := copyModule(t)
	mutate(t, root, filepath.Join("internal", "campaign", "store", "codec.go"),
		"if err := json.Unmarshal(b, &e); err != nil {\n\t\treturn nil, fmt.Errorf(\"store: corrupt entry %s: %w\", key, err)\n\t}",
		"json.Unmarshal(b, &e)")
	requireFinding(t, findings(t, root),
		"error result of json.Unmarshal is dropped")
}
