package lockcheck_test

import (
	"testing"

	"clustersmt/internal/lint/linttest"
	"clustersmt/internal/lint/lockcheck"
)

func TestLockcheck(t *testing.T) {
	linttest.Run(t, lockcheck.Analyzer, "testdata/src/service")
}

func TestLockcheckFleet(t *testing.T) {
	linttest.Run(t, lockcheck.Analyzer, "testdata/src/fleet")
}
