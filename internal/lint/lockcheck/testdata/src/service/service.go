// Fixture for the lockcheck analyzer. The package is named service because
// the analyzer's locking discipline is scoped to the campaign service.
package service

import (
	"net/http"
	"sync"
	"time"
)

type srv struct {
	mu     sync.Mutex
	rw     sync.RWMutex
	queue  chan int
	events chan string
}

type engine struct{}

func (engine) RunCtx() {}
func (engine) Wait()   {}

// --- violations ---

func (s *srv) sleepUnderLock() {
	s.mu.Lock()
	time.Sleep(time.Second) // want `time\.Sleep while holding s\.mu`
	s.mu.Unlock()
}

func (s *srv) sendUnderLock(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queue <- v // want `channel send while holding s\.mu`
}

func (s *srv) recvUnderRLock() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return <-s.queue // want `channel receive while holding s\.rw`
}

func (s *srv) writeUnderLock(w http.ResponseWriter) {
	s.mu.Lock()
	w.Write(nil) // want `http\.ResponseWriter method call \(a slow client blocks the write\) while holding s\.mu`
	s.mu.Unlock()
}

func (s *srv) fprintUnderLock(w http.ResponseWriter) {
	s.mu.Lock()
	writeJSON(w, 1) // want `call passing an http\.ResponseWriter \(a slow client blocks the write\) while holding s\.mu`
	s.mu.Unlock()
}

func writeJSON(w http.ResponseWriter, v any) {}

func (s *srv) runUnderLock(e engine) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e.RunCtx() // want `call to RunCtx \(runs or waits for work of unbounded duration\) while holding s\.mu`
}

func (s *srv) selectNoDefault() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `select with no default clause while holding s\.mu`
	case v := <-s.queue:
		_ = v
	case s.events <- "x":
	}
}

func (s *srv) rangeOverChan() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for v := range s.queue { // want `range over channel while holding s\.mu`
		_ = v
	}
}

func (s *srv) bothHeld() {
	s.mu.Lock()
	s.rw.Lock()
	time.Sleep(1) // want `time\.Sleep while holding s\.mu, s\.rw`
	s.rw.Unlock()
	s.mu.Unlock()
}

// --- legal shapes ---

// Submit-style queue admission: select with a default never blocks.
func (s *srv) submit(v int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.queue <- v:
		return true
	default:
		return false
	}
}

// Blocking after the unlock is fine.
func (s *srv) unlockThenBlock() {
	s.mu.Lock()
	v := len(s.events)
	s.mu.Unlock()
	time.Sleep(time.Duration(v))
	s.queue <- v
}

// An early conditional unlock+return does not leak the lock past the if.
func (s *srv) earlyReturn(ok bool) {
	s.mu.Lock()
	if ok {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	time.Sleep(1)
}

// A goroutine spawned under the lock runs on its own stack; its blocking
// operations are not under the caller's critical section.
func (s *srv) spawn() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.queue <- 1
	}()
}
