// Fixture for the lockcheck analyzer's fleet scope: the coordinator's
// dispatch queue and registry follow the same no-blocking-under-lock rule
// as the service, with one idiom worth pinning — OnLease/OnDone callbacks
// are collected under the lock and fired after it is released.
package fleet

import (
	"sync"
	"time"
)

type queue struct {
	mu    sync.Mutex
	tasks map[string]func(int)
	wake  chan struct{}
}

type worker struct{}

func (worker) Run() {}

// --- violations ---

func (q *queue) wakeUnderLock() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.wake <- struct{}{} // want `channel send while holding q\.mu`
}

func (q *queue) sleepUnderLock() {
	q.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while holding q\.mu`
	q.mu.Unlock()
}

func (q *queue) runWorkerUnderLock(w worker) {
	q.mu.Lock()
	defer q.mu.Unlock()
	w.Run() // want `call to Run \(runs or waits for work of unbounded duration\) while holding q\.mu`
}

func (q *queue) waitForWakeUnderLock() {
	q.mu.Lock()
	defer q.mu.Unlock()
	select { // want `select with no default clause while holding q\.mu`
	case <-q.wake:
	}
}

// --- legal shapes ---

// The fleet's callback discipline: collect under the lock, fire after
// unlock. Invoking a plain func value is not a blocking operation the
// analyzer models — what it enforces is that sends, sleeps and Run/Wait
// calls stay out of the critical section, which this shape guarantees for
// arbitrary callback bodies.
func (q *queue) completeThenNotify(id string) {
	q.mu.Lock()
	cb := q.tasks[id]
	delete(q.tasks, id)
	q.mu.Unlock()
	if cb != nil {
		cb(1)
	}
}

// Non-blocking wake with a default clause is the queue's legal notify.
func (q *queue) tryWake() {
	q.mu.Lock()
	defer q.mu.Unlock()
	select {
	case q.wake <- struct{}{}:
	default:
	}
}
