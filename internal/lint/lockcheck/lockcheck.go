// Package lockcheck enforces the campaign service's and fleet's locking
// discipline: no blocking operation while holding one of their mutexes.
// The daemon's liveness argument (a slow SSE reader, a full queue, or a
// stuck simulation can never wedge the API) rests on every s.mu/j.mu/
// events.mu critical section being a short, purely local computation, and
// the fleet coordinator's argument (a slow worker can never wedge the
// dispatch queue — OnLease/OnDone callbacks fire after unlock) rests on
// the same rule for queue/registry/coordinator sections; this analyzer
// rejects channel sends/receives, selects without a default, time.Sleep,
// Run/Wait-style calls, and http.ResponseWriter writes performed between a
// Lock and its Unlock in the same function.
//
// The analysis is intraprocedural and optimistic about branches: an early
// `if ... { mu.Unlock(); return }` does not leak the unlock past the if,
// and a lock is considered released after a conditional unlock on any
// non-terminating path (avoiding false positives at the cost of missing
// contrived conditional-hold shapes). Send/receive cases of a select that
// has a default clause are non-blocking by construction and are not
// flagged — Submit's queue admission depends on exactly that shape.
package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"clustersmt/internal/lint"
)

// Analyzer is the lockcheck check.
var Analyzer = &lint.Analyzer{
	Name: "lockcheck",
	Doc: "check that no blocking operation (channel op, sleep, Run/Wait, " +
		"ResponseWriter write) happens while a sync mutex acquired in the " +
		"same function is held",
	Run: run,
}

// mutexMethods maps the sync lock methods to +1 (acquire) / -1 (release).
var mutexMethods = map[string]int{
	"(*sync.Mutex).Lock":      +1,
	"(*sync.Mutex).Unlock":    -1,
	"(*sync.Mutex).TryLock":   +1, // conservatively: treat as acquired
	"(*sync.RWMutex).Lock":    +1,
	"(*sync.RWMutex).Unlock":  -1,
	"(*sync.RWMutex).RLock":   +1,
	"(*sync.RWMutex).RUnlock": -1,
}

func run(pass *lint.Pass) error {
	// The locking discipline this analyzer encodes belongs to the campaign
	// service and the fleet (coordinator, dispatch queue, registry, worker);
	// other packages have their own (checked dynamically).
	switch pass.Pkg.Types.Name() {
	case "service", "fleet":
	default:
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			c := &checker{pass: pass}
			c.walk(fn.Body.List, held{})
			// Function literals run on their own goroutine or call stack;
			// each body is a fresh scope with no inherited locks.
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					c.walk(lit.Body.List, held{})
					return false
				}
				return true
			})
		}
	}
	return nil
}

// held tracks mutexes currently locked, keyed by receiver expression text.
type held map[string]token.Pos

func (h held) clone() held {
	c := make(held, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

func (h held) names() string {
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

type checker struct {
	pass *lint.Pass
}

// walk processes stmts in order, threading the held-lock state through, and
// returns the state at the end of the sequence.
func (c *checker) walk(stmts []ast.Stmt, h held) held {
	for _, stmt := range stmts {
		h = c.walkStmt(stmt, h)
	}
	return h
}

func (c *checker) walkStmt(stmt ast.Stmt, h held) held {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, delta, ok := c.mutexOp(call); ok {
				if delta > 0 {
					h[key] = call.Pos()
				} else {
					delete(h, key)
				}
				return h
			}
		}
		c.checkBlocking(s, h)
	case *ast.DeferStmt:
		// A deferred unlock keeps the lock held to function end (already
		// modeled); any other deferred call runs at return, outside the
		// critical sections this pass models.
		return h
	case *ast.IfStmt:
		if s.Init != nil {
			h = c.walkStmt(s.Init, h)
		}
		c.checkBlocking(s.Cond, h)
		thenH := c.walk(s.Body.List, h.clone())
		if terminates(s.Body.List) {
			thenH = h
		}
		elseH := h
		if s.Else != nil {
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				elseH = c.walk(e.List, h.clone())
				if terminates(e.List) {
					elseH = h
				}
			case *ast.IfStmt:
				elseH = c.walkStmt(e, h.clone())
			}
		}
		return intersect(thenH, elseH)
	case *ast.BlockStmt:
		return c.walk(s.List, h)
	case *ast.LabeledStmt:
		return c.walkStmt(s.Stmt, h)
	case *ast.ForStmt:
		if s.Init != nil {
			h = c.walkStmt(s.Init, h)
		}
		if s.Cond != nil {
			c.checkBlocking(s.Cond, h)
		}
		c.walk(s.Body.List, h.clone()) // body may run zero times
	case *ast.RangeStmt:
		if tv, ok := c.pass.TypesInfo.Types[s.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan && len(h) > 0 {
				c.report(s.Pos(), "range over channel", h)
			}
		}
		c.checkBlocking(s.X, h)
		c.walk(s.Body.List, h.clone())
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var body *ast.BlockStmt
		if sw, ok := s.(*ast.SwitchStmt); ok {
			body = sw.Body
			if sw.Tag != nil {
				c.checkBlocking(sw.Tag, h)
			}
		} else {
			body = s.(*ast.TypeSwitchStmt).Body
		}
		for _, cc := range body.List {
			c.walk(cc.(*ast.CaseClause).Body, h.clone())
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, cc := range s.Body.List {
			if cc.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault && len(h) > 0 {
			c.report(s.Pos(), "select with no default clause", h)
		}
		for _, cc := range s.Body.List {
			c.walk(cc.(*ast.CommClause).Body, h.clone())
		}
	case *ast.GoStmt:
		return h // the spawned goroutine does not inherit lock ownership
	default:
		c.checkBlocking(stmt, h)
	}
	return h
}

// mutexOp recognizes calls to sync.Mutex / sync.RWMutex lock methods and
// returns the receiver expression text as the lock identity.
func (c *checker) mutexOp(call *ast.CallExpr) (key string, delta int, ok bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", 0, false
	}
	obj, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", 0, false
	}
	delta, ok = mutexMethods[obj.FullName()]
	if !ok {
		return "", 0, false
	}
	return types.ExprString(sel.X), delta, true
}

// checkBlocking reports blocking operations inside node while locks are held.
func (c *checker) checkBlocking(node ast.Node, h held) {
	if len(h) == 0 || node == nil {
		return
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate scope, walked with fresh state
		case *ast.SendStmt:
			c.report(n.Pos(), "channel send", h)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				c.report(n.Pos(), "channel receive", h)
			}
		case *ast.CallExpr:
			if what := c.blockingCall(n); what != "" {
				c.report(n.Pos(), what, h)
			}
		}
		return true
	})
}

// blockingCall classifies a call as blocking, returning a description or "".
func (c *checker) blockingCall(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if obj, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok {
			switch obj.FullName() {
			case "time.Sleep":
				return "time.Sleep"
			}
			switch obj.Name() {
			case "RunCtx", "Run", "Wait":
				if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
					return "call to " + obj.Name() + " (runs or waits for work of unbounded duration)"
				}
			}
		}
		if c.isStreamWriter(sel.X) {
			return "http.ResponseWriter method call (a slow client blocks the write)"
		}
	}
	for _, arg := range call.Args {
		if c.isStreamWriter(arg) {
			return "call passing an http.ResponseWriter (a slow client blocks the write)"
		}
	}
	return ""
}

// isStreamWriter reports whether expr's static type is net/http's
// ResponseWriter or Flusher interface.
func (c *checker) isStreamWriter(expr ast.Expr) bool {
	tv, ok := c.pass.TypesInfo.Types[expr]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "net/http" {
		return false
	}
	return obj.Name() == "ResponseWriter" || obj.Name() == "Flusher"
}

func (c *checker) report(pos token.Pos, what string, h held) {
	c.pass.Reportf(pos, "%s while holding %s", what, h.names())
}

// terminates reports whether a statement list always leaves the function
// (return or panic) rather than falling through.
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BranchStmt:
		return last.Tok == token.BREAK || last.Tok == token.CONTINUE || last.Tok == token.GOTO
	}
	return false
}

func intersect(a, b held) held {
	out := held{}
	for k, v := range a {
		if _, ok := b[k]; ok {
			out[k] = v
		}
	}
	return out
}
