// Package lockcheck enforces the campaign service's and fleet's locking
// discipline: no blocking operation while holding one of their mutexes.
// The daemon's liveness argument (a slow SSE reader, a full queue, or a
// stuck simulation can never wedge the API) rests on every s.mu/j.mu/
// events.mu critical section being a short, purely local computation, and
// the fleet coordinator's argument (a slow worker can never wedge the
// dispatch queue — OnLease/OnDone callbacks fire after unlock) rests on
// the same rule for queue/registry/coordinator sections; this analyzer
// rejects channel sends/receives, selects without a default, time.Sleep,
// Run/Wait-style calls, and http.ResponseWriter writes performed between a
// Lock and its Unlock in the same function.
//
// The analysis is a must-hold dataflow problem over each function's CFG
// (internal/lint/cfg): a lock is held at a program point only if it is
// held on EVERY path reaching it, computed by the forward solver under an
// intersection join. Early-unlock-and-return branches, conditional
// unlocks, and deferred unlocks all fall out of the graph shape — the
// defer chain runs on exit edges, so a deferred Unlock never releases the
// critical section early — where the previous AST walk needed
// terminates()/intersect() heuristics. When two paths acquire the same
// lock at different sites, the join keeps the acquisition that dominates
// the other (the one that program-order precedes the merge). Send/receive
// cases of a select that has a default clause are non-blocking by
// construction and are not flagged — Submit's queue admission depends on
// exactly that shape. Function literals run on their own goroutine or
// call stack, so each body is analyzed as a fresh scope with no inherited
// locks.
package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"clustersmt/internal/lint"
	"clustersmt/internal/lint/cfg"
	"clustersmt/internal/lint/dataflow"
)

// Analyzer is the lockcheck check.
var Analyzer = &lint.Analyzer{
	Name: "lockcheck",
	Doc: "check that no blocking operation (channel op, sleep, Run/Wait, " +
		"ResponseWriter write) happens while a sync mutex acquired in the " +
		"same function is held",
	Run: run,
}

// mutexMethods maps the sync lock methods to +1 (acquire) / -1 (release).
var mutexMethods = map[string]int{
	"(*sync.Mutex).Lock":      +1,
	"(*sync.Mutex).Unlock":    -1,
	"(*sync.Mutex).TryLock":   +1, // conservatively: treat as acquired
	"(*sync.RWMutex).Lock":    +1,
	"(*sync.RWMutex).Unlock":  -1,
	"(*sync.RWMutex).RLock":   +1,
	"(*sync.RWMutex).RUnlock": -1,
}

func run(pass *lint.Pass) error {
	// The locking discipline this analyzer encodes belongs to the campaign
	// service and the fleet (coordinator, dispatch queue, registry, worker);
	// other packages have their own (checked dynamically).
	switch pass.Pkg.Types.Name() {
	case "service", "fleet":
	default:
		return nil
	}
	for _, f := range pass.Files {
		for _, fg := range cfg.BuildAll([]*ast.File{f}) {
			if fg.Body == nil {
				continue
			}
			check(pass, fg.Graph)
		}
	}
	return nil
}

// lockFact is one held lock: where it was acquired, and in which block
// (for the dominator-based merge).
type lockFact struct {
	pos   token.Pos
	block int
}

// held tracks mutexes currently locked, keyed by receiver expression text.
// nil is bottom: no path has reached the point yet.
type held map[string]lockFact

func (h held) clone() held {
	c := make(held, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

func (h held) names() string {
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

// problem is the must-hold dataflow problem: facts shrink at joins
// (intersection), so a lock survives a merge only if every inbound path
// holds it.
type problem struct {
	pass   *lint.Pass
	g      *cfg.Graph
	report bool
}

func (p *problem) Boundary() held { return held{} }

func (p *problem) Transfer(b *cfg.Block, in held) held {
	h := in.clone()
	if p.report && b.Kind == cfg.KindCond {
		if sel, ok := b.Stmt.(*ast.SelectStmt); ok && len(h) > 0 && !selectHasDefault(sel) {
			p.reportf(sel.Pos(), "select with no default clause", h)
		}
	}
	for _, n := range b.Nodes {
		p.node(b, n, h)
	}
	return h
}

func (p *problem) node(b *cfg.Block, n ast.Node, h held) {
	switch n := n.(type) {
	case *ast.ExprStmt:
		if call, ok := n.X.(*ast.CallExpr); ok {
			if key, delta, ok := p.mutexOp(call); ok {
				if delta > 0 {
					h[key] = lockFact{pos: call.Pos(), block: b.Index}
				} else {
					delete(h, key)
				}
				return
			}
		}
		p.checkBlocking(n.X, h)
	case *ast.CallExpr:
		// A deferred call, running on the exit path (KindDefer block): a
		// deferred Unlock releases there — after every statement in the
		// body — and other deferred work runs outside the critical
		// sections this pass models, so only the lock effect is applied.
		if key, delta, ok := p.mutexOp(n); ok && delta < 0 {
			delete(h, key)
		}
	case *ast.RangeStmt:
		// Only the range operand belongs to this block; the body is its
		// own block downstream.
		if p.report {
			if tv, ok := p.pass.TypesInfo.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan && len(h) > 0 {
					p.reportf(n.Pos(), "range over channel", h)
				}
			}
		}
		p.checkBlocking(n.X, h)
	case *ast.CaseClause:
		for _, e := range n.List {
			p.checkBlocking(e, h)
		}
	case *ast.CommClause:
		// The comm op blocks only when the select has no default, which is
		// reported once at the select itself.
	case *ast.GoStmt:
		// The spawned goroutine does not inherit lock ownership, and its
		// literal body is analyzed as a fresh scope.
	case *ast.DeferStmt:
		// Registration point: effects happen in the KindDefer block.
	default:
		p.checkBlocking(n, h)
	}
}

func (p *problem) Join(acc, src held) (held, bool) {
	if acc == nil {
		return src.clone(), len(src) > 0
	}
	changed := false
	for k, av := range acc {
		sv, ok := src[k]
		if !ok {
			delete(acc, k) // released on some path: not must-held
			changed = true
			continue
		}
		if sv != av && p.g.Dominates(p.g.Blocks[sv.block], p.g.Blocks[av.block]) {
			// Two acquisition sites merge: attribute the lock to the one
			// that dominates the other (program-order first on all paths).
			acc[k] = sv
			changed = true
		}
	}
	return acc, changed
}

func (p *problem) Equal(a, b held) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if w, ok := b[k]; !ok || w != v {
			return false
		}
	}
	return true
}

func check(pass *lint.Pass, g *cfg.Graph) {
	p := &problem{pass: pass, g: g}
	facts := dataflow.Forward[held](g, p)
	p.report = true
	for _, b := range g.Blocks {
		h := facts.In[b.Index]
		if h == nil {
			h = held{}
		}
		p.Transfer(b, h)
	}
}

// mutexOp recognizes calls to sync.Mutex / sync.RWMutex lock methods and
// returns the receiver expression text as the lock identity.
func (p *problem) mutexOp(call *ast.CallExpr) (key string, delta int, ok bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", 0, false
	}
	obj, ok := p.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", 0, false
	}
	delta, ok = mutexMethods[obj.FullName()]
	if !ok {
		return "", 0, false
	}
	return types.ExprString(sel.X), delta, true
}

// checkBlocking reports blocking operations inside node while locks are held.
func (p *problem) checkBlocking(node ast.Node, h held) {
	if !p.report || len(h) == 0 || node == nil {
		return
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate scope, analyzed with fresh state
		case *ast.SendStmt:
			p.reportf(n.Pos(), "channel send", h)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				p.reportf(n.Pos(), "channel receive", h)
			}
		case *ast.CallExpr:
			if what := p.blockingCall(n); what != "" {
				p.reportf(n.Pos(), what, h)
			}
		}
		return true
	})
}

// blockingCall classifies a call as blocking, returning a description or "".
func (p *problem) blockingCall(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if obj, ok := p.pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok {
			switch obj.FullName() {
			case "time.Sleep":
				return "time.Sleep"
			}
			switch obj.Name() {
			case "RunCtx", "Run", "Wait":
				if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
					return "call to " + obj.Name() + " (runs or waits for work of unbounded duration)"
				}
			}
		}
		if p.isStreamWriter(sel.X) {
			return "http.ResponseWriter method call (a slow client blocks the write)"
		}
	}
	for _, arg := range call.Args {
		if p.isStreamWriter(arg) {
			return "call passing an http.ResponseWriter (a slow client blocks the write)"
		}
	}
	return ""
}

// isStreamWriter reports whether expr's static type is net/http's
// ResponseWriter or Flusher interface.
func (p *problem) isStreamWriter(expr ast.Expr) bool {
	tv, ok := p.pass.TypesInfo.Types[expr]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "net/http" {
		return false
	}
	return obj.Name() == "ResponseWriter" || obj.Name() == "Flusher"
}

func (p *problem) reportf(pos token.Pos, what string, h held) {
	p.pass.Reportf(pos, "%s while holding %s", what, h.names())
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if c.(*ast.CommClause).Comm == nil {
			return true
		}
	}
	return false
}
