// Package detcheck implements the determinism analyzer: it reports values
// derived from nondeterministic sources — map iteration order, goroutine
// send order, wall-clock reads (time.Now/Since/Until), unseeded
// package-level math/rand — that flow into the simulator's observable
// outputs: metrics.Stats and campaign Result fields, report emitters,
// store cache keys, and HTTP response writes (Prometheus text, SSE
// frames).
//
// The analysis is the taint engine in internal/lint/dataflow: a forward
// dataflow problem over each function's CFG, with call-graph summaries so
// a helper returning unsorted map keys taints its callers. Extracting keys
// and sorting them (sort.Strings, slices.Sorted) sanitizes order taint, as
// does re-keying into a map (`m[k] = v` — final contents are independent
// of write order) and folding into an integer accumulator (`n += v` over a
// full iteration is commutative). Float accumulators stay tainted: FP
// addition is not associative, so a map-ordered float sum genuinely
// changes between runs.
package detcheck

import (
	"clustersmt/internal/lint"
	"clustersmt/internal/lint/dataflow"
)

// Analyzer is the detcheck analyzer.
var Analyzer = &lint.Analyzer{
	Name: "detcheck",
	Doc: "report nondeterministic values (map iteration order, goroutine send order, " +
		"wall clock, unseeded math/rand) flowing into simulation outputs: metrics.Stats " +
		"and campaign Result fields, report emitters, store cache keys, HTTP responses",
	Run: run,
}

func run(pass *lint.Pass) error {
	type key struct {
		pos  int
		msg  string
		sink string
	}
	seen := map[key]bool{}
	for _, f := range dataflow.DetFindings(pass.Module, pass.Pkg) {
		k := key{int(f.Pos), f.Kinds.String(), f.Sink}
		if seen[k] {
			continue
		}
		seen[k] = true
		pass.Reportf(f.Pos, "nondeterministic value (%s) reaches %s", f.Kinds, f.Sink)
	}
	return nil
}
