// Sibling fixture standing in for the result store: parameters named
// "key" are content-address cache keys and must be deterministic.
package store

type Cache struct{}

func (c *Cache) Put(key string, data []byte) { _ = key; _ = data }

func Get(key string) []byte { _ = key; return nil }
