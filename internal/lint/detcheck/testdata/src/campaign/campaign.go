// Sibling fixture mirroring the real internal/campaign Result row.
package campaign

type Result struct {
	Name  string
	Seed  int64
	Order []string
}
