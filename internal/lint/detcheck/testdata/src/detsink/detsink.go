// Fixture for the detcheck analyzer: one function per source/sink/
// sanitizer combination, bug-shaped where flagged and fixed-shaped where
// clean, so the golden comments pin both directions.
package detsink

import (
	"fmt"
	"io"
	"maps"
	"math/rand"
	"net/http"
	"os"
	"slices"
	"sort"
	"time"

	"campaign"
	"metrics"
	"report"
	"store"
)

// --- map iteration order into result fields ---

func unsortedLabels(counts map[string]int) metrics.Stats {
	var st metrics.Stats
	var labels []string
	for name := range counts {
		labels = append(labels, name)
	}
	st.Labels = labels // want `map iteration order.*metrics\.Stats field Labels`
	return st
}

func sortedLabels(counts map[string]int) metrics.Stats {
	var st metrics.Stats
	var labels []string
	for name := range counts {
		labels = append(labels, name)
	}
	sort.Strings(labels) // sanitizer: order taint dies here
	st.Labels = labels
	return st
}

func sortedIterator(counts map[string]int) []string {
	return slices.Sorted(maps.Keys(counts)) // sorted at birth: clean
}

func unsortedIterator(counts map[string]int, w io.Writer) {
	for k := range maps.Keys(counts) {
		report.Lines(w, []string{k}) // want `map iteration order.*report emitter Lines`
	}
}

// --- wall clock ---

func stampWall(st *metrics.Stats) {
	st.Started = time.Now()                 // clean: the field is declared time.Time
	st.IPC = float64(time.Now().UnixNano()) // want `wall-clock time.*metrics\.Stats field IPC`
}

// --- math/rand ---

func randomSeed(r *campaign.Result) {
	r.Seed = rand.Int63() // want `math/rand value.*campaign\.Result field Seed`
}

func seededGenerator(r *campaign.Result) {
	src := rand.New(rand.NewSource(42))
	r.Seed = src.Int63() // clean: explicitly seeded generator
}

// --- goroutine send order, interprocedural through a summary ---

func collectResults(ch chan string, n int) []string {
	var out []string
	for i := 0; i < n; i++ {
		out = append(out, <-ch)
	}
	return out
}

func emitUnordered(ch chan string) {
	report.Lines(os.Stdout, collectResults(ch, 3)) // want `goroutine send order.*report emitter Lines`
}

func emitSorted(ch chan string) {
	lines := collectResults(ch, 3)
	sort.Strings(lines)
	report.Lines(os.Stdout, lines) // clean: sorted after collection
}

// --- accumulator laundering: integer sums commute, float sums do not ---

func totalInt(counts map[string]int) metrics.Stats {
	var st metrics.Stats
	total := 0
	for _, c := range counts {
		total += c
	}
	st.Cycles = uint64(total) // clean: integer fold is order-independent
	return st
}

func totalFloat(samples map[string]float64) metrics.Stats {
	var st metrics.Stats
	var sum float64
	for _, v := range samples {
		sum += v
	}
	st.IPC = sum // want `map iteration order.*metrics\.Stats field IPC`
	return st
}

// --- re-keying laundering: final map contents ignore write order ---

func rekeyed(src map[string]int, w io.Writer) {
	dst := make(map[string]int, len(src))
	for k, v := range src {
		dst[k] = v
	}
	report.WriteJSON(w, dst) // clean: plain keyed writes launder order
}

// Integer counts keyed by arrival are order-independent: the final
// histogram is the multiset of received values however they arrived.
func countArrivals(ch chan string, n int) {
	counts := map[string]int{}
	for i := 0; i < n; i++ {
		counts[<-ch]++
	}
	report.WriteJSON(os.Stdout, counts) // clean: integer fold is commutative
}

// Float folds are NOT laundered: FP addition is non-associative, so
// per-slot totals genuinely depend on the order values arrived in.
func sumLatencies(ch chan float64, names chan string, n int) {
	sums := map[string]float64{}
	for i := 0; i < n; i++ {
		sums[<-names] += <-ch
	}
	report.WriteJSON(os.Stdout, sums) // want `goroutine send order.*report emitter WriteJSON`
}

// --- store cache keys: every kind gates ---

func cacheStamp(c *store.Cache, b []byte) {
	key := fmt.Sprintf("run-%d", time.Now().UnixNano())
	c.Put(key, b) // want `wall-clock time.*store key argument of Put`
}

func cacheStable(c *store.Cache, name string, b []byte) {
	c.Put("run-"+name, b) // clean: key derived from inputs only
}

// --- HTTP response writes: order kinds only ---

func handleDump(w http.ResponseWriter, counts map[string]int) {
	var lines []string
	for k, v := range counts {
		lines = append(lines, fmt.Sprintf("%s %d", k, v))
	}
	fmt.Fprintf(w, "%v\n", lines) // want `map iteration order.*HTTP response write`
}

func handleRate(w http.ResponseWriter, cycles uint64) {
	persec := float64(cycles) / time.Since(time.Time{}).Seconds()
	fmt.Fprintf(w, "rate %g\n", persec) // clean: wall clock is legitimate in responses
}

// --- parameter sinks: the callee's sink blames the caller's argument ---

func emitTo(w io.Writer, v any) {
	report.WriteJSON(w, v)
}

func publish(w io.Writer, counts map[string]int) {
	var keys []string
	for k := range counts {
		keys = append(keys, k)
	}
	emitTo(w, keys) // want `map iteration order.*report emitter WriteJSON via call to emitTo`
}

func publishSorted(w io.Writer, counts map[string]int) {
	keys := slices.Sorted(maps.Keys(counts))
	emitTo(w, keys) // clean
}
