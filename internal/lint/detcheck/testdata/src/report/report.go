// Sibling fixture standing in for the real report package: every argument
// an emitter renders lands in golden-compared artifacts.
package report

import "io"

func WriteJSON(w io.Writer, v any) error { _ = w; _ = v; return nil }

func Lines(w io.Writer, lines []string) { _ = w; _ = lines }
