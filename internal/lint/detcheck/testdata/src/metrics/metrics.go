// Sibling fixture mirroring the real internal/metrics package's shape:
// detcheck matches the Stats sink by package and type name.
package metrics

import "time"

type Stats struct {
	Cycles  uint64
	IPC     float64
	Labels  []string
	Started time.Time
}
