package detcheck_test

import (
	"testing"

	"clustersmt/internal/lint/detcheck"
	"clustersmt/internal/lint/linttest"
)

func TestDetcheck(t *testing.T) {
	linttest.Run(t, detcheck.Analyzer, "testdata/src/detsink")
}
