// Package ctxflow implements the cancellation-propagation analyzer. The
// simulator's long-running entry points (campaign engines, fleet workers,
// the core cycle loop) are expected to be cancelable: RunCtx polls
// ctx.Err() on a cycle mask, the service loops select on ctx.Done().
// ctxflow enforces the two rules that keep that property from rotting:
//
//  1. Inside a function that receives a context.Context, a long-running
//     `for` loop must observe the context on some path: reference ctx (or
//     a value derived from it) in its condition or body, or pass it to a
//     callee. A loop is long-running when it has no condition (`for {`) or
//     performs synchronous work (calls, channel operations); loops that
//     only spawn goroutines (`go w.run()`) are exempt — the spawned work
//     observes its own context.
//
//  2. An exported entry point whose name starts with Run, Serve, or Wait
//     (word boundary: Run, RunAll — not Runner) that loops or blocks must
//     accept a context.Context, take an *http.Request (whose Context()
//     serves), or be a thin forwarding wrapper that hands
//     context.Background()/TODO() to a context-aware implementation
//     (`func Run() { return RunCtx(context.Background()) }` is the
//     documented compatibility shape).
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"
	"unicode"

	"clustersmt/internal/lint"
)

// Analyzer is the ctxflow analyzer.
var Analyzer = &lint.Analyzer{
	Name: "ctxflow",
	Doc: "long-running loops in context-aware functions must observe cancellation, " +
		"and exported Run/Serve/Wait entry points must accept and forward context.Context",
	Run: run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if ctxObjs := contextParams(pass, fd); len(ctxObjs) > 0 {
				checkLoopsPoll(pass, fd, ctxObjs)
			} else {
				checkEntryPoint(pass, fd)
			}
		}
	}
	return nil
}

// contextParams returns the objects of every context.Context parameter.
func contextParams(pass *lint.Pass, fd *ast.FuncDecl) []types.Object {
	var objs []types.Object
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj != nil && isContext(obj.Type()) {
				objs = append(objs, obj)
			}
		}
	}
	return objs
}

// checkLoopsPoll flags long-running `for` loops that never observe the
// context. Nested function literals are their own scope: a loop inside a
// literal is judged against the literal (which sees ctx by capture — a
// lexical reference still counts), but loops containing only spawned work
// are the literal's responsibility.
func checkLoopsPoll(pass *lint.Pass, fd *ast.FuncDecl, ctxObjs []types.Object) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok {
			return true
		}
		if !longRunning(pass, loop) {
			return true
		}
		if referencesContext(pass, loop, ctxObjs) {
			return true
		}
		pass.Reportf(loop.Pos(), "long-running loop never observes %s; poll ctx.Err() or select on ctx.Done() so cancellation can stop it", ctxParamName(fd, ctxObjs))
		return true
	})
}

func ctxParamName(fd *ast.FuncDecl, ctxObjs []types.Object) string {
	if len(ctxObjs) > 0 {
		return ctxObjs[0].Name()
	}
	return "ctx"
}

// longRunning reports whether a for loop plausibly runs unbounded wall
// time: no condition at all, or synchronous work (a call or channel
// operation) outside go statements.
func longRunning(pass *lint.Pass, loop *ast.ForStmt) bool {
	if loop.Cond == nil {
		return true
	}
	sync := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt, *ast.FuncLit:
			return false // spawned / deferred-to-literal work is not this loop's
		case *ast.CallExpr:
			if !isBuiltinCall(pass, n) {
				sync = true
			}
		case *ast.SendStmt, *ast.SelectStmt:
			sync = true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				sync = true
			}
		}
		return !sync
	})
	return sync
}

func isBuiltinCall(pass *lint.Pass, call *ast.CallExpr) bool {
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return true // conversion
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, builtin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return builtin
}

// referencesContext reports whether any identifier inside the loop refers
// to one of the context parameters or to any context-typed value (a child
// ctx from context.WithCancel counts).
func referencesContext(pass *lint.Pass, loop *ast.ForStmt, ctxObjs []types.Object) bool {
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return !found
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		for _, c := range ctxObjs {
			if obj == c {
				found = true
				return false
			}
		}
		if _, isVar := obj.(*types.Var); isVar && isContext(obj.Type()) {
			found = true
			return false
		}
		return true
	})
	return found
}

// checkEntryPoint applies rule 2 to exported Run/Serve/Wait functions
// without a context parameter.
func checkEntryPoint(pass *lint.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	if !entryPointName(name) || !fd.Name.IsExported() {
		return
	}
	if hasRequestParam(pass, fd) {
		return // r.Context() is available; http.Handler shapes can't change
	}
	if hasTestingParam(pass, fd) {
		return // test helpers run under the framework's own deadline
	}
	if !looksLongRunning(pass, fd.Body) {
		return
	}
	if forwardsBackground(pass, fd.Body) {
		return // documented compatibility wrapper: Run() -> RunCtx(context.Background(), ...)
	}
	pass.Reportf(fd.Pos(), "exported entry point %s looks long-running but has no context.Context parameter; accept a context and forward it", name)
}

// entryPointName matches Run/Serve/Wait at a word boundary: Run, RunAll,
// ServeHTTP — but not Runner or Waiting... (lowercase continuation means
// the prefix is part of a longer word).
func entryPointName(name string) bool {
	for _, prefix := range [...]string{"Run", "Serve", "Wait"} {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		rest := name[len(prefix):]
		if rest == "" || !unicode.IsLower(rune(rest[0])) {
			return true
		}
	}
	return false
}

func hasRequestParam(pass *lint.Pass, fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok {
			continue
		}
		t := types.Unalias(tv.Type)
		p, ok := t.(*types.Pointer)
		if !ok {
			continue
		}
		if n, ok := types.Unalias(p.Elem()).(*types.Named); ok {
			o := n.Obj()
			if o.Name() == "Request" && o.Pkg() != nil && o.Pkg().Path() == "net/http" {
				return true
			}
		}
	}
	return false
}

// hasTestingParam reports whether fd takes a *testing.T / *testing.B /
// *testing.F: test helpers are driven (and killed) by the test framework,
// so cancellation plumbing would be dead weight.
func hasTestingParam(pass *lint.Pass, fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok {
			continue
		}
		p, ok := types.Unalias(tv.Type).(*types.Pointer)
		if !ok {
			continue
		}
		if n, ok := types.Unalias(p.Elem()).(*types.Named); ok {
			o := n.Obj()
			if o.Pkg() != nil && o.Pkg().Path() == "testing" {
				switch o.Name() {
				case "T", "B", "F":
					return true
				}
			}
		}
	}
	return false
}

// looksLongRunning: the body loops or blocks on channels.
func looksLongRunning(pass *lint.Pass, body *ast.BlockStmt) bool {
	long := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SelectStmt, *ast.SendStmt:
			long = true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				long = true
			}
		}
		return !long
	})
	return long
}

// forwardsBackground reports whether the body hands context.Background()
// or context.TODO() to some callee — the thin-wrapper escape hatch.
func forwardsBackground(pass *lint.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		for _, arg := range call.Args {
			inner, ok := ast.Unparen(arg).(*ast.CallExpr)
			if !ok {
				continue
			}
			sel, ok := ast.Unparen(inner.Fun).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil {
				continue
			}
			if obj.Pkg().Path() == "context" && (obj.Name() == "Background" || obj.Name() == "TODO") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isContext(t types.Type) bool {
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	o := n.Obj()
	return o.Name() == "Context" && o.Pkg() != nil && o.Pkg().Path() == "context"
}
