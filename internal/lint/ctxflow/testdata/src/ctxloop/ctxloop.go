// Fixture for the ctxflow analyzer: rule 1 (loops in context-aware
// functions must observe cancellation) and rule 2 (exported Run/Serve/Wait
// entry points must accept a context or forward Background to one).
package ctxloop

import (
	"context"
	"net/http"
	"testing"
)

func step()                       {}
func stepCtx(ctx context.Context) { _ = ctx }

// --- rule 1: loops in functions that receive a context ---

func spinForever(ctx context.Context) { // bug: unconditional loop, ctx ignored
	for { // want `long-running loop never observes ctx`
		step()
	}
}

func selectsOnDone(ctx context.Context, work chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case w := <-work:
			_ = w
		}
	}
}

func forwardsCtx(ctx context.Context, n int) {
	for i := 0; i < n; i++ {
		stepCtx(ctx) // passing ctx along counts as observing it
	}
}

func maskedPoll(ctx context.Context) {
	var now uint64
	for {
		if now&8191 == 0 && ctx.Err() != nil {
			return
		}
		now++
		step()
	}
}

func derivedCtx(parent context.Context) {
	child, cancel := context.WithCancel(parent)
	defer cancel()
	for { // clean: child is context-typed, so the loop observes cancellation
		if child.Err() != nil {
			return
		}
		step()
	}
}

func spawnOnly(ctx context.Context, n int) {
	for i := 0; i < n; i++ {
		go step() // spawned work owns its own cancellation
	}
	<-ctx.Done()
}

func boundedArithmetic(ctx context.Context) int {
	total := 0
	for i := 0; i < 10; i++ {
		total += i // no calls, no channels: not long-running
	}
	return total
}

func blockingNoPoll(ctx context.Context, work chan int) {
	for n := 0; n < 100; n++ { // want `long-running loop never observes ctx`
		<-work
	}
}

// --- rule 2: exported entry points ---

func Run() { // want `exported entry point Run looks long-running but has no context\.Context parameter`
	for {
		step()
	}
}

func RunAll() error { // clean: thin forwarding wrapper
	return RunAllCtx(context.Background())
}

func RunAllCtx(ctx context.Context) error {
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		step()
	}
}

func Runner() { // clean: "Run" is part of a longer word
	for {
		step()
	}
}

func RunOnce() {} // clean: no loops, nothing blocks

func Wait(done chan struct{}) { // want `exported entry point Wait looks long-running`
	<-done
}

func ServeHTTP(w http.ResponseWriter, r *http.Request) { // clean: r.Context() serves
	for {
		step()
	}
}

func run() { // clean: unexported
	for {
		step()
	}
}

// RunChecks is clean: a *testing.T parameter marks a test helper, driven
// and killed by the test framework's own deadline.
func RunChecks(t *testing.T, work chan int) {
	for w := range work {
		t.Log(w)
	}
}
