package ctxflow_test

import (
	"testing"

	"clustersmt/internal/lint/ctxflow"
	"clustersmt/internal/lint/linttest"
)

func TestCtxflow(t *testing.T) {
	linttest.Run(t, ctxflow.Analyzer, "testdata/src/ctxloop")
}
