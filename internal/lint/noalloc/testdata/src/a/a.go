// Fixture for the noalloc analyzer: annotated functions exercising every
// diagnostic class plus the shapes that must stay silent.
package a

// sum is allocation-free: loops, arithmetic, and slice reads are fine.
//
//smtlint:noalloc
func sum(xs []int) (s int) {
	for _, x := range xs {
		s += x
	}
	return s
}

// helper is deliberately not annotated.
func helper() int { return 1 }

//smtlint:noalloc
func callsUnannotated() int {
	return helper() // want `calls a\.helper, which is not annotated //smtlint:noalloc`
}

//smtlint:noalloc
func builtins(xs []int, m map[string]int) {
	_ = make([]int, 4)    // want `make allocates`
	_ = new(int)          // want `new allocates`
	xs = append(xs, 1)    // want `append may grow its backing array`
	m["k"] = 1            // want `map write may allocate \(bucket growth\)`
	_ = []int{1, 2, 3}    // want `slice literal allocates its backing array`
	_ = map[int]int{1: 1} // want `map literal allocates`
	_ = xs
}

type point struct{ x, y int }

//smtlint:noalloc
func escapes() *point {
	return &point{1, 2} // want `address of composite literal escapes to the heap`
}

//smtlint:noalloc
func strings(a, b string, bs []byte) {
	_ = a + b       // want `string concatenation allocates`
	_ = string(bs)  // want `string conversion copies to a fresh allocation`
	_ = []byte(a)   // want `string conversion copies to a fresh allocation`
	_ = a + "const" // want `string concatenation allocates`
}

//smtlint:noalloc
func boxes(p point) {
	var i any
	i = p // want `boxes a\.point into interface any`
	_ = i
}

// boxPointer is fine: pointers are pointer-shaped, no box needed.
//
//smtlint:noalloc
func boxPointer(p *point) any { return p }

//smtlint:noalloc
func spawns() {
	go helper()    // want `go statement allocates a goroutine` `calls a\.helper, which is not annotated`
	defer helper() // want `defer in a noalloc function; hoist it out of the hot path` `calls a\.helper, which is not annotated`
}

//smtlint:noalloc
func closureEscapes(x int) func() int {
	f := func() int { return x } // want `function literal escapes: the closure allocates`
	return f
}

// each takes a callback; the literal below is passed directly, so its body is
// checked in place rather than treated as an escaping closure.
//
//smtlint:noalloc
func each(xs []int, fn func(int)) {
	for _, x := range xs {
		fn(x)
	}
}

//smtlint:noalloc
func directLiteral(xs []int) {
	each(xs, func(x int) {
		_ = make([]int, x) // want `make allocates`
	})
}

type sampler struct {
	fn func(int)
}

//smtlint:noalloc
func (s *sampler) fire() {
	s.fn(1) // want `dynamic call through function value fn`
}

//smtlint:noalloc
func dynamicValue() {
	var f func()
	f() // want `dynamic call through function value f`
}

// allowed demonstrates //smtlint:allow suppression: no want comments here.
//
//smtlint:noalloc
func allowed(xs []int) []int {
	//smtlint:allow scratch buffer retained by the caller
	xs = append(xs, 1)
	return xs
}

// Stepper's Step is annotated at the interface; implementations must carry
// the annotation too.
type Stepper interface {
	//smtlint:noalloc
	Step() int
}

type goodStep struct{}

//smtlint:noalloc
func (goodStep) Step() int { return 0 }

type badStep struct{}

func (badStep) Step() int { return 0 } // want `badStep implements a\.Stepper, whose method Step is //smtlint:noalloc, but this implementation is not annotated`

//smtlint:noalloc
func viaInterface(s Stepper) int {
	return s.Step()
}

//smtlint:noalloc
func notAnnotatedIface(s interface{ Nope() int }) int {
	return s.Nope() // want `call via interface method \(interface\)\.Nope, which is not annotated //smtlint:noalloc`
}

// panicPath: arguments to panic are a cold path and exempt.
//
//smtlint:noalloc
func panicPath(n int) {
	if n < 0 {
		panic("negative: " + string(rune(n)))
	}
}

// Method values bind their receiver into a hidden closure: `f := p.Step`
// allocates even though no call happens yet. This was the analyzer's blind
// spot — the selector only drew attention in call position.

type proc struct{ n int }

//smtlint:noalloc
func (p *proc) Step() int { return p.n }

//smtlint:noalloc
func methodValue(p *proc) int {
	f := p.Step // want `method value Step allocates a bound-method closure`
	return f()  // want `dynamic call through function value f`
}

//smtlint:noalloc
func methodCall(p *proc) int {
	return p.Step() // direct invocation: no closure, stays silent
}
