package noalloc_test

import (
	"testing"

	"clustersmt/internal/lint/linttest"
	"clustersmt/internal/lint/noalloc"
)

func TestNoalloc(t *testing.T) {
	linttest.Run(t, noalloc.Analyzer, "testdata/src/a")
}
