// Package noalloc is the static complement to the runtime zero-alloc gate
// (TestSteadyStateZeroAlloc): functions annotated //smtlint:noalloc must be
// free of allocation-prone constructs on every path, not just the paths a
// benchmark config happens to execute.
//
// Inside an annotated function the analyzer rejects:
//
//   - make, new, and growable append
//   - map writes, and map or slice composite literals
//   - &T{...} (the address-of forces the literal to the heap)
//   - function literals that escape (stored, returned, or assigned);
//     a literal passed directly as a call argument is instead checked
//     recursively, matching the compiler's ability to keep such closures
//     on the stack
//   - interface boxing: converting a non-pointer-shaped concrete value to
//     an interface (call arguments and assignments)
//   - non-constant string concatenation and string<->[]byte conversions
//   - go statements and defer
//   - calls to anything that is not itself annotated, a safe builtin, or
//     whitelisted; dynamic calls through stored function values; calls
//     through interface methods that are not annotated at the interface
//
// Two escape hatches keep the rule honest rather than theatrical:
// arguments of panic(...) are skipped (failure paths are cold and panic
// with formatted context), and a line carrying //smtlint:allow <reason>
// is suppressed — the reason documents why the construct is bounded
// (append into a pre-sized buffer, pool refill on a cold miss path).
//
// Annotated interfaces close the dynamic-dispatch hole: if an interface
// method is //smtlint:noalloc, every module type implementing the
// interface must annotate (and therefore satisfy) the corresponding
// concrete method.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"clustersmt/internal/lint"
)

// Analyzer is the noalloc check.
var Analyzer = &lint.Analyzer{
	Name: "noalloc",
	Doc: "check that //smtlint:noalloc functions contain no allocation-prone " +
		"constructs and call only annotated or whitelisted functions",
	Run: run,
}

// whitelist names functions outside the module that are known not to
// allocate. Prefix entries end in a dot and admit a whole package.
var whitelist = map[string]bool{
	"slices.SortFunc": true, // in-place pattern-defeating quicksort; the comparison literal is still checked
}

var whitelistPrefixes = []string{
	"math/bits.", // pure bit manipulation on machine words
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil || !pass.Noalloc(obj) {
				continue
			}
			c := &checker{
				pass:       pass,
				funcParams: map[types.Object]bool{},
				directLits: map[*ast.FuncLit]bool{},
				callFuns:   map[*ast.SelectorExpr]bool{},
			}
			c.addFuncParams(fd.Type)
			c.check(fd.Body)
		}
	}
	checkImplementations(pass)
	return nil
}

type checker struct {
	pass *lint.Pass
	// funcParams holds the function-typed parameters of the annotated
	// function (and of directly-invoked literals within it): calling one is
	// permitted, because every direct literal passed for it is checked at
	// its own call site.
	funcParams map[types.Object]bool
	// directLits marks function literals appearing directly as a call
	// argument or operand: checked recursively instead of flagged as
	// escaping.
	directLits map[*ast.FuncLit]bool
	// callFuns marks selector expressions in call position (p.Step()):
	// those select a method to INVOKE. A method selector anywhere else
	// (f := p.Step) is a method VALUE, which allocates a closure binding
	// the receiver.
	callFuns map[*ast.SelectorExpr]bool
}

// addFuncParams records function-typed parameters declared by ft.
func (c *checker) addFuncParams(ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			obj := c.pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			if _, ok := obj.Type().Underlying().(*types.Signature); ok {
				c.funcParams[obj] = true
			}
		}
	}
}

func (c *checker) check(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			return c.checkCall(n)
		case *ast.FuncLit:
			if !c.directLits[n] {
				c.pass.Reportf(n.Pos(), "function literal escapes: the closure allocates")
			}
			c.addFuncParams(n.Type)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					c.pass.Reportf(n.Pos(), "address of composite literal escapes to the heap")
				}
			}
		case *ast.CompositeLit:
			if tv, ok := c.pass.TypesInfo.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					c.pass.Reportf(n.Pos(), "slice literal allocates its backing array")
				case *types.Map:
					c.pass.Reportf(n.Pos(), "map literal allocates")
				}
			}
		case *ast.AssignStmt:
			c.checkAssign(n)
		case *ast.IncDecStmt:
			if idx, ok := n.X.(*ast.IndexExpr); ok {
				c.checkMapWrite(idx)
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := c.pass.TypesInfo.Types[n]; ok && tv.Value == nil && isString(tv.Type) {
					c.pass.Reportf(n.Pos(), "string concatenation allocates")
				}
			}
		case *ast.GoStmt:
			c.pass.Reportf(n.Pos(), "go statement allocates a goroutine")
		case *ast.DeferStmt:
			c.pass.Reportf(n.Pos(), "defer in a noalloc function; hoist it out of the hot path")
		case *ast.SelectorExpr:
			// A method used as a value (f := p.Step) compiles to a closure
			// binding the receiver — one hidden allocation per evaluation.
			// In call position the same selector is a direct invocation.
			if !c.callFuns[n] {
				if sel, ok := c.pass.TypesInfo.Selections[n]; ok && sel.Kind() == types.MethodVal {
					c.pass.Reportf(n.Pos(), "method value %s allocates a bound-method closure; call it directly or hoist the binding", sel.Obj().Name())
				}
			}
		}
		return true
	})
}

// checkCall handles calls: conversions, builtins, and callee discipline.
// It returns false when the subtree must not be descended (panic args).
func (c *checker) checkCall(call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			return false // panic paths are cold; formatted context is allowed there
		}
	}

	// A conversion, not a call.
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		c.checkConversion(call, tv.Type)
		return true
	}

	// Function literals in operand or argument position run here, not
	// later: check their bodies instead of flagging them as escaping.
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		c.directLits[lit] = true
	}
	for _, arg := range call.Args {
		if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
			c.directLits[lit] = true
		}
	}

	c.markCallFun(call.Fun)

	obj, sel := c.callee(call.Fun)
	switch obj := obj.(type) {
	case *types.Builtin:
		switch obj.Name() {
		case "make":
			c.pass.Reportf(call.Pos(), "make allocates")
		case "new":
			c.pass.Reportf(call.Pos(), "new allocates")
		case "append":
			c.pass.Reportf(call.Pos(), "append may grow its backing array")
		}
		return true
	case *types.Func:
		fn := obj.Origin()
		sig, _ := fn.Type().(*types.Signature)
		isIface := sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type())
		switch {
		case c.pass.Noalloc(fn):
		case whitelisted(fn.FullName()):
		case isIface:
			c.pass.Reportf(call.Pos(),
				"call via interface method %s, which is not annotated //smtlint:noalloc", fn.FullName())
		default:
			c.pass.Reportf(call.Pos(),
				"calls %s, which is not annotated //smtlint:noalloc", fn.FullName())
		}
		c.checkArgBoxing(call, sig)
		return true
	case *types.Var:
		if c.funcParams[obj] {
			// Calling a function-typed parameter: the literal passed for it
			// is checked at the annotated call site that supplied it.
			return true
		}
		c.pass.Reportf(call.Pos(), "dynamic call through function value %s", obj.Name())
		return true
	}
	if sel != nil && sel.Kind() == types.FieldVal {
		c.pass.Reportf(call.Pos(), "dynamic call through function-valued field %s", sel.Obj().Name())
	}
	return true
}

// markCallFun records the selector a call invokes through (unwrapping
// parens and generic instantiation indexes) so the method-value check can
// tell invocation from closure-creating uses.
func (c *checker) markCallFun(fun ast.Expr) {
	switch f := ast.Unparen(fun).(type) {
	case *ast.SelectorExpr:
		c.callFuns[f] = true
	case *ast.IndexExpr:
		c.markCallFun(f.X)
	case *ast.IndexListExpr:
		c.markCallFun(f.X)
	}
}

// callee resolves the called object, unwrapping parens and generic
// instantiation indexes.
func (c *checker) callee(fun ast.Expr) (types.Object, *types.Selection) {
	switch f := ast.Unparen(fun).(type) {
	case *ast.Ident:
		return c.pass.TypesInfo.Uses[f], nil
	case *ast.SelectorExpr:
		if sel, ok := c.pass.TypesInfo.Selections[f]; ok {
			return sel.Obj(), sel
		}
		return c.pass.TypesInfo.Uses[f.Sel], nil
	case *ast.IndexExpr:
		return c.callee(f.X)
	case *ast.IndexListExpr:
		return c.callee(f.X)
	}
	return nil, nil
}

// checkConversion flags converting between string and byte/rune slices
// (copies to a fresh allocation) and boxing a concrete value into an
// interface type.
func (c *checker) checkConversion(call *ast.CallExpr, target types.Type) {
	if len(call.Args) != 1 {
		return
	}
	arg := call.Args[0]
	tv, ok := c.pass.TypesInfo.Types[arg]
	if !ok {
		return
	}
	if tv.Value != nil {
		return // constant-folded
	}
	switch {
	case isString(target) && isByteOrRuneSlice(tv.Type),
		isByteOrRuneSlice(target) && isString(tv.Type):
		c.pass.Reportf(call.Pos(), "string conversion copies to a fresh allocation")
	case isInterface(target) && !types.IsInterface(tv.Type) && !pointerShaped(tv.Type):
		c.pass.Reportf(call.Pos(), "conversion boxes %s into interface %s", tv.Type, target)
	}
}

// checkArgBoxing flags arguments whose concrete values are boxed into
// interface parameters.
func (c *checker) checkArgBoxing(call *ast.CallExpr, sig *types.Signature) {
	if sig == nil || call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		c.checkBoxing(arg, pt)
	}
}

func (c *checker) checkAssign(n *ast.AssignStmt) {
	for _, lhs := range n.Lhs {
		if idx, ok := lhs.(*ast.IndexExpr); ok {
			c.checkMapWrite(idx)
		}
	}
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, lhs := range n.Lhs {
		if n.Tok == token.DEFINE {
			continue // new variable takes the RHS type; nothing boxes
		}
		ltv, ok := c.pass.TypesInfo.Types[lhs]
		if !ok {
			continue
		}
		c.checkBoxing(n.Rhs[i], ltv.Type)
	}
}

// checkBoxing flags storing a non-pointer-shaped concrete value into an
// interface-typed slot.
func (c *checker) checkBoxing(expr ast.Expr, target types.Type) {
	if target == nil || !isInterface(target) {
		return
	}
	tv, ok := c.pass.TypesInfo.Types[expr]
	if !ok || tv.Value != nil {
		return
	}
	t := tv.Type
	if t == nil || types.IsInterface(t) || pointerShaped(t) {
		return
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsUntyped != 0 {
		return // nil and friends
	}
	c.pass.Reportf(expr.Pos(), "boxes %s into interface %s", t, target)
}

func (c *checker) checkMapWrite(idx *ast.IndexExpr) {
	tv, ok := c.pass.TypesInfo.Types[idx.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
		c.pass.Reportf(idx.Pos(), "map write may allocate (bucket growth)")
	}
}

// checkImplementations closes the dynamic-dispatch hole: every named type
// in this package implementing an interface with //smtlint:noalloc methods
// must annotate the corresponding concrete methods. Without this, a call
// through the interface is checked but the implementation behind it is not.
func checkImplementations(pass *lint.Pass) {
	type annotatedIface struct {
		named   *types.Named
		methods []*types.Func
	}
	byIface := map[*types.Named]*annotatedIface{}
	for fn := range pass.Module.Noalloc {
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			continue
		}
		named, ok := sig.Recv().Type().(*types.Named)
		if !ok || !types.IsInterface(named) {
			continue
		}
		ai := byIface[named]
		if ai == nil {
			ai = &annotatedIface{named: named}
			byIface[named] = ai
		}
		ai.methods = append(ai.methods, fn)
	}
	if len(byIface) == 0 {
		return
	}
	ifaces := make([]*annotatedIface, 0, len(byIface))
	for _, ai := range byIface {
		sort.Slice(ai.methods, func(i, j int) bool { return ai.methods[i].Name() < ai.methods[j].Name() })
		ifaces = append(ifaces, ai)
	}
	sort.Slice(ifaces, func(i, j int) bool {
		return ifaces[i].named.Obj().Name() < ifaces[j].named.Obj().Name()
	})

	scope := pass.Pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || types.IsInterface(named) || named.TypeParams().Len() > 0 {
			continue
		}
		ptr := types.NewPointer(named)
		for _, ai := range ifaces {
			iface := ai.named.Underlying().(*types.Interface)
			if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
				continue
			}
			ms := types.NewMethodSet(ptr)
			for _, im := range ai.methods {
				msel := ms.Lookup(pass.Pkg.Types, im.Name())
				if msel == nil {
					continue
				}
				concrete, ok := msel.Obj().(*types.Func)
				if !ok || pass.Noalloc(concrete.Origin()) {
					continue
				}
				ifaceName := ai.named.Obj().Name()
				if p := ai.named.Obj().Pkg(); p != nil {
					ifaceName = p.Name() + "." + ifaceName
				}
				pass.Reportf(concrete.Pos(),
					"%s implements %s, whose method %s is //smtlint:noalloc, but this implementation is not annotated",
					named.Obj().Name(), ifaceName, im.Name())
			}
		}
	}
}

func whitelisted(fullName string) bool {
	if whitelist[fullName] {
		return true
	}
	for _, p := range whitelistPrefixes {
		if strings.HasPrefix(fullName, p) {
			return true
		}
	}
	return false
}

// isInterface reports whether t is a true interface type. A type parameter's
// underlying type is its constraint interface, so types.IsInterface alone
// would misread generic instantiations (e.g. slices.SortFunc's S) as boxing.
func isInterface(t types.Type) bool {
	if _, ok := t.(*types.TypeParam); ok {
		return false
	}
	return types.IsInterface(t)
}

func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
