package steer

import "testing"

func TestDependenceWins(t *testing.T) {
	s := DependenceBalance{BalanceSlack: 8}
	// Both sources in cluster 1, cluster 0 less loaded: dependence wins
	// while imbalance stays within the slack.
	if got := s.Prefer(0, []int{0, 2}, []int{5, 10}, 32); got != 1 {
		t.Errorf("Prefer = %d, want 1 (dependence)", got)
	}
}

func TestBalanceOverride(t *testing.T) {
	s := DependenceBalance{BalanceSlack: 4}
	// Preferred cluster overloaded beyond slack: balance override.
	if got := s.Prefer(0, []int{0, 2}, []int{2, 12}, 32); got != 0 {
		t.Errorf("Prefer = %d, want 0 (balance override)", got)
	}
}

func TestNoSourcesGoesLeastLoaded(t *testing.T) {
	s := DependenceBalance{BalanceSlack: 8}
	if got := s.Prefer(0, []int{0, 0}, []int{9, 3}, 32); got != 1 {
		t.Errorf("Prefer = %d, want 1 (least loaded)", got)
	}
}

func TestTieGoesLeastLoaded(t *testing.T) {
	s := DependenceBalance{BalanceSlack: 8}
	if got := s.Prefer(0, []int{1, 1}, []int{3, 9}, 32); got != 0 {
		t.Errorf("Prefer = %d, want 0 (tie -> least loaded)", got)
	}
}

func TestZeroSlackDisablesOverride(t *testing.T) {
	s := DependenceBalance{}
	if got := s.Prefer(0, []int{0, 2}, []int{0, 31}, 32); got != 1 {
		t.Errorf("Prefer = %d, want 1 (pure dependence)", got)
	}
}

func TestRoundRobinPerThread(t *testing.T) {
	r := NewRoundRobin(2)
	occ := []int{0, 0}
	a := r.Prefer(0, nil, occ, 32)
	b := r.Prefer(0, nil, occ, 32)
	c := r.Prefer(0, nil, occ, 32)
	if a == b || a != c {
		t.Errorf("round robin sequence %d %d %d", a, b, c)
	}
	// Thread 1 has its own cursor.
	if r.Prefer(1, nil, occ, 32) != a {
		t.Error("thread cursors should start aligned")
	}
}

func TestModulo(t *testing.T) {
	m := Modulo{}
	occ := []int{0, 0}
	if m.Prefer(0, nil, occ, 32) != 0 || m.Prefer(1, nil, occ, 32) != 1 {
		t.Error("modulo binding wrong")
	}
	if m.Prefer(2, nil, occ, 32) != 0 {
		t.Error("modulo should wrap")
	}
}

func TestNames(t *testing.T) {
	if (DependenceBalance{}).Name() != "dep-balance" ||
		NewRoundRobin(1).Name() != "round-robin" ||
		(Modulo{}).Name() != "modulo" {
		t.Error("steering names wrong")
	}
}
