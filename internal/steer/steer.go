// Package steer implements the cluster-assignment (steering) logic. The
// baseline uses the dependence- and workload-based algorithm of Canal,
// Parcerisa and González (HPCA 2000), as prescribed by the paper (§3):
// steer an instruction to the cluster where most of its source operands
// reside, breaking ties toward the less-loaded cluster, so that
// inter-cluster communication is minimized while workload stays balanced.
//
// Alternative steering functions (round-robin, modulo) are provided for the
// ablation benchmarks; Raasch et al.'s SMT-cluster evaluation used
// round-robin steering, which DESIGN.md §5 compares against.
package steer

// Steerer chooses a preferred cluster for a uop about to be renamed.
type Steerer interface {
	// Name identifies the steering function.
	Name() string
	// Prefer returns the preferred cluster for a uop of thread t.
	// srcCount[c] is the number of the uop's source operands whose value
	// currently resides in cluster c; occ[c] is the issue-queue occupancy
	// of cluster c and size its capacity. srcCount and occ have one entry
	// per cluster.
	//smtlint:noalloc
	Prefer(t int, srcCount []int, occ []int, size int) int
}

// DependenceBalance is the baseline steering of ref [12]: the cluster
// holding most source operands wins; ties (including no register sources)
// go to the least-occupied cluster; a workload-balance override redirects
// to the least-occupied cluster when the dependence choice is overloaded.
type DependenceBalance struct {
	// BalanceSlack bounds how much fuller (in issue-queue entries) the
	// dependence-preferred cluster may be before the balance override
	// redirects the uop to the least-loaded cluster. 0 disables the
	// override (pure dependence steering with load-based tie-breaking).
	BalanceSlack int
}

// Name implements Steerer.
func (DependenceBalance) Name() string { return "dep-balance" }

// Prefer implements Steerer.
//
//smtlint:noalloc
func (s DependenceBalance) Prefer(t int, srcCount []int, occ []int, size int) int {
	n := len(occ)
	leastLoaded := 0
	for c := 1; c < n; c++ {
		if occ[c] < occ[leastLoaded] {
			leastLoaded = c
		}
	}
	best, bestCount := -1, 0
	tie := false
	for c := 0; c < n; c++ {
		switch {
		case srcCount[c] > bestCount:
			best, bestCount, tie = c, srcCount[c], false
		case srcCount[c] == bestCount && bestCount > 0:
			tie = true
		}
	}
	if best < 0 || tie {
		return leastLoaded
	}
	if s.BalanceSlack > 0 && occ[best]-occ[leastLoaded] > s.BalanceSlack {
		return leastLoaded
	}
	return best
}

// RoundRobin alternates clusters per renamed uop, per thread.
type RoundRobin struct {
	next []int
}

// NewRoundRobin returns a round-robin steerer for n threads.
func NewRoundRobin(n int) *RoundRobin { return &RoundRobin{next: make([]int, n)} }

// Name implements Steerer.
func (*RoundRobin) Name() string { return "round-robin" }

// Prefer implements Steerer.
//
//smtlint:noalloc
func (r *RoundRobin) Prefer(t int, _ []int, occ []int, _ int) int {
	c := r.next[t] % len(occ)
	r.next[t]++
	return c
}

// Modulo statically maps each thread to a home cluster (thread mod
// clusters); used by the PC (private clusters) scheme and as an ablation.
type Modulo struct{}

// Name implements Steerer.
func (Modulo) Name() string { return "modulo" }

// Prefer implements Steerer.
//
//smtlint:noalloc
func (Modulo) Prefer(t int, _ []int, occ []int, _ int) int { return t % len(occ) }
