package interconnect

import "testing"

func TestBandwidthPerCycle(t *testing.T) {
	n := New(Config{Links: 2, Latency: 1})
	if at, ok := n.TryTransfer(10); !ok || at != 11 {
		t.Fatalf("first transfer: at=%d ok=%v", at, ok)
	}
	if _, ok := n.TryTransfer(10); !ok {
		t.Fatal("second link should be grantable")
	}
	if _, ok := n.TryTransfer(10); ok {
		t.Fatal("third transfer in one cycle granted")
	}
	if _, ok := n.TryTransfer(11); !ok {
		t.Fatal("links did not reset on new cycle")
	}
	if n.Transfers() != 3 || n.Denied() != 1 {
		t.Errorf("counters transfers=%d denied=%d", n.Transfers(), n.Denied())
	}
}

func TestLatency(t *testing.T) {
	n := New(Config{Links: 1, Latency: 3})
	if at, _ := n.TryTransfer(100); at != 103 {
		t.Errorf("arrival %d, want 103", at)
	}
}

func TestDefaults(t *testing.T) {
	n := New(Config{})
	if n.Config().Links != 2 || n.Config().Latency != 1 {
		t.Errorf("Table 1 defaults not applied: %+v", n.Config())
	}
}
