// Package interconnect models the point-to-point links between clusters.
// Inter-cluster communication happens via copy uops generated on demand by
// the rename logic (§3); a ready copy claims a link slot for one cycle and
// delivers its value to the destination cluster's register file after the
// link latency. Link count and latency default to Table 1 (2 links,
// 1 cycle) and are sweepable machine-shape axes (`links`/`link_latency` in
// campaign manifests, -links/-link-latency in expdriver figure mode).
package interconnect

// Config sizes the interconnect.
type Config struct {
	// Links is the number of point-to-point links (transfers per cycle).
	Links int
	// Latency is the transfer latency in cycles.
	Latency int
}

// DefaultConfig returns the Table 1 interconnect: 2 links, 1 cycle.
func DefaultConfig() Config { return Config{Links: 2, Latency: 1} }

// Network arbitrates link bandwidth per cycle. It is not safe for
// concurrent use.
type Network struct {
	cfg       Config
	cycle     int64
	used      int
	transfers uint64
	denied    uint64
}

// WithDefaults returns the configuration with zero fields replaced by the
// Table 1 defaults — the exact values New would run with.
func (c Config) WithDefaults() Config {
	if c.Links <= 0 {
		c.Links = DefaultConfig().Links
	}
	if c.Latency <= 0 {
		c.Latency = DefaultConfig().Latency
	}
	return c
}

// New returns a network with cfg (zero fields take defaults).
func New(cfg Config) *Network {
	return &Network{cfg: cfg.WithDefaults()}
}

// Config returns the configuration in use.
func (n *Network) Config() Config { return n.cfg }

// TryTransfer claims a link slot at cycle now. On success it returns the
// cycle at which the value arrives at the destination cluster and true.
//
//smtlint:noalloc
func (n *Network) TryTransfer(now int64) (arriveAt int64, ok bool) {
	if now != n.cycle {
		n.cycle = now
		n.used = 0
	}
	if n.used >= n.cfg.Links {
		n.denied++
		return 0, false
	}
	n.used++
	n.transfers++
	return now + int64(n.cfg.Latency), true
}

// Transfers returns the number of completed link grants.
func (n *Network) Transfers() uint64 { return n.transfers }

// Denied returns the number of link requests rejected for bandwidth.
func (n *Network) Denied() uint64 { return n.denied }
