// Package xrand provides a small, fast, deterministic pseudo-random number
// generator used by the trace generator and the experiment harness.
//
// Reproducibility is a hard requirement: every figure in the paper
// reproduction must regenerate bit-identical workloads across runs and Go
// versions, so the simulator cannot depend on math/rand's unspecified
// algorithm evolution. xrand implements splitmix64 (for seeding) and
// xoshiro256** (for streams), both with published reference outputs.
package xrand

import "math/bits"

// SplitMix64 advances the splitmix64 state in *s and returns the next value.
// It is used to derive independent stream seeds from a single user seed.
func SplitMix64(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a xoshiro256** generator. The zero value is invalid; construct
// with New. Rand is not safe for concurrent use; give each goroutine its own.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded deterministically from seed.
// Distinct seeds give statistically independent streams.
func New(seed uint64) *Rand {
	var r Rand
	sm := seed
	for i := range r.s {
		r.s[i] = SplitMix64(&sm)
	}
	// xoshiro must not start in the all-zero state; splitmix64 of any seed
	// cannot yield four zero words, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return &r
}

//smtlint:noalloc
func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
//
//smtlint:noalloc
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
//
//smtlint:noalloc
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	// Lemire's nearly-divisionless bounded generation. The slight modulo
	// bias of the simple approach would be harmless here, but rejection
	// keeps streams portable if bounds change.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := bits.Mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
//
//smtlint:noalloc
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
//
//smtlint:noalloc
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// Geometric returns a sample from a geometric distribution with success
// probability p, i.e. the number of failures before the first success
// (support {0, 1, 2, ...}, mean (1-p)/p). p must be in (0, 1].
//
//smtlint:noalloc
func (r *Rand) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("xrand: Geometric requires 0 < p <= 1")
	}
	if p == 1 {
		return 0
	}
	n := 0
	for !r.Bool(p) {
		n++
		if n > 1<<20 {
			// Statistically unreachable for sane p; bounds a broken
			// caller rather than spinning forever.
			return n
		}
	}
	return n
}

// Pick returns an index in [0, len(weights)) with probability proportional
// to weights[i]. Weights must be non-negative with a positive sum.
//
//smtlint:noalloc
func (r *Rand) Pick(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	return r.PickTotal(weights, total)
}

// PickTotal is Pick with the weight sum precomputed by the caller — the
// same draw arithmetic without re-summing fixed weights on every call.
// total must equal the left-to-right float64 sum of weights.
//
//smtlint:noalloc
func (r *Rand) PickTotal(weights []float64, total float64) int {
	if total <= 0 {
		panic("xrand: Pick with non-positive total weight")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
