package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between distinct streams", same)
	}
}

func TestSplitMix64Reference(t *testing.T) {
	// Reference outputs for seed 0 from the published splitmix64.c.
	s := uint64(0)
	want := []uint64{
		0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f,
	}
	for i, w := range want {
		if got := SplitMix64(&s); got != w {
			t.Fatalf("SplitMix64 step %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 10, 1000, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	r := New(1)
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) should panic", n)
				}
			}()
			r.Intn(n)
		}()
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(99)
	const n, samples = 10, 100000
	counts := make([]int, n)
	for i := 0; i < samples; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(samples) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Errorf("bucket %d count %d deviates >10%% from %v", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	total := 0.0
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		total += f
	}
	if mean := total / 100000; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean %v far from 0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(5)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if frac := float64(hits) / n; math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency %v", frac)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(11)
	const p, n = 0.25, 200000
	total := 0
	for i := 0; i < n; i++ {
		total += r.Geometric(p)
	}
	mean := float64(total) / n
	want := (1 - p) / p // 3.0
	if math.Abs(mean-want) > 0.1 {
		t.Errorf("Geometric(%v) mean %v, want ~%v", p, mean, want)
	}
}

func TestGeometricEdge(t *testing.T) {
	r := New(1)
	if r.Geometric(1) != 0 {
		t.Error("Geometric(1) must be 0")
	}
	for _, p := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Geometric(%v) should panic", p)
				}
			}()
			r.Geometric(p)
		}()
	}
}

func TestPickWeights(t *testing.T) {
	r := New(17)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Pick(weights)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight bucket picked %d times", counts[1])
	}
	if frac := float64(counts[2]) / n; math.Abs(frac-0.75) > 0.01 {
		t.Errorf("weight-3 bucket frequency %v, want ~0.75", frac)
	}
}

func TestPickPanicsOnBadWeights(t *testing.T) {
	r := New(1)
	defer func() {
		if recover() == nil {
			t.Error("Pick with zero total should panic")
		}
	}()
	r.Pick([]float64{0, 0})
}

// Property: Intn reduction built on bits.Mul64 keeps every draw in range
// (the Lemire rejection loop depends on the full 128-bit product).
func TestIntnRangeProperty(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		bound := int(n) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			if v := r.Intn(bound); v < 0 || v >= bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Intn(n) is deterministic given the same seed and call sequence.
func TestIntnDeterministicProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		bound := int(n%100) + 1
		a, b := New(seed), New(seed)
		for i := 0; i < 20; i++ {
			if a.Intn(bound) != b.Intn(bound) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
