package bpred

import (
	"testing"
	"testing/quick"
)

func newTest(hist int) *Predictor {
	cfg := DefaultConfig(2)
	cfg.HistoryBits = hist
	return New(cfg)
}

func TestLearnsBiasedBranch(t *testing.T) {
	p := newTest(2)
	pc := uint64(0x400000)
	miss := 0
	for i := 0; i < 1000; i++ {
		taken, ckpt := p.Predict(0, pc)
		mis := taken != true
		p.Resolve(0, pc, ckpt, true, mis)
		if mis && i > 10 {
			miss++
		}
	}
	if miss > 0 {
		t.Errorf("%d mispredictions on an always-taken branch after warmup", miss)
	}
}

func TestLearnsAlternatingWithHistory(t *testing.T) {
	p := newTest(4)
	pc := uint64(0x400040)
	miss := 0
	for i := 0; i < 2000; i++ {
		actual := i%2 == 0
		pred, ckpt := p.Predict(0, pc)
		mis := pred != actual
		p.Resolve(0, pc, ckpt, actual, mis)
		if mis && i > 200 {
			miss++
		}
	}
	if rate := float64(miss) / 1800; rate > 0.05 {
		t.Errorf("alternating branch mispredict rate %.3f after warmup", rate)
	}
}

func TestHistoryRestoredOnMispredict(t *testing.T) {
	p := newTest(8)
	pc := uint64(0x400080)
	// Predict, force a mispredict resolution, and verify the history
	// equals checkpoint + actual outcome.
	_, ckpt := p.Predict(0, pc)
	p.Resolve(0, pc, ckpt, true, true)
	want := ((ckpt << 1) | 1) & p.histMask
	if p.history[0] != want {
		t.Errorf("history %b, want %b", p.history[0], want)
	}
}

func TestRestoreHistory(t *testing.T) {
	p := newTest(8)
	p.Predict(0, 0x1000)
	p.Predict(0, 0x2000)
	p.RestoreHistory(0, 0b1010)
	if p.history[0] != 0b1010 {
		t.Errorf("history %b after restore", p.history[0])
	}
}

func TestPerThreadHistoriesIndependent(t *testing.T) {
	p := newTest(8)
	h0 := p.history[0]
	p.Predict(1, 0x400000)
	if p.history[0] != h0 {
		t.Error("thread 1 prediction altered thread 0 history")
	}
}

func TestIndirect(t *testing.T) {
	p := newTest(2)
	if p.PredictIndirect(0x5000) != 0 {
		t.Error("unseen indirect target should be 0")
	}
	p.UpdateIndirect(0x5000, 0xbeef)
	if p.PredictIndirect(0x5000) != 0xbeef {
		t.Error("indirect target not recorded")
	}
}

func TestStatsCounting(t *testing.T) {
	p := newTest(2)
	for i := 0; i < 10; i++ {
		_, ckpt := p.Predict(0, 0x100)
		p.Resolve(0, 0x100, ckpt, i%2 == 0, i < 3)
	}
	lookups, mis := p.Stats()
	if lookups != 10 || mis != 3 {
		t.Errorf("stats = %d/%d, want 10/3", lookups, mis)
	}
	if p.MispredictRate() != 0.3 {
		t.Errorf("rate %v", p.MispredictRate())
	}
	if New(DefaultConfig(1)).MispredictRate() != 0 {
		t.Error("fresh predictor rate should be 0")
	}
}

func TestCeilPow2(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 1000: 1024, 32768: 32768}
	for in, want := range cases {
		if got := ceilPow2(in); got != want {
			t.Errorf("ceilPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestDegenerateConfigs(t *testing.T) {
	// Zero/negative parameters must be normalized, not crash.
	p := New(Config{})
	if taken, _ := p.Predict(0, 0x1); taken != true {
		t.Log("weakly-taken init predicts taken") // informational
	}
	p2 := New(Config{GshareEntries: -5, HistoryBits: 99, IndirectEntries: -1, NumThreads: -2})
	p2.Predict(0, 0x4)
}

// Property: Predict never mutates counters (only Resolve trains), so two
// predictors fed identical Resolve sequences stay identical.
func TestDeterministicProperty(t *testing.T) {
	f := func(pcs []uint8, outcomes []bool) bool {
		a, b := newTest(4), newTest(4)
		n := len(pcs)
		if len(outcomes) < n {
			n = len(outcomes)
		}
		for i := 0; i < n; i++ {
			pc := uint64(pcs[i]) << 2
			ta, ca := a.Predict(0, pc)
			tb, cb := b.Predict(0, pc)
			if ta != tb || ca != cb {
				return false
			}
			a.Resolve(0, pc, ca, outcomes[i], ta != outcomes[i])
			b.Resolve(0, pc, cb, outcomes[i], tb != outcomes[i])
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
