// Package bpred implements the front-end branch prediction of the paper's
// baseline machine (Table 1): a gshare conditional predictor with 32 K
// two-bit counters and a per-thread global history register (the history is
// the only front-end structure private per thread, §3), plus an indirect
// target buffer.
//
// The predictor is consulted at fetch and trained at branch resolution.
// History is updated speculatively at fetch with the prediction; on a
// misprediction the core restores the checkpointed history and reapplies the
// actual outcome.
package bpred

// Config sizes the predictor structures.
type Config struct {
	// GshareEntries is the number of 2-bit counters (power of two).
	GshareEntries int
	// HistoryBits is the global-history length per thread.
	HistoryBits int
	// IndirectEntries is the number of indirect-target slots (power of two).
	IndirectEntries int
	// NumThreads is the number of hardware threads (one history each).
	NumThreads int
}

// DefaultConfig returns the Table 1 configuration for n threads.
//
// The history length is deliberately short: the synthetic traces carry
// little cross-branch outcome correlation, so long histories only spread
// each site over more counters and alias destructively (see
// trace.Generator). Two bits keeps the predictor at the per-site-bimodal
// operating point, which yields the realistic 3–15 % misprediction rates
// the paper's workload classes exhibit.
func DefaultConfig(n int) Config {
	return Config{
		GshareEntries:   32 * 1024,
		HistoryBits:     2,
		IndirectEntries: 4096,
		NumThreads:      n,
	}
}

// Predictor is a gshare predictor with per-thread histories.
// It is not safe for concurrent use.
type Predictor struct {
	cfg      Config
	counters []uint8 // 2-bit saturating counters
	history  []uint64
	indirect []uint64
	mask     uint64
	histMask uint64
	indMask  uint64

	lookups    uint64
	mispredict uint64
}

// New builds a predictor from cfg. Entry counts are rounded up to powers of
// two. Counters start weakly taken.
func New(cfg Config) *Predictor {
	if cfg.GshareEntries <= 0 {
		cfg.GshareEntries = 1
	}
	if cfg.IndirectEntries <= 0 {
		cfg.IndirectEntries = 1
	}
	if cfg.NumThreads <= 0 {
		cfg.NumThreads = 1
	}
	if cfg.HistoryBits <= 0 {
		cfg.HistoryBits = 1
	}
	if cfg.HistoryBits > 63 {
		cfg.HistoryBits = 63
	}
	ge := ceilPow2(cfg.GshareEntries)
	ie := ceilPow2(cfg.IndirectEntries)
	p := &Predictor{
		cfg:      cfg,
		counters: make([]uint8, ge),
		history:  make([]uint64, cfg.NumThreads),
		indirect: make([]uint64, ie),
		mask:     uint64(ge - 1),
		histMask: (1 << uint(cfg.HistoryBits)) - 1,
		indMask:  uint64(ie - 1),
	}
	for i := range p.counters {
		p.counters[i] = 2 // weakly taken
	}
	return p
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

//smtlint:noalloc
func (p *Predictor) index(thread int, pc uint64) uint64 {
	return ((pc >> 2) ^ p.history[thread]) & p.mask
}

// Predict returns the taken/not-taken prediction for the branch at pc and a
// history checkpoint to restore on misprediction. It speculatively updates
// the thread's history with the prediction.
//
//smtlint:noalloc
func (p *Predictor) Predict(thread int, pc uint64) (taken bool, checkpoint uint64) {
	p.lookups++
	checkpoint = p.history[thread]
	idx := p.index(thread, pc)
	taken = p.counters[idx] >= 2
	p.pushHistory(thread, taken)
	return taken, checkpoint
}

//smtlint:noalloc
func (p *Predictor) pushHistory(thread int, taken bool) {
	h := p.history[thread] << 1
	if taken {
		h |= 1
	}
	p.history[thread] = h & p.histMask
}

// Resolve trains the predictor with the actual outcome of the branch at pc.
// mispredicted tells the predictor to restore the checkpointed history and
// reapply the actual outcome (the wrong speculative history is discarded).
//
//smtlint:noalloc
func (p *Predictor) Resolve(thread int, pc uint64, checkpoint uint64, taken, mispredicted bool) {
	// Train the counter using the history the branch was predicted with.
	idx := ((pc >> 2) ^ checkpoint) & p.mask
	c := p.counters[idx]
	if taken {
		if c < 3 {
			c++
		}
	} else if c > 0 {
		c--
	}
	p.counters[idx] = c
	if mispredicted {
		p.mispredict++
		p.history[thread] = checkpoint & p.histMask
		p.pushHistory(thread, taken)
	}
}

// RestoreHistory rewinds thread's global history to checkpoint. The core
// uses it when squashing fetched-but-unresolved branches (flushes), whose
// speculative history pushes must be undone without training.
//
//smtlint:noalloc
func (p *Predictor) RestoreHistory(thread int, checkpoint uint64) {
	p.history[thread] = checkpoint & p.histMask
}

// PredictIndirect returns the predicted target for the indirect branch at
// pc, or 0 if no target has been observed.
func (p *Predictor) PredictIndirect(pc uint64) uint64 {
	return p.indirect[(pc>>2)&p.indMask]
}

// UpdateIndirect records target for the indirect branch at pc.
func (p *Predictor) UpdateIndirect(pc uint64, target uint64) {
	p.indirect[(pc>>2)&p.indMask] = target
}

// Stats returns the number of lookups and mispredictions so far.
func (p *Predictor) Stats() (lookups, mispredicts uint64) {
	return p.lookups, p.mispredict
}

// MispredictRate returns mispredictions per lookup (0 when unused).
func (p *Predictor) MispredictRate() float64 {
	if p.lookups == 0 {
		return 0
	}
	return float64(p.mispredict) / float64(p.lookups)
}
