// Package frontend provides the front-end and bookkeeping structures of the
// baseline machine (§3): per-thread fetch queues (the private queues inside
// the thread-selection component), per-thread register alias tables that
// track in which cluster(s) each logical register has a live physical copy,
// and the per-thread ROB sections.
package frontend

import (
	"clustersmt/internal/isa"
	"clustersmt/internal/mob"
)

// MaxClusters bounds the number of clusters the per-register cluster masks
// support. The paper's machine has two; four leaves headroom for studies.
const MaxClusters = 4

// RegMap records where a logical register's current value lives: a valid
// bit and physical index per cluster. A register with no valid bits reads
// its architectural (pre-trace) value and is always ready.
type RegMap struct {
	Valid [MaxClusters]bool
	Phys  [MaxClusters]int32
}

// AnyValid reports whether any cluster holds a live copy.
//
//smtlint:noalloc
func (m *RegMap) AnyValid() bool {
	for _, v := range m.Valid {
		if v {
			return true
		}
	}
	return false
}

// RAT is one thread's register alias table.
type RAT struct {
	maps [isa.NumLogicalRegs]RegMap
}

// Get returns the mapping of logical register r.
//
//smtlint:noalloc
func (r *RAT) Get(reg int16) RegMap { return r.maps[reg] }

// GetRef returns a read-only pointer to the mapping of logical register r,
// avoiding the 20-byte copy on the rename hot path. Callers must not mutate
// through it; use Set/SetCluster/Define.
//
//smtlint:noalloc
func (r *RAT) GetRef(reg int16) *RegMap { return &r.maps[reg] }

// Set replaces the mapping of logical register reg.
//
//smtlint:noalloc
func (r *RAT) Set(reg int16, m RegMap) { r.maps[reg] = m }

// SetCluster adds/overwrites the mapping of reg in cluster c.
//
//smtlint:noalloc
func (r *RAT) SetCluster(reg int16, c int, phys int32) {
	r.maps[reg].Valid[c] = true
	r.maps[reg].Phys[c] = phys
}

// Define makes reg live only in cluster c at phys (a new architectural
// definition kills copies in other clusters).
//
//smtlint:noalloc
func (r *RAT) Define(reg int16, c int, phys int32) {
	var m RegMap
	m.Valid[c] = true
	m.Phys[c] = phys
	r.maps[reg] = m
}

// ROBEntry is one in-flight uop. Entries are pooled by the core; the
// Reset method restores a pooled entry to a blank state.
type ROBEntry struct {
	Uop    isa.Uop
	Thread int
	// Seq is the per-thread program-order sequence number.
	Seq uint64
	// ID is a globally unique, monotonically increasing age tag used for
	// oldest-first issue selection.
	ID uint64
	// TraceIdx is the index of the uop in its thread's trace, or -1 for
	// wrong-path and copy uops.
	TraceIdx  int
	WrongPath bool
	// Cluster is the back-end cluster the uop was steered to.
	Cluster int

	Issued    bool
	Completed bool
	Squashed  bool

	// Destination register allocation; DstPhys < 0 when the uop writes no
	// register.
	DstKind isa.RegKind
	DstPhys int32
	// OldMap is the destination logical register's mapping before this
	// uop renamed it, used for freeing at commit and rollback at squash.
	OldMap RegMap

	// Branch state.
	PredTaken      bool
	Mispredicted   bool
	HistCheckpoint uint64

	// Memory state. MissNotified is set while the miss-start event sent to
	// the policies has not yet been balanced by a miss-end (completion or
	// squash).
	MOBEntry     *mob.Entry
	MissedL2     bool
	MissNotified bool

	// InWheel marks an entry with a pending completion event; squashed
	// entries stay owned by the event wheel until it drops them.
	InWheel bool
	// WheelNext chains entries completing in the same cycle (the core's
	// event wheel is an intrusive FIFO list per bucket, so scheduling a
	// completion never allocates). Owned by the core; nil while not queued.
	WheelNext *ROBEntry

	// Copy state: the value is read from CopySrcPhys in cluster SrcCluster
	// and written to DstPhys in Cluster. CopyLogReg is the logical register
	// being replicated (needed to undo the RAT update on squash).
	SrcCluster  int
	CopySrcPhys int32
	CopyLogReg  int16

	// Renamed source operands. A negative physical index means the source
	// is immediately ready (architectural live-in). Sources of non-copy
	// uops always live in the entry's own cluster (copies were inserted
	// to guarantee it).
	NumSrc  int
	SrcPhys [2]int32
	SrcKind [2]isa.RegKind

	// WaitCount is the number of source registers still pending under
	// event-driven wakeup; the entry joins its issue queue's ready list
	// when register-ready broadcasts drive it to zero.
	WaitCount int8

	// IQSlot is the issue-queue slot handle returned by Insert, enabling
	// O(1) removal at issue and squash; -1 while not queued.
	IQSlot int32
}

// Reset blanks e for reuse from a pool.
//
//smtlint:noalloc
func (e *ROBEntry) Reset() {
	*e = ROBEntry{DstPhys: -1, CopySrcPhys: -1, TraceIdx: -1, IQSlot: -1}
	e.SrcPhys[0], e.SrcPhys[1] = -1, -1
}

// IsCopy reports whether the entry is an inter-cluster copy.
//
//smtlint:noalloc
func (e *ROBEntry) IsCopy() bool { return e.Uop.Class == isa.Copy }

// ROB is one thread's reorder-buffer section (§3: the ROB is split into as
// many sections as running threads). Capacity 0 means unbounded (used by
// the §5.1 issue-queue study).
//
// Storage is a ring buffer over a fixed pointer array sized from the
// configured capacity. The previous slice-of-pointers layout advanced the
// slice head on every PopHead, so append's spare capacity was consumed
// permanently and Push reallocated the whole backing array every
// capacity-many commits — the second-largest allocation site in simulator
// profiles. The ring reuses its slots forever; only the unbounded
// configuration can grow it (by doubling, amortized and transient).
type ROB struct {
	capacity int
	buf      []*ROBEntry
	head     int // index of the oldest entry
	n        int
}

// NewROB returns a ROB section with the given capacity (0 = unbounded).
func NewROB(capacity int) *ROB {
	size := capacity
	if capacity <= 0 {
		size = 64 // unbounded: start small, grow by doubling
	}
	return &ROB{capacity: capacity, buf: make([]*ROBEntry, size)}
}

// Capacity returns the configured capacity (0 = unbounded).
//
//smtlint:noalloc
func (r *ROB) Capacity() int { return r.capacity }

// Len returns the number of in-flight entries.
//
//smtlint:noalloc
func (r *ROB) Len() int { return r.n }

// Free returns the number of allocatable entries; unbounded ROBs always
// report a large positive number.
//
//smtlint:noalloc
func (r *ROB) Free() int {
	if r.capacity <= 0 {
		return 1 << 30
	}
	return r.capacity - r.n
}

// idx maps logical position i (0 = oldest) to a buffer index.
//
//smtlint:noalloc
func (r *ROB) idx(i int) int {
	i += r.head
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	return i
}

// grow doubles an unbounded ROB's ring, relinearizing the entries.
func (r *ROB) grow() {
	nb := make([]*ROBEntry, 2*len(r.buf))
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[r.idx(i)]
	}
	r.buf = nb
	r.head = 0
}

// Push appends e at the tail. It reports false when the ROB is full.
//
//smtlint:noalloc
func (r *ROB) Push(e *ROBEntry) bool {
	if r.capacity > 0 && r.n >= r.capacity {
		return false
	}
	if r.n == len(r.buf) {
		//smtlint:allow amortized doubling for the unbounded-ROB configuration
		r.grow()
	}
	r.buf[r.idx(r.n)] = e
	r.n++
	return true
}

// Head returns the oldest entry, or nil when empty.
//
//smtlint:noalloc
func (r *ROB) Head() *ROBEntry {
	if r.n == 0 {
		return nil
	}
	return r.buf[r.head]
}

// PopHead removes and returns the oldest entry.
//
//smtlint:noalloc
func (r *ROB) PopHead() *ROBEntry {
	e := r.buf[r.head]
	r.buf[r.head] = nil
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.n--
	return e
}

// Tail returns the youngest entry, or nil when empty.
//
//smtlint:noalloc
func (r *ROB) Tail() *ROBEntry {
	if r.n == 0 {
		return nil
	}
	return r.buf[r.idx(r.n-1)]
}

// PopTail removes and returns the youngest entry (squash path).
//
//smtlint:noalloc
func (r *ROB) PopTail() *ROBEntry {
	i := r.idx(r.n - 1)
	e := r.buf[i]
	r.buf[i] = nil
	r.n--
	return e
}

// At returns the i-th oldest entry.
//
//smtlint:noalloc
func (r *ROB) At(i int) *ROBEntry { return r.buf[r.idx(i)] }

// FetchedUop is a uop sitting in a thread's private fetch queue together
// with the front-end state captured at fetch time.
type FetchedUop struct {
	Uop isa.Uop
	// TraceIdx is the trace position (-1 for wrong-path uops).
	TraceIdx  int
	WrongPath bool
	// Branch prediction state captured at fetch.
	PredTaken      bool
	Mispredicted   bool
	HistCheckpoint uint64
}

// FetchQueue is one thread's private fetch queue, a bounded ring-buffer
// FIFO sized to avoid any allocation in the fetch loop.
type FetchQueue struct {
	buf  []FetchedUop
	head int
	n    int
}

// NewFetchQueue returns a queue with the given capacity.
func NewFetchQueue(capacity int) *FetchQueue {
	if capacity <= 0 {
		capacity = 32
	}
	return &FetchQueue{buf: make([]FetchedUop, capacity)}
}

// Len returns the number of queued uops.
//
//smtlint:noalloc
func (q *FetchQueue) Len() int { return q.n }

// Free returns the remaining capacity.
//
//smtlint:noalloc
func (q *FetchQueue) Free() int { return len(q.buf) - q.n }

// Push appends u; it reports false when full.
//
//smtlint:noalloc
func (q *FetchQueue) Push(u FetchedUop) bool {
	if q.n >= len(q.buf) {
		return false
	}
	i := q.head + q.n
	if i >= len(q.buf) {
		i -= len(q.buf)
	}
	q.buf[i] = u
	q.n++
	return true
}

// Peek returns the oldest queued uop without removing it. It must not be
// called on an empty queue.
//
//smtlint:noalloc
func (q *FetchQueue) Peek() *FetchedUop { return &q.buf[q.head] }

// Pop removes and returns the oldest queued uop. It must not be called on
// an empty queue.
//
//smtlint:noalloc
func (q *FetchQueue) Pop() FetchedUop {
	u := q.buf[q.head]
	q.head++
	if q.head == len(q.buf) {
		q.head = 0
	}
	q.n--
	return u
}

// Each calls fn on every queued uop in fetch order; it stops early when fn
// returns false.
//
//smtlint:noalloc
func (q *FetchQueue) Each(fn func(u *FetchedUop) bool) {
	i := q.head
	for k := 0; k < q.n; k++ {
		if !fn(&q.buf[i]) {
			return
		}
		i++
		if i == len(q.buf) {
			i = 0
		}
	}
}

// Clear empties the queue (squash/redirect path).
//
//smtlint:noalloc
func (q *FetchQueue) Clear() {
	q.head = 0
	q.n = 0
}
