package frontend

import (
	"testing"
	"testing/quick"

	"clustersmt/internal/isa"
)

func TestRATDefineAndCopies(t *testing.T) {
	var r RAT
	if m0 := r.Get(3); m0.AnyValid() {
		t.Fatal("fresh RAT must be empty")
	}
	r.Define(3, 0, 17)
	m := r.Get(3)
	if !m.Valid[0] || m.Phys[0] != 17 || m.Valid[1] {
		t.Fatalf("after Define: %+v", m)
	}
	// A copy adds a second cluster without killing the first.
	r.SetCluster(3, 1, 9)
	m = r.Get(3)
	if !m.Valid[0] || !m.Valid[1] || m.Phys[1] != 9 {
		t.Fatalf("after SetCluster: %+v", m)
	}
	// A new definition kills all other copies.
	r.Define(3, 1, 30)
	m = r.Get(3)
	if m.Valid[0] || !m.Valid[1] || m.Phys[1] != 30 {
		t.Fatalf("after redefine: %+v", m)
	}
}

func TestRATSetRestores(t *testing.T) {
	var r RAT
	r.Define(5, 0, 1)
	old := r.Get(5)
	r.Define(5, 1, 2)
	r.Set(5, old) // squash rollback
	if m := r.Get(5); !m.Valid[0] || m.Phys[0] != 1 || m.Valid[1] {
		t.Fatalf("rollback failed: %+v", m)
	}
}

func TestROBBoundedAndOrder(t *testing.T) {
	r := NewROB(3)
	es := []*ROBEntry{{Seq: 1}, {Seq: 2}, {Seq: 3}}
	for _, e := range es {
		if !r.Push(e) {
			t.Fatal("push within capacity failed")
		}
	}
	if r.Push(&ROBEntry{Seq: 4}) {
		t.Fatal("push beyond capacity succeeded")
	}
	if r.Free() != 0 || r.Len() != 3 {
		t.Fatal("accounting wrong")
	}
	if r.Head().Seq != 1 || r.Tail().Seq != 3 || r.At(1).Seq != 2 {
		t.Fatal("ordering accessors wrong")
	}
	if r.PopTail().Seq != 3 || r.PopHead().Seq != 1 {
		t.Fatal("pop order wrong")
	}
	if r.Len() != 1 {
		t.Fatal("length after pops")
	}
}

func TestROBUnbounded(t *testing.T) {
	r := NewROB(0)
	for i := 0; i < 10000; i++ {
		if !r.Push(&ROBEntry{Seq: uint64(i)}) {
			t.Fatal("unbounded ROB rejected a push")
		}
	}
	if r.Free() < 1<<20 {
		t.Fatal("unbounded ROB should report huge free space")
	}
	if r.Capacity() != 0 {
		t.Fatal("capacity should echo configuration")
	}
}

func TestROBEmptyHead(t *testing.T) {
	r := NewROB(4)
	if r.Head() != nil || r.Tail() != nil {
		t.Fatal("empty ROB accessors must return nil")
	}
}

func TestROBEntryReset(t *testing.T) {
	e := &ROBEntry{Seq: 9, DstPhys: 5, Issued: true, NumSrc: 2}
	e.SrcPhys[0] = 3
	e.Reset()
	if e.Seq != 0 || e.DstPhys != -1 || e.Issued || e.NumSrc != 0 ||
		e.SrcPhys[0] != -1 || e.SrcPhys[1] != -1 || e.CopySrcPhys != -1 || e.TraceIdx != -1 {
		t.Fatalf("Reset left state: %+v", e)
	}
}

func TestIsCopy(t *testing.T) {
	e := &ROBEntry{}
	e.Reset()
	e.Uop.Class = isa.Copy
	if !e.IsCopy() {
		t.Fatal("copy detection")
	}
}

func TestFetchQueueFIFOAndWrap(t *testing.T) {
	q := NewFetchQueue(4)
	push := func(idx int) bool { return q.Push(FetchedUop{TraceIdx: idx}) }
	for i := 0; i < 4; i++ {
		if !push(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if push(9) {
		t.Fatal("push into full queue succeeded")
	}
	if q.Pop().TraceIdx != 0 || q.Pop().TraceIdx != 1 {
		t.Fatal("FIFO order broken")
	}
	// Wrap around the ring.
	push(4)
	push(5)
	got := []int{q.Pop().TraceIdx, q.Pop().TraceIdx, q.Pop().TraceIdx, q.Pop().TraceIdx}
	want := []int{2, 3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("wrap order %v, want %v", got, want)
		}
	}
	if q.Len() != 0 || q.Free() != 4 {
		t.Fatal("accounting after drain")
	}
}

func TestFetchQueuePeekEachClear(t *testing.T) {
	q := NewFetchQueue(8)
	for i := 0; i < 5; i++ {
		q.Push(FetchedUop{TraceIdx: i})
	}
	if q.Peek().TraceIdx != 0 {
		t.Fatal("peek wrong")
	}
	var seen []int
	q.Each(func(u *FetchedUop) bool {
		seen = append(seen, u.TraceIdx)
		return u.TraceIdx < 2
	})
	if len(seen) != 3 || seen[2] != 2 {
		t.Fatalf("Each visited %v", seen)
	}
	q.Clear()
	if q.Len() != 0 {
		t.Fatal("clear failed")
	}
}

// Property: the fetch queue behaves as a bounded FIFO under arbitrary
// push/pop interleavings (model-based check against a slice).
func TestFetchQueueModelProperty(t *testing.T) {
	f := func(ops []bool) bool {
		q := NewFetchQueue(8)
		var model []int
		next := 0
		for _, isPush := range ops {
			if isPush {
				ok := q.Push(FetchedUop{TraceIdx: next})
				if ok != (len(model) < 8) {
					return false
				}
				if ok {
					model = append(model, next)
				}
				next++
			} else if len(model) > 0 {
				if q.Pop().TraceIdx != model[0] {
					return false
				}
				model = model[1:]
			}
			if q.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
