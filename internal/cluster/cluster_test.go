package cluster

import (
	"testing"
	"testing/quick"

	"clustersmt/internal/isa"
)

func TestIssueQueueBasics(t *testing.T) {
	q := NewIssueQueue[int](4, 2)
	if q.Capacity() != 4 || q.Len() != 0 || q.Free() != 4 {
		t.Fatal("fresh queue accounting")
	}
	for i := 1; i <= 4; i++ {
		if _, ok := q.Insert(i, i%2); !ok {
			t.Fatalf("insert %d failed", i)
		}
	}
	if _, ok := q.Insert(5, 0); ok {
		t.Fatal("insert into full queue succeeded")
	}
	if q.Occupancy(0) != 2 || q.Occupancy(1) != 2 {
		t.Fatal("occupancy wrong")
	}
}

func TestIssueQueueAgeOrder(t *testing.T) {
	q := NewIssueQueue[int](8, 1)
	for i := 1; i <= 5; i++ {
		q.Insert(i, 0)
	}
	q.Remove(3)
	var got []int
	q.Scan(func(v, _ int) bool {
		got = append(got, v)
		return true
	})
	want := []int{1, 2, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("scan %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan %v, want %v (age order violated)", got, want)
		}
	}
}

func TestIssueQueueScanEarlyStop(t *testing.T) {
	q := NewIssueQueue[int](8, 1)
	for i := 1; i <= 5; i++ {
		q.Insert(i, 0)
	}
	n := 0
	q.Scan(func(v, _ int) bool {
		n++
		return v < 2
	})
	if n != 2 {
		t.Errorf("scan visited %d entries, want 2", n)
	}
}

func TestIssueQueueRemove(t *testing.T) {
	q := NewIssueQueue[int](4, 2)
	q.Insert(7, 1)
	if !q.Remove(7) {
		t.Fatal("remove of present payload failed")
	}
	if q.Remove(7) {
		t.Fatal("remove of absent payload succeeded")
	}
	if q.Occupancy(1) != 0 || q.Len() != 0 {
		t.Fatal("accounting after remove")
	}
}

func TestIssueQueueRemoveIf(t *testing.T) {
	q := NewIssueQueue[int](8, 2)
	for i := 1; i <= 6; i++ {
		q.Insert(i, i%2)
	}
	removed := q.RemoveIf(func(v, _ int) bool { return v%2 == 0 })
	if removed != 3 || q.Len() != 3 {
		t.Fatalf("RemoveIf removed %d, len %d", removed, q.Len())
	}
	if q.Occupancy(0) != 0 || q.Occupancy(1) != 3 {
		t.Fatalf("occupancy after RemoveIf: %d/%d", q.Occupancy(0), q.Occupancy(1))
	}
}

func TestPortsClassCompatibility(t *testing.T) {
	var p Ports
	// Three int uops fill all three ports.
	for i := 0; i < 3; i++ {
		if _, ok := p.TryIssue(isa.Int); !ok {
			t.Fatalf("int uop %d rejected", i)
		}
	}
	if _, ok := p.TryIssue(isa.Int); ok {
		t.Fatal("fourth int uop issued")
	}
	p.Reset()
	// Two FP fill ports 0-1; a load still fits on port 2.
	if _, ok := p.TryIssue(isa.Fp); !ok {
		t.Fatal("fp rejected")
	}
	if _, ok := p.TryIssue(isa.Fp); !ok {
		t.Fatal("second fp rejected")
	}
	if _, ok := p.TryIssue(isa.Fp); ok {
		t.Fatal("third fp issued (only 2 fp-capable ports)")
	}
	if !p.HasFree(isa.Load) {
		t.Fatal("port 2 should remain free for memory")
	}
	if port, ok := p.TryIssue(isa.Load); !ok || port != 2 {
		t.Fatalf("load got port %d ok=%v, want port 2", port, ok)
	}
	if p.HasFree(isa.Store) {
		t.Fatal("no memory port should remain")
	}
	if p.Issued() != 3 {
		t.Errorf("issued %d, want 3", p.Issued())
	}
}

func TestPortsMemOnlyPort2(t *testing.T) {
	var p Ports
	if _, ok := p.TryIssue(isa.Store); !ok {
		t.Fatal("store rejected on empty ports")
	}
	if _, ok := p.TryIssue(isa.Load); ok {
		t.Fatal("two memory uops issued in one cycle")
	}
	// Ports 0/1 remain for int/fp.
	if !p.HasFree(isa.Int) || !p.HasFree(isa.Fp) {
		t.Fatal("ports 0/1 should remain free")
	}
}

func TestPortsCopiesNotPortBound(t *testing.T) {
	var p Ports
	if p.HasFree(isa.Copy) {
		t.Fatal("copies must not use execution ports")
	}
	if _, ok := p.TryIssue(isa.Copy); ok {
		t.Fatal("copy issued through a port")
	}
}

func TestRegFileAllocFree(t *testing.T) {
	rf := NewRegFile[int](4, 2, 2)
	if rf.Total(isa.IntReg) != 4 || rf.Total(isa.FpReg) != 2 {
		t.Fatal("totals wrong")
	}
	var got []int32
	for i := 0; i < 4; i++ {
		idx, ok := rf.Alloc(isa.IntReg, 0)
		if !ok {
			t.Fatalf("alloc %d failed", i)
		}
		got = append(got, idx)
	}
	if _, ok := rf.Alloc(isa.IntReg, 1); ok {
		t.Fatal("alloc beyond capacity succeeded")
	}
	if rf.InUse(isa.IntReg, 0) != 4 || rf.FreeCount(isa.IntReg) != 0 {
		t.Fatal("accounting wrong")
	}
	rf.Free(isa.IntReg, 0, got[0])
	if rf.FreeCount(isa.IntReg) != 1 || rf.InUse(isa.IntReg, 0) != 3 {
		t.Fatal("free accounting wrong")
	}
	if _, ok := rf.Alloc(isa.IntReg, 1); !ok {
		t.Fatal("freed register not reusable")
	}
}

func TestRegFileReadyBits(t *testing.T) {
	rf := NewRegFile[int](2, 2, 1)
	idx, _ := rf.Alloc(isa.FpReg, 0)
	if rf.IsReady(isa.FpReg, idx) {
		t.Fatal("fresh register should not be ready")
	}
	rf.SetReady(isa.FpReg, idx)
	if !rf.IsReady(isa.FpReg, idx) {
		t.Fatal("ready bit not set")
	}
	// Re-allocation clears readiness.
	rf.Free(isa.FpReg, 0, idx)
	idx2, _ := rf.Alloc(isa.FpReg, 0)
	if idx2 == idx && rf.IsReady(isa.FpReg, idx2) {
		t.Fatal("re-allocated register kept stale ready bit")
	}
}

func TestRegFileUnderflowPanics(t *testing.T) {
	rf := NewRegFile[int](2, 2, 1)
	idx, _ := rf.Alloc(isa.IntReg, 0)
	rf.Free(isa.IntReg, 0, idx)
	defer func() {
		if recover() == nil {
			t.Error("double free should panic")
		}
	}()
	rf.Free(isa.IntReg, 0, idx)
}

func TestRegFileBadIndexPanics(t *testing.T) {
	rf := NewRegFile[int](2, 2, 1)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range free should panic")
		}
	}()
	rf.Free(isa.IntReg, 0, 99)
}

func TestRegFileUnbounded(t *testing.T) {
	rf := NewRegFile[int](0, 0, 1)
	if rf.Total(isa.IntReg) != UnboundedRegs {
		t.Fatal("unbounded sizing wrong")
	}
	for i := 0; i < 1000; i++ {
		if _, ok := rf.Alloc(isa.IntReg, 0); !ok {
			t.Fatal("unbounded file exhausted early")
		}
	}
}

// Property: alloc/free sequences keep FreeCount + sum(InUse) == Total.
func TestRegFileConservationProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		rf := NewRegFile[int](16, 8, 2)
		type held struct {
			k   isa.RegKind
			t   int
			idx int32
		}
		var live []held
		for _, op := range ops {
			k := isa.RegKind(op % 2)
			th := int(op/2) % 2
			if op%3 == 0 && len(live) > 0 {
				h := live[len(live)-1]
				rf.Free(h.k, h.t, h.idx)
				live = live[:len(live)-1]
			} else if idx, ok := rf.Alloc(k, th); ok {
				live = append(live, held{k, th, idx})
			}
			for _, kind := range []isa.RegKind{isa.IntReg, isa.FpReg} {
				total := rf.FreeCount(kind) + rf.InUse(kind, 0) + rf.InUse(kind, 1)
				if total != rf.Total(kind) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the issue queue preserves FIFO age order under random
// insert/remove interleavings.
func TestIssueQueueOrderProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		q := NewIssueQueue[int](16, 2)
		next := 1
		var present []int
		for _, op := range ops {
			if op%4 == 0 && len(present) > 0 {
				victim := present[int(op/4)%len(present)]
				q.Remove(victim)
				for i, v := range present {
					if v == victim {
						present = append(present[:i], present[i+1:]...)
						break
					}
				}
			} else if _, ok := q.Insert(next, int(op)%2); ok {
				present = append(present, next)
				next++
			}
			i := 0
			ok := true
			q.Scan(func(v, _ int) bool {
				if v != present[i] {
					ok = false
					return false
				}
				i++
				return true
			})
			if !ok || i != len(present) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
