// Package cluster provides the per-cluster back-end structures of the
// baseline machine (§3): the issue queue, the two physical register files
// (integer and FP/SIMD) with their free lists and ready bits, and the three
// issue ports (Table 1: P0 int/fp/simd, P1 int/fp/simd, P2 int/mem).
package cluster

import "clustersmt/internal/isa"

// IssueQueue is a fixed-capacity, age-ordered issue queue. The payload T is
// whatever the core uses to identify in-flight uops (typically a ROB entry
// pointer). Entries stay in insertion (age) order so oldest-first select is
// a linear scan.
//
// The queue tracks per-thread occupancy because every partitioning scheme in
// the paper is defined in terms of how many entries each thread holds.
type IssueQueue[T comparable] struct {
	capacity int
	entries  []iqSlot[T]
	occ      []int // per thread
}

type iqSlot[T comparable] struct {
	payload T
	thread  int
}

// NewIssueQueue returns an issue queue with the given capacity, tracking
// occupancy for n threads.
func NewIssueQueue[T comparable](capacity, n int) *IssueQueue[T] {
	if capacity <= 0 {
		capacity = 32
	}
	if n <= 0 {
		n = 1
	}
	return &IssueQueue[T]{
		capacity: capacity,
		entries:  make([]iqSlot[T], 0, capacity),
		occ:      make([]int, n),
	}
}

// Capacity returns the total number of entries.
func (q *IssueQueue[T]) Capacity() int { return q.capacity }

// Len returns the number of occupied entries.
func (q *IssueQueue[T]) Len() int { return len(q.entries) }

// Free returns the number of available entries.
func (q *IssueQueue[T]) Free() int { return q.capacity - len(q.entries) }

// Occupancy returns the number of entries held by thread t.
func (q *IssueQueue[T]) Occupancy(t int) int { return q.occ[t] }

// Insert appends payload for thread t in age order. It reports false when
// the queue is full.
func (q *IssueQueue[T]) Insert(payload T, t int) bool {
	if len(q.entries) >= q.capacity {
		return false
	}
	q.entries = append(q.entries, iqSlot[T]{payload: payload, thread: t})
	q.occ[t]++
	return true
}

// Scan calls fn on every entry in age order (oldest first). If fn returns
// false the scan stops early.
func (q *IssueQueue[T]) Scan(fn func(payload T, thread int) bool) {
	for i := range q.entries {
		if !fn(q.entries[i].payload, q.entries[i].thread) {
			return
		}
	}
}

// Remove deletes the entry with the given payload, preserving age order.
// It reports whether the payload was present.
func (q *IssueQueue[T]) Remove(payload T) bool {
	for i := range q.entries {
		if q.entries[i].payload == payload {
			q.occ[q.entries[i].thread]--
			q.entries = append(q.entries[:i], q.entries[i+1:]...)
			return true
		}
	}
	return false
}

// RemoveIf deletes every entry for which fn returns true and returns the
// number removed. Age order of survivors is preserved.
func (q *IssueQueue[T]) RemoveIf(fn func(payload T, thread int) bool) int {
	kept := q.entries[:0]
	removed := 0
	for i := range q.entries {
		if fn(q.entries[i].payload, q.entries[i].thread) {
			q.occ[q.entries[i].thread]--
			removed++
		} else {
			kept = append(kept, q.entries[i])
		}
	}
	// Clear the tail so payloads don't pin garbage.
	var zero iqSlot[T]
	for i := len(kept); i < len(q.entries); i++ {
		q.entries[i] = zero
	}
	q.entries = kept
	return removed
}

// Ports models the three issue ports of one cluster. Reset at the start of
// each cycle; TryIssue claims a compatible free port for a uop class.
type Ports struct {
	// busy[i] marks port i used this cycle.
	busy [3]bool
	// issued counts grants per cycle for stats.
	issued int
}

// PortCount is the number of issue ports per cluster (Table 1).
const PortCount = 3

// portsFor returns the bitmask of ports able to execute class c:
// P0/P1 execute int and fp/simd, P2 executes int and memory.
func portsFor(c isa.Class) uint8 {
	switch c {
	case isa.Int, isa.IntMul, isa.Branch, isa.Nop:
		return 0b111
	case isa.Fp:
		return 0b011
	case isa.Load, isa.Store:
		return 0b100
	default: // Copy travels on the interconnect, not the ports
		return 0
	}
}

// Reset clears the per-cycle port state.
func (p *Ports) Reset() {
	p.busy = [3]bool{}
	p.issued = 0
}

// TryIssue claims a free compatible port for class c. It returns the port
// index and true on success.
func (p *Ports) TryIssue(c isa.Class) (int, bool) {
	mask := portsFor(c)
	for i := 0; i < PortCount; i++ {
		if mask&(1<<uint(i)) != 0 && !p.busy[i] {
			p.busy[i] = true
			p.issued++
			return i, true
		}
	}
	return 0, false
}

// HasFree reports whether a compatible port is still free for class c this
// cycle (without claiming it). Used by the workload-imbalance metric
// (Fig. 5): a ready uop that cannot issue here but could have issued in the
// other cluster counts as imbalance.
func (p *Ports) HasFree(c isa.Class) bool {
	mask := portsFor(c)
	for i := 0; i < PortCount; i++ {
		if mask&(1<<uint(i)) != 0 && !p.busy[i] {
			return true
		}
	}
	return false
}

// Issued returns the number of uops issued through the ports this cycle.
func (p *Ports) Issued() int { return p.issued }
