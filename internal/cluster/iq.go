// Package cluster provides the per-cluster back-end structures of the
// baseline machine (§3): the issue queue, the two physical register files
// (integer and FP/SIMD) with their free lists and ready bits, and the three
// issue ports (Table 1: P0 int/fp/simd, P1 int/fp/simd, P2 int/mem).
//
// Wakeup is event-driven (DESIGN.md §5): register files keep per-register
// waiter lists (AddWaiter/RemoveWaiter) and broadcast on SetReady; issue
// queues keep per-cluster age-ordered ready lists (MarkReady) that select
// walks oldest-first, and slot handles make entry removal O(1). The
// polling equivalent survives behind core.Config.PollingWakeup for the
// equivalence tests and the wakeup ablation benchmark.
package cluster

import (
	"slices"

	"clustersmt/internal/isa"
)

// IssueQueue is a fixed-capacity, age-ordered issue queue. The payload T is
// whatever the core uses to identify in-flight uops (typically a ROB entry
// pointer). Entries are kept in insertion (age) order on an intrusive
// doubly-linked list over a slot arena, so oldest-first select is a linear
// walk and removal by slot handle is O(1).
//
// The queue tracks per-thread occupancy because every partitioning scheme in
// the paper is defined in terms of how many entries each thread holds.
//
// For event-driven wakeup the queue also keeps a ready list: the subset of
// entries whose operands are all data-ready, maintained by the core through
// MarkReady as register-ready broadcasts arrive. Select then walks only the
// ready list (ScanReady) instead of re-testing every waiting entry's sources
// every cycle.
type IssueQueue[T comparable] struct {
	slots []iqSlot[T]
	occ   []int // per thread
	n     int

	head, tail, freeHead int32

	// ready holds the wakeup-complete entries with their age tags. It is
	// kept age-sorted lazily: MarkReady appends and flags unsorted when the
	// new tail is out of order; ScanReady restores the order.
	ready    []readyEnt[T]
	unsorted bool
}

type iqSlot[T comparable] struct {
	payload    T
	thread     int32
	prev, next int32
	live       bool
}

type readyEnt[T comparable] struct {
	payload T
	age     uint64
}

const nilSlot = int32(-1)

// NewIssueQueue returns an issue queue with the given capacity, tracking
// occupancy for n threads.
func NewIssueQueue[T comparable](capacity, n int) *IssueQueue[T] {
	if capacity <= 0 {
		capacity = 32
	}
	if n <= 0 {
		n = 1
	}
	q := &IssueQueue[T]{
		slots: make([]iqSlot[T], capacity),
		occ:   make([]int, n),
		// Every queued entry can be ready at once; full capacity up front
		// keeps MarkReady append-free for the queue's lifetime.
		ready: make([]readyEnt[T], 0, capacity),
		head:  nilSlot,
		tail:  nilSlot,
	}
	for i := range q.slots {
		q.slots[i].next = int32(i + 1)
	}
	q.slots[capacity-1].next = nilSlot
	q.freeHead = 0
	return q
}

// Capacity returns the total number of entries.
//
//smtlint:noalloc
func (q *IssueQueue[T]) Capacity() int { return len(q.slots) }

// Len returns the number of occupied entries.
//
//smtlint:noalloc
func (q *IssueQueue[T]) Len() int { return q.n }

// Free returns the number of available entries.
//
//smtlint:noalloc
func (q *IssueQueue[T]) Free() int { return len(q.slots) - q.n }

// Occupancy returns the number of entries held by thread t.
//
//smtlint:noalloc
func (q *IssueQueue[T]) Occupancy(t int) int { return q.occ[t] }

// Insert appends payload for thread t in age order and returns the slot
// handle for O(1) removal. It reports false when the queue is full.
//
//smtlint:noalloc
func (q *IssueQueue[T]) Insert(payload T, t int) (int32, bool) {
	s := q.freeHead
	if s == nilSlot {
		return nilSlot, false
	}
	sl := &q.slots[s]
	q.freeHead = sl.next
	sl.payload = payload
	sl.thread = int32(t)
	sl.prev = q.tail
	sl.next = nilSlot
	sl.live = true
	if q.tail != nilSlot {
		q.slots[q.tail].next = s
	} else {
		q.head = s
	}
	q.tail = s
	q.occ[t]++
	q.n++
	return s, true
}

// Scan calls fn on every entry in age order (oldest first). If fn returns
// false the scan stops early. fn must not mutate the queue.
//
//smtlint:noalloc
func (q *IssueQueue[T]) Scan(fn func(payload T, thread int) bool) {
	for s := q.head; s != nilSlot; s = q.slots[s].next {
		if !fn(q.slots[s].payload, int(q.slots[s].thread)) {
			return
		}
	}
}

// RemoveAt deletes the entry in slot s (a handle returned by Insert) in
// O(1), preserving age order of the survivors. The payload must match the
// slot's occupant — a cheap guard against stale handles after slot reuse —
// and also leaves the ready list if it was on it.
//
//smtlint:noalloc
func (q *IssueQueue[T]) RemoveAt(s int32, payload T) {
	sl := &q.slots[s]
	if !sl.live || sl.payload != payload {
		panic("cluster: RemoveAt handle does not match its payload")
	}
	if sl.prev != nilSlot {
		q.slots[sl.prev].next = sl.next
	} else {
		q.head = sl.next
	}
	if sl.next != nilSlot {
		q.slots[sl.next].prev = sl.prev
	} else {
		q.tail = sl.prev
	}
	q.occ[sl.thread]--
	q.n--
	q.unmarkReady(sl.payload)
	var zero T
	sl.payload = zero // don't pin garbage
	sl.live = false
	sl.next = q.freeHead
	q.freeHead = s
}

// Remove deletes the entry with the given payload, preserving age order.
// The payload also leaves the ready list if it was on it. It reports whether
// the payload was present. Callers holding the Insert handle should prefer
// the O(1) RemoveAt.
//
//smtlint:noalloc
func (q *IssueQueue[T]) Remove(payload T) bool {
	for s := q.head; s != nilSlot; s = q.slots[s].next {
		if q.slots[s].payload == payload {
			q.RemoveAt(s, payload)
			return true
		}
	}
	return false
}

// RemoveIf deletes every entry for which fn returns true and returns the
// number removed. Age order of survivors is preserved and removed entries
// leave the ready list.
//
//smtlint:noalloc
func (q *IssueQueue[T]) RemoveIf(fn func(payload T, thread int) bool) int {
	removed := 0
	for s := q.head; s != nilSlot; {
		next := q.slots[s].next
		if fn(q.slots[s].payload, int(q.slots[s].thread)) {
			q.RemoveAt(s, q.slots[s].payload)
			removed++
		}
		s = next
	}
	return removed
}

// MarkReady puts payload on the ready list with the given age tag (a value
// that orders entries the same way their queue insertion did, e.g. a global
// rename sequence number). The core calls it when the last outstanding
// source of an entry becomes ready, or at dispatch for entries whose sources
// are all ready already. A payload must be marked at most once while queued.
//
//smtlint:noalloc
func (q *IssueQueue[T]) MarkReady(payload T, age uint64) {
	if n := len(q.ready); n > 0 && q.ready[n-1].age > age {
		q.unsorted = true
	}
	//smtlint:allow ready list reuses its backing array; bounded by IQ occupancy
	q.ready = append(q.ready, readyEnt[T]{payload: payload, age: age})
}

// ReadyLen returns the number of entries on the ready list.
//
//smtlint:noalloc
func (q *IssueQueue[T]) ReadyLen() int { return len(q.ready) }

// ScanReady calls fn on every ready entry, oldest (smallest age tag) first.
// If fn returns false the scan stops early. fn must not mutate the queue;
// collect first, then remove.
//
//smtlint:noalloc
func (q *IssueQueue[T]) ScanReady(fn func(payload T) bool) {
	if q.unsorted {
		slices.SortFunc(q.ready, func(a, b readyEnt[T]) int {
			switch {
			case a.age < b.age:
				return -1
			case a.age > b.age:
				return 1
			default:
				return 0
			}
		})
		q.unsorted = false
	}
	for i := range q.ready {
		if !fn(q.ready[i].payload) {
			return
		}
	}
}

// unmarkReady drops payload from the ready list, preserving order.
//
//smtlint:noalloc
func (q *IssueQueue[T]) unmarkReady(payload T) {
	for i := range q.ready {
		if q.ready[i].payload == payload {
			//smtlint:allow copy-down removal within existing capacity; never grows
			q.ready = append(q.ready[:i], q.ready[i+1:]...)
			return
		}
	}
}

// Ports models the three issue ports of one cluster. Reset at the start of
// each cycle; TryIssue claims a compatible free port for a uop class.
type Ports struct {
	// busy[i] marks port i used this cycle.
	busy [3]bool
	// issued counts grants per cycle for stats.
	issued int
}

// PortCount is the number of issue ports per cluster (Table 1).
const PortCount = 3

// portsFor returns the bitmask of ports able to execute class c:
// P0/P1 execute int and fp/simd, P2 executes int and memory.
//
//smtlint:noalloc
func portsFor(c isa.Class) uint8 {
	switch c {
	case isa.Int, isa.IntMul, isa.Branch, isa.Nop:
		return 0b111
	case isa.Fp:
		return 0b011
	case isa.Load, isa.Store:
		return 0b100
	default: // Copy travels on the interconnect, not the ports
		return 0
	}
}

// Reset clears the per-cycle port state.
//
//smtlint:noalloc
func (p *Ports) Reset() {
	p.busy = [3]bool{}
	p.issued = 0
}

// TryIssue claims a free compatible port for class c. It returns the port
// index and true on success.
//
//smtlint:noalloc
func (p *Ports) TryIssue(c isa.Class) (int, bool) {
	mask := portsFor(c)
	for i := 0; i < PortCount; i++ {
		if mask&(1<<uint(i)) != 0 && !p.busy[i] {
			p.busy[i] = true
			p.issued++
			return i, true
		}
	}
	return 0, false
}

// HasFree reports whether a compatible port is still free for class c this
// cycle (without claiming it). Used by the workload-imbalance metric
// (Fig. 5): a ready uop that cannot issue here but could have issued in the
// other cluster counts as imbalance.
//
//smtlint:noalloc
func (p *Ports) HasFree(c isa.Class) bool {
	mask := portsFor(c)
	for i := 0; i < PortCount; i++ {
		if mask&(1<<uint(i)) != 0 && !p.busy[i] {
			return true
		}
	}
	return false
}

// Issued returns the number of uops issued through the ports this cycle.
//
//smtlint:noalloc
func (p *Ports) Issued() int { return p.issued }
