package cluster

import (
	"fmt"

	"clustersmt/internal/isa"
)

// UnboundedRegs is the per-kind capacity used to emulate an unbounded
// register file (the paper unbounds the RF and ROB for the issue-queue study
// of §5.1 "to avoid side effects on these components").
const UnboundedRegs = 1 << 14

// RegFile is the physical register storage of one cluster: one file per
// register kind (integer and FP/SIMD), each with a free list, per-thread
// in-use counters, and data-ready bits used by the wakeup logic.
type RegFile struct {
	total [isa.NumRegKinds]int
	free  [isa.NumRegKinds][]int32
	ready [isa.NumRegKinds][]bool
	inUse [isa.NumRegKinds][]int // per thread
}

// NewRegFile returns a register file with intRegs integer and fpRegs FP/SIMD
// physical registers, tracking usage for n threads. Non-positive counts
// select UnboundedRegs.
func NewRegFile(intRegs, fpRegs, n int) *RegFile {
	if intRegs <= 0 {
		intRegs = UnboundedRegs
	}
	if fpRegs <= 0 {
		fpRegs = UnboundedRegs
	}
	if n <= 0 {
		n = 1
	}
	rf := &RegFile{}
	counts := [isa.NumRegKinds]int{isa.IntReg: intRegs, isa.FpReg: fpRegs}
	for k := 0; k < isa.NumRegKinds; k++ {
		c := counts[k]
		rf.total[k] = c
		rf.free[k] = make([]int32, c)
		for i := range rf.free[k] {
			// Pop from the end; keep low indices allocated first.
			rf.free[k][i] = int32(c - 1 - i)
		}
		rf.ready[k] = make([]bool, c)
		rf.inUse[k] = make([]int, n)
	}
	return rf
}

// Total returns the number of physical registers of kind k.
func (rf *RegFile) Total(k isa.RegKind) int { return rf.total[k] }

// FreeCount returns the number of unallocated registers of kind k.
func (rf *RegFile) FreeCount(k isa.RegKind) int { return len(rf.free[k]) }

// InUse returns the number of registers of kind k held by thread t.
func (rf *RegFile) InUse(k isa.RegKind, t int) int { return rf.inUse[k][t] }

// Alloc takes a register of kind k for thread t. The register starts
// not-ready. It returns -1 and false when the file is exhausted.
func (rf *RegFile) Alloc(k isa.RegKind, t int) (int32, bool) {
	fl := rf.free[k]
	if len(fl) == 0 {
		return -1, false
	}
	idx := fl[len(fl)-1]
	rf.free[k] = fl[:len(fl)-1]
	rf.ready[k][idx] = false
	rf.inUse[k][t]++
	return idx, true
}

// Free returns register idx of kind k held by thread t to the free list.
func (rf *RegFile) Free(k isa.RegKind, t int, idx int32) {
	if idx < 0 || int(idx) >= rf.total[k] {
		panic(fmt.Sprintf("cluster: Free(%v, %d) out of range", k, idx))
	}
	rf.inUse[k][t]--
	if rf.inUse[k][t] < 0 {
		panic("cluster: register free underflow")
	}
	rf.free[k] = append(rf.free[k], idx)
}

// SetReady marks register idx of kind k data-ready.
func (rf *RegFile) SetReady(k isa.RegKind, idx int32) { rf.ready[k][idx] = true }

// IsReady reports whether register idx of kind k is data-ready.
func (rf *RegFile) IsReady(k isa.RegKind, idx int32) bool { return rf.ready[k][idx] }
