package cluster

import (
	"fmt"

	"clustersmt/internal/isa"
)

// UnboundedRegs is the per-kind capacity used to emulate an unbounded
// register file (the paper unbounds the RF and ROB for the issue-queue study
// of §5.1 "to avoid side effects on these components").
const UnboundedRegs = 1 << 14

// RegFile is the physical register storage of one cluster: one file per
// register kind (integer and FP/SIMD), each with a free list, per-thread
// in-use counters, and data-ready bits used by the wakeup logic.
//
// The wakeup logic is event-driven: consumers subscribe to a not-yet-ready
// register with AddWaiter and are broadcast through OnWake exactly once,
// when SetReady first marks the register ready. The waiter payload W is
// whatever the core uses to identify waiting uops (typically a ROB entry
// pointer).
type RegFile[W comparable] struct {
	total   [isa.NumRegKinds]int
	free    [isa.NumRegKinds][]int32
	ready   [isa.NumRegKinds][]bool
	inUse   [isa.NumRegKinds][]int // per thread
	waiters [isa.NumRegKinds][][]W

	// OnWake, when non-nil, receives every waiter subscribed to a register
	// at the moment SetReady makes it ready. Callbacks must not re-subscribe
	// to the register that is waking them (it is ready now).
	OnWake func(W)
}

// NewRegFile returns a register file with intRegs integer and fpRegs FP/SIMD
// physical registers, tracking usage for n threads. Non-positive counts
// select UnboundedRegs.
func NewRegFile[W comparable](intRegs, fpRegs, n int) *RegFile[W] {
	if intRegs <= 0 {
		intRegs = UnboundedRegs
	}
	if fpRegs <= 0 {
		fpRegs = UnboundedRegs
	}
	if n <= 0 {
		n = 1
	}
	rf := &RegFile[W]{}
	counts := [isa.NumRegKinds]int{isa.IntReg: intRegs, isa.FpReg: fpRegs}
	for k := 0; k < isa.NumRegKinds; k++ {
		c := counts[k]
		rf.total[k] = c
		rf.free[k] = make([]int32, c)
		for i := range rf.free[k] {
			// Pop from the end; keep low indices allocated first.
			rf.free[k][i] = int32(c - 1 - i)
		}
		rf.ready[k] = make([]bool, c)
		rf.inUse[k] = make([]int, n)
		rf.waiters[k] = make([][]W, c)
		if c <= waiterSlabMaxRegs {
			// Carve every register's initial waiter capacity out of one
			// slab so steady-state subscription never allocates; a register
			// that outgrows its slice detaches via append and keeps the
			// grown backing. Emulated-unbounded files (UnboundedRegs) stay
			// lazy — the slab would cost megabytes and those registers
			// rarely collect waiters.
			slab := make([]W, c*waiterSlabCap)
			for i := 0; i < c; i++ {
				rf.waiters[k][i] = slab[i*waiterSlabCap : i*waiterSlabCap : (i+1)*waiterSlabCap]
			}
		}
	}
	return rf
}

// waiterSlabCap is the pre-carved waiter capacity per register;
// waiterSlabMaxRegs bounds the file sizes that get the slab (Table 1's
// 64–128 regs/kind easily qualify; UnboundedRegs does not).
const (
	waiterSlabCap     = 4
	waiterSlabMaxRegs = 2048
)

// Total returns the number of physical registers of kind k.
//
//smtlint:noalloc
func (rf *RegFile[W]) Total(k isa.RegKind) int { return rf.total[k] }

// FreeCount returns the number of unallocated registers of kind k.
//
//smtlint:noalloc
func (rf *RegFile[W]) FreeCount(k isa.RegKind) int { return len(rf.free[k]) }

// InUse returns the number of registers of kind k held by thread t.
//
//smtlint:noalloc
func (rf *RegFile[W]) InUse(k isa.RegKind, t int) int { return rf.inUse[k][t] }

// Alloc takes a register of kind k for thread t. The register starts
// not-ready. It returns -1 and false when the file is exhausted.
//
//smtlint:noalloc
func (rf *RegFile[W]) Alloc(k isa.RegKind, t int) (int32, bool) {
	fl := rf.free[k]
	if len(fl) == 0 {
		return -1, false
	}
	idx := fl[len(fl)-1]
	rf.free[k] = fl[:len(fl)-1]
	if len(rf.waiters[k][idx]) != 0 {
		panic(fmt.Sprintf("cluster: Alloc(%v, %d) with live waiters", k, idx))
	}
	rf.ready[k][idx] = false
	rf.inUse[k][t]++
	return idx, true
}

// Free returns register idx of kind k held by thread t to the free list.
//
//smtlint:noalloc
func (rf *RegFile[W]) Free(k isa.RegKind, t int, idx int32) {
	if idx < 0 || int(idx) >= rf.total[k] {
		panic(fmt.Sprintf("cluster: Free(%v, %d) out of range", k, idx))
	}
	if len(rf.waiters[k][idx]) != 0 {
		panic(fmt.Sprintf("cluster: Free(%v, %d) with live waiters", k, idx))
	}
	rf.inUse[k][t]--
	if rf.inUse[k][t] < 0 {
		panic("cluster: register free underflow")
	}
	//smtlint:allow free list refills within its construction-time capacity
	rf.free[k] = append(rf.free[k], idx)
}

// SetReady marks register idx of kind k data-ready and broadcasts to its
// waiters, in subscription order, through OnWake. A register already ready
// broadcasts nothing (SetReady is idempotent).
//
//smtlint:noalloc
func (rf *RegFile[W]) SetReady(k isa.RegKind, idx int32) {
	if rf.ready[k][idx] {
		return
	}
	rf.ready[k][idx] = true
	ws := rf.waiters[k][idx]
	if len(ws) == 0 {
		return
	}
	// Keep the backing array for reuse by the next holder of this register.
	// AddWaiter rejects ready registers, so OnWake cannot append to ws while
	// we drain it.
	rf.waiters[k][idx] = ws[:0]
	var zero W
	for i, w := range ws {
		ws[i] = zero
		if rf.OnWake != nil {
			//smtlint:allow wakeup hook; the core installs an annotated callback
			rf.OnWake(w)
		}
	}
}

// IsReady reports whether register idx of kind k is data-ready.
//
//smtlint:noalloc
func (rf *RegFile[W]) IsReady(k isa.RegKind, idx int32) bool { return rf.ready[k][idx] }

// AddWaiter subscribes w to register idx of kind k. The register must not be
// ready yet: consumers of a ready register never wait (check IsReady first).
//
//smtlint:noalloc
func (rf *RegFile[W]) AddWaiter(k isa.RegKind, idx int32, w W) {
	if rf.ready[k][idx] {
		panic(fmt.Sprintf("cluster: AddWaiter(%v, %d) on ready register", k, idx))
	}
	//smtlint:allow waiter lists retain their backing arrays across register reuse
	rf.waiters[k][idx] = append(rf.waiters[k][idx], w)
}

// RemoveWaiter unsubscribes one occurrence of w from register idx of kind k
// (the squash path). It reports whether an occurrence was found; removing an
// absent waiter is a no-op, so callers may unsubscribe sources that already
// woke them.
//
//smtlint:noalloc
func (rf *RegFile[W]) RemoveWaiter(k isa.RegKind, idx int32, w W) bool {
	ws := rf.waiters[k][idx]
	for i := range ws {
		if ws[i] == w {
			copy(ws[i:], ws[i+1:])
			var zero W
			ws[len(ws)-1] = zero
			rf.waiters[k][idx] = ws[:len(ws)-1]
			return true
		}
	}
	return false
}

// WaiterCount returns the number of subscriptions on register idx of kind k
// (tests and invariant checks).
//
//smtlint:noalloc
func (rf *RegFile[W]) WaiterCount(k isa.RegKind, idx int32) int {
	return len(rf.waiters[k][idx])
}
