package cluster

import (
	"testing"

	"clustersmt/internal/isa"
)

func TestRegFileWaiterBroadcast(t *testing.T) {
	rf := NewRegFile[int](4, 2, 1)
	var woken []int
	rf.OnWake = func(w int) { woken = append(woken, w) }
	idx, _ := rf.Alloc(isa.IntReg, 0)
	rf.AddWaiter(isa.IntReg, idx, 10)
	rf.AddWaiter(isa.IntReg, idx, 20)
	rf.AddWaiter(isa.IntReg, idx, 30)
	if rf.WaiterCount(isa.IntReg, idx) != 3 {
		t.Fatalf("waiter count %d, want 3", rf.WaiterCount(isa.IntReg, idx))
	}
	rf.SetReady(isa.IntReg, idx)
	if len(woken) != 3 || woken[0] != 10 || woken[1] != 20 || woken[2] != 30 {
		t.Fatalf("broadcast %v, want [10 20 30] in subscription order", woken)
	}
	if rf.WaiterCount(isa.IntReg, idx) != 0 {
		t.Fatal("waiter list not drained by broadcast")
	}
	// Idempotent SetReady must not re-broadcast.
	rf.SetReady(isa.IntReg, idx)
	if len(woken) != 3 {
		t.Fatal("second SetReady re-broadcast")
	}
}

// The squash-during-wait case: a consumer squashed while subscribed
// unsubscribes with RemoveWaiter, so the later broadcast never sees it.
func TestRegFileSquashDuringWaitUnlink(t *testing.T) {
	rf := NewRegFile[int](4, 2, 1)
	var woken []int
	rf.OnWake = func(w int) { woken = append(woken, w) }
	idx, _ := rf.Alloc(isa.IntReg, 0)
	rf.AddWaiter(isa.IntReg, idx, 1)
	rf.AddWaiter(isa.IntReg, idx, 2)
	if !rf.RemoveWaiter(isa.IntReg, idx, 1) {
		t.Fatal("RemoveWaiter missed a subscribed waiter")
	}
	rf.SetReady(isa.IntReg, idx)
	if len(woken) != 1 || woken[0] != 2 {
		t.Fatalf("broadcast %v, want [2]: squashed waiter still woke", woken)
	}
}

// The copy-uop case: an entry subscribed twice (both sources name the same
// physical register, as a copy consumer pair can) is unlinked one occurrence
// at a time, and unlinking an already-woken source is a tolerated no-op.
func TestRegFileWaiterUnlinkOccurrences(t *testing.T) {
	rf := NewRegFile[int](4, 2, 1)
	idx, _ := rf.Alloc(isa.IntReg, 0)
	rf.AddWaiter(isa.IntReg, idx, 7)
	rf.AddWaiter(isa.IntReg, idx, 7)
	if !rf.RemoveWaiter(isa.IntReg, idx, 7) {
		t.Fatal("first occurrence not removed")
	}
	if rf.WaiterCount(isa.IntReg, idx) != 1 {
		t.Fatal("RemoveWaiter must remove exactly one occurrence")
	}
	if !rf.RemoveWaiter(isa.IntReg, idx, 7) {
		t.Fatal("second occurrence not removed")
	}
	if rf.RemoveWaiter(isa.IntReg, idx, 7) {
		t.Fatal("removing an absent waiter reported success")
	}
}

func TestRegFileAddWaiterOnReadyPanics(t *testing.T) {
	rf := NewRegFile[int](2, 2, 1)
	idx, _ := rf.Alloc(isa.IntReg, 0)
	rf.SetReady(isa.IntReg, idx)
	defer func() {
		if recover() == nil {
			t.Error("AddWaiter on a ready register should panic")
		}
	}()
	rf.AddWaiter(isa.IntReg, idx, 1)
}

func TestRegFileFreeWithWaitersPanics(t *testing.T) {
	rf := NewRegFile[int](2, 2, 1)
	idx, _ := rf.Alloc(isa.IntReg, 0)
	rf.AddWaiter(isa.IntReg, idx, 1)
	defer func() {
		if recover() == nil {
			t.Error("freeing a waited-on register should panic")
		}
	}()
	rf.Free(isa.IntReg, 0, idx)
}

func TestIssueQueueReadyListOrder(t *testing.T) {
	q := NewIssueQueue[int](8, 1)
	for i := 1; i <= 5; i++ {
		q.Insert(i, 0)
	}
	// Wakeups arrive out of age order; select must still see oldest first.
	q.MarkReady(4, 4)
	q.MarkReady(2, 2)
	q.MarkReady(5, 5)
	if q.ReadyLen() != 3 {
		t.Fatalf("ready len %d, want 3", q.ReadyLen())
	}
	var got []int
	q.ScanReady(func(v int) bool {
		got = append(got, v)
		return true
	})
	want := []int{2, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ScanReady %v, want %v", got, want)
		}
	}
}

func TestIssueQueueRemovePurgesReadyList(t *testing.T) {
	q := NewIssueQueue[int](8, 2)
	for i := 1; i <= 4; i++ {
		q.Insert(i, i%2)
	}
	q.MarkReady(1, 1)
	q.MarkReady(3, 3)
	q.Remove(3)
	if q.ReadyLen() != 1 {
		t.Fatalf("ready len %d after Remove, want 1", q.ReadyLen())
	}
	q.RemoveIf(func(v, _ int) bool { return v == 1 })
	if q.ReadyLen() != 0 {
		t.Fatalf("ready len %d after RemoveIf, want 0", q.ReadyLen())
	}
	var got []int
	q.ScanReady(func(v int) bool { got = append(got, v); return true })
	if len(got) != 0 {
		t.Fatalf("ScanReady %v after purge, want empty", got)
	}
}
