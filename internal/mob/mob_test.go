package mob

import (
	"testing"
	"testing/quick"
)

func TestAllocReleaseAccounting(t *testing.T) {
	m := New(4, 2)
	if m.Capacity() != 4 || m.Used() != 0 || m.Free() != 4 {
		t.Fatal("fresh MOB accounting wrong")
	}
	e1 := m.Alloc(0, 1, false)
	e2 := m.Alloc(0, 2, true)
	e3 := m.Alloc(1, 1, true)
	e4 := m.Alloc(1, 2, false)
	if e1 == nil || e2 == nil || e3 == nil || e4 == nil {
		t.Fatal("allocation within capacity failed")
	}
	if m.Alloc(0, 3, false) != nil {
		t.Fatal("allocation beyond capacity succeeded")
	}
	if m.UsedBy(0) != 2 || m.UsedBy(1) != 2 {
		t.Fatal("per-thread accounting wrong")
	}
	m.Release(e2)
	if m.Used() != 3 || m.UsedBy(0) != 1 {
		t.Fatal("release accounting wrong")
	}
	if m.Alloc(1, 3, false) == nil {
		t.Fatal("freed entry not reusable")
	}
}

func TestForwardingExactResolvedOlderOnly(t *testing.T) {
	m := New(16, 2)
	st := m.Alloc(0, 5, true)
	// Unresolved store: no forwarding.
	if m.Forward(0, 10, 0x100) {
		t.Fatal("forwarded from unresolved store")
	}
	m.Resolve(st, 0x100)
	if !m.Forward(0, 10, 0x100) {
		t.Fatal("no forward from resolved same-address older store")
	}
	if m.Forward(0, 10, 0x108) {
		t.Fatal("forwarded across different 8-byte words")
	}
	if !m.Forward(0, 10, 0x104) {
		t.Fatal("same 8-byte word should forward regardless of low bits")
	}
	// Younger store must not forward to an older load.
	if m.Forward(0, 3, 0x100) {
		t.Fatal("forwarded from younger store")
	}
	// Other thread's store must not forward.
	if m.Forward(1, 10, 0x100) {
		t.Fatal("forwarded across threads")
	}
	if m.Forwards() != 2 {
		t.Errorf("forward count %d, want 2", m.Forwards())
	}
}

func TestForwardPicksYoungestOlderStore(t *testing.T) {
	m := New(16, 1)
	a := m.Alloc(0, 1, true)
	b := m.Alloc(0, 2, true)
	m.Resolve(a, 0x200)
	m.Resolve(b, 0x300)
	// The load at seq 5 from 0x300 matches only store b.
	if !m.Forward(0, 5, 0x300) {
		t.Fatal("should forward from store b")
	}
}

func TestSquashYounger(t *testing.T) {
	m := New(16, 2)
	m.Alloc(0, 1, true)
	m.Alloc(0, 2, false)
	m.Alloc(0, 3, true)
	m.Alloc(1, 9, false)
	n := m.SquashYounger(0, 1)
	if n != 2 {
		t.Fatalf("squashed %d entries, want 2", n)
	}
	if m.UsedBy(0) != 1 || m.UsedBy(1) != 1 {
		t.Fatalf("post-squash accounting: t0=%d t1=%d", m.UsedBy(0), m.UsedBy(1))
	}
	// Squash with nothing younger is a no-op.
	if m.SquashYounger(0, 100) != 0 {
		t.Fatal("no-op squash removed entries")
	}
}

func TestReleaseUnknownPanics(t *testing.T) {
	m := New(4, 1)
	e := m.Alloc(0, 1, false)
	m.Release(e)
	defer func() {
		if recover() == nil {
			t.Error("double release should panic")
		}
	}()
	m.Release(e)
}

func TestDefaults(t *testing.T) {
	m := New(0, 0)
	if m.Capacity() != 128 {
		t.Errorf("default capacity %d", m.Capacity())
	}
	if m.Alloc(0, 1, false) == nil {
		t.Error("default MOB unusable")
	}
}

// Property: Used always equals the sum of per-thread usage, under any
// alloc/release/squash interleaving.
func TestAccountingInvariantProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		m := New(32, 2)
		var live []*Entry
		seq := uint64(0)
		for _, op := range ops {
			switch op % 3 {
			case 0:
				seq++
				if e := m.Alloc(int(op/3)%2, seq, op%2 == 0); e != nil {
					live = append(live, e)
				}
			case 1:
				if len(live) > 0 {
					m.Release(live[len(live)-1])
					live = live[:len(live)-1]
				}
			case 2:
				tgt := int(op/3) % 2
				m.SquashYounger(tgt, seq/2)
				kept := live[:0]
				for _, e := range live {
					if e.Thread == tgt && e.Seq > seq/2 {
						continue
					}
					kept = append(kept, e)
				}
				live = kept
			}
			if m.Used() != m.UsedBy(0)+m.UsedBy(1) || m.Used() != len(live) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
