// Package mob models the shared memory order buffer of the baseline machine
// (Table 1: MOB of 128 entries, shared load and store queues). Loads and
// stores allocate an entry at rename and release it at commit or squash;
// loads search older same-thread stores for store-to-load forwarding.
//
// Memory-order misspeculation replay is not modelled: the simulator is
// trace-driven, so load values are always architectural. The MOB's role in
// this study is occupancy (a shared resource threads can starve on) and
// forwarding latency.
//
// Storage is a value arena: all entries live in one fixed slab sized to the
// capacity, with a free list of slot indices and per-thread program-order
// index lists. Alloc/Release recycle slots instead of touching the heap
// (the pointer-per-entry layout was the simulator's single largest
// allocation site), and the forwarding scan walks contiguous memory.
package mob

// Entry identifies one in-flight memory operation. Entries are slots of the
// MOB's arena: pointers returned by Alloc stay valid until Release, then the
// slot is recycled.
type Entry struct {
	Thread  int
	Seq     uint64 // per-thread program order
	Addr    uint64
	IsStore bool
	// Resolved is set when the address (and, for stores, data) is known,
	// i.e. the uop has executed.
	Resolved bool

	// idx is the entry's arena slot, fixed at construction.
	idx int32
}

// MOB is the shared memory order buffer. It is not safe for concurrent use.
type MOB struct {
	capacity int
	arena    []Entry
	freeList []int32
	// stores and loads hold arena indices per thread in program order.
	stores [][]int32
	loads  [][]int32
	used   int

	forwards uint64
}

// New returns a MOB with the given total capacity shared by n threads.
func New(capacity, n int) *MOB {
	if capacity <= 0 {
		capacity = 128
	}
	if n <= 0 {
		n = 1
	}
	m := &MOB{
		capacity: capacity,
		arena:    make([]Entry, capacity),
		freeList: make([]int32, capacity),
		stores:   make([][]int32, n),
		loads:    make([][]int32, n),
	}
	for i := range m.freeList {
		// Pop from the end; keep low indices allocated first.
		m.freeList[i] = int32(capacity - 1 - i)
	}
	for t := 0; t < n; t++ {
		// Any one thread may hold up to the full shared capacity; sizing the
		// index lists up front keeps Alloc append-free for good.
		m.stores[t] = make([]int32, 0, capacity)
		m.loads[t] = make([]int32, 0, capacity)
	}
	return m
}

// Capacity returns the total number of entries.
//
//smtlint:noalloc
func (m *MOB) Capacity() int { return m.capacity }

// Used returns the number of allocated entries.
//
//smtlint:noalloc
func (m *MOB) Used() int { return m.used }

// Free returns the number of available entries.
//
//smtlint:noalloc
func (m *MOB) Free() int { return m.capacity - m.used }

// UsedBy returns the number of entries held by thread t.
//
//smtlint:noalloc
func (m *MOB) UsedBy(t int) int { return len(m.stores[t]) + len(m.loads[t]) }

// Alloc allocates an entry for thread t at sequence seq. It returns nil if
// the MOB is full.
//
//smtlint:noalloc
func (m *MOB) Alloc(t int, seq uint64, isStore bool) *Entry {
	if m.used >= m.capacity {
		return nil
	}
	idx := m.freeList[len(m.freeList)-1]
	m.freeList = m.freeList[:len(m.freeList)-1]
	e := &m.arena[idx]
	*e = Entry{Thread: t, Seq: seq, IsStore: isStore, idx: idx}
	if isStore {
		//smtlint:allow per-thread index lists bounded by MOB capacity; backings reused
		m.stores[t] = append(m.stores[t], idx)
	} else {
		//smtlint:allow per-thread index lists bounded by MOB capacity; backings reused
		m.loads[t] = append(m.loads[t], idx)
	}
	m.used++
	return e
}

// Resolve marks e executed with address addr.
//
//smtlint:noalloc
func (m *MOB) Resolve(e *Entry, addr uint64) {
	e.Addr = addr
	e.Resolved = true
}

// Forward reports whether a load by thread t at sequence seq from addr can
// be served by an older resolved store of the same thread to the same
// 8-byte-aligned address.
//
//smtlint:noalloc
func (m *MOB) Forward(t int, seq uint64, addr uint64) bool {
	a := addr &^ 7
	sts := m.stores[t]
	for i := len(sts) - 1; i >= 0; i-- {
		s := &m.arena[sts[i]]
		if s.Seq >= seq {
			continue
		}
		if s.Resolved && s.Addr&^7 == a {
			m.forwards++
			return true
		}
	}
	return false
}

// Release removes e (commit or squash). Releasing an entry that is not
// present is a programming error and panics.
//
//smtlint:noalloc
func (m *MOB) Release(e *Entry) {
	var list *[]int32
	if e.IsStore {
		list = &m.stores[e.Thread]
	} else {
		list = &m.loads[e.Thread]
	}
	for i, idx := range *list {
		if idx == e.idx {
			//smtlint:allow copy-down removal within existing capacity; never grows
			*list = append((*list)[:i], (*list)[i+1:]...)
			//smtlint:allow free list refills within its construction-time capacity
			m.freeList = append(m.freeList, e.idx)
			m.used--
			return
		}
	}
	panic("mob: Release of entry not in MOB")
}

// SquashYounger removes all entries of thread t with Seq > seq and returns
// how many were removed.
//
//smtlint:noalloc
func (m *MOB) SquashYounger(t int, seq uint64) int {
	n := 0
	n += m.squashList(&m.stores[t], seq)
	n += m.squashList(&m.loads[t], seq)
	m.used -= n
	return n
}

//smtlint:noalloc
func (m *MOB) squashList(list *[]int32, seq uint64) int {
	// Entries are in program order; find the first younger entry.
	l := *list
	i := len(l)
	for i > 0 && m.arena[l[i-1]].Seq > seq {
		i--
	}
	n := len(l) - i
	//smtlint:allow free list refills within its construction-time capacity
	m.freeList = append(m.freeList, l[i:]...)
	*list = l[:i]
	return n
}

// Forwards returns the number of successful store-to-load forwards.
//
//smtlint:noalloc
func (m *MOB) Forwards() uint64 { return m.forwards }
