package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"clustersmt/internal/isa"
)

// Binary trace format.
//
// Traces can be materialized to disk so that expensive generation (or, for a
// user with real traces, external conversion) happens once. The format is a
// little-endian stream:
//
//	header:  magic "CSMT" | u16 version | u16 reserved | u64 count
//	record:  u64 pc | u8 class | u8 flags | i16 src1 | i16 src2 | i16 dst |
//	         u64 addr | u64 target
//
// flags bit0 = branch taken.
const (
	traceMagic   = "CSMT"
	traceVersion = 1
	recordSize   = 8 + 1 + 1 + 2 + 2 + 2 + 8 + 8
)

// ErrBadTrace reports a malformed trace file.
var ErrBadTrace = errors.New("trace: malformed trace file")

// Write serializes uops to w in the binary trace format.
func Write(w io.Writer, uops []isa.Uop) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint16(hdr[0:], traceVersion)
	binary.LittleEndian.PutUint16(hdr[2:], 0)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(len(uops)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [recordSize]byte
	for i := range uops {
		u := &uops[i]
		binary.LittleEndian.PutUint64(rec[0:], u.PC)
		rec[8] = byte(u.Class)
		var flags byte
		if u.Taken {
			flags |= 1
		}
		rec[9] = flags
		binary.LittleEndian.PutUint16(rec[10:], uint16(u.Src1))
		binary.LittleEndian.PutUint16(rec[12:], uint16(u.Src2))
		binary.LittleEndian.PutUint16(rec[14:], uint16(u.Dst))
		binary.LittleEndian.PutUint64(rec[16:], u.Addr)
		binary.LittleEndian.PutUint64(rec[24:], u.Target)
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserializes a trace previously written by Write.
func Read(r io.Reader) ([]isa.Uop, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTrace, magic)
	}
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if v := binary.LittleEndian.Uint16(hdr[0:]); v != traceVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadTrace, v)
	}
	count := binary.LittleEndian.Uint64(hdr[4:])
	const maxCount = 1 << 28 // 256M uops ≈ 8 GiB; refuse absurd headers
	if count > maxCount {
		return nil, fmt.Errorf("%w: implausible count %d", ErrBadTrace, count)
	}
	uops := make([]isa.Uop, count)
	var rec [recordSize]byte
	for i := range uops {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated at record %d: %v", ErrBadTrace, i, err)
		}
		u := &uops[i]
		u.PC = binary.LittleEndian.Uint64(rec[0:])
		u.Class = isa.Class(rec[8])
		if !u.Class.Valid() || u.Class == isa.Copy {
			return nil, fmt.Errorf("%w: record %d has invalid class %d", ErrBadTrace, i, rec[8])
		}
		u.Taken = rec[9]&1 != 0
		u.Src1 = int16(binary.LittleEndian.Uint16(rec[10:]))
		u.Src2 = int16(binary.LittleEndian.Uint16(rec[12:]))
		u.Dst = int16(binary.LittleEndian.Uint16(rec[14:]))
		u.Addr = binary.LittleEndian.Uint64(rec[16:])
		u.Target = binary.LittleEndian.Uint64(rec[24:])
	}
	return uops, nil
}
