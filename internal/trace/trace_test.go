package trace

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"clustersmt/internal/isa"
)

func TestProfileTemplatesValidate(t *testing.T) {
	for _, p := range []Profile{ILPProfile("a"), MemProfile("b"), MixProfile("c")} {
		if err := p.Validate(); err != nil {
			t.Errorf("template %s invalid: %v", p.Name, err)
		}
	}
}

func TestProfileValidateErrors(t *testing.T) {
	base := ILPProfile("x")
	mut := []struct {
		name string
		fn   func(*Profile)
	}{
		{"no name", func(p *Profile) { p.Name = "" }},
		{"zero mix", func(p *Profile) {
			p.MixInt, p.MixIntMul, p.MixFp, p.MixLoad, p.MixStore, p.MixBranch = 0, 0, 0, 0, 0, 0
		}},
		{"negative mix", func(p *Profile) { p.MixFp = -0.1 }},
		{"bad depp", func(p *Profile) { p.DepP = 0 }},
		{"bad twosrc", func(p *Profile) { p.TwoSrcFrac = 1.5 }},
		{"bad fpdata", func(p *Profile) { p.FpDataFrac = -1 }},
		{"zero ws", func(p *Profile) { p.WorkingSet = 0 }},
		{"bad stride", func(p *Profile) { p.StrideFrac = 2 }},
		{"stride+cold", func(p *Profile) { p.StrideFrac = 0.9; p.ColdFrac = 0.2 }},
		{"bad chase", func(p *Profile) { p.ChaseFrac = -0.1 }},
		{"no branch sites", func(p *Profile) { p.NumBranchSites = 0 }},
		{"bad bias", func(p *Profile) { p.BranchBias = 0.3 }},
		{"bad noise", func(p *Profile) { p.BranchNoise = 0.9 }},
		{"no code", func(p *Profile) { p.CodeFootprint = 0 }},
	}
	for _, m := range mut {
		p := base
		m.fn(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: expected validation error", m.name)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p := MixProfile("det")
	a := NewGenerator(p, 42).Generate(5000)
	b := NewGenerator(p, 42).Generate(5000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := NewGenerator(p, 43).Generate(100)
	same := 0
	for i := range c {
		if c[i] == a[i] {
			same++
		}
	}
	if same == len(c) {
		t.Error("different seeds produced identical streams")
	}
}

func TestGeneratorMixFractions(t *testing.T) {
	p := MixProfile("mix")
	uops := NewGenerator(p, 7).Generate(200000)
	counts := map[isa.Class]int{}
	for i := range uops {
		counts[uops[i].Class]++
	}
	total := float64(len(uops))
	sum := p.MixInt + p.MixIntMul + p.MixFp + p.MixLoad + p.MixStore + p.MixBranch
	check := func(c isa.Class, want float64) {
		got := float64(counts[c]) / total
		if math.Abs(got-want/sum) > 0.01 {
			t.Errorf("class %v fraction %.3f, want %.3f", c, got, want/sum)
		}
	}
	check(isa.Int, p.MixInt)
	check(isa.IntMul, p.MixIntMul)
	check(isa.Fp, p.MixFp)
	check(isa.Load, p.MixLoad)
	check(isa.Store, p.MixStore)
	check(isa.Branch, p.MixBranch)
}

func TestGeneratorOperandKinds(t *testing.T) {
	uops := NewGenerator(MixProfile("ok"), 3).Generate(50000)
	for i := range uops {
		u := &uops[i]
		switch u.Class {
		case isa.Int, isa.IntMul:
			if isa.KindOf(u.Dst) != isa.IntReg {
				t.Fatalf("int uop with non-int dest: %v", u)
			}
		case isa.Fp:
			if isa.KindOf(u.Dst) != isa.FpReg {
				t.Fatalf("fp uop with non-fp dest: %v", u)
			}
			if isa.KindOf(u.Src1) != isa.FpReg {
				t.Fatalf("fp uop with non-fp source: %v", u)
			}
		case isa.Load:
			if !u.HasDest() {
				t.Fatalf("load without dest: %v", u)
			}
			if isa.KindOf(u.Src1) != isa.IntReg {
				t.Fatalf("load with non-int base: %v", u)
			}
		case isa.Store:
			if u.HasDest() {
				t.Fatalf("store with dest: %v", u)
			}
		case isa.Branch:
			if u.HasDest() {
				t.Fatalf("branch with dest: %v", u)
			}
		}
	}
}

func TestGeneratorBranchBias(t *testing.T) {
	p := ILPProfile("bias") // bias 0.97 loops
	uops := NewGenerator(p, 11).Generate(300000)
	perSite := map[uint64][2]int{}
	for i := range uops {
		if uops[i].Class != isa.Branch {
			continue
		}
		c := perSite[uops[i].PC]
		if uops[i].Taken {
			c[0]++
		} else {
			c[1]++
		}
		perSite[uops[i].PC] = c
	}
	if len(perSite) == 0 {
		t.Fatal("no branches generated")
	}
	for pc, c := range perSite {
		total := c[0] + c[1]
		if total < 100 {
			continue
		}
		dom := math.Max(float64(c[0]), float64(c[1])) / float64(total)
		// Loop period ~33 with 2% noise: dominant fraction should be high.
		if dom < 0.85 {
			t.Errorf("site %#x dominant outcome only %.2f", pc, dom)
		}
	}
}

func TestGeneratorColdAddresses(t *testing.T) {
	p := MemProfile("cold")
	uops := NewGenerator(p, 5).Generate(100000)
	cold, hot, mem := 0, 0, 0
	for i := range uops {
		if !uops[i].IsMem() {
			continue
		}
		mem++
		if uops[i].Addr >= coldBase {
			cold++
		} else {
			hot++
			if uops[i].Addr >= p.WorkingSet {
				t.Fatalf("hot address %#x outside working set", uops[i].Addr)
			}
		}
	}
	frac := float64(cold) / float64(mem)
	if math.Abs(frac-p.ColdFrac) > 0.01 {
		t.Errorf("cold fraction %.4f, want ~%.4f", frac, p.ColdFrac)
	}
}

func TestGeneratorPointerChase(t *testing.T) {
	p := MemProfile("chase") // ChaseFrac 0.85
	g := NewGenerator(p, 9)
	var lastColdDst int16 = -1
	chained, coldLoads := 0, 0
	for i := 0; i < 300000; i++ {
		u := g.Next()
		if u.Class == isa.Load && u.Addr >= coldBase {
			coldLoads++
			if u.Src1 == lastColdDst {
				chained++
			}
			lastColdDst = u.Dst
		}
	}
	if coldLoads == 0 {
		t.Fatal("no cold loads")
	}
	frac := float64(chained) / float64(coldLoads)
	if frac < p.ChaseFrac-0.1 {
		t.Errorf("chained fraction %.3f, want >= ~%.3f", frac, p.ChaseFrac)
	}
}

func TestWrongPathGeneratorNoBranches(t *testing.T) {
	w := NewWrongPathGenerator(MixProfile("wp"), 77)
	for i := 0; i < 20000; i++ {
		u := w.Next()
		if u.Class == isa.Branch {
			t.Fatal("wrong-path stream emitted a branch")
		}
	}
}

func TestIORoundTrip(t *testing.T) {
	uops := NewGenerator(MemProfile("io"), 123).Generate(2000)
	var buf bytes.Buffer
	if err := Write(&buf, uops); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(uops) {
		t.Fatalf("length %d != %d", len(got), len(uops))
	}
	for i := range got {
		if got[i] != uops[i] {
			t.Fatalf("record %d mismatch: %v vs %v", i, got[i], uops[i])
		}
	}
}

func TestIOEmptyRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty roundtrip: %v, %d records", err, len(got))
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("WRNG"),
		[]byte("CSMT"), // truncated header
		append([]byte("CSMT"), make([]byte, 12)...), // version 0
	}
	for i, c := range cases {
		if _, err := Read(bytes.NewReader(c)); !errors.Is(err, ErrBadTrace) {
			t.Errorf("case %d: want ErrBadTrace, got %v", i, err)
		}
	}
}

func TestReadRejectsTruncatedBody(t *testing.T) {
	uops := NewGenerator(ILPProfile("tr"), 1).Generate(10)
	var buf bytes.Buffer
	if err := Write(&buf, uops); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-5]
	if _, err := Read(bytes.NewReader(cut)); !errors.Is(err, ErrBadTrace) {
		t.Errorf("truncated body: want ErrBadTrace, got %v", err)
	}
}

func TestReadRejectsInvalidClass(t *testing.T) {
	uops := []isa.Uop{{Class: isa.Int, Src1: isa.RegNone, Src2: isa.RegNone, Dst: 1}}
	var buf bytes.Buffer
	if err := Write(&buf, uops); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4+12+8] = 99 // class byte of the first record
	if _, err := Read(bytes.NewReader(b)); !errors.Is(err, ErrBadTrace) {
		t.Errorf("invalid class: want ErrBadTrace, got %v", err)
	}
}

// Property: any generated stream round-trips bit-exactly.
func TestIORoundTripProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		uops := NewGenerator(MixProfile("prop"), seed).Generate(int(n))
		var buf bytes.Buffer
		if err := Write(&buf, uops); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || len(got) != len(uops) {
			return false
		}
		for i := range got {
			if got[i] != uops[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: dependency distances follow the configured geometry roughly —
// closer DepP means shorter mean distance to the producing uop.
func TestDependencyDistanceOrdering(t *testing.T) {
	meanDist := func(depp float64) float64 {
		p := ILPProfile("dep")
		p.DepP = depp
		uops := NewGenerator(p, 42).Generate(100000)
		last := map[int16]int{}
		total, n := 0, 0
		for i := range uops {
			u := &uops[i]
			if u.Src1 != isa.RegNone {
				if j, ok := last[u.Src1]; ok {
					total += i - j
					n++
				}
			}
			if u.HasDest() {
				last[u.Dst] = i
			}
		}
		return float64(total) / float64(n)
	}
	tight := meanDist(0.6)
	loose := meanDist(0.07)
	if tight >= loose {
		t.Errorf("mean distance with DepP=0.6 (%.2f) should be below DepP=0.07 (%.2f)", tight, loose)
	}
}
