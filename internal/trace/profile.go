// Package trace generates and stores the uop streams the simulator consumes.
//
// The paper drives its simulator with 120 proprietary two-threaded x86
// traces (Table 2). Those traces are not available, so this package
// substitutes a statistical generator: each benchmark is described by a
// Profile capturing the properties the resource-assignment schemes actually
// react to — instruction mix, dependency distances (ILP), memory working-set
// size and locality (L1/L2 miss behaviour), branch density and
// predictability, and integer-vs-FP register pressure. See DESIGN.md §2.
//
// Streams are deterministic: the same Profile and seed always produce the
// same uop sequence, so every experiment is reproducible bit-for-bit.
package trace

import (
	"errors"
	"fmt"
)

// Profile statistically describes one benchmark trace.
type Profile struct {
	// Name identifies the trace (e.g. "ispec00.ilp.0").
	Name string

	// Mix gives the fraction of uops in each class. Only Int, IntMul, Fp,
	// Load, Store and Branch entries are consulted; they should sum to
	// roughly 1 (the generator normalizes).
	MixInt    float64
	MixIntMul float64
	MixFp     float64
	MixLoad   float64
	MixStore  float64
	MixBranch float64

	// DepP is the geometric parameter for dependency distance: a source
	// operand reads the destination of the k-th most recent producer with
	// probability p(1-p)^k. Larger DepP means tighter dependency chains
	// (lower ILP); smaller DepP means more distant dependencies (higher
	// ILP).
	DepP float64

	// TwoSrcFrac is the fraction of arithmetic uops with two register
	// sources.
	TwoSrcFrac float64

	// FpDataFrac is the probability that a load/store moves FP/SIMD data
	// (destination/source in the FP file). Drives per-kind register
	// pressure (e.g. ISPEC00 is almost pure integer; FSPEC00 mostly FP).
	FpDataFrac float64

	// WorkingSet is the memory footprint in bytes. Addresses are drawn
	// from this region; a footprint below the L1 capacity produces few
	// misses, between L1 and L2 produces L1 misses, and above L2 produces
	// the long-latency misses that Stall/Flush+ react to.
	WorkingSet uint64

	// StrideFrac is the fraction of memory accesses that follow a
	// sequential stride (spatial locality); the non-strided, non-cold
	// remainder is uniform random within the working set.
	StrideFrac float64

	// ColdFrac is the fraction of memory accesses that touch a large cold
	// region that never fits in the L2; it directly controls the
	// long-latency (L2-miss) rate the Stall/Flush+ policies react to.
	ColdFrac float64

	// ChaseFrac is the probability that a cold load's address depends on
	// the previous cold load's result (pointer chasing). Chased misses
	// serialize — the memory-level parallelism killer that makes a missing
	// thread sit on its issue-queue entries, the §5.1 starvation scenario.
	ChaseFrac float64

	// NumBranchSites is the number of static branch PCs; fewer sites with
	// stable bias are highly predictable, many sites with Bias near 0.5
	// defeat the gshare predictor.
	NumBranchSites int

	// BranchBias sets the dominant-outcome fraction per site. Sites behave
	// like loop branches: taken for round(1/(1-bias))-1 iterations, then
	// not taken (or the mirror pattern) — a structure gshare learns, as it
	// does for real loop branches. 0.5 yields alternating branches, 1.0 a
	// never-exiting loop.
	BranchBias float64

	// BranchNoise is the probability a branch outcome deviates from its
	// site's loop pattern; it is the floor on the achievable misprediction
	// rate (data-dependent branches in real code play this role).
	BranchNoise float64

	// CodeFootprint is the number of static non-branch PCs (basic-block
	// working set); only used to lay out synthetic PCs.
	CodeFootprint int
}

// Validate checks that the profile is internally consistent.
func (p *Profile) Validate() error {
	if p.Name == "" {
		return errors.New("trace: profile missing name")
	}
	sum := p.MixInt + p.MixIntMul + p.MixFp + p.MixLoad + p.MixStore + p.MixBranch
	if sum <= 0 {
		return fmt.Errorf("trace: profile %q has non-positive mix sum", p.Name)
	}
	if p.MixInt < 0 || p.MixIntMul < 0 || p.MixFp < 0 || p.MixLoad < 0 || p.MixStore < 0 || p.MixBranch < 0 {
		return fmt.Errorf("trace: profile %q has a negative mix entry", p.Name)
	}
	if p.DepP <= 0 || p.DepP > 1 {
		return fmt.Errorf("trace: profile %q DepP=%v outside (0,1]", p.Name, p.DepP)
	}
	if p.TwoSrcFrac < 0 || p.TwoSrcFrac > 1 {
		return fmt.Errorf("trace: profile %q TwoSrcFrac=%v outside [0,1]", p.Name, p.TwoSrcFrac)
	}
	if p.FpDataFrac < 0 || p.FpDataFrac > 1 {
		return fmt.Errorf("trace: profile %q FpDataFrac=%v outside [0,1]", p.Name, p.FpDataFrac)
	}
	if p.WorkingSet == 0 {
		return fmt.Errorf("trace: profile %q has zero working set", p.Name)
	}
	if p.StrideFrac < 0 || p.StrideFrac > 1 {
		return fmt.Errorf("trace: profile %q StrideFrac=%v outside [0,1]", p.Name, p.StrideFrac)
	}
	if p.ColdFrac < 0 || p.ColdFrac+p.StrideFrac > 1 {
		return fmt.Errorf("trace: profile %q ColdFrac=%v invalid (StrideFrac+ColdFrac must be <= 1)", p.Name, p.ColdFrac)
	}
	if p.ChaseFrac < 0 || p.ChaseFrac > 1 {
		return fmt.Errorf("trace: profile %q ChaseFrac=%v outside [0,1]", p.Name, p.ChaseFrac)
	}
	if p.NumBranchSites <= 0 {
		return fmt.Errorf("trace: profile %q needs at least one branch site", p.Name)
	}
	if p.BranchBias < 0.5 || p.BranchBias > 1 {
		return fmt.Errorf("trace: profile %q BranchBias=%v outside [0.5,1]", p.Name, p.BranchBias)
	}
	if p.BranchNoise < 0 || p.BranchNoise > 0.5 {
		return fmt.Errorf("trace: profile %q BranchNoise=%v outside [0,0.5]", p.Name, p.BranchNoise)
	}
	if p.CodeFootprint <= 0 {
		return fmt.Errorf("trace: profile %q needs a positive code footprint", p.Name)
	}
	return nil
}

// ILPProfile returns a template profile for a compute-bound, highly parallel
// trace: small working set, distant dependencies, predictable branches.
// Callers typically adjust the mix for their category.
func ILPProfile(name string) Profile {
	return Profile{
		Name:           name,
		MixInt:         0.45,
		MixIntMul:      0.05,
		MixFp:          0.10,
		MixLoad:        0.20,
		MixStore:       0.08,
		MixBranch:      0.12,
		DepP:           0.07,
		TwoSrcFrac:     0.45,
		FpDataFrac:     0.15,
		WorkingSet:     16 << 10, // fits in L1
		StrideFrac:     0.9,
		ColdFrac:       0.0005,
		ChaseFrac:      0.25,
		NumBranchSites: 32,
		BranchBias:     0.97,
		BranchNoise:    0.02,
		CodeFootprint:  256,
	}
}

// MemProfile returns a template profile for a memory-bound trace: working
// set far beyond L2, poor locality, so loads frequently take the full
// memory latency and trigger the L2-miss-driven policies.
func MemProfile(name string) Profile {
	return Profile{
		Name:           name,
		MixInt:         0.36,
		MixIntMul:      0.03,
		MixFp:          0.07,
		MixLoad:        0.28,
		MixStore:       0.11,
		MixBranch:      0.13,
		DepP:           0.5,
		TwoSrcFrac:     0.40,
		FpDataFrac:     0.15,
		WorkingSet:     256 << 10, // L1-missing, L2-resident hot set
		StrideFrac:     0.55,
		ColdFrac:       0.02, // a long-latency miss every ~130 uops
		ChaseFrac:      0.85, // mostly serialized (pointer chasing)
		NumBranchSites: 128,
		BranchBias:     0.90,
		BranchNoise:    0.035,
		CodeFootprint:  512,
	}
}

// MixProfile returns a template between ILP and MEM behaviour: working set
// around the L2 capacity, moderate ILP and predictability.
func MixProfile(name string) Profile {
	return Profile{
		Name:           name,
		MixInt:         0.40,
		MixIntMul:      0.04,
		MixFp:          0.09,
		MixLoad:        0.25,
		MixStore:       0.10,
		MixBranch:      0.12,
		DepP:           0.25,
		TwoSrcFrac:     0.42,
		FpDataFrac:     0.15,
		WorkingSet:     96 << 10, // mostly inside L2, misses L1
		StrideFrac:     0.7,
		ColdFrac:       0.015,
		ChaseFrac:      0.6,
		NumBranchSites: 64,
		BranchBias:     0.93,
		BranchNoise:    0.035,
		CodeFootprint:  384,
	}
}
