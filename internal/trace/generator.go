package trace

import (
	"clustersmt/internal/isa"
	"clustersmt/internal/xrand"
)

// Generator produces a deterministic uop stream from a Profile.
//
// It maintains a tiny architectural model so that streams are plausible:
// register producers are tracked per kind so dependency distances follow
// the profile's geometric distribution, memory addresses follow a
// stride-plus-random pattern over the working set, and branch outcomes are
// drawn per static site with the configured bias.
type Generator struct {
	prof Profile
	rng  *xrand.Rand

	// weights for class selection, indexed by generated class order;
	// weightSum is their fixed left-to-right float64 sum, precomputed so
	// each class draw skips re-summing.
	weights   []float64
	weightSum float64

	// recent[k] is a circular buffer of recently written logical registers
	// of kind k, used to realize dependency distances. recentHead[k] is the
	// index of the most recent producer, recentLen[k] the filled length.
	recent     [isa.NumRegKinds][]int16
	recentHead [isa.NumRegKinds]int
	recentLen  [isa.NumRegKinds]int

	// branch site state: each site behaves like a loop branch with a fixed
	// period (dominant outcome period-1 times, then the exit outcome) plus
	// per-outcome noise. takenBiased selects the dominant direction.
	branchPCs    []uint64
	branchPeriod []int
	branchCount  []int
	takenBiased  []bool

	// codePCs lays out synthetic instruction PCs.
	codePCs []uint64
	pcIdx   int

	// memory address state
	nextStride uint64
	siteCursor int
	// lastColdDest is the destination register of the previous cold load,
	// used to build pointer-chase dependence chains; -1 before the first.
	lastColdDest int16

	// round-robin destination allocation cursor per kind; writing
	// registers in rotation keeps all architectural registers live,
	// matching compiler register allocation pressure.
	dstCursor [isa.NumRegKinds]int
}

// genClasses is the class order matching Generator.weights.
var genClasses = []isa.Class{isa.Int, isa.IntMul, isa.Fp, isa.Load, isa.Store, isa.Branch}

// NewGenerator returns a generator for prof seeded with seed.
// It panics if the profile fails validation; callers construct profiles from
// the workload tables, which are validated by tests.
func NewGenerator(prof Profile, seed uint64) *Generator {
	if err := prof.Validate(); err != nil {
		panic(err)
	}
	g := &Generator{
		prof: prof,
		rng:  xrand.New(seed),
		weights: []float64{
			prof.MixInt, prof.MixIntMul, prof.MixFp,
			prof.MixLoad, prof.MixStore, prof.MixBranch,
		},
	}
	for _, w := range g.weights {
		g.weightSum += w
	}
	sm := seed ^ 0xc0dec0dec0dec0de
	g.branchPCs = make([]uint64, prof.NumBranchSites)
	g.branchPeriod = make([]int, prof.NumBranchSites)
	g.branchCount = make([]int, prof.NumBranchSites)
	g.takenBiased = make([]bool, prof.NumBranchSites)
	biasRng := xrand.New(xrand.SplitMix64(&sm))
	basePeriod := int(1/(1-prof.BranchBias) + 0.5)
	if prof.BranchBias >= 1 {
		basePeriod = 1 << 20 // effectively never exits
	}
	if basePeriod < 2 {
		basePeriod = 2
	}
	for i := range g.branchPCs {
		g.branchPCs[i] = 0x400000 + uint64(i)*16
		// Jitter the loop period per site and start each site at a random
		// phase; half the sites are taken-biased loops, half mirrored.
		p := basePeriod + biasRng.Intn(basePeriod/2+1)
		g.branchPeriod[i] = p
		g.branchCount[i] = biasRng.Intn(p)
		g.takenBiased[i] = biasRng.Bool(0.5)
	}
	g.codePCs = make([]uint64, prof.CodeFootprint)
	for i := range g.codePCs {
		g.codePCs[i] = 0x500000 + uint64(i)*4
	}
	for k := 0; k < isa.NumRegKinds; k++ {
		g.recent[k] = make([]int16, 16)
		g.recentHead[k] = -1
	}
	g.nextStride = uint64(g.rng.Intn(int(prof.WorkingSet/64))) * 64
	g.lastColdDest = -1
	return g
}

// Profile returns the profile the generator was built from.
func (g *Generator) Profile() Profile { return g.prof }

// noteProducer records that logical register r (of kind k) was just written.
// The ring advances in place: no per-uop shifting.
//
//smtlint:noalloc
func (g *Generator) noteProducer(k isa.RegKind, r int16) {
	ring := g.recent[k]
	h := g.recentHead[k] + 1
	if h == len(ring) {
		h = 0
	}
	ring[h] = r
	g.recentHead[k] = h
	if g.recentLen[k] < len(ring) {
		g.recentLen[k]++
	}
}

// pickSource selects a source register of kind k at the profile's dependency
// distance. If no producer has been seen yet it returns an arbitrary
// register of that kind (architecturally live-in value).
//
//smtlint:noalloc
func (g *Generator) pickSource(k isa.RegKind) int16 {
	n := g.recentLen[k]
	if n == 0 {
		return isa.FirstReg(k) + int16(g.rng.Intn(isa.RegCount(k)))
	}
	d := g.rng.Geometric(g.prof.DepP)
	if d >= n {
		d = n - 1
	}
	ring := g.recent[k]
	i := g.recentHead[k] - d
	if i < 0 {
		i += len(ring)
	}
	return ring[i]
}

// pickDest allocates the next destination register of kind k in rotation.
//
//smtlint:noalloc
func (g *Generator) pickDest(k isa.RegKind) int16 {
	n := isa.RegCount(k)
	r := isa.FirstReg(k) + int16(g.dstCursor[k]%n)
	g.dstCursor[k]++
	return r
}

// coldBase places the cold region far above any hot working set.
const coldBase = 1 << 36

// coldSpan is the size of the cold region (256 MB: never L2-resident).
const coldSpan = 256 << 20

// nextAddrClass produces the next memory address per the profile's
// locality — a strided stream and uniform reuse within the hot working set,
// plus a ColdFrac tail into a region that never caches — and reports
// whether the cold region was chosen.
//
//smtlint:noalloc
func (g *Generator) nextAddrClass() (addr uint64, cold bool) {
	ws := g.prof.WorkingSet
	x := g.rng.Float64()
	switch {
	case x < g.prof.ColdFrac:
		return coldBase + uint64(g.rng.Intn(coldSpan/8))*8, true
	case x < g.prof.ColdFrac+g.prof.StrideFrac:
		g.nextStride += 8
		if g.nextStride >= ws {
			g.nextStride = 0
		}
		return g.nextStride, false
	default:
		// Random reuse within the hot working set, 8-byte aligned.
		return uint64(g.rng.Intn(int(ws/8))) * 8, false
	}
}

// nextAddr is nextAddrClass without the cold indication.
//
//smtlint:noalloc
func (g *Generator) nextAddr() uint64 {
	addr, _ := g.nextAddrClass()
	return addr
}

// nextPC returns the next synthetic instruction PC.
//
//smtlint:noalloc
func (g *Generator) nextPC() uint64 {
	pc := g.codePCs[g.pcIdx%len(g.codePCs)]
	g.pcIdx++
	return pc
}

// Next generates the next uop in the stream.
//
//smtlint:noalloc
func (g *Generator) Next() isa.Uop {
	c := genClasses[g.rng.PickTotal(g.weights, g.weightSum)]
	var u isa.Uop
	u.Class = c
	u.Src1, u.Src2, u.Dst = isa.RegNone, isa.RegNone, isa.RegNone

	switch c {
	case isa.Int, isa.IntMul:
		u.PC = g.nextPC()
		u.Src1 = g.pickSource(isa.IntReg)
		if g.rng.Bool(g.prof.TwoSrcFrac) {
			u.Src2 = g.pickSource(isa.IntReg)
		}
		u.Dst = g.pickDest(isa.IntReg)
		g.noteProducer(isa.IntReg, u.Dst)
	case isa.Fp:
		u.PC = g.nextPC()
		u.Src1 = g.pickSource(isa.FpReg)
		if g.rng.Bool(g.prof.TwoSrcFrac) {
			u.Src2 = g.pickSource(isa.FpReg)
		}
		u.Dst = g.pickDest(isa.FpReg)
		g.noteProducer(isa.FpReg, u.Dst)
	case isa.Load:
		u.PC = g.nextPC()
		addr, cold := g.nextAddrClass()
		u.Addr = addr
		if cold {
			// Pointer chasing: a cold load's address (and so its issue)
			// may depend on the previous cold load's value, serializing
			// the long-latency misses.
			if g.lastColdDest >= 0 && g.rng.Bool(g.prof.ChaseFrac) {
				u.Src1 = g.lastColdDest
			} else {
				u.Src1 = g.pickSource(isa.IntReg)
			}
			u.Dst = g.pickDest(isa.IntReg) // pointers are integer data
			g.lastColdDest = u.Dst
			g.noteProducer(isa.IntReg, u.Dst)
		} else {
			u.Src1 = g.pickSource(isa.IntReg) // address base
			kind := isa.IntReg
			if g.rng.Bool(g.prof.FpDataFrac) {
				kind = isa.FpReg
			}
			u.Dst = g.pickDest(kind)
			g.noteProducer(kind, u.Dst)
		}
	case isa.Store:
		u.PC = g.nextPC()
		u.Src1 = g.pickSource(isa.IntReg) // address base
		kind := isa.IntReg
		if g.rng.Bool(g.prof.FpDataFrac) {
			kind = isa.FpReg
		}
		u.Src2 = g.pickSource(kind) // store data
		u.Addr = g.nextAddr()
	case isa.Branch:
		// Control flow is structured, as in real programs: branch sites
		// recur in a stable order (loop nests) with occasional transfers
		// to a random site (calls, data-dependent paths). A uniformly
		// random site sequence would make the global history pure noise
		// and defeat gshare in a way real codes do not.
		var site int
		if g.rng.Bool(0.9) {
			site = g.siteCursor % len(g.branchPCs)
			g.siteCursor++
		} else {
			site = g.rng.Intn(len(g.branchPCs))
			g.siteCursor = site + 1
		}
		u.PC = g.branchPCs[site]
		u.Src1 = g.pickSource(isa.IntReg) // condition input
		g.branchCount[site]++
		dominant := g.branchCount[site]%g.branchPeriod[site] != 0
		if !g.takenBiased[site] {
			dominant = !dominant
		}
		u.Taken = dominant
		if g.rng.Bool(g.prof.BranchNoise) {
			u.Taken = !u.Taken // data-dependent deviation
		}
		u.Target = u.PC + 64
	}
	return u
}

// Generate materializes n uops into a new slice.
func (g *Generator) Generate(n int) []isa.Uop {
	out := make([]isa.Uop, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// WrongPathGenerator yields uops fetched down a mispredicted path. The
// stream has the same statistical profile as the parent trace (wrong-path
// code is still the same program) but is drawn from an independent RNG so
// it never correlates with the correct path.
type WrongPathGenerator struct {
	g *Generator
}

// NewWrongPathGenerator builds a wrong-path stream for prof. Wrong-path
// memory traffic is damped relative to the correct path: real wrong paths
// reference mostly-cached state (stack, recently touched data) and are cut
// short by the redirect before deep pointer chains dereference cold memory.
func NewWrongPathGenerator(prof Profile, seed uint64) *WrongPathGenerator {
	prof.ColdFrac *= 0.25
	return &WrongPathGenerator{g: NewGenerator(prof, seed^0xdeadfa11deadfa11)}
}

// Next returns the next wrong-path uop. Branches on the wrong path are
// emitted as plain uops (the machine squashes the whole path when the
// triggering branch resolves, so nested redirects are not modelled).
//
//smtlint:noalloc
func (w *WrongPathGenerator) Next() isa.Uop {
	u := w.g.Next()
	if u.Class == isa.Branch {
		// Avoid recursive misprediction bookkeeping on the wrong path.
		u.Class = isa.Int
		u.Dst = w.g.pickDest(isa.IntReg)
	}
	return u
}
