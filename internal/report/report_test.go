package report

import (
	"strings"
	"testing"
)

func TestTableLayout(t *testing.T) {
	out := Table("Title", []string{"name", "v"}, [][]string{
		{"alpha", "1.00"},
		{"b", "12.50"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("expected 6 lines, got %d:\n%s", len(lines), out)
	}
	if lines[0] != "Title" || !strings.HasPrefix(lines[1], "=") {
		t.Errorf("title block wrong:\n%s", out)
	}
	if !strings.Contains(lines[2], "name") || !strings.Contains(lines[2], "v") {
		t.Errorf("header wrong: %q", lines[2])
	}
	// Value column is right-aligned to the widest cell.
	if !strings.HasSuffix(lines[4], " 1.00") || !strings.HasSuffix(lines[5], "12.50") {
		t.Errorf("alignment wrong:\n%s", out)
	}
}

func TestTableNoTitle(t *testing.T) {
	out := Table("", []string{"a"}, nil)
	if strings.Contains(out, "=") && strings.HasPrefix(out, "=") {
		t.Errorf("no-title table should not start with a rule:\n%s", out)
	}
}

func TestFormatters(t *testing.T) {
	if F(1.23456) != "1.235" {
		t.Errorf("F = %q", F(1.23456))
	}
	if Pct(1.176) != "+17.6%" {
		t.Errorf("Pct = %q", Pct(1.176))
	}
	if Pct(0.9) != "-10.0%" {
		t.Errorf("Pct = %q", Pct(0.9))
	}
}
