package report

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTableLayout(t *testing.T) {
	out := Table("Title", []string{"name", "v"}, [][]string{
		{"alpha", "1.00"},
		{"b", "12.50"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("expected 6 lines, got %d:\n%s", len(lines), out)
	}
	if lines[0] != "Title" || !strings.HasPrefix(lines[1], "=") {
		t.Errorf("title block wrong:\n%s", out)
	}
	if !strings.Contains(lines[2], "name") || !strings.Contains(lines[2], "v") {
		t.Errorf("header wrong: %q", lines[2])
	}
	// Value column is right-aligned to the widest cell.
	if !strings.HasSuffix(lines[4], " 1.00") || !strings.HasSuffix(lines[5], "12.50") {
		t.Errorf("alignment wrong:\n%s", out)
	}
}

func TestTableNoTitle(t *testing.T) {
	out := Table("", []string{"a"}, nil)
	if strings.Contains(out, "=") && strings.HasPrefix(out, "=") {
		t.Errorf("no-title table should not start with a rule:\n%s", out)
	}
}

func TestJSONStable(t *testing.T) {
	v := map[string]any{"b": 2.0, "a": []int{1, 2}}
	b1, err := JSON(v)
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := JSON(v)
	if string(b1) != string(b2) {
		t.Error("JSON output not deterministic")
	}
	if !strings.HasSuffix(string(b1), "\n") {
		t.Error("JSON output lacks trailing newline")
	}
	// Map keys sort, so "a" renders before "b".
	if strings.Index(string(b1), `"a"`) > strings.Index(string(b1), `"b"`) {
		t.Errorf("map keys unsorted:\n%s", b1)
	}
	var back map[string]any
	if err := json.Unmarshal(b1, &back); err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
}

func TestWriteJSONFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := WriteJSONFile(path, map[string]int{"x": 1}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"x": 1`) {
		t.Errorf("file content %q", b)
	}
}

func TestCSV(t *testing.T) {
	out := CSV([]string{"a", "b"}, [][]string{
		{"plain", "with,comma"},
		{`quote"inside`, "multi\nline"},
	})
	want := "a,b\n" +
		"plain,\"with,comma\"\n" +
		"\"quote\"\"inside\",\"multi\nline\"\n"
	if out != want {
		t.Errorf("CSV:\n%q\nwant\n%q", out, want)
	}
}

func TestFormatters(t *testing.T) {
	if F(1.23456) != "1.235" {
		t.Errorf("F = %q", F(1.23456))
	}
	if Pct(1.176) != "+17.6%" {
		t.Errorf("Pct = %q", Pct(1.176))
	}
	if Pct(0.9) != "-10.0%" {
		t.Errorf("Pct = %q", Pct(0.9))
	}
}
