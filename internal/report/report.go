// Package report renders experiment results as fixed-width text tables,
// one per paper figure, so the harness output can be compared side by side
// with the paper's plots — plus machine-readable JSON and CSV emitters for
// CI gates and the campaign diff tooling.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// Table formats a titled fixed-width table. Column widths adapt to content.
func Table(title string, header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(title)))
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "%*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// F formats a float with 3 decimals.
func F(v float64) string { return fmt.Sprintf("%.3f", v) }

// Pct formats a ratio as a signed percentage delta from 1.0.
func Pct(v float64) string { return fmt.Sprintf("%+.1f%%", (v-1)*100) }

// JSON marshals v as stable indented JSON with a trailing newline (map
// keys sort, struct fields follow declaration order), so emitted documents
// diff cleanly and can be checked in as goldens.
func JSON(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteJSON streams v to w in the same stable indented form as JSON. This
// is the path the campaign service's results endpoint uses: the document is
// written directly to the response writer, never buffered whole.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v) // Encode appends the trailing newline itself
}

// WriteJSONFile emits v as JSON to path.
func WriteJSONFile(path string, v any) error {
	b, err := JSON(v)
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// WriteCSV streams a header and rows to w as RFC 4180 CSV (CRLF-free: one
// \n per record, fields quoted only when they need it).
func WriteCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	if err := cw.WriteAll(rows); err != nil { // flushes
		return err
	}
	return cw.Error()
}

// CSV renders a header and rows as a CSV string (see WriteCSV).
func CSV(header []string, rows [][]string) string {
	var b strings.Builder
	WriteCSV(&b, header, rows) // a strings.Builder writer cannot fail
	return b.String()
}
