// Package report renders experiment results as fixed-width text tables,
// one per paper figure, so the harness output can be compared side by side
// with the paper's plots.
package report

import (
	"fmt"
	"strings"
)

// Table formats a titled fixed-width table. Column widths adapt to content.
func Table(title string, header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(title)))
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "%*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// F formats a float with 3 decimals.
func F(v float64) string { return fmt.Sprintf("%.3f", v) }

// Pct formats a ratio as a signed percentage delta from 1.0.
func Pct(v float64) string { return fmt.Sprintf("%+.1f%%", (v-1)*100) }
