package html

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"clustersmt/internal/campaign"
	"clustersmt/internal/metrics"
)

func testSet() *campaign.ResultSet {
	samples := []metrics.Sample{
		{Cycle: 8192, Window: 8192, Committed: 16000, IPC: 1.95, IQOcc: 22.5, Copies: 300, L1Misses: 40, L2Misses: 4},
		{Cycle: 16384, Window: 8192, Committed: 15000, IPC: 1.83, IQOcc: 24.0, Copies: 310, L1Misses: 42, L2Misses: 5},
		{Cycle: 24576, Window: 8192, Committed: 16500, IPC: 2.01, IQOcc: 21.1, Copies: 280, L1Misses: 39, L2Misses: 3},
	}
	return &campaign.ResultSet{
		Campaign: "tiny<sweep>", // angle brackets: escaping must hold
		Version:  "v6",
		Total:    3, Executed: 1, StoreHits: 1, Failed: 1,
		Results: []campaign.Result{
			{Label: "dh.mix.2.1/icount/iq32", Scheme: "icount", IQSize: 32, SingleThread: -1,
				IPC: 1.93, CopiesPerRet: 0.11, IQStallsRet: 0.4, Samples: samples},
			{Label: "dh.mix.2.1/cssp/iq32", Scheme: "cssp", IQSize: 32, SingleThread: -1,
				IPC: 2.10, CopiesPerRet: 0.09, IQStallsRet: 0.2, Cached: true},
			{Label: "dh.mix.2.1/cdprf/iq32", Scheme: "cdprf", IQSize: 32, SingleThread: -1,
				Error: "boom & crash"},
		},
	}
}

func TestBuildAndRender(t *testing.T) {
	d := Build(testSet())
	if empty := d.EmptySections(); len(empty) != 0 {
		t.Fatalf("empty sections: %v", empty)
	}
	var sb strings.Builder
	if err := d.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"<!DOCTYPE html>",
		"Campaign tiny&lt;sweep&gt; (v6)", // escaped title
		"Results by scheme",
		"Time series",
		"Store-hit attribution",
		"<svg class=\"spark\"",   // inline sparkline
		"dh.mix.2.1/icount/iq32", // item label
		"boom &amp; crash",       // escaped error text
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report lacks %q", want)
		}
	}

	// Self-contained: no external fetches of any kind.
	for _, banned := range []string{"http://", "https://", "src=\"//", "@import", "url("} {
		if strings.Contains(out, banned) {
			t.Errorf("report references an external resource: found %q", banned)
		}
	}

	// The executed item gets a sparkline; the store hit and the failure do
	// not (one <svg> per sampled item).
	if got := strings.Count(out, "<svg"); got != 1 {
		t.Errorf("%d sparklines, want 1 (only the sampled item)", got)
	}

	// Sparkline coordinates stay inside the viewBox.
	coord := regexp.MustCompile(`points="([^"]+)"`)
	for _, m := range coord.FindAllStringSubmatch(out, -1) {
		for _, pt := range strings.Fields(m[1]) {
			var x, y float64
			if _, err := fmt.Sscanf(pt, "%f,%f", &x, &y); err != nil {
				t.Fatalf("bad point %q: %v", pt, err)
			}
			if x < 0 || x > 260 || y < 0 || y > 36 {
				t.Errorf("point %q outside the 260x36 viewBox", pt)
			}
		}
	}
}

func TestEmptySections(t *testing.T) {
	rs := &campaign.ResultSet{Campaign: "none", Version: "v6"}
	d := Build(rs)
	empty := d.EmptySections()
	if len(empty) != 4 {
		t.Fatalf("empty sections = %v, want all 4", empty)
	}
	// A set with results but no samples: only the time series is empty.
	rs = testSet()
	for i := range rs.Results {
		rs.Results[i].Samples = nil
	}
	empty = Build(rs).EmptySections()
	if len(empty) != 1 || empty[0] != "Time series" {
		t.Fatalf("empty sections = %v, want [Time series]", empty)
	}
	// Rendering an empty-sectioned doc still works and marks the gap.
	var sb strings.Builder
	if err := Build(rs).Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "(no content)") {
		t.Error("empty section not marked in the rendered output")
	}
}
