// Package html renders a completed campaign ResultSet as a single
// self-contained HTML report: summary tally, per-scheme result tables,
// time-series sparklines for every item that carried samples, and a
// store-hit attribution breakdown. Everything — styles, the section
// toggler script, the sparkline SVGs — is generated inline, so the file
// opens from disk with no network access and can be attached to a CI run
// or an email as one artifact (`expdriver report` is the CLI entry point).
package html

import (
	"fmt"
	"html"
	"io"
	"sort"
	"strings"

	"clustersmt/internal/campaign"
	"clustersmt/internal/metrics"
)

// Doc is a built report, ready to render. Build assembles the sections
// from a ResultSet; EmptySections reports which carry no content (the CI
// docs gate fails on any, so a report regression — e.g. samples silently
// disappearing — is caught at build time, not by a human opening the
// file).
type Doc struct {
	Title    string
	sections []section
}

type section struct {
	id    string
	title string
	body  string // inner HTML, already escaped
	empty bool
}

// Build assembles the report document for rs.
func Build(rs *campaign.ResultSet) *Doc {
	d := &Doc{Title: fmt.Sprintf("Campaign %s (%s)", rs.Campaign, rs.Version)}
	d.sections = []section{
		summarySection(rs),
		schemesSection(rs),
		timeseriesSection(rs),
		storeSection(rs),
	}
	return d
}

// EmptySections returns the titles of sections that have no content.
func (d *Doc) EmptySections() []string {
	var out []string
	for _, s := range d.sections {
		if s.empty {
			out = append(out, s.title)
		}
	}
	return out
}

// Render writes the complete HTML document.
func (d *Doc) Render(w io.Writer) error {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n")
	fmt.Fprintf(&b, "<title>%s</title>\n", esc(d.Title))
	b.WriteString("<style>\n" + style + "</style>\n</head>\n<body>\n")
	fmt.Fprintf(&b, "<h1>%s</h1>\n", esc(d.Title))
	for _, s := range d.sections {
		fmt.Fprintf(&b, "<section id=%q>\n<h2 onclick=\"toggle('%s')\">%s</h2>\n<div class=\"body\">\n",
			s.id, s.id, esc(s.title))
		if s.empty {
			b.WriteString("<p class=\"empty\">(no content)</p>\n")
		} else {
			b.WriteString(s.body)
		}
		b.WriteString("</div>\n</section>\n")
	}
	b.WriteString("<script>\n" + script + "</script>\n</body>\n</html>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

const style = `body { font: 14px/1.45 system-ui, sans-serif; margin: 2em auto; max-width: 72em; padding: 0 1em; color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; cursor: pointer; border-bottom: 1px solid #ddd; padding-bottom: .2em; }
h2::before { content: "\25BE\00A0"; color: #888; } section.closed h2::before { content: "\25B8\00A0"; }
section.closed .body { display: none; }
table { border-collapse: collapse; margin: .5em 0 1.5em; }
th, td { border: 1px solid #ddd; padding: .25em .6em; text-align: left; }
th { background: #f5f5f5; } td.num { text-align: right; font-variant-numeric: tabular-nums; }
td.err { color: #b00; } .cached { color: #777; }
svg.spark { vertical-align: middle; } .empty { color: #b00; font-style: italic; }
.legend { color: #666; font-size: .9em; }`

const script = `function toggle(id) { document.getElementById(id).classList.toggle('closed'); }`

func esc(s string) string { return html.EscapeString(s) }

// f formats a metric value like the text report package (4 significant
// digits is plenty for IPC-scale numbers).
func f(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.4f", v), "0"), ".")
}

func sourceCell(r campaign.Result) string {
	switch {
	case r.Error != "":
		return `<td class="err">` + esc(r.Error) + `</td>`
	case r.Cached:
		return `<td class="cached">store</td>`
	default:
		return `<td>run</td>`
	}
}

func summarySection(rs *campaign.ResultSet) section {
	var b strings.Builder
	b.WriteString("<table><tr><th>total items</th><th>executed</th><th>store hits</th><th>failed</th><th>sim version</th></tr>\n")
	fmt.Fprintf(&b, "<tr><td class=\"num\">%d</td><td class=\"num\">%d</td><td class=\"num\">%d</td><td class=\"num\">%d</td><td>%s</td></tr></table>\n",
		rs.Total, rs.Executed, rs.StoreHits, rs.Failed, esc(rs.Version))
	return section{id: "summary", title: "Summary", body: b.String(), empty: rs.Total == 0}
}

// schemeOrder returns the distinct schemes of rs in first-appearance
// order (the manifest's expansion order, which the author chose).
func schemeOrder(rs *campaign.ResultSet) []string {
	var order []string
	seen := map[string]bool{}
	for _, r := range rs.Results {
		if !seen[r.Scheme] {
			seen[r.Scheme] = true
			order = append(order, r.Scheme)
		}
	}
	return order
}

func schemesSection(rs *campaign.ResultSet) section {
	var b strings.Builder
	hasFairness := false
	for _, r := range rs.Results {
		if r.Fairness > 0 {
			hasFairness = true
			break
		}
	}
	for _, scheme := range schemeOrder(rs) {
		fmt.Fprintf(&b, "<h3>%s</h3>\n<table><tr><th>item</th><th>IPC</th><th>copies/ret</th><th>IQ stalls/ret</th>", esc(scheme))
		if hasFairness {
			b.WriteString("<th>fairness</th>")
		}
		b.WriteString("<th>source</th></tr>\n")
		for _, r := range rs.Results {
			if r.Scheme != scheme {
				continue
			}
			fmt.Fprintf(&b, "<tr><td>%s</td><td class=\"num\">%s</td><td class=\"num\">%s</td><td class=\"num\">%s</td>",
				esc(r.Label), f(r.IPC), f(r.CopiesPerRet), f(r.IQStallsRet))
			if hasFairness {
				fv := ""
				if r.SingleThread < 0 && r.Fairness > 0 {
					fv = f(r.Fairness)
				}
				fmt.Fprintf(&b, "<td class=\"num\">%s</td>", fv)
			}
			b.WriteString(sourceCell(r) + "</tr>\n")
		}
		b.WriteString("</table>\n")
	}
	return section{id: "schemes", title: "Results by scheme", body: b.String(), empty: len(rs.Results) == 0}
}

func timeseriesSection(rs *campaign.ResultSet) section {
	var b strings.Builder
	n := 0
	b.WriteString(`<p class="legend">IPC per observation window (blue, scaled to the item's peak); mean issue-queue occupancy (orange, own scale). Store hits carry no time series — only freshly executed items are sampled.</p>` + "\n")
	b.WriteString("<table><tr><th>item</th><th>windows</th><th>mean IPC</th><th>IPC over time</th></tr>\n")
	for _, r := range rs.Results {
		if len(r.Samples) == 0 {
			continue
		}
		n++
		var mean float64
		for _, s := range r.Samples {
			mean += s.IPC
		}
		mean /= float64(len(r.Samples))
		fmt.Fprintf(&b, "<tr><td>%s</td><td class=\"num\">%d</td><td class=\"num\">%s</td><td>%s</td></tr>\n",
			esc(r.Label), len(r.Samples), f(mean), sparkline(r.Samples))
	}
	b.WriteString("</table>\n")
	return section{id: "timeseries", title: "Time series", body: b.String(), empty: n == 0}
}

// sparkline renders an item's sample series as a small inline SVG: the
// IPC polyline scaled to its own peak, and the mean IQ occupancy as a
// second, fainter polyline on its own scale. A series with a single point
// degenerates to a dot.
func sparkline(samples []metrics.Sample) string {
	const w, h, pad = 260, 36, 2
	x := func(i int) float64 {
		if len(samples) == 1 {
			return w / 2
		}
		return pad + float64(i)*(w-2*pad)/float64(len(samples)-1)
	}
	y := func(v, max float64) float64 {
		if max <= 0 {
			return h - pad
		}
		return h - pad - v*(h-2*pad)/max
	}
	var maxIPC, maxOcc float64
	for _, s := range samples {
		maxIPC = maxF(maxIPC, s.IPC)
		maxOcc = maxF(maxOcc, s.IQOcc)
	}
	pts := func(val func(metrics.Sample) float64, max float64) string {
		var b strings.Builder
		for i, s := range samples {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.1f,%.1f", x(i), y(val(s), max))
		}
		return b.String()
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg class="spark" width="%d" height="%d" viewBox="0 0 %d %d" role="img">`, w, h, w, h)
	fmt.Fprintf(&b, `<title>IPC %s..%s over %d windows</title>`, f(minIPC(samples)), f(maxIPC), len(samples))
	fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="#e8a33d" stroke-width="1"/>`,
		pts(func(s metrics.Sample) float64 { return s.IQOcc }, maxOcc))
	fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="#2f6fb7" stroke-width="1.5"/>`,
		pts(func(s metrics.Sample) float64 { return s.IPC }, maxIPC))
	b.WriteString("</svg>")
	return b.String()
}

func maxF(a, b float64) float64 {
	if b > a {
		return b
	}
	return a
}

func minIPC(samples []metrics.Sample) float64 {
	m := samples[0].IPC
	for _, s := range samples[1:] {
		if s.IPC < m {
			m = s.IPC
		}
	}
	return m
}

func storeSection(rs *campaign.ResultSet) section {
	type tally struct{ total, executed, cached, failed int }
	byScheme := map[string]*tally{}
	for _, r := range rs.Results {
		t := byScheme[r.Scheme]
		if t == nil {
			t = &tally{}
			byScheme[r.Scheme] = t
		}
		t.total++
		switch {
		case r.Error != "":
			t.failed++
		case r.Cached:
			t.cached++
		default:
			t.executed++
		}
	}
	schemes := make([]string, 0, len(byScheme))
	for s := range byScheme {
		schemes = append(schemes, s)
	}
	sort.Strings(schemes)
	var b strings.Builder
	b.WriteString(`<p class="legend">Where each item's result came from: a fresh simulation, the content-addressed result store (or another in-flight job), or a failure.</p>` + "\n")
	b.WriteString("<table><tr><th>scheme</th><th>items</th><th>executed</th><th>store hits</th><th>failed</th></tr>\n")
	for _, s := range schemes {
		t := byScheme[s]
		fmt.Fprintf(&b, "<tr><td>%s</td><td class=\"num\">%d</td><td class=\"num\">%d</td><td class=\"num\">%d</td><td class=\"num\">%d</td></tr>\n",
			esc(s), t.total, t.executed, t.cached, t.failed)
	}
	b.WriteString("</table>\n")
	return section{id: "store", title: "Store-hit attribution", body: b.String(), empty: len(rs.Results) == 0}
}
