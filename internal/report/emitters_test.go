package report

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"clustersmt/internal/campaign"
)

var update = flag.Bool("update", false, "rewrite the emitter golden files")

// sampleResultSet is a fixed two-item campaign result covering the quoting
// and formatting edge cases: fractional metrics, a fairness value, an error
// item and a label. Field values are arbitrary but frozen — the goldens
// under testdata/ pin the exact emitted bytes.
func sampleResultSet() *campaign.ResultSet {
	return &campaign.ResultSet{
		Campaign:  "golden",
		Version:   "smtsim-test",
		Total:     2,
		Executed:  1,
		StoreHits: 0,
		Failed:    1,
		Results: []campaign.Result{
			{
				Label: "dh.ilp.2.1|icount|iq32|rf0|rob0|len2000|r0|st-1", Workload: "dh.ilp.2.1",
				Scheme: "icount", SchemeSpec: "sel=icount,iq=unrestricted,rf=none",
				IQSize: 32, TraceLen: 2000, SingleThread: -1,
				NumClusters: 2, Links: 2, LinkLatency: 1, MemLatency: 60,
				Key: "0123456789abcdef", IPC: 1.8703812316715542,
				CopiesPerRet: 0.19316400125431168, IQStallsRet: 0.429601756036375,
				ThreadIPC: []float64{0.9, 0.97}, Fairness: 0.875,
			},
			{
				Label: "dh.mem.2.1|cssp|iq8|rf0|rob0|len2000|r0|st-1", Workload: "dh.mem.2.1",
				Scheme: "cssp", SchemeSpec: "sel=icount,iq=cssp,rf=none",
				IQSize: 8, TraceLen: 2000, SingleThread: -1,
				NumClusters: 2, Links: 2, LinkLatency: 1, MemLatency: 60,
				Error: `config: iq size 8 below minimum, "quoted"`,
			},
		},
	}
}

func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with go test ./internal/report -run Golden -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted:\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

// TestResultSetJSONGolden pins the exact JSON a campaign ResultSet emits
// and proves the document round-trips back into an equal value — the
// contract the CI figure gate, `expdriver diff` and the service's results
// endpoint all rely on.
func TestResultSetJSONGolden(t *testing.T) {
	rs := sampleResultSet()
	b, err := JSON(rs)
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "resultset.json", b)

	back := &campaign.ResultSet{}
	if err := json.Unmarshal(b, back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rs, back) {
		t.Errorf("round trip diverged:\n%+v\n%+v", rs, back)
	}
}

// TestResultSetCSVGolden pins the flat CSV form (shared header in
// campaign.CSVHeader) and proves it parses back row-for-row.
func TestResultSetCSVGolden(t *testing.T) {
	rs := sampleResultSet()
	out := CSV(campaign.CSVHeader(), rs.CSVRows())
	golden(t, "resultset.csv", []byte(out))

	rows, err := csv.NewReader(bytes.NewReader([]byte(out))).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1+len(rs.Results) {
		t.Fatalf("rows = %d, want %d", len(rows), 1+len(rs.Results))
	}
	if !reflect.DeepEqual(rows[0], campaign.CSVHeader()) {
		t.Errorf("header = %v", rows[0])
	}
	if rows[1][0] != rs.Results[0].Label || rows[2][19] != rs.Results[1].Error {
		t.Errorf("cells did not round-trip: %v", rows)
	}
}

// TestWriteJSONStreaming: the io.Writer path the service results endpoint
// uses must emit byte-identical output to the buffered JSON form.
func TestWriteJSONStreaming(t *testing.T) {
	rs := sampleResultSet()
	want, err := JSON(rs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, rs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("streamed JSON differs from buffered JSON:\n%s\nvs\n%s", buf.Bytes(), want)
	}
}

// TestWriteCSVStreaming: same contract for the CSV path.
func TestWriteCSVStreaming(t *testing.T) {
	rs := sampleResultSet()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, campaign.CSVHeader(), rs.CSVRows()); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.String(), CSV(campaign.CSVHeader(), rs.CSVRows()); got != want {
		t.Errorf("streamed CSV differs:\n%q\nvs\n%q", got, want)
	}
}
