package workload

import (
	"sort"
	"strings"
	"testing"

	"clustersmt/internal/isa"
	"clustersmt/internal/trace"
)

func TestPoolSizeMatchesPaper(t *testing.T) {
	pool := Pool()
	if len(pool) != 120 {
		t.Fatalf("pool has %d workloads, Table 2 says 120", len(pool))
	}
}

func TestPoolCategoryCounts(t *testing.T) {
	counts := map[string]map[Type]int{}
	for _, w := range Pool() {
		if counts[w.Category] == nil {
			counts[w.Category] = map[Type]int{}
		}
		counts[w.Category][w.Type]++
	}
	for _, cat := range Categories {
		wantILP, wantMEM, wantMIX := pairCounts(cat)
		c := counts[cat]
		if c[ILP] != wantILP || c[MEM] != wantMEM || c[MIX] != wantMIX {
			t.Errorf("%s: got %d/%d/%d, want %d/%d/%d",
				cat, c[ILP], c[MEM], c[MIX], wantILP, wantMEM, wantMIX)
		}
	}
	if len(counts) != len(Categories) {
		t.Errorf("%d categories, want %d", len(counts), len(Categories))
	}
}

func TestWorkloadNamesUniqueAndParseable(t *testing.T) {
	seen := map[string]bool{}
	for _, w := range Pool() {
		if seen[w.Name] {
			t.Errorf("duplicate workload name %s", w.Name)
		}
		seen[w.Name] = true
		parts := strings.Split(w.Name, ".")
		if len(parts) != 4 || parts[2] != "2" {
			t.Errorf("name %q does not follow <cat>.<type>.2.<i>", w.Name)
		}
		if parts[0] != w.Category || parts[1] != w.Type.String() {
			t.Errorf("name %q inconsistent with fields %s/%s", w.Name, w.Category, w.Type)
		}
	}
}

func TestAllProfilesValidate(t *testing.T) {
	for _, w := range Pool() {
		if len(w.Threads) != 2 || len(w.Seeds) != 2 {
			t.Fatalf("%s: not a 2-thread workload", w.Name)
		}
		for i, p := range w.Threads {
			if err := p.Validate(); err != nil {
				t.Errorf("%s thread %d: %v", w.Name, i, err)
			}
		}
	}
}

func TestPoolDeterministic(t *testing.T) {
	a, b := Pool(), Pool()
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Threads[0] != b[i].Threads[0] ||
			a[i].Threads[1] != b[i].Threads[1] || a[i].Seeds[0] != b[i].Seeds[0] {
			t.Fatalf("pool not deterministic at %d", i)
		}
	}
}

func TestMixWorkloadsPairILPWithMEM(t *testing.T) {
	// In ordinary categories a MIX workload couples a small-footprint
	// parallel trace with a cold-missing one.
	for _, w := range ByCategory("ispec00") {
		if w.Type != MIX {
			continue
		}
		if w.Threads[0].ColdFrac >= w.Threads[1].ColdFrac {
			t.Errorf("%s: thread0 cold %.4f should be below thread1 %.4f",
				w.Name, w.Threads[0].ColdFrac, w.Threads[1].ColdFrac)
		}
	}
}

func TestISFSRegisterDemandDisjoint(t *testing.T) {
	// ISPEC-FSPEC pairs an integer-RF-heavy trace with an FP-heavy one —
	// the situation §5.2 uses to show static partitioning underutilizes.
	for _, w := range ByCategory("isfs") {
		intSide, fpSide := w.Threads[0], w.Threads[1]
		if intSide.MixFp >= 0.05 {
			t.Errorf("%s: ISPEC side has MixFp=%.2f, want ~0", w.Name, intSide.MixFp)
		}
		if fpSide.MixFp < 0.2 {
			t.Errorf("%s: FSPEC side has MixFp=%.2f, want >= 0.2", w.Name, fpSide.MixFp)
		}
	}
}

func TestMixesSpanCategories(t *testing.T) {
	mixes := ByCategory("mixes")
	if len(mixes) != 32 {
		t.Fatalf("mixes has %d workloads, want 32", len(mixes))
	}
	names := map[string]bool{}
	for _, w := range mixes {
		for _, p := range w.Threads {
			// Profile names embed the source category.
			names[strings.Split(p.Name, ".")[0]] = true
		}
	}
	if len(names) < 5 {
		t.Errorf("mixes draw from only %d source categories", len(names))
	}
}

func TestFind(t *testing.T) {
	w, err := Find("ispec00.ilp.2.1")
	if err != nil || w.Category != "ispec00" {
		t.Fatalf("Find: %v %v", w, err)
	}
	if _, err := Find("nope"); err == nil {
		t.Error("Find of unknown workload should error")
	}
}

// TestPoolCachedAndIsolated pins the once-built pool: repeated calls must
// agree with the indexes, and the returned top-level slices must be
// caller-owned (sorting one caller's copy cannot reorder another's).
func TestPoolCachedAndIsolated(t *testing.T) {
	a, b := Pool(), Pool()
	if len(a) != len(b) {
		t.Fatalf("Pool sizes differ: %d vs %d", len(a), len(b))
	}
	// Mutating one copy's order must not leak into a fresh call.
	sort.Slice(a, func(i, j int) bool { return a[i].Name > a[j].Name })
	c := Pool()
	for i := range b {
		if c[i].Name != b[i].Name {
			t.Fatalf("caller sort leaked into the cached pool at %d: %s vs %s", i, c[i].Name, b[i].Name)
		}
	}
	for _, w := range b {
		got, err := Find(w.Name)
		if err != nil || got.Name != w.Name || got.Category != w.Category {
			t.Fatalf("Find(%s) = %v, %v", w.Name, got.Name, err)
		}
	}
	total := 0
	for _, cat := range Categories {
		ws := ByCategory(cat)
		total += len(ws)
		for _, w := range ws {
			if w.Category != cat {
				t.Errorf("ByCategory(%s) returned %s", cat, w.Name)
			}
		}
	}
	if total != len(b) {
		t.Errorf("category index covers %d workloads, pool has %d", total, len(b))
	}
}

func TestNamesSortedComplete(t *testing.T) {
	names := Names()
	if len(names) != 120 {
		t.Fatalf("Names() returned %d entries", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Fatalf("names not strictly sorted at %d: %s <= %s", i, names[i], names[i-1])
		}
	}
}

func TestDisplayName(t *testing.T) {
	if DisplayName("isfs") != "ISPEC-FSPEC" || DisplayName("dh") != "DH" {
		t.Error("display names wrong")
	}
	if DisplayName("office") != "office" {
		t.Error("unknown categories pass through")
	}
}

func TestGeneratorsRunnableFromPool(t *testing.T) {
	// Every profile must produce a usable stream (no panics, sane classes).
	for _, w := range Pool()[:10] {
		for i, p := range w.Threads {
			g := trace.NewGenerator(p, w.Seeds[i])
			for j := 0; j < 500; j++ {
				u := g.Next()
				if !u.Class.Valid() || u.Class == isa.Copy {
					t.Fatalf("%s thread %d produced class %v", w.Name, i, u.Class)
				}
			}
		}
	}
}

func TestCategoryBehaviouralContrast(t *testing.T) {
	// The categories must actually differ on the axes the paper's
	// analysis exercises.
	get := func(cat, kind string) trace.Profile { return traceProfile(cat, kind, 1) }
	if is, fs := get("ispec00", "ilp"), get("fspec00", "ilp"); is.MixFp >= fs.MixFp {
		t.Error("ISPEC00 should have less FP than FSPEC00")
	}
	if il, me := get("server", "ilp"), get("server", "mem"); il.ColdFrac >= me.ColdFrac {
		t.Error("ILP traces should miss less than MEM traces")
	}
	if fp, sv := get("fspec00", "mem"), get("server", "mem"); fp.ChaseFrac >= sv.ChaseFrac {
		t.Error("FP streaming should chase pointers less than TPC")
	}
}
