// Package workload reconstructs the paper's benchmark pool (Table 2):
// 120 two-threaded workloads across 11 categories, each trace classified as
// highly parallel (ILP), memory-bounded (MEM) or mixed (MIX).
//
// Table 2 lists 3/3/2 ILP/MEM/MIX workloads for each ordinary category;
// Fig. 9 shows ISPEC-FSPEC with 4 ILP + 4 MEM + 8 MIX workloads and the
// mixes category contributes 32, which is exactly how the pool reaches the
// stated 120 (9×8 + 16 + 32). The original traces are proprietary, so each
// trace here is a statistical profile (package trace) tuned per category;
// see DESIGN.md §2 for the substitution argument.
package workload

import (
	"fmt"
	"sort"
	"sync"

	"clustersmt/internal/trace"
	"clustersmt/internal/xrand"
)

// Type classifies a workload per Table 2.
type Type uint8

const (
	// ILP marks highly parallel workloads.
	ILP Type = iota
	// MEM marks memory-bounded workloads.
	MEM
	// MIX pairs one parallel and one memory-bounded trace.
	MIX
)

// String names the type as in the paper ("ilp", "mem", "mix").
func (t Type) String() string {
	switch t {
	case ILP:
		return "ilp"
	case MEM:
		return "mem"
	default:
		return "mix"
	}
}

// Workload is one 2-thread benchmark: a pair of trace profiles plus seeds.
type Workload struct {
	// Name is "<category>.<type>.2.<index>", echoing Fig. 9's naming.
	Name string
	// Category is the Table 2 row.
	Category string
	// Type is the ILP/MEM/MIX classification.
	Type Type
	// Threads holds one profile per hardware thread.
	Threads []trace.Profile
	// Seeds deterministically seed each thread's generator.
	Seeds []uint64
}

// Categories lists the Table 2 rows in paper order. "isfs" is ISPEC-FSPEC.
var Categories = []string{
	"dh", "fspec00", "ispec00", "isfs", "mixes",
	"multimedia", "office", "productivity", "server", "miscellanea", "workstation",
}

// DisplayName maps the short category key to the paper's label.
func DisplayName(cat string) string {
	switch cat {
	case "dh":
		return "DH"
	case "fspec00":
		return "FSPEC00"
	case "ispec00":
		return "ISPEC00"
	case "isfs":
		return "ISPEC-FSPEC"
	case "mixes":
		return "mixes"
	default:
		return cat
	}
}

// categoryTune adjusts a template profile to a category's character.
func categoryTune(cat string, p trace.Profile) trace.Profile {
	switch cat {
	case "dh": // Digital Home: streaming kernels, strided, some SIMD
		p.ChaseFrac = 0.3
		p.MixFp += 0.08
		p.MixInt -= 0.08
		p.FpDataFrac = 0.35
		p.StrideFrac = minf(1, p.StrideFrac+0.08)
		p.BranchBias = minf(1, p.BranchBias+0.01)
	case "fspec00": // FP SPEC2K: FP-dominated loops; streaming misses
		// overlap freely (high memory-level parallelism, little chasing)
		p.ChaseFrac = 0.25
		p.MixFp += 0.22
		p.MixInt -= 0.18
		p.MixBranch -= 0.04
		p.FpDataFrac = 0.75
		p.DepP = maxf(0.05, p.DepP-0.04)
		p.BranchBias = minf(1, p.BranchBias+0.02)
		p.NumBranchSites = maxi(8, p.NumBranchSites/2)
	case "ispec00": // Int SPEC2K: integer-only, branchy, pointer-chasing
		p.ChaseFrac = minf(1, p.ChaseFrac+0.1)
		p.MixFp = 0.0
		p.MixInt += 0.09
		p.FpDataFrac = 0.02
		p.DepP = maxf(0.05, p.DepP-0.06) // many distant live values
		p.NumBranchSites *= 2
		p.BranchBias = maxf(0.5, p.BranchBias-0.03)
		p.BranchNoise = minf(0.3, p.BranchNoise+0.02)
	case "multimedia": // mpeg/speech: SIMD + strided, streaming misses
		p.ChaseFrac = 0.3
		p.MixFp += 0.12
		p.MixInt -= 0.1
		p.FpDataFrac = 0.45
		p.StrideFrac = minf(1, p.StrideFrac+0.05)
	case "office": // Office: branchy pointer chasing, big code
		p.MixBranch += 0.05
		p.MixInt += 0.02
		p.MixFp = maxf(0, p.MixFp-0.06)
		p.FpDataFrac = 0.05
		p.DepP = minf(1, p.DepP+0.08)
		p.NumBranchSites *= 4
		p.BranchBias = maxf(0.5, p.BranchBias-0.05)
		p.BranchNoise = minf(0.3, p.BranchNoise+0.04)
		p.CodeFootprint *= 2
	case "productivity": // Sysmark: like office, slightly more memory
		p.MixBranch += 0.03
		p.MixLoad += 0.03
		p.MixFp = maxf(0, p.MixFp-0.05)
		p.FpDataFrac = 0.06
		p.NumBranchSites *= 2
		p.BranchBias = maxf(0.5, p.BranchBias-0.04)
		p.BranchNoise = minf(0.3, p.BranchNoise+0.03)
	case "server": // TPC: poor locality, branchy, pointer-heavy indices
		p.ChaseFrac = minf(1, p.ChaseFrac+0.1)
		p.MixLoad += 0.05
		p.MixStore += 0.02
		p.MixFp = maxf(0, p.MixFp-0.07)
		p.FpDataFrac = 0.03
		p.StrideFrac = maxf(0, p.StrideFrac-0.25)
		p.WorkingSet *= 2
		p.NumBranchSites *= 4
		p.BranchBias = maxf(0.5, p.BranchBias-0.05)
		p.BranchNoise = minf(0.3, p.BranchNoise+0.04)
	case "workstation": // CAD/render: FP heavy, strided scene data
		p.ChaseFrac = 0.35
		p.MixFp += 0.18
		p.MixInt -= 0.14
		p.FpDataFrac = 0.6
		p.WorkingSet *= 2
		p.DepP = maxf(0.05, p.DepP-0.03)
	case "miscellanea": // games + matrix kernels
		p.MixFp += 0.06
		p.MixIntMul += 0.03
		p.MixInt -= 0.07
		p.FpDataFrac = 0.3
	}
	return p
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// jitter applies small deterministic per-trace variation so the traces in a
// category are siblings, not clones.
func jitter(p trace.Profile, seed uint64) trace.Profile {
	r := xrand.New(seed)
	scale := func(v, pct float64) float64 { return v * (1 + (r.Float64()*2-1)*pct) }
	p.DepP = minf(1, maxf(0.03, scale(p.DepP, 0.15)))
	p.TwoSrcFrac = minf(1, maxf(0, scale(p.TwoSrcFrac, 0.1)))
	p.StrideFrac = minf(1, maxf(0, scale(p.StrideFrac, 0.1)))
	p.WorkingSet = uint64(maxf(1024, scale(float64(p.WorkingSet), 0.25)))
	p.BranchBias = minf(1, maxf(0.5, scale(p.BranchBias, 0.03)))
	return p
}

// traceProfile builds the i-th trace of a category and kind.
// kind is "ilp" or "mem".
func traceProfile(cat, kind string, i int) trace.Profile {
	name := fmt.Sprintf("%s.%s.%d", cat, kind, i)
	var p trace.Profile
	if kind == "mem" {
		p = trace.MemProfile(name)
	} else {
		p = trace.ILPProfile(name)
	}
	p = categoryTune(cat, p)
	seed := nameSeed(name)
	p = jitter(p, seed)
	// Tuning and jitter may push the locality fractions past their joint
	// bound; the stride stream yields to the cold fraction.
	if p.StrideFrac+p.ColdFrac > 1 {
		p.StrideFrac = 1 - p.ColdFrac
	}
	return p
}

// nameSeed derives a stable seed from a trace name.
func nameSeed(name string) uint64 {
	var h uint64 = 1469598103934665603 // FNV-1a
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// makeWorkload assembles a named 2-thread workload from two profiles.
func makeWorkload(cat string, typ Type, idx int, a, b trace.Profile) Workload {
	name := fmt.Sprintf("%s.%s.2.%d", cat, typ, idx)
	return Workload{
		Name:     name,
		Category: cat,
		Type:     typ,
		Threads:  []trace.Profile{a, b},
		Seeds:    []uint64{nameSeed(name + ".t0"), nameSeed(name + ".t1")},
	}
}

// pairCounts returns the per-type workload counts for a category
// (Table 2 + the Fig. 9 ISPEC-FSPEC layout).
func pairCounts(cat string) (ilp, mem, mix int) {
	switch cat {
	case "isfs":
		return 4, 4, 8
	case "mixes":
		return 0, 0, 32
	default:
		return 3, 3, 2
	}
}

// categoryPool builds the workloads of one ordinary category: ILP pairs two
// parallel traces, MEM two memory-bounded ones, MIX one of each.
func categoryPool(cat string) []Workload {
	nILP, nMEM, nMIX := pairCounts(cat)
	var out []Workload
	for i := 1; i <= nILP; i++ {
		a := traceProfile(cat, "ilp", 2*i-1)
		b := traceProfile(cat, "ilp", 2*i)
		out = append(out, makeWorkload(cat, ILP, i, a, b))
	}
	for i := 1; i <= nMEM; i++ {
		a := traceProfile(cat, "mem", 2*i-1)
		b := traceProfile(cat, "mem", 2*i)
		out = append(out, makeWorkload(cat, MEM, i, a, b))
	}
	for i := 1; i <= nMIX; i++ {
		a := traceProfile(cat, "ilp", 100+i)
		b := traceProfile(cat, "mem", 100+i)
		out = append(out, makeWorkload(cat, MIX, i, a, b))
	}
	return out
}

// isfsPool builds ISPEC-FSPEC: thread 0 from ISPEC00 (integer-RF-heavy),
// thread 1 from FSPEC00 (FP-heavy), so the threads' register demands are
// nearly disjoint — the situation where static RF partitioning loses (§5.2).
func isfsPool() []Workload {
	nILP, nMEM, nMIX := pairCounts("isfs")
	var out []Workload
	for i := 1; i <= nILP; i++ {
		a := traceProfile("ispec00", "ilp", 200+i)
		b := traceProfile("fspec00", "ilp", 200+i)
		out = append(out, makeWorkload("isfs", ILP, i, a, b))
	}
	for i := 1; i <= nMEM; i++ {
		a := traceProfile("ispec00", "mem", 200+i)
		b := traceProfile("fspec00", "mem", 200+i)
		out = append(out, makeWorkload("isfs", MEM, i, a, b))
	}
	for i := 1; i <= nMIX; i++ {
		// Alternate which side is memory-bounded.
		aKind, bKind := "ilp", "mem"
		if i%2 == 0 {
			aKind, bKind = "mem", "ilp"
		}
		a := traceProfile("ispec00", aKind, 300+i)
		b := traceProfile("fspec00", bKind, 300+i)
		out = append(out, makeWorkload("isfs", MIX, i, a, b))
	}
	return out
}

// mixesPool builds the 32 cross-category MIX workloads by pairing traces
// from all ordinary categories in a deterministic rotation.
func mixesPool() []Workload {
	cats := []string{
		"dh", "fspec00", "ispec00", "multimedia", "office",
		"productivity", "server", "workstation", "miscellanea",
	}
	var out []Workload
	for i := 1; i <= 32; i++ {
		ca := cats[(i-1)%len(cats)]
		cb := cats[(i+2)%len(cats)]
		aKind, bKind := "ilp", "mem"
		if i%3 == 0 {
			aKind = "mem"
		}
		if i%4 == 0 {
			bKind = "ilp"
		}
		a := traceProfile(ca, aKind, 400+i)
		b := traceProfile(cb, bKind, 400+i)
		out = append(out, makeWorkload("mixes", MIX, i, a, b))
	}
	return out
}

// The pool is a pure function of the category tables, but building it runs
// the profile tuning and jitter PRNG for all 120 workloads (~240 traces),
// and Find/ByCategory used to rebuild it on every call — a real cost for
// campaign expansion, which validates every named workload. Build it once
// and index it by name and category. Workload values share their inner
// Threads/Seeds slices with the cache; callers must treat those as
// read-only (campaign repetitions already copy before mutating).
var poolCache struct {
	once       sync.Once
	all        []Workload
	byName     map[string]Workload
	byCategory map[string][]Workload
}

func buildPool() {
	var all []Workload
	for _, cat := range Categories {
		switch cat {
		case "isfs":
			all = append(all, isfsPool()...)
		case "mixes":
			all = append(all, mixesPool()...)
		default:
			all = append(all, categoryPool(cat)...)
		}
	}
	byName := make(map[string]Workload, len(all))
	byCategory := make(map[string][]Workload, len(Categories))
	for _, w := range all {
		byName[w.Name] = w
		byCategory[w.Category] = append(byCategory[w.Category], w)
	}
	poolCache.all = all
	poolCache.byName = byName
	poolCache.byCategory = byCategory
}

// Pool returns all 120 two-threaded workloads of Table 2. The returned
// slice is the caller's to reorder; the elements share profile/seed slices
// with the cached pool.
func Pool() []Workload {
	poolCache.once.Do(buildPool)
	out := make([]Workload, len(poolCache.all))
	copy(out, poolCache.all)
	return out
}

// ByCategory returns the pool's workloads for one category key.
func ByCategory(cat string) []Workload {
	poolCache.once.Do(buildPool)
	ws := poolCache.byCategory[cat]
	out := make([]Workload, len(ws))
	copy(out, ws)
	return out
}

// Find returns the workload with the given name.
func Find(name string) (Workload, error) {
	poolCache.once.Do(buildPool)
	w, ok := poolCache.byName[name]
	if !ok {
		return Workload{}, fmt.Errorf("workload: unknown workload %q", name)
	}
	return w, nil
}

// Names returns all workload names, sorted.
func Names() []string {
	pool := Pool()
	out := make([]string, len(pool))
	for i, w := range pool {
		out[i] = w.Name
	}
	sort.Strings(out)
	return out
}
