package campaign

import (
	"sort"

	"clustersmt/internal/metrics"
	"clustersmt/internal/policy"
)

// Plan is the placement half of a campaign, split from execution: the
// validated, deterministic item expansion, the grouping of items by trace
// length (one experiments.Runner per length), and the assembly of raw
// simulation outcomes into the campaign's ResultSet. The local Engine and
// the fleet coordinator (internal/campaign/fleet) are two execution
// strategies over one Plan — in-process worker pool vs distributed
// lease-based dispatch — and produce identical ResultSets because every
// per-item decision (ordering, labeling, result shaping, fairness,
// tallies) lives here, not in the executor.
type Plan struct {
	// Manifest is the campaign declaration the plan was expanded from.
	Manifest *Manifest
	// Items is the full expansion in canonical order; ResultSet.Results
	// indexes match it one-to-one.
	Items []Item

	lens  []int
	byLen map[int][]int
}

// NewPlan validates m and expands it into a plan.
func NewPlan(m *Manifest) (*Plan, error) {
	items, err := m.Expand()
	if err != nil {
		return nil, err
	}
	p := &Plan{Manifest: m, Items: items, byLen: map[int][]int{}}
	for i, it := range items {
		p.byLen[it.TraceLen] = append(p.byLen[it.TraceLen], i)
	}
	for tl := range p.byLen {
		p.lens = append(p.lens, tl)
	}
	sort.Ints(p.lens)
	return p, nil
}

// TraceLens returns the distinct per-thread trace lengths of the plan's
// items, ascending. Each length needs its own runner (trace memoization
// and MaxCycles are per-length).
func (p *Plan) TraceLens() []int { return p.lens }

// Indices returns the item indices with trace length tl, in expansion
// order.
func (p *Plan) Indices(tl int) []int { return p.byLen[tl] }

// NewResultSet returns the empty result set the plan's execution fills:
// one slot per item, in expansion order.
func (p *Plan) NewResultSet(version string) *ResultSet {
	return &ResultSet{
		Campaign: p.Manifest.Name,
		Version:  version,
		Total:    len(p.Items),
		Results:  make([]Result, len(p.Items)),
	}
}

// Result assembles item i's result row from a raw simulation outcome:
// the content-addressed key, the stats (nil on failure), whether the
// executor actually simulated (false = store or singleflight hit) and the
// terminal error. The row is a pure function of these inputs plus the
// item's coordinates, which is what makes local and fleet runs of one
// manifest bit-for-bit comparable.
func (p *Plan) Result(i int, key string, st *metrics.Stats, executed bool, err error) Result {
	it := p.Items[i]
	res := Result{
		Label:        it.Label(),
		Workload:     it.Base,
		Scheme:       it.Spec.Scheme,
		SchemeSpec:   schemeSpecEcho(it.Spec.Scheme),
		IQSize:       it.Spec.IQSize,
		RegsPerClust: it.Spec.RegsPerClust,
		ROBPerThread: it.Spec.ROBPerThread,
		TraceLen:     it.TraceLen,
		Rep:          it.Rep,
		SingleThread: it.Spec.SingleThread,
		NumClusters:  it.Spec.NumClusters,
		Links:        it.Spec.Links,
		LinkLatency:  it.Spec.LinkLatency,
		MemLatency:   it.Spec.MemLatency,
		Key:          key,
	}
	switch {
	case err != nil:
		res.Error = err.Error()
	case st != nil:
		res.Cached = !executed
		res.IPC = st.IPC()
		res.CopiesPerRet = st.CopiesPerRetired()
		res.IQStallsRet = st.IQStallsPerRetired()
		if it.Spec.SingleThread < 0 {
			for t := range it.Spec.Workload.Threads {
				res.ThreadIPC = append(res.ThreadIPC, st.ThreadIPC(t))
			}
		}
	default:
		res.Error = "simulation failed"
	}
	return res
}

// Finalize completes a fully-populated result set: the §4 fairness pass
// (when the manifest requested single-thread baselines) and the
// executed / store-hit / failed tallies. Call it exactly once, after every
// Results slot has been filled.
func (p *Plan) Finalize(rs *ResultSet) {
	if p.Manifest.SingleThreadBaselines {
		p.fillFairness(rs)
	}
	rs.Executed, rs.StoreHits, rs.Failed = 0, 0, 0
	for i := range rs.Results {
		switch {
		case rs.Results[i].Error != "":
			rs.Failed++
		case rs.Results[i].Cached:
			rs.StoreHits++
		default:
			rs.Executed++
		}
	}
}

// fillFairness computes the §4 fairness metric for every SMT result whose
// per-thread Icount baselines all completed at the same axis point.
func (p *Plan) fillFairness(rs *ResultSet) {
	single := map[baselinePoint]float64{}
	for i, it := range p.Items {
		if it.Spec.SingleThread >= 0 && rs.Results[i].Error == "" {
			single[pointOf(it, it.Spec.SingleThread)] = rs.Results[i].IPC
		}
	}
	for i, it := range p.Items {
		if it.Spec.SingleThread >= 0 || rs.Results[i].Error != "" {
			continue
		}
		n := len(it.Spec.Workload.Threads)
		if len(rs.Results[i].ThreadIPC) != n {
			continue
		}
		singles := make([]float64, 0, n)
		for t := 0; t < n; t++ {
			ipc, ok := single[pointOf(it, t)]
			if !ok {
				break
			}
			singles = append(singles, ipc)
		}
		if len(singles) == n {
			rs.Results[i].Fairness = metrics.Fairness(singles, rs.Results[i].ThreadIPC)
		}
	}
}

// schemeSpecEcho renders the full component composition of a canonical
// scheme reference for result rows ("" when unparseable — the item's error
// field carries the diagnosis).
func schemeSpecEcho(scheme string) string {
	sp, err := policy.ParseSpec(scheme)
	if err != nil {
		return ""
	}
	return sp.Format()
}
