package service

import (
	"fmt"
	"io"
	"net/http"

	"clustersmt/internal/campaign"
	"clustersmt/internal/policy"
	"clustersmt/internal/report"
)

// maxManifestBytes bounds a submission body; manifests are small JSON
// documents and an unbounded read would let one client exhaust memory.
const maxManifestBytes = 1 << 20

// Handler returns the service's HTTP API:
//
//	POST   /v1/campaigns                    submit a manifest (the same JSON the CLI takes), 202 + job status
//	GET    /v1/campaigns                    list jobs in submission order
//	GET    /v1/campaigns/{id}               job status; ?items=1 adds the per-item breakdown
//	GET    /v1/campaigns/{id}/results       finished job's ResultSet; ?format=json|csv (default json)
//	GET    /v1/campaigns/{id}/events        live job event stream (Server-Sent Events; see events.go)
//	DELETE /v1/campaigns/{id}               cancel (no-op once finished)
//	GET    /v1/components                   scheme component registries + named schemes (policy.ComponentSet)
//	GET    /metrics                         daemon operational metrics (Prometheus text format)
//	GET    /healthz                         liveness
//
// docs/API.md is the client-facing reference for this surface (request and
// response schemas, status codes, SSE frame format, metric names); CI
// cross-checks its route list against the registrations below.
//
// All error responses are JSON objects with an "error" field.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /v1/campaigns", s.handleList)
	mux.HandleFunc("GET /v1/campaigns/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/campaigns/{id}/results", s.handleResults)
	mux.HandleFunc("GET /v1/campaigns/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /v1/campaigns/{id}", s.handleCancel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	// The component listing is what a client needs to author a manifest's
	// scheme_axes block (or a composed schemes entry) without the binary
	// at hand: every component, its parameters and their bounds.
	mux.HandleFunc("GET /v1/components", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, policy.Components())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	// Coordinator mode adds the fleet surface (worker registration, lease
	// dispatch, shared store) alongside the campaign API on one listener.
	if s.fleet != nil {
		s.fleet.Register(mux)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	report.WriteJSON(w, v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxManifestBytes+1))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if len(body) > maxManifestBytes {
		writeErr(w, http.StatusRequestEntityTooLarge, "manifest exceeds %d bytes", maxManifestBytes)
		return
	}
	m, err := campaign.Parse(body)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	st, err := s.Submit(m)
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.List())
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.Status(id, r.URL.Query().Get("items") != "")
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleResults(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rs, exists, finished := s.Results(id)
	if !exists {
		writeErr(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	if !finished {
		writeErr(w, http.StatusConflict, "job %s has not finished; poll GET /v1/campaigns/%s", id, id)
		return
	}
	if rs == nil {
		writeErr(w, http.StatusGone, "job %s was canceled before producing results", id)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		writeJSON(w, http.StatusOK, rs)
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		w.WriteHeader(http.StatusOK)
		report.WriteCSV(w, campaign.CSVHeader(), rs.CSVRows())
	default:
		writeErr(w, http.StatusBadRequest, "unknown format %q (json or csv)", format)
	}
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.Cancel(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, st)
}
