package service

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"clustersmt/internal/campaign"
	"clustersmt/internal/campaign/store"
	"clustersmt/internal/policy"
)

// startServer spins up a service on an httptest server and tears both down
// with the test.
func startServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	s := New(cfg)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		srv.Close()
		s.Close()
	})
	return srv
}

func decodeStatus(t *testing.T, resp *http.Response, wantCode int) *JobStatus {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("status code = %d, want %d", resp.StatusCode, wantCode)
	}
	st := &JobStatus{}
	if err := json.NewDecoder(resp.Body).Decode(st); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	return st
}

func submit(t *testing.T, srv *httptest.Server, manifest string) *JobStatus {
	t.Helper()
	resp, err := http.Post(srv.URL+"/v1/campaigns", "application/json", strings.NewReader(manifest))
	if err != nil {
		t.Fatal(err)
	}
	return decodeStatus(t, resp, http.StatusAccepted)
}

func getStatus(t *testing.T, srv *httptest.Server, id string) *JobStatus {
	t.Helper()
	resp, err := http.Get(srv.URL + "/v1/campaigns/" + id)
	if err != nil {
		t.Fatal(err)
	}
	return decodeStatus(t, resp, http.StatusOK)
}

// waitFinished polls until the job reaches a terminal state.
func waitFinished(t *testing.T, srv *httptest.Server, id string) *JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		st := getStatus(t, srv, id)
		if st.State.Finished() {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in time", id)
	return nil
}

func getResults(t *testing.T, srv *httptest.Server, id string) *campaign.ResultSet {
	t.Helper()
	resp, err := http.Get(srv.URL + "/v1/campaigns/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results code = %d", resp.StatusCode)
	}
	rs := &campaign.ResultSet{}
	if err := json.NewDecoder(resp.Body).Decode(rs); err != nil {
		t.Fatal(err)
	}
	return rs
}

func TestSubmitStatusResults(t *testing.T) {
	srv := startServer(t, Config{Workers: 2})
	st := submit(t, srv, `{
		"name": "basic",
		"workloads": ["dh.ilp.2.1"],
		"schemes": ["icount", "cssp"],
		"trace_lens": [1000]
	}`)
	if st.State != StateQueued && st.State != StateRunning {
		t.Fatalf("initial state = %s", st.State)
	}
	if st.Total != 2 {
		t.Fatalf("total = %d, want 2", st.Total)
	}

	final := waitFinished(t, srv, st.ID)
	if final.State != StateDone {
		t.Fatalf("final state = %s (%s)", final.State, final.Error)
	}
	if final.Executed != 2 || final.Done != 2 || final.Failed != 0 {
		t.Fatalf("tally = %+v", final)
	}

	// JSON results parse back into a ResultSet with matching tallies.
	resp, err := http.Get(srv.URL + "/v1/campaigns/" + st.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results code = %d", resp.StatusCode)
	}
	rs := &campaign.ResultSet{}
	if err := json.NewDecoder(resp.Body).Decode(rs); err != nil {
		t.Fatal(err)
	}
	if rs.Campaign != "basic" || rs.Total != 2 || rs.Executed != 2 {
		t.Fatalf("result set = %+v", rs)
	}
	for _, r := range rs.Results {
		if r.IPC <= 0 {
			t.Errorf("%s: IPC %v", r.Label, r.IPC)
		}
	}

	// CSV results stream with the shared header and one row per item.
	resp, err = http.Get(srv.URL + "/v1/campaigns/" + st.ID + "/results?format=csv")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	rows, err := csv.NewReader(resp.Body).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // header + 2 items
		t.Fatalf("csv rows = %d, want 3", len(rows))
	}
	if got, want := strings.Join(rows[0], ","), strings.Join(campaign.CSVHeader(), ","); got != want {
		t.Fatalf("csv header = %q, want %q", got, want)
	}

	// The per-item breakdown is exposed on demand.
	resp, err = http.Get(srv.URL + "/v1/campaigns/" + st.ID + "?items=1")
	if err != nil {
		t.Fatal(err)
	}
	withItems := decodeStatus(t, resp, http.StatusOK)
	if len(withItems.Items) != 2 {
		t.Fatalf("items = %d, want 2", len(withItems.Items))
	}
	for _, it := range withItems.Items {
		if it.State != StateDone {
			t.Errorf("item %s state = %s", it.Label, it.State)
		}
	}
}

// TestConcurrentOverlapSharesStore is the dedup acceptance test: two
// concurrent submissions whose manifests overlap must execute each unique
// spec exactly once between them — the shared engine's store layer and
// singleflight tables answer for the overlap regardless of interleaving.
func TestConcurrentOverlapSharesStore(t *testing.T) {
	srv := startServer(t, Config{Workers: 2, JobWorkers: 2})
	a := submit(t, srv, `{
		"workloads": ["dh.ilp.2.1", "dh.ilp.2.2"],
		"schemes": ["icount"],
		"trace_lens": [2000]
	}`)
	b := submit(t, srv, `{
		"workloads": ["dh.ilp.2.2", "dh.ilp.2.3"],
		"schemes": ["icount"],
		"trace_lens": [2000]
	}`)
	fa := waitFinished(t, srv, a.ID)
	fb := waitFinished(t, srv, b.ID)
	if fa.State != StateDone || fb.State != StateDone {
		t.Fatalf("states = %s/%s (%s/%s)", fa.State, fb.State, fa.Error, fb.Error)
	}
	const uniqueSpecs = 3 // dh.ilp.2.{1,2,3} x icount; 2.2 overlaps
	if got := fa.Executed + fb.Executed; got != uniqueSpecs {
		t.Fatalf("combined executed = %d, want %d (a=%+v b=%+v)", got, uniqueSpecs, fa, fb)
	}
	if fa.Done != 2 || fb.Done != 2 {
		t.Fatalf("done = %d/%d, want 2/2", fa.Done, fb.Done)
	}
}

// TestResubmitAllStoreHits: a second identical submission must complete
// with zero simulations executed, answered entirely by the shared store —
// the service-side equivalent of a -resume re-run.
func TestResubmitAllStoreHits(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := startServer(t, Config{Workers: 2, Store: st})
	manifest := `{
		"workloads": ["dh.mem.2.1"],
		"schemes": ["icount", "cssp"],
		"trace_lens": [1000]
	}`
	first := waitFinished(t, srv, submit(t, srv, manifest).ID)
	if first.State != StateDone || first.Executed != 2 {
		t.Fatalf("first run: %+v", first)
	}
	second := waitFinished(t, srv, submit(t, srv, manifest).ID)
	if second.State != StateDone {
		t.Fatalf("second run state = %s (%s)", second.State, second.Error)
	}
	if second.Executed != 0 || second.StoreHits != 2 {
		t.Fatalf("second run executed = %d, store hits = %d; want 0/2", second.Executed, second.StoreHits)
	}
}

// TestCancelStopsRunning: DELETE on a running job must stop it before it
// completes all items (cancellation propagates into the simulation loop).
func TestCancelStopsRunning(t *testing.T) {
	srv := startServer(t, Config{Workers: 1, JobWorkers: 1})
	st := submit(t, srv, `{
		"categories": ["dh"],
		"schemes": ["icount", "cssp", "cdprf"],
		"trace_lens": [60000]
	}`)

	// Wait until at least one item is actually running.
	deadline := time.Now().Add(time.Minute)
	for {
		cur := getStatus(t, srv, st.ID)
		if cur.State == StateRunning && cur.Running > 0 {
			break
		}
		if cur.State.Finished() {
			t.Fatalf("job finished before it could be canceled: %+v", cur)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(5 * time.Millisecond)
	}

	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/campaigns/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	canceledAt := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	decodeStatus(t, resp, http.StatusOK)

	final := waitFinished(t, srv, st.ID)
	if final.State != StateCanceled {
		t.Fatalf("final state = %s, want %s", final.State, StateCanceled)
	}
	if final.Done == final.Total {
		t.Fatalf("all %d items completed despite cancellation", final.Total)
	}
	// In-flight simulations poll the context every few thousand cycles, so
	// the stop is prompt — not "after the current multi-second item".
	if d := time.Since(canceledAt); d > 10*time.Second {
		t.Fatalf("cancellation took %v", d)
	}

	// A finished job's results endpoint reports the partial set.
	resp, err = http.Get(srv.URL + "/v1/campaigns/" + st.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results after cancel = %d", resp.StatusCode)
	}
}

func TestValidationAndErrors(t *testing.T) {
	srv := startServer(t, Config{Workers: 1})

	// Invalid manifests are rejected before anything enqueues, with the
	// same strict validation the CLI applies.
	for name, body := range map[string]string{
		"no schemes":     `{"workloads": ["dh.ilp.2.1"]}`,
		"unknown scheme": `{"schemes": ["nope"]}`,
		"unknown field":  `{"schemes": ["icount"], "iq_size": [32]}`,
		"empty axis":     `{"schemes": ["icount"], "iq_sizes": []}`,
		"bad json":       `{`,
	} {
		resp, err := http.Post(srv.URL+"/v1/campaigns", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Errorf("%s: code = %d, want 422", name, resp.StatusCode)
		}
	}

	// Unknown job ids 404 on every per-job route.
	for _, probe := range []struct{ method, path string }{
		{http.MethodGet, "/v1/campaigns/zzz"},
		{http.MethodGet, "/v1/campaigns/zzz/results"},
		{http.MethodDelete, "/v1/campaigns/zzz"},
	} {
		req, err := http.NewRequest(probe.method, srv.URL+probe.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s %s: code = %d, want 404", probe.method, probe.path, resp.StatusCode)
		}
	}

	// Results for an unfinished job conflict rather than block.
	st := submit(t, srv, `{
		"workloads": ["dh.ilp.2.1"],
		"schemes": ["icount"],
		"trace_lens": [20000]
	}`)
	resp, err := http.Get(srv.URL + "/v1/campaigns/" + st.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := getStatus(t, srv, st.ID); !got.State.Finished() {
		if resp.StatusCode != http.StatusConflict {
			t.Errorf("unfinished results code = %d, want 409", resp.StatusCode)
		}
	}
	waitFinished(t, srv, st.ID)
}

// TestListOrder verifies the listing endpoint returns jobs in submission
// order with stable ids.
func TestListOrder(t *testing.T) {
	srv := startServer(t, Config{Workers: 1})
	manifest := `{"workloads": ["dh.ilp.2.1"], "schemes": ["icount"], "trace_lens": [1000]}`
	var ids []string
	for i := 0; i < 3; i++ {
		ids = append(ids, submit(t, srv, manifest).ID)
	}
	resp, err := http.Get(srv.URL + "/v1/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []*JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 3 {
		t.Fatalf("list length = %d", len(list))
	}
	for i, st := range list {
		if st.ID != ids[i] {
			t.Errorf("list[%d] = %s, want %s", i, st.ID, ids[i])
		}
	}
	for _, id := range ids {
		waitFinished(t, srv, id)
	}
}

// TestSubmitQueueFull exercises the bounded queue: submissions beyond
// MaxQueue are rejected with 503, not queued unboundedly.
func TestSubmitQueueFull(t *testing.T) {
	// A full-pool campaign occupies the single job worker for far longer
	// than the test runs (Close cancels it on cleanup); the queue then
	// holds exactly one more job.
	srv := startServer(t, Config{Workers: 1, JobWorkers: 1, MaxQueue: 1})
	blocker := submit(t, srv, `{"schemes": ["icount"], "trace_lens": [60000]}`)
	deadline := time.Now().Add(time.Minute)
	for getStatus(t, srv, blocker.ID).State != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("blocker never started")
		}
		time.Sleep(5 * time.Millisecond)
	}

	small := `{"workloads": ["dh.ilp.2.1"], "schemes": ["icount"], "trace_lens": [1000]}`
	submit(t, srv, small) // fills the queue's single slot

	resp, err := http.Post(srv.URL+"/v1/campaigns", "application/json", strings.NewReader(small))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow submission code = %d, want 503", resp.StatusCode)
	}
	var e map[string]string
	json.NewDecoder(resp.Body).Decode(&e)
	if !strings.Contains(e["error"], "queue full") {
		t.Errorf("rejection error = %q", e["error"])
	}
}

// TestFinishedJobEviction: beyond MaxFinished the oldest terminal jobs are
// evicted (404), bounding daemon memory, while newer ones survive.
func TestFinishedJobEviction(t *testing.T) {
	srv := startServer(t, Config{Workers: 1, JobWorkers: 1, MaxFinished: 1})
	manifest := `{"workloads": ["dh.ilp.2.1"], "schemes": ["icount"], "trace_lens": [1000]}`
	var ids []string
	for i := 0; i < 3; i++ {
		st := submit(t, srv, manifest)
		waitFinished(t, srv, st.ID)
		ids = append(ids, st.ID)
	}
	// Eviction runs when the worker finishes a later job, so after three
	// sequential jobs at cap 1, the first must be gone and the last alive.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/v1/campaigns/" + ids[0])
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("oldest job %s never evicted (code %d)", ids[0], resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := getStatus(t, srv, ids[2]); st.State != StateDone {
		t.Fatalf("newest job state = %s", st.State)
	}
}

// TestWaitAPI covers the in-process Wait helper the CLI submit -wait path
// uses.
func TestWaitAPI(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	m, err := campaign.Parse([]byte(`{"workloads": ["dh.ilp.2.1"], "schemes": ["icount"], "trace_lens": [1000]}`))
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Submit(m)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	final, err := s.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("state = %s (%s)", final.State, final.Error)
	}
	if _, err := s.Wait(ctx, "nope"); err == nil {
		t.Error("Wait on unknown id succeeded")
	}
}

// TestComponentsEndpoint: GET /v1/components serves the policy component
// registries and named schemes — everything a client needs to author a
// scheme_axes block without the binary at hand.
func TestComponentsEndpoint(t *testing.T) {
	srv := startServer(t, Config{Workers: 1})
	resp, err := http.Get(srv.URL + "/v1/components")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	got := policy.ComponentSet{}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	want := policy.Components()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("components document diverged:\n%+v\nvs\n%+v", got, want)
	}
	if len(got.Schemes) != 12 || len(got.Selectors) == 0 || len(got.IQ) == 0 || len(got.RF) == 0 {
		t.Errorf("incomplete listing: %d schemes, %d/%d/%d components",
			len(got.Schemes), len(got.Selectors), len(got.IQ), len(got.RF))
	}
}

// TestSubmitComposedScheme: the service accepts scheme_axes manifests and
// runs composed specs end-to-end, and a duplicate-expanding manifest is
// rejected at submission with a 422.
func TestSubmitComposedScheme(t *testing.T) {
	srv := startServer(t, Config{Workers: 2})
	st := submit(t, srv, `{
		"name": "composed",
		"workloads": ["ispec00.mix.2.1"],
		"trace_lens": [1000],
		"scheme_axes": {"selectors": ["stall"], "iq": ["cssp"], "rf": ["cdprf"]}
	}`)
	st = waitFinished(t, srv, st.ID)
	if st.State != StateDone || st.Done != 1 {
		t.Fatalf("composed job: state=%s done=%d error=%q", st.State, st.Done, st.Error)
	}
	rs := getResults(t, srv, st.ID)
	if len(rs.Results) != 1 || rs.Results[0].Scheme != "sel=stall,iq=cssp,rf=cdprf" {
		t.Fatalf("results = %+v", rs.Results)
	}
	if rs.Results[0].SchemeSpec != "sel=stall,iq=cssp,rf=cdprf" {
		t.Errorf("scheme_spec echo = %q", rs.Results[0].SchemeSpec)
	}

	resp, err := http.Post(srv.URL+"/v1/campaigns", "application/json", strings.NewReader(`{
		"workloads": ["ispec00.mix.2.1"],
		"schemes": ["cdprf", "sel=icount,iq=cssp,rf=cdprf"]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("duplicate-expanding manifest: status = %d, want 422", resp.StatusCode)
	}
}
