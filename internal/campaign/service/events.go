package service

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"

	"clustersmt/internal/campaign"
	"clustersmt/internal/metrics"
)

// Event is one entry in a job's event stream, served over SSE by
// GET /v1/campaigns/{id}/events. Types:
//
//	"item"    — an item changed state (running / done / failed); carries
//	            index, label, state, and on completion cached/ipc/error.
//	"sample"  — one time-series observation window from a simulating item.
//	"state"   — the job reached a terminal state; always the last event.
//	"dropped" — synthetic marker: the reader fell behind the bounded ring
//	            and Dropped events were discarded (never buffered, so a
//	            slow consumer cannot grow daemon memory).
//
// Index is -1 for events not tied to an item ("state", "dropped").
type Event struct {
	Seq    int64           `json:"seq"`
	Type   string          `json:"type"`
	Index  int             `json:"index"`
	Label  string          `json:"label,omitempty"`
	State  State           `json:"state,omitempty"`
	Cached bool            `json:"cached,omitempty"`
	IPC    float64         `json:"ipc,omitempty"`
	Error  string          `json:"error,omitempty"`
	Sample *metrics.Sample `json:"sample,omitempty"`
	// Dropped counts discarded events on a "dropped" marker.
	Dropped int64 `json:"dropped,omitempty"`
}

// eventLog is a job's bounded event history: a fixed ring of the most
// recent events plus a monotonically increasing sequence. Readers poll
// read with a cursor; a cursor older than the ring reports how many events
// it missed instead of blocking the writer or buffering per reader —
// memory is O(ring) per job no matter how many or how slow the consumers.
type eventLog struct {
	mu     sync.Mutex
	buf    []Event
	start  int64 // seq of the oldest retained event
	next   int64 // seq the next append will get
	closed bool
	wake   chan struct{} // closed and replaced on every append/close
}

func newEventLog(size int) *eventLog {
	if size < 1 {
		size = 1
	}
	return &eventLog{buf: make([]Event, size), wake: make(chan struct{})}
}

// add appends one event, assigning its sequence number, and wakes every
// blocked reader. Events beyond the ring capacity overwrite the oldest.
func (l *eventLog) add(e Event) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	e.Seq = l.next
	l.buf[l.next%int64(len(l.buf))] = e
	l.next++
	if l.next-l.start > int64(len(l.buf)) {
		l.start = l.next - int64(len(l.buf))
	}
	wake := l.wake
	l.wake = make(chan struct{})
	l.mu.Unlock()
	close(wake)
}

// close marks the log complete (no further events) and wakes readers.
func (l *eventLog) close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	wake := l.wake
	l.wake = make(chan struct{})
	l.mu.Unlock()
	close(wake)
}

// read returns the events with sequence >= from, how many the cursor
// missed (it fell behind the ring), the cursor to resume from, whether the
// log is complete, and a channel that closes on the next append/close.
func (l *eventLog) read(from int64) (evs []Event, dropped int64, next int64, closed bool, wait <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < l.start {
		dropped = l.start - from
		from = l.start
	}
	for seq := from; seq < l.next; seq++ {
		evs = append(evs, l.buf[seq%int64(len(l.buf))])
	}
	return evs, dropped, l.next, l.closed, l.wake
}

// handleEvents streams a job's event log as Server-Sent Events:
// one "event: <type>" + "data: <json>" frame per Event, flushed as
// produced. The stream starts from the oldest event the ring still holds
// (a late subscriber to a finished job replays the retained tail), emits a
// "dropped" marker wherever the ring overwrote history, and ends — the
// server closes the connection — after the terminal "state" event.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	var cursor int64
	for {
		evs, dropped, next, closed, wait := j.events.read(cursor)
		cursor = next
		if dropped > 0 {
			writeSSE(w, Event{Seq: -1, Type: "dropped", Index: -1, Dropped: dropped})
		}
		for i := range evs {
			writeSSE(w, evs[i])
		}
		if len(evs) > 0 || dropped > 0 {
			fl.Flush()
		}
		if closed {
			return
		}
		select {
		case <-wait:
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE emits one SSE frame. The data payload is compact (single-line)
// JSON — SSE terminates a field at the first newline, so the indented
// report.WriteJSON encoder cannot be used here.
func writeSSE(w http.ResponseWriter, e Event) {
	b, err := json.Marshal(e)
	if err != nil {
		return // Event is a flat struct of encodable fields; cannot happen
	}
	w.Write([]byte("event: " + e.Type + "\nid: " + strconv.FormatInt(e.Seq, 10) + "\ndata: "))
	w.Write(b)
	w.Write([]byte("\n\n"))
}

// publish translates one engine progress event into the job's event log.
// Called from engine worker goroutines with j.mu NOT held.
func (j *job) publish(ev campaign.ItemEvent) {
	e := Event{Index: ev.Index}
	j.mu.Lock()
	if ev.Index >= 0 && ev.Index < len(j.items) {
		e.Label = j.items[ev.Index].Label
	}
	j.mu.Unlock()
	switch {
	case ev.Started:
		e.Type = "item"
		e.State = StateRunning
	case ev.Sample != nil:
		e.Type = "sample"
		e.Sample = ev.Sample
	case ev.Result != nil:
		e.Type = "item"
		if ev.Result.Error != "" {
			e.State = StateFailed
			e.Error = ev.Result.Error
		} else {
			e.State = StateDone
			e.Cached = ev.Result.Cached
			e.IPC = ev.Result.IPC
		}
	default:
		return
	}
	j.events.add(e)
}
