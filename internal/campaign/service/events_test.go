package service

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// readSSE consumes an SSE response body until the server closes it (or the
// frame limit trips) and returns the decoded events in arrival order.
func readSSE(t *testing.T, resp *http.Response) []Event {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status code = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type = %q, want text/event-stream", ct)
	}
	var out []Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var evType string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			evType = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			var e Event
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
				t.Fatalf("bad SSE data line %q: %v", line, err)
			}
			if e.Type != evType {
				t.Fatalf("frame event name %q != payload type %q", evType, e.Type)
			}
			out = append(out, e)
			if len(out) > 100000 {
				t.Fatal("SSE stream did not terminate")
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("read SSE: %v", err)
	}
	return out
}

func openEvents(t *testing.T, srv *httptest.Server, id string) *http.Response {
	t.Helper()
	resp, err := http.Get(srv.URL + "/v1/campaigns/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestEventLogRing pins the bounded-ring semantics the SSE handler builds
// on: appends beyond capacity overwrite the oldest events, a stale cursor
// learns exactly how many it missed, and close wakes blocked readers.
func TestEventLogRing(t *testing.T) {
	l := newEventLog(4)
	for i := 0; i < 10; i++ {
		l.add(Event{Type: "item", Index: i})
	}
	evs, dropped, next, closed, _ := l.read(0)
	if dropped != 6 {
		t.Fatalf("dropped = %d, want 6", dropped)
	}
	if len(evs) != 4 || evs[0].Index != 6 || evs[3].Index != 9 {
		t.Fatalf("ring kept %d events, first index %d", len(evs), evs[0].Index)
	}
	for i, e := range evs {
		if e.Seq != int64(6+i) {
			t.Fatalf("event %d seq = %d, want %d", i, e.Seq, 6+i)
		}
	}
	if closed {
		t.Fatal("log closed prematurely")
	}
	// A current cursor sees nothing new and its wait channel is open until
	// the next append.
	evs, dropped, _, _, wait := l.read(next)
	if len(evs) != 0 || dropped != 0 {
		t.Fatalf("current cursor saw %d events, %d dropped", len(evs), dropped)
	}
	select {
	case <-wait:
		t.Fatal("wait channel fired without an append")
	default:
	}
	l.close()
	select {
	case <-wait:
	case <-time.After(time.Second):
		t.Fatal("close did not wake the reader")
	}
	if _, _, _, closed, _ := l.read(next); !closed {
		t.Fatal("log not closed after close()")
	}
	// add after close is a no-op.
	l.add(Event{Type: "item"})
	if _, _, n, _, _ := l.read(0); n != next {
		t.Fatal("add after close appended")
	}
}

// TestSSEStreamsSamplesAndTerminal subscribes before the job finishes and
// checks the full stream shape: item lifecycle frames, at least one
// mid-simulation sample frame, and a final terminal "state" frame after
// which the server closes the stream.
func TestSSEStreamsSamplesAndTerminal(t *testing.T) {
	srv := startServer(t, Config{Workers: 2, SampleInterval: 1024})
	st := submit(t, srv, `{
		"workloads": ["dh.ilp.2.1"],
		"schemes": ["icount", "cssp"],
		"trace_lens": [20000]
	}`)
	evs := readSSE(t, openEvents(t, srv, st.ID))
	if len(evs) == 0 {
		t.Fatal("empty event stream")
	}
	last := evs[len(evs)-1]
	if last.Type != "state" || last.State != StateDone {
		t.Fatalf("last event = %+v, want terminal state done", last)
	}
	var samples, running, done int
	sawSampleBeforeEnd := false
	for i, e := range evs {
		switch e.Type {
		case "sample":
			samples++
			if e.Sample == nil || e.Sample.Window <= 0 {
				t.Fatalf("sample event without payload: %+v", e)
			}
			if i < len(evs)-1 {
				sawSampleBeforeEnd = true
			}
		case "item":
			switch e.State {
			case StateRunning:
				running++
			case StateDone:
				done++
				if e.Label == "" {
					t.Fatalf("done item event without label: %+v", e)
				}
			case StateFailed:
				t.Fatalf("item failed: %+v", e)
			}
		}
	}
	if samples == 0 {
		t.Fatal("no sample events in the stream")
	}
	if !sawSampleBeforeEnd {
		t.Fatal("samples only arrived with the terminal frame")
	}
	if running != st.Total || done != st.Total {
		t.Fatalf("item frames: %d running / %d done, want %d each", running, done, st.Total)
	}

	// A late subscriber to the finished job replays the retained tail and
	// still sees the terminal frame immediately.
	replay := readSSE(t, openEvents(t, srv, st.ID))
	if len(replay) == 0 || replay[len(replay)-1].Type != "state" {
		t.Fatalf("replay did not end in a state frame: %d events", len(replay))
	}
}

// TestSSECancelClosesStream: cancelling a running job terminates its event
// stream with a "state: canceled" frame rather than leaving subscribers
// hanging.
func TestSSECancelClosesStream(t *testing.T) {
	srv := startServer(t, Config{Workers: 1, JobWorkers: 1})
	st := submit(t, srv, `{
		"categories": ["dh"],
		"schemes": ["icount", "cssp", "cdprf"],
		"trace_lens": [60000]
	}`)
	deadline := time.Now().Add(time.Minute)
	for {
		cur := getStatus(t, srv, st.ID)
		if cur.State == StateRunning {
			break
		}
		if cur.State.Finished() || time.Now().After(deadline) {
			t.Fatalf("job state %s before cancel", cur.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp := openEvents(t, srv, st.ID)
	go func() {
		time.Sleep(50 * time.Millisecond)
		req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/campaigns/"+st.ID, nil)
		r, err := http.DefaultClient.Do(req)
		if err == nil {
			r.Body.Close()
		}
	}()
	evs := readSSE(t, resp) // returns only because the server closes the stream
	if len(evs) == 0 {
		t.Fatal("empty event stream")
	}
	last := evs[len(evs)-1]
	if last.Type != "state" || last.State != StateCanceled {
		t.Fatalf("last event = %+v, want terminal state canceled", last)
	}
}

// TestSSEDroppedMarker: a reader that missed more events than the bounded
// ring retains gets an explicit "dropped" marker with the gap size instead
// of silently resuming — and the daemon never buffered on its behalf.
func TestSSEDroppedMarker(t *testing.T) {
	srv := startServer(t, Config{Workers: 2, EventBuffer: 4, SampleInterval: 1024})
	st := submit(t, srv, `{
		"workloads": ["dh.ilp.2.1"],
		"schemes": ["icount", "cssp"],
		"trace_lens": [20000]
	}`)
	waitFinished(t, srv, st.ID)
	// Subscribe only now: the whole run (item + sample frames, well over 4
	// events) already churned through the 4-slot ring.
	evs := readSSE(t, openEvents(t, srv, st.ID))
	if len(evs) == 0 {
		t.Fatal("empty event stream")
	}
	if evs[0].Type != "dropped" || evs[0].Dropped <= 0 {
		t.Fatalf("first event = %+v, want a dropped marker", evs[0])
	}
	if last := evs[len(evs)-1]; last.Type != "state" {
		t.Fatalf("last event = %+v, want the terminal state frame", last)
	}
	// dropped marker + at most ring-size retained events.
	if replayed := len(evs) - 1; replayed > 4 {
		t.Fatalf("replayed %d events from a 4-slot ring", replayed)
	}
}

func TestEventsUnknownJob(t *testing.T) {
	srv := startServer(t, Config{Workers: 1})
	resp, err := http.Get(srv.URL + "/v1/campaigns/nope/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}
