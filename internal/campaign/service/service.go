// Package service embeds the campaign engine in a long-running daemon: a
// job queue and a bounded, shared worker pool behind a small HTTP API
// (POST/GET/DELETE /v1/campaigns, see Handler). It is the multi-tenant
// counterpart of the one-shot `expdriver -manifest` run: submissions are
// validated with the same strict manifest rules before they enqueue, every
// job runs through one shared campaign.Engine — so concurrent and repeated
// submissions deduplicate simulations through the layered result store and
// the runners' singleflight tables exactly as -resume does across
// processes — and a running campaign can be cancelled, which propagates
// context cancellation down into the simulation loop.
package service

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"clustersmt/internal/campaign"
	"clustersmt/internal/campaign/fleet"
	"clustersmt/internal/core"
	"clustersmt/internal/experiments"
)

// State is a job's lifecycle phase.
type State string

// Job lifecycle: Queued -> Running -> one of Done / Failed / Canceled.
// Canceled wins over Failed when a DELETE raced the natural completion.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Finished reports whether the state is terminal.
func (s State) Finished() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Config sizes a Service.
type Config struct {
	// Store is the persistent result layer shared by every job (typically
	// *store.Store; nil keeps results in memory only).
	Store experiments.ResultStore
	// Workers bounds total concurrent simulations across ALL jobs —
	// concurrent campaigns share this budget through one gate rather than
	// each bringing its own pool (0 = NumCPU).
	Workers int
	// JobWorkers bounds concurrently executing campaigns (0 = 2). Queued
	// jobs beyond it wait in submission order.
	JobWorkers int
	// MaxQueue bounds jobs admitted but not yet started — jobs waiting for
	// a free job worker (0 = 256). Submissions beyond it are rejected with
	// an error rather than queued unboundedly; running jobs do not count
	// against it.
	MaxQueue int
	// MaxFinished bounds retained terminal jobs (0 = 512). Beyond it the
	// oldest finished jobs are evicted — their status and results become
	// 404s, but their simulation results stay in the persistent store, so
	// resubmitting the same manifest recalls them instantly.
	MaxFinished int
	// Verbose, when set, receives one line per completed simulation.
	Verbose func(string)
	// SampleInterval is the time-series observation window in cycles for
	// every simulation the daemon runs (0 = the core default, 8192; < 0
	// disables sampling). Samples feed the per-job SSE event stream and
	// the /metrics throughput gauge; store hits carry no samples.
	SampleInterval int64
	// EventBuffer sizes each job's bounded event ring (0 = 1024). A slow
	// or absent SSE consumer costs at most this many retained events per
	// job; older events are dropped, and the stream marks the gap.
	EventBuffer int
	// Fleet, when set, turns the daemon into a fleet coordinator: jobs
	// execute on the coordinator's distributed dispatch queue (remote
	// workers lease items over the fleet routes, which Handler mounts)
	// instead of the in-process engine, and Store should be the same store
	// handed to the coordinator so the fleet's shared cache and the
	// daemon's result history are one. Nil keeps the default single-process
	// mode, byte-identical to previous releases. Fleet jobs carry no
	// per-item time series (workers do not stream samples).
	Fleet *fleet.Coordinator
}

// ItemStatus is one expanded item's live progress view.
type ItemStatus struct {
	Label string `json:"label"`
	State State  `json:"state"` // queued | running | done | failed
	// Cached marks a done item answered by the store (or by another job's
	// in-flight execution) rather than simulated by this job.
	Cached bool   `json:"cached,omitempty"`
	Error  string `json:"error,omitempty"`
}

// JobStatus is the wire form of a job's progress, served by GET
// /v1/campaigns/{id}.
type JobStatus struct {
	ID       string `json:"id"`
	Campaign string `json:"campaign"`
	State    State  `json:"state"`
	Total    int    `json:"total"`
	// Per-item phase tally; Queued+Running+Done+Failed == Total.
	Queued  int `json:"queued"`
	Running int `json:"running"`
	Done    int `json:"done"`
	Failed  int `json:"failed"`
	// Executed vs StoreHits split the Done count by provenance: fresh
	// simulations this job ran vs results the shared store answered.
	Executed  int          `json:"executed"`
	StoreHits int          `json:"store_hits"`
	Submitted time.Time    `json:"submitted"`
	Started   *time.Time   `json:"started,omitempty"`
	Finished  *time.Time   `json:"finished,omitempty"`
	Error     string       `json:"error,omitempty"`
	Items     []ItemStatus `json:"items,omitempty"`
}

// job is the service-side record of one submission.
type job struct {
	id       string
	manifest *campaign.Manifest

	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	state     State
	items     []ItemStatus
	executed  int
	storeHits int
	failed    int
	doneCount int
	rs        *campaign.ResultSet
	err       string
	submitted time.Time
	started   time.Time
	finished  time.Time
	done      chan struct{} // closed on terminal state

	// events is the job's bounded observability stream (see events.go).
	// It has its own lock; the only ordering rule is that j.mu is never
	// acquired while holding events.mu.
	events *eventLog
}

// Service runs campaign jobs submitted over HTTP on a shared engine.
// Create one with New and expose Handler; Close drains it.
type Service struct {
	eng   *campaign.Engine
	fleet *fleet.Coordinator
	met   svcMetrics

	verbose     func(string)
	maxFinished int
	eventBuffer int

	mu      sync.Mutex
	jobs    map[string]*job
	order   []string
	nextID  int
	running int
	closed  bool

	queue chan *job
	wg    sync.WaitGroup
}

// New starts a service: JobWorkers goroutines consuming the job queue, all
// executing on one shared campaign.Engine whose simulation concurrency is
// gated at Workers machine-wide.
func New(cfg Config) *Service {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	jobWorkers := cfg.JobWorkers
	if jobWorkers <= 0 {
		jobWorkers = 2
	}
	maxQueue := cfg.MaxQueue
	if maxQueue <= 0 {
		maxQueue = 256
	}
	maxFinished := cfg.MaxFinished
	if maxFinished <= 0 {
		maxFinished = 512
	}
	eventBuffer := cfg.EventBuffer
	if eventBuffer <= 0 {
		eventBuffer = 1024
	}
	sample := cfg.SampleInterval
	switch {
	case sample < 0:
		sample = 0 // disabled
	case sample == 0:
		sample = core.DefaultSampleInterval
	}
	s := &Service{
		eng: &campaign.Engine{
			Store:          cfg.Store,
			Resume:         true,
			Workers:        workers,
			Gate:           make(chan struct{}, workers),
			Verbose:        cfg.Verbose,
			SampleInterval: sample,
		},
		fleet:       cfg.Fleet,
		verbose:     cfg.Verbose,
		maxFinished: maxFinished,
		eventBuffer: eventBuffer,
		jobs:        make(map[string]*job),
		queue:       make(chan *job, maxQueue),
	}
	for i := 0; i < jobWorkers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Close stops accepting submissions, cancels every unfinished job and waits
// for the workers to drain.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.cancel()
	}
	close(s.queue)
	s.wg.Wait()
}

// Submit validates and enqueues a manifest, returning the job's initial
// status. The manifest must already have passed campaign.Parse; Submit
// re-expands it so an invalid axis combination is rejected here, before
// anything enqueues.
func (s *Service) Submit(m *campaign.Manifest) (*JobStatus, error) {
	items, err := m.Expand()
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		manifest:  m,
		ctx:       ctx,
		cancel:    cancel,
		state:     StateQueued,
		items:     make([]ItemStatus, len(items)),
		submitted: time.Now(),
		done:      make(chan struct{}),
		events:    newEventLog(s.eventBuffer),
	}
	for i, it := range items {
		j.items[i] = ItemStatus{Label: it.Label(), State: StateQueued}
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancel()
		return nil, fmt.Errorf("service: shutting down")
	}
	s.nextID++
	j.id = fmt.Sprintf("c%06d", s.nextID)
	if m.Name == "" {
		m.Name = j.id
	}
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		cancel()
		return nil, fmt.Errorf("service: job queue full (%d pending)", cap(s.queue))
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()
	return j.status(false), nil
}

// Status returns a job's progress; items requests the per-item breakdown.
func (s *Service) Status(id string, items bool) (*JobStatus, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	return j.status(items), true
}

// List returns every job's status in submission order.
func (s *Service) List() []*JobStatus {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]*JobStatus, 0, len(ids))
	for _, id := range ids {
		if st, ok := s.Status(id, false); ok {
			out = append(out, st)
		}
	}
	return out
}

// Cancel requests cancellation of a job. Queued jobs are marked canceled
// immediately; running jobs stop at the next context poll inside the
// simulation loop. Cancelling a finished job is a no-op. The second return
// reports whether the id exists.
func (s *Service) Cancel(id string) (*JobStatus, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	j.cancel()
	j.mu.Lock()
	if j.state == StateQueued {
		j.finish(StateCanceled, nil, "canceled before start")
	}
	j.mu.Unlock()
	return j.status(false), true
}

// Results returns a finished job's ResultSet. The bool returns are
// (job exists, job finished).
func (s *Service) Results(id string) (*campaign.ResultSet, bool, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, false, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.state.Finished() {
		return nil, true, false
	}
	return j.rs, true, true
}

// Wait blocks until the job reaches a terminal state (or the context
// expires) and returns its final status.
func (s *Service) Wait(ctx context.Context, id string) (*JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("service: unknown job %q", id)
	}
	select {
	case <-j.done:
		return j.status(false), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// prune evicts the oldest finished jobs beyond the retention cap, so a
// long-running daemon's memory does not grow with its submission history.
// Evicted jobs 404; their simulation results remain in the persistent
// store. Callers must not hold s.mu.
func (s *Service) prune() {
	s.mu.Lock()
	defer s.mu.Unlock()
	var finished []string
	for _, id := range s.order {
		j := s.jobs[id]
		if j == nil {
			continue
		}
		j.mu.Lock()
		fin := j.state.Finished()
		j.mu.Unlock()
		if fin {
			finished = append(finished, id)
		}
	}
	excess := len(finished) - s.maxFinished
	if excess <= 0 {
		return
	}
	evict := make(map[string]bool, excess)
	for _, id := range finished[:excess] {
		evict[id] = true
		delete(s.jobs, id)
	}
	keep := s.order[:0]
	for _, id := range s.order {
		if !evict[id] {
			keep = append(keep, id)
		}
	}
	s.order = keep
}

// worker consumes the job queue until Close.
func (s *Service) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.mu.Lock()
		s.running++
		s.mu.Unlock()
		s.runJob(j)
		s.mu.Lock()
		s.running--
		idle := s.running == 0
		s.mu.Unlock()
		s.prune()
		// When the daemon goes idle, drop the engine's in-memory caches
		// (trace memos, shared MemStore, runner tables): memory stays
		// bounded by one busy period, and the persistent store still
		// answers resubmissions. Without a persistent store the memory
		// layer IS the result history, so it is kept.
		if idle && s.eng.Store != nil {
			s.eng.Recycle()
		}
	}
}

// runJob executes one dequeued job on the shared engine.
func (s *Service) runJob(j *job) {
	j.mu.Lock()
	if j.state != StateQueued { // canceled while waiting in the queue
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	j.mu.Unlock()

	// Both executors share one signature and one progress/cancellation
	// contract over the campaign Plan; fleet mode swaps where the
	// simulations run, not what the job observes.
	runCtx := s.eng.RunCtx
	if s.fleet != nil {
		runCtx = s.fleet.RunCtx
	}
	rs, err := runCtx(j.ctx, j.manifest, func(ev campaign.ItemEvent) {
		s.met.onItem(ev)
		j.onEvent(ev)
		j.publish(ev)
	})

	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case j.ctx.Err() != nil:
		j.finish(StateCanceled, rs, "canceled")
	case err != nil:
		j.finish(StateFailed, rs, err.Error())
	case rs.Failed > 0:
		j.finish(StateFailed, rs, fmt.Sprintf("%d of %d items failed", rs.Failed, rs.Total))
	default:
		j.finish(StateDone, rs, "")
	}
}

// onEvent folds engine progress events into the job's live status. It runs
// on the engine's worker goroutines.
func (j *job) onEvent(ev campaign.ItemEvent) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if ev.Index < 0 || ev.Index >= len(j.items) {
		return
	}
	it := &j.items[ev.Index]
	switch {
	case ev.Started:
		it.State = StateRunning
	case ev.Result != nil:
		j.doneCount++
		if ev.Result.Error != "" {
			it.State = StateFailed
			it.Error = ev.Result.Error
			j.failed++
		} else {
			it.State = StateDone
			it.Cached = ev.Result.Cached
			if ev.Result.Cached {
				j.storeHits++
			} else {
				j.executed++
			}
		}
	}
}

// finish moves the job to a terminal state. Callers hold j.mu. When the
// engine returned a ResultSet its tallies are authoritative (they include
// the fairness pass); the event counters already match for the plain
// fields.
func (j *job) finish(state State, rs *campaign.ResultSet, errMsg string) {
	if j.state.Finished() {
		return
	}
	j.state = state
	j.rs = rs
	j.err = errMsg
	j.finished = time.Now()
	close(j.done)
	// Publish the terminal event and complete the stream; SSE readers see
	// a final "state" frame and then the server closes the connection.
	// Safe under j.mu: the event log has its own lock and never takes j.mu.
	j.events.add(Event{Type: "state", Index: -1, State: state, Error: errMsg})
	j.events.close()
}

// status snapshots the job for the API.
func (j *job) status(withItems bool) *JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := &JobStatus{
		ID:        j.id,
		Campaign:  j.manifest.Name,
		State:     j.state,
		Total:     len(j.items),
		Running:   0,
		Done:      j.doneCount - j.failed,
		Failed:    j.failed,
		Executed:  j.executed,
		StoreHits: j.storeHits,
		Submitted: j.submitted,
		Error:     j.err,
	}
	for i := range j.items {
		switch j.items[i].State {
		case StateQueued:
			st.Queued++
		case StateRunning:
			st.Running++
		}
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	if withItems {
		st.Items = append([]ItemStatus(nil), j.items...)
	}
	return st
}
