package service

import (
	"context"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestEventRingConcurrentPublishers hammers one eventLog from many
// publisher goroutines while a fast reader (following the wake channel) and
// a slow reader (polling with sleeps, deliberately falling behind the ring)
// consume concurrently. Run under -race this pins the ring's synchronization;
// the accounting checks pin that no event is lost unaccounted: every reader
// sees exactly publishers*perPub events as delivered + dropped, in sequence
// order.
func TestEventRingConcurrentPublishers(t *testing.T) {
	const (
		publishers = 8
		perPub     = 400
		total      = publishers * perPub
	)
	l := newEventLog(32)

	var pubWG sync.WaitGroup
	for p := 0; p < publishers; p++ {
		pubWG.Add(1)
		go func(p int) {
			defer pubWG.Done()
			for i := 0; i < perPub; i++ {
				l.add(Event{Type: "item", Index: p*perPub + i})
			}
		}(p)
	}

	consume := func(slow bool) (seen int64, finalNext int64) {
		var cursor int64
		for {
			evs, dropped, next, closed, wait := l.read(cursor)
			for i := 1; i < len(evs); i++ {
				if evs[i].Seq != evs[i-1].Seq+1 {
					t.Errorf("non-contiguous seqs in one read: %d then %d",
						evs[i-1].Seq, evs[i].Seq)
				}
			}
			seen += int64(len(evs)) + dropped
			cursor = next
			if closed {
				return seen, next
			}
			if slow {
				time.Sleep(500 * time.Microsecond)
			} else {
				<-wait
			}
		}
	}

	var readWG sync.WaitGroup
	results := make([]int64, 2)
	for i, slow := range []bool{false, true} {
		readWG.Add(1)
		go func(i int, slow bool) {
			defer readWG.Done()
			seen, next := consume(slow)
			results[i] = seen
			if next != total {
				t.Errorf("reader %d final cursor = %d, want %d", i, next, total)
			}
		}(i, slow)
	}

	pubWG.Wait()
	l.close()
	readWG.Wait()
	for i, seen := range results {
		if seen != total {
			t.Errorf("reader %d accounted for %d events (delivered+dropped), want %d",
				i, seen, total)
		}
	}
}

// TestSSESubscribersRaceStress exercises the full SSE path under -race with
// the engine's worker goroutines publishing concurrently: several fast
// subscribers stream a running job to completion, a slow subscriber drains
// the body in tiny sips, and one subscriber cancels mid-stream. The handler
// must neither deadlock nor race, fast subscribers must observe the
// terminal state frame, and cancellation must release the handler promptly.
func TestSSESubscribersRaceStress(t *testing.T) {
	srv := startServer(t, Config{Workers: 4, SampleInterval: 512})
	st := submit(t, srv, `{
		"workloads": ["dh.ilp.2.1"],
		"schemes": ["icount", "stall", "flush+", "cssp"],
		"trace_lens": [20000]
	}`)

	var wg sync.WaitGroup
	var terminal atomic.Int32

	// Fast subscribers: drain the whole stream as produced.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(srv.URL + "/v1/campaigns/" + st.ID + "/events")
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Errorf("fast subscriber: %v", err)
				return
			}
			if !containsStateFrame(string(body)) {
				t.Error("fast subscriber stream ended without a terminal state frame")
				return
			}
			terminal.Add(1)
		}()
	}

	// Slow subscriber: tiny reads with pauses, so the job finishes (and the
	// ring overwrites history) while the body is still being drained. The
	// bounded ring means the server never buffers per-reader; the stream
	// still terminates.
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(srv.URL + "/v1/campaigns/" + st.ID + "/events")
		if err != nil {
			t.Error(err)
			return
		}
		defer resp.Body.Close()
		buf := make([]byte, 64)
		for {
			_, err := resp.Body.Read(buf)
			if err != nil {
				if err != io.EOF {
					t.Errorf("slow subscriber: %v", err)
				}
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Cancelling subscriber: drop the connection mid-stream; the handler
	// goroutine must return via the request context, not hang on the ring.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			srv.URL+"/v1/campaigns/"+st.ID+"/events", nil)
		if err != nil {
			t.Error(err)
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Error(err)
			return
		}
		defer resp.Body.Close()
		buf := make([]byte, 256)
		if _, err := resp.Body.Read(buf); err != nil && err != io.EOF {
			t.Errorf("cancelling subscriber first read: %v", err)
		}
		cancel()
		// Draining after cancel must fail fast, not block.
		done := make(chan struct{})
		go func() {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck // error expected
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("cancelled SSE stream did not unblock")
		}
	}()

	wg.Wait()
	if got := terminal.Load(); got != 3 {
		t.Fatalf("%d of 3 fast subscribers saw the terminal frame", got)
	}
}

func containsStateFrame(body string) bool {
	return strings.Contains(body, "event: state")
}
