package service

import (
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// promLine matches one Prometheus text-format sample line:
// name{optional="labels"} value
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*")*\})? [-+0-9.eE]+$`)

func scrape(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type = %q, want text/plain", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]float64{}
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# HELP ") && !strings.HasPrefix(line, "# TYPE ") {
				t.Fatalf("malformed comment line %q", line)
			}
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("malformed sample line %q", line)
		}
		sp := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		out[line[:sp]] = v
	}
	return out
}

// TestMetricsEndpoint runs a small campaign and checks the scrape parses
// as Prometheus text and reflects the work: executed simulations, a done
// job, simulated cycles, and zero in-flight work once idle. A resubmission
// of the same manifest must then move only the store-hit counter.
func TestMetricsEndpoint(t *testing.T) {
	srv := startServer(t, Config{Workers: 2, SampleInterval: 1024})

	m := scrape(t, srv.URL)
	for _, name := range []string{
		`clustersmt_jobs{state="queued"}`,
		`clustersmt_jobs{state="running"}`,
		`clustersmt_jobs{state="done"}`,
		`clustersmt_jobs{state="failed"}`,
		`clustersmt_jobs{state="canceled"}`,
		"clustersmt_job_queue_depth",
		"clustersmt_sims_inflight",
		"clustersmt_sims_executed_total",
		"clustersmt_store_hits_total",
		"clustersmt_items_failed_total",
		"clustersmt_sim_cycles_total",
		"clustersmt_sim_cycles_per_second",
	} {
		if _, ok := m[name]; !ok {
			t.Errorf("metric %s missing from scrape", name)
		}
	}
	if m["clustersmt_sims_executed_total"] != 0 {
		t.Fatalf("fresh daemon reports %v executed sims", m["clustersmt_sims_executed_total"])
	}

	manifest := `{"workloads": ["dh.ilp.2.1"], "schemes": ["icount", "cssp"], "trace_lens": [20000]}`
	st := submit(t, srv, manifest)
	waitFinished(t, srv, st.ID)

	m = scrape(t, srv.URL)
	if got := m["clustersmt_sims_executed_total"]; got != 2 {
		t.Errorf("executed_total = %v, want 2", got)
	}
	if got := m[`clustersmt_jobs{state="done"}`]; got != 1 {
		t.Errorf(`jobs{state="done"} = %v, want 1`, got)
	}
	if m["clustersmt_sim_cycles_total"] <= 0 {
		t.Error("no simulated cycles recorded despite sampling")
	}
	if m["clustersmt_sims_inflight"] != 0 || m["clustersmt_job_queue_depth"] != 0 {
		t.Errorf("idle daemon reports inflight=%v queue=%v",
			m["clustersmt_sims_inflight"], m["clustersmt_job_queue_depth"])
	}

	st2 := submit(t, srv, manifest)
	waitFinished(t, srv, st2.ID)
	m = scrape(t, srv.URL)
	if got := m["clustersmt_sims_executed_total"]; got != 2 {
		t.Errorf("executed_total after resubmit = %v, want 2 (store hits)", got)
	}
	if got := m["clustersmt_store_hits_total"]; got != 2 {
		t.Errorf("store_hits_total = %v, want 2", got)
	}
}
