package service

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"clustersmt/internal/campaign"
)

// svcMetrics is the daemon's process-lifetime instrumentation, exposed in
// Prometheus text form by GET /metrics. Counters are updated from engine
// progress callbacks (hot path: one atomic add per event); the cycles/s
// gauge is derived at scrape time from the cycle counter's delta since the
// previous scrape.
type svcMetrics struct {
	executed  atomic.Int64 // fresh simulations completed
	storeHits atomic.Int64 // items answered by the store / singleflight
	failed    atomic.Int64 // items that completed with an error
	cycles    atomic.Int64 // simulated cycles, summed from sample windows

	mu         sync.Mutex
	lastScrape time.Time
	lastCycles int64
}

// onItem folds one engine progress event into the counters.
func (m *svcMetrics) onItem(ev campaign.ItemEvent) {
	switch {
	case ev.Sample != nil:
		m.cycles.Add(ev.Sample.Window)
	case ev.Result != nil:
		switch {
		case ev.Result.Error != "":
			m.failed.Add(1)
		case ev.Result.Cached:
			m.storeHits.Add(1)
		default:
			m.executed.Add(1)
		}
	}
}

// cyclesPerSecond returns the mean simulated-cycle rate since the previous
// scrape (0 on the first scrape, when there is no interval to rate over).
func (m *svcMetrics) cyclesPerSecond(now time.Time) float64 {
	cur := m.cycles.Load()
	m.mu.Lock()
	defer m.mu.Unlock()
	var rate float64
	if !m.lastScrape.IsZero() {
		if dt := now.Sub(m.lastScrape).Seconds(); dt > 0 {
			rate = float64(cur-m.lastCycles) / dt
		}
	}
	m.lastScrape = now
	m.lastCycles = cur
	return rate
}

// handleMetrics serves the daemon's operational metrics in the Prometheus
// text exposition format (version 0.0.4): jobs by state, queue depth,
// in-flight simulations against the shared gate, lifetime item counters,
// and simulation throughput.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	states := map[State]int{
		StateQueued: 0, StateRunning: 0, StateDone: 0, StateFailed: 0, StateCanceled: 0,
	}
	s.mu.Lock()
	for _, j := range s.jobs {
		j.mu.Lock()
		states[j.state]++
		j.mu.Unlock()
	}
	queueDepth := len(s.queue)
	s.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)

	fmt.Fprintf(w, "# HELP clustersmt_jobs Campaign jobs currently retained, by lifecycle state.\n")
	fmt.Fprintf(w, "# TYPE clustersmt_jobs gauge\n")
	for _, st := range []State{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled} {
		fmt.Fprintf(w, "clustersmt_jobs{state=%q} %d\n", st, states[st])
	}
	fmt.Fprintf(w, "# HELP clustersmt_job_queue_depth Jobs admitted but not yet picked up by a job worker.\n")
	fmt.Fprintf(w, "# TYPE clustersmt_job_queue_depth gauge\n")
	fmt.Fprintf(w, "clustersmt_job_queue_depth %d\n", queueDepth)
	fmt.Fprintf(w, "# HELP clustersmt_sims_inflight Simulations currently holding a slot of the shared worker gate.\n")
	fmt.Fprintf(w, "# TYPE clustersmt_sims_inflight gauge\n")
	fmt.Fprintf(w, "clustersmt_sims_inflight %d\n", len(s.eng.Gate))
	fmt.Fprintf(w, "# HELP clustersmt_sims_executed_total Fresh simulations completed since the daemon started.\n")
	fmt.Fprintf(w, "# TYPE clustersmt_sims_executed_total counter\n")
	fmt.Fprintf(w, "clustersmt_sims_executed_total %d\n", s.met.executed.Load())
	fmt.Fprintf(w, "# HELP clustersmt_store_hits_total Items answered by the result store or another job's in-flight execution.\n")
	fmt.Fprintf(w, "# TYPE clustersmt_store_hits_total counter\n")
	fmt.Fprintf(w, "clustersmt_store_hits_total %d\n", s.met.storeHits.Load())
	fmt.Fprintf(w, "# HELP clustersmt_items_failed_total Items that completed with an error.\n")
	fmt.Fprintf(w, "# TYPE clustersmt_items_failed_total counter\n")
	fmt.Fprintf(w, "clustersmt_items_failed_total %d\n", s.met.failed.Load())
	fmt.Fprintf(w, "# HELP clustersmt_sim_cycles_total Simulated machine cycles observed through sampling windows.\n")
	fmt.Fprintf(w, "# TYPE clustersmt_sim_cycles_total counter\n")
	fmt.Fprintf(w, "clustersmt_sim_cycles_total %d\n", s.met.cycles.Load())
	fmt.Fprintf(w, "# HELP clustersmt_sim_cycles_per_second Mean simulated-cycle rate since the previous scrape.\n")
	fmt.Fprintf(w, "# TYPE clustersmt_sim_cycles_per_second gauge\n")
	fmt.Fprintf(w, "clustersmt_sim_cycles_per_second %g\n", s.met.cyclesPerSecond(time.Now()))
}
