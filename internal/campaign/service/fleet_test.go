package service

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"reflect"
	"testing"
	"time"

	"clustersmt/internal/campaign/fleet"
	"clustersmt/internal/experiments"
)

// startFleetWorkers joins n in-process workers to the coordinator behind
// srv (the service handler mounts the fleet routes) and tears them down
// with the test.
func startFleetWorkers(t *testing.T, srv *httptest.Server, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		w, err := fleet.NewWorker(fleet.WorkerConfig{
			Coordinator: srv.URL,
			Name:        fmt.Sprintf("w%d", i),
			Parallel:    2,
		})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			w.Run(ctx)
		}()
		t.Cleanup(func() { cancel(); <-done })
	}
}

// TestFleetServiceMatchesLocal is the acceptance drill for coordinator
// mode: the iqsweep example campaign submitted to a fleet-mode daemon with
// three workers must produce exactly the result set a single-process
// daemon produces, the executed-simulation metric must count each item
// once despite the distributed retry machinery, and a resubmission through
// the fleet must execute zero simulations.
func TestFleetServiceMatchesLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-worker integration test")
	}
	manifest, err := os.ReadFile("../../../examples/campaign/iqsweep.json")
	if err != nil {
		t.Fatal(err)
	}

	shared := experiments.NewMemStore()
	coord := fleet.NewCoordinator(fleet.Config{
		Store:        shared,
		LeaseTTL:     5 * time.Second,
		PollInterval: 20 * time.Millisecond,
	})
	fleetSrv := startServer(t, Config{Workers: 4, Store: shared, Fleet: coord, SampleInterval: -1})
	startFleetWorkers(t, fleetSrv, 3)

	st := submit(t, fleetSrv, string(manifest))
	final := waitFinished(t, fleetSrv, st.ID)
	if final.State != StateDone {
		t.Fatalf("fleet job state = %s (%s)", final.State, final.Error)
	}
	if final.Failed != 0 {
		t.Fatalf("fleet job failed %d items", final.Failed)
	}
	rsFleet := getResults(t, fleetSrv, st.ID)

	// The reference: the same manifest on a plain single-process daemon.
	localSrv := startServer(t, Config{Workers: 4, SampleInterval: -1})
	stLocal := submit(t, localSrv, string(manifest))
	waitFinished(t, localSrv, stLocal.ID)
	rsLocal := getResults(t, localSrv, stLocal.ID)

	if len(rsFleet.Results) != len(rsLocal.Results) {
		t.Fatalf("fleet %d rows, local %d rows", len(rsFleet.Results), len(rsLocal.Results))
	}
	for i := range rsLocal.Results {
		if !reflect.DeepEqual(rsFleet.Results[i], rsLocal.Results[i]) {
			t.Errorf("row %d diverges:\nfleet: %+v\nlocal: %+v", i, rsFleet.Results[i], rsLocal.Results[i])
		}
	}
	if rsFleet.Executed != rsLocal.Executed || rsFleet.StoreHits != rsLocal.StoreHits {
		t.Fatalf("tally diverges: fleet executed=%d hits=%d, local executed=%d hits=%d",
			rsFleet.Executed, rsFleet.StoreHits, rsLocal.Executed, rsLocal.StoreHits)
	}

	// Every item counted exactly once in the daemon's executed counter —
	// leases, retries and duplicate completion reports must not inflate it.
	m := scrape(t, fleetSrv.URL)
	if got := m["clustersmt_sims_executed_total"]; got != float64(rsFleet.Total) {
		t.Errorf("executed_total = %v, want %d", got, rsFleet.Total)
	}

	// Resubmission through the fleet: all store hits, zero executions, and
	// the executed counter does not move.
	st2 := submit(t, fleetSrv, string(manifest))
	final2 := waitFinished(t, fleetSrv, st2.ID)
	if final2.State != StateDone {
		t.Fatalf("resubmitted job state = %s (%s)", final2.State, final2.Error)
	}
	rs2 := getResults(t, fleetSrv, st2.ID)
	if rs2.Executed != 0 || rs2.StoreHits != rs2.Total {
		t.Fatalf("resubmission executed %d, hits %d of %d — fleet store dedup broken",
			rs2.Executed, rs2.StoreHits, rs2.Total)
	}
	m = scrape(t, fleetSrv.URL)
	if got := m["clustersmt_sims_executed_total"]; got != float64(rsFleet.Total) {
		t.Errorf("executed_total after resubmit = %v, want %d (unchanged)", got, rsFleet.Total)
	}
	if got := m["clustersmt_store_hits_total"]; got != float64(rs2.Total) {
		t.Errorf("store_hits_total = %v, want %d", got, rs2.Total)
	}
}
