package campaign_test

import (
	"context"
	"sync"
	"testing"

	"clustersmt/internal/campaign"
	"clustersmt/internal/experiments"
)

// TestEngineSampling pins the executed-vs-cached sampling contract: with
// SampleInterval set, every item the engine actually simulates carries a
// time series (both on its Result and as live Sample events after Started),
// while a resumed re-run answering from the store carries none.
func TestEngineSampling(t *testing.T) {
	m := tinyManifest()
	st := experiments.NewMemStore()
	eng := campaign.Engine{Store: st, Resume: true, SampleInterval: 1024}

	var mu sync.Mutex
	started := map[int]bool{}
	liveSamples := map[int]int{}
	rs, err := eng.RunCtx(context.Background(), m, func(ev campaign.ItemEvent) {
		mu.Lock()
		defer mu.Unlock()
		switch {
		case ev.Started:
			started[ev.Index] = true
		case ev.Sample != nil:
			if !started[ev.Index] {
				t.Errorf("item %d: sample before Started", ev.Index)
			}
			if ev.Sample.Window <= 0 {
				t.Errorf("item %d: sample with window %d", ev.Index, ev.Sample.Window)
			}
			liveSamples[ev.Index]++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Failed != 0 || rs.Executed != rs.Total {
		t.Fatalf("fresh run: executed %d/%d, failed %d", rs.Executed, rs.Total, rs.Failed)
	}
	for i, r := range rs.Results {
		if len(r.Samples) == 0 {
			t.Errorf("executed item %d (%s) has no samples", i, r.Label)
		}
		if got := liveSamples[i]; got != len(r.Samples) {
			t.Errorf("item %d: %d live sample events vs %d attached samples", i, got, len(r.Samples))
		}
	}

	// Second engine, same store: everything answers from the store, and
	// store hits must not fabricate time series.
	eng2 := campaign.Engine{Store: st, Resume: true, SampleInterval: 1024}
	var resampled int
	rs2, err := eng2.RunCtx(context.Background(), m, func(ev campaign.ItemEvent) {
		if ev.Sample != nil {
			resampled++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rs2.StoreHits != rs2.Total {
		t.Fatalf("resumed run: %d store hits, want %d", rs2.StoreHits, rs2.Total)
	}
	if resampled != 0 {
		t.Errorf("resumed run emitted %d sample events, want 0", resampled)
	}
	for i, r := range rs2.Results {
		if len(r.Samples) != 0 {
			t.Errorf("cached item %d (%s) carries %d samples, want none", i, r.Label, len(r.Samples))
		}
	}
}

// TestEngineSamplingDisabled: the default engine (SampleInterval zero)
// attaches no samples and emits no sample events — the pre-observability
// result JSON shape is preserved byte-for-byte.
func TestEngineSamplingDisabled(t *testing.T) {
	eng := campaign.Engine{}
	rs, err := eng.RunCtx(context.Background(), tinyManifest(), func(ev campaign.ItemEvent) {
		if ev.Sample != nil {
			t.Errorf("item %d: sample event with sampling disabled", ev.Index)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rs.Results {
		if r.Samples != nil {
			t.Errorf("item %d carries samples with sampling disabled", i)
		}
	}
}
