package campaign

import (
	"fmt"
	"strconv"
)

// CSVHeader is the column set of the flat CSV form of a ResultSet, shared
// by the expdriver -csv flag and the service's results endpoint.
func CSVHeader() []string {
	return []string{
		"label", "workload", "scheme", "scheme_spec", "iq_size", "regs_per_cluster", "rob_per_thread",
		"trace_len", "rep", "single_thread",
		"num_clusters", "links", "link_latency", "mem_latency",
		"ipc", "copies_per_retired",
		"iq_stalls_per_retired", "fairness", "cached", "error",
	}
}

// CSVRows renders the set's results as rows matching CSVHeader, in
// expansion order.
func (rs *ResultSet) CSVRows() [][]string {
	rows := make([][]string, 0, len(rs.Results))
	for _, r := range rs.Results {
		rows = append(rows, []string{
			r.Label, r.Workload, r.Scheme, r.SchemeSpec,
			strconv.Itoa(r.IQSize), strconv.Itoa(r.RegsPerClust), strconv.Itoa(r.ROBPerThread),
			strconv.Itoa(r.TraceLen), strconv.Itoa(r.Rep), strconv.Itoa(r.SingleThread),
			strconv.Itoa(r.NumClusters), strconv.Itoa(r.Links),
			strconv.Itoa(r.LinkLatency), strconv.Itoa(r.MemLatency),
			fmt.Sprintf("%g", r.IPC), fmt.Sprintf("%g", r.CopiesPerRet),
			fmt.Sprintf("%g", r.IQStallsRet), fmt.Sprintf("%g", r.Fairness),
			strconv.FormatBool(r.Cached), r.Error,
		})
	}
	return rows
}
