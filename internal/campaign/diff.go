package campaign

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// ParseResultSet decodes b as a campaign ResultSet. ok is false when the
// document is JSON but not a result set (Diff callers then fall back to
// the generic comparison).
func ParseResultSet(b []byte) (*ResultSet, bool) {
	rs := &ResultSet{}
	if err := json.Unmarshal(b, rs); err != nil {
		return nil, false
	}
	if rs.Campaign == "" || len(rs.Results) == 0 {
		return nil, false
	}
	return rs, true
}

// DiffRow compares one label present in either result set.
type DiffRow struct {
	Label string  `json:"label"`
	IPCA  float64 `json:"ipc_a"`
	IPCB  float64 `json:"ipc_b"`
	// Delta is the relative IPC change (b/a - 1); NaN when only one side
	// has the label or a side failed.
	Delta float64 `json:"delta"`
	// OnlyIn is "a" or "b" for unmatched labels, empty otherwise.
	OnlyIn string `json:"only_in,omitempty"`
}

// DiffReport is the label-matched comparison of two campaigns — the
// branch-vs-main IPC delta view.
type DiffReport struct {
	CampaignA string    `json:"campaign_a"`
	CampaignB string    `json:"campaign_b"`
	Rows      []DiffRow `json:"rows"`
	MeanDelta float64   `json:"mean_delta"`
}

// Diff matches two result sets by label and reports per-spec IPC deltas.
// Rows follow a's result order, with b-only labels appended (sorted).
func Diff(a, b *ResultSet) *DiffReport {
	rep := &DiffReport{CampaignA: a.Campaign, CampaignB: b.Campaign}
	byLabel := map[string]*Result{}
	for i := range b.Results {
		byLabel[b.Results[i].Label] = &b.Results[i]
	}
	seen := map[string]bool{}
	var deltas []float64
	for i := range a.Results {
		ra := &a.Results[i]
		seen[ra.Label] = true
		row := DiffRow{Label: ra.Label, IPCA: ra.IPC, Delta: math.NaN()}
		if rb, ok := byLabel[ra.Label]; ok {
			row.IPCB = rb.IPC
			if ra.Error == "" && rb.Error == "" && ra.IPC > 0 {
				row.Delta = rb.IPC/ra.IPC - 1
				deltas = append(deltas, row.Delta)
			}
		} else {
			row.OnlyIn = "a"
		}
		rep.Rows = append(rep.Rows, row)
	}
	var extra []string
	for label := range byLabel {
		if !seen[label] {
			extra = append(extra, label)
		}
	}
	sort.Strings(extra)
	for _, label := range extra {
		rep.Rows = append(rep.Rows, DiffRow{
			Label: label, IPCB: byLabel[label].IPC, Delta: math.NaN(), OnlyIn: "b",
		})
	}
	if len(deltas) > 0 {
		total := 0.0
		for _, d := range deltas {
			total += d
		}
		rep.MeanDelta = total / float64(len(deltas))
	}
	return rep
}

// Exceeds lists the rows whose |delta| exceeds tol, plus every unmatched
// label — the regression gate behind `expdriver diff`.
func (r *DiffReport) Exceeds(tol float64) []DiffRow {
	var out []DiffRow
	for _, row := range r.Rows {
		if row.OnlyIn != "" || math.IsNaN(row.Delta) || math.Abs(row.Delta) > tol {
			out = append(out, row)
		}
	}
	return out
}

// CompareJSON structurally compares two JSON documents, tolerating
// relative numeric drift up to tol (with a small absolute floor so values
// near zero do not amplify). With numbersOnly set, non-numeric leaf
// mismatches are ignored — the CI figure gate uses this so a label string
// flipping between platforms cannot mask or fake an IPC regression.
// It returns one human-readable line per mismatch, empty on a match.
func CompareJSON(a, b []byte, tol float64, numbersOnly bool) ([]string, error) {
	var va, vb any
	if err := json.Unmarshal(a, &va); err != nil {
		return nil, fmt.Errorf("first document: %w", err)
	}
	if err := json.Unmarshal(b, &vb); err != nil {
		return nil, fmt.Errorf("second document: %w", err)
	}
	var out []string
	compareValues("$", va, vb, tol, numbersOnly, &out)
	return out, nil
}

func compareValues(path string, a, b any, tol float64, numbersOnly bool, out *[]string) {
	switch av := a.(type) {
	case map[string]any:
		bv, ok := b.(map[string]any)
		if !ok {
			*out = append(*out, fmt.Sprintf("%s: object vs %T", path, b))
			return
		}
		keys := map[string]bool{}
		for k := range av {
			keys[k] = true
		}
		for k := range bv {
			keys[k] = true
		}
		sorted := make([]string, 0, len(keys))
		for k := range keys {
			sorted = append(sorted, k)
		}
		sort.Strings(sorted)
		for _, k := range sorted {
			ak, aok := av[k]
			bk, bok := bv[k]
			p := path + "." + k
			switch {
			case !aok:
				*out = append(*out, fmt.Sprintf("%s: only in second document", p))
			case !bok:
				*out = append(*out, fmt.Sprintf("%s: only in first document", p))
			default:
				compareValues(p, ak, bk, tol, numbersOnly, out)
			}
		}
	case []any:
		bv, ok := b.([]any)
		if !ok {
			*out = append(*out, fmt.Sprintf("%s: array vs %T", path, b))
			return
		}
		if len(av) != len(bv) {
			*out = append(*out, fmt.Sprintf("%s: array length %d vs %d", path, len(av), len(bv)))
			return
		}
		for i := range av {
			compareValues(fmt.Sprintf("%s[%d]", path, i), av[i], bv[i], tol, numbersOnly, out)
		}
	case float64:
		bv, ok := b.(float64)
		if !ok {
			*out = append(*out, fmt.Sprintf("%s: number vs %T", path, b))
			return
		}
		diff := math.Abs(av - bv)
		scale := math.Max(math.Abs(av), math.Abs(bv))
		if diff > 1e-9 && diff > tol*scale {
			*out = append(*out, fmt.Sprintf("%s: %g vs %g (%.2f%% off, tolerance %.2f%%)",
				path, av, bv, 100*diff/math.Max(scale, 1e-300), 100*tol))
		}
	default:
		if numbersOnly {
			// Stay symmetric: a numeric leaf replacing a non-numeric one
			// (either direction) is still a numeric change worth failing on;
			// only mismatches with no number on either side are ignored.
			if _, ok := b.(float64); ok {
				*out = append(*out, fmt.Sprintf("%s: %v vs number %v", path, a, b))
			}
			return
		}
		if a != b {
			*out = append(*out, fmt.Sprintf("%s: %v vs %v", path, a, b))
		}
	}
}
