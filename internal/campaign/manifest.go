// Package campaign turns declarative sweep manifests into validated
// simulation campaigns over experiments.Runner, with persistent
// content-addressed results (internal/campaign/store), resumable execution
// and cross-campaign diffing. It is the scale layer the figure harness
// lacks: a new scenario is a JSON file, not bespoke figure code.
//
// The Engine is shareable and cancellable (RunCtx): runners persist across
// campaigns so concurrent submissions deduplicate in flight, which is what
// the service daemon (internal/campaign/service) builds on. See DESIGN.md
// §6 for how engine, store and service layer together.
package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"strings"

	"clustersmt/internal/experiments"
	"clustersmt/internal/policy"
	"clustersmt/internal/workload"
)

// Default axis values: one point per axis, matching the §5.1 issue-queue
// study machine (32-entry IQs, unbounded RF/ROB) at a campaign-friendly
// trace length.
const (
	defaultIQSize   = 32
	defaultTraceLen = 20000

	// Machine-shape axis defaults: the Table 1 machine (two clusters, two
	// 1-cycle links, 60-cycle memory). Expanded items always carry explicit
	// shape values; the defaults match core.DefaultConfig exactly, so a
	// manifest that omits every shape axis produces the same canonical
	// configs — and therefore the same content-addressed store keys — as a
	// pre-shape-axis campaign.
	defaultNumClusters = 2
	defaultLinks       = 2
	defaultLinkLatency = 1
	defaultMemLatency  = 60

	// maxMemLatencyAxis bounds the mem_latency axis well below the
	// simulator's event-wheel capacity (core.Config.Validate enforces the
	// exact bound; this catches typos at manifest-validation time).
	maxMemLatencyAxis = 50000
)

// Manifest declares a campaign: which workloads, which schemes, and the
// machine axes to sweep. The cross product of all axes, times repetitions,
// expands into the spec set (Expand).
//
// Axis semantics: a missing (null) axis takes the single-point default; a
// present-but-empty axis is a validation error (an empty cross product is
// never what anyone meant).
type Manifest struct {
	// Name identifies the campaign (defaults to the manifest filename).
	Name string `json:"name"`
	// Description is free-form documentation.
	Description string `json:"description,omitempty"`

	// Categories restricts the workload pool to the named Table 2
	// categories (null = all 11). Ignored when Workloads is set.
	Categories []string `json:"categories,omitempty"`
	// Workloads names explicit pool workloads, overriding Categories.
	Workloads []string `json:"workloads,omitempty"`
	// MaxPerCategory caps workloads per category, type-balanced like the
	// figure harness's quick mode (0 = no cap).
	MaxPerCategory int `json:"max_per_category,omitempty"`

	// Schemes lists resource-assignment schemes to run: named paper
	// schemes ("cdprf") or composed component specs in the policy grammar
	// ("sel=stall,iq=cssp,rf=cdprf"). Entries are canonicalized before
	// expansion; two spellings of one composition are rejected as
	// duplicates rather than silently double-run. Required unless
	// SchemeAxes is set.
	Schemes []string `json:"schemes,omitempty"`

	// SchemeAxes sweeps scheme components as axes: the cross product of
	// selectors × IQ policies × RF policies × declared parameter values
	// expands into composed specs, appended after Schemes. Expansions that
	// canonicalize to an entry already produced (by Schemes or by another
	// axis point) are rejected at validation.
	SchemeAxes *SchemeAxes `json:"scheme_axes,omitempty"`

	// IQSizes sweeps the per-cluster issue-queue capacity (default [32]).
	IQSizes []int `json:"iq_sizes,omitempty"`
	// RegsPerCluster sweeps per-kind physical registers per cluster;
	// 0 = unbounded (default [0]).
	RegsPerCluster []int `json:"regs_per_cluster,omitempty"`
	// ROBPerThread sweeps the per-thread ROB section; 0 = unbounded
	// (default [0]).
	ROBPerThread []int `json:"rob_per_thread,omitempty"`
	// TraceLens sweeps the per-thread trace length in uops
	// (default [20000]).
	TraceLens []int `json:"trace_lens,omitempty"`

	// NumClusters sweeps the back-end cluster count over [1,4]
	// (default [2], the paper's machine).
	NumClusters []int `json:"num_clusters,omitempty"`
	// Links sweeps the inter-cluster link count — copy transfers per cycle
	// (default [2]).
	Links []int `json:"links,omitempty"`
	// LinkLatency sweeps the inter-cluster transfer latency in cycles
	// (default [1]).
	LinkLatency []int `json:"link_latency,omitempty"`
	// MemLatency sweeps the main-memory access latency in cycles
	// (default [60]). The simulator sizes its completion wheel from the
	// swept value; core.Config.Validate rejects latencies it cannot model.
	MemLatency []int `json:"mem_latency,omitempty"`

	// Repetitions re-runs every point with per-repetition seed offsets
	// (rep 0 is the canonical pool seeding; default 1).
	Repetitions int `json:"repetitions,omitempty"`

	// SingleThreadBaselines adds a stand-alone Icount run per workload
	// thread at every axis point, enabling the §4 fairness metric on the
	// campaign's SMT results.
	SingleThreadBaselines bool `json:"single_thread_baselines,omitempty"`
}

// Load reads and validates a manifest file. Unknown fields are errors —
// a typoed axis name must not silently collapse a sweep to its default.
func Load(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	m, err := Parse(b)
	if err != nil {
		return nil, fmt.Errorf("campaign: %s: %w", path, err)
	}
	if m.Name == "" {
		m.Name = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	}
	return m, nil
}

// Parse decodes and validates a manifest from JSON bytes.
func Parse(b []byte) (*Manifest, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	m := &Manifest{}
	if err := dec.Decode(m); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Validate checks the manifest against the component and scheme
// registries, the workload pool and the axis rules (see Manifest).
func (m *Manifest) Validate() error {
	if _, err := m.schemeList(); err != nil {
		return err
	}
	return m.validateAxes()
}

// validateAxes checks everything except the scheme list — Expand resolves
// the scheme list itself (one expansion, not two) and calls this for the
// rest.
func (m *Manifest) validateAxes() error {
	known := map[string]bool{}
	for _, c := range workload.Categories {
		known[c] = true
	}
	for _, c := range m.Categories {
		if !known[c] {
			return fmt.Errorf("manifest: unknown category %q (known: %v)", c, workload.Categories)
		}
	}
	for _, w := range m.Workloads {
		if _, err := workload.Find(w); err != nil {
			return fmt.Errorf("manifest: %w", err)
		}
	}
	axes := []struct {
		name   string
		vals   []int
		minVal int
		maxVal int // 0 = unbounded
	}{
		{"iq_sizes", m.IQSizes, 4, 0},
		{"regs_per_cluster", m.RegsPerCluster, 0, 0},
		{"rob_per_thread", m.ROBPerThread, 0, 0},
		{"trace_lens", m.TraceLens, 1000, 0},
		{"num_clusters", m.NumClusters, 1, 4},
		{"links", m.Links, 1, 64},
		{"link_latency", m.LinkLatency, 1, 1024},
		{"mem_latency", m.MemLatency, 1, maxMemLatencyAxis},
	}
	for _, a := range axes {
		if a.vals != nil && len(a.vals) == 0 {
			return fmt.Errorf("manifest: axis %s is empty (omit it for the default, or list values)", a.name)
		}
		for _, v := range a.vals {
			if v < a.minVal {
				return fmt.Errorf("manifest: axis %s value %d below minimum %d", a.name, v, a.minVal)
			}
			if a.maxVal > 0 && v > a.maxVal {
				return fmt.Errorf("manifest: axis %s value %d above maximum %d", a.name, v, a.maxVal)
			}
		}
	}
	if m.MaxPerCategory < 0 {
		return fmt.Errorf("manifest: negative max_per_category")
	}
	if m.Repetitions < 0 {
		return fmt.Errorf("manifest: negative repetitions")
	}
	return nil
}

// SchemeAxes sweeps scheme components as campaign axes. The expansion is
// the cross product Selectors × IQ × RF × the value lists of every Params
// entry whose component is part of the combination — so a parameter axis
// multiplies only the combinations that actually instantiate its
// component. A missing (null) axis takes the Icount-baseline default;
// present-but-empty axes, duplicate entries and parameters targeting
// unswept components are validation errors.
type SchemeAxes struct {
	// Selectors sweeps the rename thread-selection policy
	// (default ["icount"]).
	Selectors []string `json:"selectors,omitempty"`
	// IQ sweeps the issue-queue occupancy policy
	// (default ["unrestricted"]).
	IQ []string `json:"iq,omitempty"`
	// RF sweeps the register-file occupancy policy (default ["none"]).
	RF []string `json:"rf,omitempty"`
	// Params sweeps component parameters: "component.param" maps to the
	// value list (e.g. "cspsp.frac": [0.25, 0.4]). The component must
	// appear in its axis above; values must satisfy the parameter's
	// declared bounds.
	Params map[string][]float64 `json:"params,omitempty"`
}

// axisComponents validates one component-axis list: a nil list takes the
// default, duplicates are rejected, and membership in the component
// registry is checked per-combination by SchemeSpec.Validate later.
func axisComponents(name string, vals []string, def string) ([]string, error) {
	if vals == nil {
		return []string{def}, nil
	}
	if len(vals) == 0 {
		return nil, fmt.Errorf("manifest: scheme_axes.%s is empty (omit it for the default, or list components)", name)
	}
	seen := map[string]bool{}
	for _, v := range vals {
		if seen[v] {
			return nil, fmt.Errorf("manifest: scheme_axes.%s lists %q twice", name, v)
		}
		seen[v] = true
	}
	return vals, nil
}

// paramAxis is one validated "component.param" sweep.
type paramAxis struct {
	comp, param string
	vals        []float64
}

// componentKind reports which registry holds comp: "selectors", "iq",
// "rf", or "" when unknown. Component names are disjoint across the three
// registries.
func componentKind(comp string) string {
	for _, c := range policy.Selectors() {
		if c.Name == comp {
			return "selectors"
		}
	}
	for _, c := range policy.IQPolicies() {
		if c.Name == comp {
			return "iq"
		}
	}
	for _, c := range policy.RFPolicies() {
		if c.Name == comp {
			return "rf"
		}
	}
	return ""
}

// expand returns the canonical spec strings of the full component × param
// cross product, in deterministic order (axes in listed order, param keys
// sorted).
func (a *SchemeAxes) expand() ([]string, error) {
	sels, err := axisComponents("selectors", a.Selectors, "icount")
	if err != nil {
		return nil, err
	}
	iqs, err := axisComponents("iq", a.IQ, "unrestricted")
	if err != nil {
		return nil, err
	}
	rfs, err := axisComponents("rf", a.RF, "none")
	if err != nil {
		return nil, err
	}

	keys := make([]string, 0, len(a.Params))
	for k := range a.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	byAxis := map[string][]string{"selectors": sels, "iq": iqs, "rf": rfs}
	var paxes []paramAxis
	for _, k := range keys {
		comp, param, ok := strings.Cut(k, ".")
		if !ok || comp == "" || param == "" {
			return nil, fmt.Errorf("manifest: scheme_axes.params key %q must be \"component.param\"", k)
		}
		vals := a.Params[k]
		if len(vals) == 0 {
			return nil, fmt.Errorf("manifest: scheme_axes.params.%s is empty (omit it for the default, or list values)", k)
		}
		seen := map[float64]bool{}
		for _, v := range vals {
			if seen[v] {
				return nil, fmt.Errorf("manifest: scheme_axes.params.%s lists %v twice", k, v)
			}
			seen[v] = true
		}
		kind := componentKind(comp)
		if kind == "" {
			return nil, fmt.Errorf("manifest: scheme_axes.params key %q: unknown component %q", k, comp)
		}
		if !slices.Contains(byAxis[kind], comp) {
			return nil, fmt.Errorf("manifest: scheme_axes.params key %q targets %s component %q, which is not in the %s axis — a parameter for an unswept component can never take effect",
				k, kind, comp, kind)
		}
		paxes = append(paxes, paramAxis{comp: comp, param: param, vals: vals})
	}

	var out []string
	for _, sel := range sels {
		for _, iq := range iqs {
			for _, rf := range rfs {
				base := policy.SchemeSpec{
					Sel: policy.ComponentSpec{Name: sel},
					IQ:  policy.ComponentSpec{Name: iq},
					RF:  policy.ComponentSpec{Name: rf},
				}
				applicable := make([]paramAxis, 0, len(paxes))
				for _, pa := range paxes {
					if pa.comp == sel || pa.comp == iq || pa.comp == rf {
						applicable = append(applicable, pa)
					}
				}
				specs, err := expandParams(base, applicable)
				if err != nil {
					return nil, err
				}
				out = append(out, specs...)
			}
		}
	}
	return out, nil
}

// expandParams crosses base with every value assignment of paxes and
// returns the canonical strings, validating each composed spec (this is
// where out-of-range parameter values and nonsensical combinations are
// rejected).
func expandParams(base policy.SchemeSpec, paxes []paramAxis) ([]string, error) {
	if len(paxes) == 0 {
		if err := base.Validate(); err != nil {
			return nil, fmt.Errorf("manifest: scheme_axes: %w", err)
		}
		return []string{base.Canonical()}, nil
	}
	pa, rest := paxes[0], paxes[1:]
	var out []string
	for _, v := range pa.vals {
		next := base
		switch pa.comp {
		case base.Sel.Name:
			next.Sel = base.Sel.WithParam(pa.param, v)
		case base.IQ.Name:
			next.IQ = base.IQ.WithParam(pa.param, v)
		case base.RF.Name:
			next.RF = base.RF.WithParam(pa.param, v)
		}
		specs, err := expandParams(next, rest)
		if err != nil {
			return nil, err
		}
		out = append(out, specs...)
	}
	return out, nil
}

// schemeList resolves Schemes plus the SchemeAxes expansion into the
// deduplicated canonical scheme list, in deterministic order (Schemes
// first, then the axes cross product). Two entries that canonicalize to
// the same composition — a repeated name, a composed spelling of a listed
// scheme, or an axis expansion overlapping either — are rejected so a
// sloppy manifest cannot silently double-run specs.
func (m *Manifest) schemeList() ([]string, error) {
	seen := map[string]string{}
	var out []string
	add := func(raw, canon, src string) error {
		if prev, dup := seen[canon]; dup {
			return fmt.Errorf("manifest: %s %q duplicates %q (both canonicalize to %q)", src, raw, prev, canon)
		}
		seen[canon] = raw
		out = append(out, canon)
		return nil
	}
	for _, s := range m.Schemes {
		canon, err := policy.CanonicalScheme(s)
		if err != nil {
			return nil, fmt.Errorf("manifest: schemes: %w", err)
		}
		if err := add(s, canon, "schemes entry"); err != nil {
			return nil, err
		}
	}
	if m.SchemeAxes != nil {
		specs, err := m.SchemeAxes.expand()
		if err != nil {
			return nil, err
		}
		for _, canon := range specs {
			if err := add(canon, canon, "scheme_axes expansion"); err != nil {
				return nil, err
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("manifest: no schemes (list schemes and/or scheme_axes; named schemes: %v)", policy.Names())
	}
	return out, nil
}

// Item is one expanded simulation of a campaign: a runner spec plus the
// campaign axes that are not part of experiments.Spec.
type Item struct {
	// Spec is the runner spec; for repetitions > 0 its workload is a
	// derived sibling (offset seeds, suffixed name).
	Spec experiments.Spec
	// Base is the pool workload name (without the repetition suffix).
	Base string
	// TraceLen is the per-thread trace length for this item.
	TraceLen int
	// Rep is the repetition index (0 = canonical seeding).
	Rep int
}

// Label renders the item's identity as a stable, human-readable key. Diff
// matches results across campaigns by this label, so it must be a pure
// function of the item's coordinates. The machine-shape suffix
// (c = clusters, lk = links, ll = link latency, ml = memory latency) is
// appended only for non-Table-1 shapes, so Table 1 labels stay
// byte-identical to pre-shape-axis campaigns — result sets emitted before
// the shape axes existed still diff row-for-row against new ones (the same
// compatibility rule the content-addressed store keys follow).
func (it Item) Label() string {
	l := fmt.Sprintf("%s|%s|iq%d|rf%d|rob%d|len%d|r%d|st%d",
		it.Base, it.Spec.Scheme, it.Spec.IQSize, it.Spec.RegsPerClust,
		it.Spec.ROBPerThread, it.TraceLen, it.Rep, it.Spec.SingleThread)
	s := it.Spec
	if s.NumClusters != defaultNumClusters || s.Links != defaultLinks ||
		s.LinkLatency != defaultLinkLatency || s.MemLatency != defaultMemLatency {
		l += fmt.Sprintf("|c%d|lk%d|ll%d|ml%d", s.NumClusters, s.Links, s.LinkLatency, s.MemLatency)
	}
	return l
}

// repSeedStride separates repetition seed spaces (golden-ratio stride, the
// same family the pool's own seeding uses).
const repSeedStride = 0x9e3779b97f4a7c15

// repWorkload derives the rep-th sibling of w: same profiles, offset seeds,
// suffixed name. The seed offset is what keeps siblings distinct — trace
// memoization and the runner's session maps key on seed/profile content,
// not names — while the suffixed name keeps labels and result records
// readable. A rename alone would NOT reseed anything.
func repWorkload(w workload.Workload, rep int) workload.Workload {
	if rep == 0 {
		return w
	}
	d := w
	d.Name = fmt.Sprintf("%s+r%d", w.Name, rep)
	d.Seeds = make([]uint64, len(w.Seeds))
	for i, s := range w.Seeds {
		d.Seeds[i] = s + uint64(rep)*repSeedStride
	}
	return d
}

// selectedWorkloads resolves the manifest's workload pool in deterministic
// order.
func (m *Manifest) selectedWorkloads() ([]workload.Workload, error) {
	if len(m.Workloads) > 0 {
		out := make([]workload.Workload, 0, len(m.Workloads))
		for _, name := range m.Workloads {
			w, err := workload.Find(name)
			if err != nil {
				return nil, err
			}
			out = append(out, w)
		}
		return out, nil
	}
	o := experiments.Options{Categories: m.Categories, MaxPerCategory: m.MaxPerCategory}
	return o.Selected(), nil
}

// axis returns vals, or the default point when the axis was omitted.
func axis(vals []int, def int) []int {
	if vals == nil {
		return []int{def}
	}
	return vals
}

// Expand validates the manifest and returns the full deterministic item
// list: the cross product of workloads × repetitions × trace lengths ×
// IQ sizes × register files × ROB depths × machine shapes (cluster count ×
// links × link latency × memory latency) × schemes (the canonicalized
// Schemes list plus the SchemeAxes component cross product), plus the
// per-thread Icount baselines at every axis point when
// SingleThreadBaselines is set. Dry runs print exactly this list; real
// runs execute exactly this list.
func (m *Manifest) Expand() ([]Item, error) {
	// schemeList is the scheme half of Validate; calling it directly (plus
	// validateAxes) avoids expanding the scheme_axes cross product twice.
	schemes, err := m.schemeList()
	if err != nil {
		return nil, err
	}
	if err := m.validateAxes(); err != nil {
		return nil, err
	}
	pool, err := m.selectedWorkloads()
	if err != nil {
		return nil, err
	}
	reps := m.Repetitions
	if reps < 1 {
		reps = 1
	}
	var shapes []experiments.MachineShape
	for _, nc := range axis(m.NumClusters, defaultNumClusters) {
		for _, lk := range axis(m.Links, defaultLinks) {
			for _, ll := range axis(m.LinkLatency, defaultLinkLatency) {
				for _, ml := range axis(m.MemLatency, defaultMemLatency) {
					shapes = append(shapes, experiments.MachineShape{
						NumClusters: nc, Links: lk, LinkLatency: ll, MemLatency: ml,
					})
				}
			}
		}
	}
	var items []Item
	for _, tl := range axis(m.TraceLens, defaultTraceLen) {
		for _, base := range pool {
			for rep := 0; rep < reps; rep++ {
				w := repWorkload(base, rep)
				for _, iq := range axis(m.IQSizes, defaultIQSize) {
					for _, rf := range axis(m.RegsPerCluster, 0) {
						for _, rob := range axis(m.ROBPerThread, 0) {
							for _, sh := range shapes {
								point := func(scheme string, single int) Item {
									return Item{
										Spec: experiments.Spec{
											Workload:     w,
											Scheme:       scheme,
											IQSize:       iq,
											RegsPerClust: rf,
											ROBPerThread: rob,
											SingleThread: single,
											NumClusters:  sh.NumClusters,
											Links:        sh.Links,
											LinkLatency:  sh.LinkLatency,
											MemLatency:   sh.MemLatency,
										},
										Base:     base.Name,
										TraceLen: tl,
										Rep:      rep,
									}
								}
								if m.SingleThreadBaselines {
									for t := range w.Threads {
										items = append(items, point("icount", t))
									}
								}
								for _, s := range schemes {
									items = append(items, point(s, -1))
								}
							}
						}
					}
				}
			}
		}
	}
	return items, nil
}
