package campaign

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"clustersmt/internal/core"
	"clustersmt/internal/experiments"
	"clustersmt/internal/metrics"
)

// Engine executes expanded campaigns on experiments runners, one per trace
// length, all sharing one persistent store layer.
//
// An Engine may be shared: runners (and with them the in-memory result
// layer, the singleflight tables and the trace memos) persist across RunCtx
// calls, so concurrent campaigns submitted to one Engine — the service
// daemon's configuration — deduplicate overlapping specs exactly once even
// while both are in flight.
//
// The Engine is the in-process execution strategy over a campaign Plan;
// the fleet coordinator (internal/campaign/fleet) is the distributed one.
// Both fill the Plan's ResultSet through the same assembly code, so a
// fleet run of a manifest is bit-for-bit comparable to a local run.
type Engine struct {
	// Store is the persistent result layer (typically *store.Store). Nil
	// runs the campaign memory-only.
	Store experiments.ResultStore
	// Resume (the default in expdriver) reuses results already in Store;
	// when false, existing entries are ignored and overwritten, forcing
	// every simulation to re-execute.
	Resume bool
	// Workers bounds per-campaign simulation parallelism (0 = NumCPU).
	Workers int
	// Gate, when non-nil, additionally bounds total simulation concurrency
	// across every campaign this engine runs (see experiments.Runner.Gate).
	// The service shares one gate across its job executors.
	Gate chan struct{}
	// Verbose, when set, receives one line per completed simulation.
	Verbose func(string)
	// SampleInterval, when non-zero, enables per-item time-series sampling:
	// executed items collect one metrics.Sample per interval cycles (see
	// core.Processor.SetSampler for rounding), attached to the item's
	// Result and forwarded live through the progress callback. Store hits
	// carry no samples — only actual simulations produce time series.
	SampleInterval int64

	mu      sync.Mutex
	mem     *experiments.MemStore
	runners map[int]*experiments.Runner
}

// ItemEvent reports one expanded item's lifecycle during RunCtx.
type ItemEvent struct {
	// Index addresses the item in the expansion (and the eventual
	// ResultSet.Results slice).
	Index int
	// Started marks the pickup event; the completion event carries Result.
	Started bool
	// Result is the completed item's outcome (nil on Started events). It
	// points into the ResultSet under construction and must be treated as
	// read-only.
	Result *Result
	// Sample, when non-nil, is one time-series observation window from the
	// item's running simulation (Engine.SampleInterval must be set). Sample
	// events fire between Started and the completion event, from the
	// simulating goroutine; the pointed-to value is never mutated after the
	// callback.
	Sample *metrics.Sample
}

// Result is one item's outcome, machine-readable for the JSON/CSV emitters
// and for Diff.
type Result struct {
	Label    string `json:"label"`
	Workload string `json:"workload"`
	// Scheme is the canonical scheme reference (a paper name, or the
	// normalized component grammar for composed specs); SchemeSpec echoes
	// the full sel/iq/rf composition for both, so result rows are
	// self-describing without the named registry at hand.
	Scheme       string    `json:"scheme"`
	SchemeSpec   string    `json:"scheme_spec,omitempty"`
	IQSize       int       `json:"iq_size"`
	RegsPerClust int       `json:"regs_per_cluster"`
	ROBPerThread int       `json:"rob_per_thread"`
	TraceLen     int       `json:"trace_len"`
	Rep          int       `json:"rep"`
	SingleThread int       `json:"single_thread"`
	NumClusters  int       `json:"num_clusters"`
	Links        int       `json:"links"`
	LinkLatency  int       `json:"link_latency"`
	MemLatency   int       `json:"mem_latency"`
	Key          string    `json:"key"`
	Cached       bool      `json:"cached"`
	IPC          float64   `json:"ipc"`
	CopiesPerRet float64   `json:"copies_per_retired"`
	IQStallsRet  float64   `json:"iq_stalls_per_retired"`
	ThreadIPC    []float64 `json:"thread_ipc,omitempty"`
	Fairness     float64   `json:"fairness,omitempty"`
	Error        string    `json:"error,omitempty"`
	// Samples is the item's simulation time series (one entry per closed
	// observation window), present only when the engine ran with
	// SampleInterval set AND this item actually executed: cached items
	// recall summary statistics, not time series.
	Samples []metrics.Sample `json:"samples,omitempty"`
}

// ResultSet is a completed campaign: every expanded item in expansion
// order, plus the execution tally. It is the diffable artifact campaigns
// exchange across branches.
type ResultSet struct {
	Campaign  string   `json:"campaign"`
	Version   string   `json:"version"`
	Total     int      `json:"total"`
	Executed  int      `json:"executed"`
	StoreHits int      `json:"store_hits"`
	Failed    int      `json:"failed"`
	Results   []Result `json:"results"`
}

// baselinePoint identifies one single-thread baseline coordinate. The
// machine shape participates: a baseline on a 1-cluster machine must not
// answer for an SMT run on 4 clusters.
type baselinePoint struct {
	base                 string
	rep, tl, iq, rf, rob int
	nc, lk, ll, ml       int
	thread               int
}

// pointOf projects an item onto its baseline coordinate for thread t.
func pointOf(it Item, t int) baselinePoint {
	return baselinePoint{
		base: it.Base, rep: it.Rep, tl: it.TraceLen,
		iq: it.Spec.IQSize, rf: it.Spec.RegsPerClust, rob: it.Spec.ROBPerThread,
		nc: it.Spec.NumClusters, lk: it.Spec.Links, ll: it.Spec.LinkLatency, ml: it.Spec.MemLatency,
		thread: t,
	}
}

// runnerFor returns the engine's shared runner for trace length tl,
// creating it on first use: a fresh-layer MemStore in front of the
// persistent store, sharing the engine's gate. With Resume disabled the
// runner is NOT cached and writes through a read-blind persistent layer, so
// every simulation re-executes while fresh results still land on disk.
func (e *Engine) runnerFor(tl int) *experiments.Runner {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.Resume {
		if r, ok := e.runners[tl]; ok {
			return r
		}
	}
	if e.mem == nil {
		e.mem = experiments.NewMemStore()
	}
	r := experiments.NewRunner(tl)
	r.Workers = e.Workers
	r.Verbose = e.Verbose
	r.Gate = e.Gate
	r.SampleInterval = e.SampleInterval
	if e.Resume {
		layers := []experiments.ResultStore{e.mem}
		if e.Store != nil {
			layers = append(layers, e.Store)
		}
		r.Store = experiments.Layered(layers...)
		if e.runners == nil {
			e.runners = make(map[int]*experiments.Runner)
		}
		e.runners[tl] = r
	} else {
		layers := []experiments.ResultStore{experiments.NewMemStore()}
		if e.Store != nil {
			layers = append(layers, experiments.WriteOnly(e.Store))
		}
		r.Store = experiments.Layered(layers...)
	}
	return r
}

// Recycle drops the engine's cached runners and shared in-memory result
// layer, releasing the trace memos and Stats they hold. Live campaigns are
// unaffected — they keep references to their runners, which stay valid;
// only future sharing starts cold. The service daemon calls this whenever
// it goes idle so a long-running process's memory is bounded by one busy
// period: with a persistent store underneath, the only cost is a disk read
// per recalled key.
func (e *Engine) Recycle() {
	e.mu.Lock()
	e.runners = nil
	e.mem = nil
	e.mu.Unlock()
}

// Run expands m and executes every item, recalling whatever the store
// already holds. Simulation failures do not abort the campaign: failed
// items carry their error and the set reports the partial tally, so an
// interrupted or partly broken campaign still lands its completed results
// (and a later -resume run executes only what is missing).
func (e *Engine) Run(m *Manifest) (*ResultSet, error) {
	return e.RunCtx(context.Background(), m, nil)
}

// RunCtx is Run with cooperative cancellation and optional per-item
// progress reporting. Cancelling the context stops in-flight simulations
// mid-run and fails the not-yet-started items with the context's error;
// completed items keep their results, so a cancelled campaign still returns
// the partial ResultSet. The progress callback (optional) is invoked from
// worker goroutines and must be safe for concurrent use.
func (e *Engine) RunCtx(ctx context.Context, m *Manifest, progress func(ItemEvent)) (*ResultSet, error) {
	plan, err := NewPlan(m)
	if err != nil {
		return nil, err
	}
	rs := plan.NewResultSet(core.SimVersion)

	// Per-item time series, collected outside the Result until the item
	// completes. Safe without a lock: exactly one worker simulates item i,
	// and its Sample callbacks happen-before its Finished callback on the
	// same goroutine.
	var samples [][]metrics.Sample
	if e.SampleInterval > 0 {
		samples = make([][]metrics.Sample, len(plan.Items))
	}

	// One runner per trace length; the engine shares runners (and their
	// in-memory layer) across campaigns, so concurrent submissions of
	// overlapping manifests singleflight into one execution per spec.
	for _, tl := range plan.TraceLens() {
		idxs := plan.Indices(tl)
		r := e.runnerFor(tl)
		specs := make([]experiments.Spec, len(idxs))
		for j, i := range idxs {
			specs[j] = plan.Items[i].Spec
		}
		p := &experiments.Progress{
			Finished: func(j int, st *metrics.Stats, executed bool, err error) {
				i := idxs[j]
				res := plan.Result(i, r.CacheKey(plan.Items[i].Spec), st, executed, err)
				if executed && samples != nil {
					res.Samples = samples[i]
				}
				rs.Results[i] = res
				if progress != nil {
					progress(ItemEvent{Index: i, Result: &rs.Results[i]})
				}
			},
		}
		if progress != nil {
			p.Started = func(j int) {
				progress(ItemEvent{Index: idxs[j], Started: true})
			}
		}
		if samples != nil {
			p.Sample = func(j int, s metrics.Sample) {
				i := idxs[j]
				samples[i] = append(samples[i], s)
				if progress != nil {
					progress(ItemEvent{Index: i, Sample: &s})
				}
			}
		}
		// Per-item errors already landed in the results via the callback;
		// the set reports Failed below.
		_, _ = r.RunAllCtx(ctx, specs, p)
	}

	plan.Finalize(rs)
	return rs, nil
}

// Err aggregates the set's per-item failures into one error (nil when the
// campaign fully succeeded).
func (rs *ResultSet) Err() error {
	var errs []error
	for _, r := range rs.Results {
		if r.Error != "" {
			errs = append(errs, fmt.Errorf("%s: %s", r.Label, r.Error))
		}
	}
	return errors.Join(errs...)
}
