package campaign

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"clustersmt/internal/core"
	"clustersmt/internal/experiments"
	"clustersmt/internal/metrics"
)

// Engine executes expanded campaigns on experiments runners, one per trace
// length, all sharing one persistent store layer.
type Engine struct {
	// Store is the persistent result layer (typically *store.Store). Nil
	// runs the campaign memory-only.
	Store experiments.ResultStore
	// Resume (the default in expdriver) reuses results already in Store;
	// when false, existing entries are ignored and overwritten, forcing
	// every simulation to re-execute.
	Resume bool
	// Workers bounds simulation parallelism (0 = NumCPU).
	Workers int
	// Verbose, when set, receives one line per completed simulation.
	Verbose func(string)
}

// Result is one item's outcome, machine-readable for the JSON/CSV emitters
// and for Diff.
type Result struct {
	Label        string    `json:"label"`
	Workload     string    `json:"workload"`
	Scheme       string    `json:"scheme"`
	IQSize       int       `json:"iq_size"`
	RegsPerClust int       `json:"regs_per_cluster"`
	ROBPerThread int       `json:"rob_per_thread"`
	TraceLen     int       `json:"trace_len"`
	Rep          int       `json:"rep"`
	SingleThread int       `json:"single_thread"`
	NumClusters  int       `json:"num_clusters"`
	Links        int       `json:"links"`
	LinkLatency  int       `json:"link_latency"`
	MemLatency   int       `json:"mem_latency"`
	Key          string    `json:"key"`
	Cached       bool      `json:"cached"`
	IPC          float64   `json:"ipc"`
	CopiesPerRet float64   `json:"copies_per_retired"`
	IQStallsRet  float64   `json:"iq_stalls_per_retired"`
	ThreadIPC    []float64 `json:"thread_ipc,omitempty"`
	Fairness     float64   `json:"fairness,omitempty"`
	Error        string    `json:"error,omitempty"`
}

// ResultSet is a completed campaign: every expanded item in expansion
// order, plus the execution tally. It is the diffable artifact campaigns
// exchange across branches.
type ResultSet struct {
	Campaign  string   `json:"campaign"`
	Version   string   `json:"version"`
	Total     int      `json:"total"`
	Executed  int      `json:"executed"`
	StoreHits int      `json:"store_hits"`
	Failed    int      `json:"failed"`
	Results   []Result `json:"results"`
}

// putSet tracks which keys the runners Put during this campaign. The
// runner Puts exactly the results it executed (backfills happen inside
// Layered, below the recording wrapper), so the set identifies fresh
// executions; everything else a store answered for.
type putSet struct {
	mu sync.Mutex
	m  map[string]bool
}

func newPutSet() *putSet { return &putSet{m: make(map[string]bool)} }

func (p *putSet) add(key string) {
	p.mu.Lock()
	p.m[key] = true
	p.mu.Unlock()
}

func (p *putSet) has(key string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.m[key]
}

// recordingStore wraps a runner's store, recording every Put into the
// campaign-wide putSet.
type recordingStore struct {
	inner experiments.ResultStore
	set   *putSet
}

func (r *recordingStore) Get(key string) (*metrics.Stats, bool, error) {
	return r.inner.Get(key)
}

func (r *recordingStore) Put(key string, st *metrics.Stats) error {
	r.set.add(key)
	return r.inner.Put(key, st)
}

// baselinePoint identifies one single-thread baseline coordinate. The
// machine shape participates: a baseline on a 1-cluster machine must not
// answer for an SMT run on 4 clusters.
type baselinePoint struct {
	base                 string
	rep, tl, iq, rf, rob int
	nc, lk, ll, ml       int
	thread               int
}

// pointOf projects an item onto its baseline coordinate for thread t.
func pointOf(it Item, t int) baselinePoint {
	return baselinePoint{
		base: it.Base, rep: it.Rep, tl: it.TraceLen,
		iq: it.Spec.IQSize, rf: it.Spec.RegsPerClust, rob: it.Spec.ROBPerThread,
		nc: it.Spec.NumClusters, lk: it.Spec.Links, ll: it.Spec.LinkLatency, ml: it.Spec.MemLatency,
		thread: t,
	}
}

// Run expands m and executes every item, recalling whatever the store
// already holds. Simulation failures do not abort the campaign: failed
// items carry their error and the set reports the partial tally, so an
// interrupted or partly broken campaign still lands its completed results
// (and a later -resume run executes only what is missing).
func (e *Engine) Run(m *Manifest) (*ResultSet, error) {
	items, err := m.Expand()
	if err != nil {
		return nil, err
	}
	rs := &ResultSet{
		Campaign: m.Name,
		Version:  core.SimVersion,
		Total:    len(items),
		Results:  make([]Result, len(items)),
	}

	// One runner per trace length; all share the persistent layer through
	// one recording wrapper so Cached attribution spans the whole campaign.
	persist := e.Store
	if persist != nil && !e.Resume {
		persist = experiments.WriteOnly(persist)
	}
	byLen := map[int][]int{}
	for i, it := range items {
		byLen[it.TraceLen] = append(byLen[it.TraceLen], i)
	}
	lens := make([]int, 0, len(byLen))
	for tl := range byLen {
		lens = append(lens, tl)
	}
	sort.Ints(lens)

	executed := newPutSet()
	runners := map[int]*experiments.Runner{}
	for _, tl := range lens {
		r := experiments.NewRunner(tl)
		r.Workers = e.Workers
		r.Verbose = e.Verbose
		layers := []experiments.ResultStore{experiments.NewMemStore()}
		if persist != nil {
			layers = append(layers, persist)
		}
		r.Store = &recordingStore{inner: experiments.Layered(layers...), set: executed}
		runners[tl] = r
	}

	for _, tl := range lens {
		idxs := byLen[tl]
		r := runners[tl]
		specs := make([]experiments.Spec, len(idxs))
		for j, i := range idxs {
			specs[j] = items[i].Spec
		}
		stats, err := r.RunAll(specs)
		_ = err // per-item errors are re-derived below; the set reports Failed
		for j, i := range idxs {
			it := items[i]
			res := Result{
				Label:        it.Label(),
				Workload:     it.Base,
				Scheme:       it.Spec.Scheme,
				IQSize:       it.Spec.IQSize,
				RegsPerClust: it.Spec.RegsPerClust,
				ROBPerThread: it.Spec.ROBPerThread,
				TraceLen:     it.TraceLen,
				Rep:          it.Rep,
				SingleThread: it.Spec.SingleThread,
				NumClusters:  it.Spec.NumClusters,
				Links:        it.Spec.Links,
				LinkLatency:  it.Spec.LinkLatency,
				MemLatency:   it.Spec.MemLatency,
				Key:          r.CacheKey(it.Spec),
			}
			if st := stats[j]; st != nil {
				res.Cached = !executed.has(res.Key)
				res.IPC = st.IPC()
				res.CopiesPerRet = st.CopiesPerRetired()
				res.IQStallsRet = st.IQStallsPerRetired()
				if it.Spec.SingleThread < 0 {
					for t := range it.Spec.Workload.Threads {
						res.ThreadIPC = append(res.ThreadIPC, st.ThreadIPC(t))
					}
				}
			} else {
				// All runner errors are instant construction failures
				// (p.Run itself cannot fail), so re-asking is cheap and
				// yields the item-specific message.
				if _, runErr := r.Run(it.Spec); runErr != nil {
					res.Error = runErr.Error()
				} else {
					res.Error = "simulation failed"
				}
			}
			rs.Results[i] = res
		}
	}

	if m.SingleThreadBaselines {
		e.fillFairness(items, rs)
	}

	for i := range rs.Results {
		switch {
		case rs.Results[i].Error != "":
			rs.Failed++
		case rs.Results[i].Cached:
			rs.StoreHits++
		default:
			rs.Executed++
		}
	}
	return rs, nil
}

// fillFairness computes the §4 fairness metric for every SMT result whose
// per-thread Icount baselines all completed at the same axis point.
func (e *Engine) fillFairness(items []Item, rs *ResultSet) {
	single := map[baselinePoint]float64{}
	for i, it := range items {
		if it.Spec.SingleThread >= 0 && rs.Results[i].Error == "" {
			single[pointOf(it, it.Spec.SingleThread)] = rs.Results[i].IPC
		}
	}
	for i, it := range items {
		if it.Spec.SingleThread >= 0 || rs.Results[i].Error != "" {
			continue
		}
		n := len(it.Spec.Workload.Threads)
		if len(rs.Results[i].ThreadIPC) != n {
			continue
		}
		singles := make([]float64, 0, n)
		for t := 0; t < n; t++ {
			ipc, ok := single[pointOf(it, t)]
			if !ok {
				break
			}
			singles = append(singles, ipc)
		}
		if len(singles) == n {
			rs.Results[i].Fairness = metrics.Fairness(singles, rs.Results[i].ThreadIPC)
		}
	}
}

// Err aggregates the set's per-item failures into one error (nil when the
// campaign fully succeeded).
func (rs *ResultSet) Err() error {
	var errs []error
	for _, r := range rs.Results {
		if r.Error != "" {
			errs = append(errs, fmt.Errorf("%s: %s", r.Label, r.Error))
		}
	}
	return errors.Join(errs...)
}
