package campaign_test

import (
	"strings"
	"testing"

	"clustersmt/internal/campaign"
)

// expandSchemes returns the distinct scheme strings of m's expansion, in
// first-appearance order.
func expandSchemes(t *testing.T, m *campaign.Manifest) []string {
	t.Helper()
	items, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	var out []string
	for _, it := range items {
		if it.Spec.SingleThread >= 0 {
			continue
		}
		if !seen[it.Spec.Scheme] {
			seen[it.Spec.Scheme] = true
			out = append(out, it.Spec.Scheme)
		}
	}
	return out
}

func TestSchemeAxesExpansion(t *testing.T) {
	m := &campaign.Manifest{
		Workloads: []string{"ispec00.mix.2.1"},
		TraceLens: []int{1000},
		SchemeAxes: &campaign.SchemeAxes{
			Selectors: []string{"icount", "stall"},
			IQ:        []string{"cssp", "cspsp"},
			RF:        []string{"none", "cdprf"},
			Params:    map[string][]float64{"cspsp.frac": {0.25, 0.4}},
		},
	}
	got := expandSchemes(t, m)
	// 2 selectors × (cssp ×1 + cspsp ×2 frac values) × 2 RF = 12, with the
	// all-default corners collapsing to named schemes.
	want := []string{
		"cssp",
		"cdprf",
		"cspsp",
		"sel=icount,iq=cspsp:frac=0.4,rf=none",
		"sel=icount,iq=cspsp,rf=cdprf",
		"sel=icount,iq=cspsp:frac=0.4,rf=cdprf",
		"sel=stall,iq=cssp,rf=none",
		"sel=stall,iq=cssp,rf=cdprf",
		"sel=stall,iq=cspsp,rf=none",
		"sel=stall,iq=cspsp:frac=0.4,rf=none",
		"sel=stall,iq=cspsp,rf=cdprf",
		"sel=stall,iq=cspsp:frac=0.4,rf=cdprf",
	}
	if len(got) != len(want) {
		t.Fatalf("expanded %d distinct schemes, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("scheme[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestSchemeAxesReachBeyondRegistry: the acceptance criterion that
// scheme_axes expands to component combinations not in the named registry.
func TestSchemeAxesReachBeyondRegistry(t *testing.T) {
	m := &campaign.Manifest{
		Workloads:  []string{"ispec00.mix.2.1"},
		TraceLens:  []int{1000},
		SchemeAxes: &campaign.SchemeAxes{Selectors: []string{"stall"}, IQ: []string{"cssp"}, RF: []string{"cdprf"}},
	}
	got := expandSchemes(t, m)
	if len(got) != 1 || got[0] != "sel=stall,iq=cssp,rf=cdprf" {
		t.Fatalf("expansion = %v", got)
	}
}

func TestSchemeDuplicatesRejected(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string
	}{
		{"repeated name", `{"schemes":["cssp","icount","cssp"]}`, "duplicates"},
		{"respelled duplicate", `{"schemes":["cdprf","sel=icount,iq=cssp,rf=cdprf"]}`, "duplicates"},
		{"axes overlap schemes", `{"schemes":["cssp"],"scheme_axes":{"iq":["cssp"]}}`, "duplicates"},
		{"axis component listed twice", `{"scheme_axes":{"iq":["cssp","cssp"]}}`, "twice"},
		{"param value listed twice", `{"scheme_axes":{"iq":["cspsp"],"params":{"cspsp.frac":[0.3,0.3]}}}`, "twice"},
		{"empty axis", `{"scheme_axes":{"iq":[]}}`, "empty"},
		{"empty param list", `{"scheme_axes":{"iq":["cspsp"],"params":{"cspsp.frac":[]}}}`, "empty"},
		{"param for unswept component", `{"scheme_axes":{"iq":["cssp"],"params":{"cspsp.frac":[0.3]}}}`, "not in the iq axis"},
		{"param unknown component", `{"scheme_axes":{"iq":["cssp"],"params":{"nosuch.frac":[0.3]}}}`, "unknown component"},
		{"malformed param key", `{"scheme_axes":{"iq":["cspsp"],"params":{"cspspfrac":[0.3]}}}`, "component.param"},
		{"param out of range", `{"scheme_axes":{"iq":["cspsp"],"params":{"cspsp.frac":[0.9]}}}`, "out of range"},
		{"unknown axis component", `{"scheme_axes":{"iq":["nosuch"]}}`, "unknown iq policy"},
		{"unknown selector", `{"scheme_axes":{"selectors":["nosuch"]}}`, "unknown selector"},
		{"composed scheme entry ok", `{"schemes":["sel=stall,iq=cssp,rf=cdprf","cdprf"]}`, ""},
		{"axes only ok", `{"scheme_axes":{"rf":["cssprf","cisprf"],"iq":["cssp"]}}`, ""},
		{"neither schemes nor axes", `{}`, "no schemes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := campaign.Parse([]byte(tc.json))
			if tc.want == "" {
				if err != nil {
					t.Fatalf("Parse: %v, want valid", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Parse err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestComposedCampaignEndToEnd: a scheme_axes campaign runs through the
// engine, the composed items succeed, results echo the full composition,
// and an immediate re-run is answered entirely by the store.
func TestComposedCampaignEndToEnd(t *testing.T) {
	m := &campaign.Manifest{
		Name:      "composed",
		Workloads: []string{"ispec00.mix.2.1"},
		TraceLens: []int{1000},
		Schemes:   []string{"icount"},
		SchemeAxes: &campaign.SchemeAxes{
			Selectors: []string{"stall"},
			IQ:        []string{"cssp"},
			RF:        []string{"none", "cdprf"},
		},
	}
	eng := &campaign.Engine{Resume: true}
	rs, err := eng.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Failed != 0 {
		t.Fatalf("failed items: %v", rs.Err())
	}
	if rs.Total != 3 || rs.Executed != 3 {
		t.Fatalf("total=%d executed=%d, want 3/3", rs.Total, rs.Executed)
	}
	bySpec := map[string]campaign.Result{}
	for _, r := range rs.Results {
		bySpec[r.Scheme] = r
		if r.IPC <= 0 {
			t.Errorf("%s: IPC %v", r.Label, r.IPC)
		}
	}
	want := map[string]string{
		"icount":                     "sel=icount,iq=unrestricted,rf=none",
		"sel=stall,iq=cssp,rf=none":  "sel=stall,iq=cssp,rf=none",
		"sel=stall,iq=cssp,rf=cdprf": "sel=stall,iq=cssp,rf=cdprf",
	}
	for scheme, echo := range want {
		r, ok := bySpec[scheme]
		if !ok {
			t.Fatalf("no result for %q (have %v)", scheme, rs.Results)
		}
		if r.SchemeSpec != echo {
			t.Errorf("%s: scheme_spec echo %q, want %q", scheme, r.SchemeSpec, echo)
		}
		if !strings.Contains(r.Label, scheme) {
			t.Errorf("label %q does not echo the canonical scheme", r.Label)
		}
	}

	again, err := eng.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if again.Executed != 0 || again.StoreHits != 3 {
		t.Fatalf("re-run executed=%d storeHits=%d, want 0/3", again.Executed, again.StoreHits)
	}
}
