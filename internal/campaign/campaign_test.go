package campaign_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clustersmt/internal/campaign"
	"clustersmt/internal/campaign/store"
	"clustersmt/internal/experiments"
	"clustersmt/internal/report"
)

// tinyManifest returns a minimal fast campaign: one workload, two schemes,
// two IQ points at the shortest legal trace length.
func tinyManifest() *campaign.Manifest {
	return &campaign.Manifest{
		Name:      "tiny",
		Workloads: []string{"ispec00.mix.2.1"},
		Schemes:   []string{"icount", "cssp"},
		IQSizes:   []int{16, 32},
		TraceLens: []int{1000},
	}
}

func TestManifestValidation(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string // substring of the expected error; "" = valid
	}{
		{"valid", `{"schemes":["icount"]}`, ""},
		{"unknown scheme", `{"schemes":["icount","nosuchscheme"]}`, "unknown scheme"},
		{"no schemes", `{"schemes":[]}`, "no schemes"},
		{"empty iq axis", `{"schemes":["icount"],"iq_sizes":[]}`, "axis iq_sizes is empty"},
		{"empty regs axis", `{"schemes":["icount"],"regs_per_cluster":[]}`, "axis regs_per_cluster is empty"},
		{"empty rob axis", `{"schemes":["icount"],"rob_per_thread":[]}`, "axis rob_per_thread is empty"},
		{"empty len axis", `{"schemes":["icount"],"trace_lens":[]}`, "axis trace_lens is empty"},
		{"tiny iq", `{"schemes":["icount"],"iq_sizes":[2]}`, "below minimum"},
		{"empty clusters axis", `{"schemes":["icount"],"num_clusters":[]}`, "axis num_clusters is empty"},
		{"zero clusters", `{"schemes":["icount"],"num_clusters":[0]}`, "below minimum"},
		{"five clusters", `{"schemes":["icount"],"num_clusters":[5]}`, "above maximum"},
		{"zero links", `{"schemes":["icount"],"links":[0]}`, "below minimum"},
		{"zero link latency", `{"schemes":["icount"],"link_latency":[0]}`, "below minimum"},
		{"huge mem latency", `{"schemes":["icount"],"mem_latency":[60000]}`, "above maximum"},
		{"valid shape sweep", `{"schemes":["icount"],"num_clusters":[1,2,3,4],"links":[1,2],"link_latency":[1,4],"mem_latency":[60,300]}`, ""},
		{"unknown category", `{"schemes":["icount"],"categories":["nope"]}`, "unknown category"},
		{"unknown workload", `{"schemes":["icount"],"workloads":["nope.ilp.2.9"]}`, "unknown workload"},
		{"typoed field", `{"schemes":["icount"],"iq_size":[32]}`, "unknown field"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := campaign.Parse([]byte(tc.json))
			if tc.want == "" {
				if err != nil {
					t.Fatalf("Parse: %v, want valid", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Parse error = %v, want it to mention %q", err, tc.want)
			}
		})
	}
}

// TestDryRunMatchesRun pins the -dry-run contract: the expanded item list
// is exactly what a real run executes — same count, same labels, same
// order.
func TestDryRunMatchesRun(t *testing.T) {
	m := tinyManifest()
	items, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 4 { // 1 workload x 2 schemes x 2 IQ sizes
		t.Fatalf("expanded %d items, want 4", len(items))
	}
	eng := campaign.Engine{}
	rs, err := eng.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Total != len(items) || len(rs.Results) != len(items) {
		t.Fatalf("run produced %d/%d results for %d expanded items", rs.Total, len(rs.Results), len(items))
	}
	if rs.Executed+rs.StoreHits+rs.Failed != rs.Total {
		t.Errorf("tally %d+%d+%d != total %d", rs.Executed, rs.StoreHits, rs.Failed, rs.Total)
	}
	if rs.Failed != 0 || rs.Executed != len(items) {
		t.Errorf("executed %d, failed %d; want all %d executed", rs.Executed, rs.Failed, len(items))
	}
	for i, it := range items {
		if rs.Results[i].Label != it.Label() {
			t.Fatalf("result %d label %q != expanded label %q", i, rs.Results[i].Label, it.Label())
		}
	}
}

// TestShapeAxesExpand pins the machine-shape sweep expansion: the cross
// product covers every shape, expanded items always carry explicit shape
// coordinates (Table 1 values when an axis is omitted), labels are unique,
// and — the property the result store depends on — every shape yields a
// distinct content-addressed cache key.
func TestShapeAxesExpand(t *testing.T) {
	m := &campaign.Manifest{
		Name:        "shapes",
		Workloads:   []string{"ispec00.mix.2.1"},
		Schemes:     []string{"icount"},
		TraceLens:   []int{1000},
		NumClusters: []int{1, 2, 3, 4},
		MemLatency:  []int{60, 300},
	}
	items, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 8 { // 4 cluster counts x 2 memory latencies
		t.Fatalf("expanded %d items, want 8", len(items))
	}
	r := experiments.NewRunner(1000)
	labels := map[string]bool{}
	keys := map[string]string{}
	for _, it := range items {
		if it.Spec.Links != 2 || it.Spec.LinkLatency != 1 {
			t.Errorf("%s: omitted link axes not defaulted to Table 1 (lk%d ll%d)",
				it.Label(), it.Spec.Links, it.Spec.LinkLatency)
		}
		if labels[it.Label()] {
			t.Errorf("duplicate label %s", it.Label())
		}
		labels[it.Label()] = true
		key := r.CacheKey(it.Spec)
		if prev, dup := keys[key]; dup {
			t.Errorf("shapes %s and %s share cache key %s", prev, it.Label(), key)
		}
		keys[key] = it.Label()
	}

	// Labels: non-default shapes carry the shape suffix; the Table 1 point
	// keeps the legacy format so pre-shape-axis result sets still diff
	// row-for-row.
	for _, it := range items {
		hasSuffix := strings.Contains(it.Label(), "|c")
		table1 := it.Spec.NumClusters == 2 && it.Spec.MemLatency == 60
		if table1 && hasSuffix {
			t.Errorf("Table 1 point label %q carries a shape suffix (breaks old-campaign diffs)", it.Label())
		}
		if !table1 && !hasSuffix {
			t.Errorf("swept shape label %q lacks the shape suffix", it.Label())
		}
	}

	// The Table 1 shape point must produce the same cache key as a
	// pre-shape-axis spec (all shape fields zero): old stores stay valid.
	legacy := experiments.Spec{
		Workload: items[0].Spec.Workload, Scheme: "icount",
		IQSize: 32, SingleThread: -1,
	}
	var table1 *campaign.Item
	for i := range items {
		if items[i].Spec.NumClusters == 2 && items[i].Spec.MemLatency == 60 {
			table1 = &items[i]
		}
	}
	if table1 == nil {
		t.Fatal("no Table 1 point in the expansion")
	}
	if got, want := r.CacheKey(table1.Spec), r.CacheKey(legacy); got != want {
		t.Errorf("explicit Table 1 shape key %s != legacy zero-shape key %s (old stores invalidated)", got, want)
	}
}

// TestResumeExecutesOnlyMissing simulates a killed campaign: a store
// populated by a partial run. The resumed full campaign must execute only
// the missing specs and recall the rest.
func TestResumeExecutesOnlyMissing(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	// The "partial run before the kill": same axes, but only one scheme.
	partial := tinyManifest()
	partial.Schemes = []string{"icount"}
	eng := campaign.Engine{Store: st, Resume: true}
	prs, err := eng.Run(partial)
	if err != nil {
		t.Fatal(err)
	}
	if prs.Executed != 2 || prs.Failed != 0 {
		t.Fatalf("partial run executed %d (failed %d), want 2", prs.Executed, prs.Failed)
	}

	full := tinyManifest()
	rs, err := (&campaign.Engine{Store: st, Resume: true}).Run(full)
	if err != nil {
		t.Fatal(err)
	}
	if rs.StoreHits != 2 || rs.Executed != 2 || rs.Failed != 0 {
		t.Fatalf("resume executed %d, hit %d, failed %d; want exactly the 2 missing specs executed",
			rs.Executed, rs.StoreHits, rs.Failed)
	}
	for _, r := range rs.Results {
		wantCached := r.Scheme == "icount"
		if r.Cached != wantCached {
			t.Errorf("%s: cached=%v, want %v", r.Label, r.Cached, wantCached)
		}
	}

	// Third pass: everything is a hit, nothing executes.
	rs2, err := (&campaign.Engine{Store: st, Resume: true}).Run(full)
	if err != nil {
		t.Fatal(err)
	}
	if rs2.Executed != 0 || rs2.StoreHits != 4 {
		t.Errorf("re-run executed %d, hit %d; want 0 executed, 4 hits", rs2.Executed, rs2.StoreHits)
	}

	// Resume=false ignores the store and re-executes everything.
	rs3, err := (&campaign.Engine{Store: st, Resume: false}).Run(full)
	if err != nil {
		t.Fatal(err)
	}
	if rs3.Executed != 4 || rs3.StoreHits != 0 {
		t.Errorf("resume=false executed %d, hit %d; want all 4 re-executed", rs3.Executed, rs3.StoreHits)
	}
}

// TestStoreResultsMatchFreshRun asserts recalled results are numerically
// identical to freshly computed ones — the property that makes the store
// safe to trust for figures.
func TestStoreResultsMatchFreshRun(t *testing.T) {
	m := tinyManifest()
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := (&campaign.Engine{Store: st, Resume: true}).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	recalled, err := (&campaign.Engine{Store: st, Resume: true}).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fresh.Results {
		a, b := fresh.Results[i], recalled.Results[i]
		if !b.Cached {
			t.Errorf("%s: second run not recalled", b.Label)
		}
		if a.IPC != b.IPC || a.CopiesPerRet != b.CopiesPerRet || a.IQStallsRet != b.IQStallsRet {
			t.Errorf("%s: recalled metrics differ: %+v vs %+v", a.Label, a, b)
		}
	}
}

// TestRepetitionsDiverge: repetitions must reseed (distinct results and
// distinct store keys), not clone rep 0.
func TestRepetitionsDiverge(t *testing.T) {
	m := tinyManifest()
	m.Schemes = []string{"icount"}
	m.IQSizes = []int{32}
	m.Repetitions = 2
	rs, err := (&campaign.Engine{}).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Results) != 2 {
		t.Fatalf("got %d results, want 2 reps", len(rs.Results))
	}
	a, b := rs.Results[0], rs.Results[1]
	if a.Key == b.Key {
		t.Error("repetitions share a store key")
	}
	if a.IPC == b.IPC {
		t.Error("repetitions produced identical IPC: seed offset not applied")
	}
}

// TestBaselinesEnableFairness: with single-thread baselines on, SMT rows
// carry the §4 fairness metric.
func TestBaselinesEnableFairness(t *testing.T) {
	m := tinyManifest()
	m.Schemes = []string{"icount"}
	m.IQSizes = []int{32}
	m.SingleThreadBaselines = true
	rs, err := (&campaign.Engine{}).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Results) != 3 { // 2 baselines + 1 SMT run
		t.Fatalf("got %d results, want 3", len(rs.Results))
	}
	var smt *campaign.Result
	for i := range rs.Results {
		if rs.Results[i].SingleThread < 0 {
			smt = &rs.Results[i]
		}
	}
	if smt == nil {
		t.Fatal("no SMT result")
	}
	if smt.Fairness <= 0 || smt.Fairness > 1 {
		t.Errorf("fairness = %v, want in (0, 1]", smt.Fairness)
	}
}

// TestResultSetJSONRoundTrip: the emitted artifact must parse back for the
// diff subcommand.
func TestResultSetJSONRoundTrip(t *testing.T) {
	m := tinyManifest()
	m.Schemes = []string{"icount"}
	m.IQSizes = []int{32}
	rs, err := (&campaign.Engine{}).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "rs.json")
	b, err := report.JSON(rs)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	parsed, ok := campaign.ParseResultSet(back)
	if !ok {
		t.Fatal("emitted result set did not parse back")
	}
	rep := campaign.Diff(rs, parsed)
	if bad := rep.Exceeds(0); len(bad) != 0 {
		t.Errorf("self-diff found %d moved specs: %v", len(bad), bad)
	}
}
