package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"clustersmt/internal/campaign"
	"clustersmt/internal/experiments"
)

// faultManifest is the fault-injection campaign: one dh workload × three
// schemes at a short trace length — small enough to finish fast, large
// enough that killing a worker mid-campaign leaves work for the survivors.
func faultManifest(t *testing.T) *campaign.Manifest {
	t.Helper()
	m, err := campaign.Parse([]byte(`{
		"name": "fault",
		"categories": ["dh"],
		"max_per_category": 1,
		"schemes": ["icount", "cisp", "cssp"],
		"trace_lens": [2000]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// fastFleet returns a coordinator tuned for test time scales: 300ms
// leases, 20ms failure-detector ticks, near-immediate retry.
func fastFleet(t *testing.T, st experiments.ResultStore) (*Coordinator, *httptest.Server) {
	t.Helper()
	return startCoordinator(t, Config{
		Store:        st,
		LeaseTTL:     300 * time.Millisecond,
		PollInterval: 20 * time.Millisecond,
		RetryBase:    10 * time.Millisecond,
		RetryCap:     50 * time.Millisecond,
		MaxAttempts:  4,
	})
}

// startWorker runs w.Run in a goroutine; the cleanup cancels it and waits.
func startWorker(t *testing.T, w *Worker) context.CancelFunc {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(ctx)
	}()
	t.Cleanup(func() { cancel(); <-done })
	return cancel
}

// runFleet drives a campaign through the coordinator and collects the
// result set, failing the test if it does not finish in time.
func runFleet(t *testing.T, c *Coordinator, m *campaign.Manifest) *campaign.ResultSet {
	t.Helper()
	type res struct {
		rs  *campaign.ResultSet
		err error
	}
	ch := make(chan res, 1)
	go func() {
		rs, err := c.RunCtx(context.Background(), m, nil)
		ch <- res{rs, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatalf("fleet RunCtx: %v", r.err)
		}
		return r.rs
	case <-time.After(2 * time.Minute):
		t.Fatalf("fleet campaign did not finish; status %+v", c.Status())
		return nil
	}
}

// TestFaultInjection is the fleet's end-to-end failure drill: a campaign
// runs on a fleet whose first worker dies mid-item — its context is
// cancelled after it leases a task, so it reports nothing, exactly like a
// kill -9 between lease and completion. The coordinator must detect the
// loss, requeue the item, and the surviving workers must finish the
// campaign with results bit-for-bit identical to a single-process Engine
// run of the same manifest. A fresh worker resubmitting the campaign then
// proves the shared store: zero simulations execute the second time.
func TestFaultInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-worker integration test")
	}
	m := faultManifest(t)
	shared := experiments.NewMemStore()
	coord, srv := fastFleet(t, shared)

	// The victim: single-item batches, and a test seam that cancels its own
	// run context the moment it picks up its first task — after the lease
	// was granted, before any completion could be reported.
	victim, err := NewWorker(WorkerConfig{Coordinator: srv.URL, Name: "victim", Parallel: 1, BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	victimCtx, victimCancel := context.WithCancel(context.Background())
	var (
		once       sync.Once
		victimDied = make(chan struct{})
	)
	victim.testOnTaskStart = func(Task) {
		once.Do(func() {
			victimCancel()
			close(victimDied)
		})
	}
	victimDone := make(chan struct{})
	go func() {
		defer close(victimDone)
		victim.Run(victimCtx)
	}()
	t.Cleanup(func() { victimCancel(); <-victimDone })

	// Survivors join only after the victim is dead, so the killed item can
	// only finish via requeue.
	go func() {
		<-victimDied
		for i := 0; i < 2; i++ {
			w, err := NewWorker(WorkerConfig{Coordinator: srv.URL, Name: fmt.Sprintf("survivor%d", i), Parallel: 2})
			if err != nil {
				t.Error(err)
				return
			}
			startWorker(t, w)
		}
	}()

	rs := runFleet(t, coord, m)

	select {
	case <-victimDied:
	default:
		t.Fatal("victim never leased a task; the fault was not injected")
	}
	if rs.Failed != 0 {
		t.Fatalf("campaign failed %d items: %+v", rs.Failed, rs.Results)
	}
	st := coord.Status().Queue
	if st.Expirations == 0 {
		t.Fatalf("victim's lease was never reclaimed: %+v", st)
	}
	if st.Requeues == 0 {
		t.Fatalf("killed item never requeued: %+v", st)
	}

	// Bit-for-bit comparison against the single-process engine on the same
	// manifest. Both runs start from empty stores, so every row should be a
	// fresh execution with identical keys and metrics.
	eng := &campaign.Engine{Store: experiments.NewMemStore(), Resume: true}
	want, err := eng.RunCtx(context.Background(), m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Results) != len(want.Results) {
		t.Fatalf("fleet produced %d rows, engine %d", len(rs.Results), len(want.Results))
	}
	for i := range want.Results {
		if !reflect.DeepEqual(rs.Results[i], want.Results[i]) {
			t.Errorf("row %d diverges:\nfleet:  %+v\nengine: %+v", i, rs.Results[i], want.Results[i])
		}
	}
	if rs.Executed != want.Executed || rs.StoreHits != want.StoreHits {
		t.Fatalf("tally diverges: fleet executed=%d hits=%d, engine executed=%d hits=%d",
			rs.Executed, rs.StoreHits, want.Executed, want.StoreHits)
	}

	// Resubmit through a fresh worker with no memory of the first run: every
	// item must come back as a store hit — zero simulations.
	fresh, err := NewWorker(WorkerConfig{Coordinator: srv.URL, Name: "fresh"})
	if err != nil {
		t.Fatal(err)
	}
	startWorker(t, fresh)
	rs2 := runFleet(t, coord, m)
	if rs2.Executed != 0 {
		t.Fatalf("resubmission executed %d simulations, want 0 (store dedup broken)", rs2.Executed)
	}
	if rs2.StoreHits != rs2.Total || rs2.Failed != 0 {
		t.Fatalf("resubmission tally: %d hits / %d failed of %d", rs2.StoreHits, rs2.Failed, rs2.Total)
	}
	for i := range want.Results {
		if rs2.Results[i].Key != want.Results[i].Key || rs2.Results[i].IPC != want.Results[i].IPC {
			t.Errorf("resubmitted row %d diverges from engine run", i)
		}
	}
}

// TestPoisonedItemsFailCampaign drives a campaign through a worker whose
// every execution fails: each item must exhaust its attempt cap, poison,
// and surface as a failed result — the campaign finishes instead of
// wedging on a broken spec.
func TestPoisonedItemsFailCampaign(t *testing.T) {
	m, err := campaign.Parse([]byte(`{
		"name": "poison",
		"categories": ["dh"],
		"max_per_category": 1,
		"schemes": ["icount"],
		"trace_lens": [1000]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	coord, srv := startCoordinator(t, Config{
		LeaseTTL:     time.Second,
		PollInterval: 10 * time.Millisecond,
		RetryBase:    time.Millisecond,
		RetryCap:     5 * time.Millisecond,
		MaxAttempts:  2,
	})
	w, err := NewWorker(WorkerConfig{Coordinator: srv.URL, Name: "broken", Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	w.testExecuteErr = func(task Task) error {
		return errors.New("simulated hardware fault")
	}
	startWorker(t, w)

	rs := runFleet(t, coord, m)
	if rs.Failed != rs.Total || rs.Total == 0 {
		t.Fatalf("failed %d of %d items, want all", rs.Failed, rs.Total)
	}
	for _, r := range rs.Results {
		if !strings.Contains(r.Error, "poisoned") || !strings.Contains(r.Error, "simulated hardware fault") {
			t.Errorf("item %s error = %q, want poison diagnosis with last failure", r.Label, r.Error)
		}
	}
	if st := coord.Status().Queue; st.Poisoned != rs.Total {
		t.Fatalf("queue shows %d poisoned, want %d", st.Poisoned, rs.Total)
	}
}
