package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"clustersmt/internal/campaign/store"
	"clustersmt/internal/experiments"
	"clustersmt/internal/metrics"
)

func startCoordinator(t *testing.T, cfg Config) (*Coordinator, *httptest.Server) {
	t.Helper()
	c := NewCoordinator(cfg)
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	return c, srv
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestWorkerLifecycleOverHTTP(t *testing.T) {
	c, srv := startCoordinator(t, Config{LeaseTTL: time.Minute})

	var reg RegisterResponse
	if code := postJSON(t, srv.URL+"/v1/workers", RegisterRequest{Name: "box1"}, &reg); code != http.StatusOK {
		t.Fatalf("register status = %d", code)
	}
	if reg.ID == "" || reg.LeaseTTLMs != time.Minute.Milliseconds() || reg.HeartbeatMs <= 0 || reg.PollMs <= 0 {
		t.Fatalf("register response = %+v", reg)
	}

	if code := postJSON(t, srv.URL+"/v1/workers/"+reg.ID+"/heartbeat", nil, nil); code != http.StatusNoContent {
		t.Fatalf("heartbeat status = %d, want 204", code)
	}
	if code := postJSON(t, srv.URL+"/v1/workers/w999999/heartbeat", nil, nil); code != http.StatusNotFound {
		t.Fatalf("unknown-worker heartbeat status = %d, want 404", code)
	}

	// Empty queue: an OK lease with zero tasks and a poll hint.
	var lease LeaseResponse
	if code := postJSON(t, srv.URL+"/v1/workers/"+reg.ID+"/lease", LeaseRequest{Max: 4}, &lease); code != http.StatusOK {
		t.Fatalf("lease status = %d", code)
	}
	if len(lease.Tasks) != 0 || lease.PollMs <= 0 {
		t.Fatalf("lease response = %+v", lease)
	}
	if code := postJSON(t, srv.URL+"/v1/workers/w999999/lease", LeaseRequest{Max: 1}, nil); code != http.StatusNotFound {
		t.Fatalf("unknown-worker lease status = %d, want 404", code)
	}

	// With work queued, the lease returns it and a completion lands.
	c.queue.Add(Task{ID: "job/0", TraceLen: 1000}, nil, nil)
	if code := postJSON(t, srv.URL+"/v1/workers/"+reg.ID+"/lease", LeaseRequest{Max: 4}, &lease); code != http.StatusOK {
		t.Fatalf("lease status = %d", code)
	}
	if len(lease.Tasks) != 1 || lease.Tasks[0].ID != "job/0" || lease.Tasks[0].Attempt != 1 {
		t.Fatalf("lease tasks = %+v", lease.Tasks)
	}
	var comp CompleteResponse
	body := Completion{ID: "job/0", Attempt: 1, Executed: true, Stats: &metrics.Stats{Cycles: 7}}
	if code := postJSON(t, srv.URL+"/v1/workers/"+reg.ID+"/complete", body, &comp); code != http.StatusOK || !comp.Accepted {
		t.Fatalf("complete = status %d, %+v", code, comp)
	}
	// The same report again is a duplicate: HTTP 200, accepted=false.
	if code := postJSON(t, srv.URL+"/v1/workers/"+reg.ID+"/complete", body, &comp); code != http.StatusOK || comp.Accepted {
		t.Fatalf("duplicate complete = status %d, %+v (want accepted=false)", code, comp)
	}

	var status Status
	resp, err := http.Get(srv.URL + "/v1/workers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if len(status.Workers) != 1 || status.Queue.Done != 1 || status.Queue.Duplicates != 1 {
		t.Fatalf("status = %+v", status)
	}
}

func TestStoreRoutes(t *testing.T) {
	dir := t.TempDir()
	disk, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, srv := startCoordinator(t, Config{Store: disk})

	key := strings.Repeat("ab", 32)
	st := &metrics.Stats{Cycles: 12345, Committed: []uint64{10, 20}, IQStalls: 7}

	// Round trip through the coordinator.
	remote, err := store.NewRemote(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := remote.Put(key, st); err != nil {
		t.Fatal(err)
	}
	got, ok, err := remote.Get(key)
	if err != nil || !ok {
		t.Fatalf("remote get = (%v, %v)", ok, err)
	}
	if got.Cycles != st.Cycles || got.IQStalls != st.IQStalls {
		t.Fatalf("round trip mangled stats: %+v", got)
	}
	// The entry landed in the coordinator's disk store, identical to a
	// local Put.
	if onDisk, ok, _ := disk.Get(key); !ok || onDisk.Cycles != st.Cycles {
		t.Fatal("entry did not reach the coordinator's disk store")
	}

	// Missing key: 404.
	missing := strings.Repeat("cd", 32)
	if _, ok, err := remote.Get(missing); ok || err != nil {
		t.Fatalf("missing key = (%v, %v), want plain miss", ok, err)
	}

	// Bad key: 400.
	resp, err := http.Get(srv.URL + "/v1/store/not-a-key")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad-key get status = %d, want 400", resp.StatusCode)
	}
}

func TestStorePutTamperedChecksumRejected(t *testing.T) {
	dir := t.TempDir()
	disk, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, srv := startCoordinator(t, Config{Store: disk})

	key := strings.Repeat("ef", 32)
	entry, err := store.EncodeEntry(key, &metrics.Stats{Cycles: 999})
	if err != nil {
		t.Fatal(err)
	}
	// Flip the stats content without recomputing the checksum.
	tampered := bytes.Replace(entry, []byte(`"Cycles":999`), []byte(`"Cycles":998`), 1)
	if bytes.Equal(tampered, entry) {
		t.Fatal("tamper had no effect; test is broken")
	}

	req, err := http.NewRequest(http.MethodPut, srv.URL+"/v1/store/"+key, bytes.NewReader(tampered))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("tampered put status = %d, want 422", resp.StatusCode)
	}
	// Nothing was cached: the shared store stays empty and a GET misses.
	if n, _ := disk.Len(); n != 0 {
		t.Fatalf("tampered entry reached the store (%d entries)", n)
	}
	remote, _ := store.NewRemote(srv.URL, nil)
	if _, ok, _ := remote.Get(key); ok {
		t.Fatal("tampered entry served back")
	}
}

func TestCorruptCoordinatorEntryIsARemoteMiss(t *testing.T) {
	// A coordinator whose stored entry fails validation must answer 404 —
	// workers then re-simulate and overwrite, same as a corrupt disk entry
	// in single-process mode.
	key := strings.Repeat("12", 32)
	bad := experiments.NewMemStore()
	bad.Put(key, &metrics.Stats{Cycles: 1})
	c := NewCoordinator(Config{Store: corrupting{bad}})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	remote, _ := store.NewRemote(srv.URL, nil)
	mem := experiments.NewMemStore()
	layered := experiments.Layered(mem, remote)
	if _, ok, err := layered.Get(key); ok {
		t.Fatalf("corrupt coordinator entry served as data (err=%v)", err)
	}
	if mem.Len() != 0 {
		t.Fatal("corrupt remote entry backfilled the local cache")
	}
}

// corrupting wraps a store so every Get errors — the shape a failing disk
// or checksum mismatch produces on the coordinator.
type corrupting struct{ inner experiments.ResultStore }

func (c corrupting) Get(key string) (*metrics.Stats, bool, error) {
	if _, ok, _ := c.inner.Get(key); ok {
		return nil, false, fmt.Errorf("store: entry %s failed its checksum", key)
	}
	return nil, false, nil
}

func (c corrupting) Put(key string, st *metrics.Stats) error { return c.inner.Put(key, st) }
