// Package fleet scales the campaign service across processes: a
// coordinator owning the work queue, the worker registry and the shared
// result store, and pull-based workers that lease item batches over HTTP,
// simulate them locally and report completions. Placement stays in
// campaign.Plan — the coordinator is just the distributed execution
// strategy over the same plan the in-process Engine runs, which is what
// makes a fleet run of a manifest bit-for-bit identical to a local one.
//
// The failure model is lease-based: a worker that stops heartbeating (or
// never reports a leased item) loses its leases, and the items requeue
// with capped exponential backoff. Items that keep failing reach a
// terminal poison state after a bounded number of attempts, so one broken
// spec cannot wedge a campaign. Completions are idempotent, keyed by
// (item ID, attempt): duplicate or stale reports — a worker presumed dead
// that finishes anyway — are no-ops.
package fleet

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"clustersmt/internal/experiments"
	"clustersmt/internal/metrics"
)

// Task is one leased work unit as handed to a worker: the simulation spec
// plus the lease's attempt number, which must be echoed in the completion
// (stale attempts are rejected).
type Task struct {
	ID       string           `json:"id"`
	Attempt  int              `json:"attempt"`
	TraceLen int              `json:"trace_len"`
	Spec     experiments.Spec `json:"spec"`
}

// Completion is a worker's report for one leased task. Executed
// distinguishes a fresh simulation from a store hit on the worker, feeding
// the campaign's executed/store-hit tally. Error marks a failed attempt:
// the item requeues (with backoff) until the attempt cap poisons it.
type Completion struct {
	ID       string         `json:"id"`
	Attempt  int            `json:"attempt"`
	Key      string         `json:"key,omitempty"`
	Executed bool           `json:"executed"`
	Error    string         `json:"error,omitempty"`
	Stats    *metrics.Stats `json:"stats,omitempty"`
}

// Outcome is a task's terminal result, delivered exactly once to the
// OnDone callback registered at Add: either Stats from the accepted
// completion, or Err for a poisoned task.
type Outcome struct {
	ID       string
	Attempt  int
	Executed bool
	Stats    *metrics.Stats
	Err      error
}

// qstate is a queued task's lifecycle phase.
type qstate int

const (
	statePending qstate = iota // waiting to be leased (possibly backing off)
	stateLeased                // held by a worker under a live lease
	stateDone                  // completion accepted; terminal
	statePoison                // attempt cap exhausted; terminal
)

// qtask is the queue's record of one task.
type qtask struct {
	task      Task // Attempt field tracks the latest lease
	seq       uint64
	state     qstate
	attempt   int       // lease grants so far
	worker    string    // current lease holder (stateLeased)
	expires   time.Time // lease deadline (stateLeased)
	notBefore time.Time // backoff gate (statePending)
	lastErr   string    // most recent attempt failure
	onLease   func(Task)
	onDone    func(Outcome)
}

// QueueStats is a point-in-time tally of the queue, plus monotonic event
// counters.
type QueueStats struct {
	Pending  int `json:"pending"`
	Leased   int `json:"leased"`
	Done     int `json:"done"`
	Poisoned int `json:"poisoned"`
	// Requeues counts every return to pending: failed attempts, expired
	// leases and lost workers.
	Requeues int64 `json:"requeues"`
	// Expirations counts leases reclaimed by timeout or worker loss.
	Expirations int64 `json:"expirations"`
	// Duplicates counts rejected completion reports (stale attempt, wrong
	// worker, unknown or already-terminal task).
	Duplicates int64 `json:"duplicates"`
	// Completions counts accepted successful completions.
	Completions int64 `json:"completions"`
}

// Queue is the coordinator's dispatch queue: pending tasks are leased to
// workers in batches with rendezvous-hash affinity (so one item tends to
// revisit one worker's warm trace memos) and work-stealing (an idle worker
// drains the oldest pending work regardless of affinity). It is safe for
// concurrent use; OnLease/OnDone callbacks fire outside the queue's lock.
type Queue struct {
	maxAttempts int
	retryBase   time.Duration
	retryCap    time.Duration
	clock       func() time.Time

	mu                                             sync.Mutex
	seq                                            uint64
	tasks                                          map[string]*qtask
	requeues, expirations, duplicates, completions int64
}

// NewQueue returns an empty queue. maxAttempts bounds lease grants per
// task before it poisons (min 1); retryBase/retryCap shape the exponential
// backoff between attempts; clock is the time source (nil = time.Now).
func NewQueue(maxAttempts int, retryBase, retryCap time.Duration, clock func() time.Time) *Queue {
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	if retryBase <= 0 {
		retryBase = 250 * time.Millisecond
	}
	if retryCap < retryBase {
		retryCap = retryBase
	}
	if clock == nil {
		clock = time.Now
	}
	return &Queue{
		maxAttempts: maxAttempts,
		retryBase:   retryBase,
		retryCap:    retryCap,
		clock:       clock,
		tasks:       make(map[string]*qtask),
	}
}

// Add enqueues a task. onLease (optional) fires on every lease grant —
// including re-leases after a failure — with the granted Task; onDone
// (optional) fires exactly once when the task reaches a terminal state.
// Both fire outside the queue lock. Adding an ID that already exists is an
// error.
func (q *Queue) Add(t Task, onLease func(Task), onDone func(Outcome)) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, ok := q.tasks[t.ID]; ok {
		return fmt.Errorf("fleet: duplicate task %q", t.ID)
	}
	q.seq++
	q.tasks[t.ID] = &qtask{task: t, seq: q.seq, state: statePending, onLease: onLease, onDone: onDone}
	return nil
}

// Remove deletes tasks by ID regardless of state, without firing OnDone —
// the caller is abandoning the run (campaign cancel) and handles its own
// accounting. A completion for a removed task is a duplicate no-op.
func (q *Queue) Remove(ids []string) {
	q.mu.Lock()
	for _, id := range ids {
		delete(q.tasks, id)
	}
	q.mu.Unlock()
}

// owner returns the rendezvous-hash (highest-random-weight) owner of id
// among the live workers: each (task, worker) pair gets a stateless score
// and the max wins, so worker churn only remaps the items of the workers
// that actually changed.
func owner(id string, live []string) string {
	best, bestScore := "", uint64(0)
	for _, w := range live {
		h := fnv.New64a()
		_, _ = h.Write([]byte(id)) // fnv.Write cannot fail
		_, _ = h.Write([]byte{0})
		_, _ = h.Write([]byte(w))
		if s := h.Sum64(); best == "" || s > bestScore {
			best, bestScore = w, s
		}
	}
	return best
}

// Lease grants workerID up to max pending tasks under a ttl lease: its own
// rendezvous shard first (oldest first), then — work-stealing — the oldest
// pending tasks owned by other workers. Backoff-gated tasks are skipped
// until their notBefore passes. Each granted task's attempt number
// increments; OnLease callbacks fire after the lock is released.
func (q *Queue) Lease(workerID string, live []string, max int, ttl time.Duration) []Task {
	if max <= 0 {
		return nil
	}
	now := q.clock()
	q.mu.Lock()
	var owned, steal []*qtask
	for _, t := range q.tasks {
		if t.state != statePending || now.Before(t.notBefore) {
			continue
		}
		if owner(t.task.ID, live) == workerID {
			owned = append(owned, t)
		} else {
			steal = append(steal, t)
		}
	}
	sortBySeq(owned)
	sortBySeq(steal)
	granted := make([]*qtask, 0, max)
	for _, t := range append(owned, steal...) {
		if len(granted) == max {
			break
		}
		t.state = stateLeased
		t.worker = workerID
		t.attempt++
		t.task.Attempt = t.attempt
		t.expires = now.Add(ttl)
		granted = append(granted, t)
	}
	out := make([]Task, len(granted))
	callbacks := make([]func(Task), len(granted))
	for i, t := range granted {
		out[i] = t.task
		callbacks[i] = t.onLease
	}
	q.mu.Unlock()
	for i, cb := range callbacks {
		if cb != nil {
			cb(out[i])
		}
	}
	return out
}

// Renew extends every lease held by workerID to now+ttl (the heartbeat
// path) and returns how many it extended.
func (q *Queue) Renew(workerID string, ttl time.Duration) int {
	now := q.clock()
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, t := range q.tasks {
		if t.state == stateLeased && t.worker == workerID {
			t.expires = now.Add(ttl)
			n++
		}
	}
	return n
}

// Complete processes a worker's report for a leased task. It is accepted
// only if the task is currently leased to workerID under the same attempt
// number; anything else (stale attempt after an expiry requeued the item,
// a duplicate report, an unknown or terminal task) is counted and ignored,
// which is what makes completion idempotent. An accepted success fires
// OnDone; an accepted failure requeues with backoff or poisons at the
// attempt cap.
func (q *Queue) Complete(workerID string, c Completion) bool {
	q.mu.Lock()
	t, ok := q.tasks[c.ID]
	if !ok || t.state != stateLeased || t.worker != workerID || t.attempt != c.Attempt {
		q.duplicates++
		q.mu.Unlock()
		return false
	}
	var done func(Outcome)
	var out Outcome
	if c.Error != "" {
		t.lastErr = c.Error
		done, out = q.failLocked(t)
	} else {
		t.state = stateDone
		t.worker = ""
		q.completions++
		done = t.onDone
		out = Outcome{ID: t.task.ID, Attempt: t.attempt, Executed: c.Executed, Stats: c.Stats}
	}
	q.mu.Unlock()
	if done != nil {
		done(out)
	}
	return true
}

// failLocked moves a leased task off its failed attempt: back to pending
// behind a capped exponential backoff, or — at the attempt cap — to the
// terminal poison state. Callers hold q.mu; the returned callback (nil
// unless poisoned) must be invoked after unlock.
func (q *Queue) failLocked(t *qtask) (func(Outcome), Outcome) {
	t.worker = ""
	if t.attempt >= q.maxAttempts {
		t.state = statePoison
		err := fmt.Errorf("fleet: task %s %w after %d attempts: %s", t.task.ID, errPoisoned, t.attempt, t.lastErr)
		return t.onDone, Outcome{ID: t.task.ID, Attempt: t.attempt, Err: err}
	}
	t.state = statePending
	backoff := q.retryBase << (t.attempt - 1)
	if backoff > q.retryCap || backoff <= 0 {
		backoff = q.retryCap
	}
	t.notBefore = q.clock().Add(backoff)
	q.requeues++
	return nil, Outcome{}
}

// ExpireLeases reclaims every lease past its deadline: the items requeue
// (or poison at the attempt cap) exactly as a reported failure would, and
// any late completion for the old attempt becomes a duplicate no-op.
// It returns the number of leases reclaimed.
func (q *Queue) ExpireLeases() int {
	now := q.clock()
	return q.reclaim(func(t *qtask) bool { return now.After(t.expires) }, "lease expired")
}

// RequeueWorker reclaims every lease held by workerID immediately — the
// registry reaped it, so its leases are dead even if their ttl has time
// left. Returns the number reclaimed.
func (q *Queue) RequeueWorker(workerID string) int {
	return q.reclaim(func(t *qtask) bool { return t.worker == workerID }, "worker lost")
}

// reclaim applies the failure path to every leased task matching cond.
func (q *Queue) reclaim(cond func(*qtask) bool, reason string) int {
	q.mu.Lock()
	n := 0
	var dones []func(Outcome)
	var outs []Outcome
	for _, t := range q.tasks {
		if t.state != stateLeased || !cond(t) {
			continue
		}
		n++
		q.expirations++
		t.lastErr = reason
		if done, out := q.failLocked(t); done != nil {
			dones = append(dones, done)
			outs = append(outs, out)
		}
	}
	q.mu.Unlock()
	for i, done := range dones {
		done(outs[i])
	}
	return n
}

// leasedBy counts currently-held leases per worker ID.
func (q *Queue) leasedBy() map[string]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	m := make(map[string]int)
	for _, t := range q.tasks {
		if t.state == stateLeased {
			m[t.worker]++
		}
	}
	return m
}

// Stats snapshots the queue.
func (q *Queue) Stats() QueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	s := QueueStats{
		Requeues:    q.requeues,
		Expirations: q.expirations,
		Duplicates:  q.duplicates,
		Completions: q.completions,
	}
	for _, t := range q.tasks {
		switch t.state {
		case statePending:
			s.Pending++
		case stateLeased:
			s.Leased++
		case stateDone:
			s.Done++
		case statePoison:
			s.Poisoned++
		}
	}
	return s
}

// sortBySeq orders tasks oldest-first by enqueue sequence (insertion
// sort: lease batches are small).
func sortBySeq(ts []*qtask) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j].seq < ts[j-1].seq; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

// errPoisoned lets callers distinguish poison outcomes structurally.
var errPoisoned = errors.New("poisoned")
