package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"clustersmt/internal/campaign/store"
	"clustersmt/internal/experiments"
	"clustersmt/internal/metrics"
)

// WorkerConfig sizes a fleet worker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL ("http://host:8080").
	Coordinator string
	// Name labels the worker in the registry (hostname, usually).
	Name string
	// Parallel bounds concurrent simulations on this worker (0 = NumCPU).
	Parallel int
	// BatchSize bounds tasks per lease request (0 = 2×Parallel, so the
	// worker always has a next item ready without hoarding the queue).
	BatchSize int
	// LocalStore, when set, is a worker-local persistent layer (typically
	// *store.Store) between the in-memory cache and the coordinator's
	// remote store.
	LocalStore experiments.ResultStore
	// Client overrides the HTTP client (nil = http.DefaultClient).
	Client *http.Client
	// Verbose, when set, receives one line per worker lifecycle event.
	Verbose func(string)
}

// Worker is the fleet's data plane: it registers with a coordinator,
// heartbeats in the background, pulls task batches and simulates them on a
// local experiments.Runner whose store is layered memory → (optional
// local disk) → coordinator remote store — so a result any fleet member
// already produced is a store hit, not a re-execution.
type Worker struct {
	cfg    WorkerConfig
	client *http.Client
	remote *store.Remote

	mu        sync.Mutex
	id        string
	leaseTTL  time.Duration
	heartbeat time.Duration
	poll      time.Duration
	runners   map[int]*experiments.Runner

	// Test seams (package-internal): observe task pickup and inject
	// per-task execution failures without touching the simulation path.
	testOnTaskStart func(Task)
	testExecuteErr  func(Task) error
}

// NewWorker validates cfg and returns an unstarted worker; Run drives it.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	remote, err := store.NewRemote(cfg.Coordinator, cfg.Client)
	if err != nil {
		return nil, err
	}
	if cfg.Parallel <= 0 {
		cfg.Parallel = runtime.NumCPU()
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 2 * cfg.Parallel
	}
	client := cfg.Client
	if client == nil {
		client = http.DefaultClient
	}
	return &Worker{
		cfg:     cfg,
		client:  client,
		remote:  remote,
		runners: make(map[int]*experiments.Runner),
	}, nil
}

// ID returns the coordinator-assigned worker ID ("" before registration).
func (w *Worker) ID() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.id
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Verbose != nil {
		w.cfg.Verbose("worker: " + fmt.Sprintf(format, args...))
	}
}

// Run registers with the coordinator and processes leased tasks until ctx
// is cancelled (the only way it returns; registration retries forever).
// The returned error is ctx's.
func (w *Worker) Run(ctx context.Context) error {
	if err := w.register(ctx); err != nil {
		return err
	}
	hbCtx, hbCancel := context.WithCancel(ctx)
	defer hbCancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w.heartbeatLoop(hbCtx)
	}()
	defer wg.Wait()

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		tasks, err := w.lease(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			w.logf("lease: %v", err)
			sleepCtx(ctx, w.pollInterval())
			continue
		}
		if len(tasks) == 0 {
			sleepCtx(ctx, w.pollInterval())
			continue
		}
		w.execute(ctx, tasks)
	}
}

// register obtains a worker identity, retrying until ctx expires — a
// worker may start before its coordinator.
func (w *Worker) register(ctx context.Context) error {
	backoff := 100 * time.Millisecond
	for {
		var resp RegisterResponse
		code, err := w.postJSON(ctx, "/v1/workers", RegisterRequest{Name: w.cfg.Name}, &resp)
		if err == nil && code == http.StatusOK {
			w.mu.Lock()
			w.id = resp.ID
			w.leaseTTL = time.Duration(resp.LeaseTTLMs) * time.Millisecond
			w.heartbeat = time.Duration(resp.HeartbeatMs) * time.Millisecond
			w.poll = time.Duration(resp.PollMs) * time.Millisecond
			w.mu.Unlock()
			w.logf("registered as %s (heartbeat %s, poll %s)", resp.ID, w.heartbeat, w.poll)
			return nil
		}
		if err == nil {
			err = fmt.Errorf("register: status %d", code)
		}
		w.logf("register: %v (retrying)", err)
		if !sleepCtx(ctx, backoff) {
			return ctx.Err()
		}
		if backoff *= 2; backoff > 5*time.Second {
			backoff = 5 * time.Second
		}
	}
}

// heartbeatLoop renews the worker's registration and leases on the
// coordinator-advertised cadence. A 404 means the coordinator reaped us
// (our leases are already requeued): re-register for a fresh identity.
func (w *Worker) heartbeatLoop(ctx context.Context) {
	w.mu.Lock()
	interval := w.heartbeat
	w.mu.Unlock()
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			id := w.ID()
			code, err := w.postJSON(ctx, "/v1/workers/"+id+"/heartbeat", nil, nil)
			switch {
			case ctx.Err() != nil:
				return
			case err != nil:
				w.logf("heartbeat: %v", err)
			case code == http.StatusNotFound:
				w.logf("heartbeat: identity %s reaped; re-registering", id)
				if err := w.register(ctx); err != nil {
					w.logf("re-register: %v", err)
				}
			}
		}
	}
}

func (w *Worker) pollInterval() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.poll <= 0 {
		return 250 * time.Millisecond
	}
	return w.poll
}

// lease pulls a task batch; a 404 (reaped identity) re-registers and
// returns empty so the caller just polls again.
func (w *Worker) lease(ctx context.Context) ([]Task, error) {
	id := w.ID()
	var resp LeaseResponse
	code, err := w.postJSON(ctx, "/v1/workers/"+id+"/lease", LeaseRequest{Max: w.cfg.BatchSize}, &resp)
	if err != nil {
		return nil, err
	}
	if code == http.StatusNotFound {
		w.logf("lease: identity %s reaped; re-registering", id)
		if err := w.register(ctx); err != nil {
			return nil, err
		}
		return nil, nil
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("lease: status %d", code)
	}
	return resp.Tasks, nil
}

// runnerFor returns the worker's shared runner for trace length tl. The
// store layering is the fleet's dedup path: memory first, then the
// optional local disk store, then the coordinator over HTTP — and a
// simulation's Put writes through all of them, replicating fresh results
// fleet-wide.
func (w *Worker) runnerFor(tl int) *experiments.Runner {
	w.mu.Lock()
	defer w.mu.Unlock()
	if r, ok := w.runners[tl]; ok {
		return r
	}
	r := experiments.NewRunner(tl)
	r.Workers = w.cfg.Parallel
	layers := []experiments.ResultStore{experiments.NewMemStore()}
	if w.cfg.LocalStore != nil {
		layers = append(layers, w.cfg.LocalStore)
	}
	layers = append(layers, w.remote)
	r.Store = experiments.Layered(layers...)
	w.runners[tl] = r
	return r
}

// execute simulates a leased batch and reports completions. Tasks whose
// execution was cut off by ctx cancellation are deliberately NOT reported:
// a dying worker stays silent, the lease expires, and the coordinator
// requeues — reporting a cancellation as failure would burn an attempt on
// a healthy item.
func (w *Worker) execute(ctx context.Context, tasks []Task) {
	byLen := make(map[int][]Task)
	for _, t := range tasks {
		if w.testOnTaskStart != nil {
			w.testOnTaskStart(t)
		}
		if w.testExecuteErr != nil {
			if err := w.testExecuteErr(t); err != nil {
				w.report(ctx, Completion{ID: t.ID, Attempt: t.Attempt, Error: err.Error()})
				continue
			}
		}
		byLen[t.TraceLen] = append(byLen[t.TraceLen], t)
	}
	for tl, group := range byLen {
		r := w.runnerFor(tl)
		specs := make([]experiments.Spec, len(group))
		for i, t := range group {
			specs[i] = t.Spec
		}
		p := &experiments.Progress{
			Finished: func(i int, st *metrics.Stats, executed bool, err error) {
				t := group[i]
				if err != nil && isCtxErr(err) {
					return // dying quietly; the lease requeues the item
				}
				comp := Completion{ID: t.ID, Attempt: t.Attempt, Key: r.CacheKey(t.Spec), Executed: executed, Stats: st}
				if err != nil {
					comp.Error = err.Error()
					comp.Stats = nil
				}
				w.report(ctx, comp)
			},
		}
		// Per-item errors already landed in the completions via the
		// callback; a context cancellation is the loop condition's to see.
		_, _ = r.RunAllCtx(ctx, specs, p)
	}
}

// report posts one completion; a transport failure is logged and dropped
// (the lease expiry path re-runs the item — at the cost of an attempt,
// which is why transient coordinator outages should be shorter than
// MaxAttempts × LeaseTTL).
func (w *Worker) report(ctx context.Context, comp Completion) {
	id := w.ID()
	var resp CompleteResponse
	code, err := w.postJSON(ctx, "/v1/workers/"+id+"/complete", comp, &resp)
	switch {
	case err != nil:
		w.logf("complete %s: %v", comp.ID, err)
	case code != http.StatusOK:
		w.logf("complete %s: status %d", comp.ID, code)
	case !resp.Accepted:
		w.logf("complete %s attempt %d: rejected as stale/duplicate", comp.ID, comp.Attempt)
	}
}

// postJSON sends body (nil = empty) to the coordinator path and decodes a
// JSON response into out (ignored when out is nil or the body is empty).
// Non-2xx statuses are returned, not errors — callers branch on the code.
func (w *Worker) postJSON(ctx context.Context, path string, body, out any) (int, error) {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		rd = bytes.NewReader(b)
	}
	base := strings.TrimRight(w.cfg.Coordinator, "/")
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, rd)
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return resp.StatusCode, err
	}
	if out != nil && len(b) > 0 && resp.StatusCode < 300 {
		if err := json.Unmarshal(b, out); err != nil {
			return resp.StatusCode, fmt.Errorf("%s: decode response: %w", path, err)
		}
	}
	return resp.StatusCode, nil
}

// isCtxErr reports whether err is a context cancellation or deadline.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// sleepCtx sleeps d or until ctx expires; false means ctx expired.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
