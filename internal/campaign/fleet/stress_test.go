package fleet

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clustersmt/internal/metrics"
)

// TestQueueStress hammers one queue from 8 goroutines — six worker loops
// leasing/stealing/completing/failing/abandoning, one lease expirer, one
// whole-worker requeuer — and checks the dispatch invariants:
//
//   - no (task, attempt) pair is ever granted twice: a lease grant is
//     identified by its attempt number, so a duplicate grant would mean an
//     item leased twice concurrently;
//   - attempts never exceed the configured cap;
//   - no item is lost: every task reaches a terminal state with OnDone
//     delivered exactly once.
//
// Run it under -race (CI's fleet job does) — the interleavings are the
// test.
func TestQueueStress(t *testing.T) {
	const (
		numTasks    = 200
		numWorkers  = 6
		maxAttempts = 6
	)
	q := NewQueue(maxAttempts, time.Microsecond, 10*time.Microsecond, nil)

	var (
		mu       sync.Mutex
		grants   = make(map[string]int) // "id/attempt" -> grant count
		terminal = make(map[string]int) // id -> OnDone deliveries
		done     atomic.Int64
	)
	onLease := func(task Task) {
		mu.Lock()
		defer mu.Unlock()
		k := fmt.Sprintf("%s/%d", task.ID, task.Attempt)
		grants[k]++
		if grants[k] > 1 {
			t.Errorf("attempt %s granted %d times (item leased twice concurrently)", k, grants[k])
		}
		if task.Attempt > maxAttempts {
			t.Errorf("task %s leased at attempt %d beyond cap %d", task.ID, task.Attempt, maxAttempts)
		}
	}
	onDone := func(o Outcome) {
		mu.Lock()
		terminal[o.ID]++
		if terminal[o.ID] > 1 {
			t.Errorf("task %s reached terminal state %d times", o.ID, terminal[o.ID])
		}
		mu.Unlock()
		done.Add(1)
	}
	for i := 0; i < numTasks; i++ {
		if err := q.Add(Task{ID: fmt.Sprintf("t%03d", i)}, onLease, onDone); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Six workers: lease a small batch, then per task randomly complete,
	// fail, or abandon (the expirer requeues abandoned leases).
	for w := 0; w < numWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("w%d", w)
			live := []string{"w0", "w1", "w2", "w3", "w4", "w5"}
			rng := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				tasks := q.Lease(id, live, 4, 50*time.Microsecond)
				for _, task := range tasks {
					switch rng.Intn(4) {
					case 0: // abandon: say nothing, let the lease expire
					case 1:
						q.Complete(id, Completion{ID: task.ID, Attempt: task.Attempt, Error: "injected"})
					case 2: // duplicate/stale storm
						q.Complete(id, Completion{ID: task.ID, Attempt: task.Attempt - 1, Error: "stale"})
						q.Complete(id, Completion{ID: task.ID, Attempt: task.Attempt, Executed: true, Stats: &metrics.Stats{}})
						q.Complete(id, Completion{ID: task.ID, Attempt: task.Attempt, Executed: true, Stats: &metrics.Stats{}})
					default:
						q.Complete(id, Completion{ID: task.ID, Attempt: task.Attempt, Executed: true, Stats: &metrics.Stats{}})
					}
				}
				if rng.Intn(8) == 0 {
					q.Renew(id, 50*time.Microsecond)
				}
			}
		}(w)
	}
	// Expirer: abandoned leases requeue here.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				q.ExpireLeases()
				time.Sleep(20 * time.Microsecond)
			}
		}
	}()
	// Reaper: whole workers randomly "die", requeueing their leases early.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for {
			select {
			case <-stop:
				return
			default:
				q.RequeueWorker(fmt.Sprintf("w%d", rng.Intn(numWorkers)))
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()

	deadline := time.After(30 * time.Second)
	for done.Load() < numTasks {
		select {
		case <-deadline:
			close(stop)
			wg.Wait()
			t.Fatalf("only %d/%d tasks terminal at deadline: %+v", done.Load(), numTasks, q.Stats())
		case <-time.After(time.Millisecond):
		}
	}
	close(stop)
	wg.Wait()

	st := q.Stats()
	if st.Done+st.Poisoned != numTasks || st.Pending != 0 || st.Leased != 0 {
		t.Fatalf("final stats %+v: %d tasks unaccounted for", st, numTasks-st.Done-st.Poisoned)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(terminal) != numTasks {
		t.Fatalf("%d/%d tasks delivered an outcome", len(terminal), numTasks)
	}
}
