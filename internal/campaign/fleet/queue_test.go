package fleet

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"clustersmt/internal/metrics"
)

// fakeClock is a manually-advanced time source for lease tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// doneRecorder collects terminal outcomes and fails the test on a double
// delivery — OnDone must fire exactly once per task.
type doneRecorder struct {
	t  *testing.T
	mu sync.Mutex
	m  map[string][]Outcome
}

func newDoneRecorder(t *testing.T) *doneRecorder {
	return &doneRecorder{t: t, m: make(map[string][]Outcome)}
}

func (d *doneRecorder) onDone(o Outcome) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.m[o.ID] = append(d.m[o.ID], o)
	if len(d.m[o.ID]) > 1 {
		d.t.Errorf("OnDone fired %d times for %s", len(d.m[o.ID]), o.ID)
	}
}

func (d *doneRecorder) outcome(id string) (Outcome, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.m[id]) == 0 {
		return Outcome{}, false
	}
	return d.m[id][0], true
}

const ttl = 10 * time.Second

func newTestQueue(clk *fakeClock, maxAttempts int) *Queue {
	return NewQueue(maxAttempts, 100*time.Millisecond, time.Second, clk.now)
}

func TestExpiryRequeuesExactlyOnce(t *testing.T) {
	clk := newFakeClock()
	q := newTestQueue(clk, 5)
	rec := newDoneRecorder(t)
	if err := q.Add(Task{ID: "a"}, nil, rec.onDone); err != nil {
		t.Fatal(err)
	}

	got := q.Lease("w1", []string{"w1"}, 10, ttl)
	if len(got) != 1 || got[0].Attempt != 1 {
		t.Fatalf("lease = %+v, want 1 task at attempt 1", got)
	}

	clk.advance(ttl + time.Second)
	if n := q.ExpireLeases(); n != 1 {
		t.Fatalf("first ExpireLeases reclaimed %d leases, want 1", n)
	}
	if n := q.ExpireLeases(); n != 0 {
		t.Fatalf("second ExpireLeases reclaimed %d leases, want 0 (already requeued)", n)
	}
	st := q.Stats()
	if st.Pending != 1 || st.Requeues != 1 || st.Expirations != 1 {
		t.Fatalf("stats after expiry = %+v", st)
	}

	// The requeued item leases again with a bumped attempt (after backoff).
	clk.advance(2 * time.Second)
	got = q.Lease("w1", []string{"w1"}, 10, ttl)
	if len(got) != 1 || got[0].Attempt != 2 {
		t.Fatalf("re-lease = %+v, want attempt 2", got)
	}
}

func TestRenewalPreventsRequeue(t *testing.T) {
	clk := newFakeClock()
	q := newTestQueue(clk, 5)
	rec := newDoneRecorder(t)
	q.Add(Task{ID: "a"}, nil, rec.onDone)
	q.Lease("w1", []string{"w1"}, 1, ttl)

	// Heartbeat renewals inside the ttl keep the lease alive arbitrarily
	// long past the original deadline.
	for i := 0; i < 5; i++ {
		clk.advance(ttl / 2)
		if n := q.Renew("w1", ttl); n != 1 {
			t.Fatalf("Renew extended %d leases, want 1", n)
		}
		if n := q.ExpireLeases(); n != 0 {
			t.Fatalf("lease expired despite renewal (round %d)", i)
		}
	}
	if !q.Complete("w1", Completion{ID: "a", Attempt: 1, Stats: &metrics.Stats{Cycles: 1}}) {
		t.Fatal("completion rejected on a renewed lease")
	}
	if o, ok := rec.outcome("a"); !ok || o.Err != nil {
		t.Fatalf("outcome = %+v, %v", o, ok)
	}
}

func TestDuplicateCompletionAfterExpiryIgnored(t *testing.T) {
	clk := newFakeClock()
	q := newTestQueue(clk, 5)
	rec := newDoneRecorder(t)
	q.Add(Task{ID: "a"}, nil, rec.onDone)
	q.Lease("w1", []string{"w1", "w2"}, 1, ttl)

	// w1 goes silent; its lease expires and w2 picks the item up.
	clk.advance(ttl + time.Second)
	q.ExpireLeases()
	clk.advance(time.Second)
	got := q.Lease("w2", []string{"w2"}, 1, ttl)
	if len(got) != 1 || got[0].Attempt != 2 {
		t.Fatalf("w2 lease = %+v, want attempt 2", got)
	}

	// w1 finishes anyway and reports its stale attempt: rejected, no
	// outcome delivered. A worker-reported Executed on a stale attempt must
	// never reach the tally — this is the no-double-count guarantee behind
	// sims_executed_total.
	if q.Complete("w1", Completion{ID: "a", Attempt: 1, Executed: true, Stats: &metrics.Stats{}}) {
		t.Fatal("stale completion accepted")
	}
	if _, ok := rec.outcome("a"); ok {
		t.Fatal("stale completion delivered an outcome")
	}
	if st := q.Stats(); st.Duplicates != 1 {
		t.Fatalf("Duplicates = %d, want 1", st.Duplicates)
	}

	// w2's live attempt lands normally, exactly once.
	if !q.Complete("w2", Completion{ID: "a", Attempt: 2, Executed: true, Stats: &metrics.Stats{}}) {
		t.Fatal("live completion rejected")
	}
	if q.Complete("w2", Completion{ID: "a", Attempt: 2, Executed: true, Stats: &metrics.Stats{}}) {
		t.Fatal("repeat of an accepted completion accepted again")
	}
	if o, ok := rec.outcome("a"); !ok || o.Attempt != 2 || !o.Executed {
		t.Fatalf("outcome = %+v, %v", o, ok)
	}
}

func TestCompletionFromWrongWorkerRejected(t *testing.T) {
	clk := newFakeClock()
	q := newTestQueue(clk, 5)
	q.Add(Task{ID: "a"}, nil, nil)
	q.Lease("w1", []string{"w1"}, 1, ttl)
	if q.Complete("w2", Completion{ID: "a", Attempt: 1, Stats: &metrics.Stats{}}) {
		t.Fatal("completion from a worker that does not hold the lease was accepted")
	}
	if q.Complete("w1", Completion{ID: "nope", Attempt: 1}) {
		t.Fatal("completion for an unknown task accepted")
	}
}

func TestBackoffGatesRelease(t *testing.T) {
	clk := newFakeClock()
	q := newTestQueue(clk, 5) // base 100ms, cap 1s
	q.Add(Task{ID: "a"}, nil, nil)

	q.Lease("w1", []string{"w1"}, 1, ttl)
	q.Complete("w1", Completion{ID: "a", Attempt: 1, Error: "boom"})

	// Immediately after the failure the item is backing off.
	if got := q.Lease("w1", []string{"w1"}, 1, ttl); len(got) != 0 {
		t.Fatalf("leased %d tasks during backoff, want 0", len(got))
	}
	clk.advance(150 * time.Millisecond) // past base<<0
	if got := q.Lease("w1", []string{"w1"}, 1, ttl); len(got) != 1 {
		t.Fatal("item not leasable after backoff elapsed")
	}

	// Second failure doubles the backoff window.
	q.Complete("w1", Completion{ID: "a", Attempt: 2, Error: "boom"})
	clk.advance(150 * time.Millisecond)
	if got := q.Lease("w1", []string{"w1"}, 1, ttl); len(got) != 0 {
		t.Fatal("second backoff did not grow")
	}
	clk.advance(100 * time.Millisecond) // total 250ms > base<<1
	if got := q.Lease("w1", []string{"w1"}, 1, ttl); len(got) != 1 {
		t.Fatal("item not leasable after doubled backoff")
	}
}

func TestPoisonAfterAttemptCap(t *testing.T) {
	clk := newFakeClock()
	q := newTestQueue(clk, 2)
	rec := newDoneRecorder(t)
	q.Add(Task{ID: "a"}, nil, rec.onDone)

	for attempt := 1; attempt <= 2; attempt++ {
		clk.advance(2 * time.Second) // clears any backoff
		got := q.Lease("w1", []string{"w1"}, 1, ttl)
		if len(got) != 1 {
			t.Fatalf("attempt %d not leased", attempt)
		}
		q.Complete("w1", Completion{ID: "a", Attempt: attempt, Error: "bad spec"})
	}

	o, ok := rec.outcome("a")
	if !ok {
		t.Fatal("poisoned task delivered no outcome")
	}
	if !errors.Is(o.Err, errPoisoned) {
		t.Fatalf("outcome error = %v, want errPoisoned", o.Err)
	}
	if !strings.Contains(o.Err.Error(), "bad spec") {
		t.Fatalf("poison error %q does not carry the last failure", o.Err)
	}
	st := q.Stats()
	if st.Poisoned != 1 || st.Pending != 0 {
		t.Fatalf("stats = %+v, want 1 poisoned", st)
	}
	// Terminal: never leased again.
	clk.advance(time.Hour)
	if got := q.Lease("w1", []string{"w1"}, 1, ttl); len(got) != 0 {
		t.Fatal("poisoned task leased again")
	}
}

func TestRequeueWorkerReclaimsImmediately(t *testing.T) {
	clk := newFakeClock()
	q := newTestQueue(clk, 5)
	q.Add(Task{ID: "a"}, nil, nil)
	q.Add(Task{ID: "b"}, nil, nil)
	q.Lease("w1", []string{"w1"}, 2, ttl)

	// The registry reaped w1: its leases die now, not at ttl.
	if n := q.RequeueWorker("w1"); n != 2 {
		t.Fatalf("RequeueWorker reclaimed %d, want 2", n)
	}
	if st := q.Stats(); st.Pending != 2 || st.Leased != 0 {
		t.Fatalf("stats = %+v, want both pending", st)
	}
	if q.Complete("w1", Completion{ID: "a", Attempt: 1, Stats: &metrics.Stats{}}) {
		t.Fatal("completion accepted after the worker was requeued")
	}
}

func TestAffinityAndStealing(t *testing.T) {
	clk := newFakeClock()
	q := newTestQueue(clk, 5)
	live := []string{"w1", "w2"}
	var w1Owned []string
	for _, id := range []string{"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"} {
		q.Add(Task{ID: id}, nil, nil)
		if owner(id, live) == "w1" {
			w1Owned = append(w1Owned, id)
		}
	}
	if len(w1Owned) == 0 || len(w1Owned) == 8 {
		t.Fatalf("degenerate rendezvous split: w1 owns %d of 8", len(w1Owned))
	}

	// Affinity: a lease capped at w1's shard size returns exactly its shard.
	got := q.Lease("w1", live, len(w1Owned), ttl)
	gotIDs := make(map[string]bool)
	for _, task := range got {
		gotIDs[task.ID] = true
	}
	for _, id := range w1Owned {
		if !gotIDs[id] {
			t.Fatalf("w1's lease %v skipped its own shard item %s", gotIDs, id)
		}
	}

	// Stealing: w1 asks again and drains w2's untouched shard.
	rest := q.Lease("w1", live, 8, ttl)
	if len(got)+len(rest) != 8 {
		t.Fatalf("w1 leased %d+%d items, want all 8", len(got), len(rest))
	}
}

func TestRemoveSilencesCompletions(t *testing.T) {
	clk := newFakeClock()
	q := newTestQueue(clk, 5)
	rec := newDoneRecorder(t)
	q.Add(Task{ID: "a"}, nil, rec.onDone)
	q.Lease("w1", []string{"w1"}, 1, ttl)

	q.Remove([]string{"a"})
	if q.Complete("w1", Completion{ID: "a", Attempt: 1, Stats: &metrics.Stats{}}) {
		t.Fatal("completion for a removed task accepted")
	}
	if _, ok := rec.outcome("a"); ok {
		t.Fatal("removed task delivered an outcome")
	}
}
