package fleet

import (
	"fmt"
	"sync"
	"time"
)

// WorkerInfo is the coordinator's view of one registered worker, served by
// GET /v1/workers.
type WorkerInfo struct {
	ID         string    `json:"id"`
	Name       string    `json:"name"`
	Registered time.Time `json:"registered"`
	LastSeen   time.Time `json:"last_seen"`
	// Leased counts the worker's currently-held leases (filled by the
	// coordinator from the queue when listing).
	Leased int `json:"leased,omitempty"`
}

// registry tracks live workers by heartbeat. A worker that misses its ttl
// is reaped: removed from the live set so the queue stops sharding to it,
// with its leases requeued by the coordinator.
type registry struct {
	ttl   time.Duration
	clock func() time.Time

	mu      sync.Mutex
	seq     int
	workers map[string]*WorkerInfo
}

func newRegistry(ttl time.Duration, clock func() time.Time) *registry {
	if clock == nil {
		clock = time.Now
	}
	return &registry{ttl: ttl, clock: clock, workers: make(map[string]*WorkerInfo)}
}

// register admits a worker and returns its assigned ID. IDs are sequential
// ("w000001", ...): a worker that re-registers after being reaped gets a
// fresh identity, so completions from its previous life stay rejectable.
func (r *registry) register(name string) *WorkerInfo {
	now := r.clock()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	w := &WorkerInfo{
		ID:         fmt.Sprintf("w%06d", r.seq),
		Name:       name,
		Registered: now,
		LastSeen:   now,
	}
	r.workers[w.ID] = w
	return w
}

// heartbeat refreshes a worker's liveness; false means the ID is unknown
// (reaped or never registered) and the worker must re-register.
func (r *registry) heartbeat(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[id]
	if !ok {
		return false
	}
	w.LastSeen = r.clock()
	return true
}

// known reports whether id is currently registered.
func (r *registry) known(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.workers[id]
	return ok
}

// live returns the registered worker IDs (the rendezvous-hash population).
func (r *registry) live() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.workers))
	for id := range r.workers {
		out = append(out, id)
	}
	return out
}

// list snapshots every registered worker.
func (r *registry) list() []WorkerInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]WorkerInfo, 0, len(r.workers))
	for _, w := range r.workers {
		out = append(out, *w)
	}
	return out
}

// reap removes workers whose last heartbeat is older than the ttl and
// returns their IDs so the caller can requeue their leases.
func (r *registry) reap() []string {
	cutoff := r.clock().Add(-r.ttl)
	r.mu.Lock()
	defer r.mu.Unlock()
	var dead []string
	for id, w := range r.workers {
		if w.LastSeen.Before(cutoff) {
			dead = append(dead, id)
			delete(r.workers, id)
		}
	}
	return dead
}
