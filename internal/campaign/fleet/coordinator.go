package fleet

import (
	"context"
	"fmt"
	"sync"
	"time"

	"clustersmt/internal/campaign"
	"clustersmt/internal/core"
	"clustersmt/internal/experiments"
)

// Config sizes a Coordinator. The zero value is usable: in-memory store,
// 10s leases, 4 attempts per item.
type Config struct {
	// Store is the fleet-shared result layer (typically *store.Store),
	// served to workers over GET/PUT /v1/store/{key}. Nil selects a private
	// in-memory store — the fleet still dedups, but results die with the
	// coordinator.
	Store experiments.ResultStore
	// LeaseTTL is how long a leased item stays assigned without a heartbeat
	// before it requeues; it is also the worker-liveness ttl (0 = 10s).
	LeaseTTL time.Duration
	// MaxAttempts bounds lease grants per item before it poisons (0 = 4).
	MaxAttempts int
	// RetryBase/RetryCap shape the exponential backoff between an item's
	// attempts (0 = 250ms base, 10s cap).
	RetryBase time.Duration
	RetryCap  time.Duration
	// PollInterval is the idle-worker poll cadence advertised to workers
	// and the coordinator's own reap cadence during a run (0 = 250ms).
	PollInterval time.Duration
	// Clock overrides the time source (tests; nil = time.Now).
	Clock func() time.Time
	// Verbose, when set, receives one line per fleet lifecycle event.
	Verbose func(string)
}

// Coordinator is the fleet's control plane: the worker registry, the
// dispatch queue and the shared result store, exposed over HTTP (see
// Register). Campaigns run through RunCtx, which is signature-compatible
// with campaign.Engine.RunCtx — the service swaps one for the other in
// fleet mode. A single Coordinator serves concurrent campaigns; their
// items interleave in one queue.
type Coordinator struct {
	cfg   Config
	store experiments.ResultStore
	queue *Queue
	reg   *registry
	clock func() time.Time

	mu     sync.Mutex
	runSeq int
	keyers map[int]*experiments.Runner
}

// NewCoordinator returns a coordinator with cfg's defaults applied.
func NewCoordinator(cfg Config) *Coordinator {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 10 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 250 * time.Millisecond
	}
	if cfg.RetryCap <= 0 {
		cfg.RetryCap = 10 * time.Second
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 250 * time.Millisecond
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	st := cfg.Store
	if st == nil {
		st = experiments.NewMemStore()
	}
	return &Coordinator{
		cfg:    cfg,
		store:  st,
		queue:  NewQueue(cfg.MaxAttempts, cfg.RetryBase, cfg.RetryCap, clock),
		reg:    newRegistry(cfg.LeaseTTL, clock),
		clock:  clock,
		keyers: make(map[int]*experiments.Runner),
	}
}

// Store returns the coordinator's shared result store.
func (c *Coordinator) Store() experiments.ResultStore { return c.store }

// Status is the fleet's observable state, served by GET /v1/workers.
type Status struct {
	Workers []WorkerInfo `json:"workers"`
	Queue   QueueStats   `json:"queue"`
}

// Status snapshots the registry and queue.
func (c *Coordinator) Status() Status {
	leased := c.queue.leasedBy()
	ws := c.reg.list()
	for i := range ws {
		ws[i].Leased = leased[ws[i].ID]
	}
	return Status{Workers: ws, Queue: c.queue.Stats()}
}

// Tick advances the failure detector once: workers past their liveness ttl
// are reaped (their leases requeue immediately) and expired leases
// reclaimed. RunCtx ticks on PollInterval while a campaign runs; tests
// drive it directly against a fake clock.
func (c *Coordinator) Tick() {
	for _, id := range c.reg.reap() {
		n := c.queue.RequeueWorker(id)
		c.logf("worker %s reaped, %d leases requeued", id, n)
	}
	if n := c.queue.ExpireLeases(); n > 0 {
		c.logf("%d expired leases requeued", n)
	}
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Verbose != nil {
		c.cfg.Verbose("fleet: " + fmt.Sprintf(format, args...))
	}
}

// keyFor computes an item's content-addressed result key on the
// coordinator, via a cached per-trace-length keyer runner. Result rows
// therefore carry exactly the keys a local Engine run would, independent of
// what any worker reports.
func (c *Coordinator) keyFor(tl int, s experiments.Spec) string {
	c.mu.Lock()
	r, ok := c.keyers[tl]
	if !ok {
		r = experiments.NewRunner(tl)
		c.keyers[tl] = r
	}
	c.mu.Unlock()
	return r.CacheKey(s)
}

// RunCtx expands m into a plan, enqueues every item for the fleet and
// blocks until all items reach a terminal state (completed or poisoned) or
// ctx is cancelled. The signature and semantics mirror
// campaign.Engine.RunCtx: progress receives Started on every lease grant
// and exactly one Result per item; cancellation returns the partial
// ResultSet with context errors on unfinished items, not an error.
func (c *Coordinator) RunCtx(ctx context.Context, m *campaign.Manifest, progress func(campaign.ItemEvent)) (*campaign.ResultSet, error) {
	plan, err := campaign.NewPlan(m)
	if err != nil {
		return nil, err
	}
	rs := plan.NewResultSet(core.SimVersion)
	n := len(plan.Items)
	if n == 0 {
		plan.Finalize(rs)
		return rs, nil
	}

	c.mu.Lock()
	c.runSeq++
	runID := c.runSeq
	c.mu.Unlock()

	var (
		resMu     sync.Mutex
		completed = make([]bool, n)
		remaining = n
		done      = make(chan struct{})
	)
	ids := make([]string, n)
	for i := range plan.Items {
		i := i
		it := plan.Items[i]
		ids[i] = fmt.Sprintf("r%06d/%d", runID, i)
		key := c.keyFor(it.TraceLen, it.Spec)
		onLease := func(Task) {
			if progress != nil {
				progress(campaign.ItemEvent{Index: i, Started: true})
			}
		}
		onDone := func(o Outcome) {
			// Replicate the stats into the shared store even if the worker's
			// own PUT failed; duplicates are idempotent writes.
			if o.Err == nil && o.Stats != nil {
				c.store.Put(key, o.Stats)
			}
			res := plan.Result(i, key, o.Stats, o.Executed, o.Err)
			resMu.Lock()
			if completed[i] {
				resMu.Unlock()
				return
			}
			completed[i] = true
			rs.Results[i] = res
			remaining--
			last := remaining == 0
			resMu.Unlock()
			if progress != nil {
				progress(campaign.ItemEvent{Index: i, Result: &rs.Results[i]})
			}
			if last {
				close(done)
			}
		}
		task := Task{ID: ids[i], TraceLen: it.TraceLen, Spec: it.Spec}
		if err := c.queue.Add(task, onLease, onDone); err != nil {
			c.queue.Remove(ids[:i+1])
			return nil, err
		}
	}
	c.logf("campaign %s: %d items enqueued", m.Name, n)

	tick := time.NewTicker(c.cfg.PollInterval)
	defer tick.Stop()
	for {
		select {
		case <-done:
			plan.Finalize(rs)
			c.logf("campaign %s: complete (%d executed, %d store hits, %d failed)",
				m.Name, rs.Executed, rs.StoreHits, rs.Failed)
			return rs, nil
		case <-ctx.Done():
			// Abandon the run: drop every queued/leased item so late
			// completions become duplicate no-ops, then fail what never
			// finished with the context's error. Finished items keep their
			// results, matching the Engine's cancellation contract.
			c.queue.Remove(ids)
			resMu.Lock()
			for i := range completed {
				if !completed[i] {
					completed[i] = true
					rs.Results[i] = plan.Result(i, "", nil, false, ctx.Err())
				}
			}
			resMu.Unlock()
			plan.Finalize(rs)
			c.logf("campaign %s: canceled", m.Name)
			return rs, nil
		case <-tick.C:
			c.Tick()
		}
	}
}
