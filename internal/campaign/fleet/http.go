package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"clustersmt/internal/campaign/store"
	"clustersmt/internal/report"
)

// maxBodyBytes bounds a worker-API request body. Completions carry one
// Stats document and lease requests a single integer; a megabyte is
// generous.
const maxBodyBytes = 1 << 20

// RegisterRequest is the POST /v1/workers body.
type RegisterRequest struct {
	// Name is a human-readable worker label (hostname, usually); identity
	// comes from the assigned ID, so names need not be unique.
	Name string `json:"name"`
}

// RegisterResponse tells a new worker its identity and cadence contract:
// heartbeat within HeartbeatMs (well inside the lease ttl) or be presumed
// dead, and poll for work every PollMs when idle.
type RegisterResponse struct {
	ID          string `json:"id"`
	LeaseTTLMs  int64  `json:"lease_ttl_ms"`
	HeartbeatMs int64  `json:"heartbeat_ms"`
	PollMs      int64  `json:"poll_ms"`
}

// LeaseRequest is the POST /v1/workers/{id}/lease body.
type LeaseRequest struct {
	// Max bounds the returned batch (0 = 1).
	Max int `json:"max"`
}

// LeaseResponse carries a leased batch; an empty Tasks slice means no work
// is currently available and the worker should poll again in PollMs.
type LeaseResponse struct {
	Tasks  []Task `json:"tasks"`
	PollMs int64  `json:"poll_ms"`
}

// CompleteResponse reports whether a completion was accepted; false means
// it was stale or duplicate (the lease expired, or another attempt
// superseded it) and the worker's result was discarded.
type CompleteResponse struct {
	Accepted bool `json:"accepted"`
}

// Handler returns the coordinator's HTTP API as a standalone handler (the
// fault-injection tests mount it on httptest servers; the service mounts
// the same routes onto its own mux via Register).
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	c.Register(mux)
	return mux
}

// Register mounts the fleet API:
//
//	POST /v1/workers                 register; returns id + cadence contract
//	GET  /v1/workers                 registry + queue snapshot (Status)
//	POST /v1/workers/{id}/heartbeat  liveness; renews the worker's leases
//	POST /v1/workers/{id}/lease      pull a task batch (work-stealing)
//	POST /v1/workers/{id}/complete   report one task's outcome (idempotent)
//	GET  /v1/store/{key}             fetch a shared-store entry
//	PUT  /v1/store/{key}             upload a checksummed entry (422 if invalid)
//
// docs/API.md documents the schemas and failure codes; CI cross-checks its
// route list against these registrations.
func (c *Coordinator) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/workers", c.handleRegister)
	mux.HandleFunc("GET /v1/workers", c.handleWorkers)
	mux.HandleFunc("POST /v1/workers/{id}/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /v1/workers/{id}/lease", c.handleLease)
	mux.HandleFunc("POST /v1/workers/{id}/complete", c.handleComplete)
	mux.HandleFunc("GET /v1/store/{key}", c.handleStoreGet)
	mux.HandleFunc("PUT /v1/store/{key}", c.handleStorePut)
}

func fleetJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	report.WriteJSON(w, v)
}

func fleetErr(w http.ResponseWriter, code int, format string, args ...any) {
	fleetJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// readBody decodes a bounded JSON request body into v ({} for an empty
// body, so bodyless POSTs work).
func readBody(w http.ResponseWriter, r *http.Request, v any) bool {
	b, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		fleetErr(w, http.StatusBadRequest, "read body: %v", err)
		return false
	}
	if len(b) > maxBodyBytes {
		fleetErr(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", maxBodyBytes)
		return false
	}
	if len(b) == 0 {
		return true
	}
	if err := json.Unmarshal(b, v); err != nil {
		fleetErr(w, http.StatusUnprocessableEntity, "decode body: %v", err)
		return false
	}
	return true
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !readBody(w, r, &req) {
		return
	}
	info := c.reg.register(req.Name)
	c.logf("worker %s (%q) registered", info.ID, info.Name)
	fleetJSON(w, http.StatusOK, RegisterResponse{
		ID:          info.ID,
		LeaseTTLMs:  c.cfg.LeaseTTL.Milliseconds(),
		HeartbeatMs: (c.cfg.LeaseTTL / 3).Milliseconds(),
		PollMs:      c.cfg.PollInterval.Milliseconds(),
	})
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	fleetJSON(w, http.StatusOK, c.Status())
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !c.reg.heartbeat(id) {
		// The worker was reaped (or never existed): its leases are gone, so
		// it must re-register for a fresh identity before leasing again.
		fleetErr(w, http.StatusNotFound, "unknown worker %q", id)
		return
	}
	c.queue.Renew(id, c.cfg.LeaseTTL)
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req LeaseRequest
	if !readBody(w, r, &req) {
		return
	}
	if !c.reg.heartbeat(id) { // leasing counts as liveness
		fleetErr(w, http.StatusNotFound, "unknown worker %q", id)
		return
	}
	max := req.Max
	if max <= 0 {
		max = 1
	}
	tasks := c.queue.Lease(id, c.reg.live(), max, c.cfg.LeaseTTL)
	if len(tasks) > 0 {
		c.logf("worker %s leased %d task(s)", id, len(tasks))
	}
	fleetJSON(w, http.StatusOK, LeaseResponse{
		Tasks:  tasks,
		PollMs: c.cfg.PollInterval.Milliseconds(),
	})
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var comp Completion
	if !readBody(w, r, &comp) {
		return
	}
	if comp.ID == "" {
		fleetErr(w, http.StatusUnprocessableEntity, "completion missing task id")
		return
	}
	// Completions are processed even from deregistered workers: the queue's
	// (task, worker, attempt) check alone decides acceptance, so a reaped
	// worker's late report is rejected as stale without racing the registry.
	c.reg.heartbeat(id)
	accepted := c.queue.Complete(id, comp)
	if !accepted {
		c.logf("worker %s: stale/duplicate completion for %s attempt %d ignored", id, comp.ID, comp.Attempt)
	}
	fleetJSON(w, http.StatusOK, CompleteResponse{Accepted: accepted})
}

func (c *Coordinator) handleStoreGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !store.ValidKey(key) {
		fleetErr(w, http.StatusBadRequest, "invalid store key %q", key)
		return
	}
	st, ok, err := c.store.Get(key)
	if err != nil || !ok {
		// A corrupt coordinator-side entry is a miss here too: the worker
		// re-simulates and its PUT overwrites the bad entry.
		fleetErr(w, http.StatusNotFound, "no entry for %s", key)
		return
	}
	b, err := store.EncodeEntry(key, st)
	if err != nil {
		fleetErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(b)
}

func (c *Coordinator) handleStorePut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !store.ValidKey(key) {
		fleetErr(w, http.StatusBadRequest, "invalid store key %q", key)
		return
	}
	b, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		fleetErr(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if len(b) > maxBodyBytes {
		fleetErr(w, http.StatusRequestEntityTooLarge, "entry exceeds %d bytes", maxBodyBytes)
		return
	}
	// Full validation before the shared store sees anything: a tampered or
	// checksum-broken entry is rejected, not cached.
	st, err := store.DecodeEntry(key, b)
	if err != nil {
		fleetErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	if err := c.store.Put(key, st); err != nil {
		fleetErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
