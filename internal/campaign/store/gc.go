package store

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// GCOptions tunes a compaction pass. The zero value removes only garbage
// (leftover temp files and entries that fail validation); age and count
// caps are opt-in.
type GCOptions struct {
	// MaxAge evicts entries whose file modification time is older than this
	// (0 = no age cap). Evicting a live result only costs a re-simulation.
	MaxAge time.Duration
	// MaxEntries keeps at most this many valid entries, evicting oldest
	// first by modification time (0 = no count cap).
	MaxEntries int
	// DryRun reports what would be removed without touching the directory.
	DryRun bool
}

// GCReport tallies one compaction pass.
type GCReport struct {
	// Scanned counts entry files examined.
	Scanned int `json:"scanned"`
	// TempFiles counts leftover atomic-write temporaries removed.
	TempFiles int `json:"temp_files"`
	// Corrupt counts entries removed because they failed validation
	// (checksum, key echo or format mismatch — a live runner would never
	// read them anyway).
	Corrupt int `json:"corrupt"`
	// Expired counts valid entries evicted by MaxAge.
	Expired int `json:"expired"`
	// Evicted counts valid entries evicted by MaxEntries.
	Evicted int `json:"evicted"`
	// Remaining counts entries left after the pass.
	Remaining int `json:"remaining"`
}

// gcEntry is one candidate file during a pass.
type gcEntry struct {
	path  string
	mtime time.Time
}

// GC compacts the store: leftover temp files from interrupted writes,
// entries that fail validation, and — when the options ask — entries past
// an age or count cap are removed, oldest first. Removing a valid entry is
// always safe: the store is a cache over deterministic simulation, so the
// worst case is one re-execution. Concurrent writers are tolerated (a file
// that disappears mid-pass is skipped, not an error).
func (s *Store) GC(o GCOptions) (*GCReport, error) {
	rep := &GCReport{}
	remove := func(path string) {
		if !o.DryRun {
			os.Remove(path)
		}
	}

	buckets, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var valid []gcEntry
	for _, b := range buckets {
		if !b.IsDir() || len(b.Name()) != 2 {
			continue
		}
		bdir := filepath.Join(s.dir, b.Name())
		files, err := os.ReadDir(bdir)
		if err != nil {
			continue // bucket vanished mid-pass
		}
		for _, f := range files {
			path := filepath.Join(bdir, f.Name())
			if strings.Contains(f.Name(), ".tmp") {
				rep.TempFiles++
				remove(path)
				continue
			}
			key, ok := strings.CutSuffix(f.Name(), ".json")
			if !ok || !ValidKey(key) || !strings.HasPrefix(key, b.Name()) {
				continue // not ours; leave unknown files alone
			}
			rep.Scanned++
			data, err := os.ReadFile(path)
			if err != nil {
				continue // entry vanished mid-pass
			}
			if _, err := DecodeEntry(key, data); err != nil {
				rep.Corrupt++
				remove(path)
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			valid = append(valid, gcEntry{path: path, mtime: info.ModTime()})
		}
	}

	sort.Slice(valid, func(i, j int) bool { return valid[i].mtime.Before(valid[j].mtime) })
	if o.MaxAge > 0 {
		cutoff := time.Now().Add(-o.MaxAge)
		for len(valid) > 0 && valid[0].mtime.Before(cutoff) {
			rep.Expired++
			remove(valid[0].path)
			valid = valid[1:]
		}
	}
	if o.MaxEntries > 0 && len(valid) > o.MaxEntries {
		excess := len(valid) - o.MaxEntries
		for _, e := range valid[:excess] {
			rep.Evicted++
			remove(e.path)
		}
		valid = valid[excess:]
	}
	rep.Remaining = len(valid)

	// Empty bucket directories are cosmetic; os.Remove refuses non-empty
	// ones, so a racing writer keeps its bucket.
	if !o.DryRun {
		for _, b := range buckets {
			if b.IsDir() && len(b.Name()) == 2 {
				_ = os.Remove(filepath.Join(s.dir, b.Name())) // best effort; next GC retries
			}
		}
	}
	return rep, nil
}
