package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"clustersmt/internal/metrics"
)

// ValidKey accepts the hex-SHA-256 keys the runner produces. Session-local
// fallback keys ("spec:...") are rejected: they are not content-addressed,
// so persisting or transmitting them would poison later runs.
func ValidKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// EncodeEntry renders one result in the store's checksummed entry format —
// the same bytes whether the entry lands on disk or travels the fleet's
// /v1/store wire: a self-validating JSON document carrying its format
// version, its key and a SHA-256 over the embedded stats.
func EncodeEntry(key string, st *metrics.Stats) ([]byte, error) {
	payload, err := json.Marshal(st)
	if err != nil {
		return nil, fmt.Errorf("store: marshal stats: %w", err)
	}
	sum := sha256.Sum256(payload)
	// Compact, not indented: indentation would rewrite the embedded Stats
	// bytes and break the checksum round-trip.
	b, err := json.Marshal(entry{
		Format:   formatVersion,
		Key:      key,
		Checksum: hex.EncodeToString(sum[:]),
		Stats:    payload,
	})
	if err != nil {
		return nil, fmt.Errorf("store: marshal entry: %w", err)
	}
	return append(b, '\n'), nil
}

// DecodeEntry parses and fully validates entry bytes claimed to hold key:
// format version, key echo and checksum must all match before the stats
// are trusted. Every failure is an error — callers (disk reads, the remote
// store client, the coordinator's PUT handler) treat it as "no such
// result", never as data.
func DecodeEntry(key string, b []byte) (*metrics.Stats, error) {
	var e entry
	if err := json.Unmarshal(b, &e); err != nil {
		return nil, fmt.Errorf("store: corrupt entry %s: %w", key, err)
	}
	if e.Format != formatVersion {
		return nil, fmt.Errorf("store: entry %s has format %d, want %d", key, e.Format, formatVersion)
	}
	if e.Key != key {
		return nil, fmt.Errorf("store: entry %s claims key %s", key, e.Key)
	}
	sum := sha256.Sum256(e.Stats)
	if hex.EncodeToString(sum[:]) != e.Checksum {
		return nil, fmt.Errorf("store: entry %s failed its checksum", key)
	}
	st := &metrics.Stats{}
	if err := json.Unmarshal(e.Stats, st); err != nil {
		return nil, fmt.Errorf("store: corrupt stats in %s: %w", key, err)
	}
	return st, nil
}
