package store

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// storeServer is a minimal coordinator-store stand-in: entries live as raw
// wire bytes, PUT re-validates with DecodeEntry exactly like the fleet
// coordinator does. Keeping it here (not importing the fleet package)
// pins the wire protocol from the client side alone.
type storeServer struct {
	mu       sync.Mutex
	entries  map[string][]byte
	requests int
}

func newStoreServer() *storeServer {
	return &storeServer{entries: map[string][]byte{}}
}

func (s *storeServer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/store/{key}", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		s.requests++
		b, ok := s.entries[r.PathValue("key")]
		s.mu.Unlock()
		if !ok {
			http.Error(w, "no entry", http.StatusNotFound)
			return
		}
		w.Write(b)
	})
	mux.HandleFunc("PUT /v1/store/{key}", func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		key := r.PathValue("key")
		if _, err := DecodeEntry(key, b); err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		s.mu.Lock()
		s.requests++
		s.entries[key] = b
		s.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}

func (s *storeServer) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.requests
}

func (s *storeServer) bytes(key string) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.entries[key]
}

// TestRemoteRoundTripMatchesLocal: the same stats stored through Remote
// and through the disk store must read back identically, and the wire
// bytes must be the disk format byte-for-byte.
func TestRemoteRoundTripMatchesLocal(t *testing.T) {
	srv := newStoreServer()
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	remote, err := NewRemote(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	disk, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	want := testStats()
	if err := remote.Put(keyA, want); err != nil {
		t.Fatal(err)
	}
	if err := disk.Put(keyA, want); err != nil {
		t.Fatal(err)
	}

	viaRemote, ok, err := remote.Get(keyA)
	if err != nil || !ok {
		t.Fatalf("remote Get = (%v, %v)", ok, err)
	}
	viaDisk, ok, err := disk.Get(keyA)
	if err != nil || !ok {
		t.Fatalf("disk Get = (%v, %v)", ok, err)
	}
	if viaRemote.Cycles != viaDisk.Cycles || viaRemote.IPC() != viaDisk.IPC() ||
		viaRemote.IQStalls != viaDisk.IQStalls || viaRemote.Imbalance != viaDisk.Imbalance {
		t.Errorf("remote and local disagree:\nremote: %+v\ndisk:   %+v", viaRemote, viaDisk)
	}

	wireBytes := srv.bytes(keyA)
	diskBytes, err := EncodeEntry(keyA, want)
	if err != nil {
		t.Fatal(err)
	}
	if string(wireBytes) != string(diskBytes) {
		t.Error("wire format diverged from disk format")
	}
}

// TestRemoteMissIsSilent: a 404 is a plain miss, not an error.
func TestRemoteMissIsSilent(t *testing.T) {
	ts := httptest.NewServer(newStoreServer().handler())
	defer ts.Close()
	remote, err := NewRemote(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st, ok, err := remote.Get(keyA); st != nil || ok || err != nil {
		t.Errorf("Get(absent) = (%v, %v, %v), want clean miss", st, ok, err)
	}
}

// TestRemoteCorruptEntryIsErrorNotData: a server answering with tampered
// bytes must produce a Get error — which keeps Layered from backfilling
// local caches with it (the no-cache-write rule the fleet relies on).
func TestRemoteCorruptEntryIsErrorNotData(t *testing.T) {
	srv := newStoreServer()
	good, err := EncodeEntry(keyA, testStats())
	if err != nil {
		t.Fatal(err)
	}
	tampered := []byte(strings.Replace(string(good), `"Cycles":1234`, `"Cycles":9234`, 1))
	if string(tampered) == string(good) {
		t.Fatal("tamper had no effect; test is broken")
	}
	srv.entries[keyA] = tampered
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	remote, err := NewRemote(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, ok, err := remote.Get(keyA)
	if st != nil || ok {
		t.Fatalf("tampered entry served as data: (%v, %v, %v)", st, ok, err)
	}
	if err == nil {
		t.Error("tampered entry rejected without a diagnosis")
	}
}

// TestRemotePutRejectedSurfacesError: a coordinator refusing a PUT (422)
// must be an error, not a silent drop.
func TestRemotePutRejectedSurfacesError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "checksum mismatch", http.StatusUnprocessableEntity)
	}))
	defer ts.Close()
	remote, err := NewRemote(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := remote.Put(keyA, testStats()); err == nil {
		t.Error("rejected put reported success")
	}
}

// TestRemoteSessionLocalKeysNeverLeaveTheProcess: "spec:" fallback keys
// are meaningless outside one process and must not generate any HTTP
// traffic, matching the disk store's silent drop.
func TestRemoteSessionLocalKeysNeverLeaveTheProcess(t *testing.T) {
	srv := newStoreServer()
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	remote, err := NewRemote(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := remote.Put("spec:wl|icount|iq32", testStats()); err != nil {
		t.Fatal(err)
	}
	if st, ok, err := remote.Get("spec:wl|icount|iq32"); st != nil || ok || err != nil {
		t.Errorf("session-local Get = (%v, %v, %v), want silent miss", st, ok, err)
	}
	if n := srv.count(); n != 0 {
		t.Errorf("session-local keys generated %d HTTP requests", n)
	}
}

// TestNewRemoteValidatesBase: a base URL without scheme://host is a
// configuration error caught at construction, not at first request.
func TestNewRemoteValidatesBase(t *testing.T) {
	for _, base := range []string{"", "localhost:8080", "/just/a/path", "://nope"} {
		if _, err := NewRemote(base, nil); err == nil {
			t.Errorf("NewRemote(%q) accepted an unusable base", base)
		}
	}
	if _, err := NewRemote("http://localhost:8080/", nil); err != nil {
		t.Errorf("NewRemote rejected a good base: %v", err)
	}
}
