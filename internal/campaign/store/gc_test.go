package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// gcFixture builds a store with n valid entries whose modification times
// step back one hour per index (entry 0 is oldest), plus one leftover temp
// file and one corrupt entry.
func gcFixture(t *testing.T, n int) (*Store, []string) {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, n)
	now := time.Now()
	for i := range keys {
		keys[i] = fmt.Sprintf("%064x", i+1)
		if err := s.Put(keys[i], testStats()); err != nil {
			t.Fatal(err)
		}
		mtime := now.Add(-time.Duration(n-i) * time.Hour)
		if err := os.Chtimes(s.path(keys[i]), mtime, mtime); err != nil {
			t.Fatal(err)
		}
	}
	// An interrupted atomic write leaves a temp file behind.
	tmp := filepath.Join(filepath.Dir(s.path(keys[0])), "."+keys[0]+".tmp12345")
	if err := os.WriteFile(tmp, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A corrupt entry under a valid key/filename.
	corrupt := "ff" + keys[0][2:]
	if err := os.MkdirAll(filepath.Dir(s.path(corrupt)), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path(corrupt), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	return s, keys
}

// TestGCRemovesGarbage: the zero-option pass removes temp files and
// corrupt entries, nothing else.
func TestGCRemovesGarbage(t *testing.T) {
	s, keys := gcFixture(t, 4)
	rep, err := s.GC(GCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TempFiles != 1 || rep.Corrupt != 1 || rep.Expired != 0 || rep.Evicted != 0 {
		t.Fatalf("report = %+v, want 1 temp + 1 corrupt removed", rep)
	}
	if rep.Remaining != len(keys) {
		t.Fatalf("remaining = %d, want %d", rep.Remaining, len(keys))
	}
	for _, k := range keys {
		if _, ok, err := s.Get(k); !ok || err != nil {
			t.Errorf("valid entry %s lost: (%v, %v)", k, ok, err)
		}
	}
}

// TestGCAgeCap: entries older than MaxAge evict oldest-first; the rest
// survive.
func TestGCAgeCap(t *testing.T) {
	s, keys := gcFixture(t, 4) // mtimes: 4h, 3h, 2h, 1h ago
	rep, err := s.GC(GCOptions{MaxAge: 150 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Expired != 2 || rep.Remaining != 2 {
		t.Fatalf("report = %+v, want 2 expired, 2 remaining", rep)
	}
	for i, k := range keys {
		_, ok, _ := s.Get(k)
		if wantGone := i < 2; ok == wantGone {
			t.Errorf("entry %d (age %dh): present=%v", i, 4-i, ok)
		}
	}
}

// TestGCCountCap: MaxEntries keeps the newest N.
func TestGCCountCap(t *testing.T) {
	s, keys := gcFixture(t, 5)
	rep, err := s.GC(GCOptions{MaxEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Evicted != 3 || rep.Remaining != 2 {
		t.Fatalf("report = %+v, want 3 evicted, 2 remaining", rep)
	}
	for i, k := range keys {
		_, ok, _ := s.Get(k)
		if wantGone := i < 3; ok == wantGone {
			t.Errorf("entry %d: present=%v", i, ok)
		}
	}
	if n, _ := s.Len(); n != 2 {
		t.Fatalf("Len = %d after gc, want 2", n)
	}
}

// TestGCDryRun reports the full pass without touching a single file.
func TestGCDryRun(t *testing.T) {
	s, keys := gcFixture(t, 3)
	rep, err := s.GC(GCOptions{MaxEntries: 1, MaxAge: 90 * time.Minute, DryRun: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TempFiles != 1 || rep.Corrupt != 1 || rep.Expired+rep.Evicted == 0 {
		t.Fatalf("dry run report = %+v, want the real pass's numbers", rep)
	}
	for _, k := range keys {
		if _, ok, err := s.Get(k); !ok || err != nil {
			t.Errorf("dry run removed entry %s", k)
		}
	}
	// The garbage is still there too.
	rep2, err := s.GC(GCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.TempFiles != 1 || rep2.Corrupt != 1 {
		t.Fatalf("dry run deleted garbage: second pass found %+v", rep2)
	}
}

// TestGCEmptyStore: a fresh directory is a clean no-op.
func TestGCEmptyStore(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.GC(GCOptions{MaxAge: time.Hour, MaxEntries: 10})
	if err != nil {
		t.Fatal(err)
	}
	if *rep != (GCReport{}) {
		t.Fatalf("empty store report = %+v, want zeros", rep)
	}
}
