package store

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"clustersmt/internal/metrics"
)

// maxEntryBytes bounds one store entry on the wire. A Stats document is a
// few KB; a megabyte of headroom keeps the limit irrelevant for honest
// peers while a confused or hostile one cannot balloon memory.
const maxEntryBytes = 1 << 20

// Remote is an HTTP client for a fleet coordinator's result store routes
// (GET/PUT /v1/store/{key}), implementing experiments.ResultStore. Entries
// travel in the same checksummed format the disk store uses, validated with
// DecodeEntry on receipt, so a corrupt or tampered response is an error —
// which the runner and the Layered store both treat as a miss, never as
// data, and Layered's no-backfill-on-error rule keeps it out of local
// caches.
//
// Workers layer Remote under their in-memory (and optionally local disk)
// store: reads check the fast layers first and fall through to the
// coordinator, writes replicate fresh results to the whole fleet. It is
// safe for concurrent use.
type Remote struct {
	base   string
	client *http.Client
}

// NewRemote returns a remote store talking to the coordinator at base
// (e.g. "http://host:8080"). A nil client selects http.DefaultClient.
func NewRemote(base string, client *http.Client) (*Remote, error) {
	u, err := url.Parse(base)
	if err != nil {
		return nil, fmt.Errorf("store: remote base %q: %w", base, err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("store: remote base %q: need scheme://host", base)
	}
	if client == nil {
		client = http.DefaultClient
	}
	return &Remote{base: strings.TrimRight(base, "/"), client: client}, nil
}

func (r *Remote) url(key string) string { return r.base + "/v1/store/" + key }

// Get fetches the result stored under key on the coordinator. Transport
// failures and invalid entries are errors (a miss with a diagnosis);
// a 404 is a plain miss.
func (r *Remote) Get(key string) (*metrics.Stats, bool, error) {
	if !ValidKey(key) {
		return nil, false, nil
	}
	resp, err := r.client.Get(r.url(key))
	if err != nil {
		return nil, false, fmt.Errorf("store: remote get %s: %w", key, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		_, _ = io.Copy(io.Discard, resp.Body) // drain for connection reuse
		return nil, false, nil
	default:
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, false, fmt.Errorf("store: remote get %s: %s", key, resp.Status)
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxEntryBytes))
	if err != nil {
		return nil, false, fmt.Errorf("store: remote get %s: %w", key, err)
	}
	st, err := DecodeEntry(key, b)
	if err != nil {
		return nil, false, err
	}
	return st, true, nil
}

// Put uploads st under key. Session-local keys are dropped silently, like
// the disk store. The coordinator re-validates the entry (422 on checksum
// or key mismatch), so one bad writer cannot poison the shared cache.
func (r *Remote) Put(key string, st *metrics.Stats) error {
	if !ValidKey(key) {
		return nil
	}
	b, err := EncodeEntry(key, st)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPut, r.url(key), bytes.NewReader(b))
	if err != nil {
		return fmt.Errorf("store: remote put %s: %w", key, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		return fmt.Errorf("store: remote put %s: %w", key, err)
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body) // drain for connection reuse
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("store: remote put %s: %s", key, resp.Status)
	}
	return nil
}
