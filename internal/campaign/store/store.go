// Package store persists simulation results in a content-addressed on-disk
// layout. Keys are the runner's spec fingerprints (hex SHA-256 over spec +
// canonical core.Config + core.SimVersion), so a result written by one
// process — or one branch — answers for any later run of the same
// simulation: re-runs become cache hits and interrupted campaigns resume
// where they stopped.
//
// Each entry is one JSON file at <dir>/<key[:2]>/<key>.json carrying its
// own checksum; entries that fail checksum, key or shape validation are
// rejected on read (the runner then re-executes and overwrites them).
// Writes go through a temp file + rename, so readers never observe a
// half-written entry.
package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"clustersmt/internal/metrics"
)

// formatVersion guards the entry file layout (not the simulated content —
// that is core.SimVersion's job, folded into the key).
const formatVersion = 1

// entry is the on-disk representation of one result.
type entry struct {
	Format   int             `json:"format"`
	Key      string          `json:"key"`
	Checksum string          `json:"checksum"` // hex SHA-256 of Stats
	Stats    json.RawMessage `json:"stats"`
}

// Store is a content-addressed result store rooted at a directory.
// It is safe for concurrent use by multiple goroutines and processes.
type Store struct {
	dir string
}

// Open returns a store rooted at dir, creating the directory if needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key+".json")
}

// Get loads the result stored under key. A corrupt or mismatched entry
// yields (nil, false, err) — a miss with a diagnosis, never bad data.
func (s *Store) Get(key string) (*metrics.Stats, bool, error) {
	if !ValidKey(key) {
		return nil, false, nil
	}
	b, err := os.ReadFile(s.path(key))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("store: read %s: %w", key, err)
	}
	st, err := DecodeEntry(key, b)
	if err != nil {
		return nil, false, err
	}
	return st, true, nil
}

// Put persists st under key atomically. Session-local keys are dropped
// silently (they are valid only within one process).
func (s *Store) Put(key string, st *metrics.Stats) error {
	if !ValidKey(key) {
		return nil
	}
	b, err := EncodeEntry(key, st)
	if err != nil {
		return err
	}
	dir := filepath.Dir(s.path(key))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(dir, "."+key+".tmp*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: write %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: close %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: rename %s: %w", key, err)
	}
	return nil
}

// Keys lists every key with an entry file in the store, in no particular
// order. Invalid filenames are skipped; entries are not validated.
func (s *Store) Keys() ([]string, error) {
	var out []string
	buckets, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, b := range buckets {
		if !b.IsDir() || len(b.Name()) != 2 {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, b.Name()))
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		for _, f := range files {
			key, ok := strings.CutSuffix(f.Name(), ".json")
			if ok && ValidKey(key) && strings.HasPrefix(key, b.Name()) {
				out = append(out, key)
			}
		}
	}
	return out, nil
}

// Len counts the store's entry files.
func (s *Store) Len() (int, error) {
	keys, err := s.Keys()
	return len(keys), err
}
