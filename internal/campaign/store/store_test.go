package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clustersmt/internal/metrics"
)

func testStats() *metrics.Stats {
	st := metrics.NewStats(2, 2)
	st.Cycles = 1234
	st.Committed[0] = 1000
	st.Committed[1] = 900
	st.IQStalls = 42
	st.Imbalance[1][0] = 7
	return st
}

const keyA = "aa11223344556677889900aabbccddeeff00112233445566778899aabbccddee"

// TestRoundTrip pins the write/read cycle: every field that reaches the
// figure metrics must survive persistence.
func TestRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := testStats()
	if err := s.Put(keyA, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(keyA)
	if err != nil || !ok {
		t.Fatalf("Get = (%v, %v, %v), want hit", got, ok, err)
	}
	if got.Cycles != want.Cycles || got.TotalCommitted() != want.TotalCommitted() ||
		got.IQStalls != want.IQStalls || got.Imbalance != want.Imbalance {
		t.Errorf("round trip mangled stats: got %+v want %+v", got, want)
	}
	if got.IPC() != want.IPC() {
		t.Errorf("IPC %v != %v after round trip", got.IPC(), want.IPC())
	}
	if n, err := s.Len(); n != 1 || err != nil {
		t.Errorf("Len = (%d, %v), want 1 entry", n, err)
	}
}

// TestMissIsSilent asserts an absent key is a miss, not an error.
func TestMissIsSilent(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if st, ok, err := s.Get(keyA); st != nil || ok || err != nil {
		t.Errorf("Get(absent) = (%v, %v, %v), want clean miss", st, ok, err)
	}
}

// TestCorruptEntryRejected garbles a stored entry every way the disk can
// and asserts each read is a diagnosed miss — never silently bad data.
func TestCorruptEntryRejected(t *testing.T) {
	cases := []struct {
		name   string
		garble func(path string) error
	}{
		{"flipped stats byte", func(p string) error {
			b, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			i := strings.Index(string(b), `"Cycles":1234`)
			b[i+len(`"Cycles":`)] = '9'
			return os.WriteFile(p, b, 0o644)
		}},
		{"truncated file", func(p string) error {
			b, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			return os.WriteFile(p, b[:len(b)/2], 0o644)
		}},
		{"not json", func(p string) error {
			return os.WriteFile(p, []byte("not json at all"), 0o644)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Put(keyA, testStats()); err != nil {
				t.Fatal(err)
			}
			if err := tc.garble(s.path(keyA)); err != nil {
				t.Fatal(err)
			}
			st, ok, err := s.Get(keyA)
			if st != nil || ok {
				t.Fatalf("corrupt entry served: (%v, %v, %v)", st, ok, err)
			}
			if err == nil {
				t.Error("corrupt entry rejected without a diagnosis")
			}
		})
	}
}

// TestKeyMismatchRejected moves an entry under a foreign key: the store
// must notice the content does not belong there.
func TestKeyMismatchRejected(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(keyA, testStats()); err != nil {
		t.Fatal(err)
	}
	keyB := "bb" + keyA[2:]
	if err := os.MkdirAll(filepath.Dir(s.path(keyB)), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(s.path(keyA), s.path(keyB)); err != nil {
		t.Fatal(err)
	}
	if st, ok, err := s.Get(keyB); st != nil || ok || err == nil {
		t.Errorf("foreign entry served: (%v, %v, %v)", st, ok, err)
	}
}

// TestSessionLocalKeysNeverPersist: the runner's "spec:" fallback keys are
// only meaningful in-process and must not land on disk.
func TestSessionLocalKeysNeverPersist(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("spec:wl|icount|iq32", testStats()); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.Len(); n != 0 {
		t.Errorf("session-local key persisted (%d entries)", n)
	}
}

// TestKeys lists exactly the valid persisted entries.
func TestKeys(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keyB := "bb" + keyA[2:]
	for _, k := range []string{keyA, keyB} {
		if err := s.Put(k, testStats()); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 {
		t.Fatalf("Keys = %v, want 2 entries", keys)
	}
	seen := map[string]bool{}
	for _, k := range keys {
		seen[k] = true
	}
	if !seen[keyA] || !seen[keyB] {
		t.Errorf("Keys = %v, want both %s and %s", keys, keyA, keyB)
	}
}
