package core

import (
	"fmt"

	"clustersmt/internal/bpred"
	"clustersmt/internal/cachesim"
	"clustersmt/internal/cluster"
	"clustersmt/internal/frontend"
	"clustersmt/internal/interconnect"
	"clustersmt/internal/isa"
	"clustersmt/internal/metrics"
	"clustersmt/internal/mob"
	"clustersmt/internal/policy"
	"clustersmt/internal/steer"
	"clustersmt/internal/trace"
)

// The completion-event wheel is a power-of-two ring sized per processor
// from Config.WorstCaseLatency, so any validated latency — including swept
// memory and link latencies — fits without clamping. minWheelSize keeps the
// Table 1 machine on the historical 256-slot ring; maxWheelSize is the hard
// capacity Config.Validate enforces; wheelHeadroom absorbs the +1 floors
// on top of the worst-case path.
const (
	minWheelSize  = 256
	maxWheelSize  = 1 << 16
	wheelHeadroom = 8
	// maxExecLatency bounds the non-memory execution latencies
	// (isa.Latency tops out at 4 cycles; store-to-load forwarding at 2).
	maxExecLatency = 8
)

// wheelSizeFor returns the ring length for cfg: the smallest power of two
// covering the worst-case completion distance plus headroom, at least
// minWheelSize.
func wheelSizeFor(cfg *Config) int64 {
	need := cfg.WorstCaseLatency() + wheelHeadroom
	size := int64(minWheelSize)
	for size < int64(need) {
		size <<= 1
	}
	return size
}

// ThreadProgram is one thread's input: a materialized correct-path trace
// plus the profile used to synthesize wrong-path uops after mispredictions.
type ThreadProgram struct {
	// Trace is the correct-path uop stream.
	Trace []isa.Uop
	// Profile drives wrong-path synthesis (same program statistics).
	Profile trace.Profile
	// Seed decorrelates the wrong-path stream.
	Seed uint64
}

// threadState is the per-thread front-end and bookkeeping state.
type threadState struct {
	prog      ThreadProgram
	fetchIdx  int
	seq       uint64 // next per-thread sequence number (assigned at rename)
	fq        *frontend.FetchQueue
	rat       frontend.RAT
	rob       *frontend.ROB
	wrongPath bool
	wpGen     *trace.WrongPathGenerator
	// fetchStallUntil blocks fetch during redirect refill.
	fetchStallUntil int64
	committed       uint64
	// warmCycle/warmCommitted anchor the thread's private measurement
	// window (set when the thread passes its warm-up commit count).
	warmCycle     int64
	warmCommitted uint64
}

//smtlint:noalloc
func (ts *threadState) traceDone() bool { return ts.fetchIdx >= len(ts.prog.Trace) }

// finished reports whether the thread has drained completely.
//
//smtlint:noalloc
func (ts *threadState) finished() bool {
	return ts.traceDone() && !ts.wrongPath && ts.fq.Len() == 0 && ts.rob.Len() == 0
}

// Processor is one simulated machine instance. It is not safe for
// concurrent use; run independent instances per goroutine.
type Processor struct {
	cfg Config

	sel   policy.Selector
	iqPol policy.IQPolicy
	rfPol policy.RFPolicy
	st    steer.Steerer

	pred *bpred.Predictor
	mem  *cachesim.Hierarchy
	mobq *mob.MOB
	net  *interconnect.Network

	iqs   []*cluster.IssueQueue[*frontend.ROBEntry]
	rfs   []*cluster.RegFile[*frontend.ROBEntry]
	ports []cluster.Ports

	threads []*threadState

	now    int64
	nextID uint64

	rrCommit int
	rrSelect int

	wheel     []wheelBucket
	wheelMask int64

	pool []*frontend.ROBEntry

	stats          *metrics.Stats
	statsCycleBase int64
	statsFwdBase   uint64

	// time-series sampling (SetSampler): observational only, allocation-free
	sampleFn    func(metrics.Sample)
	sampleEvery int64
	sampleBase  sampleBase

	// scratch buffers reused across cycles to avoid allocation
	scratchReady    []*frontend.ROBEntry
	scratchOrder    []int
	scratchIcount   []int
	scratchSrcCnt   []int
	scratchOcc      []int
	scratchPlan     renamePlan
	scratchLeftover [metrics.NumImbClasses][MaxClusters]bool
}

// New builds a processor from cfg, the scheme components, the steering
// function and one program per thread. A nil steerer selects the baseline
// dependence/workload steering.
func New(cfg Config, sel policy.Selector, iqPol policy.IQPolicy, rfPol policy.RFPolicy, st steer.Steerer, progs []ThreadProgram) (*Processor, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(progs) != cfg.NumThreads {
		return nil, fmt.Errorf("core: %d programs for %d threads", len(progs), cfg.NumThreads)
	}
	if st == nil {
		st = steer.DependenceBalance{BalanceSlack: cfg.SteerSlack}
	}
	p := &Processor{
		cfg:   cfg,
		sel:   sel,
		iqPol: iqPol,
		rfPol: rfPol,
		st:    st,
		pred:  bpred.New(cfg.BPred),
		mem:   cachesim.New(cfg.Cache),
		mobq:  mob.New(cfg.MOBSize, cfg.NumThreads),
		net:   interconnect.New(cfg.Net),
		stats: metrics.NewStats(cfg.NumThreads, cfg.NumClusters),
	}
	wheelLen := wheelSizeFor(&cfg)
	p.wheel = make([]wheelBucket, wheelLen)
	p.wheelMask = wheelLen - 1
	for c := 0; c < cfg.NumClusters; c++ {
		p.iqs = append(p.iqs, cluster.NewIssueQueue[*frontend.ROBEntry](cfg.IQSize, cfg.NumThreads))
		rf := cluster.NewRegFile[*frontend.ROBEntry](cfg.IntRegsPerCluster, cfg.FpRegsPerCluster, cfg.NumThreads)
		rf.OnWake = p.wake
		p.rfs = append(p.rfs, rf)
	}
	p.ports = make([]cluster.Ports, cfg.NumClusters)
	for t := 0; t < cfg.NumThreads; t++ {
		ts := &threadState{
			warmCycle: -1,
			prog:      progs[t],
			fq:        frontend.NewFetchQueue(cfg.FetchQueueCap),
			rob:       frontend.NewROB(cfg.ROBPerThread),
			wpGen:     trace.NewWrongPathGenerator(progs[t].Profile, progs[t].Seed+uint64(t)*0x9e37),
		}
		p.threads = append(p.threads, ts)
	}
	p.scratchSrcCnt = make([]int, cfg.NumClusters)
	p.scratchOcc = make([]int, cfg.NumClusters)
	p.scratchReady = make([]*frontend.ROBEntry, 0, cfg.IQSize)
	p.scratchOrder = make([]int, 0, cfg.NumThreads)
	p.scratchIcount = make([]int, 0, cfg.NumThreads)
	p.pool = make([]*frontend.ROBEntry, 0, entryPoolCap)
	if cfg.ROBPerThread > 0 {
		// Pre-populate the entry pool to its bounded-configuration ceiling
		// (every in-flight entry sits in a ROB section or, briefly, in the
		// wheel after a squash) so the cycle loop never calls the allocator.
		// Unbounded ROBs grow the pool on demand instead.
		prefill := cfg.NumThreads*cfg.ROBPerThread + 256
		if prefill > entryPoolCap {
			prefill = entryPoolCap
		}
		entries := make([]frontend.ROBEntry, prefill)
		for i := range entries {
			p.pool = append(p.pool, &entries[i])
		}
	}
	return p, nil
}

// NewScheme builds a processor running the given resource-assignment
// scheme: a named paper scheme ("cdprf") or a composed component spec in
// the policy grammar ("sel=stall,iq=cssp,rf=cdprf").
func NewScheme(cfg Config, scheme string, progs []ThreadProgram) (*Processor, error) {
	sp, err := policy.ParseSpec(scheme)
	if err != nil {
		return nil, err
	}
	sel, iq, rf, err := sp.New(cfg.NumThreads)
	if err != nil {
		return nil, err
	}
	return New(cfg, sel, iq, rf, nil, progs)
}

// Config returns the configuration in use.
func (p *Processor) Config() Config { return p.cfg }

// Stats returns the run statistics collected so far.
func (p *Processor) Stats() *metrics.Stats { return p.stats }

// Mem exposes the memory hierarchy (for stats and tests).
func (p *Processor) Mem() *cachesim.Hierarchy { return p.mem }

// Predictor exposes the branch predictor (for stats and tests).
func (p *Processor) Predictor() *bpred.Predictor { return p.pred }

// entry pool --------------------------------------------------------------

//smtlint:noalloc
func (p *Processor) getEntry() *frontend.ROBEntry {
	if n := len(p.pool); n > 0 {
		e := p.pool[n-1]
		p.pool = p.pool[:n-1]
		e.Reset()
		return e
	}
	//smtlint:allow pool refill; cold once the pool reaches steady-state population
	e := &frontend.ROBEntry{}
	e.Reset()
	return e
}

// entryPoolCap bounds the ROB-entry free pool; in-flight entries are capped
// by the ROB sections plus wheel-held squashed completions, so the pool's
// population stabilizes far below this in bounded configurations.
const entryPoolCap = 4096

//smtlint:noalloc
func (p *Processor) putEntry(e *frontend.ROBEntry) {
	if len(p.pool) < entryPoolCap {
		//smtlint:allow pool growth bounded by entryPoolCap
		p.pool = append(p.pool, e)
	}
}

// wheelBucket heads one completion cycle's intrusive FIFO of entries,
// chained through ROBEntry.WheelNext. Enqueue at the tail, drain from the
// head: completion processing order is exactly the scheduling order, and no
// bucket ever touches the allocator (the per-bucket slices this replaces
// kept growing whenever MSHR-coalesced loads piled completions onto one
// cycle).
type wheelBucket struct {
	head, tail *frontend.ROBEntry
}

// iqCluster returns the cluster whose issue queue holds e: copies wait in
// their source cluster, everything else in its execution cluster.
//
//smtlint:noalloc
func iqCluster(e *frontend.ROBEntry) int {
	if e.IsCopy() {
		return e.SrcCluster
	}
	return e.Cluster
}

// wrapIdx reduces i into [0, n) given i < 2n, the round-robin rotation of
// the per-cycle loops, without the hardware divide of a variable modulo.
//
//smtlint:noalloc
func wrapIdx(i, n int) int {
	if i >= n {
		i -= n
	}
	return i
}

// policy.Machine implementation -------------------------------------------

var _ policy.Machine = (*Processor)(nil)

// NumThreads implements policy.Machine.
//
//smtlint:noalloc
func (p *Processor) NumThreads() int { return p.cfg.NumThreads }

// NumClusters implements policy.Machine.
//
//smtlint:noalloc
func (p *Processor) NumClusters() int { return p.cfg.NumClusters }

// IQSize implements policy.Machine.
//
//smtlint:noalloc
func (p *Processor) IQSize() int { return p.cfg.IQSize }

// IQFree implements policy.Machine.
//
//smtlint:noalloc
func (p *Processor) IQFree(c int) int { return p.iqs[c].Free() }

// IQOcc implements policy.Machine.
//
//smtlint:noalloc
func (p *Processor) IQOcc(c, t int) int { return p.iqs[c].Occupancy(t) }

// RFTotal implements policy.Machine.
//
//smtlint:noalloc
func (p *Processor) RFTotal(k isa.RegKind) int {
	total := 0
	for _, rf := range p.rfs {
		total += rf.Total(k)
	}
	return total
}

// RFFree implements policy.Machine.
//
//smtlint:noalloc
func (p *Processor) RFFree(k isa.RegKind) int {
	total := 0
	for _, rf := range p.rfs {
		total += rf.FreeCount(k)
	}
	return total
}

// RFInUse implements policy.Machine.
//
//smtlint:noalloc
func (p *Processor) RFInUse(t int, k isa.RegKind) int {
	total := 0
	for _, rf := range p.rfs {
		total += rf.InUse(k, t)
	}
	return total
}

// RFClusterTotal implements policy.Machine.
//
//smtlint:noalloc
func (p *Processor) RFClusterTotal(k isa.RegKind) int { return p.rfs[0].Total(k) }

// RFClusterFree implements policy.Machine.
//
//smtlint:noalloc
func (p *Processor) RFClusterFree(c int, k isa.RegKind) int { return p.rfs[c].FreeCount(k) }

// RFClusterInUse implements policy.Machine.
//
//smtlint:noalloc
func (p *Processor) RFClusterInUse(c, t int, k isa.RegKind) int { return p.rfs[c].InUse(k, t) }

// Now implements policy.Machine.
//
//smtlint:noalloc
func (p *Processor) Now() int64 { return p.now }

// Committed implements policy.PerfReader for adaptive schemes.
//
//smtlint:noalloc
func (p *Processor) Committed(t int) uint64 { return p.threads[t].committed }
