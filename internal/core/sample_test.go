package core

import (
	"context"
	"testing"

	"clustersmt/internal/metrics"
	"clustersmt/internal/trace"
	"clustersmt/internal/workload"
)

func sampleTestProcessor(t *testing.T, traceLen int) *Processor {
	t.Helper()
	w, err := workload.Find("dh.mix.2.1")
	if err != nil {
		t.Fatal(err)
	}
	var progs []ThreadProgram
	for i, prof := range w.Threads {
		g := trace.NewGenerator(prof, w.Seeds[i])
		progs = append(progs, ThreadProgram{Trace: g.Generate(traceLen), Profile: prof, Seed: w.Seeds[i]})
	}
	cfg := DefaultConfig(2)
	cfg.MaxCycles = int64(traceLen) * 40
	cfg.WarmupUops = uint64(traceLen / 5)
	p, err := NewScheme(cfg, "cdprf", progs)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestSamplerWindows checks the sampling contract: windows are the
// configured power-of-two size, cycles are strictly increasing, windows
// never span the warm-up stats reset, and the per-window committed deltas
// reconstruct the post-reset total.
func TestSamplerWindows(t *testing.T) {
	const traceLen = 60000
	p := sampleTestProcessor(t, traceLen)
	var samples []metrics.Sample
	p.SetSampler(DefaultSampleInterval, func(s metrics.Sample) { samples = append(samples, s) })
	st, err := p.RunCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) < 2 {
		t.Fatalf("got %d samples for a %d-cycle run at window %d", len(samples), p.now, DefaultSampleInterval)
	}
	resetCycle := p.statsCycleBase
	var afterReset uint64
	prev := int64(-1)
	for i, s := range samples {
		if s.Cycle <= prev {
			t.Fatalf("sample %d: cycle %d not after %d", i, s.Cycle, prev)
		}
		prev = s.Cycle
		if s.Window <= 0 {
			t.Fatalf("sample %d: window %d", i, s.Window)
		}
		if s.Window > 2*DefaultSampleInterval {
			t.Errorf("sample %d: window %d far exceeds the interval", i, s.Window)
		}
		if s.Cycle > resetCycle && s.Cycle-s.Window < resetCycle {
			t.Errorf("sample %d: window [%d,%d) spans the warm-up reset at %d",
				i, s.Cycle-s.Window, s.Cycle, resetCycle)
		}
		if got := float64(s.Committed) / float64(s.Window); got != s.IPC {
			t.Errorf("sample %d: IPC %v != committed/window %v", i, s.IPC, got)
		}
		if s.Cycle > resetCycle {
			afterReset += s.Committed
		}
	}
	// Every post-reset full window's commits are part of the final total;
	// only the unreported final partial window is missing.
	if total := st.TotalCommitted(); afterReset > total {
		t.Errorf("post-reset sample commits %d exceed the run total %d", afterReset, total)
	} else if afterReset == 0 {
		t.Error("no samples observed after the warm-up reset")
	}
}

// TestSamplerIntervalRounding: intervals round up to a power of two with a
// floor, and a finer window yields proportionally more samples (RunCtx
// raises the poll rate to match sub-default windows).
func TestSamplerIntervalRounding(t *testing.T) {
	const traceLen = 30000
	counts := map[int64]int{}
	for _, interval := range []int64{2048, 5000, 0} {
		p := sampleTestProcessor(t, traceLen)
		n := 0
		p.SetSampler(interval, func(metrics.Sample) { n++ })
		switch interval {
		case 5000: // rounds up to 8192
			if p.sampleEvery != 8192 {
				t.Fatalf("interval 5000 rounded to %d, want 8192", p.sampleEvery)
			}
		case 0: // default
			if p.sampleEvery != DefaultSampleInterval {
				t.Fatalf("interval 0 resolved to %d, want %d", p.sampleEvery, DefaultSampleInterval)
			}
		case 2048:
			if p.sampleEvery != 2048 {
				t.Fatalf("interval 2048 changed to %d", p.sampleEvery)
			}
		}
		if _, err := p.RunCtx(context.Background()); err != nil {
			t.Fatal(err)
		}
		counts[p.sampleEvery] = n
	}
	if counts[2048] <= counts[8192] {
		t.Errorf("2048-cycle windows produced %d samples vs %d at 8192; want more",
			counts[2048], counts[8192])
	}
}

// TestSamplerDoesNotPerturbStats: the identical run with and without a
// sampler attached must produce byte-identical statistics — sampling is
// observational.
func TestSamplerDoesNotPerturbStats(t *testing.T) {
	const traceLen = 20000
	plain := sampleTestProcessor(t, traceLen)
	stPlain, err := plain.RunCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sampled := sampleTestProcessor(t, traceLen)
	sampled.SetSampler(2048, func(metrics.Sample) {})
	stSampled, err := sampled.RunCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stPlain.String() != stSampled.String() || stPlain.Cycles != stSampled.Cycles {
		t.Errorf("sampling perturbed the run:\n  plain:   %s\n  sampled: %s", stPlain, stSampled)
	}
}
