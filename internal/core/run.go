package core

import (
	"context"

	"clustersmt/internal/isa"
	"clustersmt/internal/metrics"
	"clustersmt/internal/policy"
)

// processCompletions drains the event wheel bucket for the current cycle:
// destination registers become ready, branches resolve, miss-gated policies
// are released. Squashed entries are returned to the pool here.
func (p *Processor) processCompletions() {
	b := &p.wheel[p.now&p.wheelMask]
	e := b.head
	if e == nil {
		return
	}
	b.head, b.tail = nil, nil
	for e != nil {
		next := e.WheelNext
		e.WheelNext = nil
		e.InWheel = false
		if e.Squashed {
			p.putEntry(e)
			e = next
			continue
		}
		e.Completed = true
		if e.DstPhys >= 0 {
			p.rfs[e.Cluster].SetReady(e.DstKind, e.DstPhys)
		}
		if e.MissNotified {
			p.notifyMissEnd(e.Thread)
			e.MissNotified = false
		}
		if e.Uop.Class == isa.Branch {
			p.resolveBranch(e)
		}
		e = next
	}
}

// endCycle runs the per-cycle policy hooks and rotates arbitration.
func (p *Processor) endCycle() {
	for c := 0; c < p.cfg.NumClusters; c++ {
		for t := 0; t < p.cfg.NumThreads; t++ {
			p.stats.IQOccSum[c][t] += int64(p.iqs[c].Occupancy(t))
		}
	}
	p.rfPol.EndCycle(p)
	if co, ok := p.iqPol.(policy.CycleObserver); ok {
		co.EndCycle(p)
	}
	p.rrSelect = (p.rrSelect + 1) % p.cfg.NumThreads
}

// Step advances the machine one cycle.
func (p *Processor) Step() {
	p.processCompletions()
	p.handleFlushes()
	p.commit()
	p.issue()
	p.rename()
	p.fetch()
	p.endCycle()
	p.now++
}

// finished reports the run-termination condition: by default the run ends
// when the first thread drains (standard SMT methodology, avoiding a
// single-threaded tail); with RunToCompletion it ends when all drain.
func (p *Processor) finished() bool {
	if p.cfg.RunToCompletion {
		for _, ts := range p.threads {
			if !ts.finished() {
				return false
			}
		}
		return true
	}
	for _, ts := range p.threads {
		if ts.finished() {
			return true
		}
	}
	return false
}

// warmupDone reports whether the machine has committed WarmupUops per
// thread in aggregate. The threshold is aggregate rather than per-thread so
// that a strongly asymmetric pair (a fast thread sharing with a crawling
// memory-bound one) still finishes warming before the run ends.
func (p *Processor) warmupDone() bool {
	var total uint64
	for _, ts := range p.threads {
		total += ts.committed
	}
	return total >= p.cfg.WarmupUops*uint64(len(p.threads))
}

// resetStats discards statistics collected so far (end of warm-up); all
// microarchitectural state (caches, predictor, occupancy) is preserved.
func (p *Processor) resetStats() {
	p.stats = metrics.NewStats(p.cfg.NumThreads, p.cfg.NumClusters)
	p.statsCycleBase = p.now
	p.statsFwdBase = p.mobq.Forwards()
}

// cancelCheckInterval is how many cycles RunCtx simulates between context
// polls. Checking a channel every cycle would be measurable in the hot
// loop; at 8192 cycles the overhead is noise while cancellation still lands
// within a fraction of a millisecond of wall time.
const cancelCheckInterval = 8192

// Run simulates until a thread finishes its trace (or all threads, with
// RunToCompletion) or MaxCycles elapse, and returns the statistics.
func (p *Processor) Run() *metrics.Stats {
	st, _ := p.RunCtx(context.Background())
	return st
}

// RunCtx is Run with cooperative cancellation: the context is polled every
// cancelCheckInterval cycles, and a cancelled run stops mid-simulation and
// returns the context's error alongside the (partial, unusable for
// reporting) statistics. This is the stop path a campaign DELETE propagates
// down through experiments.Runner.
func (p *Processor) RunCtx(ctx context.Context) (*metrics.Stats, error) {
	warming := p.cfg.WarmupUops > 0
	for p.now < p.cfg.MaxCycles && !p.finished() {
		p.Step()
		if warming && p.warmupDone() {
			warming = false
			p.resetStats()
		}
		if p.now%cancelCheckInterval == 0 {
			select {
			case <-ctx.Done():
				return p.stats, ctx.Err()
			default:
			}
		}
	}
	p.stats.Cycles = p.now - p.statsCycleBase
	p.stats.StoreForwards = p.mobq.Forwards() - p.statsFwdBase
	if p.cfg.WarmupUops > 0 {
		for t, ts := range p.threads {
			if ts.warmCycle >= 0 && p.now > ts.warmCycle {
				p.stats.ThreadWindowCycles[t] = p.now - ts.warmCycle
				p.stats.ThreadWindowCommitted[t] = ts.committed - ts.warmCommitted
			}
		}
	}
	return p.stats, nil
}

// Done reports whether the run-termination condition holds.
func (p *Processor) Done() bool { return p.finished() }
