package core

import (
	"context"

	"clustersmt/internal/isa"
	"clustersmt/internal/metrics"
	"clustersmt/internal/policy"
)

// processCompletions drains the event wheel bucket for the current cycle:
// destination registers become ready, branches resolve, miss-gated policies
// are released. Squashed entries are returned to the pool here.
//
//smtlint:noalloc
func (p *Processor) processCompletions() {
	b := &p.wheel[p.now&p.wheelMask]
	e := b.head
	if e == nil {
		return
	}
	b.head, b.tail = nil, nil
	for e != nil {
		next := e.WheelNext
		e.WheelNext = nil
		e.InWheel = false
		if e.Squashed {
			p.putEntry(e)
			e = next
			continue
		}
		e.Completed = true
		if e.DstPhys >= 0 {
			p.rfs[e.Cluster].SetReady(e.DstKind, e.DstPhys)
		}
		if e.MissNotified {
			p.notifyMissEnd(e.Thread)
			e.MissNotified = false
		}
		if e.Uop.Class == isa.Branch {
			p.resolveBranch(e)
		}
		e = next
	}
}

// endCycle runs the per-cycle policy hooks and rotates arbitration.
//
//smtlint:noalloc
func (p *Processor) endCycle() {
	for c := 0; c < p.cfg.NumClusters; c++ {
		for t := 0; t < p.cfg.NumThreads; t++ {
			p.stats.IQOccSum[c][t] += int64(p.iqs[c].Occupancy(t))
		}
	}
	p.rfPol.EndCycle(p)
	if co, ok := p.iqPol.(policy.CycleObserver); ok {
		co.EndCycle(p)
	}
	p.rrSelect = (p.rrSelect + 1) % p.cfg.NumThreads
}

// Step advances the machine one cycle.
//
//smtlint:noalloc
func (p *Processor) Step() {
	p.processCompletions()
	p.handleFlushes()
	p.commit()
	p.issue()
	p.rename()
	p.fetch()
	p.endCycle()
	p.now++
}

// finished reports the run-termination condition: by default the run ends
// when the first thread drains (standard SMT methodology, avoiding a
// single-threaded tail); with RunToCompletion it ends when all drain.
//
//smtlint:noalloc
func (p *Processor) finished() bool {
	if p.cfg.RunToCompletion {
		for _, ts := range p.threads {
			if !ts.finished() {
				return false
			}
		}
		return true
	}
	for _, ts := range p.threads {
		if ts.finished() {
			return true
		}
	}
	return false
}

// warmupDone reports whether the machine has committed WarmupUops per
// thread in aggregate. The threshold is aggregate rather than per-thread so
// that a strongly asymmetric pair (a fast thread sharing with a crawling
// memory-bound one) still finishes warming before the run ends.
//
//smtlint:noalloc
func (p *Processor) warmupDone() bool {
	var total uint64
	for _, ts := range p.threads {
		total += ts.committed
	}
	return total >= p.cfg.WarmupUops*uint64(len(p.threads))
}

// resetStats discards statistics collected so far (end of warm-up); all
// microarchitectural state (caches, predictor, occupancy) is preserved.
func (p *Processor) resetStats() {
	p.stats = metrics.NewStats(p.cfg.NumThreads, p.cfg.NumClusters)
	p.statsCycleBase = p.now
	p.statsFwdBase = p.mobq.Forwards()
	p.rebaseSample()
}

// cancelCheckInterval is how many cycles RunCtx simulates between context
// polls. Checking a channel every cycle would be measurable in the hot
// loop; at 8192 cycles the overhead is noise while cancellation still lands
// within a fraction of a millisecond of wall time.
const cancelCheckInterval = 8192

// Observability sampling rides the same poll point: SetSampler attaches an
// observer that receives one metrics.Sample per closed interval, computed
// from plain counter deltas against a processor-owned snapshot — no heap
// traffic, so the steady-state zero-allocation property of the cycle loop
// holds with sampling enabled (gated by TestSteadyStateZeroAlloc).
const (
	// DefaultSampleInterval is the sampling window used when SetSampler is
	// given a non-positive interval: the ctx-poll cadence itself.
	DefaultSampleInterval = cancelCheckInterval
	// minSampleInterval bounds how fine the window can get; below the poll
	// cadence RunCtx polls more often, and below this the per-cycle check
	// overhead would stop being noise.
	minSampleInterval = 1024
)

// sampleBase snapshots the counters a Sample is a delta against.
type sampleBase struct {
	cycle          int64
	committed      uint64
	copies         uint64
	iqOccSum       int64
	l1Miss, l2Miss uint64
}

// SetSampler attaches a time-series observer: fn receives one
// metrics.Sample per interval cycles of simulation (rounded up to a power
// of two, at least 1024; non-positive selects DefaultSampleInterval).
// Call it before Run/RunCtx; a nil fn detaches. The callback runs on the
// simulating goroutine between cycles — it must not retain the machine and
// should return quickly. Sampling is purely observational: it reads
// counters the run maintains anyway, so simulated outcomes (and
// content-addressed result keys) are unaffected.
func (p *Processor) SetSampler(interval int64, fn func(metrics.Sample)) {
	if fn == nil {
		p.sampleFn = nil
		return
	}
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	every := int64(minSampleInterval)
	for every < interval {
		every <<= 1
	}
	p.sampleFn = fn
	p.sampleEvery = every
	p.rebaseSample()
}

// sampleCounters reads the counter totals a sample windows over.
//
//smtlint:noalloc
func (p *Processor) sampleCounters() sampleBase {
	var committed uint64
	for _, c := range p.stats.Committed {
		committed += c
	}
	var occ int64
	for _, row := range p.stats.IQOccSum {
		for _, v := range row {
			occ += v
		}
	}
	cs := p.mem.Stats()
	return sampleBase{
		cycle:     p.now,
		committed: committed,
		copies:    p.stats.CopyTransfers,
		iqOccSum:  occ,
		l1Miss:    cs.L1Misses,
		l2Miss:    cs.L2Misses,
	}
}

// rebaseSample restarts the current window at the present cycle. Called
// when the sampler attaches and at the warm-up stats reset (the stats
// counters drop to zero there, so a window spanning the reset would go
// negative).
//
//smtlint:noalloc
func (p *Processor) rebaseSample() {
	if p.sampleFn != nil {
		p.sampleBase = p.sampleCounters()
	}
}

// maybeSample closes the current observation window if it is due. Invoked
// at the RunCtx poll point; allocation-free.
//
//smtlint:noalloc
func (p *Processor) maybeSample() {
	if p.sampleFn == nil || p.now-p.sampleBase.cycle < p.sampleEvery {
		return
	}
	cur := p.sampleCounters()
	window := cur.cycle - p.sampleBase.cycle
	s := metrics.Sample{
		Cycle:     cur.cycle,
		Window:    window,
		Committed: cur.committed - p.sampleBase.committed,
		Copies:    cur.copies - p.sampleBase.copies,
		L1Misses:  cur.l1Miss - p.sampleBase.l1Miss,
		L2Misses:  cur.l2Miss - p.sampleBase.l2Miss,
	}
	s.IPC = float64(s.Committed) / float64(window)
	s.IQOcc = float64(cur.iqOccSum-p.sampleBase.iqOccSum) / float64(window)
	p.sampleBase = cur
	//smtlint:allow sampler attach point; a cold, caller-supplied observer
	p.sampleFn(s)
}

// Run simulates until a thread finishes its trace (or all threads, with
// RunToCompletion) or MaxCycles elapse, and returns the statistics.
func (p *Processor) Run() *metrics.Stats {
	st, _ := p.RunCtx(context.Background())
	return st
}

// RunCtx is Run with cooperative cancellation: the context is polled every
// cancelCheckInterval cycles, and a cancelled run stops mid-simulation and
// returns the context's error alongside the (partial, unusable for
// reporting) statistics. This is the stop path a campaign DELETE propagates
// down through experiments.Runner.
func (p *Processor) RunCtx(ctx context.Context) (*metrics.Stats, error) {
	warming := p.cfg.WarmupUops > 0
	// Sampling windows finer than the default poll cadence raise the poll
	// rate to match; both are powers of two, so the check stays a mask.
	pollMask := int64(cancelCheckInterval - 1)
	if p.sampleFn != nil && p.sampleEvery < cancelCheckInterval {
		pollMask = p.sampleEvery - 1
	}
	for p.now < p.cfg.MaxCycles && !p.finished() {
		p.Step()
		if warming && p.warmupDone() {
			warming = false
			p.resetStats()
		}
		if p.now&pollMask == 0 {
			p.maybeSample()
			select {
			case <-ctx.Done():
				return p.stats, ctx.Err()
			default:
			}
		}
	}
	p.stats.Cycles = p.now - p.statsCycleBase
	p.stats.StoreForwards = p.mobq.Forwards() - p.statsFwdBase
	if p.cfg.WarmupUops > 0 {
		for t, ts := range p.threads {
			if ts.warmCycle >= 0 && p.now > ts.warmCycle {
				p.stats.ThreadWindowCycles[t] = p.now - ts.warmCycle
				p.stats.ThreadWindowCommitted[t] = ts.committed - ts.warmCommitted
			}
		}
	}
	return p.stats, nil
}

// Done reports whether the run-termination condition holds.
func (p *Processor) Done() bool { return p.finished() }
