// Package core implements the cycle-level model of the paper's baseline
// machine (§3, Table 1): a monolithic SMT front-end (fetch, per-thread
// queues, one-thread-per-cycle rename) feeding a clustered back-end
// (issue queues, per-kind register files, three issue ports per cluster;
// Table 1 has two clusters, Config.NumClusters sweeps 1–4) through
// dependence/workload steering with on-demand inter-cluster copies, over a
// shared MOB and L1/L2/memory hierarchy. See DESIGN.md §1 for the cycle
// walkthrough and §5 for the design choices.
//
// The resource assignment schemes under study plug in as policy.Selector
// (rename thread selection), policy.IQPolicy (issue-queue occupancy caps)
// and policy.RFPolicy (register occupancy caps); see package policy.
package core

import (
	"fmt"

	"clustersmt/internal/bpred"
	"clustersmt/internal/cachesim"
	"clustersmt/internal/interconnect"
)

// MaxClusters is the largest supported back-end cluster count. Validate
// enforces it, and every fixed-size per-cluster scratch array in the
// processor is sized from it — widen it here and everything follows.
const MaxClusters = 4

// Config is the machine configuration. DefaultConfig returns Table 1.
type Config struct {
	// NumClusters is the number of back-end clusters (paper: 2).
	NumClusters int
	// NumThreads is the number of hardware threads.
	NumThreads int

	// FetchWidth is uops fetched per cycle from the selected thread.
	FetchWidth int
	// RenameWidth is uops renamed per cycle from the selected thread.
	RenameWidth int
	// CommitWidth is total uops committed per cycle.
	CommitWidth int
	// FetchQueueCap is the per-thread private fetch queue depth.
	FetchQueueCap int
	// MispredictPenalty is the front-end refill depth after a redirect
	// (Table 1: misprediction pipeline of 14 stages).
	MispredictPenalty int

	// ROBPerThread is the per-thread ROB section size; 0 = unbounded
	// (the §5.1 issue-queue study unbounds ROB and RF).
	ROBPerThread int
	// IQSize is the per-cluster issue-queue capacity (32 or 64).
	IQSize int
	// IntRegsPerCluster and FpRegsPerCluster size the per-cluster
	// physical register files; 0 = unbounded.
	IntRegsPerCluster int
	FpRegsPerCluster  int
	// MOBSize is the shared memory-order-buffer capacity.
	MOBSize int

	// SteerSlack is the workload-balance override slack of the steering
	// logic (issue-queue entries of imbalance tolerated before the
	// balance term overrides dependence).
	SteerSlack int

	// Cache configures the memory hierarchy.
	Cache cachesim.Config
	// BPred configures the branch predictor (NumThreads is overridden).
	BPred bpred.Config
	// Net configures the inter-cluster links.
	Net interconnect.Config

	// WarmupUops discards statistics until every thread has committed
	// this many uops (caches and predictors keep their state), the usual
	// warm-up methodology for trace-driven simulation. 0 disables.
	WarmupUops uint64

	// PollingWakeup reverts the issue stage to the pre-event-driven
	// behavior: every cycle, scan the whole issue queue and re-test every
	// waiting entry's sources against the register ready bits. The default
	// (false) selects event-driven wakeup, which produces bit-for-bit
	// identical results; the flag exists for the ablation benchmark and the
	// equivalence tests.
	PollingWakeup bool

	// MaxCycles bounds a run (safety net; 0 selects a large default).
	MaxCycles int64
	// RunToCompletion makes Run continue until every thread finishes its
	// trace; by default the run stops when the first thread finishes
	// (standard SMT methodology, avoiding a single-threaded tail).
	RunToCompletion bool
}

// DefaultConfig returns the Table 1 baseline for n threads: 32-entry issue
// queues and 64+64 registers per cluster (the smaller of each studied
// range), which §5 uses as the main configuration.
func DefaultConfig(n int) Config {
	return Config{
		NumClusters:       2,
		NumThreads:        n,
		FetchWidth:        6,
		RenameWidth:       6,
		CommitWidth:       6,
		FetchQueueCap:     32,
		MispredictPenalty: 14,
		ROBPerThread:      128,
		IQSize:            32,
		IntRegsPerCluster: 64,
		FpRegsPerCluster:  64,
		MOBSize:           128,
		SteerSlack:        6,
		Cache:             cachesim.DefaultConfig(),
		BPred:             bpred.DefaultConfig(n),
		Net:               interconnect.DefaultConfig(),
		MaxCycles:         50_000_000,
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.NumClusters < 1 || c.NumClusters > MaxClusters {
		return fmt.Errorf("core: NumClusters=%d outside [1,%d]", c.NumClusters, MaxClusters)
	}
	if c.NumThreads < 1 {
		return fmt.Errorf("core: NumThreads=%d < 1", c.NumThreads)
	}
	if c.FetchWidth < 1 || c.RenameWidth < 1 || c.CommitWidth < 1 {
		return fmt.Errorf("core: widths must be >= 1")
	}
	if c.IQSize < 4 {
		return fmt.Errorf("core: IQSize=%d too small", c.IQSize)
	}
	if c.MOBSize < 2 {
		return fmt.Errorf("core: MOBSize=%d too small", c.MOBSize)
	}
	if c.ROBPerThread < 0 || c.IntRegsPerCluster < 0 || c.FpRegsPerCluster < 0 {
		return fmt.Errorf("core: negative capacity")
	}
	if c.MispredictPenalty < 0 {
		return fmt.Errorf("core: negative mispredict penalty")
	}
	if span := c.WorstCaseLatency(); span+wheelHeadroom > maxWheelSize {
		mem := c.Cache.WithDefaults()
		return fmt.Errorf("core: worst-case completion latency %d cycles (DTLB=%d L1=%d L2=%d Mem=%d link=%d) exceeds the %d-cycle event-wheel capacity; lower MemLatency or the other latencies",
			span, mem.DTLBMissCycles, mem.L1Latency, mem.L2Latency, mem.MemLatency,
			c.Net.WithDefaults().Latency, maxWheelSize)
	}
	return nil
}

// WorstCaseLatency returns the largest issue-to-completion distance, in
// cycles, any single uop can be scheduled at under this configuration: a
// load that coalesces with an in-flight memory fill (which itself paid a
// DTLB miss plus the full L1+L2+memory chain) while taking its own DTLB
// miss, plus address generation. The completion wheel is sized from it; no
// reachable schedule() call may exceed it.
func (c *Config) WorstCaseLatency() int {
	mem := c.Cache.WithDefaults()
	net := c.Net.WithDefaults()
	memPath := 2*mem.DTLBMissCycles + mem.L1Latency + mem.L2Latency + mem.MemLatency + 1
	worst := memPath
	if net.Latency > worst {
		worst = net.Latency
	}
	if maxExecLatency > worst {
		worst = maxExecLatency
	}
	return worst
}

// withDefaults fills derived/zero fields.
func (c Config) withDefaults() Config {
	if c.MaxCycles <= 0 {
		c.MaxCycles = 50_000_000
	}
	if c.FetchQueueCap <= 0 {
		c.FetchQueueCap = 32
	}
	c.BPred.NumThreads = c.NumThreads
	return c
}
