package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"clustersmt/internal/policy"
	"clustersmt/internal/trace"
	"clustersmt/internal/workload"
)

var updateLayoutGolden = flag.Bool("update-layout-golden", false,
	"regenerate testdata/layout_golden.json from the current implementation")

// layoutFingerprint runs scheme on w under cfg mutations and returns a
// SHA-256 over the complete run statistics plus the memory-hierarchy
// counters. Any behavioral drift in the IQ/ROB/MSHR/wheel storage layouts —
// not just the headline numbers — changes the hash.
func layoutFingerprint(t *testing.T, wname, scheme string, n int, mut func(*Config)) string {
	t.Helper()
	w, err := workload.Find(wname)
	if err != nil {
		t.Fatal(err)
	}
	var progs []ThreadProgram
	for i, prof := range w.Threads {
		g := trace.NewGenerator(prof, w.Seeds[i])
		progs = append(progs, ThreadProgram{Trace: g.Generate(n), Profile: prof, Seed: w.Seeds[i]})
	}
	cfg := DefaultConfig(len(progs))
	if mut != nil {
		mut(&cfg)
	}
	p, err := NewScheme(cfg, scheme, progs)
	if err != nil {
		t.Fatalf("NewScheme(%s): %v", scheme, err)
	}
	st := p.Run()
	blob, err := json.Marshal(struct {
		Stats any
		Mem   any
	}{st, p.Mem().Stats()})
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}

// layoutCases enumerates the pinned runs: all 12 named schemes on a fixed
// workload at Table 1 defaults, plus shape variants that stress the
// structures this PR re-laid out (bounded/unbounded ROB ring, tight MOB,
// tiny MSHR table, grown wheel).
func layoutCases() []struct{ name, workload, scheme string } {
	var cases []struct{ name, workload, scheme string }
	names := policy.Names()
	sort.Strings(names)
	for _, s := range names {
		cases = append(cases, struct{ name, workload, scheme string }{
			"scheme/" + s, "ispec00.mix.2.1", s,
		})
	}
	return cases
}

// TestLayoutGolden pins bit-identical statistics for every named scheme
// across the PR's memory-layout overhaul (value ROB ring, MOB arena,
// fixed-slot MSHR table, pooled wheel buckets). The golden file was captured
// from the pre-overhaul pointer-based layouts; the optimized layouts must
// reproduce every hash exactly. Regenerate (only when behavior is *supposed*
// to change, alongside a SimVersion bump) with:
//
//	go test ./internal/core -run TestLayoutGolden -update-layout-golden
func TestLayoutGolden(t *testing.T) {
	const traceLen = 6000
	path := filepath.Join("testdata", "layout_golden.json")

	got := map[string]string{}
	for _, tc := range layoutCases() {
		got[tc.name] = layoutFingerprint(t, tc.workload, tc.scheme, traceLen, nil)
	}
	// Shape variants: stress each refactored structure.
	got["shape/tight-mob"] = layoutFingerprint(t, "server.mem.2.1", "icount", traceLen, func(c *Config) {
		c.MOBSize = 24
	})
	got["shape/tiny-mshr"] = layoutFingerprint(t, "server.mem.2.1", "cssp", traceLen, func(c *Config) {
		c.Cache.MSHRs = 2
	})
	got["shape/unbounded-rob"] = layoutFingerprint(t, "ispec00.mix.2.1", "cssp", traceLen, func(c *Config) {
		c.ROBPerThread = 0
		c.IntRegsPerCluster = 0
		c.FpRegsPerCluster = 0
	})
	got["shape/big-rob"] = layoutFingerprint(t, "fspec00.mix.2.1", "cdprf", traceLen, func(c *Config) {
		c.ROBPerThread = 512
	})
	got["shape/slow-memory"] = layoutFingerprint(t, "ispec00.mix.2.1", "icount", traceLen, func(c *Config) {
		c.Cache.MemLatency = 400 // grown completion wheel
	})
	got["shape/four-clusters"] = layoutFingerprint(t, "server.mix.2.1", "cdprf", traceLen, func(c *Config) {
		c.NumClusters = 4
	})

	if *updateLayoutGolden {
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d fingerprints to %s", len(got), path)
		return
	}

	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update-layout-golden): %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Errorf("golden has %d fingerprints, test produced %d", len(want), len(got))
	}
	for name, wh := range want {
		if gh, ok := got[name]; !ok {
			t.Errorf("%s: case missing from test", name)
		} else if gh != wh {
			t.Errorf("%s: stats fingerprint drifted from the pinned layout-equivalence golden\n got %s\nwant %s", name, gh, wh)
		}
	}
}
