package core

import (
	"clustersmt/internal/frontend"
	"clustersmt/internal/isa"
)

// commitEntry retires e: frees the previous mappings of its destination
// logical register, releases its MOB entry and returns it to the pool.
//
//smtlint:noalloc
func (p *Processor) commitEntry(t int, e *frontend.ROBEntry) {
	if e.WrongPath {
		panic("core: wrong-path uop reached commit")
	}
	if e.DstPhys >= 0 && !e.IsCopy() {
		// An architectural definition kills every older physical copy of
		// the logical register (in any cluster), including copies made by
		// inter-cluster copy uops; they are dead once this writer retires.
		for c := 0; c < p.cfg.NumClusters; c++ {
			if e.OldMap.Valid[c] {
				p.rfs[c].Free(e.DstKind, t, e.OldMap.Phys[c])
			}
		}
	}
	if e.MOBEntry != nil {
		p.mobq.Release(e.MOBEntry)
		e.MOBEntry = nil
	}
	if e.IsCopy() {
		p.stats.CommittedCopies++
	} else {
		ts := p.threads[t]
		ts.committed++
		p.stats.Committed[t]++
		if ts.warmCycle < 0 && ts.committed >= p.cfg.WarmupUops {
			ts.warmCycle = p.now
			ts.warmCommitted = ts.committed
		}
	}
	p.putEntry(e)
}

// commit retires up to CommitWidth completed uops in program order per
// thread, rotating which thread drains first each cycle.
//
//smtlint:noalloc
func (p *Processor) commit() {
	n := p.cfg.NumThreads
	budget := p.cfg.CommitWidth
	start := p.rrCommit
	p.rrCommit = (p.rrCommit + 1) % n
	for i := 0; i < n && budget > 0; i++ {
		t := wrapIdx(start+i, n)
		ts := p.threads[t]
		for budget > 0 {
			e := ts.rob.Head()
			if e == nil || !e.Completed {
				break
			}
			if e.Uop.Class == isa.Store {
				// Stores write the cache at retirement through the L1
				// write ports; port exhaustion delays younger commits.
				if !p.mem.TryWritePort(p.now) {
					break
				}
				if debugPre != nil {
					//smtlint:allow debug hook; compiled out unless debugging
					debugPre("store", e.Uop.Addr, false, p.mem.ProbeL2(e.Uop.Addr), p.now)
				}
				p.mem.Access(e.Uop.Addr, p.now)
			}
			ts.rob.PopHead()
			p.commitEntry(t, e)
			budget--
		}
	}
}
