package core

import (
	"testing"

	"clustersmt/internal/metrics"
	"clustersmt/internal/trace"
	"clustersmt/internal/workload"
)

// TestSteadyStateZeroAlloc pins the PR's headline property: once the machine
// is warm (entry pool populated, waiter lists and wheel buckets at their
// high-water marks), the cycle loop runs allocation-free. Any append-growth
// or per-event heap traffic reintroduced into the issue/wakeup/commit/memory
// paths fails here long before it shows up in a profile.
func TestSteadyStateZeroAlloc(t *testing.T) {
	w, err := workload.Find("ispec00.mix.2.1")
	if err != nil {
		t.Fatal(err)
	}
	const traceLen = 400000
	var progs []ThreadProgram
	for i, prof := range w.Threads {
		g := trace.NewGenerator(prof, w.Seeds[i])
		progs = append(progs, ThreadProgram{Trace: g.Generate(traceLen), Profile: prof, Seed: w.Seeds[i]})
	}
	p, err := NewScheme(DefaultConfig(2), "cdprf", progs)
	if err != nil {
		t.Fatal(err)
	}

	// Sampling rides the cycle loop's poll point and must preserve the
	// zero-allocation property at the default window: the observer below
	// only stores into a pre-existing variable, so any allocation the
	// measurement sees comes from the sampling machinery itself.
	var lastSample metrics.Sample
	p.SetSampler(DefaultSampleInterval, func(s metrics.Sample) { lastSample = s })

	// Warm up: long enough for every pooled structure to reach its
	// high-water mark (the wakeup waiter lists are the slowest to converge).
	for i := 0; i < 30000; i++ {
		p.Step()
	}
	if p.Done() {
		t.Fatal("machine drained during warm-up; lengthen the traces")
	}

	const window = 2000
	avg := testing.AllocsPerRun(5, func() {
		for i := 0; i < window; i++ {
			p.Step()
			// The same poll-point cadence RunCtx uses, so sample windows
			// actually close inside the measured region.
			if p.now%cancelCheckInterval == 0 {
				p.maybeSample()
			}
		}
	})
	if lastSample.Window == 0 {
		t.Fatal("no sample window closed during measurement; the zero-alloc gate did not exercise sampling")
	}
	if p.Done() {
		t.Fatal("machine drained during measurement; lengthen the traces")
	}
	if avg != 0 {
		t.Errorf("steady-state cycle loop allocates: %.2f allocs per %d cycles, want 0", avg, window)
	}
}
