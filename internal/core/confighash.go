package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
)

// SimVersion stamps simulation results with the simulator's behavioral
// revision. It participates in every content-addressed result key (see
// experiments.Runner.CacheKey), so bumping it invalidates all persisted
// results. Bump it whenever a change alters simulated outcomes — new
// timing model, policy fix, trace-generation change — and leave it alone
// for pure refactors (the event-driven wakeup, for instance, is
// bit-for-bit identical to polling and shares a version).
const SimVersion = "smtsim-2"

// Canonical returns the canonical serialized form of the configuration:
// defaults filled in, fields emitted in declaration order. Two configs with
// equal canonical forms run identical simulations (for the same scheme and
// programs), which is what makes the form safe to hash as a cache key.
func (c Config) Canonical() ([]byte, error) {
	return json.Marshal(c.withDefaults())
}

// Hash returns the hex SHA-256 of the canonical form.
func (c Config) Hash() (string, error) {
	b, err := c.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
