package core

import (
	"fmt"

	"clustersmt/internal/cachesim"
	"clustersmt/internal/frontend"
	"clustersmt/internal/isa"
	"clustersmt/internal/metrics"
)

// debugMiss, when set by a test, observes every load L2 miss.
var debugMiss func(addr uint64, wrongPath bool, now int64)

// debugPre, when set by a test, observes every memory access before it runs.
var debugPre func(kind string, addr uint64, wrongPath bool, inL2 bool, now int64)

// imbClass maps a uop class onto the Fig. 5 grouping.
//
//smtlint:noalloc
func imbClass(c isa.Class) metrics.ImbClass {
	switch c {
	case isa.Fp:
		return metrics.ImbFp
	case isa.Load, isa.Store:
		return metrics.ImbMem
	default:
		return metrics.ImbInt
	}
}

// imbRep is a representative class per imbalance group, used to test port
// availability in the other cluster.
//
//smtlint:noalloc
func imbRep(c metrics.ImbClass) isa.Class {
	switch c {
	case metrics.ImbFp:
		return isa.Fp
	case metrics.ImbMem:
		return isa.Load
	default:
		return isa.Int
	}
}

// entryReady reports whether all source operands of e are data-ready.
//
//smtlint:noalloc
func (p *Processor) entryReady(e *frontend.ROBEntry) bool {
	if e.IsCopy() {
		return e.CopySrcPhys < 0 || p.rfs[e.SrcCluster].IsReady(e.DstKind, e.CopySrcPhys)
	}
	for i := 0; i < e.NumSrc; i++ {
		if ph := e.SrcPhys[i]; ph >= 0 && !p.rfs[e.Cluster].IsReady(e.SrcKind[i], ph) {
			return false
		}
	}
	return true
}

// schedule enqueues e's completion at cycle at.
//
//smtlint:noalloc
func (p *Processor) schedule(e *frontend.ROBEntry, at int64) {
	if at <= p.now {
		at = p.now + 1
	}
	if at-p.now > p.wheelMask {
		// The wheel is sized from Config.WorstCaseLatency and Validate
		// rejects configurations that cannot fit; reaching this means the
		// worst-case formula missed a latency path. Clamping here would
		// silently complete the uop early and corrupt results, so fail loud.
		panic(fmt.Sprintf("core: completion %d cycles ahead exceeds the %d-slot event wheel (WorstCaseLatency undercounts a path)",
			at-p.now, p.wheelMask+1))
	}
	e.InWheel = true
	e.WheelNext = nil
	b := &p.wheel[at&p.wheelMask]
	if b.tail != nil {
		b.tail.WheelNext = e
	} else {
		b.head = e
	}
	b.tail = e
}

// executeLoad performs the memory access of a ready load at issue time and
// returns its completion cycle.
//
//smtlint:noalloc
func (p *Processor) executeLoad(e *frontend.ROBEntry) int64 {
	u := &e.Uop
	p.mobq.Resolve(e.MOBEntry, u.Addr)
	if p.mobq.Forward(e.Thread, e.Seq, u.Addr) {
		// Store-to-load forwarding: AGU + one bypass cycle.
		return p.now + 2
	}
	if debugPre != nil {
		//smtlint:allow debug hook; compiled out unless debugging
		debugPre("load", u.Addr, e.WrongPath, p.mem.ProbeL2(u.Addr), p.now)
	}
	res := p.mem.Access(u.Addr, p.now)
	if res.Level == cachesim.MemHit {
		if debugMiss != nil {
			//smtlint:allow debug hook; compiled out unless debugging
			debugMiss(u.Addr, e.WrongPath, p.now)
		}
		e.MissedL2 = true
		e.MissNotified = true
		if !e.WrongPath {
			p.stats.L2Misses++
		}
		p.notifyMissStart(e.Thread, e.Seq)
	}
	return res.DoneAt + 1 // +1 for address generation
}

// issueCluster selects and dispatches ready uops from cluster c, oldest
// first, respecting port, L1-port, MSHR and link constraints. It records
// ready-but-unissued uops in the leftover matrix for the Fig. 5 metric.
//
//smtlint:noalloc
func (p *Processor) issueCluster(c int) (issuedAny bool) {
	ready := p.scratchReady[:0]
	if p.cfg.PollingWakeup {
		// Ablation/verification path: the pre-event-driven full scan,
		// re-testing every waiting entry's sources every cycle.
		p.iqs[c].Scan(func(e *frontend.ROBEntry, _ int) bool {
			if p.entryReady(e) {
				//smtlint:allow scratch retained on the processor; amortized zero-alloc after warmup
				ready = append(ready, e)
			}
			return true
		})
	} else {
		p.iqs[c].ScanReady(func(e *frontend.ROBEntry) bool {
			//smtlint:allow scratch retained on the processor; amortized zero-alloc after warmup
			ready = append(ready, e)
			return true
		})
		if debugWakeup {
			//smtlint:allow debug-only cross-check behind the debugWakeup flag
			p.checkReadyList(c, ready)
		}
	}
	p.scratchReady = ready[:0]

	for _, e := range ready {
		u := &e.Uop
		if e.IsCopy() {
			arrive, ok := p.net.TryTransfer(p.now)
			if !ok {
				continue // link bandwidth exhausted this cycle
			}
			e.Issued = true
			p.iqs[c].RemoveAt(e.IQSlot, e)
			e.IQSlot = -1
			p.schedule(e, arrive)
			p.stats.CopyTransfers++
			issuedAny = true
			continue
		}
		if !p.ports[c].HasFree(u.Class) {
			p.scratchLeftover[imbClass(u.Class)][c] = true
			continue
		}
		var doneAt int64
		switch u.Class {
		case isa.Load:
			// The L1 ports and MSHRs are shared between clusters; a load
			// held up by them is not a cluster-imbalance event.
			if !p.mem.MSHRAvailable(p.now) || !p.mem.TryReadPort(p.now) {
				continue
			}
			doneAt = p.executeLoad(e)
		case isa.Store:
			p.mobq.Resolve(e.MOBEntry, u.Addr)
			doneAt = p.now + int64(isa.Latency(u.Class))
		default:
			doneAt = p.now + int64(isa.Latency(u.Class))
		}
		if _, ok := p.ports[c].TryIssue(u.Class); !ok {
			panic("core: port grant failed after HasFree")
		}
		e.Issued = true
		p.iqs[c].RemoveAt(e.IQSlot, e)
		e.IQSlot = -1
		p.schedule(e, doneAt)
		p.stats.IssuedUops++
		issuedAny = true
	}
	return issuedAny
}

// issue runs the per-cluster select/dispatch and accumulates the Fig. 5
// workload-imbalance histogram.
//
//smtlint:noalloc
func (p *Processor) issue() {
	for c := range p.ports {
		p.ports[c].Reset()
	}
	p.scratchLeftover = [metrics.NumImbClasses][MaxClusters]bool{}
	issuedAny := false
	// Alternate which cluster selects first so neither has a standing
	// advantage at the shared L1 ports and links.
	start := int(p.now) % p.cfg.NumClusters
	for i := 0; i < p.cfg.NumClusters; i++ {
		if p.issueCluster(wrapIdx(start+i, p.cfg.NumClusters)) {
			issuedAny = true
		}
	}
	if issuedAny {
		p.stats.IssueCycles++
	}
	if p.cfg.NumClusters < 2 {
		return
	}
	for k := 0; k < metrics.NumImbClasses; k++ {
		present := false
		couldElsewhere := false
		for c := 0; c < p.cfg.NumClusters; c++ {
			if !p.scratchLeftover[k][c] {
				continue
			}
			present = true
			for o := 0; o < p.cfg.NumClusters; o++ {
				if o != c && p.ports[o].HasFree(imbRep(metrics.ImbClass(k))) {
					couldElsewhere = true
				}
			}
		}
		if !present {
			continue
		}
		if couldElsewhere {
			p.stats.Imbalance[k][1]++
		} else {
			p.stats.Imbalance[k][0]++
		}
	}
}
