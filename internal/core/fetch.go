package core

import (
	"clustersmt/internal/frontend"
	"clustersmt/internal/isa"
)

// canFetch reports whether thread t can fetch anything this cycle. The
// selector's eligibility also gates fetch: Stall and Flush+ stop fetching
// a thread with a pending L2 miss (refs [19], [25]), freeing the fetch
// bandwidth for the other threads.
//
//smtlint:noalloc
func (p *Processor) canFetch(t int) bool {
	ts := p.threads[t]
	if p.now < ts.fetchStallUntil {
		return false
	}
	if ts.fq.Free() == 0 {
		return false
	}
	if !p.sel.Eligible(t, p) {
		return false
	}
	return ts.wrongPath || !ts.traceDone()
}

// fetch implements the fetch stage: the fetch selection policy always
// fetches from the fetchable thread with the fewest uops in its private
// queue (§3), up to FetchWidth uops. A predicted-wrong branch switches the
// thread to wrong-path fetch until the branch resolves.
//
//smtlint:noalloc
func (p *Processor) fetch() {
	pick := -1
	best := 1 << 30
	n := p.cfg.NumThreads
	for i := 0; i < n; i++ {
		t := wrapIdx(p.rrSelect+i, n)
		if !p.canFetch(t) {
			continue
		}
		if l := p.threads[t].fq.Len(); l < best {
			best = l
			pick = t
		}
	}
	if pick < 0 {
		return
	}
	ts := p.threads[pick]
	fetched := 0
	for fetched < p.cfg.FetchWidth && ts.fq.Free() > 0 {
		if ts.wrongPath {
			u := ts.wpGen.Next()
			ts.fq.Push(frontend.FetchedUop{Uop: u, TraceIdx: -1, WrongPath: true})
			fetched++
			continue
		}
		if ts.traceDone() {
			break
		}
		u := ts.prog.Trace[ts.fetchIdx]
		fu := frontend.FetchedUop{Uop: u, TraceIdx: ts.fetchIdx}
		if u.Class == isa.Branch {
			pred, ckpt := p.pred.Predict(pick, u.PC)
			fu.PredTaken = pred
			fu.HistCheckpoint = ckpt
			fu.Mispredicted = pred != u.Taken
			p.stats.BranchLookups++
		}
		ts.fq.Push(fu)
		ts.fetchIdx++
		fetched++
		if fu.Mispredicted {
			// The fetch group ends at a mispredicted branch; from the
			// next cycle the thread fetches down the wrong path until
			// the branch resolves.
			ts.wrongPath = true
			break
		}
	}
	p.stats.Fetched[pick] += uint64(fetched)
}
