package core

import (
	"reflect"
	"testing"

	"clustersmt/internal/trace"
	"clustersmt/internal/workload"
)

// runWakeupMode runs one fixed-seed simulation in the given wakeup mode with
// the ready-list cross-check armed.
func runWakeupMode(t *testing.T, w workload.Workload, scheme string, n int, polling bool, mut func(*Config)) *Processor {
	t.Helper()
	var progs []ThreadProgram
	for i, prof := range w.Threads {
		g := trace.NewGenerator(prof, w.Seeds[i])
		progs = append(progs, ThreadProgram{Trace: g.Generate(n), Profile: prof, Seed: w.Seeds[i]})
	}
	cfg := DefaultConfig(len(progs))
	cfg.PollingWakeup = polling
	if mut != nil {
		mut(&cfg)
	}
	p, err := NewScheme(cfg, scheme, progs)
	if err != nil {
		t.Fatalf("NewScheme(%s): %v", scheme, err)
	}
	p.Run()
	return p
}

// TestWakeupEquivalence is the tentpole's correctness gate: event-driven
// wakeup must produce bit-for-bit identical statistics to the per-cycle
// polling scan on fixed seeds, across schemes, cluster counts and resource
// pressure. debugWakeup additionally cross-checks every cycle's ready list
// against a polling scan while the event-driven runs execute.
func TestWakeupEquivalence(t *testing.T) {
	debugWakeup = true
	defer func() { debugWakeup = false }()
	cases := []struct {
		name     string
		workload string
		scheme   string
		mut      func(*Config)
	}{
		{"icount", "ispec00.mix.2.1", "icount", nil},
		{"cssp", "ispec00.mix.2.1", "cssp", nil},
		{"cdprf", "server.mix.2.1", "cdprf", nil},
		{"pc", "fspec00.mix.2.1", "pc", nil},
		{"flush+", "mixes.mix.2.1", "flush+", nil},
		{"tight-rf", "ispec00.mix.2.1", "cssp", func(c *Config) {
			c.IntRegsPerCluster = 40
			c.FpRegsPerCluster = 40
		}},
		{"unbounded", "ispec00.mix.2.1", "cssp", func(c *Config) {
			c.IntRegsPerCluster = 0
			c.FpRegsPerCluster = 0
			c.ROBPerThread = 0
		}},
		{"one-cluster", "ispec00.mix.2.1", "icount", func(c *Config) {
			c.NumClusters = 1
		}},
		{"three-clusters", "ispec00.mix.2.1", "cssp", func(c *Config) {
			c.NumClusters = 3
		}},
		{"four-clusters", "server.mix.2.1", "cdprf", func(c *Config) {
			c.NumClusters = 4
		}},
		{"slow-memory", "ispec00.mix.2.1", "icount", func(c *Config) {
			// 400-cycle memory forces the completion wheel past its
			// historical 256 slots; the old code silently clamped here.
			c.Cache.MemLatency = 400
		}},
		{"wide-slow-links", "fspec00.mix.2.1", "cssp", func(c *Config) {
			c.NumClusters = 4
			c.Net.Links = 1
			c.Net.Latency = 8
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w, err := workload.Find(tc.workload)
			if err != nil {
				t.Fatal(err)
			}
			polled := runWakeupMode(t, w, tc.scheme, 6000, true, tc.mut)
			event := runWakeupMode(t, w, tc.scheme, 6000, false, tc.mut)
			if !reflect.DeepEqual(polled.Stats(), event.Stats()) {
				t.Errorf("stats diverge between polling and event-driven wakeup:\npolling: %+v\nevent:   %+v",
					polled.Stats(), event.Stats())
			}
		})
	}
}

// TestWakeupGolden pins fixed-seed headline statistics so any future change
// to the wakeup path that shifts results (rather than just speed) fails
// loudly. The two-cluster values were produced by the pre-refactor polling
// implementation at this exact seed/config and must never drift; the 1/3/4
// cluster rows were captured from the polling path when the cluster-count
// axis opened (this PR) and pin the machine-shape sweep the same way.
func TestWakeupGolden(t *testing.T) {
	w, err := workload.Find("ispec00.mix.2.1")
	if err != nil {
		t.Fatal(err)
	}
	for clusters, want := range goldenCDPRFByClusters {
		p := runWakeupMode(t, w, "cdprf", 8000, false, func(c *Config) {
			c.NumClusters = clusters
		})
		st := p.Stats()
		got := map[string]uint64{
			"cycles":   uint64(st.Cycles),
			"ret0":     st.Committed[0],
			"ret1":     st.Committed[1],
			"copies":   st.CommittedCopies,
			"iqstalls": st.IQStalls,
			"rfstalls": st.RFStalls,
			"squashed": st.Squashed,
		}
		for k, v := range want {
			if got[k] != v {
				t.Errorf("clusters=%d: %s = %d, want %d (full: %+v)", clusters, k, got[k], v, got)
			}
		}
	}
}

// TestWakeupSquashStress drives the squash-during-wait path hard: a branchy,
// memory-bound workload under Flush+ squashes waiting consumers (including
// copy uops and their consumers) from both misprediction and flush events,
// with the per-cycle ready-list cross-check armed. Any waiter that outlives
// its squash panics in RegFile.Alloc/Free or trips checkReadyList.
func TestWakeupSquashStress(t *testing.T) {
	debugWakeup = true
	defer func() { debugWakeup = false }()
	w, err := workload.Find("server.mem.2.1")
	if err != nil {
		t.Fatal(err)
	}
	p := runWakeupMode(t, w, "flush+", 8000, false, func(c *Config) {
		c.IntRegsPerCluster = 48
		c.FpRegsPerCluster = 48
	})
	st := p.Stats()
	if st.Mispredicts == 0 || st.Squashed == 0 {
		t.Fatalf("stress run squashed nothing (mispredicts=%d squashed=%d)", st.Mispredicts, st.Squashed)
	}
	if st.Flushes == 0 {
		t.Fatalf("stress run never flushed")
	}
}

// goldenCDPRFByClusters pins ispec00.mix.2.1 under cdprf with 8000-uop
// traces at every validated cluster count (Table 1 defaults otherwise).
// The clusters=2 row is the original pre-refactor polling capture; the
// others were captured from the polling path when the cluster-count sweep
// axis was introduced.
var goldenCDPRFByClusters = map[int]map[string]uint64{
	2: {
		"cycles":   12629,
		"ret0":     8000,
		"ret1":     1710,
		"copies":   1537,
		"iqstalls": 8888,
		"rfstalls": 8509,
		"squashed": 6409,
	},
	1: {
		"cycles":   16675,
		"ret0":     8000,
		"ret1":     2240,
		"copies":   0,
		"iqstalls": 4449,
		"rfstalls": 20410,
		"squashed": 3493,
	},
	3: {
		"cycles":   10714,
		"ret0":     8000,
		"ret1":     1444,
		"copies":   2523,
		"iqstalls": 9955,
		"rfstalls": 3623,
		"squashed": 8701,
	},
	4: {
		"cycles":   10275,
		"ret0":     8000,
		"ret1":     1366,
		"copies":   3121,
		"iqstalls": 10766,
		"rfstalls": 1269,
		"squashed": 10822,
	},
}
