package core

import (
	"clustersmt/internal/frontend"
	"clustersmt/internal/isa"
	"clustersmt/internal/policy"
)

// notifyMissStart forwards an L2-miss start to the selector and any policy
// component observing misses (DCRA-style schemes).
//
//smtlint:noalloc
func (p *Processor) notifyMissStart(t int, seq uint64) {
	p.sel.MissStart(t, seq, p.now)
	if o, ok := p.iqPol.(policy.MissObserver); ok {
		o.MissStart(t, seq, p.now)
	}
	if o, ok := p.rfPol.(policy.MissObserver); ok {
		o.MissStart(t, seq, p.now)
	}
}

// notifyMissEnd forwards an L2-miss completion.
//
//smtlint:noalloc
func (p *Processor) notifyMissEnd(t int) {
	p.sel.MissEnd(t, p.now)
	if o, ok := p.iqPol.(policy.MissObserver); ok {
		o.MissEnd(t, p.now)
	}
	if o, ok := p.rfPol.(policy.MissObserver); ok {
		o.MissEnd(t, p.now)
	}
}

// squashAfter removes every in-flight uop of thread t younger than
// boundary (per-thread sequence), undoing rename in reverse order and
// releasing issue-queue, register, MOB and ROB resources. It returns the
// history checkpoint of the oldest squashed correct-path branch, if any,
// so flush paths can rewind the predictor history.
//
//smtlint:noalloc
func (p *Processor) squashAfter(t int, boundary uint64) (ckpt uint64, haveCkpt bool) {
	ts := p.threads[t]
	for ts.rob.Len() > 0 {
		e := ts.rob.Tail()
		if e.Seq <= boundary {
			break
		}
		ts.rob.PopTail()
		if e.DstPhys >= 0 {
			reg := e.Uop.Dst
			if e.IsCopy() {
				reg = e.CopyLogReg
			}
			ts.rat.Set(reg, e.OldMap)
			p.rfs[e.Cluster].Free(e.DstKind, t, e.DstPhys)
		}
		if !e.Issued {
			// Unsubscribe from register-ready broadcasts before the register
			// itself is freed (the producer may be squashed later in this
			// same walk); RemoveAt also purges the entry from the ready list
			// and panics if the slot no longer holds this uop.
			p.unlinkWakeup(e)
			p.iqs[iqCluster(e)].RemoveAt(e.IQSlot, e)
			e.IQSlot = -1
		}
		if e.MOBEntry != nil {
			p.mobq.Release(e.MOBEntry)
			e.MOBEntry = nil
		}
		if e.MissNotified {
			// The fill is still in flight in the memory system but the
			// policy must not keep the thread gated on a dead load.
			p.notifyMissEnd(t)
			e.MissNotified = false
		}
		if e.Uop.Class == isa.Branch && !e.WrongPath {
			// Walking tail->head, the last one recorded is the oldest.
			ckpt = e.HistCheckpoint
			haveCkpt = true
		}
		e.Squashed = true
		if !e.InWheel {
			p.putEntry(e)
		}
		p.stats.Squashed++
	}
	return ckpt, haveCkpt
}

// resolveBranch handles a branch completing execution: predictor training
// and, on misprediction, squash + front-end redirect with the Table 1
// 14-cycle misprediction pipeline penalty.
//
//smtlint:noalloc
func (p *Processor) resolveBranch(e *frontend.ROBEntry) {
	t := e.Thread
	p.pred.Resolve(t, e.Uop.PC, e.HistCheckpoint, e.Uop.Taken, e.Mispredicted)
	if !e.Mispredicted {
		return
	}
	p.stats.Mispredicts++
	ts := p.threads[t]
	p.squashAfter(t, e.Seq)
	// Resolve() already rewound the history and pushed the actual
	// outcome; the squashed suffix contained only wrong-path uops.
	ts.fq.Clear()
	ts.wrongPath = false
	ts.fetchIdx = e.TraceIdx + 1
	ts.fetchStallUntil = p.now + int64(p.cfg.MispredictPenalty)
}

// handleFlushes performs any thread flush requested by the selector
// (Flush+): squash everything younger than the missing load, clear the
// fetch queue and re-fetch from the uop after the load once the front-end
// redirect penalty elapses.
//
//smtlint:noalloc
func (p *Processor) handleFlushes() {
	for {
		t, seq, ok := p.sel.PendingFlush()
		if !ok {
			return
		}
		p.sel.FlushDone(t)
		ts := p.threads[t]
		// Locate the boundary load; it may already be gone (squashed by
		// an older branch) in which case the flush is moot.
		var boundary *frontend.ROBEntry
		for i := 0; i < ts.rob.Len(); i++ {
			if e := ts.rob.At(i); e.Seq == seq {
				boundary = e
				break
			}
		}
		if boundary == nil {
			continue
		}
		if boundary.TraceIdx < 0 {
			// A wrong-path load triggered the miss; the branch resolve
			// will redirect fetch, so only release the younger resources.
			p.squashAfter(t, seq)
			p.stats.Flushes++
			continue
		}
		// Branches sitting unrenamed in the fetch queue also pushed
		// speculative history; the oldest squashed branch wins the rewind.
		var fqCkpt uint64
		fqHave := false
		robCkpt, robHave := p.squashAfter(t, seq)
		ts.fq.Each(func(u *frontend.FetchedUop) bool {
			if u.Uop.Class == isa.Branch && !u.WrongPath && !fqHave {
				fqCkpt = u.HistCheckpoint
				fqHave = true
			}
			return true
		})
		switch {
		case robHave:
			p.pred.RestoreHistory(t, robCkpt)
		case fqHave:
			p.pred.RestoreHistory(t, fqCkpt)
		}
		ts.fq.Clear()
		ts.wrongPath = false
		ts.fetchIdx = boundary.TraceIdx + 1
		ts.fetchStallUntil = p.now + int64(p.cfg.MispredictPenalty)
		p.stats.Flushes++
	}
}
