package core

import "clustersmt/internal/frontend"

// Event-driven wakeup. Instead of re-testing every waiting issue-queue
// entry's sources against the register ready bits every cycle (the polling
// scan that dominated simulator profiles), each entry counts its outstanding
// not-yet-ready sources at dispatch and subscribes to them; when a
// destination register becomes ready, the register file broadcasts to the
// subscribed entries, and an entry whose count reaches zero joins its issue
// queue's ready list. Select then walks only ready entries.
//
// The transformation is exact because readiness is monotone while an entry
// waits: the only transition back to not-ready is RegFile.Alloc, and a
// waited-on register cannot be reallocated — it is freed either at commit of
// a younger redefinition (which, by in-order commit, retires after every
// older consumer has issued) or at squash (which squashes and unlinks every
// younger consumer first, tail to head). The equivalence tests in
// wakeup_test.go assert bit-for-bit identical metrics.Stats against the
// polling path (Config.PollingWakeup).

// debugWakeup, when set by a test, cross-checks the ready list against a
// full polling scan every select.
var debugWakeup bool

// wake is installed as every RegFile's OnWake callback: one source of e
// became ready.
//
//smtlint:noalloc
func (p *Processor) wake(e *frontend.ROBEntry) {
	e.WaitCount--
	if e.WaitCount < 0 {
		panic("core: wakeup broadcast to an entry with no outstanding sources")
	}
	if e.WaitCount == 0 {
		p.iqs[iqCluster(e)].MarkReady(e, e.ID)
	}
}

// linkWakeup counts e's outstanding sources and subscribes e to each; an
// entry with none joins the ready list immediately. Called at dispatch, after
// the entry entered its issue queue. Copies wait on their single cross-
// cluster source; everything else waits on its own cluster's registers.
//
//smtlint:noalloc
func (p *Processor) linkWakeup(e *frontend.ROBEntry) {
	if p.cfg.PollingWakeup {
		return
	}
	e.WaitCount = 0
	if e.IsCopy() {
		if ph := e.CopySrcPhys; ph >= 0 && !p.rfs[e.SrcCluster].IsReady(e.DstKind, ph) {
			p.rfs[e.SrcCluster].AddWaiter(e.DstKind, ph, e)
			e.WaitCount++
		}
	} else {
		for i := 0; i < e.NumSrc; i++ {
			if ph := e.SrcPhys[i]; ph >= 0 && !p.rfs[e.Cluster].IsReady(e.SrcKind[i], ph) {
				p.rfs[e.Cluster].AddWaiter(e.SrcKind[i], ph, e)
				e.WaitCount++
			}
		}
	}
	if e.WaitCount == 0 {
		p.iqs[iqCluster(e)].MarkReady(e, e.ID)
	}
}

// unlinkWakeup unsubscribes a squashed, unissued e from its waited-on
// registers. Sources that already broadcast are no longer subscribed;
// RemoveWaiter tolerates them. The ready list is purged separately, by the
// IssueQueue.RemoveAt call of the squash path.
//
//smtlint:noalloc
func (p *Processor) unlinkWakeup(e *frontend.ROBEntry) {
	if p.cfg.PollingWakeup || e.WaitCount == 0 {
		return
	}
	if e.IsCopy() {
		p.rfs[e.SrcCluster].RemoveWaiter(e.DstKind, e.CopySrcPhys, e)
	} else {
		for i := 0; i < e.NumSrc; i++ {
			if ph := e.SrcPhys[i]; ph >= 0 {
				p.rfs[e.Cluster].RemoveWaiter(e.SrcKind[i], ph, e)
			}
		}
	}
	e.WaitCount = 0
}

// checkReadyList panics unless cluster c's ready list matches what a full
// polling scan would select (debugWakeup test hook).
func (p *Processor) checkReadyList(c int, ready []*frontend.ROBEntry) {
	want := map[*frontend.ROBEntry]bool{}
	p.iqs[c].Scan(func(e *frontend.ROBEntry, _ int) bool {
		if p.entryReady(e) {
			want[e] = true
		}
		return true
	})
	if len(want) != len(ready) {
		panic("core: ready list disagrees with polling scan (size)")
	}
	var lastID uint64
	for i, e := range ready {
		if !want[e] {
			panic("core: ready list holds an entry the polling scan rejects")
		}
		if i > 0 && e.ID <= lastID {
			panic("core: ready list out of age order")
		}
		lastID = e.ID
	}
}
