package core

import (
	"testing"

	"clustersmt/internal/policy"
	"clustersmt/internal/trace"
)

// testPrograms builds two short deterministic programs for smoke tests.
func testPrograms(t *testing.T, n int) []ThreadProgram {
	t.Helper()
	profs := []trace.Profile{
		trace.ILPProfile("test.ilp"),
		trace.MemProfile("test.mem"),
	}
	var progs []ThreadProgram
	for i := 0; i < 2; i++ {
		g := trace.NewGenerator(profs[i], uint64(1000+i))
		progs = append(progs, ThreadProgram{
			Trace:   g.Generate(n),
			Profile: profs[i],
			Seed:    uint64(i + 7),
		})
	}
	return progs
}

func runScheme(t *testing.T, scheme string, n int, mut func(*Config)) *Processor {
	t.Helper()
	cfg := DefaultConfig(2)
	cfg.MaxCycles = 2_000_000
	if mut != nil {
		mut(&cfg)
	}
	p, err := NewScheme(cfg, scheme, testPrograms(t, n))
	if err != nil {
		t.Fatalf("NewScheme(%s): %v", scheme, err)
	}
	p.Run()
	return p
}

func TestSmokeAllSchemes(t *testing.T) {
	for _, scheme := range policy.Names() {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			p := runScheme(t, scheme, 5000, nil)
			st := p.Stats()
			if st.TotalCommitted() == 0 {
				t.Fatalf("scheme %s committed nothing: %v", scheme, st)
			}
			if st.Cycles >= p.Config().MaxCycles {
				t.Fatalf("scheme %s hit MaxCycles: %v", scheme, st)
			}
			ipc := st.IPC()
			if ipc <= 0.05 || ipc > 12 {
				t.Fatalf("scheme %s implausible IPC %.3f: %v", scheme, ipc, st)
			}
			t.Logf("%s: %v", scheme, st)
		})
	}
}
