package core

import (
	"clustersmt/internal/frontend"
	"clustersmt/internal/isa"
	"clustersmt/internal/policy"
)

// copyPlan describes one inter-cluster copy that placement in the target
// cluster would require.
type copyPlan struct {
	reg        int16
	srcCluster int
	kind       isa.RegKind
}

// renamePlan is the resource bill of one uop placed in a specific cluster.
type renamePlan struct {
	copies    []copyPlan
	needRegs  [isa.NumRegKinds]int
	needSrcIQ [frontend.MaxClusters]int
	robNeeded int
}

//smtlint:noalloc
func (pl *renamePlan) reset() {
	pl.copies = pl.copies[:0]
	pl.needRegs = [isa.NumRegKinds]int{}
	pl.needSrcIQ = [frontend.MaxClusters]int{}
	pl.robNeeded = 0
}

// placeFail enumerates why placement in a cluster was rejected.
type placeFail uint8

const (
	failNone placeFail = iota
	failIQ             // issue-queue space or scheme cap (the Fig. 4 stall)
	failRF             // register scheme cap or physical exhaustion
	failMOB
	failROB
)

// buildPlan fills p.scratchPlan with the resources uop needs in cluster c
// for thread t. Copies are deduplicated per logical register.
//
//smtlint:noalloc
func (p *Processor) buildPlan(t int, u *isa.Uop, c int) *renamePlan {
	pl := &p.scratchPlan
	pl.reset()
	ts := p.threads[t]
	srcs := [2]int16{u.Src1, u.Src2}
	for _, reg := range srcs {
		if reg == isa.RegNone {
			continue
		}
		m := ts.rat.GetRef(reg)
		if !m.AnyValid() || m.Valid[c] {
			continue
		}
		dup := false
		for _, cp := range pl.copies {
			if cp.reg == reg {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		srcC := 0
		for cl := 0; cl < p.cfg.NumClusters; cl++ {
			if m.Valid[cl] {
				srcC = cl
				break
			}
		}
		kind := isa.KindOf(reg)
		//smtlint:allow copy list bounded by a uop's source count; plan buffer reused
		pl.copies = append(pl.copies, copyPlan{reg: reg, srcCluster: srcC, kind: kind})
		pl.needRegs[kind]++
		pl.needSrcIQ[srcC]++
	}
	if u.HasDest() {
		pl.needRegs[isa.KindOf(u.Dst)]++
	}
	pl.robNeeded = 1 + len(pl.copies)
	return pl
}

// tryPlace tests whether thread t's uop can be placed in cluster c; on
// failure it reports the binding constraint and, for register failures, the
// starving kind. The constraint order is IQ → source IQs → registers → MOB
// → ROB; the resource plan is only built (buildPlan is RAT-lookup heavy)
// once the cheap issue-queue gate has passed, which skips it entirely on
// the most common stall. On success the surviving plan is returned for
// place.
//
//smtlint:noalloc
func (p *Processor) tryPlace(t, c int, u *isa.Uop) (*renamePlan, placeFail, isa.RegKind) {
	// Issue-queue space: the uop's own entry obeys the scheme cap; the
	// copies it forces in the source clusters need physical space only
	// (charging copies against the cap would double-punish communication;
	// see DESIGN.md).
	if u.Class != isa.Nop {
		if !p.iqPol.Allows(t, c, p) || p.iqs[c].Free() < 1 {
			return nil, failIQ, 0
		}
	}
	pl := p.buildPlan(t, u, c)
	for cl := 0; cl < p.cfg.NumClusters; cl++ {
		if pl.needSrcIQ[cl] > 0 && p.iqs[cl].Free() < pl.needSrcIQ[cl] {
			return nil, failIQ, 0
		}
	}
	for k := 0; k < isa.NumRegKinds; k++ {
		n := pl.needRegs[k]
		if n == 0 {
			continue
		}
		kind := isa.RegKind(k)
		if !p.rfPol.MayAllocate(t, kind, c, n, p) || p.rfs[c].FreeCount(kind) < n {
			return nil, failRF, kind
		}
	}
	if u.IsMem() && p.mobq.Free() < 1 {
		return nil, failMOB, 0
	}
	if p.threads[t].rob.Free() < pl.robNeeded {
		return nil, failROB, 0
	}
	return pl, failNone, 0
}

// place renames the uop into cluster c, inserting the planned copies first.
// All capacity checks have passed; allocation cannot fail.
//
//smtlint:noalloc
func (p *Processor) place(t, c int, fu *frontend.FetchedUop, pl *renamePlan) {
	ts := p.threads[t]

	for _, cp := range pl.copies {
		m := ts.rat.Get(cp.reg)
		phys, ok := p.rfs[c].Alloc(cp.kind, t)
		if !ok {
			panic("core: copy register allocation failed after check")
		}
		e := p.getEntry()
		e.Uop = isa.Uop{Class: isa.Copy, Src1: isa.RegNone, Src2: isa.RegNone, Dst: isa.RegNone}
		e.Thread = t
		e.Seq = ts.seq
		ts.seq++
		e.ID = p.nextID
		p.nextID++
		e.WrongPath = fu.WrongPath
		e.Cluster = c
		e.SrcCluster = cp.srcCluster
		e.CopySrcPhys = m.Phys[cp.srcCluster]
		e.CopyLogReg = cp.reg
		e.DstKind = cp.kind
		e.DstPhys = phys
		e.OldMap = m
		ts.rat.SetCluster(cp.reg, c, phys)
		if !ts.rob.Push(e) {
			panic("core: ROB push failed after check")
		}
		s, ok := p.iqs[cp.srcCluster].Insert(e, t)
		if !ok {
			panic("core: copy IQ insert failed after check")
		}
		e.IQSlot = s
		p.linkWakeup(e)
		p.stats.CopiesGenerated++
	}

	u := fu.Uop
	e := p.getEntry()
	e.Uop = u
	e.Thread = t
	e.Seq = ts.seq
	ts.seq++
	e.ID = p.nextID
	p.nextID++
	e.TraceIdx = fu.TraceIdx
	e.WrongPath = fu.WrongPath
	e.Cluster = c
	e.PredTaken = fu.PredTaken
	e.Mispredicted = fu.Mispredicted
	e.HistCheckpoint = fu.HistCheckpoint

	srcs := [2]int16{u.Src1, u.Src2}
	for _, reg := range srcs {
		if reg == isa.RegNone {
			continue
		}
		m := ts.rat.GetRef(reg)
		if m.Valid[c] {
			e.SrcPhys[e.NumSrc] = m.Phys[c]
		} else {
			// No live producer anywhere: architectural live-in, ready.
			e.SrcPhys[e.NumSrc] = -1
		}
		e.SrcKind[e.NumSrc] = isa.KindOf(reg)
		e.NumSrc++
	}

	if u.HasDest() {
		dk := isa.KindOf(u.Dst)
		phys, ok := p.rfs[c].Alloc(dk, t)
		if !ok {
			panic("core: dest register allocation failed after check")
		}
		e.DstKind = dk
		e.DstPhys = phys
		e.OldMap = ts.rat.Get(u.Dst)
		ts.rat.Define(u.Dst, c, phys)
	}

	if u.IsMem() {
		me := p.mobq.Alloc(t, e.Seq, u.Class == isa.Store)
		if me == nil {
			panic("core: MOB allocation failed after check")
		}
		e.MOBEntry = me
	}

	if !ts.rob.Push(e) {
		panic("core: ROB push failed after check")
	}
	if u.Class == isa.Nop {
		e.Issued = true
		e.Completed = true
	} else {
		s, ok := p.iqs[c].Insert(e, t)
		if !ok {
			panic("core: IQ insert failed after check")
		}
		e.IQSlot = s
		p.linkWakeup(e)
	}
	p.stats.Renamed++
}

// renameOne attempts to rename the head uop of thread t. It reports whether
// the uop was consumed; on failure the appropriate stall counters were
// updated.
//
//smtlint:noalloc
func (p *Processor) renameOne(t int, fu *frontend.FetchedUop) bool {
	u := &fu.Uop
	ts := p.threads[t]

	// Steering preference: the cluster holding most source operands, or
	// the static binding of the PC scheme.
	n := p.cfg.NumClusters
	var pref int
	forcedC, forced := p.iqPol.ForcedCluster(t)
	if forced {
		pref = forcedC % n
	} else {
		srcCnt := p.scratchSrcCnt
		occ := p.scratchOcc
		for c := 0; c < n; c++ {
			srcCnt[c] = 0
			occ[c] = p.iqs[c].Len()
		}
		srcs := [2]int16{u.Src1, u.Src2}
		for _, reg := range srcs {
			if reg == isa.RegNone {
				continue
			}
			m := ts.rat.GetRef(reg)
			for c := 0; c < n; c++ {
				if m.Valid[c] {
					srcCnt[c]++
				}
			}
		}
		pref = p.st.Prefer(t, srcCnt, occ, p.cfg.IQSize)
	}

	var firstFail placeFail
	var firstKind isa.RegKind
	prefIQFail := false
	for i := 0; i < n; i++ {
		c := wrapIdx(pref+i, n)
		pl, fail, kind := p.tryPlace(t, c, u)
		if fail == failNone {
			if i > 0 || prefIQFail {
				// Could not go to the preferred cluster: the Fig. 4
				// stall event (the uop proceeds elsewhere).
				p.stats.IQStalls++
			}
			p.place(t, c, fu, pl)
			return true
		}
		if i == 0 {
			firstFail, firstKind = fail, kind
			prefIQFail = fail == failIQ
		}
		if forced {
			break // PC: only the home cluster is legal
		}
	}

	// Blocked: attribute the stall to the preferred cluster's constraint.
	switch firstFail {
	case failIQ:
		p.stats.IQStalls++
		p.stats.IQBlocked++
	case failRF:
		p.stats.RFStalls++
		p.rfPol.NoteStall(t, firstKind)
	case failMOB:
		p.stats.MOBStalls++
	case failROB:
		p.stats.ROBStalls++
	}
	return false
}

// renameThread renames up to RenameWidth uops from thread t's fetch queue,
// returning how many were consumed.
//
//smtlint:noalloc
func (p *Processor) renameThread(t int) int {
	ts := p.threads[t]
	count := 0
	for count < p.cfg.RenameWidth && ts.fq.Len() > 0 {
		if !p.renameOne(t, ts.fq.Peek()) {
			break
		}
		ts.fq.Pop()
		count++
	}
	return count
}

// rename implements the rename stage: among eligible threads with queued
// uops, rename from the one with the fewest uops between rename and issue
// (Icount ordering, §3/ref [1]); if it cannot make progress the next
// thread in the ordering gets the slot. Only one thread renames per cycle.
//
//smtlint:noalloc
func (p *Processor) rename() {
	n := p.cfg.NumThreads
	order := p.scratchOrder[:0]
	for i := 0; i < n; i++ {
		t := wrapIdx(p.rrSelect+i, n)
		if p.threads[t].fq.Len() == 0 || !p.sel.Eligible(t, p) {
			continue
		}
		//smtlint:allow scratch retained on the processor; amortized zero-alloc after warmup
		order = append(order, t)
	}
	p.scratchOrder = order // keep the (possibly grown) backing array
	// Insertion sort by icount (uops between rename and issue = entries
	// currently held in the issue queues). Icount is frozen while sorting
	// — nothing renames or issues mid-sort — so it is computed once per
	// thread rather than per comparison. The sort is stable, preserving
	// the round-robin rotation among equal counts.
	ic := p.scratchIcount[:0]
	for _, t := range order {
		//smtlint:allow scratch retained on the processor; amortized zero-alloc after warmup
		ic = append(ic, p.icount(t))
	}
	p.scratchIcount = ic
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && ic[j] < ic[j-1]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
			ic[j], ic[j-1] = ic[j-1], ic[j]
		}
	}
	for _, t := range order {
		if p.renameThread(t) > 0 {
			return
		}
	}
}

// icount returns thread t's uop count between rename and issue.
//
//smtlint:noalloc
func (p *Processor) icount(t int) int {
	return policy.IQTotalOcc(p, t)
}
