package core

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"clustersmt/internal/frontend"
	"clustersmt/internal/isa"
	"clustersmt/internal/policy"
	"clustersmt/internal/steer"
	"clustersmt/internal/trace"
)

// drainAndCheckConservation runs a processor to completion and verifies
// that every leaked-looking resource is accounted for: issue queues empty,
// MOB empty, and every allocated physical register is reachable from some
// thread's RAT (committed architectural state).
func drainAndCheckConservation(t *testing.T, p *Processor) {
	t.Helper()
	st := p.Stats()
	for c := 0; c < p.cfg.NumClusters; c++ {
		if p.iqs[c].Len() != 0 {
			t.Errorf("cluster %d issue queue holds %d entries after drain", c, p.iqs[c].Len())
		}
	}
	if p.mobq.Used() != 0 {
		t.Errorf("MOB holds %d entries after drain", p.mobq.Used())
	}
	for _, ts := range p.threads {
		if ts.rob.Len() != 0 {
			t.Errorf("ROB holds %d entries after drain", ts.rob.Len())
		}
	}
	// Register conservation: allocated = live RAT mappings.
	for _, k := range []isa.RegKind{isa.IntReg, isa.FpReg} {
		live := 0
		for _, ts := range p.threads {
			for reg := int16(0); reg < isa.NumLogicalRegs; reg++ {
				m := ts.rat.Get(reg)
				for c := 0; c < p.cfg.NumClusters; c++ {
					if m.Valid[c] {
						live++
					}
				}
			}
		}
		allocated := 0
		for c := 0; c < p.cfg.NumClusters; c++ {
			allocated += p.rfs[c].Total(k) - p.rfs[c].FreeCount(k)
		}
		_ = live
		_ = allocated
	}
	// Joint conservation across kinds (RAT entries of both kinds).
	liveTotal := 0
	for _, ts := range p.threads {
		for reg := int16(0); reg < isa.NumLogicalRegs; reg++ {
			m := ts.rat.Get(reg)
			for c := 0; c < p.cfg.NumClusters; c++ {
				if m.Valid[c] {
					liveTotal++
				}
			}
		}
	}
	allocTotal := 0
	for c := 0; c < p.cfg.NumClusters; c++ {
		for _, k := range []isa.RegKind{isa.IntReg, isa.FpReg} {
			allocTotal += p.rfs[c].Total(k) - p.rfs[c].FreeCount(k)
		}
	}
	if liveTotal != allocTotal {
		t.Errorf("register leak: %d allocated, %d live in RATs", allocTotal, liveTotal)
	}
	if st.TotalCommitted() == 0 {
		t.Error("nothing committed")
	}
}

func TestResourceConservationAllSchemes(t *testing.T) {
	for _, scheme := range policy.Names() {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			cfg := DefaultConfig(2)
			cfg.RunToCompletion = true
			cfg.MaxCycles = 3_000_000
			p, err := NewScheme(cfg, scheme, testPrograms(t, 4000))
			if err != nil {
				t.Fatal(err)
			}
			p.Run()
			if !p.Done() {
				t.Fatal("run did not complete")
			}
			drainAndCheckConservation(t, p)
		})
	}
}

// TestResourceConservationClusterCounts runs the conservation suite on the
// swept machine shapes: every validated cluster count that is not the
// Table 1 default, the representative scheme trio, and (at four clusters) a
// slow-memory shape that grows the completion wheel past 256 slots.
func TestResourceConservationClusterCounts(t *testing.T) {
	for _, clusters := range []int{1, 3, 4} {
		for _, scheme := range []string{"icount", "cssp", "cdprf"} {
			clusters, scheme := clusters, scheme
			t.Run(fmt.Sprintf("c%d/%s", clusters, scheme), func(t *testing.T) {
				cfg := DefaultConfig(2)
				cfg.NumClusters = clusters
				cfg.RunToCompletion = true
				cfg.MaxCycles = 3_000_000
				if clusters == 4 {
					cfg.Cache.MemLatency = 300 // wheel grows to 512 slots
				}
				p, err := NewScheme(cfg, scheme, testPrograms(t, 3000))
				if err != nil {
					t.Fatal(err)
				}
				p.Run()
				if !p.Done() {
					t.Fatal("run did not complete")
				}
				drainAndCheckConservation(t, p)
			})
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() string {
		cfg := DefaultConfig(2)
		cfg.MaxCycles = 2_000_000
		p, err := NewScheme(cfg, "cdprf", testPrograms(t, 6000))
		if err != nil {
			t.Fatal(err)
		}
		return p.Run().String()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("non-deterministic simulation:\n%s\n%s", a, b)
	}
}

func TestCommittedMatchesTraceOnCompletion(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.RunToCompletion = true
	cfg.MaxCycles = 3_000_000
	const n = 3000
	p, err := NewScheme(cfg, "icount", testPrograms(t, n))
	if err != nil {
		t.Fatal(err)
	}
	st := p.Run()
	for tid, c := range st.Committed {
		if c != n {
			t.Errorf("thread %d committed %d of %d trace uops", tid, c, n)
		}
	}
}

func TestSingleThreadFasterThanShared(t *testing.T) {
	prof := trace.ILPProfile("inv.ilp")
	g1 := trace.NewGenerator(prof, 5)
	single := []ThreadProgram{{Trace: g1.Generate(20000), Profile: prof, Seed: 1}}
	cfgS := DefaultConfig(1)
	cfgS.MaxCycles = 3_000_000
	ps, err := NewScheme(cfgS, "icount", single)
	if err != nil {
		t.Fatal(err)
	}
	ipcAlone := ps.Run().ThreadIPC(0)

	pd, err := NewScheme(func() Config { c := DefaultConfig(2); c.MaxCycles = 3_000_000; return c }(), "icount", testPrograms(t, 20000))
	if err != nil {
		t.Fatal(err)
	}
	std := pd.Run()
	if std.ThreadIPC(0) >= ipcAlone {
		t.Errorf("sharing the machine should slow a thread down: alone %.3f, shared %.3f",
			ipcAlone, std.ThreadIPC(0))
	}
}

func TestPCSchemeNeverCopies(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.MaxCycles = 2_000_000
	p, err := NewScheme(cfg, "pc", testPrograms(t, 8000))
	if err != nil {
		t.Fatal(err)
	}
	st := p.Run()
	if st.CopiesGenerated != 0 || st.CopyTransfers != 0 {
		t.Errorf("private clusters generated %d copies", st.CopiesGenerated)
	}
}

func TestCSSPRespectsPerClusterCap(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.MaxCycles = 500_000
	p, err := NewScheme(cfg, "cssp", testPrograms(t, 8000))
	if err != nil {
		t.Fatal(err)
	}
	cap := cfg.IQSize / cfg.NumThreads
	for i := 0; i < 50_000 && !p.Done(); i++ {
		p.Step()
		for c := 0; c < cfg.NumClusters; c++ {
			for th := 0; th < cfg.NumThreads; th++ {
				// Copies are exempt from the cap (DESIGN.md); count
				// non-copy entries only.
				nonCopy := 0
				p.iqs[c].Scan(func(e *frontend.ROBEntry, thread int) bool {
					if thread == th && !e.IsCopy() {
						nonCopy++
					}
					return true
				})
				if nonCopy > cap {
					t.Fatalf("cycle %d: thread %d holds %d non-copy entries in cluster %d (cap %d)",
						i, th, nonCopy, c, cap)
				}
			}
		}
	}
}

func TestUnboundedConfigNeverRFStalls(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.IntRegsPerCluster = 0
	cfg.FpRegsPerCluster = 0
	cfg.ROBPerThread = 0
	cfg.MaxCycles = 2_000_000
	p, err := NewScheme(cfg, "icount", testPrograms(t, 8000))
	if err != nil {
		t.Fatal(err)
	}
	st := p.Run()
	if st.RFStalls != 0 || st.ROBStalls != 0 {
		t.Errorf("unbounded run recorded rf=%d rob=%d stalls", st.RFStalls, st.ROBStalls)
	}
}

func TestWarmupReducesReportedCycles(t *testing.T) {
	mk := func(warm uint64) *Processor {
		cfg := DefaultConfig(2)
		cfg.WarmupUops = warm
		cfg.MaxCycles = 3_000_000
		p, err := NewScheme(cfg, "icount", testPrograms(t, 10000))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	full := mk(0).Run().Cycles
	warmed := mk(2000).Run().Cycles
	if warmed >= full {
		t.Errorf("warmup did not shrink the measured window: %d vs %d", warmed, full)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.NumClusters = 0 },
		func(c *Config) { c.NumClusters = 9 },
		func(c *Config) { c.NumThreads = 0 },
		func(c *Config) { c.FetchWidth = 0 },
		func(c *Config) { c.IQSize = 1 },
		func(c *Config) { c.MOBSize = 0 },
		func(c *Config) { c.ROBPerThread = -1 },
		func(c *Config) { c.MispredictPenalty = -1 },
		// Worst-case completion latency beyond the event-wheel hard cap
		// must be rejected, not silently clamped mid-run.
		func(c *Config) { c.Cache.MemLatency = maxWheelSize },
		func(c *Config) { c.Net.Latency = maxWheelSize },
	}
	for i, mut := range bad {
		cfg := DefaultConfig(2)
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	good := DefaultConfig(2)
	if err := good.Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
	// A large-but-modelable memory latency is exactly what the sweep axes
	// exist for; the wheel sizes itself to fit it.
	slow := DefaultConfig(2)
	slow.Cache.MemLatency = 300
	if err := slow.Validate(); err != nil {
		t.Errorf("MemLatency=300 rejected: %v", err)
	}
	if got := wheelSizeFor(&slow); got < int64(slow.WorstCaseLatency()) {
		t.Errorf("wheel %d slots cannot hold worst-case latency %d", got, slow.WorstCaseLatency())
	}
}

// TestWheelRejectionMessage pins the contract of the bugfix: a swept
// MemLatency the wheel cannot model fails Validate with an explanation, it
// does not silently complete loads early.
func TestWheelRejectionMessage(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Cache.MemLatency = 1 << 17
	err := cfg.Validate()
	if err == nil {
		t.Fatal("oversized MemLatency accepted")
	}
	for _, want := range []string{"worst-case completion latency", "event-wheel capacity"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

func TestNewErrors(t *testing.T) {
	cfg := DefaultConfig(2)
	if _, err := NewScheme(cfg, "nope", testPrograms(t, 100)); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := NewScheme(cfg, "icount", nil); err == nil {
		t.Error("program/thread count mismatch accepted")
	}
}

func TestAlternativeSteering(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.MaxCycles = 2_000_000
	s, err := policy.Lookup("icount")
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range []steer.Steerer{steer.NewRoundRobin(2), steer.Modulo{}} {
		sel, iq, rf := s.New(2)
		p, err := New(cfg, sel, iq, rf, st, testPrograms(t, 4000))
		if err != nil {
			t.Fatal(err)
		}
		res := p.Run()
		if res.TotalCommitted() == 0 {
			t.Errorf("steering %s committed nothing", st.Name())
		}
	}
}

// Property: arbitrary small configurations and scheme choices never panic
// and always commit work.
func TestRandomConfigProperty(t *testing.T) {
	names := policy.Names()
	f := func(iq, regs, rob, schemeIdx uint8) bool {
		cfg := DefaultConfig(2)
		cfg.IQSize = 8 + int(iq%64)
		cfg.IntRegsPerCluster = 48 + int(regs%128)
		cfg.FpRegsPerCluster = 48 + int(regs%128)
		cfg.ROBPerThread = 32 + int(rob%128)
		cfg.MaxCycles = 1_000_000
		p, err := NewScheme(cfg, names[int(schemeIdx)%len(names)], testPrograms(t, 1500))
		if err != nil {
			return false
		}
		st := p.Run()
		return st.TotalCommitted() > 0 && st.Cycles < cfg.MaxCycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
