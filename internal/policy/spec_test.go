package policy

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// namedCanonicals pins every named scheme's canonical string and full
// composition. The canonical strings feed content-addressed cache keys, so
// a change here invalidates every pre-redesign result store — the whole
// point of the canonical form is that this table never drifts.
var namedCanonicals = map[string]string{
	"icount":    "sel=icount,iq=unrestricted,rf=none",
	"stall":     "sel=stall,iq=unrestricted,rf=none",
	"flush+":    "sel=flush+,iq=unrestricted,rf=none",
	"cisp":      "sel=icount,iq=cisp,rf=none",
	"cssp":      "sel=icount,iq=cssp,rf=none",
	"cspsp":     "sel=icount,iq=cspsp,rf=none",
	"pc":        "sel=icount,iq=pc,rf=none",
	"cssprf":    "sel=icount,iq=cssp,rf=cssprf",
	"cisprf":    "sel=icount,iq=cssp,rf=cisprf",
	"cdprf":     "sel=icount,iq=cssp,rf=cdprf",
	"dcra":      "sel=icount,iq=dcra-iq,rf=dcra-rf",
	"hillclimb": "sel=icount,iq=hillclimb-iq,rf=none",
}

func TestNamedSchemeCanonicalGolden(t *testing.T) {
	if len(namedCanonicals) != 12 {
		t.Fatalf("golden table has %d schemes, want 12", len(namedCanonicals))
	}
	for name, spec := range namedCanonicals {
		sch, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%s): %v", name, err)
		}
		// The name itself is the canonical string (pre-redesign cache keys
		// hashed the bare name)...
		if got := sch.Spec.Canonical(); got != name {
			t.Errorf("%s: Canonical() = %q, want the name itself", name, got)
		}
		// ...and the full grammar form is pinned.
		if got := sch.Spec.Format(); got != spec {
			t.Errorf("%s: Format() = %q, want %q", name, got, spec)
		}
		// Parsing either spelling yields the same canonical identity.
		for _, in := range []string{name, spec} {
			sp, err := ParseSpec(in)
			if err != nil {
				t.Fatalf("ParseSpec(%q): %v", in, err)
			}
			if got := sp.Canonical(); got != name {
				t.Errorf("ParseSpec(%q).Canonical() = %q, want %q", in, got, name)
			}
		}
	}
}

// randomSpec draws a valid spec: random components, each declared param
// included with probability 1/2 at either its default or a random in-range
// value (integral when required).
func randomSpec(rng *rand.Rand) SchemeSpec {
	pick := func(cs []Component) ComponentSpec {
		c := cs[rng.Intn(len(cs))]
		out := ComponentSpec{Name: c.Name}
		for _, p := range c.Params {
			if rng.Intn(2) == 0 {
				continue
			}
			v := p.Default
			if rng.Intn(2) == 0 {
				v = p.Min + rng.Float64()*(p.Max-p.Min)
				if p.Integer {
					v = float64(int64(v))
				}
			}
			out = out.WithParam(p.Name, v)
		}
		return out
	}
	return SchemeSpec{Sel: pick(Selectors()), IQ: pick(IQPolicies()), RF: pick(RFPolicies())}
}

// TestSpecRoundTripProperty: for any valid spec s, Parse(Format(s)) and
// Parse(Canonical(s)) both reproduce s's canonical identity, and Canonical
// is idempotent. This is the grammar's consistency contract.
func TestSpecRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		s := randomSpec(rng)
		if err := s.Validate(); err != nil {
			t.Fatalf("randomSpec produced invalid %+v: %v", s, err)
		}
		canon := s.Canonical()
		for _, in := range []string{s.Format(), canon} {
			back, err := ParseSpec(in)
			if err != nil {
				t.Fatalf("ParseSpec(%q): %v (from %+v)", in, err, s)
			}
			if got := back.Canonical(); got != canon {
				t.Fatalf("ParseSpec(%q).Canonical() = %q, want %q", in, got, canon)
			}
		}
		// Instantiation must succeed for every valid spec.
		sel, iq, rf, err := s.New(2)
		if err != nil || sel == nil || iq == nil || rf == nil {
			t.Fatalf("New(%q): %v", s.Format(), err)
		}
	}
}

// FuzzParseSpec: no input crashes the parser, and every accepted input has
// a stable canonical form (parse → canonical → parse is a fixed point).
func FuzzParseSpec(f *testing.F) {
	for name := range namedCanonicals {
		f.Add(name)
		f.Add(namedCanonicals[name])
	}
	f.Add("sel=stall,iq=cspsp:frac=0.4,rf=cdprf:interval=32768")
	f.Add("iq=cssp")
	f.Add("rf=cdprf,iq=cssp,sel=flush+")
	f.Add("sel=icount:bogus=1")
	f.Add("sel=,iq=:,rf==")
	f.Fuzz(func(t *testing.T, in string) {
		s, err := ParseSpec(in)
		if err != nil {
			return
		}
		canon := s.Canonical()
		back, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted input %q does not re-parse: %v", canon, in, err)
		}
		if got := back.Canonical(); got != canon {
			t.Fatalf("canonical not a fixed point: %q -> %q -> %q", in, canon, got)
		}
	})
}

func TestParseSpecDefaultsAndOrder(t *testing.T) {
	// Omitted clauses default to the Icount baseline; order is free.
	for in, want := range map[string]string{
		"iq=cssp":                         "cssp",
		"rf=cdprf,iq=cssp":                "cdprf",
		"sel=stall":                       "stall",
		"rf=cisprf,iq=cssp":               "cisprf",
		"iq=cspsp:frac=0.25":              "cspsp", // explicit default drops
		"rf=cdprf:interval=16384,iq=cssp": "cdprf",
		"iq=cspsp:frac=0.4":               "sel=icount,iq=cspsp:frac=0.4,rf=none",
		"sel=stall,iq=cssp,rf=cdprf":      "sel=stall,iq=cssp,rf=cdprf",
	} {
		got, err := CanonicalScheme(in)
		if err != nil {
			t.Fatalf("CanonicalScheme(%q): %v", in, err)
		}
		if got != want {
			t.Errorf("CanonicalScheme(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, in := range []string{
		"",
		"bogus",                      // unknown named scheme
		"sel=bogus",                  // unknown selector
		"iq=bogus",                   // unknown IQ policy
		"rf=bogus",                   // unknown RF policy
		"foo=icount",                 // unknown clause
		"sel=icount,sel=stall",       // duplicate clause
		"sel=icount:x=1",             // selector takes no params
		"iq=cspsp:bogus=1",           // unknown param
		"iq=cspsp:frac=0.9",          // out of range
		"iq=cspsp:frac=abc",          // unparseable value
		"iq=cspsp:frac=0.3:frac=0.3", // param set twice
		"iq=pc:offset=1.5",           // integer-constrained
		"rf=cdprf:interval=7",        // below min
		"sel=",                       // empty component
		"iq=cspsp:frac",              // param without value
	} {
		if _, err := ParseSpec(in); err == nil {
			t.Errorf("ParseSpec(%q) accepted, want error", in)
		}
	}
}

// TestSpecInstantiation: composed specs instantiate the same component
// types the named registry produces, and parameters land in the right
// fields.
func TestSpecInstantiation(t *testing.T) {
	sp, err := ParseSpec("sel=stall,iq=cspsp:frac=0.4,rf=cdprf:interval=32768")
	if err != nil {
		t.Fatal(err)
	}
	sel, iq, rf, err := sp.New(2)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Name() != "stall" {
		t.Errorf("selector = %s", sel.Name())
	}
	cspsp, ok := iq.(*CSPSP)
	if !ok || cspsp.GuaranteeFrac != 0.4 {
		t.Errorf("iq = %#v, want CSPSP{frac 0.4}", iq)
	}
	cdprf, ok := rf.(*CDPRF)
	if !ok || cdprf.cfg.Interval != 32768 {
		t.Errorf("rf = %#v, want CDPRF{interval 32768}", rf)
	}

	// PC offset rotates the binding.
	sp, err = ParseSpec("iq=pc:offset=1")
	if err != nil {
		t.Fatal(err)
	}
	_, iq, _, err = sp.New(2)
	if err != nil {
		t.Fatal(err)
	}
	m := newFake(2, 2, 32, 64)
	if !iq.Allows(0, 1, m) || iq.Allows(0, 0, m) {
		t.Error("pc offset=1 should bind thread 0 to cluster 1")
	}
	if c, ok := iq.(PC).ForcedCluster(0); !ok || c%2 != 1 {
		t.Errorf("ForcedCluster(0) = %d", c)
	}

	// DCRA slow weight scales the share.
	sp, err = ParseSpec("iq=dcra-iq:slowweight=3,rf=dcra-rf:slowweight=3")
	if err != nil {
		t.Fatal(err)
	}
	_, iq, _, err = sp.New(2)
	if err != nil {
		t.Fatal(err)
	}
	d := iq.(*DCRAIQ)
	d.MissStart(0, 1, 0)
	// weight 3 vs 1: thread 0's share of 32 entries is 32*3/4 = 24.
	if got := d.st.share(0, 32, 2); got != 24 {
		t.Errorf("share = %d, want 24", got)
	}
}

// TestCDPRFIntervalDefault guards the coupling between the cdprf
// component's declared interval default and DefaultRFConfig: if they
// diverge, an explicit-default spec (param dropped by normalization) would
// instantiate differently from its canonical form.
func TestCDPRFIntervalDefault(t *testing.T) {
	c, ok := findRF("cdprf")
	if !ok {
		t.Fatal("cdprf not registered")
	}
	p := c.param("interval")
	if p == nil {
		t.Fatal("cdprf has no interval param")
	}
	for _, n := range []int{1, 2, 4} {
		if got := DefaultRFConfig(n).Interval; got != int64(p.Default) {
			t.Fatalf("DefaultRFConfig(%d).Interval = %d, declared default %v", n, got, p.Default)
		}
	}
}

// TestComponentRegistryDisjoint: component names must be unique across the
// three registries — campaign scheme_axes param keys ("component.param")
// rely on a name identifying its kind.
func TestComponentRegistryDisjoint(t *testing.T) {
	seen := map[string]string{}
	check := func(kind string, cs []Component) {
		for _, c := range cs {
			if prev, dup := seen[c.Name]; dup {
				t.Errorf("component %q registered as both %s and %s", c.Name, prev, kind)
			}
			seen[c.Name] = kind
			if c.Ref == "" || c.Desc == "" {
				t.Errorf("component %q missing ref/desc", c.Name)
			}
			for _, p := range c.Params {
				if p.Min > p.Default || p.Default > p.Max {
					t.Errorf("component %q param %q: default %v outside [%v, %v]", c.Name, p.Name, p.Default, p.Min, p.Max)
				}
				if strings.ContainsAny(p.Name, ",:=") {
					t.Errorf("param name %q collides with grammar separators", p.Name)
				}
			}
			if strings.ContainsAny(c.Name, ",:=") {
				t.Errorf("component name %q collides with grammar separators", c.Name)
			}
		}
	}
	check("selector", Selectors())
	check("iq", IQPolicies())
	check("rf", RFPolicies())
}

// TestSchemeInfos: the machine-readable listing is complete and agrees
// with the registry (the CI README cross-check consumes it).
func TestSchemeInfos(t *testing.T) {
	infos := SchemeInfos()
	if len(infos) != len(Names()) {
		t.Fatalf("%d infos for %d schemes", len(infos), len(Names()))
	}
	for _, in := range infos {
		sch, err := Lookup(in.Name)
		if err != nil {
			t.Fatal(err)
		}
		if in.Spec != sch.Spec.Format() || in.Selector != sch.Spec.Sel.Name ||
			in.IQ != sch.Spec.IQ.Name || in.RF != sch.Spec.RF.Name {
			t.Errorf("info %+v disagrees with registry", in)
		}
	}
	set := Components()
	if len(set.Selectors) == 0 || len(set.IQ) == 0 || len(set.RF) == 0 || len(set.Schemes) != 12 {
		t.Errorf("Components() incomplete: %d/%d/%d/%d", len(set.Selectors), len(set.IQ), len(set.RF), len(set.Schemes))
	}
}

// TestBuilderDefaultsMatchDeclared: instantiating a component with no
// explicit parameters must equal instantiating it with every parameter
// explicitly set to its declared default. This pins the builders to the
// registry's Param.Default values — if a declared default changes without
// its builder (or vice versa), two specs with the same canonical cache
// key would simulate different machines.
func TestBuilderDefaultsMatchDeclared(t *testing.T) {
	explicitDefaults := func(c Component) map[string]float64 {
		if len(c.Params) == 0 {
			return nil
		}
		out := make(map[string]float64, len(c.Params))
		for _, p := range c.Params {
			out[p.Name] = p.Default
		}
		return out
	}
	for _, e := range selectorRegistry {
		a := e.build(2, nil)
		b := e.build(2, explicitDefaults(e.Component))
		if !reflect.DeepEqual(a, b) {
			t.Errorf("selector %s: default-omitted %#v != default-explicit %#v", e.Name, a, b)
		}
	}
	for _, e := range iqRegistry {
		a := e.build(nil)
		b := e.build(explicitDefaults(e.Component))
		if !reflect.DeepEqual(a, b) {
			t.Errorf("iq %s: default-omitted %#v != default-explicit %#v", e.Name, a, b)
		}
	}
	for _, e := range rfRegistry {
		a := e.build(DefaultRFConfig(2), nil)
		b := e.build(DefaultRFConfig(2), explicitDefaults(e.Component))
		if !reflect.DeepEqual(a, b) {
			t.Errorf("rf %s: default-omitted %#v != default-explicit %#v", e.Name, a, b)
		}
	}
}
