package policy

// IQPolicy bounds per-thread issue-queue occupancy (Table 3 schemes).
// The core asks, for a uop of thread t about to be renamed, whether the
// scheme permits allocating one entry in cluster c; physical free space is
// checked separately by the core.
type IQPolicy interface {
	// Name identifies the scheme.
	Name() string
	// Allows reports whether thread t may allocate one more issue-queue
	// entry in cluster c under the scheme's cap (ignoring physical space).
	//smtlint:noalloc
	Allows(t, c int, m Machine) bool
	// ForcedCluster returns (cluster, true) when the scheme statically
	// binds thread t to one cluster (the PC scheme); otherwise ok=false
	// and the steering logic chooses.
	//smtlint:noalloc
	ForcedCluster(t int) (c int, ok bool)
}

// Unrestricted applies no per-thread cap; it is the IQ behaviour of the
// Icount, Stall and Flush+ schemes, which manage threads only at rename
// selection.
type Unrestricted struct{}

// NewUnrestricted returns the cap-free IQ policy.
func NewUnrestricted() IQPolicy { return Unrestricted{} }

// Name implements IQPolicy.
func (Unrestricted) Name() string { return "unrestricted" }

// Allows implements IQPolicy.
//
//smtlint:noalloc
func (Unrestricted) Allows(int, int, Machine) bool { return true }

// ForcedCluster implements IQPolicy.
//
//smtlint:noalloc
func (Unrestricted) ForcedCluster(int) (int, bool) { return 0, false }

// CISP is the Cluster-Insensitive Static Partitioned scheme (ref [31]): a
// thread may hold at most 1/numThreads of the *total* issue-queue entries,
// regardless of which cluster they are in.
type CISP struct{}

// NewCISP returns the CISP policy.
func NewCISP() IQPolicy { return CISP{} }

// Name implements IQPolicy.
func (CISP) Name() string { return "cisp" }

// Allows implements IQPolicy.
//
//smtlint:noalloc
func (CISP) Allows(t, _ int, m Machine) bool {
	cap := m.NumClusters() * m.IQSize() / m.NumThreads()
	return IQTotalOcc(m, t) < cap
}

// ForcedCluster implements IQPolicy.
//
//smtlint:noalloc
func (CISP) ForcedCluster(int) (int, bool) { return 0, false }

// CSSP is the Cluster-Sensitive Static Partitioned scheme: a thread may
// hold at most 1/numThreads of *each cluster's* issue-queue entries. This
// is the scheme the paper finds best for the issue queue (§5.1): it
// guarantees every thread slots in every cluster, preserving workload
// balance.
type CSSP struct{}

// NewCSSP returns the CSSP policy.
func NewCSSP() IQPolicy { return CSSP{} }

// Name implements IQPolicy.
func (CSSP) Name() string { return "cssp" }

// Allows implements IQPolicy.
//
//smtlint:noalloc
func (CSSP) Allows(t, c int, m Machine) bool {
	return m.IQOcc(c, t) < m.IQSize()/m.NumThreads()
}

// ForcedCluster implements IQPolicy.
//
//smtlint:noalloc
func (CSSP) ForcedCluster(int) (int, bool) { return 0, false }

// CSPSP is the Cluster-Sensitive Partial Static Partitioned scheme: only a
// fraction (25 % in the paper) of each cluster's entries is guaranteed per
// thread; threads compete for the rest. A thread may allocate in cluster c
// as long as doing so cannot eat into the other threads' unused guarantees.
type CSPSP struct {
	// GuaranteeFrac is the guaranteed fraction per thread per cluster
	// (the paper uses 0.25). Must be in (0, 1/numThreads].
	GuaranteeFrac float64
}

// NewCSPSP returns the CSPSP policy with the paper's 25 % guarantee.
func NewCSPSP() IQPolicy { return &CSPSP{GuaranteeFrac: 0.25} }

// Name implements IQPolicy.
func (*CSPSP) Name() string { return "cspsp" }

// Allows implements IQPolicy.
//
//smtlint:noalloc
func (p *CSPSP) Allows(t, c int, m Machine) bool {
	size := m.IQSize()
	guarantee := int(float64(size) * p.GuaranteeFrac)
	if guarantee < 1 {
		guarantee = 1
	}
	reserved := 0
	for o := 0; o < m.NumThreads(); o++ {
		if o == t {
			continue
		}
		if short := guarantee - m.IQOcc(c, o); short > 0 {
			reserved += short
		}
	}
	// t can take the entry only if enough free space remains to honor the
	// other threads' unused guarantees after this allocation.
	return m.IQFree(c)-reserved >= 1
}

// ForcedCluster implements IQPolicy.
//
//smtlint:noalloc
func (*CSPSP) ForcedCluster(int) (int, bool) { return 0, false }

// PC is the Private Clusters scheme: thread t is statically bound to
// cluster (t+Offset) mod numClusters and all its uops are steered there.
// Offset rotates the ownership assignment (spec param "offset"), so a
// sweep can probe whether which cluster a thread owns matters on an
// asymmetric shape; the default 0 is the paper's binding.
type PC struct {
	Offset int
}

// NewPC returns the private-clusters policy with the paper's binding.
func NewPC() IQPolicy { return PC{} }

// Name implements IQPolicy.
func (PC) Name() string { return "pc" }

// Allows implements IQPolicy.
//
//smtlint:noalloc
func (p PC) Allows(t, c int, m Machine) bool {
	return c == (t+p.Offset)%m.NumClusters()
}

// ForcedCluster implements IQPolicy. The core reduces the returned cluster
// modulo the cluster count.
//
//smtlint:noalloc
func (p PC) ForcedCluster(t int) (int, bool) { return t + p.Offset, true }
