// Package policy implements every resource assignment scheme evaluated in
// the paper (Tables 3 and 4) plus the proposed dynamic register-file scheme
// CDPRF (Figs. 7–8) and the future-work adaptations sketched in §6.
//
// A scheme decomposes into three cooperating pieces, mirroring the paper's
// structure:
//
//   - a Selector (rename thread-selection policy): Icount, Stall, Flush+;
//   - an IQPolicy bounding issue-queue occupancy per thread: unrestricted,
//     CISP, CSSP, CSPSP, PC;
//   - an RFPolicy bounding physical-register occupancy per thread: none,
//     CSSPRF, CISPRF, CDPRF.
//
// Each kind of component lives in a registry with typed, sweepable
// parameters (see spec.go); SchemeSpec composes one of each through the
// grammar "sel=<selector>,iq=<iq policy>,rf=<rf policy>" (parameters as
// :name=value), so combinations beyond the paper's tables are reachable
// from every scheme-taking surface. The named schemes of the paper are
// just named compositions registered in Lookup (e.g. "cssp" = Icount
// selector + CSSP IQ policy + no RF policy; "cdprf" = Icount + CSSP +
// dynamic RF); a composed spec matching a named triple canonicalizes back
// to the name, keeping content-addressed result keys stable (DESIGN.md
// §3).
package policy

import "clustersmt/internal/isa"

// Machine is the narrow, read-only view of processor state that policies
// consult. It is implemented by core.Processor; tests use lightweight fakes.
type Machine interface {
	// NumThreads returns the number of hardware threads.
	//smtlint:noalloc
	NumThreads() int
	// NumClusters returns the number of back-end clusters.
	//smtlint:noalloc
	NumClusters() int
	// IQSize returns the per-cluster issue-queue capacity.
	//smtlint:noalloc
	IQSize() int
	// IQFree returns free issue-queue entries in cluster c.
	//smtlint:noalloc
	IQFree(c int) int
	// IQOcc returns the issue-queue entries cluster c holds for thread t.
	//smtlint:noalloc
	IQOcc(c, t int) int
	// RFTotal returns physical registers of kind k summed over clusters.
	//smtlint:noalloc
	RFTotal(k isa.RegKind) int
	// RFFree returns free registers of kind k summed over clusters.
	//smtlint:noalloc
	RFFree(k isa.RegKind) int
	// RFInUse returns registers of kind k held by thread t over clusters.
	//smtlint:noalloc
	RFInUse(t int, k isa.RegKind) int
	// RFClusterTotal returns the per-cluster register count of kind k.
	//smtlint:noalloc
	RFClusterTotal(k isa.RegKind) int
	// RFClusterFree returns free registers of kind k in cluster c.
	//smtlint:noalloc
	RFClusterFree(c int, k isa.RegKind) int
	// RFClusterInUse returns registers of kind k in cluster c held by t.
	//smtlint:noalloc
	RFClusterInUse(c, t int, k isa.RegKind) int
	// Now returns the current cycle.
	//smtlint:noalloc
	Now() int64
}

// IQTotalOcc returns the issue-queue entries thread t holds across all
// clusters of m.
//
//smtlint:noalloc
func IQTotalOcc(m Machine, t int) int {
	total := 0
	for c := 0; c < m.NumClusters(); c++ {
		total += m.IQOcc(c, t)
	}
	return total
}
