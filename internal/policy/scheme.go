package policy

import (
	"fmt"
	"sort"
)

// Scheme is a named paper scheme: a (selector, IQ policy, RF policy)
// composition registered under the paper's name. Since the scheme-spec
// redesign a Scheme is nothing but a named SchemeSpec — every named scheme
// is reachable through the component grammar, and a composed spec that
// matches a named triple canonicalizes back to the name.
type Scheme struct {
	// Name is the paper's name for the scheme (lower-cased).
	Name string
	// Ref cites where the paper defines and evaluates the scheme
	// (table / section), so listings and docs stay traceable to the source.
	Ref string
	// Desc is a one-line description for `expdriver schemes` and the
	// README registry table.
	Desc string
	// Spec is the scheme's composition in the component registries.
	Spec SchemeSpec
}

// New instantiates the scheme's components for n threads.
func (s Scheme) New(n int) (Selector, IQPolicy, RFPolicy) {
	sel, iq, rf, err := s.Spec.New(n)
	if err != nil {
		// Registry invariant: every named scheme's spec is a valid
		// composition (TestSchemeRegistry instantiates all of them).
		panic(fmt.Sprintf("policy: named scheme %s has invalid spec: %v", s.Name, err))
	}
	return sel, iq, rf
}

// triple composes a param-free SchemeSpec for the named-scheme registry.
func triple(sel, iq, rf string) SchemeSpec {
	return SchemeSpec{
		Sel: ComponentSpec{Name: sel},
		IQ:  ComponentSpec{Name: iq},
		RF:  ComponentSpec{Name: rf},
	}
}

var registry = map[string]Scheme{
	// §5.1, Table 3: issue-queue schemes (RF unmanaged).
	"icount": {Name: "icount", Ref: "§5.1 Table 3", Desc: "baseline fetch policy; no IQ/RF occupancy bounds",
		Spec: triple("icount", "unrestricted", "none")},
	"stall": {Name: "stall", Ref: "§5.1 Table 3", Desc: "gate a thread's fetch while it has an L2 miss outstanding",
		Spec: triple("stall", "unrestricted", "none")},
	"flush+": {Name: "flush+", Ref: "§5.1 Table 3", Desc: "flush an L2-missing thread's in-flight instructions and stall it",
		Spec: triple("flush+", "unrestricted", "none")},
	"cisp": {Name: "cisp", Ref: "§5.1 Table 3", Desc: "cluster-insensitive static partition: cap a thread's total IQ share",
		Spec: triple("icount", "cisp", "none")},
	"cssp": {Name: "cssp", Ref: "§5.1 Table 3", Desc: "cluster-sensitive static partition: cap a thread's IQ share per cluster",
		Spec: triple("icount", "cssp", "none")},
	"cspsp": {Name: "cspsp", Ref: "§5.1 Table 3", Desc: "cluster-sensitive partial static partition: per-cluster cap on a fraction",
		Spec: triple("icount", "cspsp", "none")},
	"pc": {Name: "pc", Ref: "§5.1 Table 3", Desc: "private clusters: each thread owns a subset of the clusters",
		Spec: triple("icount", "pc", "none")},

	// §5.2, Table 4: register-file schemes layered on CSSP.
	"cssprf": {Name: "cssprf", Ref: "§5.2 Table 4", Desc: "CSSP plus a cluster-sensitive static register partition",
		Spec: triple("icount", "cssp", "cssprf")},
	"cisprf": {Name: "cisprf", Ref: "§5.2 Table 4", Desc: "CSSP plus a cluster-insensitive static register partition",
		Spec: triple("icount", "cssp", "cisprf")},
	"cdprf": {Name: "cdprf", Ref: "§5.2 Figs. 7–8", Desc: "CSSP plus the proposed dynamic register partition (the paper's best)",
		Spec: triple("icount", "cssp", "cdprf")},

	// §6 future work, implemented as extensions (see future.go).
	"dcra": {Name: "dcra", Ref: "§6 ext. [30]", Desc: "cluster-aware DCRA: activity-scaled dynamic IQ and RF shares",
		Spec: triple("icount", "dcra-iq", "dcra-rf")},
	"hillclimb": {Name: "hillclimb", Ref: "§6 ext. [32]", Desc: "hill-climbing per-cluster IQ shares, moving along the IPC gradient",
		Spec: triple("icount", "hillclimb-iq", "none")},
}

// Lookup returns the scheme registered under name. It resolves names only;
// use ParseSpec to accept composed scheme specs as well.
func Lookup(name string) (Scheme, error) {
	s, ok := registry[name]
	if !ok {
		return Scheme{}, fmt.Errorf("policy: unknown scheme %q (known: %v)", name, Names())
	}
	return s, nil
}

// Names returns all registered scheme names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// PaperIQSchemes lists the Table 3 schemes in the paper's figure order.
func PaperIQSchemes() []string {
	return []string{"icount", "stall", "flush+", "cisp", "cssp", "cspsp", "pc"}
}

// PaperRFSchemes lists the Table 4 / Fig. 6 schemes in figure order.
func PaperRFSchemes() []string {
	return []string{"cssp", "cssprf", "cisprf"}
}
