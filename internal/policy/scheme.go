package policy

import (
	"fmt"
	"sort"
)

// Scheme bundles the three policy components under a paper-level name.
type Scheme struct {
	// Name is the paper's name for the scheme (lower-cased).
	Name string
	// Ref cites where the paper defines and evaluates the scheme
	// (table / section), so listings and docs stay traceable to the source.
	Ref string
	// Desc is a one-line description for `expdriver schemes` and the
	// README registry table.
	Desc string
	// Selector constructs the rename thread-selection policy for n threads.
	Selector func(n int) Selector
	// IQ constructs the issue-queue occupancy policy.
	IQ func() IQPolicy
	// RF constructs the register-file occupancy policy.
	RF func(cfg RFConfig) RFPolicy
}

// New instantiates the scheme's components for n threads.
func (s Scheme) New(n int) (Selector, IQPolicy, RFPolicy) {
	return s.Selector(n), s.IQ(), s.RF(DefaultRFConfig(n))
}

var registry = map[string]Scheme{
	// §5.1, Table 3: issue-queue schemes (RF unmanaged).
	"icount": {Name: "icount", Ref: "§5.1 Table 3", Desc: "baseline fetch policy; no IQ/RF occupancy bounds",
		Selector: NewIcount, IQ: NewUnrestricted, RF: NewNoRF},
	"stall": {Name: "stall", Ref: "§5.1 Table 3", Desc: "gate a thread's fetch while it has an L2 miss outstanding",
		Selector: NewStall, IQ: NewUnrestricted, RF: NewNoRF},
	"flush+": {Name: "flush+", Ref: "§5.1 Table 3", Desc: "flush an L2-missing thread's in-flight instructions and stall it",
		Selector: NewFlushPlus, IQ: NewUnrestricted, RF: NewNoRF},
	"cisp": {Name: "cisp", Ref: "§5.1 Table 3", Desc: "cluster-insensitive static partition: cap a thread's total IQ share",
		Selector: NewIcount, IQ: NewCISP, RF: NewNoRF},
	"cssp": {Name: "cssp", Ref: "§5.1 Table 3", Desc: "cluster-sensitive static partition: cap a thread's IQ share per cluster",
		Selector: NewIcount, IQ: NewCSSP, RF: NewNoRF},
	"cspsp": {Name: "cspsp", Ref: "§5.1 Table 3", Desc: "cluster-sensitive partial static partition: per-cluster cap on a fraction",
		Selector: NewIcount, IQ: NewCSPSP, RF: NewNoRF},
	"pc": {Name: "pc", Ref: "§5.1 Table 3", Desc: "private clusters: each thread owns a subset of the clusters",
		Selector: NewIcount, IQ: NewPC, RF: NewNoRF},

	// §5.2, Table 4: register-file schemes layered on CSSP.
	"cssprf": {Name: "cssprf", Ref: "§5.2 Table 4", Desc: "CSSP plus a cluster-sensitive static register partition",
		Selector: NewIcount, IQ: NewCSSP, RF: NewCSSPRF},
	"cisprf": {Name: "cisprf", Ref: "§5.2 Table 4", Desc: "CSSP plus a cluster-insensitive static register partition",
		Selector: NewIcount, IQ: NewCSSP, RF: NewCISPRF},
	"cdprf": {Name: "cdprf", Ref: "§5.2 Figs. 7–8", Desc: "CSSP plus the proposed dynamic register partition (the paper's best)",
		Selector: NewIcount, IQ: NewCSSP, RF: NewCDPRF},

	// §6 future work, implemented as extensions (see future.go).
	"dcra": {Name: "dcra", Ref: "§6 ext. [30]", Desc: "cluster-aware DCRA: activity-scaled dynamic IQ and RF shares",
		Selector: NewIcount, IQ: NewDCRAIQ, RF: NewDCRARF},
	"hillclimb": {Name: "hillclimb", Ref: "§6 ext. [32]", Desc: "hill-climbing per-cluster IQ shares, moving along the IPC gradient",
		Selector: NewIcount, IQ: NewHillClimbIQ, RF: NewNoRF},
}

// Lookup returns the scheme registered under name.
func Lookup(name string) (Scheme, error) {
	s, ok := registry[name]
	if !ok {
		return Scheme{}, fmt.Errorf("policy: unknown scheme %q (known: %v)", name, Names())
	}
	return s, nil
}

// Names returns all registered scheme names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// PaperIQSchemes lists the Table 3 schemes in the paper's figure order.
func PaperIQSchemes() []string {
	return []string{"icount", "stall", "flush+", "cisp", "cssp", "cspsp", "pc"}
}

// PaperRFSchemes lists the Table 4 / Fig. 6 schemes in figure order.
func PaperRFSchemes() []string {
	return []string{"cssp", "cssprf", "cisprf"}
}
