package policy

import (
	"fmt"
	"sort"
)

// Scheme bundles the three policy components under a paper-level name.
type Scheme struct {
	// Name is the paper's name for the scheme (lower-cased).
	Name string
	// Selector constructs the rename thread-selection policy for n threads.
	Selector func(n int) Selector
	// IQ constructs the issue-queue occupancy policy.
	IQ func() IQPolicy
	// RF constructs the register-file occupancy policy.
	RF func(cfg RFConfig) RFPolicy
}

// New instantiates the scheme's components for n threads.
func (s Scheme) New(n int) (Selector, IQPolicy, RFPolicy) {
	return s.Selector(n), s.IQ(), s.RF(DefaultRFConfig(n))
}

var registry = map[string]Scheme{
	// §5.1, Table 3: issue-queue schemes (RF unmanaged).
	"icount": {Name: "icount", Selector: NewIcount, IQ: NewUnrestricted, RF: NewNoRF},
	"stall":  {Name: "stall", Selector: NewStall, IQ: NewUnrestricted, RF: NewNoRF},
	"flush+": {Name: "flush+", Selector: NewFlushPlus, IQ: NewUnrestricted, RF: NewNoRF},
	"cisp":   {Name: "cisp", Selector: NewIcount, IQ: NewCISP, RF: NewNoRF},
	"cssp":   {Name: "cssp", Selector: NewIcount, IQ: NewCSSP, RF: NewNoRF},
	"cspsp":  {Name: "cspsp", Selector: NewIcount, IQ: NewCSPSP, RF: NewNoRF},
	"pc":     {Name: "pc", Selector: NewIcount, IQ: NewPC, RF: NewNoRF},

	// §5.2, Table 4: register-file schemes layered on CSSP.
	"cssprf": {Name: "cssprf", Selector: NewIcount, IQ: NewCSSP, RF: NewCSSPRF},
	"cisprf": {Name: "cisprf", Selector: NewIcount, IQ: NewCSSP, RF: NewCISPRF},
	"cdprf":  {Name: "cdprf", Selector: NewIcount, IQ: NewCSSP, RF: NewCDPRF},

	// §6 future work, implemented as extensions (see future.go).
	"dcra":      {Name: "dcra", Selector: NewIcount, IQ: NewDCRAIQ, RF: NewDCRARF},
	"hillclimb": {Name: "hillclimb", Selector: NewIcount, IQ: NewHillClimbIQ, RF: NewNoRF},
}

// Lookup returns the scheme registered under name.
func Lookup(name string) (Scheme, error) {
	s, ok := registry[name]
	if !ok {
		return Scheme{}, fmt.Errorf("policy: unknown scheme %q (known: %v)", name, Names())
	}
	return s, nil
}

// Names returns all registered scheme names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// PaperIQSchemes lists the Table 3 schemes in the paper's figure order.
func PaperIQSchemes() []string {
	return []string{"icount", "stall", "flush+", "cisp", "cssp", "cspsp", "pc"}
}

// PaperRFSchemes lists the Table 4 / Fig. 6 schemes in figure order.
func PaperRFSchemes() []string {
	return []string{"cssp", "cssprf", "cisprf"}
}
