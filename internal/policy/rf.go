package policy

import "clustersmt/internal/isa"

// RFPolicy bounds per-thread physical-register occupancy (Table 4 schemes
// and the dynamic scheme of Figs. 7–8). MayAllocate is consulted at rename
// for every register the uop (and its generated copies) needs.
type RFPolicy interface {
	// Name identifies the scheme.
	Name() string
	// MayAllocate reports whether thread t may allocate n more physical
	// registers of kind k in cluster c under the scheme's accounting.
	// Physical free-list space is checked separately by the core.
	//smtlint:noalloc
	MayAllocate(t int, k isa.RegKind, c int, n int, m Machine) bool
	// NoteStall records that thread t's rename was blocked this cycle for
	// lack of registers of kind k (feeds CDPRF's Starvation counters).
	//smtlint:noalloc
	NoteStall(t int, k isa.RegKind)
	// EndCycle runs once per simulated cycle after rename, letting
	// adaptive schemes accumulate occupancy counters and re-threshold.
	//smtlint:noalloc
	EndCycle(m Machine)
}

// NoRF applies no register-file cap (used when the RF is unbounded or
// managed only by the IQ scheme, e.g. plain CSSP).
type NoRF struct{}

// NewNoRF returns the cap-free RF policy.
func NewNoRF(RFConfig) RFPolicy { return NoRF{} }

// Name implements RFPolicy.
func (NoRF) Name() string { return "none" }

// MayAllocate implements RFPolicy.
//
//smtlint:noalloc
func (NoRF) MayAllocate(int, isa.RegKind, int, int, Machine) bool { return true }

// NoteStall implements RFPolicy.
//
//smtlint:noalloc
func (NoRF) NoteStall(int, isa.RegKind) {}

// EndCycle implements RFPolicy.
//
//smtlint:noalloc
func (NoRF) EndCycle(Machine) {}

// RFConfig parameterizes register-file policies.
type RFConfig struct {
	// NumThreads is the number of hardware threads.
	NumThreads int
	// Interval is CDPRF's re-threshold period in cycles (paper: 128 K,
	// chosen as a power of two so the average is a shift).
	Interval int64
}

// DefaultRFConfig returns the CDPRF parameters for n threads. The paper
// uses a 128 K-cycle re-threshold interval on multi-million-cycle runs; the
// default here is 16 K cycles (still a power of two, so the average is a
// shift) because the reproduction's traces are two orders of magnitude
// shorter — the interval-to-run-length ratio is preserved. The ablation
// benchmark BenchmarkAblationCDPRFInterval sweeps this choice.
func DefaultRFConfig(n int) RFConfig {
	return RFConfig{NumThreads: n, Interval: 16 * 1024}
}

// CSSPRF is the Cluster-Sensitive Static Partitioned Register File: a
// thread may use at most 1/numThreads of each cluster's register file of
// each kind. The paper shows it always loses to CISPRF because it
// contradicts decisions already taken by the steering logic and CSSP
// (§5.2).
type CSSPRF struct{}

// NewCSSPRF returns the cluster-sensitive static RF policy.
func NewCSSPRF(RFConfig) RFPolicy { return CSSPRF{} }

// Name implements RFPolicy.
func (CSSPRF) Name() string { return "cssprf" }

// MayAllocate implements RFPolicy.
//
//smtlint:noalloc
func (CSSPRF) MayAllocate(t int, k isa.RegKind, c int, n int, m Machine) bool {
	return m.RFClusterInUse(c, t, k)+n <= m.RFClusterTotal(k)/m.NumThreads()
}

// NoteStall implements RFPolicy.
//
//smtlint:noalloc
func (CSSPRF) NoteStall(int, isa.RegKind) {}

// EndCycle implements RFPolicy.
//
//smtlint:noalloc
func (CSSPRF) EndCycle(Machine) {}

// CISPRF is the Cluster-Insensitive Static Partitioned Register File: a
// thread may use at most 1/numThreads of the *total* register file of each
// kind, wherever the registers live.
type CISPRF struct{}

// NewCISPRF returns the cluster-insensitive static RF policy.
func NewCISPRF(RFConfig) RFPolicy { return CISPRF{} }

// Name implements RFPolicy.
func (CISPRF) Name() string { return "cisprf" }

// MayAllocate implements RFPolicy.
//
//smtlint:noalloc
func (CISPRF) MayAllocate(t int, k isa.RegKind, _ int, n int, m Machine) bool {
	return m.RFInUse(t, k)+n <= m.RFTotal(k)/m.NumThreads()
}

// NoteStall implements RFPolicy.
//
//smtlint:noalloc
func (CISPRF) NoteStall(int, isa.RegKind) {}

// EndCycle implements RFPolicy.
//
//smtlint:noalloc
func (CISPRF) EndCycle(Machine) {}

// CDPRF is the paper's proposed Cluster-insensitive Dynamic Partitioned
// Register File (Figs. 7–8). Per thread and register kind it keeps:
//
//   - RFOC, accumulating every cycle the registers the thread is using plus
//     its Starvation counter, and
//   - Starvation, incremented each cycle the thread is stalled for lack of
//     registers of that kind and reset otherwise (this makes the threshold
//     grow quickly for starved threads).
//
// Every Interval cycles the per-thread guaranteed threshold becomes
// min(RFOC/Interval, total/numThreads) and RFOC resets. A thread below its
// threshold may always allocate; above it, it may allocate only while the
// free registers can still cover the other threads' unused guarantees.
type CDPRF struct {
	cfg       RFConfig
	rfoc      [][]int64 // [thread][kind]
	starv     [][]int64
	stalled   [][]bool
	threshold [][]int
	initDone  bool
	nextTick  int64
}

// NewCDPRF returns the dynamic RF policy with cfg (zero Interval selects
// the paper's 128 K cycles).
func NewCDPRF(cfg RFConfig) RFPolicy {
	if cfg.NumThreads <= 0 {
		cfg.NumThreads = 2
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 128 * 1024
	}
	p := &CDPRF{cfg: cfg}
	n := cfg.NumThreads
	p.rfoc = make2D[int64](n, isa.NumRegKinds)
	p.starv = make2D[int64](n, isa.NumRegKinds)
	p.threshold = make2D[int](n, isa.NumRegKinds)
	p.stalled = make2D[bool](n, isa.NumRegKinds)
	return p
}

func make2D[T any](n, m int) [][]T {
	out := make([][]T, n)
	for i := range out {
		out[i] = make([]T, m)
	}
	return out
}

// Name implements RFPolicy.
func (p *CDPRF) Name() string { return "cdprf" }

// Threshold returns the current guaranteed register count for thread t and
// kind k (exported for tests and the dynamicrf example).
func (p *CDPRF) Threshold(t int, k isa.RegKind) int { return p.threshold[t][int(k)] }

// Starvation returns the current starvation counter for thread t, kind k.
func (p *CDPRF) Starvation(t int, k isa.RegKind) int64 { return p.starv[t][int(k)] }

//smtlint:noalloc
func (p *CDPRF) ensureInit(m Machine) {
	if p.initDone {
		return
	}
	// Before the first interval completes there is no occupancy history;
	// guarantee an even static split (equivalent to CISPRF), which the
	// first re-threshold then adapts.
	for t := range p.threshold {
		for k := 0; k < isa.NumRegKinds; k++ {
			p.threshold[t][k] = m.RFTotal(isa.RegKind(k)) / p.cfg.NumThreads
		}
	}
	p.nextTick = m.Now() + p.cfg.Interval
	p.initDone = true
}

// MayAllocate implements RFPolicy. The scheme is cluster-insensitive: the
// cluster argument is ignored.
//
//smtlint:noalloc
func (p *CDPRF) MayAllocate(t int, k isa.RegKind, _ int, n int, m Machine) bool {
	p.ensureInit(m)
	ki := int(k)
	inUse := m.RFInUse(t, k)
	if inUse+n <= p.threshold[t][ki] {
		return true
	}
	// Above its guarantee the thread may only take registers that cannot
	// be needed to honor the other threads' guaranteed minima.
	reserved := 0
	for o := 0; o < m.NumThreads(); o++ {
		if o == t {
			continue
		}
		if short := p.threshold[o][ki] - m.RFInUse(o, k); short > 0 {
			reserved += short
		}
	}
	return m.RFFree(k)-reserved >= n
}

// NoteStall implements RFPolicy.
//
//smtlint:noalloc
func (p *CDPRF) NoteStall(t int, k isa.RegKind) { p.stalled[t][int(k)] = true }

// EndCycle implements RFPolicy: the per-cycle flow of Fig. 7 and the
// per-interval re-threshold of Fig. 8.
//
//smtlint:noalloc
func (p *CDPRF) EndCycle(m Machine) {
	p.ensureInit(m)
	for t := 0; t < p.cfg.NumThreads; t++ {
		for k := 0; k < isa.NumRegKinds; k++ {
			if p.stalled[t][k] {
				p.starv[t][k]++
			} else {
				p.starv[t][k] = 0
			}
			p.stalled[t][k] = false
			p.rfoc[t][k] += int64(m.RFInUse(t, isa.RegKind(k))) + p.starv[t][k]
		}
	}
	if m.Now() < p.nextTick {
		return
	}
	for t := 0; t < p.cfg.NumThreads; t++ {
		for k := 0; k < isa.NumRegKinds; k++ {
			avg := int(p.rfoc[t][k] / p.cfg.Interval)
			max := m.RFTotal(isa.RegKind(k)) / p.cfg.NumThreads
			if avg > max {
				avg = max
			}
			p.threshold[t][k] = avg
			p.rfoc[t][k] = 0
		}
	}
	p.nextTick = m.Now() + p.cfg.Interval
}
