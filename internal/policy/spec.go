package policy

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is the composable scheme-spec API: per-component registries
// (selectors, IQ policies, RF policies — each with a paper reference and
// typed parameters), a grammar for composing them, and the canonical form
// that named paper schemes normalize to.
//
// The grammar composes one component of each kind, with optional
// parameters:
//
//	sel=icount,iq=cssp,rf=cdprf          // == the named scheme "cdprf"
//	sel=stall,iq=cspsp:frac=0.4,rf=none  // a combination Table 3/4 never ran
//
// Clauses may appear in any order and may be omitted (sel defaults to
// icount, iq to unrestricted, rf to none — the Icount baseline). A bare
// name with no '=' is a named-scheme lookup. Canonical() renders the
// normalized form: clauses in sel,iq,rf order, parameters sorted with
// default-valued ones dropped — and when the normalized triple is exactly
// a named paper scheme, the name itself. Content-addressed result keys
// hash the canonical form, so `sel=icount,iq=cssp,rf=cdprf` recalls the
// same stored results as `cdprf` (and pre-redesign stores stay valid: the
// 12 named schemes canonicalize to the exact strings they hashed before
// this API existed).

// Param is one typed, sweepable parameter of a component. Values are
// float64 in the spec grammar; Integer-constrained params additionally
// reject fractional values.
type Param struct {
	// Name is the grammar key (e.g. "frac" in "iq=cspsp:frac=0.4").
	Name string `json:"name"`
	// Desc is a one-line description for listings.
	Desc string `json:"desc"`
	// Default is the value the component uses when the param is omitted;
	// a param set to its default is dropped from the canonical form.
	Default float64 `json:"default"`
	// Min and Max bound accepted values (inclusive).
	Min float64 `json:"min"`
	Max float64 `json:"max"`
	// Integer requires an integral value.
	Integer bool `json:"integer,omitempty"`
}

// Component is the registry metadata of one selector / IQ policy /
// RF policy: the name the grammar uses, the paper reference, and the
// typed parameters it accepts.
type Component struct {
	Name   string  `json:"name"`
	Ref    string  `json:"ref"`
	Desc   string  `json:"desc"`
	Params []Param `json:"params,omitempty"`
}

// param returns the declared parameter named name, or nil.
func (c Component) param(name string) *Param {
	for i := range c.Params {
		if c.Params[i].Name == name {
			return &c.Params[i]
		}
	}
	return nil
}

// paramNames lists the component's parameter names (for error messages).
func (c Component) paramNames() []string {
	out := make([]string, len(c.Params))
	for i, p := range c.Params {
		out[i] = p.Name
	}
	return out
}

// pv reads parameter name from p, falling back to def when unset. Builders
// use it so a normalized (default-dropped) and an explicit-default spec
// instantiate identically.
func pv(p map[string]float64, name string, def float64) float64 {
	if v, ok := p[name]; ok {
		return v
	}
	return def
}

// selectorEntry, iqEntry and rfEntry pair a component's metadata with its
// parameterized constructor.
type selectorEntry struct {
	Component
	build func(n int, p map[string]float64) Selector
}

type iqEntry struct {
	Component
	build func(p map[string]float64) IQPolicy
}

type rfEntry struct {
	Component
	build func(cfg RFConfig, p map[string]float64) RFPolicy
}

// The three component registries, in listing order. Every component the
// simulator implements is registered here; the named schemes in scheme.go
// are compositions of these and nothing else.
var selectorRegistry = []selectorEntry{
	{Component{Name: "icount", Ref: "§5 ref [1]",
		Desc: "every thread with work is eligible; Icount ordering picks among them"},
		func(n int, _ map[string]float64) Selector { return NewIcount(n) }},
	{Component{Name: "stall", Ref: "§5.1 ref [19]",
		Desc: "a thread with a pending L2 miss cannot rename until it resolves"},
		func(n int, _ map[string]float64) Selector { return NewStall(n) }},
	{Component{Name: "flush+", Ref: "§5.1 ref [25]",
		Desc: "an L2-missing thread is flushed past the miss and stalled; the earliest of two missers continues"},
		func(n int, _ map[string]float64) Selector { return NewFlushPlus(n) }},
}

var iqRegistry = []iqEntry{
	{Component{Name: "unrestricted", Ref: "§5.1",
		Desc: "no per-thread issue-queue cap"},
		func(_ map[string]float64) IQPolicy { return NewUnrestricted() }},
	{Component{Name: "cisp", Ref: "§5.1 ref [31]",
		Desc: "cap a thread's total issue-queue share, cluster-insensitive"},
		func(_ map[string]float64) IQPolicy { return NewCISP() }},
	{Component{Name: "cssp", Ref: "§5.1",
		Desc: "cap a thread's issue-queue share per cluster"},
		func(_ map[string]float64) IQPolicy { return NewCSSP() }},
	{Component{Name: "cspsp", Ref: "§5.1",
		Desc: "guarantee a fraction of each cluster's entries per thread; the rest is shared",
		Params: []Param{{Name: "frac", Desc: "guaranteed per-thread fraction of each cluster's issue-queue entries",
			Default: 0.25, Min: 0.01, Max: 0.5}}},
		func(p map[string]float64) IQPolicy { return &CSPSP{GuaranteeFrac: pv(p, "frac", 0.25)} }},
	{Component{Name: "pc", Ref: "§5.1",
		Desc: "private clusters: each thread statically owns one cluster",
		Params: []Param{{Name: "offset", Desc: "rotation added to the thread index before the modulo cluster binding",
			Default: 0, Min: 0, Max: 16, Integer: true}}},
		func(p map[string]float64) IQPolicy { return PC{Offset: int(pv(p, "offset", 0))} }},
	{Component{Name: "dcra-iq", Ref: "§6 ext. [30]",
		Desc: "DCRA share of each cluster's entries, weighted toward L2-missing threads",
		Params: []Param{{Name: "slowweight", Desc: "share weight of a thread holding an outstanding L2 miss",
			Default: 2, Min: 1, Max: 8, Integer: true}}},
		func(p map[string]float64) IQPolicy {
			return &DCRAIQ{st: &dcraState{slowWeight: int(pv(p, "slowweight", 2))}}
		}},
	{Component{Name: "hillclimb-iq", Ref: "§6 ext. [32]",
		Desc: "hill-climb thread 0's per-cluster issue-queue share along the IPC gradient",
		Params: []Param{
			{Name: "epoch", Desc: "adaptation period in cycles", Default: 16384, Min: 1024, Max: 1 << 20, Integer: true},
			{Name: "delta", Desc: "share perturbation per epoch", Default: 0.0625, Min: 0.001, Max: 0.25},
		}},
		func(p map[string]float64) IQPolicy {
			// Route through the constructor so the non-parameter init
			// (initial share, climb direction) lives in exactly one place.
			h := NewHillClimbIQ().(*HillClimbIQ)
			h.Epoch = int64(pv(p, "epoch", 16384))
			h.Delta = pv(p, "delta", 0.0625)
			return h
		}},
}

var rfRegistry = []rfEntry{
	{Component{Name: "none", Ref: "§5.2",
		Desc: "no per-thread register cap"},
		func(RFConfig, map[string]float64) RFPolicy { return NoRF{} }},
	{Component{Name: "cssprf", Ref: "§5.2",
		Desc: "cap a thread's register share per cluster"},
		func(RFConfig, map[string]float64) RFPolicy { return CSSPRF{} }},
	{Component{Name: "cisprf", Ref: "§5.2",
		Desc: "cap a thread's total register share, cluster-insensitive"},
		func(RFConfig, map[string]float64) RFPolicy { return CISPRF{} }},
	{Component{Name: "cdprf", Ref: "§5.2 Figs. 7–8",
		Desc: "dynamic per-thread register guarantees from occupancy and starvation history",
		// The default must equal DefaultRFConfig's Interval: a spec that
		// sets interval to its default drops the param in canonical form
		// and must then instantiate identically (TestCDPRFIntervalDefault).
		Params: []Param{{Name: "interval", Desc: "re-threshold period in cycles",
			Default: 16384, Min: 1024, Max: 1 << 20, Integer: true}}},
		func(cfg RFConfig, p map[string]float64) RFPolicy {
			if v, ok := p["interval"]; ok {
				cfg.Interval = int64(v)
			}
			return NewCDPRF(cfg)
		}},
	{Component{Name: "dcra-rf", Ref: "§6 ext. [30]",
		Desc: "DCRA share of the total registers of each kind, weighted toward L2-missing threads",
		Params: []Param{{Name: "slowweight", Desc: "share weight of a thread holding an outstanding L2 miss",
			Default: 2, Min: 1, Max: 8, Integer: true}}},
		func(_ RFConfig, p map[string]float64) RFPolicy {
			return &DCRARF{st: &dcraState{slowWeight: int(pv(p, "slowweight", 2))}}
		}},
}

// Selectors returns the selector component registry in listing order.
func Selectors() []Component {
	return components(selectorRegistry, func(e selectorEntry) Component { return e.Component })
}

// IQPolicies returns the IQ-policy component registry in listing order.
func IQPolicies() []Component {
	return components(iqRegistry, func(e iqEntry) Component { return e.Component })
}

// RFPolicies returns the RF-policy component registry in listing order.
func RFPolicies() []Component {
	return components(rfRegistry, func(e rfEntry) Component { return e.Component })
}

func components[E any](reg []E, get func(E) Component) []Component {
	out := make([]Component, len(reg))
	for i, e := range reg {
		out[i] = get(e)
	}
	return out
}

func findSelector(name string) (selectorEntry, bool) {
	for _, e := range selectorRegistry {
		if e.Name == name {
			return e, true
		}
	}
	return selectorEntry{}, false
}

func findIQ(name string) (iqEntry, bool) {
	for _, e := range iqRegistry {
		if e.Name == name {
			return e, true
		}
	}
	return iqEntry{}, false
}

func findRF(name string) (rfEntry, bool) {
	for _, e := range rfRegistry {
		if e.Name == name {
			return e, true
		}
	}
	return rfEntry{}, false
}

func componentNames(cs []Component) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.Name
	}
	return out
}

// ComponentSpec names one component with its explicitly set parameter
// values. A nil Params map means "all defaults".
type ComponentSpec struct {
	Name   string
	Params map[string]float64
}

// WithParam returns a copy of cs with name set to v (copy-on-write; the
// receiver's map is never mutated). Campaign expansion uses it to graft
// swept parameter values onto a base composition.
func (cs ComponentSpec) WithParam(name string, v float64) ComponentSpec {
	m := make(map[string]float64, len(cs.Params)+1)
	for k, val := range cs.Params {
		m[k] = val
	}
	m[name] = v
	cs.Params = m
	return cs
}

// SchemeSpec composes one selector, one IQ policy and one RF policy into a
// runnable resource-assignment scheme. The zero value is invalid; build
// specs with ParseSpec or from the named registry (Lookup(name).Spec).
type SchemeSpec struct {
	Sel ComponentSpec
	IQ  ComponentSpec
	RF  ComponentSpec
}

// Validate checks every component against its registry: the component must
// exist, every parameter must be declared, in range and integral where
// required.
func (s SchemeSpec) Validate() error {
	sel, ok := findSelector(s.Sel.Name)
	if !ok {
		return fmt.Errorf("policy: unknown selector %q (known: %v)", s.Sel.Name, componentNames(Selectors()))
	}
	if err := validateParams("selector", sel.Component, s.Sel.Params); err != nil {
		return err
	}
	iq, ok := findIQ(s.IQ.Name)
	if !ok {
		return fmt.Errorf("policy: unknown iq policy %q (known: %v)", s.IQ.Name, componentNames(IQPolicies()))
	}
	if err := validateParams("iq policy", iq.Component, s.IQ.Params); err != nil {
		return err
	}
	rf, ok := findRF(s.RF.Name)
	if !ok {
		return fmt.Errorf("policy: unknown rf policy %q (known: %v)", s.RF.Name, componentNames(RFPolicies()))
	}
	return validateParams("rf policy", rf.Component, s.RF.Params)
}

func validateParams(kind string, c Component, params map[string]float64) error {
	for name, v := range params {
		p := c.param(name)
		if p == nil {
			if len(c.Params) == 0 {
				return fmt.Errorf("policy: %s %s takes no parameters (got %s=%s)", kind, c.Name, name, formatValue(v))
			}
			return fmt.Errorf("policy: %s %s has no parameter %q (known: %v)", kind, c.Name, name, c.paramNames())
		}
		if math.IsNaN(v) || math.IsInf(v, 0) || v < p.Min || v > p.Max {
			return fmt.Errorf("policy: %s %s: %s=%s out of range [%s, %s]",
				kind, c.Name, name, formatValue(v), formatValue(p.Min), formatValue(p.Max))
		}
		if p.Integer && v != math.Trunc(v) {
			return fmt.Errorf("policy: %s %s: %s=%s must be an integer", kind, c.Name, name, formatValue(v))
		}
	}
	return nil
}

// New instantiates the spec's components for n threads (validating first).
func (s SchemeSpec) New(n int) (Selector, IQPolicy, RFPolicy, error) {
	if err := s.Validate(); err != nil {
		return nil, nil, nil, err
	}
	sel, _ := findSelector(s.Sel.Name)
	iq, _ := findIQ(s.IQ.Name)
	rf, _ := findRF(s.RF.Name)
	return sel.build(n, materialize(sel.Component, s.Sel.Params)),
		iq.build(materialize(iq.Component, s.IQ.Params)),
		rf.build(DefaultRFConfig(n), materialize(rf.Component, s.RF.Params)), nil
}

// materialize overlays the explicitly set params on the component's
// declared defaults, so builders always see a complete map and the
// declared Param.Default is the single source of truth for omitted values
// (the builders' own fallbacks are never consulted through this path;
// TestBuilderDefaultsMatchDeclared guards the direct path too).
func materialize(c Component, params map[string]float64) map[string]float64 {
	if len(c.Params) == 0 {
		return params
	}
	out := make(map[string]float64, len(c.Params))
	for _, p := range c.Params {
		out[p.Name] = p.Default
	}
	for name, v := range params {
		out[name] = v
	}
	return out
}

// normalized drops parameters set to their declared default (so explicit
// defaults and omissions compare equal) and empties exhausted maps.
// Unknown components or parameters pass through untouched — Validate is
// where they are reported.
func (s SchemeSpec) normalized() SchemeSpec {
	if e, ok := findSelector(s.Sel.Name); ok {
		s.Sel = normalizeComponent(s.Sel, e.Component)
	}
	if e, ok := findIQ(s.IQ.Name); ok {
		s.IQ = normalizeComponent(s.IQ, e.Component)
	}
	if e, ok := findRF(s.RF.Name); ok {
		s.RF = normalizeComponent(s.RF, e.Component)
	}
	return s
}

func normalizeComponent(cs ComponentSpec, c Component) ComponentSpec {
	var kept map[string]float64
	for name, v := range cs.Params {
		if p := c.param(name); p != nil && p.Default == v {
			continue
		}
		if kept == nil {
			kept = make(map[string]float64, len(cs.Params))
		}
		kept[name] = v
	}
	cs.Params = kept
	return cs
}

// paramFree reports whether no component carries an explicit parameter.
func (s SchemeSpec) paramFree() bool {
	return len(s.Sel.Params) == 0 && len(s.IQ.Params) == 0 && len(s.RF.Params) == 0
}

// Format renders the spec in the grammar: the three clauses in sel,iq,rf
// order, parameters sorted by name. Explicitly set default-valued
// parameters are kept — use Canonical for the normalized form.
func (s SchemeSpec) Format() string {
	var b strings.Builder
	formatClause(&b, "sel", s.Sel)
	b.WriteByte(',')
	formatClause(&b, "iq", s.IQ)
	b.WriteByte(',')
	formatClause(&b, "rf", s.RF)
	return b.String()
}

func formatClause(b *strings.Builder, key string, cs ComponentSpec) {
	b.WriteString(key)
	b.WriteByte('=')
	b.WriteString(cs.Name)
	names := make([]string, 0, len(cs.Params))
	for name := range cs.Params {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b.WriteByte(':')
		b.WriteString(name)
		b.WriteByte('=')
		b.WriteString(formatValue(cs.Params[name]))
	}
}

// formatValue renders a parameter value so that ParseFloat round-trips it
// exactly.
func formatValue(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Canonical returns the spec's canonical string: when the normalized spec
// is exactly a named paper scheme's composition, the name itself (so the
// 12 named schemes keep their pre-redesign content-addressed identity);
// otherwise the normalized grammar form. Equal canonical strings mean
// equal instantiated component behaviour.
func (s SchemeSpec) Canonical() string {
	n := s.normalized()
	if n.paramFree() {
		if name, ok := nameByTriple[n.tripleKey()]; ok {
			return name
		}
	}
	return n.Format()
}

// tripleKey identifies a param-free composition for the named-scheme
// reverse lookup.
func (s SchemeSpec) tripleKey() string {
	return s.Sel.Name + "|" + s.IQ.Name + "|" + s.RF.Name
}

// nameByTriple maps a named scheme's param-free composition back to its
// name; built from the registry in scheme.go.
var nameByTriple = func() map[string]string {
	out := make(map[string]string, len(registry))
	for name, sch := range registry {
		out[sch.Spec.tripleKey()] = name
	}
	return out
}()

// ParseSpec parses a scheme reference: either a bare named scheme ("cdprf")
// or the component grammar ("sel=icount,iq=cssp:frac=0.75,rf=cdprf").
// Omitted clauses default to the Icount baseline (sel=icount,
// iq=unrestricted, rf=none). The returned spec is validated.
func ParseSpec(spec string) (SchemeSpec, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return SchemeSpec{}, fmt.Errorf("policy: empty scheme spec")
	}
	if !strings.Contains(spec, "=") {
		sch, err := Lookup(spec)
		if err != nil {
			return SchemeSpec{}, fmt.Errorf("%w; or compose one: sel=<selector>,iq=<iq policy>,rf=<rf policy>", err)
		}
		return sch.Spec, nil
	}
	s := SchemeSpec{
		Sel: ComponentSpec{Name: "icount"},
		IQ:  ComponentSpec{Name: "unrestricted"},
		RF:  ComponentSpec{Name: "none"},
	}
	seen := map[string]bool{}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		key, rest, ok := strings.Cut(clause, "=")
		if !ok || rest == "" {
			return SchemeSpec{}, fmt.Errorf("policy: spec clause %q is not key=component", clause)
		}
		if key != "sel" && key != "iq" && key != "rf" {
			return SchemeSpec{}, fmt.Errorf("policy: unknown spec clause %q (sel, iq or rf)", key)
		}
		if seen[key] {
			return SchemeSpec{}, fmt.Errorf("policy: duplicate spec clause %q", key)
		}
		seen[key] = true
		cs, err := parseComponent(rest)
		if err != nil {
			return SchemeSpec{}, fmt.Errorf("policy: spec clause %s: %w", key, err)
		}
		switch key {
		case "sel":
			s.Sel = cs
		case "iq":
			s.IQ = cs
		case "rf":
			s.RF = cs
		}
	}
	if err := s.Validate(); err != nil {
		return SchemeSpec{}, err
	}
	return s, nil
}

// parseComponent parses "name[:param=value]...".
func parseComponent(s string) (ComponentSpec, error) {
	parts := strings.Split(s, ":")
	cs := ComponentSpec{Name: parts[0]}
	if cs.Name == "" {
		return ComponentSpec{}, fmt.Errorf("empty component name")
	}
	for _, pvs := range parts[1:] {
		name, val, ok := strings.Cut(pvs, "=")
		if !ok || name == "" {
			return ComponentSpec{}, fmt.Errorf("parameter %q is not name=value", pvs)
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return ComponentSpec{}, fmt.Errorf("parameter %s: bad value %q", name, val)
		}
		if cs.Params == nil {
			cs.Params = make(map[string]float64)
		}
		if _, dup := cs.Params[name]; dup {
			return ComponentSpec{}, fmt.Errorf("parameter %s set twice", name)
		}
		cs.Params[name] = v
	}
	return cs, nil
}

// CanonicalScheme parses spec and returns its canonical string — the
// single normalization point for content-addressed cache keys, campaign
// expansion and result labels.
func CanonicalScheme(spec string) (string, error) {
	s, err := ParseSpec(spec)
	if err != nil {
		return "", err
	}
	return s.Canonical(), nil
}

// SchemeInfo is the machine-readable row of one named scheme for listings
// (`expdriver schemes -json`, GET /v1/components).
type SchemeInfo struct {
	Name string `json:"name"`
	Ref  string `json:"ref"`
	Desc string `json:"desc"`
	// Spec is the full grammar form of the composition.
	Spec string `json:"spec"`
	// Selector, IQ and RF are the component names.
	Selector string `json:"selector"`
	IQ       string `json:"iq"`
	RF       string `json:"rf"`
}

// SchemeInfos lists every named scheme with its composition, sorted by
// name.
func SchemeInfos() []SchemeInfo {
	out := make([]SchemeInfo, 0, len(registry))
	for _, name := range Names() {
		sch := registry[name]
		out = append(out, SchemeInfo{
			Name: sch.Name, Ref: sch.Ref, Desc: sch.Desc,
			Spec:     sch.Spec.Format(),
			Selector: sch.Spec.Sel.Name, IQ: sch.Spec.IQ.Name, RF: sch.Spec.RF.Name,
		})
	}
	return out
}

// ComponentSet is the machine-readable form of the three component
// registries plus the named schemes composed from them (`expdriver
// components -json`, GET /v1/components).
type ComponentSet struct {
	Selectors []Component  `json:"selectors"`
	IQ        []Component  `json:"iq_policies"`
	RF        []Component  `json:"rf_policies"`
	Schemes   []SchemeInfo `json:"schemes"`
}

// Components returns the full component listing.
func Components() ComponentSet {
	return ComponentSet{
		Selectors: Selectors(),
		IQ:        IQPolicies(),
		RF:        RFPolicies(),
		Schemes:   SchemeInfos(),
	}
}
