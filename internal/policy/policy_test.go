package policy

import (
	"testing"

	"clustersmt/internal/isa"
)

// fakeMachine is a scriptable policy.Machine for unit tests.
type fakeMachine struct {
	threads, clusters int
	iqSize            int
	iqFree            []int
	iqOcc             [][]int // [cluster][thread]
	rfClusterTotal    [isa.NumRegKinds]int
	rfClusterFree     [][]int // [cluster][kind]
	rfClusterInUse    [][][]int
	now               int64
	committed         []uint64
}

func newFake(threads, clusters, iqSize, regs int) *fakeMachine {
	m := &fakeMachine{threads: threads, clusters: clusters, iqSize: iqSize, now: 0}
	m.iqFree = make([]int, clusters)
	m.iqOcc = make([][]int, clusters)
	m.rfClusterFree = make([][]int, clusters)
	m.rfClusterInUse = make([][][]int, clusters)
	for c := 0; c < clusters; c++ {
		m.iqFree[c] = iqSize
		m.iqOcc[c] = make([]int, threads)
		m.rfClusterFree[c] = []int{regs, regs}
		m.rfClusterInUse[c] = make([][]int, isa.NumRegKinds)
		for k := range m.rfClusterInUse[c] {
			m.rfClusterInUse[c][k] = make([]int, threads)
		}
	}
	m.rfClusterTotal = [isa.NumRegKinds]int{regs, regs}
	m.committed = make([]uint64, threads)
	return m
}

func (m *fakeMachine) NumThreads() int                  { return m.threads }
func (m *fakeMachine) NumClusters() int                 { return m.clusters }
func (m *fakeMachine) IQSize() int                      { return m.iqSize }
func (m *fakeMachine) IQFree(c int) int                 { return m.iqFree[c] }
func (m *fakeMachine) IQOcc(c, t int) int               { return m.iqOcc[c][t] }
func (m *fakeMachine) RFClusterTotal(k isa.RegKind) int { return m.rfClusterTotal[k] }
func (m *fakeMachine) RFClusterFree(c int, k isa.RegKind) int {
	return m.rfClusterFree[c][k]
}
func (m *fakeMachine) RFClusterInUse(c, t int, k isa.RegKind) int {
	return m.rfClusterInUse[c][int(k)][t]
}
func (m *fakeMachine) RFTotal(k isa.RegKind) int { return m.rfClusterTotal[k] * m.clusters }
func (m *fakeMachine) RFFree(k isa.RegKind) int {
	total := 0
	for c := 0; c < m.clusters; c++ {
		total += m.rfClusterFree[c][int(k)]
	}
	return total
}
func (m *fakeMachine) RFInUse(t int, k isa.RegKind) int {
	total := 0
	for c := 0; c < m.clusters; c++ {
		total += m.rfClusterInUse[c][int(k)][t]
	}
	return total
}
func (m *fakeMachine) Now() int64             { return m.now }
func (m *fakeMachine) Committed(t int) uint64 { return m.committed[t] }

var _ Machine = (*fakeMachine)(nil)
var _ PerfReader = (*fakeMachine)(nil)

func TestCISPCap(t *testing.T) {
	m := newFake(2, 2, 32, 64)
	p := NewCISP()
	// Cap = 2*32/2 = 32 entries total per thread, any cluster.
	m.iqOcc[0][0], m.iqOcc[1][0] = 20, 11 // 31 total
	if !p.Allows(0, 0, m) {
		t.Fatal("31 entries should be allowed")
	}
	m.iqOcc[1][0] = 12 // 32 total
	if p.Allows(0, 0, m) || p.Allows(0, 1, m) {
		t.Fatal("thread at total cap must be blocked in both clusters")
	}
	if !p.Allows(1, 0, m) {
		t.Fatal("other thread must stay unaffected")
	}
}

func TestCSSPCap(t *testing.T) {
	m := newFake(2, 2, 32, 64)
	p := NewCSSP()
	m.iqOcc[0][0] = 16 // half of cluster 0
	if p.Allows(0, 0, m) {
		t.Fatal("thread at per-cluster cap must be blocked there")
	}
	if !p.Allows(0, 1, m) {
		t.Fatal("same thread must be allowed in the other cluster")
	}
}

func TestCSPSPGuarantee(t *testing.T) {
	m := newFake(2, 2, 32, 64)
	p := NewCSPSP()
	// Thread 1 holds nothing: its 8-entry guarantee must survive. With
	// 9 free entries, thread 0 can take exactly one more.
	m.iqOcc[0][0] = 23
	m.iqFree[0] = 9
	if !p.Allows(0, 0, m) {
		t.Fatal("one entry above the guarantee boundary should be allowed")
	}
	m.iqOcc[0][0] = 24
	m.iqFree[0] = 8
	if p.Allows(0, 0, m) {
		t.Fatal("eating into the other thread's guarantee must be blocked")
	}
	// Once thread 1 uses its guarantee, the space is free game.
	m.iqOcc[0][1] = 8
	m.iqFree[0] = 8
	if !p.Allows(0, 0, m) {
		t.Fatal("used guarantees must not be double-reserved")
	}
}

func TestPCBinding(t *testing.T) {
	m := newFake(2, 2, 32, 64)
	p := NewPC()
	if !p.Allows(0, 0, m) || p.Allows(0, 1, m) {
		t.Fatal("thread 0 must be bound to cluster 0")
	}
	if !p.Allows(1, 1, m) || p.Allows(1, 0, m) {
		t.Fatal("thread 1 must be bound to cluster 1")
	}
	if c, ok := p.ForcedCluster(1); !ok || c%2 != 1 {
		t.Fatal("PC must force the home cluster")
	}
	if _, ok := NewCSSP().ForcedCluster(0); ok {
		t.Fatal("CSSP must not force a cluster")
	}
}

func TestUnrestricted(t *testing.T) {
	m := newFake(2, 2, 32, 64)
	p := NewUnrestricted()
	m.iqOcc[0][0] = 31
	if !p.Allows(0, 0, m) {
		t.Fatal("unrestricted must always allow")
	}
}

func TestStallSelector(t *testing.T) {
	s := NewStall(2)
	m := newFake(2, 2, 32, 64)
	if !s.Eligible(0, m) {
		t.Fatal("thread with no misses must be eligible")
	}
	s.MissStart(0, 10, 100)
	if s.Eligible(0, m) {
		t.Fatal("missing thread must be blocked")
	}
	if !s.Eligible(1, m) {
		t.Fatal("other thread must stay eligible")
	}
	s.MissStart(0, 11, 101)
	s.MissEnd(0, 150)
	if s.Eligible(0, m) {
		t.Fatal("one of two misses resolved: still blocked")
	}
	s.MissEnd(0, 160)
	if !s.Eligible(0, m) {
		t.Fatal("all misses resolved: eligible again")
	}
	if _, _, ok := s.PendingFlush(); ok {
		t.Fatal("stall must never request a flush")
	}
}

func TestFlushPlusSingleMiss(t *testing.T) {
	f := NewFlushPlus(2).(*FlushPlus)
	m := newFake(2, 2, 32, 64)
	f.MissStart(0, 42, 100)
	th, seq, ok := f.PendingFlush()
	if !ok || th != 0 || seq != 42 {
		t.Fatalf("flush request %d/%d/%v", th, seq, ok)
	}
	f.FlushDone(0)
	if _, _, ok := f.PendingFlush(); ok {
		t.Fatal("flush must be one-shot")
	}
	if f.Eligible(0, m) {
		t.Fatal("flushed thread must be blocked while missing alone")
	}
	f.MissEnd(0, 200)
	if !f.Eligible(0, m) {
		t.Fatal("thread must resume after the miss resolves")
	}
}

func TestFlushPlusEarliestContinues(t *testing.T) {
	f := NewFlushPlus(2).(*FlushPlus)
	m := newFake(2, 2, 32, 64)
	f.MissStart(0, 10, 100) // thread 0 misses first
	f.FlushDone(0)
	f.MissStart(1, 20, 150) // now thread 1 misses too
	f.FlushDone(1)
	// The Flush+ refinement: with two missing threads, the one that
	// missed first continues.
	if !f.Eligible(0, m) {
		t.Fatal("earliest misser must be allowed to continue")
	}
	if f.Eligible(1, m) {
		t.Fatal("later misser must stay blocked")
	}
	// When the earliest miss resolves, thread 1 is the only misser and
	// goes back to being blocked alone.
	f.MissEnd(0, 200)
	if !f.Eligible(0, m) || f.Eligible(1, m) {
		t.Fatal("post-resolution eligibility wrong")
	}
}

func TestIcountSelectorTrivial(t *testing.T) {
	s := NewIcount(2)
	m := newFake(2, 2, 32, 64)
	if !s.Eligible(0, m) || !s.Eligible(1, m) {
		t.Fatal("icount must not block")
	}
	s.MissStart(0, 1, 1)
	if !s.Eligible(0, m) {
		t.Fatal("icount ignores misses")
	}
}

func TestCSSPRFCap(t *testing.T) {
	m := newFake(2, 2, 32, 64)
	p := NewCSSPRF(DefaultRFConfig(2))
	m.rfClusterInUse[0][int(isa.IntReg)][0] = 30
	if !p.MayAllocate(0, isa.IntReg, 0, 2, m) {
		t.Fatal("30+2 <= 32 must be allowed")
	}
	if p.MayAllocate(0, isa.IntReg, 0, 3, m) {
		t.Fatal("30+3 > 32 must be blocked")
	}
	if !p.MayAllocate(0, isa.IntReg, 1, 3, m) {
		t.Fatal("other cluster unaffected (cluster-sensitive)")
	}
}

func TestCISPRFCap(t *testing.T) {
	m := newFake(2, 2, 32, 64)
	p := NewCISPRF(DefaultRFConfig(2))
	m.rfClusterInUse[0][int(isa.IntReg)][0] = 40
	m.rfClusterInUse[1][int(isa.IntReg)][0] = 23 // 63 of 64 allowed
	if !p.MayAllocate(0, isa.IntReg, 0, 1, m) {
		t.Fatal("63+1 <= 64 must be allowed")
	}
	if p.MayAllocate(0, isa.IntReg, 1, 2, m) {
		t.Fatal("63+2 > 64 must be blocked regardless of cluster")
	}
	if !p.MayAllocate(0, isa.FpReg, 0, 2, m) {
		t.Fatal("kinds are accounted independently")
	}
}

func TestCDPRFStartsAtEvenSplit(t *testing.T) {
	m := newFake(2, 2, 32, 64)
	p := NewCDPRF(DefaultRFConfig(2)).(*CDPRF)
	p.EndCycle(m)
	if p.Threshold(0, isa.IntReg) != 64 {
		t.Fatalf("initial threshold %d, want 64 (total/2)", p.Threshold(0, isa.IntReg))
	}
}

func TestCDPRFAdaptsToUsage(t *testing.T) {
	m := newFake(2, 2, 32, 64)
	cfg := DefaultRFConfig(2)
	cfg.Interval = 100
	p := NewCDPRF(cfg).(*CDPRF)
	// Thread 0 uses 40 int regs steadily, thread 1 uses 4.
	m.rfClusterInUse[0][int(isa.IntReg)][0] = 40
	m.rfClusterInUse[0][int(isa.IntReg)][1] = 4
	for i := 0; i < 101; i++ {
		m.now++
		p.EndCycle(m)
	}
	if got := p.Threshold(0, isa.IntReg); got != 40 {
		t.Errorf("thread 0 threshold %d, want 40 (its average occupancy)", got)
	}
	if got := p.Threshold(1, isa.IntReg); got != 4 {
		t.Errorf("thread 1 threshold %d, want 4", got)
	}
	// Above its threshold, thread 0 may take free registers as long as
	// thread 1's small guarantee stays coverable.
	m.rfClusterFree[0][int(isa.IntReg)] = 24
	m.rfClusterFree[1][int(isa.IntReg)] = 60
	if !p.MayAllocate(0, isa.IntReg, 0, 10, m) {
		t.Error("above-threshold allocation with ample free regs blocked")
	}
	// If free registers barely cover the other thread's guarantee,
	// above-threshold allocation must be rejected.
	m.rfClusterFree[0][int(isa.IntReg)] = 0
	m.rfClusterFree[1][int(isa.IntReg)] = 0
	if p.MayAllocate(0, isa.IntReg, 0, 1, m) {
		t.Error("allocation with nothing to spare allowed")
	}
}

func TestCDPRFThresholdCappedAtHalf(t *testing.T) {
	m := newFake(2, 2, 32, 64)
	cfg := DefaultRFConfig(2)
	cfg.Interval = 50
	p := NewCDPRF(cfg).(*CDPRF)
	m.rfClusterInUse[0][int(isa.IntReg)][0] = 60
	m.rfClusterInUse[1][int(isa.IntReg)][0] = 60 // 120 of 128 total
	for i := 0; i < 51; i++ {
		m.now++
		p.EndCycle(m)
	}
	if got := p.Threshold(0, isa.IntReg); got != 64 {
		t.Errorf("threshold %d, want capped at 64 (total/2): private regions above half are unfair", got)
	}
}

func TestCDPRFStarvationGrowsThreshold(t *testing.T) {
	m := newFake(2, 2, 32, 64)
	cfg := DefaultRFConfig(2)
	cfg.Interval = 100
	p := NewCDPRF(cfg).(*CDPRF)
	// Thread 0 holds nothing but is starved every cycle: RFOC accumulates
	// the growing starvation counter (1+2+...+100 = 5050), so the next
	// threshold is ~50 even with zero occupancy (Fig. 7 semantics).
	for i := 0; i < 101; i++ {
		m.now++
		p.NoteStall(0, isa.IntReg)
		p.EndCycle(m)
	}
	if got := p.Threshold(0, isa.IntReg); got < 40 {
		t.Errorf("starved thread threshold %d, want ~50 (starvation boost)", got)
	}
	if p.Starvation(0, isa.IntReg) == 0 {
		t.Error("starvation counter should be non-zero while stalled")
	}
	// One unstalled cycle resets the starvation counter.
	m.now++
	p.EndCycle(m)
	if p.Starvation(0, isa.IntReg) != 0 {
		t.Error("starvation counter must reset when not stalled")
	}
}

func TestSchemeRegistry(t *testing.T) {
	for _, name := range Names() {
		s, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%s): %v", name, err)
		}
		sel, iq, rf := s.New(2)
		if sel == nil || iq == nil || rf == nil {
			t.Fatalf("scheme %s produced nil components", name)
		}
	}
	if _, err := Lookup("bogus"); err == nil {
		t.Error("unknown scheme should error")
	}
	if len(PaperIQSchemes()) != 7 || len(PaperRFSchemes()) != 3 {
		t.Error("paper scheme lists wrong length")
	}
}

func TestSchemeComposition(t *testing.T) {
	cases := map[string][3]string{
		"icount": {"icount", "unrestricted", "none"},
		"stall":  {"stall", "unrestricted", "none"},
		"flush+": {"flush+", "unrestricted", "none"},
		"cssp":   {"icount", "cssp", "none"},
		"cdprf":  {"icount", "cssp", "cdprf"},
		"cisprf": {"icount", "cssp", "cisprf"},
		"cssprf": {"icount", "cssp", "cssprf"},
	}
	for name, want := range cases {
		s, _ := Lookup(name)
		sel, iq, rf := s.New(2)
		if sel.Name() != want[0] || iq.Name() != want[1] || rf.Name() != want[2] {
			t.Errorf("%s = %s+%s+%s, want %v", name, sel.Name(), iq.Name(), rf.Name(), want)
		}
	}
}

func TestDCRAShiftsShares(t *testing.T) {
	m := newFake(2, 2, 32, 64)
	p := NewDCRAIQ().(*DCRAIQ)
	// Without misses, both threads get half of each cluster.
	m.iqOcc[0][0] = 15
	if !p.Allows(0, 0, m) {
		t.Fatal("under-share allocation blocked")
	}
	m.iqOcc[0][0] = 16
	if p.Allows(0, 0, m) {
		t.Fatal("even share is 16 of 32")
	}
	// Thread 0 becomes slow (L2 miss): its share grows to 2/3.
	p.MissStart(0, 1, 10)
	if !p.Allows(0, 0, m) {
		t.Fatal("slow thread share should grow")
	}
	m.iqOcc[0][0] = 21
	if p.Allows(0, 0, m) {
		t.Fatal("slow-thread share is 21 of 32")
	}
	p.MissEnd(0, 50)
	m.iqOcc[0][0] = 16
	if p.Allows(0, 0, m) {
		t.Fatal("share should shrink back after the miss")
	}
}

func TestHillClimbAdapts(t *testing.T) {
	p := NewHillClimbIQ().(*HillClimbIQ)
	p.Epoch = 10
	m := newFake(2, 2, 32, 64)
	start := p.Share()
	// Monotonically growing committed counts: every epoch looks like an
	// improvement, so the share keeps moving one direction until clamped.
	for i := 0; i < 200; i++ {
		m.now++
		m.committed[0] += uint64(2 + i/10)
		m.committed[1] += 1
		p.EndCycle(m)
	}
	if p.Share() == start {
		t.Error("hill climber never moved the share")
	}
	if p.Share() < 0.25 || p.Share() > 0.75 {
		t.Errorf("share %v escaped its clamp", p.Share())
	}
}

func TestIQTotalOcc(t *testing.T) {
	m := newFake(2, 2, 32, 64)
	m.iqOcc[0][1] = 5
	m.iqOcc[1][1] = 7
	if IQTotalOcc(m, 1) != 12 {
		t.Errorf("IQTotalOcc = %d", IQTotalOcc(m, 1))
	}
}
