package policy

// Selector is the rename thread-selection policy. Every cycle the core
// renames from the eligible thread with the fewest uops between rename and
// issue (Icount ordering, ref [1]); selectors differ in which threads are
// eligible and whether long-latency misses trigger flushes.
type Selector interface {
	// Name identifies the selector.
	Name() string
	// Eligible reports whether thread t may be selected for rename.
	//smtlint:noalloc
	Eligible(t int, m Machine) bool
	// MissStart notifies the selector that thread t's load with per-thread
	// sequence seq missed the L2 at cycle now.
	//smtlint:noalloc
	MissStart(t int, seq uint64, now int64)
	// MissEnd notifies that one outstanding L2 miss of thread t completed.
	//smtlint:noalloc
	MissEnd(t int, now int64)
	// PendingFlush returns a thread whose instructions younger than
	// afterSeq must be flushed now. The core performs the flush and calls
	// FlushDone. ok is false when no flush is pending.
	//smtlint:noalloc
	PendingFlush() (thread int, afterSeq uint64, ok bool)
	// FlushDone acknowledges that the pending flush for thread t was
	// performed.
	//smtlint:noalloc
	FlushDone(thread int)
}

// missState tracks outstanding L2 misses for one thread.
type missState struct {
	outstanding int
	firstStart  int64  // cycle of the oldest outstanding miss
	firstSeq    uint64 // sequence of the load that started it
}

// Icount is the baseline selector (ref [1]): every thread with work is
// always eligible; the Icount ordering itself is applied by the core.
type Icount struct{}

// NewIcount returns the Icount selector.
func NewIcount(int) Selector { return Icount{} }

// Name implements Selector.
func (Icount) Name() string { return "icount" }

// Eligible implements Selector.
//
//smtlint:noalloc
func (Icount) Eligible(int, Machine) bool { return true }

// MissStart implements Selector.
//
//smtlint:noalloc
func (Icount) MissStart(int, uint64, int64) {}

// MissEnd implements Selector.
//
//smtlint:noalloc
func (Icount) MissEnd(int, int64) {}

// PendingFlush implements Selector.
//
//smtlint:noalloc
func (Icount) PendingFlush() (int, uint64, bool) { return 0, 0, false }

// FlushDone implements Selector.
//
//smtlint:noalloc
func (Icount) FlushDone(int) {}

// Stall gates Icount with the long-latency load rule of Tullsen & Brown
// (ref [19]): a thread with a pending L2 miss cannot rename until the miss
// resolves.
type Stall struct {
	miss []missState
}

// NewStall returns a Stall selector for n threads.
func NewStall(n int) Selector { return &Stall{miss: make([]missState, n)} }

// Name implements Selector.
func (*Stall) Name() string { return "stall" }

// Eligible implements Selector.
//
//smtlint:noalloc
func (s *Stall) Eligible(t int, _ Machine) bool { return s.miss[t].outstanding == 0 }

// MissStart implements Selector.
//
//smtlint:noalloc
func (s *Stall) MissStart(t int, seq uint64, now int64) {
	ms := &s.miss[t]
	if ms.outstanding == 0 {
		ms.firstStart = now
		ms.firstSeq = seq
	}
	ms.outstanding++
}

// MissEnd implements Selector.
//
//smtlint:noalloc
func (s *Stall) MissEnd(t int, _ int64) {
	if s.miss[t].outstanding > 0 {
		s.miss[t].outstanding--
	}
}

// PendingFlush implements Selector.
//
//smtlint:noalloc
func (*Stall) PendingFlush() (int, uint64, bool) { return 0, 0, false }

// FlushDone implements Selector.
//
//smtlint:noalloc
func (*Stall) FlushDone(int) {}

// FlushPlus implements the Flush+ scheme of Cazorla et al. (ref [25]): a
// thread that misses in the L2 releases all resources younger than the
// missing load (the core squashes and re-fetches them) and cannot rename
// until the miss resolves. Unlike the original Flush, when two threads both
// have pending misses the one that missed first is allowed to continue.
type FlushPlus struct {
	miss    []missState
	flushed []bool // thread currently flushed because of its miss
	pending []int  // threads with a flush requested, FIFO
	pendSeq []uint64
}

// NewFlushPlus returns a Flush+ selector for n threads.
func NewFlushPlus(n int) Selector {
	return &FlushPlus{
		miss:    make([]missState, n),
		flushed: make([]bool, n),
		// flushed gates MissStart's enqueue to one entry per thread, so n
		// slots suffice; FlushDone removes by copy-down to keep this
		// capacity (a [1:] reslice would shed it and force regrowth).
		pending: make([]int, 0, n),
		pendSeq: make([]uint64, 0, n),
	}
}

// Name implements Selector.
func (*FlushPlus) Name() string { return "flush+" }

// earliestMisser returns the thread whose oldest outstanding miss started
// first, or -1 when no thread has an outstanding miss.
//
//smtlint:noalloc
func (f *FlushPlus) earliestMisser() int {
	best := -1
	for t := range f.miss {
		if f.miss[t].outstanding == 0 {
			continue
		}
		if best < 0 || f.miss[t].firstStart < f.miss[best].firstStart {
			best = t
		}
	}
	return best
}

// Eligible implements Selector. A thread with a pending miss is blocked
// unless it is the earliest misser while another thread is also missing
// (the Flush+ refinement over Flush).
//
//smtlint:noalloc
func (f *FlushPlus) Eligible(t int, _ Machine) bool {
	if f.miss[t].outstanding == 0 {
		return true
	}
	missing := 0
	for i := range f.miss {
		if f.miss[i].outstanding > 0 {
			missing++
		}
	}
	return missing >= 2 && f.earliestMisser() == t
}

// MissStart implements Selector.
//
//smtlint:noalloc
func (f *FlushPlus) MissStart(t int, seq uint64, now int64) {
	ms := &f.miss[t]
	if ms.outstanding == 0 {
		ms.firstStart = now
		ms.firstSeq = seq
	}
	ms.outstanding++
	if !f.flushed[t] {
		// Flush everything younger than the missing load. If this thread
		// is the earliest misser of two it will remain eligible (Flush+),
		// re-fetching the flushed work under the miss shadow.
		f.flushed[t] = true
		//smtlint:allow at most one pending flush per thread; capacity pre-sized in NewFlushPlus
		f.pending = append(f.pending, t)
		//smtlint:allow grows in lockstep with pending above
		f.pendSeq = append(f.pendSeq, seq)
	}
}

// MissEnd implements Selector.
//
//smtlint:noalloc
func (f *FlushPlus) MissEnd(t int, _ int64) {
	if f.miss[t].outstanding > 0 {
		f.miss[t].outstanding--
	}
	if f.miss[t].outstanding == 0 {
		f.flushed[t] = false
	}
}

// PendingFlush implements Selector.
//
//smtlint:noalloc
func (f *FlushPlus) PendingFlush() (int, uint64, bool) {
	if len(f.pending) == 0 {
		return 0, 0, false
	}
	return f.pending[0], f.pendSeq[0], true
}

// FlushDone implements Selector.
//
//smtlint:noalloc
func (f *FlushPlus) FlushDone(t int) {
	if n := len(f.pending); n > 0 && f.pending[0] == t {
		copy(f.pending, f.pending[1:])
		copy(f.pendSeq, f.pendSeq[1:])
		f.pending = f.pending[:n-1]
		f.pendSeq = f.pendSeq[:n-1]
	}
}
