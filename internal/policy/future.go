package policy

import "clustersmt/internal/isa"

// This file implements the §6 future-work directions: adapting DCRA
// (Cazorla et al., MICRO 2004, ref [30]) and hill-climbing resource
// distribution (Choi & Yeung, ISCA 2006, ref [32]) to a clustered machine
// using the paper's conclusions — issue-queue control must be
// cluster-sensitive, register-file control cluster-insensitive.

// MissObserver is implemented by policies that react to L2 misses. The core
// forwards miss events to the selector and to any IQ/RF policy implementing
// this interface.
type MissObserver interface {
	//smtlint:noalloc
	MissStart(t int, seq uint64, now int64)
	//smtlint:noalloc
	MissEnd(t int, now int64)
}

// CycleObserver is implemented by adaptive policies that need a per-cycle
// tick beyond RFPolicy.EndCycle (e.g. an adaptive IQ policy).
type CycleObserver interface {
	//smtlint:noalloc
	EndCycle(m Machine)
}

// PerfReader extends Machine for adaptive policies that optimize measured
// throughput.
type PerfReader interface {
	// Committed returns the architecturally committed uops of thread t.
	//smtlint:noalloc
	Committed(t int) uint64
}

// dcraState is shared by the DCRA IQ and RF components: it tracks which
// threads are currently "slow" (holding an outstanding L2 miss), the
// classification DCRA uses to shift resource shares toward
// memory-intensive threads so they can exploit memory-level parallelism.
type dcraState struct {
	// slowWeight is the share weight of a slow thread (spec param
	// "slowweight"; 0 selects the simplified-DCRA default of 2).
	slowWeight  int
	outstanding []int
}

//smtlint:noalloc
func (d *dcraState) ensure(n int) {
	if len(d.outstanding) < n {
		//smtlint:allow one-time growth to the observed thread count
		d.outstanding = append(d.outstanding, make([]int, n-len(d.outstanding))...)
	}
}

// MissStart implements MissObserver.
//
//smtlint:noalloc
func (d *dcraState) MissStart(t int, _ uint64, _ int64) {
	d.ensure(t + 1)
	d.outstanding[t]++
}

// MissEnd implements MissObserver.
//
//smtlint:noalloc
func (d *dcraState) MissEnd(t int, _ int64) {
	d.ensure(t + 1)
	if d.outstanding[t] > 0 {
		d.outstanding[t]--
	}
}

//smtlint:noalloc
func (d *dcraState) weight(t int) int {
	d.ensure(t + 1)
	if d.outstanding[t] > 0 {
		if d.slowWeight > 0 {
			return d.slowWeight
		}
		return 2 // slow threads get a double share (simplified DCRA)
	}
	return 1
}

//smtlint:noalloc
func (d *dcraState) share(t, total, n int) int {
	sum := 0
	for i := 0; i < n; i++ {
		sum += d.weight(i)
	}
	s := total * d.weight(t) / sum
	if s < 1 {
		s = 1
	}
	return s
}

// DCRAIQ is a cluster-sensitive DCRA-style issue-queue policy: per cluster,
// a thread's cap is its DCRA share of the cluster's entries.
type DCRAIQ struct{ st *dcraState }

// NewDCRAIQ returns the DCRA issue-queue policy.
func NewDCRAIQ() IQPolicy { return &DCRAIQ{st: &dcraState{}} }

// Name implements IQPolicy.
func (*DCRAIQ) Name() string { return "dcra-iq" }

// Allows implements IQPolicy.
//
//smtlint:noalloc
func (p *DCRAIQ) Allows(t, c int, m Machine) bool {
	return m.IQOcc(c, t) < p.st.share(t, m.IQSize(), m.NumThreads())
}

// ForcedCluster implements IQPolicy.
//
//smtlint:noalloc
func (*DCRAIQ) ForcedCluster(int) (int, bool) { return 0, false }

// MissStart implements MissObserver.
//
//smtlint:noalloc
func (p *DCRAIQ) MissStart(t int, seq uint64, now int64) { p.st.MissStart(t, seq, now) }

// MissEnd implements MissObserver.
//
//smtlint:noalloc
func (p *DCRAIQ) MissEnd(t int, now int64) { p.st.MissEnd(t, now) }

// DCRARF is the cluster-insensitive DCRA-style register-file policy: a
// thread's cap is its DCRA share of the total registers of each kind.
type DCRARF struct{ st *dcraState }

// NewDCRARF returns the DCRA register-file policy.
func NewDCRARF(RFConfig) RFPolicy { return &DCRARF{st: &dcraState{}} }

// Name implements RFPolicy.
func (*DCRARF) Name() string { return "dcra-rf" }

// MayAllocate implements RFPolicy.
//
//smtlint:noalloc
func (p *DCRARF) MayAllocate(t int, k isa.RegKind, _ int, n int, m Machine) bool {
	return m.RFInUse(t, k)+n <= p.st.share(t, m.RFTotal(k), m.NumThreads())
}

// NoteStall implements RFPolicy.
//
//smtlint:noalloc
func (*DCRARF) NoteStall(int, isa.RegKind) {}

// EndCycle implements RFPolicy.
//
//smtlint:noalloc
func (*DCRARF) EndCycle(Machine) {}

// MissStart implements MissObserver.
//
//smtlint:noalloc
func (p *DCRARF) MissStart(t int, seq uint64, now int64) { p.st.MissStart(t, seq, now) }

// MissEnd implements MissObserver.
//
//smtlint:noalloc
func (p *DCRARF) MissEnd(t int, now int64) { p.st.MissEnd(t, now) }

// HillClimbIQ adapts the per-thread, per-cluster issue-queue partition by
// hill climbing on measured throughput (Choi & Yeung, ISCA'06, adapted to a
// cluster-sensitive partition per this paper's conclusion). Each epoch it
// perturbs thread 0's share by +/-delta and keeps the direction that
// improved committed throughput.
type HillClimbIQ struct {
	// Epoch is the adaptation period in cycles.
	Epoch int64
	// Delta is the share perturbation per epoch.
	Delta float64

	share     float64 // thread 0's fraction of each cluster's IQ
	dir       float64
	lastPerf  float64
	lastComm  uint64
	nextEpoch int64
	started   bool
}

// NewHillClimbIQ returns the hill-climbing issue-queue policy.
func NewHillClimbIQ() IQPolicy {
	return &HillClimbIQ{Epoch: 16 * 1024, Delta: 0.0625, share: 0.5, dir: 1}
}

// Name implements IQPolicy.
func (*HillClimbIQ) Name() string { return "hillclimb-iq" }

// Share returns thread 0's current share (exported for tests).
func (p *HillClimbIQ) Share() float64 { return p.share }

// Allows implements IQPolicy. With more than two threads the non-adapted
// threads split the remainder evenly.
//
//smtlint:noalloc
func (p *HillClimbIQ) Allows(t, c int, m Machine) bool {
	frac := p.share
	if t != 0 {
		frac = (1 - p.share) / float64(m.NumThreads()-1)
	}
	cap := int(frac * float64(m.IQSize()))
	if cap < 2 {
		cap = 2
	}
	return m.IQOcc(c, t) < cap
}

// ForcedCluster implements IQPolicy.
//
//smtlint:noalloc
func (*HillClimbIQ) ForcedCluster(int) (int, bool) { return 0, false }

// EndCycle implements CycleObserver: epoch-boundary hill climbing.
//
//smtlint:noalloc
func (p *HillClimbIQ) EndCycle(m Machine) {
	pr, ok := m.(PerfReader)
	if !ok {
		return
	}
	now := m.Now()
	if !p.started {
		p.started = true
		p.nextEpoch = now + p.Epoch
		return
	}
	if now < p.nextEpoch {
		return
	}
	committed := uint64(0)
	for t := 0; t < m.NumThreads(); t++ {
		committed += pr.Committed(t)
	}
	perf := float64(committed-p.lastComm) / float64(p.Epoch)
	p.lastComm = committed
	if perf < p.lastPerf {
		p.dir = -p.dir // last move hurt; reverse
	}
	p.lastPerf = perf
	p.share += p.dir * p.Delta
	const lo, hi = 0.25, 0.75
	if p.share < lo {
		p.share, p.dir = lo, 1
	}
	if p.share > hi {
		p.share, p.dir = hi, -1
	}
	p.nextEpoch = now + p.Epoch
}
