package experiments

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"clustersmt/internal/metrics"
	"clustersmt/internal/workload"
)

// TestWaiterSurvivesOwnerCancel: on a shared runner, a singleflight waiter
// whose own context is still live must not inherit the flight owner's
// cancellation — one job's DELETE must not fail overlapping items of other
// jobs. The waiter retries (becoming the new owner) and succeeds.
func TestWaiterSurvivesOwnerCancel(t *testing.T) {
	r := NewRunner(200_000)
	w, err := workload.Find("dh.mem.2.1")
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Workload: w, Scheme: "icount", IQSize: 32, SingleThread: -1}

	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	var wg sync.WaitGroup
	var ownerErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, ownerErr = r.RunCtx(ctxA, spec)
	}()

	// Wait for the owner's flight to register so the second call is a
	// waiter, not a second owner.
	deadline := time.Now().Add(10 * time.Second)
	for {
		r.mu.Lock()
		_, inflight := r.inflight[spec.key()]
		r.mu.Unlock()
		if inflight {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("owner flight never registered")
		}
		time.Sleep(time.Millisecond)
	}

	var waiterSt *metrics.Stats
	var waiterErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		waiterSt, waiterErr = r.Run(spec)
	}()

	// Let the waiter block on the flight, then cancel the owner mid-run.
	time.Sleep(30 * time.Millisecond)
	cancelA()
	wg.Wait()

	if ownerErr != nil && !errors.Is(ownerErr, context.Canceled) {
		t.Fatalf("owner error = %v", ownerErr)
	}
	if waiterErr != nil {
		t.Fatalf("waiter inherited the owner's cancellation: %v", waiterErr)
	}
	if waiterSt == nil || waiterSt.IPC() <= 0 {
		t.Fatalf("waiter stats = %+v", waiterSt)
	}
	// Exactly one successful execution no matter who ran it.
	if got := r.Executed(); got != 1 {
		t.Fatalf("executed = %d, want 1", got)
	}
}

// TestRunCtxCancelBeforeStart: a context cancelled before Run begins fails
// fast without executing or storing anything.
func TestRunCtxCancelBeforeStart(t *testing.T) {
	r := NewRunner(2000)
	w, err := workload.Find("dh.ilp.2.1")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := Spec{Workload: w, Scheme: "icount", IQSize: 32, SingleThread: -1}
	if _, err := r.RunCtx(ctx, spec); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if r.Executed() != 0 {
		t.Fatalf("executed = %d", r.Executed())
	}
	if st, ok, _ := r.Store.Get(r.CacheKey(spec)); ok {
		t.Fatalf("cancelled run stored a result: %+v", st)
	}
}
