package experiments

import (
	"errors"
	"strings"
	"testing"

	"clustersmt/internal/metrics"
	"clustersmt/internal/workload"
)

// TestRunAllPartialResults pins the partial-progress contract: one bad
// spec must not discard the good ones, and the joined error must name the
// failing spec.
func TestRunAllPartialResults(t *testing.T) {
	r := NewRunner(1200)
	w := workload.ByCategory("ispec00")[0]
	specs := []Spec{
		iqStudySpec(w, "icount", 32),
		iqStudySpec(w, "nosuchscheme", 32),
		iqStudySpec(w, "cssp", 32),
	}
	stats, err := r.RunAll(specs)
	if err == nil {
		t.Fatal("RunAll succeeded with an unknown scheme in the set")
	}
	if !strings.Contains(err.Error(), "nosuchscheme") {
		t.Errorf("joined error %q does not name the failing spec", err)
	}
	if len(stats) != 3 || stats[0] == nil || stats[2] == nil {
		t.Fatalf("partial results discarded: %v", stats)
	}
	if stats[1] != nil {
		t.Error("failed spec produced stats")
	}
	if stats[0].IPC() <= 0 || stats[2].IPC() <= 0 {
		t.Error("surviving results are empty")
	}
}

// TestCacheKeyContentAddressing: equal simulations agree on a key across
// runner instances; any outcome-relevant difference disagrees.
func TestCacheKeyContentAddressing(t *testing.T) {
	w := workload.ByCategory("ispec00")[0]
	w2 := workload.ByCategory("fspec00")[0]
	s := iqStudySpec(w, "icount", 32)

	a, b := NewRunner(1500), NewRunner(1500)
	if a.CacheKey(s) != b.CacheKey(s) {
		t.Error("identical simulations got different keys across runners")
	}
	if len(a.CacheKey(s)) != 64 {
		t.Errorf("key %q is not a hex SHA-256", a.CacheKey(s))
	}
	distinct := map[string]string{
		"base":      a.CacheKey(s),
		"scheme":    a.CacheKey(iqStudySpec(w, "cssp", 32)),
		"iq":        a.CacheKey(iqStudySpec(w, "icount", 64)),
		"workload":  a.CacheKey(iqStudySpec(w2, "icount", 32)),
		"trace len": NewRunner(3000).CacheKey(s),
		"single":    a.CacheKey(Spec{Workload: w, Scheme: "icount", IQSize: 32, SingleThread: 0}),
	}
	seen := map[string]string{}
	for name, key := range distinct {
		if prev, ok := seen[key]; ok {
			t.Errorf("%s and %s collided on key %s", name, prev, key)
		}
		seen[key] = name
	}
}

type flakyStore struct {
	MemStore
	getErr error
}

func (f *flakyStore) Get(key string) (*metrics.Stats, bool, error) {
	if f.getErr != nil {
		return nil, false, f.getErr
	}
	return f.MemStore.Get(key)
}

// TestRunnerTreatsStoreErrorAsMiss: a corrupt store entry must trigger
// re-execution, not a failed run.
func TestRunnerTreatsStoreErrorAsMiss(t *testing.T) {
	r := NewRunner(1200)
	fs := &flakyStore{getErr: errors.New("checksum mismatch")}
	r.Store = fs
	w := workload.ByCategory("ispec00")[0]
	st, err := r.Run(iqStudySpec(w, "icount", 32))
	if err != nil || st == nil {
		t.Fatalf("Run = (%v, %v), want re-execution on store error", st, err)
	}
	if r.Executed() != 1 {
		t.Errorf("executed %d, want 1", r.Executed())
	}
	// With the store healthy again, the Put-through entry answers.
	fs.getErr = nil
	st2, err := r.Run(iqStudySpec(w, "icount", 32))
	if err != nil || st2 != st {
		t.Errorf("healthy store did not recall the executed result")
	}
	if r.Executed() != 1 {
		t.Errorf("executed %d after recall, want still 1", r.Executed())
	}
}

// TestLayeredBackfill: a hit in a deep layer is copied into the faster
// layers above it, and only those.
func TestLayeredBackfill(t *testing.T) {
	fast, slow := NewMemStore(), NewMemStore()
	st := metrics.NewStats(1, 2)
	st.Cycles = 7
	if err := slow.Put("k", st); err != nil {
		t.Fatal(err)
	}
	l := Layered(fast, slow)
	got, ok, err := l.Get("k")
	if err != nil || !ok || got != st {
		t.Fatalf("layered Get = (%v, %v, %v)", got, ok, err)
	}
	if got2, ok, _ := fast.Get("k"); !ok || got2 != st {
		t.Error("hit was not backfilled into the fast layer")
	}
	if fast.Len() != 1 || slow.Len() != 1 {
		t.Errorf("layer sizes %d/%d, want 1/1", fast.Len(), slow.Len())
	}
}

// TestWriteOnly: reads always miss, writes land.
func TestWriteOnly(t *testing.T) {
	mem := NewMemStore()
	w := WriteOnly(mem)
	st := metrics.NewStats(1, 2)
	if err := w.Put("k", st); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := w.Get("k"); ok {
		t.Error("write-only store served a read")
	}
	if got, ok, _ := mem.Get("k"); !ok || got != st {
		t.Error("write-only store dropped the write")
	}
}
