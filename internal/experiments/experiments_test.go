package experiments

import (
	"sync/atomic"
	"testing"

	"clustersmt/internal/metrics"
	"clustersmt/internal/workload"
)

func tinyOptions() Options {
	return Options{Categories: []string{"ispec00", "isfs"}, MaxPerCategory: 2}
}

func TestRunnerMemoizes(t *testing.T) {
	r := NewRunner(2000)
	var executed int32
	r.Verbose = func(string) { atomic.AddInt32(&executed, 1) }
	w := workload.ByCategory("ispec00")[0]
	spec := iqStudySpec(w, "icount", 32)
	a, err := r.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("second run not served from cache")
	}
	if executed != 1 {
		t.Errorf("executed %d times, want 1", executed)
	}
}

func TestSpecKeyDistinguishesDimensions(t *testing.T) {
	w := workload.ByCategory("ispec00")[0]
	base := iqStudySpec(w, "icount", 32)
	variants := []Spec{
		iqStudySpec(w, "cssp", 32),
		iqStudySpec(w, "icount", 64),
		rfStudySpec(w, "icount", 64),
		{Workload: w, Scheme: "icount", IQSize: 32, SingleThread: 0},
		clusterScaleSpec(w, "icount", 3),
		func() Spec { s := base; s.Links = 1; return s }(),
		func() Spec { s := base; s.LinkLatency = 4; return s }(),
		func() Spec { s := base; s.MemLatency = 300; return s }(),
	}
	for i, v := range variants {
		if v.key() == base.key() {
			t.Errorf("variant %d collides with base key %q", i, base.key())
		}
	}
}

func TestOptionsSubsetBalanced(t *testing.T) {
	o := Options{MaxPerCategory: 3}
	ws := o.workloads("ispec00")
	if len(ws) != 3 {
		t.Fatalf("got %d workloads", len(ws))
	}
	types := map[workload.Type]bool{}
	for _, w := range ws {
		types[w.Type] = true
	}
	if len(types) != 3 {
		t.Errorf("capped subset covers %d types, want all 3", len(types))
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if len(o.categories()) != len(workload.Categories) {
		t.Error("default categories should be all")
	}
	if len(o.all()) != 120 {
		t.Errorf("default pool %d, want 120", len(o.all()))
	}
}

func TestRunAllPreservesOrder(t *testing.T) {
	r := NewRunner(1500)
	o := tinyOptions()
	var specs []Spec
	for _, w := range o.all() {
		specs = append(specs, iqStudySpec(w, "icount", 32))
	}
	out, err := r.RunAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range out {
		direct, _ := r.Run(specs[i])
		if st != direct {
			t.Errorf("result %d out of order", i)
		}
	}
}

func TestFig2SeriesComplete(t *testing.T) {
	r := NewRunner(2000)
	o := tinyOptions()
	cs, err := Fig2(r, o, []string{"icount", "cssp"}, []int{32})
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Categories) != 3 { // 2 categories + AVG
		t.Fatalf("categories %v", cs.Categories)
	}
	for _, s := range []string{"icount/32", "cssp/32"} {
		for _, cat := range cs.Categories {
			if _, ok := cs.Values[s][cat]; !ok {
				t.Errorf("missing %s/%s", s, cat)
			}
		}
	}
	// Per-construction the baseline normalizes to exactly 1 per workload.
	if v := cs.Values["icount/32"]["AVG"]; v != 1 {
		t.Errorf("baseline AVG %v, want 1", v)
	}
}

func TestFig3And4Nonnegative(t *testing.T) {
	r := NewRunner(2000)
	o := tinyOptions()
	f3, err := Fig3(r, o, []string{"icount", "pc"})
	if err != nil {
		t.Fatal(err)
	}
	if f3.Values["pc"]["AVG"] != 0 {
		t.Errorf("PC copies/ret = %v, private clusters never copy", f3.Values["pc"]["AVG"])
	}
	if f3.Values["icount"]["AVG"] <= 0 {
		t.Error("icount should produce copies")
	}
	f4, err := Fig4(r, o, []string{"icount"})
	if err != nil {
		t.Fatal(err)
	}
	if f4.Values["icount"]["AVG"] < 0 {
		t.Error("negative stall ratio")
	}
}

func TestFig5FractionsBounded(t *testing.T) {
	r := NewRunner(2000)
	o := tinyOptions()
	res, err := Fig5(r, o, []string{"icount", "cssp"})
	if err != nil {
		t.Fatal(err)
	}
	for cat, byScheme := range res.Frac {
		for s, m := range byScheme {
			for k := 0; k < metrics.NumImbClasses; k++ {
				for kind := 0; kind < 2; kind++ {
					v := m[k][kind]
					if v < 0 || v > 1 {
						t.Errorf("%s/%s class %d kind %d = %v outside [0,1]", cat, s, k, kind, v)
					}
				}
			}
		}
	}
}

func TestFig9RowsComplete(t *testing.T) {
	r := NewRunner(1500)
	o := Options{Categories: []string{"isfs"}, MaxPerCategory: 2}
	res, err := Fig9(r, o, []string{"cssp", "cdprf"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Workloads) != 4 { // 2 workloads + AVG + AVG All
		t.Fatalf("rows %v", res.Workloads)
	}
	last := res.Workloads[len(res.Workloads)-1]
	if last != "AVG All" {
		t.Errorf("last row %q", last)
	}
	for _, row := range res.Workloads {
		for _, s := range res.Schemes {
			if res.Speedup[row][s] <= 0 {
				t.Errorf("%s/%s speedup %v", row, s, res.Speedup[row][s])
			}
		}
	}
}

func TestFig10FairnessPositive(t *testing.T) {
	r := NewRunner(1500)
	o := Options{Categories: []string{"ispec00"}, MaxPerCategory: 2}
	cs, err := Fig10(r, o, []string{"cssp"})
	if err != nil {
		t.Fatal(err)
	}
	if cs.Values["cssp"]["AVG"] <= 0 {
		t.Errorf("fairness ratio %v", cs.Values["cssp"]["AVG"])
	}
}

func TestHeadlineRuns(t *testing.T) {
	r := NewRunner(1500)
	h, err := Headline(r, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if h.CDPRFSpeedup <= 0 || h.CSSPSpeedup <= 0 || h.FairnessRatio <= 0 {
		t.Errorf("degenerate headline %+v", h)
	}
	if h.BestCategory == "" {
		t.Error("no best category")
	}
}

// TestClusterScalingShape runs the cluster-scaling figure on a tiny pool
// and checks its structural physics: every series present for every
// category, zero inter-cluster copies on a single cluster, and nonzero
// copies once there is more than one cluster to copy between.
func TestClusterScalingShape(t *testing.T) {
	r := NewRunner(2000)
	o := Options{Categories: []string{"ispec00"}, MaxPerCategory: 1}
	res, err := ClusterScaling(r, o, []string{"icount"}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, cs := range []*CategorySeries{res.IPC, res.Copies, res.IQStalls} {
		for _, name := range []string{"icount/c1", "icount/c2"} {
			for _, cat := range cs.Categories {
				if _, ok := cs.Values[name][cat]; !ok {
					t.Errorf("missing %s/%s", name, cat)
				}
			}
		}
	}
	if v := res.Copies.Values["icount/c1"]["AVG"]; v != 0 {
		t.Errorf("one-cluster machine reported %v copies/retired", v)
	}
	if v := res.Copies.Values["icount/c2"]["AVG"]; v <= 0 {
		t.Errorf("two-cluster machine reported %v copies/retired, want > 0", v)
	}
	if res.IPC.Values["icount/c1"]["AVG"] <= 0 || res.IPC.Values["icount/c2"]["AVG"] <= 0 {
		t.Error("IPC series empty")
	}
	header, rows := res.CSV()
	if len(header) != 6 {
		t.Errorf("CSV header %v", header)
	}
	// categories (ispec00 + AVG) x schemes x cluster counts
	if want := 2 * 1 * 2; len(rows) != want {
		t.Errorf("CSV emitted %d rows, want %d", len(rows), want)
	}
}

func TestFutureWorkRuns(t *testing.T) {
	r := NewRunner(1500)
	out, err := FutureWork(r, Options{Categories: []string{"ispec00"}, MaxPerCategory: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"cssp", "cdprf", "dcra", "hillclimb"} {
		if out[s] <= 0 {
			t.Errorf("%s speedup %v", s, out[s])
		}
	}
}
