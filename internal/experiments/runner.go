// Package experiments defines one reproduction per paper figure/table
// (the index lives in DESIGN.md §4) on top of a memoizing, parallel
// simulation runner. Every figure is a pure function of the runner, so the
// expdriver binary, the test suite and the benchmark harness share runs.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"clustersmt/internal/core"
	"clustersmt/internal/metrics"
	"clustersmt/internal/trace"
	"clustersmt/internal/workload"
)

// Spec identifies one simulation: a workload under a scheme on a machine
// configuration. SingleThread >= 0 runs that thread alone (the fairness
// baseline); -1 runs the full SMT workload.
type Spec struct {
	Workload     workload.Workload
	Scheme       string
	IQSize       int
	RegsPerClust int // 0 = unbounded
	ROBPerThread int // 0 = unbounded
	SingleThread int // -1 = SMT
}

func (s Spec) key() string {
	return fmt.Sprintf("%s|%s|iq%d|rf%d|rob%d|st%d",
		s.Workload.Name, s.Scheme, s.IQSize, s.RegsPerClust, s.ROBPerThread, s.SingleThread)
}

// Runner executes Specs with memoization and a bounded worker pool.
// It is safe for concurrent use.
type Runner struct {
	// TraceLen is the per-thread trace length in uops.
	TraceLen int
	// MaxCycles bounds each simulation.
	MaxCycles int64
	// Workers bounds simulation parallelism (default: NumCPU).
	Workers int
	// Verbose, when set, receives one line per completed run.
	Verbose func(string)

	mu    sync.Mutex
	cache map[string]*metrics.Stats
}

// NewRunner returns a runner with the given per-thread trace length.
func NewRunner(traceLen int) *Runner {
	return &Runner{
		TraceLen:  traceLen,
		MaxCycles: int64(traceLen) * 40,
		cache:     make(map[string]*metrics.Stats),
	}
}

// buildPrograms materializes the workload's traces (or a single thread's).
func buildPrograms(w workload.Workload, traceLen, single int) []core.ThreadProgram {
	var progs []core.ThreadProgram
	for i, prof := range w.Threads {
		if single >= 0 && i != single {
			continue
		}
		g := trace.NewGenerator(prof, w.Seeds[i])
		progs = append(progs, core.ThreadProgram{
			Trace:   g.Generate(traceLen),
			Profile: prof,
			Seed:    w.Seeds[i] ^ 0xabcdef,
		})
	}
	return progs
}

// execute runs one spec to completion (uncached).
func (r *Runner) execute(s Spec) (*metrics.Stats, error) {
	n := len(s.Workload.Threads)
	if s.SingleThread >= 0 {
		n = 1
	}
	cfg := core.DefaultConfig(n)
	cfg.IQSize = s.IQSize
	cfg.IntRegsPerCluster = s.RegsPerClust
	cfg.FpRegsPerCluster = s.RegsPerClust
	cfg.ROBPerThread = s.ROBPerThread
	cfg.MaxCycles = r.MaxCycles
	cfg.WarmupUops = uint64(r.TraceLen / 5)
	p, err := core.NewScheme(cfg, s.Scheme, buildPrograms(s.Workload, r.TraceLen, s.SingleThread))
	if err != nil {
		return nil, err
	}
	return p.Run(), nil
}

// Run executes (or recalls) one spec.
func (r *Runner) Run(s Spec) (*metrics.Stats, error) {
	k := s.key()
	r.mu.Lock()
	if st, ok := r.cache[k]; ok {
		r.mu.Unlock()
		return st, nil
	}
	r.mu.Unlock()
	st, err := r.execute(s)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.cache[k] = st
	r.mu.Unlock()
	if r.Verbose != nil {
		r.Verbose(fmt.Sprintf("%-60s ipc=%.3f", k, st.IPC()))
	}
	return st, nil
}

// RunAll executes specs on a worker pool and returns stats in spec order.
func (r *Runner) RunAll(specs []Spec) ([]*metrics.Stats, error) {
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers < 1 {
		workers = 1
	}
	out := make([]*metrics.Stats, len(specs))
	errs := make([]error, len(specs))
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				out[i], errs[i] = r.Run(specs[i])
			}
		}()
	}
	for i := range specs {
		work <- i
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// mean returns the arithmetic mean of xs (0 for empty input).
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total / float64(len(xs))
}
