// Package experiments defines one reproduction per paper figure/table
// (the index lives in DESIGN.md §4) on top of a memoizing, parallel
// simulation runner. Every figure is a pure function of the runner, so the
// expdriver binary, the test suite and the benchmark harness share runs.
package experiments

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"clustersmt/internal/core"
	"clustersmt/internal/isa"
	"clustersmt/internal/metrics"
	"clustersmt/internal/policy"
	"clustersmt/internal/trace"
	"clustersmt/internal/workload"
)

// Spec identifies one simulation: a workload under a scheme on a machine
// configuration. SingleThread >= 0 runs that thread alone (the fairness
// baseline); -1 runs the full SMT workload.
//
// Scheme accepts anything policy.ParseSpec does: a named paper scheme
// ("cdprf") or a composed component spec ("sel=stall,iq=cssp,rf=cdprf").
// The content-addressed CacheKey hashes the canonical form, so spelling
// variants of one composition share stored results — and a composed spec
// that matches a named scheme recalls that scheme's pre-redesign entries.
//
// The machine-shape fields (NumClusters, Links, LinkLatency, MemLatency)
// sweep the back-end geometry; 0 inherits the runner's Shape default and
// ultimately the Table 1 value (2 clusters, 2 one-cycle links, 60-cycle
// memory). They feed configFor, so the content-addressed CacheKey
// distinguishes shapes automatically.
type Spec struct {
	Workload     workload.Workload
	Scheme       string
	IQSize       int
	RegsPerClust int // 0 = unbounded
	ROBPerThread int // 0 = unbounded
	SingleThread int // -1 = SMT
	NumClusters  int // 0 = shape/Table 1 default (2)
	Links        int // 0 = shape/Table 1 default (2)
	LinkLatency  int // cycles; 0 = shape/Table 1 default (1)
	MemLatency   int // cycles; 0 = shape/Table 1 default (60)
}

// key identifies a spec for the session-local memo and singleflight maps.
// The workload contributes a content digest, not just its name: a
// hand-built Workload reusing a pool name with different seeds or profiles
// must not collapse into the named workload's flight or recall its
// content-addressed key (the same aliasing rule traceKey enforces for
// trace memoization).
func (s Spec) key() string {
	return fmt.Sprintf("%s@%x|%s|iq%d|rf%d|rob%d|st%d|c%d|lk%d|ll%d|ml%d",
		s.Workload.Name, workloadDigest(s.Workload), s.Scheme,
		s.IQSize, s.RegsPerClust, s.ROBPerThread, s.SingleThread,
		s.NumClusters, s.Links, s.LinkLatency, s.MemLatency)
}

// workloadDigest hashes a workload's simulation-relevant content (seeds and
// thread profiles; the name is carried separately for readability).
func workloadDigest(w workload.Workload) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime64
		}
	}
	for _, s := range w.Seeds {
		mix(s)
	}
	for _, p := range w.Threads {
		fp := profileFingerprint(p)
		for i := 0; i < len(fp); i += 8 {
			var v uint64
			for j := 0; j < 8; j++ {
				v = v<<8 | uint64(fp[i+j])
			}
			mix(v)
		}
	}
	return h
}

// MachineShape is a runner-level default machine geometry, applied to every
// spec field left zero. Zero fields fall through to the Table 1 defaults.
type MachineShape struct {
	NumClusters int
	Links       int
	LinkLatency int
	MemLatency  int
}

// overlay returns a with zero fields replaced from b.
func overlayShape(a, b MachineShape) MachineShape {
	if a.NumClusters == 0 {
		a.NumClusters = b.NumClusters
	}
	if a.Links == 0 {
		a.Links = b.Links
	}
	if a.LinkLatency == 0 {
		a.LinkLatency = b.LinkLatency
	}
	if a.MemLatency == 0 {
		a.MemLatency = b.MemLatency
	}
	return a
}

// Runner executes Specs with memoization and a bounded worker pool.
// It is safe for concurrent use.
//
// Two layers are shared across runs. Completed results land in a pluggable
// ResultStore under content-addressed keys (CacheKey), with singleflight
// in-flight tracking so concurrent requests for the same spec execute it
// exactly once; the default store is in-memory, and campaigns layer a disk
// store underneath for cross-process persistence. Materialized traces are
// memoized by (workload, thread, length): the ~100+ specs behind one figure
// differ in scheme and resource sizing but re-read the same uop streams,
// and a thread's trace is identical whether it runs alone (the fairness
// baseline) or inside the SMT pair, so generation cost is paid once per
// workload thread rather than once per spec. Traces are read-only to the
// core, which is what makes the sharing safe.
type Runner struct {
	// TraceLen is the per-thread trace length in uops.
	TraceLen int
	// MaxCycles bounds each simulation.
	MaxCycles int64
	// Workers bounds simulation parallelism (default: NumCPU).
	Workers int
	// Verbose, when set, receives one line per completed run.
	Verbose func(string)
	// Store receives completed results and is consulted before executing.
	// Nil selects a private in-memory store on first use. Set it before the
	// first Run call; it must not change afterwards.
	Store ResultStore
	// Shape is the default machine geometry for specs that leave their
	// shape fields zero (expdriver's figure-mode -clusters/-links/
	// -link-latency/-mem-latency flags land here). The zero value is the
	// Table 1 machine. Set it before the first Run/CacheKey call.
	Shape MachineShape
	// Gate, when non-nil, is acquired around every actual simulation (not
	// store hits). Sharing one gate between runners bounds total simulation
	// concurrency across them — the campaign service uses this so that
	// concurrent jobs share one machine-wide worker budget instead of each
	// bringing its own Workers-sized pool. Nil means Workers alone bounds
	// parallelism.
	Gate chan struct{}
	// SampleInterval is the time-series observation window in cycles for
	// runs requested with a Progress.Sample callback (see
	// core.Processor.SetSampler for rounding; <= 0 selects the core
	// default). Sampling is observational only and does not affect
	// CacheKey: a sampled and an unsampled run of one spec share a stored
	// result, which also means store hits and singleflight waiters receive
	// no samples — only the flight owner simulates, and only simulations
	// produce time series.
	SampleInterval int64

	mu       sync.Mutex
	inflight map[string]*flight
	keys     map[string]string // spec key -> content-addressed key

	// executed counts actual simulations (store hits excluded).
	executed atomic.Int64

	traceMu sync.Mutex
	traces  map[traceKey]*traceEntry
}

// flight tracks one in-progress execution so duplicate requests wait for it
// instead of re-running the spec.
type flight struct {
	done chan struct{}
	st   *metrics.Stats
	err  error
}

// traceKey identifies one thread's materialized trace. A trace is a pure
// function of (profile, seed, length); the workload name is deliberately
// NOT part of the key's identity contract — a hand-built Workload may reuse
// a pool name with different seeds or profiles, and keying on the name
// alone would silently hand it the wrong cached trace. The seed and a
// profile fingerprint make the key complete; the thread index only
// disambiguates identical (profile, seed) pairs within one workload, which
// would be the same trace anyway.
type traceKey struct {
	seed    uint64
	length  int
	profile [sha256.Size]byte
}

// profileFingerprint digests a trace profile for trace memoization.
func profileFingerprint(p trace.Profile) [sha256.Size]byte {
	b, err := json.Marshal(p)
	if err != nil {
		// A profile is a flat struct of numbers; Marshal cannot fail.
		panic(err)
	}
	return sha256.Sum256(b)
}

type traceEntry struct {
	once sync.Once
	uops []isa.Uop
}

// NewRunner returns a runner with the given per-thread trace length.
func NewRunner(traceLen int) *Runner {
	return &Runner{
		TraceLen:  traceLen,
		MaxCycles: int64(traceLen) * 40,
		Store:     NewMemStore(),
		inflight:  make(map[string]*flight),
		keys:      make(map[string]string),
		traces:    make(map[traceKey]*traceEntry),
	}
}

// Executed returns the number of simulations this runner actually ran
// (store and singleflight hits excluded).
func (r *Runner) Executed() int64 { return r.executed.Load() }

// traceFor returns thread i's materialized trace for w, generating it at
// most once per (profile, seed, length) for the runner's lifetime. The
// returned slice is shared; callers must treat it as immutable.
func (r *Runner) traceFor(w workload.Workload, i int) []isa.Uop {
	k := traceKey{seed: w.Seeds[i], length: r.TraceLen, profile: profileFingerprint(w.Threads[i])}
	r.traceMu.Lock()
	if r.traces == nil {
		r.traces = make(map[traceKey]*traceEntry)
	}
	e := r.traces[k]
	if e == nil {
		e = &traceEntry{}
		r.traces[k] = e
	}
	r.traceMu.Unlock()
	e.once.Do(func() {
		g := trace.NewGenerator(w.Threads[i], w.Seeds[i])
		e.uops = g.Generate(r.TraceLen)
	})
	return e.uops
}

// buildPrograms materializes the workload's traces (or a single thread's),
// recalling memoized ones.
func (r *Runner) buildPrograms(w workload.Workload, single int) []core.ThreadProgram {
	var progs []core.ThreadProgram
	for i, prof := range w.Threads {
		if single >= 0 && i != single {
			continue
		}
		progs = append(progs, core.ThreadProgram{
			Trace:   r.traceFor(w, i),
			Profile: prof,
			Seed:    w.Seeds[i] ^ 0xabcdef,
		})
	}
	return progs
}

// configFor returns the exact machine configuration execute builds for s.
// CacheKey hashes it, so the two must stay in lockstep. The spec's shape
// fields override the runner's Shape, which overrides Table 1; a fully
// default shape therefore produces a byte-identical canonical config (and
// cache key) to the pre-shape-axis runner.
func (r *Runner) configFor(s Spec) core.Config {
	n := len(s.Workload.Threads)
	if s.SingleThread >= 0 {
		n = 1
	}
	cfg := core.DefaultConfig(n)
	cfg.IQSize = s.IQSize
	cfg.IntRegsPerCluster = s.RegsPerClust
	cfg.FpRegsPerCluster = s.RegsPerClust
	cfg.ROBPerThread = s.ROBPerThread
	cfg.MaxCycles = r.MaxCycles
	cfg.WarmupUops = uint64(r.TraceLen / 5)
	shape := overlayShape(MachineShape{
		NumClusters: s.NumClusters,
		Links:       s.Links,
		LinkLatency: s.LinkLatency,
		MemLatency:  s.MemLatency,
	}, r.Shape)
	if shape.NumClusters > 0 {
		cfg.NumClusters = shape.NumClusters
	}
	if shape.Links > 0 {
		cfg.Net.Links = shape.Links
	}
	if shape.LinkLatency > 0 {
		cfg.Net.Latency = shape.LinkLatency
	}
	if shape.MemLatency > 0 {
		cfg.Cache.MemLatency = shape.MemLatency
	}
	return cfg
}

// specFingerprint is everything that determines a spec's simulated outcome:
// the simulator revision, the canonicalized machine configuration and the
// complete workload definition (profiles and seeds — the trace streams are
// a pure function of these plus the length, which the config's WarmupUops
// does not capture on its own).
type specFingerprint struct {
	Version      string            `json:"version"`
	Scheme       string            `json:"scheme"`
	SingleThread int               `json:"single_thread"`
	TraceLen     int               `json:"trace_len"`
	Workload     workload.Workload `json:"workload"`
	Config       json.RawMessage   `json:"config"`
}

// CacheKey returns the content-addressed result key for s under this
// runner's settings: the hex SHA-256 of the spec fingerprint. Equal keys
// mean equal simulated outcomes across processes and branches (for one
// core.SimVersion), which is what lets a disk store answer for a re-run.
func (r *Runner) CacheKey(s Spec) string {
	k := s.key()
	r.mu.Lock()
	if ck, ok := r.keys[k]; ok {
		r.mu.Unlock()
		return ck
	}
	r.mu.Unlock()

	ck := r.computeKey(s)

	r.mu.Lock()
	if r.keys == nil {
		r.keys = make(map[string]string)
	}
	r.keys[k] = ck
	r.mu.Unlock()
	return ck
}

// canonicalScheme reduces a scheme reference to its canonical spelling for
// the content-addressed fingerprint; unparseable strings pass through (the
// execution path reports the error, and the raw string cannot collide with
// a canonical one in the store because it never produces results).
func canonicalScheme(s string) string {
	if c, err := policy.CanonicalScheme(s); err == nil {
		return c
	}
	return s
}

func (r *Runner) computeKey(s Spec) string {
	cb, err := r.configFor(s).Canonical()
	if err != nil {
		return "spec:" + s.key() // unhashable: session-local key, never persisted as content
	}
	b, err := json.Marshal(specFingerprint{
		Version:      core.SimVersion,
		Scheme:       canonicalScheme(s.Scheme),
		SingleThread: s.SingleThread,
		TraceLen:     r.TraceLen,
		Workload:     s.Workload,
		Config:       cb,
	})
	if err != nil {
		return "spec:" + s.key()
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// execute runs one spec to completion (uncached). A context cancellation
// mid-simulation discards the partial run: it is not counted as executed
// and never reaches the store. A non-nil onSample attaches a time-series
// sampler for the duration of the run (see SampleInterval).
func (r *Runner) execute(ctx context.Context, s Spec, onSample func(metrics.Sample)) (*metrics.Stats, error) {
	p, err := core.NewScheme(r.configFor(s), s.Scheme, r.buildPrograms(s.Workload, s.SingleThread))
	if err != nil {
		return nil, err
	}
	if onSample != nil {
		p.SetSampler(r.SampleInterval, onSample)
	}
	st, err := p.RunCtx(ctx)
	if err != nil {
		return nil, err
	}
	r.executed.Add(1)
	return st, nil
}

// Run executes (or recalls) one spec. Concurrent calls for the same spec
// share a single execution; completed results are recalled from the store.
func (r *Runner) Run(s Spec) (*metrics.Stats, error) {
	st, _, err := r.run(context.Background(), s, nil)
	return st, err
}

// RunCtx is Run with cooperative cancellation: a cancelled context stops
// the simulation mid-run (the partial result is discarded, not stored) and
// returns the context's error.
func (r *Runner) RunCtx(ctx context.Context, s Spec) (*metrics.Stats, error) {
	st, _, err := r.run(ctx, s, nil)
	return st, err
}

// run is the shared execution core. The executed return reports whether
// THIS call ran the simulation: false for store hits and for singleflight
// waiters (the flight owner reports true). Summing executed across
// arbitrarily many concurrent callers therefore counts each distinct spec
// exactly once — the property the campaign engine's Executed tally and the
// service's cross-job deduplication test rely on.
//
// A cancellation error from the flight owner does NOT propagate to
// waiters whose own context is still live: on a shared engine the owner
// belongs to a different campaign, and its DELETE must not fail
// overlapping items of uncancelled jobs — the waiter retries (typically
// becoming the new owner) instead.
func (r *Runner) run(ctx context.Context, s Spec, onSample func(metrics.Sample)) (st *metrics.Stats, executed bool, err error) {
	for {
		st, executed, err, retry := r.runOnce(ctx, s, onSample)
		if !retry {
			return st, executed, err
		}
	}
}

func (r *Runner) runOnce(ctx context.Context, s Spec, onSample func(metrics.Sample)) (st *metrics.Stats, executed bool, err error, retry bool) {
	if err := ctx.Err(); err != nil {
		return nil, false, err, false
	}
	k := s.key()
	ck := r.CacheKey(s)
	r.mu.Lock()
	if r.inflight == nil {
		r.inflight = make(map[string]*flight)
	}
	if r.Store == nil {
		r.Store = NewMemStore()
	}
	store := r.Store
	if f, ok := r.inflight[k]; ok {
		r.mu.Unlock()
		select {
		case <-f.done:
			if ctxErr(f.err) && ctx.Err() == nil {
				return nil, false, nil, true // owner's job canceled, not ours
			}
			return f.st, false, f.err, false
		case <-ctx.Done():
			return nil, false, ctx.Err(), false
		}
	}
	// The store lookup happens under the lock so a miss and the inflight
	// registration are atomic; the in-memory layer answers in O(1) and a
	// cold disk read is dwarfed by the simulation it saves.
	if st, ok, _ := store.Get(ck); ok {
		r.mu.Unlock()
		return st, false, nil, false
	}
	f := &flight{done: make(chan struct{})}
	r.inflight[k] = f
	r.mu.Unlock()

	finish := func() {
		r.mu.Lock()
		delete(r.inflight, k)
		r.mu.Unlock()
		close(f.done)
	}

	if r.Gate != nil {
		select {
		case r.Gate <- struct{}{}:
			defer func() { <-r.Gate }()
		case <-ctx.Done():
			f.err = ctx.Err()
			finish()
			return nil, false, f.err, false
		}
	}

	f.st, f.err = r.execute(ctx, s, onSample)

	var putErr error
	if f.err == nil {
		putErr = store.Put(ck, f.st)
	}
	finish()

	if r.Verbose != nil {
		if f.err == nil {
			r.Verbose(fmt.Sprintf("%-60s ipc=%.3f", k, f.st.IPC()))
		}
		if putErr != nil {
			r.Verbose(fmt.Sprintf("%-60s store put: %v", k, putErr))
		}
	}
	return f.st, f.err == nil, f.err, false
}

// ctxErr reports whether err is a context cancellation/deadline error.
func ctxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Progress receives per-spec lifecycle callbacks from RunAllCtx. Both
// callbacks are optional (nil fields are skipped) and are invoked from the
// pool's worker goroutines, so implementations must be safe for concurrent
// use. Finished's executed flag distinguishes a fresh simulation from a
// store or singleflight hit (see run).
type Progress struct {
	// Started fires when a worker picks up spec i.
	Started func(i int)
	// Sample fires for each closed observation window while spec i
	// simulates (window size: Runner.SampleInterval). It only fires for
	// specs this pool actually executes — store hits and singleflight
	// waiters complete without samples. Called from the simulating
	// goroutine; it must return quickly.
	Sample func(i int, s metrics.Sample)
	// Finished fires when spec i completes (successfully or not).
	Finished func(i int, st *metrics.Stats, executed bool, err error)
}

// RunAll executes specs on a worker pool and returns stats in spec order.
// Failed specs leave a nil entry and their errors — each annotated with its
// spec key — are aggregated with errors.Join, so callers get the partial
// results alongside the combined failure.
func (r *Runner) RunAll(specs []Spec) ([]*metrics.Stats, error) {
	return r.RunAllCtx(context.Background(), specs, nil)
}

// RunAllCtx is RunAll with cooperative cancellation and optional per-spec
// progress reporting. Cancellation is immediate, not just between specs:
// in-flight simulations stop at the next context poll, and specs not yet
// started fail with the context's error. The worker pool always drains
// fully before RunAllCtx returns.
func (r *Runner) RunAllCtx(ctx context.Context, specs []Spec, p *Progress) ([]*metrics.Stats, error) {
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers < 1 {
		workers = 1
	}
	out := make([]*metrics.Stats, len(specs))
	errs := make([]error, len(specs))
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if p != nil && p.Started != nil {
					p.Started(i)
				}
				var onSample func(metrics.Sample)
				if p != nil && p.Sample != nil {
					i := i
					onSample = func(s metrics.Sample) { p.Sample(i, s) }
				}
				var executed bool
				// The item index arrives over the work channel, so detcheck
				// sees goroutine send order flowing into the simulation —
				// but each item's stats depend only on specs[i], and the
				// result re-keys deterministically into out[i].
				//smtlint:allow detcheck: channel-delivered index selects which spec runs, not what it computes; results re-key into out[i]
				out[i], executed, errs[i] = r.run(ctx, specs[i], onSample)
				if p != nil && p.Finished != nil {
					p.Finished(i, out[i], executed, errs[i])
				}
			}
		}()
	}
	for i := range specs {
		work <- i
	}
	close(work)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			errs[i] = fmt.Errorf("%s: %w", specs[i].key(), err)
		}
	}
	return out, errors.Join(errs...)
}

// mean returns the arithmetic mean of xs (0 for empty input).
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total / float64(len(xs))
}
