// Package experiments defines one reproduction per paper figure/table
// (the index lives in DESIGN.md §4) on top of a memoizing, parallel
// simulation runner. Every figure is a pure function of the runner, so the
// expdriver binary, the test suite and the benchmark harness share runs.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"clustersmt/internal/core"
	"clustersmt/internal/isa"
	"clustersmt/internal/metrics"
	"clustersmt/internal/trace"
	"clustersmt/internal/workload"
)

// Spec identifies one simulation: a workload under a scheme on a machine
// configuration. SingleThread >= 0 runs that thread alone (the fairness
// baseline); -1 runs the full SMT workload.
type Spec struct {
	Workload     workload.Workload
	Scheme       string
	IQSize       int
	RegsPerClust int // 0 = unbounded
	ROBPerThread int // 0 = unbounded
	SingleThread int // -1 = SMT
}

func (s Spec) key() string {
	return fmt.Sprintf("%s|%s|iq%d|rf%d|rob%d|st%d",
		s.Workload.Name, s.Scheme, s.IQSize, s.RegsPerClust, s.ROBPerThread, s.SingleThread)
}

// Runner executes Specs with memoization and a bounded worker pool.
// It is safe for concurrent use.
//
// Two layers are shared across runs. Completed results are memoized by spec
// key, with singleflight in-flight tracking so concurrent requests for the
// same spec execute it exactly once. Materialized traces are memoized by
// (workload, thread, length): the ~100+ specs behind one figure differ in
// scheme and resource sizing but re-read the same uop streams, and a
// thread's trace is identical whether it runs alone (the fairness baseline)
// or inside the SMT pair, so generation cost is paid once per workload
// thread rather than once per spec. Traces are read-only to the core, which
// is what makes the sharing safe.
type Runner struct {
	// TraceLen is the per-thread trace length in uops.
	TraceLen int
	// MaxCycles bounds each simulation.
	MaxCycles int64
	// Workers bounds simulation parallelism (default: NumCPU).
	Workers int
	// Verbose, when set, receives one line per completed run.
	Verbose func(string)

	mu       sync.Mutex
	cache    map[string]*metrics.Stats
	inflight map[string]*flight

	traceMu sync.Mutex
	traces  map[traceKey]*traceEntry
}

// flight tracks one in-progress execution so duplicate requests wait for it
// instead of re-running the spec.
type flight struct {
	done chan struct{}
	st   *metrics.Stats
	err  error
}

// traceKey identifies one thread's materialized trace. The workload name
// determines the profile and seed (package workload constructs them
// deterministically from it), so (name, thread, length) is a complete key.
type traceKey struct {
	workload string
	thread   int
	length   int
}

type traceEntry struct {
	once sync.Once
	uops []isa.Uop
}

// NewRunner returns a runner with the given per-thread trace length.
func NewRunner(traceLen int) *Runner {
	return &Runner{
		TraceLen:  traceLen,
		MaxCycles: int64(traceLen) * 40,
		cache:     make(map[string]*metrics.Stats),
		inflight:  make(map[string]*flight),
		traces:    make(map[traceKey]*traceEntry),
	}
}

// traceFor returns thread i's materialized trace for w, generating it at
// most once per (workload, thread, length) for the runner's lifetime. The
// returned slice is shared; callers must treat it as immutable.
func (r *Runner) traceFor(w workload.Workload, i int) []isa.Uop {
	k := traceKey{workload: w.Name, thread: i, length: r.TraceLen}
	r.traceMu.Lock()
	if r.traces == nil {
		r.traces = make(map[traceKey]*traceEntry)
	}
	e := r.traces[k]
	if e == nil {
		e = &traceEntry{}
		r.traces[k] = e
	}
	r.traceMu.Unlock()
	e.once.Do(func() {
		g := trace.NewGenerator(w.Threads[i], w.Seeds[i])
		e.uops = g.Generate(r.TraceLen)
	})
	return e.uops
}

// buildPrograms materializes the workload's traces (or a single thread's),
// recalling memoized ones.
func (r *Runner) buildPrograms(w workload.Workload, single int) []core.ThreadProgram {
	var progs []core.ThreadProgram
	for i, prof := range w.Threads {
		if single >= 0 && i != single {
			continue
		}
		progs = append(progs, core.ThreadProgram{
			Trace:   r.traceFor(w, i),
			Profile: prof,
			Seed:    w.Seeds[i] ^ 0xabcdef,
		})
	}
	return progs
}

// execute runs one spec to completion (uncached).
func (r *Runner) execute(s Spec) (*metrics.Stats, error) {
	n := len(s.Workload.Threads)
	if s.SingleThread >= 0 {
		n = 1
	}
	cfg := core.DefaultConfig(n)
	cfg.IQSize = s.IQSize
	cfg.IntRegsPerCluster = s.RegsPerClust
	cfg.FpRegsPerCluster = s.RegsPerClust
	cfg.ROBPerThread = s.ROBPerThread
	cfg.MaxCycles = r.MaxCycles
	cfg.WarmupUops = uint64(r.TraceLen / 5)
	p, err := core.NewScheme(cfg, s.Scheme, r.buildPrograms(s.Workload, s.SingleThread))
	if err != nil {
		return nil, err
	}
	return p.Run(), nil
}

// Run executes (or recalls) one spec. Concurrent calls for the same spec
// share a single execution.
func (r *Runner) Run(s Spec) (*metrics.Stats, error) {
	k := s.key()
	r.mu.Lock()
	if r.cache == nil {
		r.cache = make(map[string]*metrics.Stats)
	}
	if r.inflight == nil {
		r.inflight = make(map[string]*flight)
	}
	if st, ok := r.cache[k]; ok {
		r.mu.Unlock()
		return st, nil
	}
	if f, ok := r.inflight[k]; ok {
		r.mu.Unlock()
		<-f.done
		return f.st, f.err
	}
	f := &flight{done: make(chan struct{})}
	r.inflight[k] = f
	r.mu.Unlock()

	f.st, f.err = r.execute(s)

	r.mu.Lock()
	if f.err == nil {
		r.cache[k] = f.st
	}
	delete(r.inflight, k)
	r.mu.Unlock()
	close(f.done)

	if f.err == nil && r.Verbose != nil {
		r.Verbose(fmt.Sprintf("%-60s ipc=%.3f", k, f.st.IPC()))
	}
	return f.st, f.err
}

// RunAll executes specs on a worker pool and returns stats in spec order.
func (r *Runner) RunAll(specs []Spec) ([]*metrics.Stats, error) {
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers < 1 {
		workers = 1
	}
	out := make([]*metrics.Stats, len(specs))
	errs := make([]error, len(specs))
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				out[i], errs[i] = r.Run(specs[i])
			}
		}()
	}
	for i := range specs {
		work <- i
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// mean returns the arithmetic mean of xs (0 for empty input).
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total / float64(len(xs))
}
