package experiments

import (
	"clustersmt/internal/metrics"
	"clustersmt/internal/workload"
)

// Options selects the workload subset an experiment runs on. The zero value
// reproduces the paper's full pool.
type Options struct {
	// Categories restricts to the named categories (nil = all 11).
	Categories []string
	// MaxPerCategory caps workloads per category (0 = all); quick modes
	// and benchmarks use small caps.
	MaxPerCategory int
}

// categories returns the selected category keys in paper order.
func (o Options) categories() []string {
	if len(o.Categories) == 0 {
		return workload.Categories
	}
	return o.Categories
}

// workloads returns the selected workloads of one category. When capped,
// the subset covers the ILP/MEM/MIX types round-robin so a reduced pool
// keeps the category's behavioural spread.
func (o Options) workloads(cat string) []workload.Workload {
	ws := workload.ByCategory(cat)
	if o.MaxPerCategory <= 0 || len(ws) <= o.MaxPerCategory {
		return ws
	}
	byType := map[workload.Type][]workload.Workload{}
	var order []workload.Type
	for _, w := range ws {
		if len(byType[w.Type]) == 0 {
			order = append(order, w.Type)
		}
		byType[w.Type] = append(byType[w.Type], w)
	}
	var out []workload.Workload
	for len(out) < o.MaxPerCategory {
		progressed := false
		for _, ty := range order {
			if len(byType[ty]) == 0 {
				continue
			}
			out = append(out, byType[ty][0])
			byType[ty] = byType[ty][1:]
			progressed = true
			if len(out) == o.MaxPerCategory {
				break
			}
		}
		if !progressed {
			break
		}
	}
	return out
}

// Selected returns every workload the options select, in deterministic
// category order — the exported form of all, reused by the campaign
// manifest expansion so its quick-pool subsets match the figure harness.
func (o Options) Selected() []workload.Workload { return o.all() }

// all returns every selected workload.
func (o Options) all() []workload.Workload {
	var out []workload.Workload
	for _, cat := range o.categories() {
		out = append(out, o.workloads(cat)...)
	}
	return out
}

// The experiment configurations of §5:
//
//   - the issue-queue study (§5.1, Figs. 2–5) unbounds the register file
//     and ROB "to avoid side effects on these components";
//   - the register-file study (§5.2, Figs. 6, 9, 10) uses the full Table 1
//     machine: 32-entry IQs, 128-entry per-thread ROBs, bounded register
//     files of 64 or 128 registers per kind per cluster.
const (
	unbounded = 0
	boundROB  = 128
)

// iqStudySpec returns the §5.1 spec for a workload/scheme at an IQ size.
func iqStudySpec(w workload.Workload, scheme string, iq int) Spec {
	return Spec{Workload: w, Scheme: scheme, IQSize: iq,
		RegsPerClust: unbounded, ROBPerThread: unbounded, SingleThread: -1}
}

// rfStudySpec returns the §5.2 spec at a register-file size.
func rfStudySpec(w workload.Workload, scheme string, regs int) Spec {
	return Spec{Workload: w, Scheme: scheme, IQSize: 32,
		RegsPerClust: regs, ROBPerThread: boundROB, SingleThread: -1}
}

// CategorySeries holds one value per category plus the overall average,
// keyed as the figures label them.
type CategorySeries struct {
	// Categories is the row order (display names, ending with "AVG").
	Categories []string
	// Values maps series name -> category display name -> value.
	Values map[string]map[string]float64
}

// newCategorySeries prepares a series container for the options' categories.
func newCategorySeries(o Options, seriesNames []string) *CategorySeries {
	cs := &CategorySeries{Values: map[string]map[string]float64{}}
	for _, cat := range o.categories() {
		cs.Categories = append(cs.Categories, workload.DisplayName(cat))
	}
	cs.Categories = append(cs.Categories, "AVG")
	for _, s := range seriesNames {
		cs.Values[s] = map[string]float64{}
	}
	return cs
}

// Fig2 reproduces Figure 2: throughput of the seven issue-queue schemes at
// 32 and 64 IQ entries per cluster, normalized per workload to Icount with
// 32 entries, averaged per category. Series are named "<scheme>/<iq>".
func Fig2(r *Runner, o Options, schemes []string, iqSizes []int) (*CategorySeries, error) {
	var names []string
	for _, s := range schemes {
		for _, iq := range iqSizes {
			names = append(names, seriesName(s, iq))
		}
	}
	cs := newCategorySeries(o, names)

	// Warm the cache in parallel across every needed run.
	var specs []Spec
	for _, w := range o.all() {
		specs = append(specs, iqStudySpec(w, "icount", 32))
		for _, s := range schemes {
			for _, iq := range iqSizes {
				specs = append(specs, iqStudySpec(w, s, iq))
			}
		}
	}
	if _, err := r.RunAll(specs); err != nil {
		return nil, err
	}

	perSeries := map[string][]float64{} // overall AVG accumulators
	for _, cat := range o.categories() {
		disp := workload.DisplayName(cat)
		acc := map[string][]float64{}
		for _, w := range o.workloads(cat) {
			base, err := r.Run(iqStudySpec(w, "icount", 32))
			if err != nil {
				return nil, err
			}
			for _, s := range schemes {
				for _, iq := range iqSizes {
					st, err := r.Run(iqStudySpec(w, s, iq))
					if err != nil {
						return nil, err
					}
					sp := st.IPC() / base.IPC()
					name := seriesName(s, iq)
					acc[name] = append(acc[name], sp)
					perSeries[name] = append(perSeries[name], sp)
				}
			}
		}
		for name, xs := range acc {
			cs.Values[name][disp] = mean(xs)
		}
	}
	for name, xs := range perSeries {
		cs.Values[name]["AVG"] = mean(xs)
	}
	return cs, nil
}

func seriesName(scheme string, iq int) string {
	return scheme + "/" + itoa(iq)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// perWorkloadMetric averages fn over each category's workloads for the
// §5.1 configuration (32-entry IQs, unbounded RF/ROB).
func perWorkloadMetric(r *Runner, o Options, schemes []string, fn func(*metrics.Stats) float64) (*CategorySeries, error) {
	cs := newCategorySeries(o, schemes)
	var specs []Spec
	for _, w := range o.all() {
		for _, s := range schemes {
			specs = append(specs, iqStudySpec(w, s, 32))
		}
	}
	if _, err := r.RunAll(specs); err != nil {
		return nil, err
	}
	perScheme := map[string][]float64{}
	for _, cat := range o.categories() {
		disp := workload.DisplayName(cat)
		for _, s := range schemes {
			var xs []float64
			for _, w := range o.workloads(cat) {
				st, err := r.Run(iqStudySpec(w, s, 32))
				if err != nil {
					return nil, err
				}
				xs = append(xs, fn(st))
			}
			cs.Values[s][disp] = mean(xs)
			perScheme[s] = append(perScheme[s], xs...)
		}
	}
	for s, xs := range perScheme {
		cs.Values[s]["AVG"] = mean(xs)
	}
	return cs, nil
}

// Fig3 reproduces Figure 3: inter-cluster copies per retired instruction
// per scheme at 32 IQ entries.
func Fig3(r *Runner, o Options, schemes []string) (*CategorySeries, error) {
	return perWorkloadMetric(r, o, schemes, func(st *metrics.Stats) float64 {
		return st.CopiesPerRetired()
	})
}

// Fig4 reproduces Figure 4: issue-queue stalls per retired instruction.
func Fig4(r *Runner, o Options, schemes []string) (*CategorySeries, error) {
	return perWorkloadMetric(r, o, schemes, func(st *metrics.Stats) float64 {
		return st.IQStallsPerRetired()
	})
}

// ImbalanceCell is one stacked-bar segment of Figure 5.
type ImbalanceCell struct {
	// Class is the instruction group (Integer, Fp/Simd, Mem).
	Class metrics.ImbClass
	// Kind is 0 (could not execute anywhere) or 1 (other cluster had a
	// free compatible port: true workload imbalance).
	Kind int
}

// Fig5Result maps category -> scheme -> the six stacked fractions.
type Fig5Result struct {
	Categories []string
	Schemes    []string
	// Frac[cat][scheme][class][kind] is the fraction of issuing cycles.
	Frac map[string]map[string][metrics.NumImbClasses][2]float64
}

// Fig5 reproduces Figure 5: the workload-imbalance breakdown for Icount,
// CISP, CSSP and PC at 32 IQ entries.
func Fig5(r *Runner, o Options, schemes []string) (*Fig5Result, error) {
	res := &Fig5Result{
		Schemes: schemes,
		Frac:    map[string]map[string][metrics.NumImbClasses][2]float64{},
	}
	var specs []Spec
	for _, w := range o.all() {
		for _, s := range schemes {
			specs = append(specs, iqStudySpec(w, s, 32))
		}
	}
	if _, err := r.RunAll(specs); err != nil {
		return nil, err
	}
	for _, cat := range append(append([]string{}, o.categories()...), "__avg__") {
		var cats []string
		var disp string
		if cat == "__avg__" {
			cats = o.categories()
			disp = "AVG"
		} else {
			cats = []string{cat}
			disp = workload.DisplayName(cat)
		}
		res.Categories = append(res.Categories, disp)
		byScheme := map[string][metrics.NumImbClasses][2]float64{}
		for _, s := range schemes {
			var agg [metrics.NumImbClasses][2]float64
			var n float64
			for _, c := range cats {
				for _, w := range o.workloads(c) {
					st, err := r.Run(iqStudySpec(w, s, 32))
					if err != nil {
						return nil, err
					}
					for k := 0; k < metrics.NumImbClasses; k++ {
						for kind := 0; kind < 2; kind++ {
							agg[k][kind] += st.ImbalanceFrac(metrics.ImbClass(k), kind)
						}
					}
					n++
				}
			}
			if n > 0 {
				for k := range agg {
					agg[k][0] /= n
					agg[k][1] /= n
				}
			}
			byScheme[s] = agg
		}
		res.Frac[disp] = byScheme
	}
	return res, nil
}

// Fig6 reproduces Figure 6: throughput of CSSP, CSSPRF and CISPRF with 64
// and 128 registers per kind per cluster, normalized per workload to Icount
// with 64 registers, averaged per category. Series "<scheme>/<regs>".
func Fig6(r *Runner, o Options, schemes []string, regSizes []int) (*CategorySeries, error) {
	var names []string
	for _, s := range schemes {
		for _, rg := range regSizes {
			names = append(names, seriesName(s, rg))
		}
	}
	cs := newCategorySeries(o, names)
	var specs []Spec
	for _, w := range o.all() {
		specs = append(specs, rfStudySpec(w, "icount", 64))
		for _, s := range schemes {
			for _, rg := range regSizes {
				specs = append(specs, rfStudySpec(w, s, rg))
			}
		}
	}
	if _, err := r.RunAll(specs); err != nil {
		return nil, err
	}
	perSeries := map[string][]float64{}
	for _, cat := range o.categories() {
		disp := workload.DisplayName(cat)
		acc := map[string][]float64{}
		for _, w := range o.workloads(cat) {
			base, err := r.Run(rfStudySpec(w, "icount", 64))
			if err != nil {
				return nil, err
			}
			for _, s := range schemes {
				for _, rg := range regSizes {
					st, err := r.Run(rfStudySpec(w, s, rg))
					if err != nil {
						return nil, err
					}
					sp := st.IPC() / base.IPC()
					acc[seriesName(s, rg)] = append(acc[seriesName(s, rg)], sp)
					perSeries[seriesName(s, rg)] = append(perSeries[seriesName(s, rg)], sp)
				}
			}
		}
		for name, xs := range acc {
			cs.Values[name][disp] = mean(xs)
		}
	}
	for name, xs := range perSeries {
		cs.Values[name]["AVG"] = mean(xs)
	}
	return cs, nil
}

// Fig9Result is the per-workload CDPRF study on ISPEC-FSPEC.
type Fig9Result struct {
	// Workloads lists ISPEC-FSPEC workload names plus "AVG" and "AVG All".
	Workloads []string
	Schemes   []string
	// Speedup[workload][scheme] is IPC normalized to Icount (64 regs).
	Speedup map[string]map[string]float64
}

// Fig9 reproduces Figure 9: CSSP, CSSPRF, CISPRF and CDPRF on every
// ISPEC-FSPEC workload (64 registers per cluster), normalized to Icount,
// plus the category average and the all-categories average.
func Fig9(r *Runner, o Options, schemes []string) (*Fig9Result, error) {
	res := &Fig9Result{Schemes: schemes, Speedup: map[string]map[string]float64{}}
	isfs := o.workloads("isfs")
	var specs []Spec
	for _, w := range isfs {
		specs = append(specs, rfStudySpec(w, "icount", 64))
		for _, s := range schemes {
			specs = append(specs, rfStudySpec(w, s, 64))
		}
	}
	if _, err := r.RunAll(specs); err != nil {
		return nil, err
	}
	catAcc := map[string][]float64{}
	for _, w := range isfs {
		base, err := r.Run(rfStudySpec(w, "icount", 64))
		if err != nil {
			return nil, err
		}
		row := map[string]float64{}
		for _, s := range schemes {
			st, err := r.Run(rfStudySpec(w, s, 64))
			if err != nil {
				return nil, err
			}
			row[s] = st.IPC() / base.IPC()
			catAcc[s] = append(catAcc[s], row[s])
		}
		res.Workloads = append(res.Workloads, w.Name)
		res.Speedup[w.Name] = row
	}
	avg := map[string]float64{}
	for _, s := range schemes {
		avg[s] = mean(catAcc[s])
	}
	res.Workloads = append(res.Workloads, "AVG")
	res.Speedup["AVG"] = avg

	// "AVG All": the same normalized speedups over every category.
	allAcc := map[string][]float64{}
	var specsAll []Spec
	for _, w := range o.all() {
		specsAll = append(specsAll, rfStudySpec(w, "icount", 64))
		for _, s := range schemes {
			specsAll = append(specsAll, rfStudySpec(w, s, 64))
		}
	}
	if _, err := r.RunAll(specsAll); err != nil {
		return nil, err
	}
	for _, w := range o.all() {
		base, err := r.Run(rfStudySpec(w, "icount", 64))
		if err != nil {
			return nil, err
		}
		for _, s := range schemes {
			st, err := r.Run(rfStudySpec(w, s, 64))
			if err != nil {
				return nil, err
			}
			allAcc[s] = append(allAcc[s], st.IPC()/base.IPC())
		}
	}
	avgAll := map[string]float64{}
	for _, s := range schemes {
		avgAll[s] = mean(allAcc[s])
	}
	res.Workloads = append(res.Workloads, "AVG All")
	res.Speedup["AVG All"] = avgAll
	return res, nil
}

// singleIPC returns each thread's stand-alone IPC on the §5.2 machine.
func (r *Runner) singleIPC(w workload.Workload) ([]float64, error) {
	out := make([]float64, len(w.Threads))
	for t := range w.Threads {
		st, err := r.Run(Spec{Workload: w, Scheme: "icount", IQSize: 32,
			RegsPerClust: 64, ROBPerThread: boundROB, SingleThread: t})
		if err != nil {
			return nil, err
		}
		out[t] = st.IPC()
	}
	return out, nil
}

// fairnessOf computes the §4 fairness metric of one workload under scheme.
func (r *Runner) fairnessOf(w workload.Workload, scheme string) (float64, error) {
	single, err := r.singleIPC(w)
	if err != nil {
		return 0, err
	}
	st, err := r.Run(rfStudySpec(w, scheme, 64))
	if err != nil {
		return 0, err
	}
	smt := make([]float64, len(w.Threads))
	for t := range smt {
		smt[t] = st.ThreadIPC(t)
	}
	return metrics.Fairness(single, smt), nil
}

// Fig10 reproduces Figure 10: the fairness of Stall, Flush+, CSSP and
// CDPRF relative to Icount, per category (64 registers per cluster).
func Fig10(r *Runner, o Options, schemes []string) (*CategorySeries, error) {
	cs := newCategorySeries(o, schemes)
	var specs []Spec
	for _, w := range o.all() {
		for t := range w.Threads {
			specs = append(specs, Spec{Workload: w, Scheme: "icount", IQSize: 32,
				RegsPerClust: 64, ROBPerThread: boundROB, SingleThread: t})
		}
		specs = append(specs, rfStudySpec(w, "icount", 64))
		for _, s := range schemes {
			specs = append(specs, rfStudySpec(w, s, 64))
		}
	}
	if _, err := r.RunAll(specs); err != nil {
		return nil, err
	}
	perScheme := map[string][]float64{}
	for _, cat := range o.categories() {
		disp := workload.DisplayName(cat)
		acc := map[string][]float64{}
		for _, w := range o.workloads(cat) {
			baseFair, err := r.fairnessOf(w, "icount")
			if err != nil {
				return nil, err
			}
			if baseFair <= 0 {
				continue
			}
			for _, s := range schemes {
				f, err := r.fairnessOf(w, s)
				if err != nil {
					return nil, err
				}
				ratio := f / baseFair
				acc[s] = append(acc[s], ratio)
				perScheme[s] = append(perScheme[s], ratio)
			}
		}
		for s, xs := range acc {
			cs.Values[s][disp] = mean(xs)
		}
	}
	for s, xs := range perScheme {
		cs.Values[s]["AVG"] = mean(xs)
	}
	return cs, nil
}

// HeadlineResult is the paper's §1/§6 summary claim. The JSON form is the
// CI figure-regression artifact, compared against a checked-in golden.
type HeadlineResult struct {
	// CSSPSpeedup and CDPRFSpeedup are mean per-workload throughput
	// speedups vs Icount on the Table 1 machine (64 regs/cluster).
	CSSPSpeedup  float64 `json:"cssp_speedup"`
	CDPRFSpeedup float64 `json:"cdprf_speedup"`
	// FairnessRatio is CDPRF's mean fairness relative to Icount.
	FairnessRatio float64 `json:"fairness_ratio"`
	// BestCategory and BestCategorySpeedup report CDPRF's best category.
	BestCategory        string  `json:"best_category"`
	BestCategorySpeedup float64 `json:"best_category_speedup"`
}

// Headline reproduces the headline numbers: "17.6% average speedup versus
// Icount improving fairness in 24%", with up to 40% for some category.
func Headline(r *Runner, o Options) (*HeadlineResult, error) {
	res := &HeadlineResult{}
	var cssp, cdprf, fair []float64
	catAcc := map[string][]float64{}
	var specs []Spec
	for _, w := range o.all() {
		for _, s := range []string{"icount", "cssp", "cdprf"} {
			specs = append(specs, rfStudySpec(w, s, 64))
		}
		for t := range w.Threads {
			specs = append(specs, Spec{Workload: w, Scheme: "icount", IQSize: 32,
				RegsPerClust: 64, ROBPerThread: boundROB, SingleThread: t})
		}
	}
	if _, err := r.RunAll(specs); err != nil {
		return nil, err
	}
	for _, cat := range o.categories() {
		for _, w := range o.workloads(cat) {
			base, err := r.Run(rfStudySpec(w, "icount", 64))
			if err != nil {
				return nil, err
			}
			stCSSP, err := r.Run(rfStudySpec(w, "cssp", 64))
			if err != nil {
				return nil, err
			}
			stCD, err := r.Run(rfStudySpec(w, "cdprf", 64))
			if err != nil {
				return nil, err
			}
			cssp = append(cssp, stCSSP.IPC()/base.IPC())
			sp := stCD.IPC() / base.IPC()
			cdprf = append(cdprf, sp)
			catAcc[cat] = append(catAcc[cat], sp)
			bf, err := r.fairnessOf(w, "icount")
			if err != nil {
				return nil, err
			}
			if bf > 0 {
				f, err := r.fairnessOf(w, "cdprf")
				if err != nil {
					return nil, err
				}
				fair = append(fair, f/bf)
			}
		}
	}
	res.CSSPSpeedup = mean(cssp)
	res.CDPRFSpeedup = mean(cdprf)
	res.FairnessRatio = mean(fair)
	for cat, xs := range catAcc {
		if m := mean(xs); m > res.BestCategorySpeedup {
			res.BestCategorySpeedup = m
			res.BestCategory = workload.DisplayName(cat)
		}
	}
	return res, nil
}

// FutureWork compares CDPRF against the §6 future-work adaptations (DCRA
// and hill-climbing, cluster-aware per this paper's conclusions) as mean
// speedup vs Icount on the Table 1 machine.
func FutureWork(r *Runner, o Options) (map[string]float64, error) {
	schemes := []string{"cssp", "cdprf", "dcra", "hillclimb"}
	var specs []Spec
	for _, w := range o.all() {
		specs = append(specs, rfStudySpec(w, "icount", 64))
		for _, s := range schemes {
			specs = append(specs, rfStudySpec(w, s, 64))
		}
	}
	if _, err := r.RunAll(specs); err != nil {
		return nil, err
	}
	acc := map[string][]float64{}
	for _, w := range o.all() {
		base, err := r.Run(rfStudySpec(w, "icount", 64))
		if err != nil {
			return nil, err
		}
		for _, s := range schemes {
			st, err := r.Run(rfStudySpec(w, s, 64))
			if err != nil {
				return nil, err
			}
			acc[s] = append(acc[s], st.IPC()/base.IPC())
		}
	}
	out := map[string]float64{}
	for s, xs := range acc {
		out[s] = mean(xs)
	}
	return out, nil
}
