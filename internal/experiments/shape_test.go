package experiments

import (
	"testing"

	"clustersmt/internal/policy"
)

// TestPaperShape is the reproduction's acceptance test: on a reduced but
// type-balanced pool it asserts the qualitative findings of §5 —
// who wins, in which order — without pinning absolute numbers.
// It simulates a few hundred runs; skipped with -short.
func TestPaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute simulation batch")
	}
	r := NewRunner(30000)
	o := Options{MaxPerCategory: 3}
	cs, err := Fig2(r, o, policy.PaperIQSchemes(), []int{32, 64})
	if err != nil {
		t.Fatal(err)
	}
	avg := func(s string, iq int) float64 { return cs.Values[seriesName(s, iq)]["AVG"] }
	for _, s := range policy.PaperIQSchemes() {
		t.Logf("%-8s iq32 AVG=%.3f  iq64 AVG=%.3f", s, avg(s, 32), avg(s, 64))
	}

	// §5.1: the cluster-sensitive partition is the best issue-queue scheme.
	for _, other := range []string{"icount", "stall", "flush+", "cisp", "pc"} {
		if avg("cssp", 32) <= avg(other, 32) {
			t.Errorf("CSSP (%.3f) should beat %s (%.3f) at 32 entries",
				avg("cssp", 32), other, avg(other, 32))
		}
	}
	// Static partitioning beats the unmanaged baseline.
	if avg("cssp", 32) < 1.05 {
		t.Errorf("CSSP speedup %.3f over Icount too small", avg("cssp", 32))
	}
	// PC loses to the partitioned schemes that keep both clusters shared.
	if avg("pc", 32) >= avg("cssp", 32) {
		t.Error("private clusters should lose to CSSP (workload balance)")
	}
	// More issue-queue entries help every partitioned scheme.
	for _, s := range []string{"icount", "cisp", "cssp", "cspsp"} {
		if avg(s, 64) < avg(s, 32) {
			t.Errorf("%s should improve from 32 to 64 entries (%.3f -> %.3f)",
				s, avg(s, 32), avg(s, 64))
		}
	}
	// Flush+ outperforms Stall (the refinement is strictly gentler).
	if avg("flush+", 32) <= avg("stall", 32) {
		t.Errorf("Flush+ (%.3f) should beat Stall (%.3f)", avg("flush+", 32), avg("stall", 32))
	}

	// §5.2: cluster-sensitive RF partitioning always loses to
	// cluster-insensitive (conflicting decisions with the steering/CSSP).
	f6, err := Fig6(r, o, []string{"cssp", "cssprf", "cisprf", "cdprf"}, []int{64})
	if err != nil {
		t.Fatal(err)
	}
	if f6.Values["cssprf/64"]["AVG"] > f6.Values["cisprf/64"]["AVG"] {
		t.Errorf("CSSPRF (%.3f) should not beat CISPRF (%.3f)",
			f6.Values["cssprf/64"]["AVG"], f6.Values["cisprf/64"]["AVG"])
	}
	// The dynamic scheme recovers the static partition's losses.
	if f6.Values["cdprf/64"]["AVG"] < f6.Values["cisprf/64"]["AVG"]-1e-9 {
		t.Errorf("CDPRF (%.3f) should be at least CISPRF (%.3f)",
			f6.Values["cdprf/64"]["AVG"], f6.Values["cisprf/64"]["AVG"])
	}
	t.Logf("fig6: cssp=%.3f cssprf=%.3f cisprf=%.3f cdprf=%.3f",
		f6.Values["cssp/64"]["AVG"], f6.Values["cssprf/64"]["AVG"],
		f6.Values["cisprf/64"]["AVG"], f6.Values["cdprf/64"]["AVG"])

	// Headline: CDPRF delivers a double-digit speedup over Icount.
	h, err := Headline(r, o)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("headline: cssp=%.3f cdprf=%.3f fairness=%.3f best=%s(%.3f)",
		h.CSSPSpeedup, h.CDPRFSpeedup, h.FairnessRatio, h.BestCategory, h.BestCategorySpeedup)
	if h.CDPRFSpeedup < 1.10 {
		t.Errorf("CDPRF headline speedup %.3f, want >= 1.10 (paper: 1.176)", h.CDPRFSpeedup)
	}
	// Deviation note (EXPERIMENTS.md): the paper reports +24% fairness.
	// Our Icount baseline starves threads less than the authors' (their
	// mechanism: a missing thread invades both issue queues), so the
	// aggregate fairness gain is smaller here; we assert CDPRF does not
	// meaningfully damage fairness while delivering its throughput win.
	if h.FairnessRatio < 0.85 {
		t.Errorf("CDPRF fairness ratio %.3f, want >= 0.85", h.FairnessRatio)
	}
}
