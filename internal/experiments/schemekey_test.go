package experiments

import (
	"testing"

	"clustersmt/internal/policy"
	"clustersmt/internal/workload"
)

// preRedesignKeys pins the content-addressed cache keys of the 12 named
// schemes (workload dh.ilp.2.1, trace length 20000, IQ 32, otherwise
// default) to the values the runner produced BEFORE the composable
// scheme-spec API existed. These keys address entries in users' on-disk
// result stores: if any of them changes, every pre-redesign store replays
// as 0 hits and silently re-simulates. Never regenerate this table from
// current code — that would defeat its purpose.
var preRedesignKeys = map[string]string{
	"cdprf":     "c0eed5b5d122a504dc61af3411955400b4a528e93a80c568792f873c916edc72",
	"cisp":      "ae07a8c5c94b435b7f5595d3f0ee26a0e9c53902fc9ff86e875969651e1dd0b4",
	"cisprf":    "6ba4f7522d5ef5c4d773b07d45c6d19a1f53138ffeb87cb47df65a3ff3d15076",
	"cspsp":     "f48d6fbb7d669ced1c57b6d6206e7cc31760c599e9deee9d80162751e65c856b",
	"cssp":      "2b43f11d7083526d4f9f1d2ce4c96bb358da86032756c76a06f1a1d63a2a2117",
	"cssprf":    "3ee1f237044975d8ded17f722cb40eec95784a6f21179ce327329388f501924b",
	"dcra":      "e6d69829f9d74ee930ed6662a4f0afcfd105d2656fca309ee7b0b00b9d7e6781",
	"flush+":    "14a38264927a6f8c0536737fdbf1f39a8edb5d31bf4109184d3184a507938f77",
	"hillclimb": "192cf3317f446d3e2590d5044fafe42be2cb6eb3044c3a94381cf1b27513da8d",
	"icount":    "7a80f81d88a5111d39ab794a677115be4c2b45b23b2d10a5f7db4ce39a95b60e",
	"pc":        "94f7027b26080ae2ba5c6b8a359fc1606de148c2f62e3deef119214ea89acbf3",
	"stall":     "c91193f848faab4c2caa14f245e97e28ac2e891e2c6255bdaa95a8299dc08906",
}

// preRedesignKeysRF pins the same for the register-bounded machine of the
// §5.2 study (64 regs/cluster, ROB 128).
var preRedesignKeysRF = map[string]string{
	"cssp":   "d897f6237706e1759a49461adae1fa7465419079a21160cb60ad63041613adb6",
	"cssprf": "3e022440747792478c09712e15b714757e623e67c2c0299cade3e0ad8a26c72c",
	"cisprf": "9c63efeb7fc8f074e28c171ff0ec136a8e1bec6a5911e5915dadc0f1dae9bba1",
	"cdprf":  "7c07dd2d1da643f2035fac1e7caa9c8ba078046fa7df9cdbb635af242a23abf7",
}

func keyWorkload(t *testing.T) workload.Workload {
	t.Helper()
	w, err := workload.Find("dh.ilp.2.1")
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestNamedSchemeCacheKeysPinned: the named schemes' content-addressed
// keys are byte-identical to their pre-redesign values, so existing result
// stores, goldens and diffable result sets stay valid across the
// scheme-spec API redesign.
func TestNamedSchemeCacheKeysPinned(t *testing.T) {
	w := keyWorkload(t)
	r := NewRunner(20000)
	if len(preRedesignKeys) != len(policy.Names()) {
		t.Fatalf("pinned table covers %d schemes, registry has %d", len(preRedesignKeys), len(policy.Names()))
	}
	for name, want := range preRedesignKeys {
		got := r.CacheKey(Spec{Workload: w, Scheme: name, IQSize: 32})
		if got != want {
			t.Errorf("%s: cache key %s, want pre-redesign %s", name, got, want)
		}
	}
	for name, want := range preRedesignKeysRF {
		got := r.CacheKey(Spec{Workload: w, Scheme: name, IQSize: 32, RegsPerClust: 64, ROBPerThread: 128})
		if got != want {
			t.Errorf("%s (rf machine): cache key %s, want pre-redesign %s", name, got, want)
		}
	}
}

// TestComposedSpecAliasesNamedKey: a composed spelling of a named scheme
// content-addresses to the named scheme's key (it is the same simulated
// outcome), while a genuinely different composition gets a different key.
func TestComposedSpecAliasesNamedKey(t *testing.T) {
	w := keyWorkload(t)
	r := NewRunner(20000)
	for name, spelling := range map[string]string{
		"cdprf":  "sel=icount,iq=cssp,rf=cdprf",
		"cssp":   "rf=none,iq=cssp",
		"stall":  "sel=stall",
		"cspsp":  "iq=cspsp:frac=0.25",
		"icount": "sel=icount,iq=unrestricted,rf=none",
	} {
		named := r.CacheKey(Spec{Workload: w, Scheme: name, IQSize: 32})
		composed := r.CacheKey(Spec{Workload: w, Scheme: spelling, IQSize: 32})
		if named != composed {
			t.Errorf("%q key %s != %q key %s", spelling, composed, name, named)
		}
		if named != preRedesignKeys[name] {
			t.Errorf("%s drifted from pre-redesign key", name)
		}
	}
	novel := r.CacheKey(Spec{Workload: w, Scheme: "sel=stall,iq=cssp,rf=cdprf", IQSize: 32})
	for name, k := range preRedesignKeys {
		if novel == k {
			t.Errorf("novel composition collides with named scheme %s", name)
		}
	}
}

// TestComposedSpecRuns: a non-named composition executes end-to-end on the
// runner and its results recall from the store by content address.
func TestComposedSpecRuns(t *testing.T) {
	w := keyWorkload(t)
	r := NewRunner(2000)
	spec := Spec{Workload: w, Scheme: "sel=stall,iq=cssp,rf=cdprf:interval=8192", IQSize: 32}
	st, err := r.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.IPC() <= 0 {
		t.Fatalf("composed spec produced IPC %v", st.IPC())
	}
	if got := r.Executed(); got != 1 {
		t.Fatalf("executed = %d, want 1", got)
	}
	// An equivalent spelling (clauses reordered, explicit defaults) is a
	// pure store hit.
	again, err := r.Run(Spec{Workload: w, Scheme: "rf=cdprf:interval=8192,iq=cssp,sel=stall", IQSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	if again.IPC() != st.IPC() {
		t.Errorf("respelled run diverged: %v vs %v", again.IPC(), st.IPC())
	}
	if got := r.Executed(); got != 1 {
		t.Errorf("executed = %d after respelled recall, want 1", got)
	}
	// An unparseable scheme surfaces the parse error.
	if _, err := r.Run(Spec{Workload: w, Scheme: "sel=bogus", IQSize: 32}); err == nil {
		t.Error("bogus composed spec should fail")
	}
}
