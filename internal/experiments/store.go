package experiments

import (
	"errors"
	"sync"

	"clustersmt/internal/metrics"
)

// ResultStore holds completed simulation results under content-addressed
// keys (see Runner.CacheKey). Implementations must be safe for concurrent
// use. Stats values handed to Put (and returned by Get) are shared — the
// runner and every caller treat them as immutable.
//
// A Get error means the entry could not be produced (for a disk store:
// missing, unreadable or corrupt); the runner treats it as a miss and
// re-executes, overwriting the bad entry.
type ResultStore interface {
	Get(key string) (*metrics.Stats, bool, error)
	Put(key string, st *metrics.Stats) error
}

// MemStore is the in-process ResultStore: a mutex-guarded map. It is the
// runner's default store and the fast layer of Layered.
type MemStore struct {
	mu sync.RWMutex
	m  map[string]*metrics.Stats
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{m: make(map[string]*metrics.Stats)}
}

// Get returns the stored result for key, if any.
func (s *MemStore) Get(key string) (*metrics.Stats, bool, error) {
	s.mu.RLock()
	st, ok := s.m[key]
	s.mu.RUnlock()
	return st, ok, nil
}

// Put stores st under key, replacing any previous entry.
func (s *MemStore) Put(key string, st *metrics.Stats) error {
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[string]*metrics.Stats)
	}
	s.m[key] = st
	s.mu.Unlock()
	return nil
}

// Len returns the number of stored entries.
func (s *MemStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// Layered composes stores into one: Get consults layers front to back and
// backfills every earlier (faster) layer on a hit; Put writes through to
// all layers. The usual composition is Layered(NewMemStore(), diskStore).
func Layered(layers ...ResultStore) ResultStore {
	return &layered{layers: layers}
}

type layered struct {
	layers []ResultStore
}

func (l *layered) Get(key string) (*metrics.Stats, bool, error) {
	var errs []error
	for i, s := range l.layers {
		st, ok, err := s.Get(key)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		if !ok {
			continue
		}
		for j := 0; j < i; j++ {
			if err := l.layers[j].Put(key, st); err != nil {
				errs = append(errs, err)
			}
		}
		return st, true, errors.Join(errs...)
	}
	return nil, false, errors.Join(errs...)
}

func (l *layered) Put(key string, st *metrics.Stats) error {
	var errs []error
	for _, s := range l.layers {
		if err := s.Put(key, st); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// WriteOnly wraps a store so reads always miss while writes pass through.
// The campaign engine uses it to force re-execution (-resume=false) while
// still persisting fresh results.
func WriteOnly(s ResultStore) ResultStore {
	return writeOnly{s}
}

type writeOnly struct {
	inner ResultStore
}

func (w writeOnly) Get(string) (*metrics.Stats, bool, error) { return nil, false, nil }

func (w writeOnly) Put(key string, st *metrics.Stats) error { return w.inner.Put(key, st) }
