package experiments

import (
	"sync"
	"sync/atomic"
	"testing"

	"clustersmt/internal/metrics"
	"clustersmt/internal/workload"
)

// TestRunnerSingleflight pins the duplicate-execution fix: N goroutines
// racing on a cold cache key must share one execution, observable both as
// one Verbose completion and as every caller receiving the same *Stats.
func TestRunnerSingleflight(t *testing.T) {
	r := NewRunner(1500)
	var executed int32
	r.Verbose = func(string) { atomic.AddInt32(&executed, 1) }
	w := workload.ByCategory("ispec00")[0]
	spec := iqStudySpec(w, "icount", 32)

	const racers = 16
	results := make([]*metrics.Stats, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := r.Run(spec)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = st
		}(i)
	}
	wg.Wait()
	for i := 1; i < racers; i++ {
		if results[i] != results[0] {
			t.Fatalf("racer %d got a different Stats object: duplicate execution", i)
		}
	}
	if executed != 1 {
		t.Errorf("spec executed %d times under race, want 1", executed)
	}
}

// TestRunnerTraceMemoized asserts trace sharing across specs: the same
// workload thread must hand every run (SMT and single-thread alike) the
// same materialized slice, and different lengths or threads must not
// collide.
func TestRunnerTraceMemoized(t *testing.T) {
	r := NewRunner(1500)
	w := workload.ByCategory("ispec00")[0]

	a := r.traceFor(w, 0)
	b := r.traceFor(w, 0)
	if &a[0] != &b[0] {
		t.Error("same (workload, thread, length) regenerated its trace")
	}
	c := r.traceFor(w, 1)
	if &a[0] == &c[0] {
		t.Error("distinct threads share one trace entry")
	}

	// The SMT run and the single-thread fairness baseline see one slice.
	smt := r.buildPrograms(w, -1)
	solo := r.buildPrograms(w, 1)
	if &smt[1].Trace[0] != &solo[0].Trace[0] {
		t.Error("single-thread run regenerated the SMT thread's trace")
	}

	r2 := NewRunner(2000)
	d := r2.traceFor(w, 0)
	if len(d) != 2000 || len(a) != 1500 {
		t.Fatalf("trace lengths %d/%d, want 2000/1500", len(d), len(a))
	}
}

// TestRunnerZeroValueUsable guards the lazy map initialization: a Runner
// built as a struct literal (no NewRunner) must still memoize safely.
func TestRunnerZeroValueUsable(t *testing.T) {
	r := &Runner{TraceLen: 1200, MaxCycles: 1200 * 40}
	w := workload.ByCategory("ispec00")[0]
	spec := iqStudySpec(w, "icount", 32)
	a, err := r.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("zero-value runner failed to memoize")
	}
}
