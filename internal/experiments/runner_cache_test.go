package experiments

import (
	"sync"
	"sync/atomic"
	"testing"

	"clustersmt/internal/metrics"
	"clustersmt/internal/trace"
	"clustersmt/internal/workload"
)

// TestRunnerSingleflight pins the duplicate-execution fix: N goroutines
// racing on a cold cache key must share one execution, observable both as
// one Verbose completion and as every caller receiving the same *Stats.
func TestRunnerSingleflight(t *testing.T) {
	r := NewRunner(1500)
	var executed int32
	r.Verbose = func(string) { atomic.AddInt32(&executed, 1) }
	w := workload.ByCategory("ispec00")[0]
	spec := iqStudySpec(w, "icount", 32)

	const racers = 16
	results := make([]*metrics.Stats, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := r.Run(spec)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = st
		}(i)
	}
	wg.Wait()
	for i := 1; i < racers; i++ {
		if results[i] != results[0] {
			t.Fatalf("racer %d got a different Stats object: duplicate execution", i)
		}
	}
	if executed != 1 {
		t.Errorf("spec executed %d times under race, want 1", executed)
	}
}

// TestRunnerTraceMemoized asserts trace sharing across specs: the same
// workload thread must hand every run (SMT and single-thread alike) the
// same materialized slice, and different lengths or threads must not
// collide.
func TestRunnerTraceMemoized(t *testing.T) {
	r := NewRunner(1500)
	w := workload.ByCategory("ispec00")[0]

	a := r.traceFor(w, 0)
	b := r.traceFor(w, 0)
	if &a[0] != &b[0] {
		t.Error("same (workload, thread, length) regenerated its trace")
	}
	c := r.traceFor(w, 1)
	if &a[0] == &c[0] {
		t.Error("distinct threads share one trace entry")
	}

	// The SMT run and the single-thread fairness baseline see one slice.
	smt := r.buildPrograms(w, -1)
	solo := r.buildPrograms(w, 1)
	if &smt[1].Trace[0] != &solo[0].Trace[0] {
		t.Error("single-thread run regenerated the SMT thread's trace")
	}

	r2 := NewRunner(2000)
	d := r2.traceFor(w, 0)
	if len(d) != 2000 || len(a) != 1500 {
		t.Fatalf("trace lengths %d/%d, want 2000/1500", len(d), len(a))
	}
}

// TestRunnerTraceKeyedBySeedAndProfile pins the memoization bugfix: a
// hand-built Workload that reuses a pool name with different seeds or a
// different profile must NOT receive the named workload's cached trace.
func TestRunnerTraceKeyedBySeedAndProfile(t *testing.T) {
	r := NewRunner(1500)
	w := workload.ByCategory("ispec00")[0]
	orig := r.traceFor(w, 0)

	reseeded := w
	reseeded.Seeds = []uint64{w.Seeds[0] + 1, w.Seeds[1]}
	if got := r.traceFor(reseeded, 0); &got[0] == &orig[0] {
		t.Error("same name with a different seed was handed the cached trace")
	}

	reprofiled := w
	reprofiled.Threads = append([]trace.Profile{}, w.Threads...)
	reprofiled.Threads[0].DepP = w.Threads[0].DepP / 2
	if got := r.traceFor(reprofiled, 0); &got[0] == &orig[0] {
		t.Error("same name with a different profile was handed the cached trace")
	}

	// And the converse: an identical (profile, seed, length) under a new
	// name still shares — the cache keys content, not names.
	renamed := w
	renamed.Name = w.Name + "-alias"
	if got := r.traceFor(renamed, 0); &got[0] != &orig[0] {
		t.Error("identical seed/profile under a new name regenerated the trace")
	}
}

// TestRunnerSpecKeyedByWorkloadContent extends the aliasing rule to the
// runner's session maps: a hand-built Workload reusing a pool name with
// different seeds must not recall the pool workload's memoized cache key
// or result.
func TestRunnerSpecKeyedByWorkloadContent(t *testing.T) {
	r := NewRunner(1200)
	w := workload.ByCategory("ispec00")[0]
	spec := iqStudySpec(w, "icount", 32)
	a, err := r.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	alias := w
	alias.Seeds = []uint64{w.Seeds[0] + 1, w.Seeds[1] + 1}
	aliasSpec := iqStudySpec(alias, "icount", 32)
	if r.CacheKey(spec) == r.CacheKey(aliasSpec) {
		t.Error("same-name workload with different seeds shares a content key")
	}
	b, err := r.Run(aliasSpec)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("same-name workload with different seeds recalled the cached result")
	}
}

// TestRunnerShapeChangesCacheKey: machine-shape spec fields must reach the
// canonical config, giving every swept shape its own content-addressed key,
// while the zero shape keeps the legacy key.
func TestRunnerShapeChangesCacheKey(t *testing.T) {
	r := NewRunner(1500)
	w := workload.ByCategory("ispec00")[0]
	base := iqStudySpec(w, "icount", 32)
	seen := map[string]string{r.CacheKey(base): "zero shape"}
	muts := []struct {
		name string
		mut  func(*Spec)
	}{
		{"clusters", func(s *Spec) { s.NumClusters = 3 }},
		{"links", func(s *Spec) { s.Links = 1 }},
		{"link latency", func(s *Spec) { s.LinkLatency = 4 }},
		{"mem latency", func(s *Spec) { s.MemLatency = 300 }},
	}
	for _, m := range muts {
		s := base
		m.mut(&s)
		k := r.CacheKey(s)
		if prev, dup := seen[k]; dup {
			t.Errorf("%s shares a cache key with %s", m.name, prev)
		}
		seen[k] = m.name
	}
	// Explicit Table 1 values hash identically to the zero shape.
	explicit := base
	explicit.NumClusters, explicit.Links, explicit.LinkLatency, explicit.MemLatency = 2, 2, 1, 60
	if r.CacheKey(explicit) != r.CacheKey(base) {
		t.Error("explicit Table 1 shape produced a different key than the zero shape")
	}
}

// TestRunnerZeroValueUsable guards the lazy map initialization: a Runner
// built as a struct literal (no NewRunner) must still memoize safely.
func TestRunnerZeroValueUsable(t *testing.T) {
	r := &Runner{TraceLen: 1200, MaxCycles: 1200 * 40}
	w := workload.ByCategory("ispec00")[0]
	spec := iqStudySpec(w, "icount", 32)
	a, err := r.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("zero-value runner failed to memoize")
	}
}
