package experiments

import (
	"fmt"

	"clustersmt/internal/workload"
)

// ClusterScalingResult is the machine-shape headline figure: how the
// steering schemes scale from one to four back-end clusters. The paper
// evaluates a fixed two-cluster machine (Table 1); its steering baseline
// (Canal/Parcerisa/González) and the round-robin alternative were designed
// for the general N-cluster question, which this figure answers on the
// reproduction's workload pool. Three metrics per (scheme, cluster count)
// series, averaged per workload category: absolute IPC, inter-cluster
// copies per retired instruction (the communication cost that grows with
// cluster count) and issue-queue stalls per retired instruction (the
// pressure relief that more clusters buy). Series are named "<scheme>/c<n>".
type ClusterScalingResult struct {
	// Clusters is the swept cluster-count axis (paper machine: 2).
	Clusters []int `json:"clusters"`
	// Schemes lists the resource-assignment schemes swept.
	Schemes []string `json:"schemes"`
	// IPC is absolute throughput (committed uops per cycle).
	IPC *CategorySeries `json:"ipc"`
	// Copies is inter-cluster link transfers per retired instruction.
	Copies *CategorySeries `json:"copies_per_retired"`
	// IQStalls is issue-queue stalls per retired instruction.
	IQStalls *CategorySeries `json:"iq_stalls_per_retired"`
}

// clusterScaleSpec returns the §5.1 study spec (32-entry IQs, unbounded
// RF/ROB) on an n-cluster machine. Links and latencies stay at Table 1.
func clusterScaleSpec(w workload.Workload, scheme string, clusters int) Spec {
	return Spec{Workload: w, Scheme: scheme, IQSize: 32,
		RegsPerClust: unbounded, ROBPerThread: unbounded, SingleThread: -1,
		NumClusters: clusters}
}

// clusterSeriesName names one (scheme, cluster count) series.
func clusterSeriesName(scheme string, clusters int) string {
	return fmt.Sprintf("%s/c%d", scheme, clusters)
}

// ClusterScaling runs the cluster-count sweep for the given schemes and
// cluster counts and aggregates the three metrics per workload category.
func ClusterScaling(r *Runner, o Options, schemes []string, clusters []int) (*ClusterScalingResult, error) {
	var names []string
	for _, s := range schemes {
		for _, c := range clusters {
			names = append(names, clusterSeriesName(s, c))
		}
	}
	res := &ClusterScalingResult{
		Clusters: clusters,
		Schemes:  schemes,
		IPC:      newCategorySeries(o, names),
		Copies:   newCategorySeries(o, names),
		IQStalls: newCategorySeries(o, names),
	}

	// Warm the cache in parallel across the whole sweep.
	var specs []Spec
	for _, w := range o.all() {
		for _, s := range schemes {
			for _, c := range clusters {
				specs = append(specs, clusterScaleSpec(w, s, c))
			}
		}
	}
	if _, err := r.RunAll(specs); err != nil {
		return nil, err
	}

	type acc struct{ ipc, copies, stalls []float64 }
	overall := map[string]*acc{}
	for _, name := range names {
		overall[name] = &acc{}
	}
	for _, cat := range o.categories() {
		disp := workload.DisplayName(cat)
		perCat := map[string]*acc{}
		for _, name := range names {
			perCat[name] = &acc{}
		}
		for _, w := range o.workloads(cat) {
			for _, s := range schemes {
				for _, c := range clusters {
					st, err := r.Run(clusterScaleSpec(w, s, c))
					if err != nil {
						return nil, err
					}
					name := clusterSeriesName(s, c)
					for _, a := range []*acc{perCat[name], overall[name]} {
						a.ipc = append(a.ipc, st.IPC())
						a.copies = append(a.copies, st.CopiesPerRetired())
						a.stalls = append(a.stalls, st.IQStallsPerRetired())
					}
				}
			}
		}
		for name, a := range perCat {
			res.IPC.Values[name][disp] = mean(a.ipc)
			res.Copies.Values[name][disp] = mean(a.copies)
			res.IQStalls.Values[name][disp] = mean(a.stalls)
		}
	}
	for name, a := range overall {
		res.IPC.Values[name]["AVG"] = mean(a.ipc)
		res.Copies.Values[name]["AVG"] = mean(a.copies)
		res.IQStalls.Values[name]["AVG"] = mean(a.stalls)
	}
	return res, nil
}

// CSV renders the result as flat rows (one per category × scheme × cluster
// count), the machine-readable sibling of the three text tables.
func (r *ClusterScalingResult) CSV() (header []string, rows [][]string) {
	header = []string{"category", "scheme", "clusters", "ipc", "copies_per_retired", "iq_stalls_per_retired"}
	for _, cat := range r.IPC.Categories {
		for _, s := range r.Schemes {
			for _, c := range r.Clusters {
				name := clusterSeriesName(s, c)
				rows = append(rows, []string{
					cat, s, itoa(c),
					fmt.Sprintf("%g", r.IPC.Values[name][cat]),
					fmt.Sprintf("%g", r.Copies.Values[name][cat]),
					fmt.Sprintf("%g", r.IQStalls.Values[name][cat]),
				})
			}
		}
	}
	return header, rows
}

// ClusterScaleSchemes is the default scheme list of the cluster-scaling
// figure: the cluster-blind Icount baseline plus the paper's two headline
// cluster-aware schemes (static IQ partition, dynamic IQ+RF partition).
func ClusterScaleSchemes() []string { return []string{"icount", "cssp", "cdprf"} }

// ClusterScaleCounts is the full validated cluster-count axis.
func ClusterScaleCounts() []int { return []int{1, 2, 3, 4} }
