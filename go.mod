module clustersmt

go 1.24
