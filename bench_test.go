// Package clustersmt's top-level benchmark harness: one testing.B benchmark
// per paper table/figure (DESIGN.md §4) plus ablations of the design
// choices DESIGN.md §5 calls out. Each figure benchmark regenerates its
// artifact on a reduced, type-balanced pool and reports the headline series
// as custom metrics, so `go test -bench=. -benchmem` both exercises the
// full pipeline and prints the reproduced numbers.
package clustersmt_test

import (
	"fmt"
	"testing"

	"clustersmt/internal/core"
	"clustersmt/internal/experiments"
	"clustersmt/internal/policy"
	"clustersmt/internal/steer"
	"clustersmt/internal/trace"
	"clustersmt/internal/workload"
)

// benchTraceLen keeps per-benchmark wall time manageable while staying well
// past the warm-up region.
const benchTraceLen = 20000

func benchOptions() experiments.Options {
	return experiments.Options{MaxPerCategory: 2}
}

// BenchmarkTable1Machine measures raw simulator speed on the Table 1
// baseline (cycles simulated per second appear as ns/cycle inverse).
func BenchmarkTable1Machine(b *testing.B) {
	w, err := workload.Find("ispec00.mix.2.1")
	if err != nil {
		b.Fatal(err)
	}
	var progs []core.ThreadProgram
	for i, prof := range w.Threads {
		g := trace.NewGenerator(prof, w.Seeds[i])
		progs = append(progs, core.ThreadProgram{Trace: g.Generate(benchTraceLen), Profile: prof, Seed: w.Seeds[i]})
	}
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		p, err := core.NewScheme(core.DefaultConfig(2), "cdprf", progs)
		if err != nil {
			b.Fatal(err)
		}
		st := p.Run()
		cycles += st.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
}

// BenchmarkTable2Pool regenerates the 120-workload pool (Table 2).
func BenchmarkTable2Pool(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pool := workload.Pool()
		if len(pool) != 120 {
			b.Fatalf("pool size %d", len(pool))
		}
	}
}

// BenchmarkFig2IQSchemes regenerates Figure 2 (7 schemes x {32,64} IQ).
func BenchmarkFig2IQSchemes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchTraceLen)
		cs, err := experiments.Fig2(r, benchOptions(), policy.PaperIQSchemes(), []int{32, 64})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cs.Values["cssp/32"]["AVG"], "cssp32_speedup")
		b.ReportMetric(cs.Values["pc/32"]["AVG"], "pc32_speedup")
	}
}

// BenchmarkFig3Copies regenerates Figure 3 (copies per retired uop).
func BenchmarkFig3Copies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchTraceLen)
		cs, err := experiments.Fig3(r, benchOptions(), policy.PaperIQSchemes())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cs.Values["cssp"]["AVG"], "cssp_copies_per_ret")
		b.ReportMetric(cs.Values["pc"]["AVG"], "pc_copies_per_ret")
	}
}

// BenchmarkFig4IQStalls regenerates Figure 4 (IQ stalls per retired uop).
func BenchmarkFig4IQStalls(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchTraceLen)
		cs, err := experiments.Fig4(r, benchOptions(), policy.PaperIQSchemes())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cs.Values["icount"]["AVG"], "icount_stalls_per_ret")
	}
}

// BenchmarkFig5Imbalance regenerates Figure 5 (workload imbalance).
func BenchmarkFig5Imbalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchTraceLen)
		res, err := experiments.Fig5(r, benchOptions(), []string{"icount", "cisp", "cssp", "pc"})
		if err != nil {
			b.Fatal(err)
		}
		pc := res.Frac["AVG"]["pc"]
		cssp := res.Frac["AVG"]["cssp"]
		// kind 1 = true imbalance (other cluster had a free port)
		b.ReportMetric(pc[0][1]+pc[1][1]+pc[2][1], "pc_imbalance")
		b.ReportMetric(cssp[0][1]+cssp[1][1]+cssp[2][1], "cssp_imbalance")
	}
}

// BenchmarkFig6RegFile regenerates Figure 6 (RF schemes at 64/128 regs).
func BenchmarkFig6RegFile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchTraceLen)
		cs, err := experiments.Fig6(r, benchOptions(), policy.PaperRFSchemes(), []int{64, 128})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cs.Values["cssprf/64"]["AVG"], "cssprf64")
		b.ReportMetric(cs.Values["cisprf/64"]["AVG"], "cisprf64")
	}
}

// BenchmarkFig9CDPRF regenerates Figure 9 (CDPRF on ISPEC-FSPEC).
func BenchmarkFig9CDPRF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchTraceLen)
		res, err := experiments.Fig9(r, experiments.Options{MaxPerCategory: 2},
			[]string{"cssp", "cssprf", "cisprf", "cdprf"})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Speedup["AVG"]["cdprf"], "cdprf_isfs")
		b.ReportMetric(res.Speedup["AVG"]["cisprf"], "cisprf_isfs")
	}
}

// BenchmarkFig10Fairness regenerates Figure 10 (fairness vs Icount).
func BenchmarkFig10Fairness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchTraceLen)
		cs, err := experiments.Fig10(r, experiments.Options{
			Categories: []string{"ispec00", "server", "mixes"}, MaxPerCategory: 2,
		}, []string{"stall", "flush+", "cssp", "cdprf"})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cs.Values["cdprf"]["AVG"], "cdprf_fairness")
	}
}

// BenchmarkHeadline regenerates the §1/§6 claim (paper: +17.6%, +24%).
func BenchmarkHeadline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchTraceLen)
		h, err := experiments.Headline(r, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(h.CDPRFSpeedup, "cdprf_speedup")
		b.ReportMetric(h.FairnessRatio, "cdprf_fairness")
	}
}

// BenchmarkFutureWork compares the §6 adaptations against CDPRF.
func BenchmarkFutureWork(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchTraceLen)
		out, err := experiments.FutureWork(r, experiments.Options{
			Categories: []string{"ispec00", "server"}, MaxPerCategory: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(out["dcra"], "dcra_speedup")
		b.ReportMetric(out["hillclimb"], "hillclimb_speedup")
	}
}

// --- ablations (DESIGN.md §5) --------------------------------------------

func ablationProgs(b *testing.B) []core.ThreadProgram {
	b.Helper()
	w, err := workload.Find("server.mix.2.1")
	if err != nil {
		b.Fatal(err)
	}
	var progs []core.ThreadProgram
	for i, prof := range w.Threads {
		g := trace.NewGenerator(prof, w.Seeds[i])
		progs = append(progs, core.ThreadProgram{Trace: g.Generate(benchTraceLen), Profile: prof, Seed: w.Seeds[i]})
	}
	return progs
}

// BenchmarkAblationWakeup compares the event-driven wakeup (register-ready
// broadcast + per-cluster ready lists) against the pre-refactor per-cycle
// polling scan of the whole issue queue (Config.PollingWakeup). Both modes
// produce bit-for-bit identical statistics (TestWakeupEquivalence in
// internal/core); only cycles/s may differ.
func BenchmarkAblationWakeup(b *testing.B) {
	w, err := workload.Find("ispec00.mix.2.1")
	if err != nil {
		b.Fatal(err)
	}
	var progs []core.ThreadProgram
	for i, prof := range w.Threads {
		g := trace.NewGenerator(prof, w.Seeds[i])
		progs = append(progs, core.ThreadProgram{Trace: g.Generate(benchTraceLen), Profile: prof, Seed: w.Seeds[i]})
	}
	for _, mode := range []struct {
		name    string
		polling bool
	}{{"event", false}, {"polling-scan", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig(2)
				cfg.PollingWakeup = mode.polling
				p, err := core.NewScheme(cfg, "cdprf", progs)
				if err != nil {
					b.Fatal(err)
				}
				cycles += p.Run().Cycles
			}
			b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
		})
	}
}

// BenchmarkAblationLinks sweeps inter-cluster link bandwidth.
func BenchmarkAblationLinks(b *testing.B) {
	progs := ablationProgs(b)
	for _, links := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("links=%d", links), func(b *testing.B) {
			var ipc float64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig(2)
				cfg.Net.Links = links
				p, err := core.NewScheme(cfg, "cssp", progs)
				if err != nil {
					b.Fatal(err)
				}
				ipc = p.Run().IPC()
			}
			b.ReportMetric(ipc, "ipc")
		})
	}
}

// BenchmarkAblationCDPRFInterval sweeps the CDPRF re-threshold interval
// (the paper picks 128K cycles; see policy.DefaultRFConfig).
func BenchmarkAblationCDPRFInterval(b *testing.B) {
	progs := ablationProgs(b)
	for _, interval := range []int64{2048, 8192, 16384, 65536, 131072} {
		b.Run(fmt.Sprintf("interval=%d", interval), func(b *testing.B) {
			var ipc float64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig(2)
				rfCfg := policy.DefaultRFConfig(2)
				rfCfg.Interval = interval
				p, err := core.New(cfg, policy.NewIcount(2), policy.NewCSSP(),
					policy.NewCDPRF(rfCfg), nil, progs)
				if err != nil {
					b.Fatal(err)
				}
				ipc = p.Run().IPC()
			}
			b.ReportMetric(ipc, "ipc")
		})
	}
}

// BenchmarkAblationSteering compares the baseline dependence/balance
// steering against round-robin (Raasch et al.) and static modulo.
func BenchmarkAblationSteering(b *testing.B) {
	progs := ablationProgs(b)
	steerers := map[string]func() steer.Steerer{
		"dep-balance": func() steer.Steerer { return steer.DependenceBalance{BalanceSlack: 6} },
		"round-robin": func() steer.Steerer { return steer.NewRoundRobin(2) },
		"modulo":      func() steer.Steerer { return steer.Modulo{} },
	}
	for name, mk := range steerers {
		b.Run(name, func(b *testing.B) {
			var ipc, copies float64
			for i := 0; i < b.N; i++ {
				s, err := policy.Lookup("cssp")
				if err != nil {
					b.Fatal(err)
				}
				sel, iq, rf := s.New(2)
				p, err := core.New(core.DefaultConfig(2), sel, iq, rf, mk(), progs)
				if err != nil {
					b.Fatal(err)
				}
				st := p.Run()
				ipc = st.IPC()
				copies = st.CopiesPerRetired()
			}
			b.ReportMetric(ipc, "ipc")
			b.ReportMetric(copies, "copies/ret")
		})
	}
}

// BenchmarkAblationGuarantee sweeps CSPSP's guaranteed fraction.
func BenchmarkAblationGuarantee(b *testing.B) {
	progs := ablationProgs(b)
	for _, frac := range []float64{0.125, 0.25, 0.375, 0.5} {
		b.Run(fmt.Sprintf("guarantee=%.3f", frac), func(b *testing.B) {
			var ipc float64
			for i := 0; i < b.N; i++ {
				p, err := core.New(core.DefaultConfig(2), policy.NewIcount(2),
					&policy.CSPSP{GuaranteeFrac: frac},
					policy.NewNoRF(policy.RFConfig{}), nil, progs)
				if err != nil {
					b.Fatal(err)
				}
				ipc = p.Run().IPC()
			}
			b.ReportMetric(ipc, "ipc")
		})
	}
}

// BenchmarkGeneratorThroughput measures trace generation speed.
func BenchmarkGeneratorThroughput(b *testing.B) {
	prof := trace.MixProfile("bench")
	g := trace.NewGenerator(prof, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}
