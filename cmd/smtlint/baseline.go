package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// A finding is one diagnostic in the driver's output shape (module-relative
// file, 1-based line/column).
type finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// A baselineEntry suppresses one known finding until Expires. Line numbers
// are deliberately NOT part of the match — refactors move lines constantly —
// so an entry matches on analyzer + file + message text.
type baselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	// Expires is a date (YYYY-MM-DD). Past it, the entry stops
	// suppressing: baselined debt must be paid or consciously renewed,
	// never silently carried forever.
	Expires string `json:"expires"`
	Reason  string `json:"reason,omitempty"`
}

type baseline struct {
	Entries []baselineEntry `json:"entries"`
}

func loadBaseline(path string) (*baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading baseline: %w", err)
	}
	var b baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	for i, e := range b.Entries {
		if _, err := time.Parse("2006-01-02", e.Expires); err != nil {
			return nil, fmt.Errorf("baseline %s entry %d: bad expires %q (want YYYY-MM-DD)", path, i, e.Expires)
		}
	}
	return &b, nil
}

func saveBaseline(path string, findings []finding) error {
	expiry := time.Now().AddDate(0, 0, 90).Format("2006-01-02")
	b := baseline{Entries: []baselineEntry{}}
	for _, f := range findings {
		b.Entries = append(b.Entries, baselineEntry{
			Analyzer: f.Analyzer,
			File:     f.File,
			Message:  f.Message,
			Expires:  expiry,
		})
	}
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// applyBaseline splits findings into fresh (to report) and suppressed,
// and returns warnings for expired entries and for entries that matched
// nothing (fixed but not removed). Each entry suppresses at most as many
// findings as it is listed — duplicate findings need duplicate entries —
// so a baseline can never hide more than it declares.
func applyBaseline(b *baseline, findings []finding, now time.Time) (fresh []finding, warnings []string) {
	if b == nil {
		return findings, nil
	}
	type matchKey struct{ analyzer, file, message string }
	budget := map[matchKey]int{}
	expired := map[matchKey]bool{}
	for _, e := range b.Entries {
		k := matchKey{e.Analyzer, e.File, e.Message}
		exp, _ := time.Parse("2006-01-02", e.Expires)
		if now.After(exp.AddDate(0, 0, 1)) {
			expired[k] = true
			continue
		}
		budget[k]++
	}
	used := map[matchKey]int{}
	for _, f := range findings {
		k := matchKey{f.Analyzer, f.File, f.Message}
		if used[k] < budget[k] {
			used[k]++
			continue
		}
		if expired[k] {
			warnings = append(warnings, fmt.Sprintf(
				"baseline entry for %s in %s has expired; fix the finding or renew the entry", f.Analyzer, f.File))
		}
		fresh = append(fresh, f)
	}
	for k, n := range budget {
		if used[k] < n {
			warnings = append(warnings, fmt.Sprintf(
				"baseline entry fixed but not removed: %s in %s (%q)", k.analyzer, k.file, k.message))
		}
	}
	return fresh, warnings
}
