package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func day(s string) time.Time {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		panic(err)
	}
	return t
}

func TestApplyBaselineSuppressesByMessage(t *testing.T) {
	b := &baseline{Entries: []baselineEntry{
		{Analyzer: "detcheck", File: "a/a.go", Message: "msg", Expires: "2099-01-01"},
	}}
	findings := []finding{
		{Analyzer: "detcheck", File: "a/a.go", Line: 10, Message: "msg"},
		{Analyzer: "detcheck", File: "a/a.go", Line: 20, Message: "other"},
	}
	fresh, warnings := applyBaseline(b, findings, day("2026-01-01"))
	if len(fresh) != 1 || fresh[0].Message != "other" {
		t.Fatalf("fresh = %+v, want only the unmatched finding", fresh)
	}
	if len(warnings) != 0 {
		t.Fatalf("warnings = %v, want none", warnings)
	}
}

func TestApplyBaselineBudget(t *testing.T) {
	// One entry suppresses ONE matching finding; a second identical
	// finding stays fresh, so a baseline can never hide more than it
	// declares.
	b := &baseline{Entries: []baselineEntry{
		{Analyzer: "errflow", File: "a.go", Message: "dup", Expires: "2099-01-01"},
	}}
	findings := []finding{
		{Analyzer: "errflow", File: "a.go", Line: 1, Message: "dup"},
		{Analyzer: "errflow", File: "a.go", Line: 2, Message: "dup"},
	}
	fresh, _ := applyBaseline(b, findings, day("2026-01-01"))
	if len(fresh) != 1 {
		t.Fatalf("fresh = %+v, want exactly one (budget exceeded)", fresh)
	}
}

func TestApplyBaselineExpired(t *testing.T) {
	b := &baseline{Entries: []baselineEntry{
		{Analyzer: "ctxflow", File: "a.go", Message: "old", Expires: "2025-01-01"},
	}}
	findings := []finding{{Analyzer: "ctxflow", File: "a.go", Message: "old"}}
	fresh, warnings := applyBaseline(b, findings, day("2026-01-01"))
	if len(fresh) != 1 {
		t.Fatalf("expired entry must stop suppressing; fresh = %+v", fresh)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "expired") {
		t.Fatalf("warnings = %v, want one expiry warning", warnings)
	}
}

func TestApplyBaselineFixedButNotRemoved(t *testing.T) {
	b := &baseline{Entries: []baselineEntry{
		{Analyzer: "noalloc", File: "gone.go", Message: "fixed", Expires: "2099-01-01"},
	}}
	fresh, warnings := applyBaseline(b, nil, day("2026-01-01"))
	if len(fresh) != 0 {
		t.Fatalf("fresh = %+v, want none", fresh)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "fixed but not removed") {
		t.Fatalf("warnings = %v, want one fixed-but-not-removed warning", warnings)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bl.json")
	fs := []finding{
		{Analyzer: "detcheck", File: "x.go", Line: 3, Column: 1, Message: "m"},
	}
	if err := saveBaseline(path, fs); err != nil {
		t.Fatal(err)
	}
	b, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Entries) != 1 || b.Entries[0].Analyzer != "detcheck" || b.Entries[0].Message != "m" {
		t.Fatalf("entries = %+v", b.Entries)
	}
	if _, err := time.Parse("2006-01-02", b.Entries[0].Expires); err != nil {
		t.Fatalf("bad expiry stamp %q: %v", b.Entries[0].Expires, err)
	}
	fresh, _ := applyBaseline(b, fs, time.Now())
	if len(fresh) != 0 {
		t.Fatalf("round-tripped baseline must suppress its own findings; fresh = %+v", fresh)
	}
}

func TestLoadBaselineRejectsBadExpiry(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bl.json")
	writeFile(t, path, `{"entries":[{"analyzer":"a","file":"f","message":"m","expires":"soon"}]}`)
	if _, err := loadBaseline(path); err == nil {
		t.Fatal("want error for non-date expiry")
	}
}

func TestSARIFShape(t *testing.T) {
	var sb strings.Builder
	fs := []finding{{Analyzer: "detcheck", File: "a/b.go", Line: 7, Column: 2, Message: "nondeterministic"}}
	if err := writeSARIF(&sb, analyzers, fs); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`"version": "2.1.0"`,
		`"ruleId": "detcheck"`,
		`"uri": "a/b.go"`,
		`"startLine": 7`,
		`"uriBaseId": "%SRCROOT%"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SARIF output missing %q", want)
		}
	}
	// Every analyzer registers a rule, plus the driver's own.
	if n := strings.Count(out, `"id": `); n != len(analyzers)+1 {
		t.Errorf("rule count = %d, want %d", n, len(analyzers)+1)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
