// Command smtlint runs the repository's project-specific static analyzers
// over package patterns:
//
//	go run ./cmd/smtlint ./...
//
// Analyzers (see DESIGN.md §9 and each package's doc comment):
//
//	noalloc      //smtlint:noalloc functions must not allocate
//	confighash   every Canonical()-hashed config field reaches the store key
//	lockcheck    no blocking operation under a service mutex
//	registryref  policy registrations carry Ref/Desc and sane param bounds
//	detcheck     no nondeterministic values in simulation outputs
//	ctxflow      long-running loops and entry points observe cancellation
//	errflow      no dropped or overwritten errors in service/fleet/store
//
// Packages are analyzed in parallel (one worker per CPU); type-checking
// happens once at load and is shared by every analyzer. Output is plain
// text by default, `-json` for machine consumption, `-sarif` for code
// scanners. A checked-in baseline (`-baseline`, default
// .smtlint-baseline.json at the module root when present) suppresses
// known findings until their expiry date; `-write-baseline` records the
// current findings with a 90-day expiry. Baseline entries that no longer
// match anything are reported as fixed-but-not-removed warnings.
//
// Exit status is nonzero when any non-baselined diagnostic is reported.
// The tool is pure standard library (this module carries no
// dependencies), so it runs anywhere the repo builds — no module
// download, no separate install.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"clustersmt/internal/lint"
	"clustersmt/internal/lint/confighash"
	"clustersmt/internal/lint/ctxflow"
	"clustersmt/internal/lint/detcheck"
	"clustersmt/internal/lint/errflow"
	"clustersmt/internal/lint/lockcheck"
	"clustersmt/internal/lint/noalloc"
	"clustersmt/internal/lint/registryref"
)

var analyzers = []*lint.Analyzer{
	noalloc.Analyzer,
	confighash.Analyzer,
	lockcheck.Analyzer,
	registryref.Analyzer,
	detcheck.Analyzer,
	ctxflow.Analyzer,
	errflow.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as JSON on stdout")
	sarifOut := flag.Bool("sarif", false, "emit findings as SARIF 2.1.0 on stdout")
	baselinePath := flag.String("baseline", "", "baseline file (default: .smtlint-baseline.json at the module root, if present)")
	writeBaseline := flag.Bool("write-baseline", false, "write current findings to the baseline file and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: smtlint [-list] [-json|-sarif] [-baseline file] [-write-baseline] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Packages default to ./... relative to the current directory.\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	m, err := lint.Load(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smtlint:", err)
		os.Exit(2)
	}

	var findings []finding
	for _, pos := range m.BadAllows() {
		findings = append(findings, finding{
			Analyzer: "smtlint",
			File:     relToRoot(m.Root, pos.Filename),
			Line:     pos.Line,
			Column:   pos.Column,
			Message:  "//smtlint:allow requires a reason",
		})
	}
	for _, d := range lint.RunConcurrent(context.Background(), m, analyzers, runtime.GOMAXPROCS(0)) {
		findings = append(findings, finding{
			Analyzer: d.Analyzer,
			File:     relToRoot(m.Root, d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		})
	}

	path := *baselinePath
	if path == "" {
		def := filepath.Join(m.Root, ".smtlint-baseline.json")
		if _, err := os.Stat(def); err == nil {
			path = def
		}
	}

	if *writeBaseline {
		if path == "" {
			path = filepath.Join(m.Root, ".smtlint-baseline.json")
		}
		if err := saveBaseline(path, findings); err != nil {
			fmt.Fprintln(os.Stderr, "smtlint:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "smtlint: wrote %d finding(s) to %s\n", len(findings), path)
		return
	}

	var bl *baseline
	if path != "" {
		bl, err = loadBaseline(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "smtlint:", err)
			os.Exit(2)
		}
	}
	fresh, warnings := applyBaseline(bl, findings, time.Now())
	for _, w := range warnings {
		fmt.Fprintln(os.Stderr, "smtlint: warning:", w)
	}

	switch {
	case *sarifOut:
		writeSARIF(os.Stdout, analyzers, fresh)
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if fresh == nil {
			fresh = []finding{}
		}
		enc.Encode(fresh)
	default:
		for _, f := range fresh {
			fmt.Printf("%s:%d:%d: %s [%s]\n", f.File, f.Line, f.Column, f.Message, f.Analyzer)
		}
	}
	if len(fresh) > 0 {
		fmt.Fprintf(os.Stderr, "smtlint: %d finding(s)\n", len(fresh))
		os.Exit(1)
	}
}

// relToRoot renders file paths module-relative (with forward slashes) so
// baselines and SARIF artifacts are stable across checkouts.
func relToRoot(root, file string) string {
	if root == "" {
		return file
	}
	if rel, err := filepath.Rel(root, file); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
		return filepath.ToSlash(rel)
	}
	return file
}
