// Command smtlint runs the repository's project-specific static analyzers
// over package patterns:
//
//	go run ./cmd/smtlint ./...
//
// Analyzers (see DESIGN.md §9 and each package's doc comment):
//
//	noalloc      //smtlint:noalloc functions must not allocate
//	confighash   every Canonical()-hashed config field reaches the store key
//	lockcheck    no blocking operation under a service mutex
//	registryref  policy registrations carry Ref/Desc and sane param bounds
//
// Exit status is nonzero when any diagnostic is reported. The tool is pure
// standard library (this module carries no dependencies), so it runs
// anywhere the repo builds — no module download, no separate install.
package main

import (
	"flag"
	"fmt"
	"os"

	"clustersmt/internal/lint"
	"clustersmt/internal/lint/confighash"
	"clustersmt/internal/lint/lockcheck"
	"clustersmt/internal/lint/noalloc"
	"clustersmt/internal/lint/registryref"
)

var analyzers = []*lint.Analyzer{
	noalloc.Analyzer,
	confighash.Analyzer,
	lockcheck.Analyzer,
	registryref.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: smtlint [-list] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Packages default to ./... relative to the current directory.\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	m, err := lint.Load(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smtlint:", err)
		os.Exit(2)
	}
	bad := 0
	for _, pos := range m.BadAllows() {
		fmt.Printf("%s: //smtlint:allow requires a reason [smtlint]\n", pos)
		bad++
	}
	for _, d := range lint.Run(m, analyzers) {
		fmt.Println(d)
		bad++
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "smtlint: %d finding(s)\n", bad)
		os.Exit(1)
	}
}
