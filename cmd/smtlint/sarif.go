package main

import (
	"encoding/json"
	"io"

	"clustersmt/internal/lint"
)

// Minimal SARIF 2.1.0 document: one run, one rule per analyzer, one result
// per finding. Enough structure for GitHub code scanning and editor SARIF
// viewers without pulling in a schema library.

type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

func writeSARIF(w io.Writer, analyzers []*lint.Analyzer, findings []finding) error {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	rules = append(rules, sarifRule{ID: "smtlint", ShortDescription: sarifMessage{Text: "driver-level diagnostics (malformed directives)"}})
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: f.File, URIBaseID: "%SRCROOT%"},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Version: "2.1.0",
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "smtlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&log)
}
