package main

import (
	"fmt"
	"os"
	"time"

	"clustersmt/internal/campaign"
	"clustersmt/internal/campaign/store"
	"clustersmt/internal/report"
)

type campaignOpts struct {
	manifest string
	storeDir string
	dryRun   bool
	resume   bool
	jsonOut  string
	csvOut   string
	verbose  bool
}

// runCampaign executes (or dry-runs) a manifest-defined sweep and renders
// the result table, summary tally, and optional JSON/CSV artifacts.
func runCampaign(o campaignOpts) int {
	m, err := campaign.Load(o.manifest)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	items, err := m.Expand()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if o.dryRun {
		for _, it := range items {
			fmt.Println(it.Label())
		}
		fmt.Fprintf(os.Stderr, "campaign %s: %d simulations would run (dry run; nothing executed)\n", m.Name, len(items))
		return 0
	}

	eng := campaign.Engine{Resume: o.resume}
	if o.verbose {
		eng.Verbose = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}
	if o.storeDir != "" {
		st, err := store.Open(o.storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		eng.Store = st
	}

	start := time.Now()
	rs, err := eng.Run(m)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	fmt.Println(report.Table(fmt.Sprintf("Campaign %s (%s)", rs.Campaign, rs.Version),
		campaignHeader(m), campaignRows(m, rs)))
	fmt.Fprintf(os.Stderr, "campaign %s: %d specs — %d executed, %d store hits, %d failed (%v)\n",
		rs.Campaign, rs.Total, rs.Executed, rs.StoreHits, rs.Failed, time.Since(start).Round(time.Millisecond))

	if o.jsonOut != "" {
		if err := report.WriteJSONFile(o.jsonOut, rs); err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			return 1
		}
	}
	if o.csvOut != "" {
		if err := os.WriteFile(o.csvOut, []byte(report.CSV(campaign.CSVHeader(), rs.CSVRows())), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "csv: %v\n", err)
			return 1
		}
	}
	if rs.Failed > 0 {
		fmt.Fprintln(os.Stderr, rs.Err())
		return 1
	}
	return 0
}

func campaignHeader(m *campaign.Manifest) []string {
	h := []string{"spec", "ipc", "copies/ret", "iqstalls/ret"}
	if m.SingleThreadBaselines {
		h = append(h, "fairness")
	}
	return append(h, "source")
}

func campaignRows(m *campaign.Manifest, rs *campaign.ResultSet) [][]string {
	var rows [][]string
	for _, r := range rs.Results {
		source := "run"
		if r.Cached {
			source = "store"
		}
		if r.Error != "" {
			source = "ERROR"
		}
		row := []string{r.Label, report.F(r.IPC), report.F(r.CopiesPerRet), report.F(r.IQStallsRet)}
		if m.SingleThreadBaselines {
			f := ""
			if r.SingleThread < 0 && r.Fairness > 0 {
				f = report.F(r.Fairness)
			}
			row = append(row, f)
		}
		rows = append(rows, append(row, source))
	}
	return rows
}
