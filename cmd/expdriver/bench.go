package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"

	"clustersmt/internal/bench"
	"clustersmt/internal/report"
)

// runBench implements `expdriver bench`: run the continuous-benchmark suite
// and emit the schema'd report (BENCH_<n>.json), or with the `diff`
// sub-subcommand compare two saved reports and gate on regressions.
func runBench(args []string) int {
	if len(args) > 0 && args[0] == "diff" {
		return runBenchDiff(args[1:])
	}
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	var (
		quick     = fs.Bool("quick", false, "reduced suite: short targets, single repetition (CI smoke mode)")
		out       = fs.String("out", "", "write the JSON report to this file (default: stdout unless -text)")
		text      = fs.Bool("text", false, "print benchstat-friendly benchmark lines instead of JSON on stdout")
		benchtime = fs.Duration("benchtime", 0, "per-repetition wall-clock target (default 3s, 400ms with -quick)")
		reps      = fs.Int("reps", 0, "repetitions per benchmark, best kept (default 3, 1 with -quick)")
		run       = fs.String("run", "", "regexp selecting benchmark names (default: full suite)")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, `usage: expdriver bench [-quick] [-out BENCH_N.json] [-text] [-benchtime 3s] [-reps 3] [-run regexp]
       expdriver bench diff [-tol 0.05] [-time-tol 0.5] old.json new.json`)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	o := bench.Options{
		Quick:  *quick,
		Target: *benchtime,
		Reps:   *reps,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		},
	}
	if *run != "" {
		re, err := regexp.Compile(*run)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: -run: %v\n", err)
			return 2
		}
		o.Filter = re
	}
	r, err := bench.Run(o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 1
	}
	if *text {
		fmt.Print(r.FormatText())
	}
	if *out != "" {
		if err := report.WriteJSONFile(*out, r); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	} else if !*text {
		if err := report.WriteJSON(os.Stdout, r); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			return 1
		}
	}
	return 0
}

// runBenchDiff implements `expdriver bench diff`. Deterministic metrics
// (allocs/op, simulated cycles, steady-state allocation count) gate at
// -tol; wall-clock metrics (ns/op, cycles/s) gate at the looser -time-tol,
// or are skipped entirely with -time-tol 0 for cross-machine comparisons.
func runBenchDiff(args []string) int {
	fs := flag.NewFlagSet("bench diff", flag.ExitOnError)
	var (
		tol     = fs.Float64("tol", 0.05, "relative tolerance for deterministic metrics")
		timeTol = fs.Float64("time-tol", 0.5, "relative tolerance for wall-clock metrics (0 = skip them)")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: expdriver bench diff [-tol 0.05] [-time-tol 0.5] old.json new.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	old, err := bench.LoadReport(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench diff: %v\n", err)
		return 1
	}
	cur, err := bench.LoadReport(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench diff: %v\n", err)
		return 1
	}
	res, err := bench.Diff(old, cur, *tol, *timeTol)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench diff: %v\n", err)
		return 1
	}
	for _, n := range res.Notes {
		fmt.Fprintf(os.Stderr, "note: %s\n", n)
	}
	var rows [][]string
	for _, d := range res.Deltas {
		status := "info"
		switch {
		case d.Regression:
			status = "FAIL"
		case d.Gated:
			status = "ok"
		}
		rows = append(rows, []string{
			d.Bench, d.Metric, report.F(d.Old), report.F(d.New), fmtRel(d.Rel), status,
		})
	}
	fmt.Println(report.Table(
		fmt.Sprintf("bench diff: %s -> %s (tol %.0f%%, time-tol %.0f%%)",
			fs.Arg(0), fs.Arg(1), *tol*100, *timeTol*100),
		[]string{"benchmark", "metric", "old", "new", "delta", "status"}, rows))
	if regs := res.Regressions(); len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "bench diff: %d metric(s) regressed\n", len(regs))
		return 1
	}
	fmt.Fprintln(os.Stderr, "bench diff: no regressions")
	return 0
}

func fmtRel(rel float64) string {
	switch {
	case math.IsInf(rel, 1):
		return "+inf"
	case math.IsInf(rel, -1):
		return "-inf"
	default:
		return fmt.Sprintf("%+.1f%%", rel*100)
	}
}
