package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"clustersmt/internal/campaign/fleet"
	"clustersmt/internal/campaign/store"
)

// runWorker implements `expdriver worker`: a fleet worker process that
// registers with a coordinator (`expdriver serve -fleet`), leases campaign
// items and simulates them locally. Results flow back through the
// coordinator's shared store, so any result one fleet member produced is a
// cache hit for the rest.
func runWorker(args []string) int {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	coordinator := fs.String("coordinator", "http://localhost:8080", "coordinator base URL (expdriver serve -fleet)")
	name := fs.String("name", "", "worker label in the registry (default: hostname)")
	parallel := fs.Int("parallel", 0, "concurrent simulations on this worker (0 = NumCPU)")
	batch := fs.Int("batch", 0, "max items per lease request (0 = 2×parallel)")
	storeDir := fs.String("store", "", "optional worker-local result store directory (layered above the coordinator's)")
	verbose := fs.Bool("v", false, "log worker lifecycle events")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: expdriver worker [-coordinator URL] [-name label] [-parallel N] [-batch N] [-store dir] [-v]")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 0 {
		fs.Usage()
		return 2
	}

	cfg := fleet.WorkerConfig{
		Coordinator: *coordinator,
		Name:        *name,
		Parallel:    *parallel,
		BatchSize:   *batch,
	}
	if cfg.Name == "" {
		if host, err := os.Hostname(); err == nil {
			cfg.Name = host
		}
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		cfg.LocalStore = st
		fmt.Fprintf(os.Stderr, "store: %s\n", st.Dir())
	}
	if *verbose {
		cfg.Verbose = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}

	w, err := fleet.NewWorker(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "expdriver worker: joining fleet at %s\n", *coordinator)
	w.Run(ctx) // returns only on signal
	fmt.Fprintln(os.Stderr, "expdriver worker: shutting down")
	return 0
}
