package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"clustersmt/internal/campaign/store"
)

// runStoreCmd implements `expdriver store`: maintenance operations on a
// content-addressed result store directory. Currently one verb:
//
//	expdriver store gc [-store dir] [-max-age d] [-max-entries n] [-dry-run]
func runStoreCmd(args []string) int {
	if len(args) == 0 || args[0] != "gc" {
		fmt.Fprintln(os.Stderr, "usage: expdriver store gc [-store dir] [-max-age duration] [-max-entries N] [-dry-run]")
		return 2
	}
	fs := flag.NewFlagSet("store gc", flag.ExitOnError)
	storeDir := fs.String("store", ".campaign", "result store directory")
	maxAge := fs.Duration("max-age", 0, "evict entries older than this (0 = no age cap)")
	maxEntries := fs.Int("max-entries", 0, "keep at most this many entries, evicting oldest first (0 = no count cap)")
	dryRun := fs.Bool("dry-run", false, "report what would be removed without deleting anything")
	fs.Parse(args[1:])
	if fs.NArg() != 0 {
		fs.Usage()
		return 2
	}

	if _, err := os.Stat(*storeDir); err != nil {
		fmt.Fprintf(os.Stderr, "store gc: %v\n", err)
		return 1
	}
	s, err := store.Open(*storeDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	start := time.Now()
	rep, err := s.GC(store.GCOptions{MaxAge: *maxAge, MaxEntries: *maxEntries, DryRun: *dryRun})
	if err != nil {
		fmt.Fprintf(os.Stderr, "store gc: %v\n", err)
		return 1
	}
	mode := "removed"
	if *dryRun {
		mode = "would remove"
	}
	fmt.Printf("store gc: scanned %d entries in %s; %s %d temp files, %d corrupt, %d expired, %d over cap; %d remain\n",
		rep.Scanned, time.Since(start).Round(time.Millisecond), mode,
		rep.TempFiles, rep.Corrupt, rep.Expired, rep.Evicted, rep.Remaining)
	return 0
}
